// Density models: bin-grid splatting conservation, electrostatic field
// behaviour and overflow semantics, bell-shaped penalty values/derivatives.

#include <gtest/gtest.h>

#include "density/bell.hpp"
#include "density/bin_grid.hpp"
#include "density/electro.hpp"
#include "test_util.hpp"

namespace aplace::density {
namespace {

TEST(BinGridTest, Geometry) {
  const BinGrid g({0, 0, 8, 4}, 4, 2);
  EXPECT_DOUBLE_EQ(g.bin_w(), 2.0);
  EXPECT_DOUBLE_EQ(g.bin_h(), 2.0);
  EXPECT_DOUBLE_EQ(g.bin_center_x(0), 1.0);
  EXPECT_DOUBLE_EQ(g.bin_center_y(1), 3.0);
  EXPECT_EQ(g.bin_rect(1, 2), geom::Rect(4, 2, 6, 4));
}

TEST(BinGridTest, RangeClamping) {
  const BinGrid g({0, 0, 8, 8}, 4, 4);
  const auto [a, b] = g.x_range(3.0, 5.0);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const auto [c, d] = g.x_range(-5.0, -1.0);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(d, 0u);
  const auto [e, f] = g.x_range(9.0, 12.0);
  EXPECT_EQ(e, 3u);
  EXPECT_EQ(f, 3u);
}

TEST(BinGridTest, SplatConservesAmountInside) {
  const BinGrid g({0, 0, 8, 8}, 8, 8);
  numeric::Matrix m(8, 8);
  g.splat(geom::Rect(1.3, 2.1, 4.6, 5.2), 10.0, m);
  double total = 0;
  for (double v : m.data()) total += v;
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(BinGridTest, SplatDropsOutsideArea) {
  const BinGrid g({0, 0, 4, 4}, 4, 4);
  numeric::Matrix m(4, 4);
  // Half of the rect lies left of the region.
  g.splat(geom::Rect(-2, 0, 2, 4), 8.0, m);
  double total = 0;
  for (double v : m.data()) total += v;
  EXPECT_NEAR(total, 4.0, 1e-9);
}

TEST(ElectroTest, FieldPushesApart) {
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 16, 16, 0.8);
  // Both devices near the center, side by side with overlap.
  std::vector<double> v{7.6, 8.4, 8.0, 8.0};
  std::vector<double> g(4, 0.0);
  ed.value_and_grad(v, g, 1.0);
  // Descent direction -g must separate them further in x.
  EXPECT_GT(g[0], 0.0) << "left device pushed left";
  EXPECT_LT(g[1], 0.0) << "right device pushed right";
}

TEST(ElectroTest, EnergyDropsWhenSpread) {
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 16, 16, 0.8);
  std::vector<double> g(4, 0.0);
  const std::vector<double> vs{8, 8, 8, 8};
  const std::vector<double> vp{4, 12, 8, 8};
  const double stacked = ed.value_and_grad(vs, g, 0.0);
  const double spread = ed.value_and_grad(vp, g, 0.0);
  EXPECT_LT(spread, stacked);
}

TEST(ElectroTest, OverflowMeasuresOverlapOnly) {
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 16, 16, 0.8);
  std::vector<double> g(4, 0.0);
  // Disjoint placement: overflow ~ 0 (bins inside devices are exactly full).
  const std::vector<double> vp{4, 12, 8, 8};
  const std::vector<double> vs{8, 8, 8, 8};
  ed.value_and_grad(vp, g, 0.0);
  EXPECT_LT(ed.overflow(), 0.05);
  // Fully stacked at the same spot: most of the smaller device overlaps.
  ed.value_and_grad(vs, g, 0.0);
  EXPECT_GT(ed.overflow(), 0.2);
}

TEST(ElectroTest, GradientRoughlyMatchesFiniteDifference) {
  // The electrostatic gradient is exact for the spectral field but the
  // per-device averaging makes it an approximation; check direction and
  // magnitude within a loose factor.
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 32, 32, 0.8);
  const std::vector<double> v{7.0, 9.0, 8.0, 8.2};
  std::vector<double> g(4, 0.0);
  ed.value_and_grad(v, g, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> tmp(4, 0.0);
        return ed.value_and_grad(x, tmp, 0.0);
      },
      v, 1e-4);
  for (int i = 0; i < 4; ++i) {
    if (std::abs(fd[i]) < 1e-3) continue;
    EXPECT_GT(g[i] * fd[i], 0.0) << "sign mismatch at " << i;
    // Per-device field averaging makes this a fairly coarse approximation
    // of the finite-difference derivative; direction and rough magnitude
    // are what the optimizer relies on.
    EXPECT_NEAR(g[i], fd[i], 0.75 * std::abs(fd[i]) + 1e-2) << i;
  }
}

TEST(ElectroTest, EscapedDeviceFeelsRestoringForce) {
  // A device dragged fully outside the region used to accumulate zero
  // overlap and silently feel no density force; the clamped lookup must
  // give it a nonzero gradient pointing back inside.
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 16, 16, 0.8);
  // Device 0 escaped far left of the region, device 1 well inside.
  const std::vector<double> v{-6.0, 8.0, 8.0, 8.0};
  std::vector<double> g(4, 0.0);
  ed.value_and_grad(v, g, 1.0);
  // Descent direction -g must move device 0 in +x (back toward the region):
  // its charge lands in the boundary bins, and the Neumann mirror image
  // repels it inward.
  EXPECT_LT(g[0], 0.0) << "escaped device must be pulled back inside";
  EXPECT_NE(g[0], 0.0);

  // Same on the other axis: escaped above the region, pulled down.
  const std::vector<double> vy{8.0, 8.0, 23.0, 8.0};
  std::fill(g.begin(), g.end(), 0.0);
  ed.value_and_grad(vy, g, 1.0);
  EXPECT_GT(g[2], 0.0) << "escaped device must be pulled back down";
}

TEST(ElectroTest, GradientMatchesFiniteDifferenceOnFftPath) {
  // Finite-difference sanity of the gradient after the FFT rewiring, on a
  // power-of-two grid (the FFT path) at a different size than the legacy
  // test. Tolerances are loose for the same reason as above: the per-device
  // field averaging is an approximation of dN/dv.
  const netlist::Circuit c = test::two_device_circuit();
  ElectroDensity ed(c, {0, 0, 16, 16}, 64, 64, 0.8);
  const std::vector<double> v{6.5, 9.5, 8.5, 7.5};
  std::vector<double> g(4, 0.0);
  ed.value_and_grad(v, g, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> tmp(4, 0.0);
        return ed.value_and_grad(x, tmp, 0.0);
      },
      v, 1e-4);
  for (int i = 0; i < 4; ++i) {
    if (std::abs(fd[i]) < 1e-3) continue;
    EXPECT_GT(g[i] * fd[i], 0.0) << "sign mismatch at " << i;
    EXPECT_NEAR(g[i], fd[i], 0.75 * std::abs(fd[i]) + 1e-2) << i;
  }
}

TEST(BellTest, ValueProfile) {
  const double w = 4, wb = 1;
  EXPECT_NEAR(bell_value(0, w, wb), 1.0, 1e-12);
  // Support ends at w/2 + 2wb = 4.
  EXPECT_NEAR(bell_value(4.0, w, wb), 0.0, 1e-12);
  EXPECT_NEAR(bell_value(5.0, w, wb), 0.0, 1e-12);
  // Continuity at the branch point d1 = 3.
  EXPECT_NEAR(bell_value(3.0 - 1e-9, w, wb), bell_value(3.0 + 1e-9, w, wb),
              1e-6);
  // Monotone decreasing on [0, 4].
  double prev = 2;
  for (double d = 0; d <= 4.01; d += 0.25) {
    const double val = bell_value(d, w, wb);
    EXPECT_LE(val, prev + 1e-12);
    prev = val;
  }
}

TEST(BellTest, DerivativeMatchesFiniteDifference) {
  const double w = 3, wb = 0.7;
  for (double d : {-3.0, -1.2, -0.3, 0.4, 1.1, 2.0, 2.6}) {
    const double fd =
        (bell_value(d + 1e-6, w, wb) - bell_value(d - 1e-6, w, wb)) / 2e-6;
    EXPECT_NEAR(bell_derivative(d, w, wb), fd, 1e-5) << "d=" << d;
  }
}

TEST(BellDensityTest, PenaltyDropsWhenSpread) {
  // Needs bins fine enough that the bell-smoothed density can exceed a full
  // bin where the devices overlap (32 bins -> 0.5 um over 2-4 um devices).
  const netlist::Circuit c = test::two_device_circuit();
  BellDensity bd(c, {0, 0, 16, 16}, 32, 32, 0.8);
  std::vector<double> g(4, 0.0);
  const std::vector<double> vs{8, 8, 8, 8};
  const std::vector<double> vp{4, 12, 8, 8};
  const double stacked = bd.value_and_grad(vs, g, 0.0);
  const double spread = bd.value_and_grad(vp, g, 0.0);
  EXPECT_LT(spread, stacked);
}

TEST(BellDensityTest, GradientMatchesFiniteDifference) {
  const netlist::Circuit c = test::two_device_circuit();
  BellDensity bd(c, {0, 0, 16, 16}, 16, 16, 0.8);
  const std::vector<double> v{7.2, 9.1, 7.9, 8.3};
  std::vector<double> g(4, 0.0);
  bd.value_and_grad(v, g, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> tmp(4, 0.0);
        return bd.value_and_grad(x, tmp, 0.0);
      },
      v, 1e-5);
  for (int i = 0; i < 4; ++i) {
    // Normalizers are held constant in the analytic gradient (NTUplace3
    // convention), so allow a modest tolerance.
    EXPECT_NEAR(g[i], fd[i], 0.2 * std::abs(fd[i]) + 0.05) << i;
  }
}

}  // namespace
}  // namespace aplace::density
