// Circuit database: construction invariants, finalize() validation,
// placement geometry queries and the quality evaluator.

#include <gtest/gtest.h>

#include "netlist/circuit.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/placement.hpp"
#include "netlist/validate.hpp"
#include "test_util.hpp"

namespace aplace::netlist {
namespace {

TEST(CircuitTest, BuildAndQuery) {
  Circuit c("t");
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 3);
  const DeviceId b = c.add_device("B", DeviceType::Capacitor, 4, 4);
  const PinId pa = c.add_pin(a, "g", {0, 1.5});
  const PinId pb = c.add_center_pin(b, "t");
  const NetId n = c.add_net("n1", {pa, pb}, 2.0, true);
  c.finalize();

  EXPECT_EQ(c.num_devices(), 2u);
  EXPECT_EQ(c.num_pins(), 2u);
  EXPECT_EQ(c.num_nets(), 1u);
  EXPECT_EQ(c.device(a).name, "A");
  EXPECT_DOUBLE_EQ(c.device(b).area(), 16.0);
  EXPECT_EQ(c.pin(pb).offset, geom::Point(2, 2));
  EXPECT_TRUE(c.net(n).critical);
  EXPECT_DOUBLE_EQ(c.net(n).weight, 2.0);
  EXPECT_EQ(c.find_device("B"), b);
  EXPECT_FALSE(c.find_device("missing").valid());
  EXPECT_EQ(c.find_net("n1"), n);
  EXPECT_DOUBLE_EQ(c.total_device_area(), 6 + 16);
}

TEST(CircuitTest, RejectsDuplicateDeviceName) {
  Circuit c;
  c.add_device("A", DeviceType::Nmos, 1, 1);
  EXPECT_THROW(c.add_device("A", DeviceType::Pmos, 1, 1), CheckError);
}

TEST(CircuitTest, RejectsBadFootprint) {
  Circuit c;
  EXPECT_THROW(c.add_device("A", DeviceType::Nmos, 0, 1), CheckError);
  EXPECT_THROW(c.add_device("B", DeviceType::Nmos, 1, -2), CheckError);
}

TEST(CircuitTest, RejectsPinOutsideFootprint) {
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  EXPECT_THROW(c.add_pin(a, "p", {3, 1}), CheckError);
  EXPECT_THROW(c.add_pin(a, "p", {1, -0.1}), CheckError);
}

TEST(CircuitTest, AcceptsSinglePinNetRejectsPinless) {
  // Dangling single-pin nets are legal (consumers skip them); a net with
  // no pins at all is a construction bug.
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  const PinId p = c.add_center_pin(a, "p");
  EXPECT_THROW(c.add_net("empty", {}), CheckError);
  const NetId n = c.add_net("stub", {p});
  EXPECT_EQ(c.net(n).degree(), 1u);
}

TEST(CircuitTest, RejectsDoublyConnectedPin) {
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", DeviceType::Nmos, 2, 2);
  const PinId pa = c.add_center_pin(a, "p");
  const PinId pb = c.add_center_pin(b, "p");
  c.add_net("n", {pa, pb});
  EXPECT_THROW(c.add_net("n2", {pa, pb}), CheckError);
}

TEST(CircuitTest, FinalizeRejectsUnconnectedPin) {
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", DeviceType::Nmos, 2, 2);
  const PinId pa = c.add_center_pin(a, "p");
  const PinId pb = c.add_center_pin(b, "p");
  c.add_net("n", {pa, pb});
  c.add_pin(a, "dangling", {0, 0});
  EXPECT_THROW(c.finalize(), CheckError);
}

TEST(CircuitTest, FinalizeRejectsDeviceInTwoSymmetryGroups) {
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", DeviceType::Nmos, 2, 2);
  const DeviceId d = c.add_device("D", DeviceType::Nmos, 2, 2);
  const PinId pa = c.add_center_pin(a, "p");
  const PinId pb = c.add_center_pin(b, "p");
  const PinId pd = c.add_center_pin(d, "p");
  c.add_net("n", {pa, pb, pd});
  SymmetryGroup g1;
  g1.pairs.emplace_back(a, b);
  c.add_symmetry_group(g1);
  SymmetryGroup g2;
  g2.pairs.emplace_back(a, d);
  c.add_symmetry_group(g2);
  EXPECT_THROW(c.finalize(), CheckError);
}

TEST(CircuitTest, FinalizeRejectsMismatchedSymmetryFootprints) {
  Circuit c;
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", DeviceType::Nmos, 3, 2);
  const PinId pa = c.add_center_pin(a, "p");
  const PinId pb = c.add_center_pin(b, "p");
  c.add_net("n", {pa, pb});
  SymmetryGroup g;
  g.pairs.emplace_back(a, b);
  c.add_symmetry_group(g);
  EXPECT_THROW(c.finalize(), CheckError);
}

TEST(CircuitTest, RejectsEmptySymmetryGroup) {
  Circuit c;
  c.add_device("A", DeviceType::Nmos, 2, 2);
  EXPECT_THROW(c.add_symmetry_group(SymmetryGroup{}), CheckError);
}

TEST(ValidateTest, RejectsSingleSelfSymmetricOnlyGroup) {
  // A group holding one self-symmetric device and no pairs slips past
  // construction (it is non-empty) but its penalty is identically zero:
  // the optimal mirror axis simply tracks the device. The validator must
  // flag it instead of letting the placer silently ignore the constraint.
  Circuit c;
  const DeviceId s = c.add_device("S", DeviceType::Nmos, 4, 2);
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 2, 2);
  c.add_net("n", {c.add_center_pin(s, "p"), c.add_center_pin(a, "p")});
  SymmetryGroup g;
  g.axis = Axis::Vertical;
  g.self_symmetric.push_back(s);
  c.add_symmetry_group(std::move(g));
  c.finalize();

  const aplace::Status st = validate(c);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), aplace::StatusCode::InvalidInput);
  EXPECT_NE(st.message().find("'S'"), std::string::npos) << st.to_string();
}

TEST(ValidateTest, AcceptsSelfSymmetricDeviceAlongsidePairs) {
  // The same self-symmetric device is fine once a pair pins the axis.
  const Circuit c = test::constrained_circuit();
  EXPECT_TRUE(validate(c).ok());
}

TEST(CircuitTest, MutationAfterFinalizeRejected) {
  Circuit c = test::two_device_circuit();
  EXPECT_THROW(c.add_device("X", DeviceType::Nmos, 1, 1), CheckError);
}

TEST(PlacementTest, RequiresFinalizedCircuit) {
  Circuit c;
  c.add_device("A", DeviceType::Nmos, 1, 1);
  EXPECT_THROW(Placement p(c), CheckError);
}

TEST(PlacementTest, DeviceRectAndPins) {
  const Circuit c = test::two_device_circuit();
  Placement pl(c);
  const DeviceId a = c.find_device("A");
  pl.set_position(a, {5, 5});
  EXPECT_EQ(pl.device_rect(a), geom::Rect(4, 4, 6, 6));

  // Pin at offset (1,1) on a 2x2 device = its center.
  const PinId pa = c.device(a).pins[0];
  EXPECT_EQ(pl.pin_position(pa), geom::Point(5, 5));
}

TEST(PlacementTest, PinPositionUnderFlip) {
  Circuit c("t");
  const DeviceId a = c.add_device("A", DeviceType::Nmos, 4, 2);
  const DeviceId b = c.add_device("B", DeviceType::Nmos, 4, 2);
  const PinId pa = c.add_pin(a, "g", {0, 1});  // left edge
  const PinId pb = c.add_pin(b, "g", {0, 1});
  c.add_net("n", {pa, pb});
  c.finalize();

  Placement pl(c);
  pl.set_position(a, {2, 1});
  EXPECT_EQ(pl.pin_position(pa), geom::Point(0, 1));
  pl.set_orientation(a, {true, false});
  EXPECT_EQ(pl.pin_position(pa), geom::Point(4, 1))
      << "x-flip mirrors the pin to the right edge";
}

TEST(PlacementTest, HpwlAndBbox) {
  const Circuit c = test::two_device_circuit();
  Placement pl(c);
  pl.set_position(c.find_device("A"), {1, 1});   // 2x2 at (0,0)-(2,2)
  pl.set_position(c.find_device("B"), {7, 1});   // 4x2 at (5,0)-(9,2)
  // Pins: A center (1,1); B pin offset (1,1) from corner -> (6,1).
  EXPECT_DOUBLE_EQ(pl.net_hpwl(NetId{0u}), 5.0);
  EXPECT_DOUBLE_EQ(pl.total_hpwl(), 5.0);
  EXPECT_EQ(pl.bounding_box(), geom::Rect(0, 0, 9, 2));
  EXPECT_DOUBLE_EQ(pl.layout_area(), 18.0);
  EXPECT_DOUBLE_EQ(pl.total_overlap_area(), 0.0);
}

TEST(PlacementTest, OverlapArea) {
  const Circuit c = test::two_device_circuit();
  Placement pl(c);
  pl.set_position(c.find_device("A"), {1, 1});
  pl.set_position(c.find_device("B"), {2, 1});  // B 4x2 at (0,0)-(4,2)
  EXPECT_DOUBLE_EQ(pl.total_overlap_area(), 4.0);  // A fully inside B's span
}

TEST(PlacementTest, NormalizeToOrigin) {
  const Circuit c = test::two_device_circuit();
  Placement pl(c);
  pl.set_position(c.find_device("A"), {-3, 4});
  pl.set_position(c.find_device("B"), {5, 9});
  pl.normalize_to_origin();
  const geom::Rect bb = pl.bounding_box();
  EXPECT_NEAR(bb.xlo(), 0, 1e-12);
  EXPECT_NEAR(bb.ylo(), 0, 1e-12);
}

TEST(EvaluatorTest, SymmetryResidual) {
  const netlist::Circuit c = test::constrained_circuit();
  Placement pl(c);
  const DeviceId a = c.find_device("A"), b = c.find_device("B");
  const DeviceId s = c.find_device("S");
  pl.set_position(a, {2, 5});
  pl.set_position(b, {8, 5});
  pl.set_position(s, {5, 2});
  pl.set_position(c.find_device("R1"), {1, 10});
  pl.set_position(c.find_device("R2"), {9, 10});
  const Evaluator ev(c);
  const SymmetryGroup& g = c.constraints().symmetry_groups[0];
  EXPECT_NEAR(ev.best_axis(pl, g), 5.0, 1e-12);
  EXPECT_NEAR(ev.symmetry_residual(pl, g), 0.0, 1e-12);

  pl.set_position(b, {8, 6});  // break orthogonal match
  EXPECT_NEAR(ev.symmetry_residual(pl, g), 1.0, 1e-12);
}

TEST(EvaluatorTest, AlignmentAndOrderingResiduals) {
  const netlist::Circuit c = test::constrained_circuit();
  Placement pl(c);
  pl.set_position(c.find_device("A"), {2, 5});
  pl.set_position(c.find_device("B"), {8, 5});
  pl.set_position(c.find_device("S"), {5, 2});
  pl.set_position(c.find_device("R1"), {1, 10});
  pl.set_position(c.find_device("R2"), {9, 10.5});  // bottoms differ by 0.5
  const Evaluator ev(c);
  EXPECT_NEAR(ev.alignment_residual(pl, c.constraints().alignments[0]), 0.5,
              1e-12);
  // Ordering R1 (w=1) before S (w=4): gap = (5-2) - (0.5+2) = 0.5 >= 0 OK.
  EXPECT_NEAR(ev.ordering_residual(pl, c.constraints().orderings[0]), 0.0,
              1e-12);
  pl.set_position(c.find_device("S"), {2.0, 2});  // violated by 1.5
  EXPECT_NEAR(ev.ordering_residual(pl, c.constraints().orderings[0]), 1.5,
              1e-12);
}

TEST(EvaluatorTest, ViolationListAndLegalFlag) {
  const netlist::Circuit c = test::constrained_circuit();
  Placement pl(c);
  pl.set_position(c.find_device("A"), {2, 5});
  pl.set_position(c.find_device("B"), {8, 5});
  pl.set_position(c.find_device("S"), {5, 2});
  pl.set_position(c.find_device("R1"), {1, 10});
  pl.set_position(c.find_device("R2"), {9, 10});
  const Evaluator ev(c);
  EXPECT_TRUE(ev.evaluate(pl).legal());
  EXPECT_TRUE(ev.violations(pl).empty());

  pl.set_position(c.find_device("R2"), {1.2, 10});  // overlap R1/R2
  const QualityReport q = ev.evaluate(pl);
  EXPECT_FALSE(q.legal());
  EXPECT_GT(q.overlap_area, 0);
  EXPECT_FALSE(ev.violations(pl).empty());
}

}  // namespace
}  // namespace aplace::netlist
