// B*-tree representation and annealer: packing admissibility (compacted,
// non-overlapping), move closure (tree stays consistent), and end-to-end
// legality vs the sequence-pair annealer.

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "netlist/evaluator.hpp"
#include "sa/annealer.hpp"
#include "sa/bstar_placer.hpp"
#include "sa/bstar_tree.hpp"
#include "test_util.hpp"

namespace aplace::sa {
namespace {

TEST(BStarTreeTest, ChainPacksInRow) {
  BStarTree t(3);
  const std::vector<double> w{2, 3, 4}, h{1, 2, 1};
  const auto pk = t.pack(w, h);
  EXPECT_DOUBLE_EQ(pk.x[0], 0);
  EXPECT_DOUBLE_EQ(pk.x[1], 2);
  EXPECT_DOUBLE_EQ(pk.x[2], 5);
  EXPECT_DOUBLE_EQ(pk.y[0], 0);
  EXPECT_DOUBLE_EQ(pk.y[1], 0);
  EXPECT_DOUBLE_EQ(pk.width, 9);
  EXPECT_DOUBLE_EQ(pk.height, 2);
}

TEST(BStarTreeTest, RightChildStacksAbove) {
  BStarTree t(2);
  // Move block 1 to be the right child of 0: same x, above.
  t.move_block(1, 0, /*as_left=*/false);
  ASSERT_TRUE(t.consistent());
  const std::vector<double> w{2, 2}, h{1, 3};
  const auto pk = t.pack(w, h);
  EXPECT_DOUBLE_EQ(pk.x[1], 0);
  EXPECT_DOUBLE_EQ(pk.y[1], 1);
  EXPECT_DOUBLE_EQ(pk.width, 2);
  EXPECT_DOUBLE_EQ(pk.height, 4);
}

TEST(BStarTreeTest, MovesPreserveConsistency) {
  numeric::Rng rng(31);
  BStarTree t(8);
  for (int k = 0; k < 500; ++k) {
    const auto a =
        static_cast<std::size_t>(rng.uniform_int(0, 7));
    const auto b =
        static_cast<std::size_t>(rng.uniform_int(0, 7));
    if (rng.bernoulli()) t.swap_blocks(a, b);
    else t.move_block(a, b, rng.bernoulli());
    ASSERT_TRUE(t.consistent()) << "after move " << k;
  }
}

TEST(BStarTreeTest, PackingNeverOverlapsProperty) {
  numeric::Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    BStarTree t(n);
    t.shuffle(rng);
    ASSERT_TRUE(t.consistent());
    std::vector<double> w(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.uniform(0.5, 4.0);
      h[i] = rng.uniform(0.5, 4.0);
    }
    const auto pk = t.pack(w, h);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        const geom::Rect ra(pk.x[a], pk.y[a], pk.x[a] + w[a], pk.y[a] + h[a]);
        const geom::Rect rb(pk.x[b], pk.y[b], pk.x[b] + w[b], pk.y[b] + h[b]);
        EXPECT_FALSE(ra.overlaps(rb))
            << "trial " << trial << " blocks " << a << "," << b;
      }
    }
  }
}

TEST(BStarPlacerTest, LegalAndComparableToSequencePair) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  SaOptions opts;
  opts.max_moves = 30000;
  const SaResult bstar = BStarPlacer(tc.circuit, opts).place();
  const SaResult sp = SaPlacer(tc.circuit, opts).place();

  const netlist::Evaluator ev(tc.circuit);
  const netlist::QualityReport qb = ev.evaluate(bstar.placement);
  EXPECT_NEAR(qb.overlap_area, 0.0, 1e-9);
  EXPECT_NEAR(qb.symmetry_violation, 0.0, 1e-9);

  // Same cost model: the two representations should land within a factor
  // of each other (this is a sanity band, not a ranking claim).
  const netlist::QualityReport qs = ev.evaluate(sp.placement);
  EXPECT_LT(qb.area, 2.0 * qs.area);
  EXPECT_LT(qb.hpwl, 2.0 * qs.hpwl);
}

TEST(BStarPlacerTest, Deterministic) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  SaOptions opts;
  opts.seed = 9;
  opts.max_moves = 5000;
  const SaResult a = BStarPlacer(tc.circuit, opts).place();
  const SaResult b = BStarPlacer(tc.circuit, opts).place();
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace aplace::sa

namespace aplace::sa {
namespace {

class BStarAllCircuitsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BStarAllCircuitsTest, LegalOnEveryCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  SaOptions opts;
  opts.max_moves = 8000;
  const SaResult r = BStarPlacer(tc.circuit, opts).place();
  const netlist::QualityReport q =
      netlist::Evaluator(tc.circuit).evaluate(r.placement);
  // Overlap-free and exactly symmetric by construction; alignment /
  // ordering are penalty-driven, so allow small residuals at this budget.
  EXPECT_NEAR(q.overlap_area, 0.0, 1e-9) << GetParam();
  EXPECT_NEAR(q.symmetry_violation, 0.0, 1e-9) << GetParam();
  EXPECT_LT(q.ordering_violation, 3.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, BStarAllCircuitsTest,
                         ::testing::ValuesIn(circuits::testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace aplace::sa
