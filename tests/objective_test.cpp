// Composable objective layer: finite-difference gradient property test for
// every ObjectiveTerm adapter through the common interface, the
// composite-equals-sum-of-terms invariant, weight scheduling rules, and the
// TermTrace observability plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "density/bell.hpp"
#include "density/electro.hpp"
#include "gp/objective.hpp"
#include "gp/penalties.hpp"
#include "test_util.hpp"
#include "wirelength/area_term.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {
namespace {

// constrained_circuit() plus a common-centroid quad so every penalty family
// has at least one active constraint.
netlist::Circuit full_constraint_circuit() {
  netlist::Circuit cc("full-constraints");
  const DeviceId a = cc.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = cc.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId s = cc.add_device("S", netlist::DeviceType::Nmos, 4, 2);
  const DeviceId r1 = cc.add_device("R1", netlist::DeviceType::Resistor, 1, 3);
  const DeviceId r2 = cc.add_device("R2", netlist::DeviceType::Resistor, 1, 3);
  const PinId pa = cc.add_pin(a, "d", {1, 2});
  const PinId pb = cc.add_pin(b, "d", {1, 2});
  const PinId ps = cc.add_pin(s, "d", {2, 2});
  const PinId p1 = cc.add_pin(r1, "a", {0.5, 3});
  const PinId p2 = cc.add_pin(r2, "a", {0.5, 3});
  const PinId p1b = cc.add_pin(r1, "b", {0.5, 0});
  const PinId p2b = cc.add_pin(r2, "b", {0.5, 0});
  cc.add_net("n1", {pa, p1});
  cc.add_net("n2", {pb, p2});
  cc.add_net("n3", {ps, p1b, p2b});
  netlist::SymmetryGroup g;
  g.axis = netlist::Axis::Vertical;
  g.pairs.emplace_back(a, b);
  g.self_symmetric.push_back(s);
  cc.add_symmetry_group(std::move(g));
  cc.add_alignment({netlist::AlignmentKind::Bottom, r1, r2});
  cc.add_ordering({netlist::OrderDirection::LeftToRight, {r1, s}});
  cc.add_common_centroid({a, b, r1, r2});
  cc.finalize();
  return cc;
}

// Positions inside an 8x8 region, deliberately violating every constraint.
std::vector<double> test_positions(const netlist::Circuit& c) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.3 + 0.9 * static_cast<double>(i);
    v[n + i] = 1.7 + 0.7 * static_cast<double>((i * 3) % 5);
  }
  return v;
}
// Everything needed to build any adapter; owns the kernels.
struct Kernels {
  netlist::Circuit circuit = full_constraint_circuit();
  geom::Rect region{0, 0, 8, 8};
  wirelength::WaWirelength wa{circuit};
  wirelength::LseWirelength lse{circuit};
  wirelength::WaAreaTerm area{circuit};
  density::ElectroDensity electro{circuit, region, 16, 16, 0.8};
  density::BellDensity bell{circuit, region, 16, 16, 0.8};
  ConstraintPenalties pen{circuit};

  std::shared_ptr<ObjectiveTerm> make(const std::string& which) {
    if (which == "wirelength-wa") {
      return std::make_shared<SmoothWirelengthTerm>(wa, "wirelength");
    }
    if (which == "wirelength-lse") {
      return std::make_shared<SmoothWirelengthTerm>(lse, "wirelength");
    }
    if (which == "area") return std::make_shared<SmoothAreaTerm>(area);
    if (which == "electro-density") {
      return std::make_shared<ElectroDensityTerm>(electro);
    }
    if (which == "bell-density") {
      return std::make_shared<BellDensityTerm>(bell);
    }
    if (which == "symmetry") {
      return std::make_shared<PenaltyTerm>(pen, PenaltyTerm::Kind::Symmetry);
    }
    if (which == "common-centroid") {
      return std::make_shared<PenaltyTerm>(pen,
                                           PenaltyTerm::Kind::CommonCentroid);
    }
    if (which == "alignment") {
      return std::make_shared<PenaltyTerm>(pen, PenaltyTerm::Kind::Alignment);
    }
    if (which == "ordering") {
      return std::make_shared<PenaltyTerm>(pen, PenaltyTerm::Kind::Ordering);
    }
    if (which == "boundary") {
      return std::make_shared<PenaltyTerm>(pen, geom::Rect{0.5, 0.5, 5, 4});
    }
    if (which == "function") {
      // Synthetic smooth extra term: sum sin(v_i) (stands in for the GNN).
      return std::make_shared<FunctionTerm>(
          "extra",
          [](std::span<const double> v, std::span<double> grad) {
            double f = 0;
            for (std::size_t i = 0; i < v.size(); ++i) {
              f += std::sin(v[i]);
              grad[i] += std::cos(v[i]);
            }
            return f;
          });
    }
    ADD_FAILURE() << "unknown term " << which;
    return nullptr;
  }
};

struct FdTolerance {
  double rel = 1e-4;
  double abs = 1e-4;
  double skip_below = 0.0;  ///< |fd| below this is not compared
};

FdTolerance tolerance_for(const std::string& which) {
  // The density kernels are deliberately coarse approximations: electro
  // averages the field per device, bell holds its normalizers constant in
  // the analytic gradient (NTUplace3 convention).
  if (which == "electro-density") return {0.75, 1e-2, 1e-3};
  if (which == "bell-density") return {0.2, 5e-2, 0.0};
  return {};
}

class ObjectiveTermGradientTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ObjectiveTermGradientTest, MatchesFiniteDifference) {
  const std::string which = GetParam();
  Kernels k;
  // The electro gradient averages the spectral field over each footprint;
  // it tracks the finite difference only in the smooth mildly-overlapping
  // regime, so reuse the kernel-level ElectroTest configuration for it.
  const netlist::Circuit two = test::two_device_circuit();
  density::ElectroDensity ed(two, {0, 0, 16, 16}, 32, 32, 0.8);
  std::shared_ptr<ObjectiveTerm> term;
  std::vector<double> v;
  if (which == "electro-density") {
    term = std::make_shared<ElectroDensityTerm>(ed);
    v = {7.0, 9.0, 8.0, 8.2};
  } else {
    term = k.make(which);
    v = test_positions(k.circuit);
  }
  ASSERT_NE(term, nullptr);

  std::vector<double> grad(v.size(), 0.0);
  term->value_and_grad(v, grad, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> tmp(x.size(), 0.0);
        return term->value_and_grad(x, tmp, 1.0);
      },
      v, which == "electro-density" ? 1e-4 : 1e-5);

  const FdTolerance tol = tolerance_for(which);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (std::abs(fd[i]) < tol.skip_below) continue;
    EXPECT_NEAR(grad[i], fd[i], tol.abs + tol.rel * std::abs(fd[i]))
        << which << " index " << i;
  }
}

TEST_P(ObjectiveTermGradientTest, ScaleIsAppliedToGradientOnly) {
  const std::string which = GetParam();
  Kernels k;
  const std::shared_ptr<ObjectiveTerm> term = k.make(which);
  const std::vector<double> v = test_positions(k.circuit);

  std::vector<double> g1(v.size(), 0.0), g2(v.size(), 0.0);
  const double f1 = term->value_and_grad(v, g1, 1.0);
  const double f2 = term->value_and_grad(v, g2, 2.5);
  EXPECT_DOUBLE_EQ(f1, f2) << "raw value must not depend on scale";
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2[i], 2.5 * g1[i], 1e-9 + 1e-9 * std::abs(g1[i])) << i;
  }

  // ADD semantics: evaluating into a pre-filled buffer accumulates.
  std::vector<double> g3(v.size(), 1.0);
  term->value_and_grad(v, g3, 1.0);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g3[i], 1.0 + g1[i], 1e-12 + 1e-12 * std::abs(g1[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTerms, ObjectiveTermGradientTest,
    ::testing::Values("wirelength-wa", "wirelength-lse", "area",
                      "electro-density", "bell-density", "symmetry",
                      "common-centroid", "alignment", "ordering", "boundary",
                      "function"));

// --- CompositeObjective ------------------------------------------------------

TEST(CompositeObjectiveTest, EqualsWeightedSumOfTerms) {
  Kernels k;
  const std::vector<double> v = test_positions(k.circuit);
  const std::vector<std::pair<const char*, double>> spec = {
      {"wirelength-wa", 1.0}, {"electro-density", 0.37}, {"symmetry", 2.0},
      {"alignment", 0.5},     {"boundary", 3.25},        {"function", 0.125}};

  CompositeObjective obj(v.size());
  for (const auto& [which, w] : spec) obj.add_term(k.make(which), w);

  std::vector<double> grad(v.size(), 0.0);
  const double total = obj.value_and_grad(v, grad);

  // Independent evaluation of each term through fresh kernels.
  Kernels k2;
  double expect_total = 0;
  std::vector<double> expect_grad(v.size(), 0.0);
  for (const auto& [which, w] : spec) {
    std::vector<double> g(v.size(), 0.0);
    expect_total += w * k2.make(which)->value_and_grad(v, g, 1.0);
    for (std::size_t i = 0; i < g.size(); ++i) expect_grad[i] += w * g[i];
  }

  EXPECT_NEAR(total, expect_total, 1e-9 * (1.0 + std::abs(expect_total)));
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad[i], expect_grad[i],
                1e-9 * (1.0 + std::abs(expect_grad[i])))
        << i;
  }
}

TEST(CompositeObjectiveTest, DisabledTermIsSkippedButStaysInTrace) {
  Kernels k;
  const std::vector<double> v = test_positions(k.circuit);
  CompositeObjective obj(v.size());
  obj.add_term(k.make("wirelength-wa"), 1.0);
  obj.add_term(k.make("area"), 5.0, /*enabled=*/false);

  std::vector<double> g_with(v.size(), 0.0), g_wl(v.size(), 0.0);
  const double total = obj.value_and_grad(v, g_with);
  const double wl_only = k.make("wirelength-wa")->value_and_grad(v, g_wl, 1.0);
  EXPECT_DOUBLE_EQ(total, wl_only);
  for (std::size_t i = 0; i < g_with.size(); ++i) {
    EXPECT_DOUBLE_EQ(g_with[i], g_wl[i]) << i;
  }

  ASSERT_EQ(obj.trace().terms.size(), 2u);
  EXPECT_EQ(obj.trace().find("area")->evals, 0u);
  EXPECT_EQ(obj.trace().find("wirelength")->evals, 1u);

  obj.set_enabled("area", true);
  std::vector<double> g2(v.size(), 0.0);
  EXPECT_GT(obj.value_and_grad(v, g2), total);
  EXPECT_EQ(obj.trace().find("area")->evals, 1u);
}

TEST(CompositeObjectiveTest, TraceRecordsStatsAndSamples) {
  Kernels k;
  const std::vector<double> v = test_positions(k.circuit);
  CompositeObjective obj(v.size());
  obj.add_term(k.make("wirelength-wa"), 1.0);
  obj.add_term(k.make("symmetry"), 0.25);

  std::vector<double> g(v.size(), 0.0);
  for (int it = 0; it < 3; ++it) {
    obj.value_and_grad(v, g);
    obj.sample(it);
  }

  const TermTrace& t = obj.trace();
  ASSERT_EQ(t.terms.size(), 2u);
  for (const TermStats& s : t.terms) {
    EXPECT_EQ(s.evals, 3u);
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GT(s.grad_norm, 0.0);
  }
  EXPECT_EQ(t.find("symmetry")->weight, 0.25);
  ASSERT_EQ(t.samples.size(), 3u);
  EXPECT_EQ(t.samples[2].iter, 2);
  ASSERT_EQ(t.samples[0].values.size(), 2u);
  EXPECT_GT(t.total_seconds(), 0.0);
}

TEST(CompositeObjectiveTest, SampleHistoryStaysBounded) {
  Kernels k;
  CompositeObjective obj(2 * k.circuit.num_devices());
  obj.add_term(k.make("symmetry"), 1.0);
  for (int it = 0; it < 10 * CompositeObjective::kMaxSamples; ++it) {
    obj.sample(it);
  }
  EXPECT_LE(obj.trace().samples.size(),
            static_cast<std::size_t>(CompositeObjective::kMaxSamples));
  EXPECT_GT(obj.trace().sample_stride, 1);
}

TEST(TermTraceTest, MergeCountsSumsEvalsKeepsWinnerSamples) {
  TermTrace win, lose;
  win.terms.push_back({"wirelength", TermCost::Moderate, 10, 1.0, 5.0, 0.1, 1.0});
  win.samples.push_back({3, {5.0}, {1.0}, {0.1}});
  lose.terms.push_back({"wirelength", TermCost::Moderate, 7, 0.5, 9.0, 0.9, 2.0});
  lose.terms.push_back({"gnn-phi", TermCost::Expensive, 2, 0.25, 0.5, 0.0, 1.0});
  lose.samples.push_back({1, {9.0}, {2.0}, {0.9}});

  win.merge_counts(lose);
  ASSERT_EQ(win.terms.size(), 2u);
  EXPECT_EQ(win.find("wirelength")->evals, 17u);
  EXPECT_DOUBLE_EQ(win.find("wirelength")->seconds, 1.5);
  // Winner keeps its own last value/weight and sample history.
  EXPECT_DOUBLE_EQ(win.find("wirelength")->value, 5.0);
  EXPECT_DOUBLE_EQ(win.find("wirelength")->weight, 1.0);
  ASSERT_EQ(win.samples.size(), 1u);
  EXPECT_EQ(win.samples[0].iter, 3);
  // Unmatched terms are appended with their counters.
  EXPECT_EQ(win.find("gnn-phi")->evals, 2u);
}

// --- WeightScheduler ---------------------------------------------------------

TEST(WeightSchedulerTest, CalibratesEveryRuleKind) {
  Kernels k;
  const std::vector<double> v = test_positions(k.circuit);
  CompositeObjective obj(v.size());
  obj.add_term(k.make("wirelength-wa"), 1.0);
  obj.add_term(k.make("symmetry"), 0.0);
  obj.add_term(k.make("boundary"), 0.0);
  obj.add_term(k.make("common-centroid"), 0.0);

  WeightScheduler sched(obj);
  using Rule = WeightScheduler::Rule;
  Rule wl_rule;
  wl_rule.init = Rule::Init::Fixed;
  wl_rule.rel = 1.0;
  sched.set_rule("wirelength", wl_rule);
  Rule sym_rule;
  sym_rule.init = Rule::Init::RelToRefGrad;
  sym_rule.rel = 0.04;
  sched.set_rule("symmetry", sym_rule);
  Rule bound_rule;
  bound_rule.init = Rule::Init::RefOverScale;
  bound_rule.rel = 2.0;
  bound_rule.scale_div = 0.5;
  sched.set_rule("boundary", bound_rule);
  Rule cc_rule;
  cc_rule.init = Rule::Init::TiedTo;
  cc_rule.rel = 0.04;
  cc_rule.tied_to = "symmetry";
  cc_rule.tied_rel = 0.04;
  sched.set_rule("common-centroid", cc_rule);
  const double ref_mag = sched.calibrate(v, "wirelength");
  EXPECT_GT(ref_mag, 0.0);

  EXPECT_DOUBLE_EQ(obj.weight("wirelength"), 1.0);
  // symmetry: rel * |g_wl| / |g_sym|, reproduced by hand.
  std::vector<double> g(v.size(), 0.0);
  Kernels k2;
  k2.make("symmetry")->value_and_grad(v, g, 1.0);
  double mg = 0;
  for (double x : g) mg += std::abs(x);
  mg /= static_cast<double>(g.size());
  EXPECT_NEAR(obj.weight("symmetry"), 0.04 * ref_mag / mg, 1e-12);
  EXPECT_DOUBLE_EQ(obj.weight("boundary"), 2.0 * ref_mag / 0.5);
  // rel == tied_rel ties the weight to the master bit-for-bit.
  EXPECT_EQ(obj.weight("common-centroid"), obj.weight("symmetry"));
}

TEST(WeightSchedulerTest, AdvanceAppliesGrowthRules) {
  Kernels k;
  CompositeObjective obj(2 * k.circuit.num_devices());
  obj.add_term(k.make("symmetry"), 2.0);
  obj.add_term(k.make("boundary"), 3.0);

  WeightScheduler sched(obj);
  using Rule = WeightScheduler::Rule;
  Rule sym_rule;
  sym_rule.init = Rule::Init::Fixed;
  sym_rule.rel = 2.0;
  sym_rule.growth = 1.5;
  sched.set_rule("symmetry", sym_rule);
  Rule bound_rule;
  bound_rule.init = Rule::Init::Fixed;
  bound_rule.rel = 3.0;
  sched.set_rule("boundary", bound_rule);

  sched.advance();
  EXPECT_DOUBLE_EQ(obj.weight("symmetry"), 3.0);
  EXPECT_DOUBLE_EQ(obj.weight("boundary"), 3.0);  // growth 1 -> untouched
  sched.advance("symmetry", 2.0);
  EXPECT_DOUBLE_EQ(obj.weight("symmetry"), 6.0);
}

}  // namespace
}  // namespace aplace::gp
