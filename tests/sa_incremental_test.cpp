// Incremental SA cost engine: property tests against from-scratch
// recomputation on every circuit, LCS-vs-naive packer trajectory identity,
// and the no-leaked-state contract of sample_random.

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "netlist/evaluator.hpp"
#include "sa/annealer.hpp"
#include "test_util.hpp"

namespace aplace::sa {
namespace {

class IncrementalAllCircuitsTest
    : public ::testing::TestWithParam<std::string> {};

// The heart of the engine's correctness story: run randomized sequences of
// all five move kinds (sequence swaps, flips, island row swap/mirror) with
// random accept/reject, and after every move compare the incremental
// bookkeeping against (a) a from-scratch recompute of the cost and (b) a
// freshly realized placement of the committed representation. 1e-9 leaves
// room only for delta-accumulation rounding.
TEST_P(IncrementalAllCircuitsTest, MatchesFullRecomputeUnderRandomMoves) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  SaPlacer placer(tc.circuit, {});
  EXPECT_LE(placer.verify_incremental(101, 400), 1e-9);
  // A second run must be independent of the first (no leaked state).
  const double a = placer.verify_incremental(202, 200);
  const double b = SaPlacer(tc.circuit, {}).verify_incremental(202, 200);
  EXPECT_DOUBLE_EQ(a, b);
}

// The incremental engine must not change what the annealer produces in
// kind: legal placements with exact island symmetry.
TEST_P(IncrementalAllCircuitsTest, AnnealerStaysLegal) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  SaOptions opts;
  opts.seed = 31;
  opts.max_moves = 4000;
  const SaResult r = SaPlacer(tc.circuit, opts).place();
  const netlist::QualityReport q =
      netlist::Evaluator(tc.circuit).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6)) << "overlap=" << q.overlap_area
                             << " sym=" << q.symmetry_violation;
  EXPECT_GT(r.moves_per_second, 0.0);
  EXPECT_GT(r.eval_stats.evals, 0u);
  // The delta evaluator must actually skip work, not just match. Sequence
  // swaps cascade packing shifts to downstream blocks, so the average move
  // still dirties a large fraction of nets on the small circuits — but
  // never all of them.
  EXPECT_LT(r.eval_stats.net_eval_ratio(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, IncrementalAllCircuitsTest,
                         ::testing::ValuesIn(circuits::testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// The LCS packer is bit-identical to the naive longest-path packer, so the
// whole annealing trajectory — every cost, every accept decision, every RNG
// draw — must coincide move for move.
TEST(SaIncrementalTest, NaivePackFlagReproducesLcsTrajectory) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA2");
  SaOptions lcs;
  lcs.seed = 17;
  lcs.max_moves = 3000;
  SaOptions naive = lcs;
  naive.naive_pack = true;
  const SaResult a = SaPlacer(tc.circuit, lcs).place();
  const SaResult b = SaPlacer(tc.circuit, naive).place();
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.moves_accepted, b.moves_accepted);
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(a.placement.position(DeviceId{i}),
              b.placement.position(DeviceId{i}));
  }
}

// Legacy full-recompute path still anneals to a legal, deterministic result
// (it is the oracle side of the throughput benches).
TEST(SaIncrementalTest, LegacyEngineStillWorks) {
  circuits::TestCase tc = circuits::make_testcase("Comp1");
  SaOptions opts;
  opts.seed = 23;
  opts.max_moves = 3000;
  opts.incremental = false;
  const SaResult a = SaPlacer(tc.circuit, opts).place();
  const SaResult b = SaPlacer(tc.circuit, opts).place();
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  const netlist::QualityReport q =
      netlist::Evaluator(tc.circuit).evaluate(a.placement);
  EXPECT_TRUE(q.legal(1e-6));
  EXPECT_EQ(a.eval_stats.evals, 0u);  // stats belong to the delta engine
}

// sample_random used to permanently mutate the placer's island/orientation
// state, so annealing after sampling started from a different configuration
// than a fresh placer. Sampling now runs on dedicated copies: place() after
// heavy sampling matches a pristine placer exactly, and the samples drawn
// for a fixed rng are unchanged by an interleaved place().
TEST(SaIncrementalTest, SampleRandomDoesNotPerturbAnnealing) {
  circuits::TestCase tc = circuits::make_testcase("VGA");
  SaOptions opts;
  opts.seed = 7;
  opts.max_moves = 2000;

  SaPlacer sampled(tc.circuit, opts);
  numeric::Rng rng(41);
  for (int k = 0; k < 8; ++k) (void)sampled.sample_random(rng);
  const SaResult after_sampling = sampled.place();
  const SaResult fresh = SaPlacer(tc.circuit, opts).place();
  EXPECT_DOUBLE_EQ(after_sampling.cost, fresh.cost);
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(after_sampling.placement.position(DeviceId{i}),
              fresh.placement.position(DeviceId{i}));
  }

  // Sampling sequence is a function of the rng alone.
  SaPlacer s1(tc.circuit, opts);
  SaPlacer s2(tc.circuit, opts);
  numeric::Rng r1(77), r2(77);
  (void)s1.sample_random(r1);
  (void)s2.sample_random(r2);
  (void)s2.place();  // must not disturb the sampling stream
  const netlist::Placement p1 = s1.sample_random(r1);
  const netlist::Placement p2 = s2.sample_random(r2);
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(p1.position(DeviceId{i}), p2.position(DeviceId{i}));
  }
}

}  // namespace
}  // namespace aplace::sa
