// Wirelength smoothing: WA/LSE values bound exact HPWL, gradients match
// finite differences, gamma annealing tightens the approximation, and the
// area term behaves likewise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuits/testcases.hpp"
#include "netlist/placement.hpp"
#include "test_util.hpp"
#include "wirelength/area_term.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace {
namespace {

using test::numeric_gradient;

std::vector<double> spread_positions(const netlist::Circuit& c,
                                     double pitch = 3.1) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.7 * static_cast<double>(i % 5) + 0.3 * static_cast<double>(i);
    v[n + i] = pitch * static_cast<double>(i / 5) +
               0.7 * static_cast<double>(i % 3);
  }
  return v;
}

TEST(WirelengthTest, ExactHpwlMatchesPlacement) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Circuit& c = tc.circuit;
  const std::size_t n = c.num_devices();
  const std::vector<double> v = spread_positions(c);

  netlist::Placement pl(c);
  for (std::size_t i = 0; i < n; ++i) {
    pl.set_position(DeviceId{i}, {v[i], v[n + i]});
  }
  wirelength::WaWirelength wl(c);
  EXPECT_NEAR(wl.exact_hpwl(v), pl.total_hpwl(), 1e-9);
}

TEST(WirelengthTest, DegenerateNetsAreSkipped) {
  // A single-pin (dangling) net used to reach minmax_element on the pin
  // range; it must contribute nothing to value, gradient or exact HPWL.
  netlist::Circuit c("dangling");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  const PinId pa = c.add_pin(a, "p", {1, 1});
  const PinId pb = c.add_pin(b, "p", {1, 1});
  const PinId dangling = c.add_pin(b, "q", {0.5, 0.5});
  c.add_net("n", {pa, pb});
  c.add_net("stub", {dangling}, /*weight=*/7.0);
  c.finalize();

  netlist::Circuit ref("reference");
  const DeviceId ra = ref.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId rb = ref.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  ref.add_net("n", {ref.add_pin(ra, "p", {1, 1}), ref.add_pin(rb, "p", {1, 1})});
  ref.finalize();

  const std::vector<double> v{0.0, 5.0, 1.0, 4.0};
  wirelength::WaWirelength wl(c);
  wirelength::WaWirelength wl_ref(ref);
  EXPECT_DOUBLE_EQ(wl.exact_hpwl(v), wl_ref.exact_hpwl(v));

  std::vector<double> g(4, 0.0), g_ref(4, 0.0);
  EXPECT_DOUBLE_EQ(wl.value_and_grad(v, g), wl_ref.value_and_grad(v, g_ref));
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g[i], g_ref[i]);

  wirelength::LseWirelength lse(c);
  std::fill(g.begin(), g.end(), 0.0);
  EXPECT_TRUE(std::isfinite(lse.value_and_grad(v, g)));
}

TEST(WirelengthTest, WaOverestimatesShrinkingWithGamma) {
  const netlist::Circuit c = test::two_device_circuit();
  std::vector<double> v = {0.0, 7.0, 0.0, 3.0};
  wirelength::WaWirelength wl(c);
  const double exact = wl.exact_hpwl(v);

  std::vector<double> grad(4, 0.0);
  wl.set_gamma(4.0);
  const double loose = wl.value_and_grad(v, grad);
  wl.set_gamma(0.05);
  std::fill(grad.begin(), grad.end(), 0.0);
  const double tight = wl.value_and_grad(v, grad);

  // WA underestimates the true max-min extent; tighter gamma approaches it.
  EXPECT_LE(loose, exact + 1e-9);
  EXPECT_LE(tight, exact + 1e-9);
  EXPECT_GT(tight, loose - 1e-12);
  EXPECT_NEAR(tight, exact, 0.05 * exact + 1e-6);
}

TEST(WirelengthTest, LseOverestimatesShrinkingWithGamma) {
  const netlist::Circuit c = test::two_device_circuit();
  std::vector<double> v = {0.0, 7.0, 0.0, 3.0};
  wirelength::LseWirelength wl(c);
  const double exact = wl.exact_hpwl(v);

  std::vector<double> grad(4, 0.0);
  wl.set_gamma(4.0);
  const double loose = wl.value_and_grad(v, grad);
  wl.set_gamma(0.05);
  std::fill(grad.begin(), grad.end(), 0.0);
  const double tight = wl.value_and_grad(v, grad);

  // LSE overestimates; tighter gamma approaches from above.
  EXPECT_GE(loose, exact - 1e-9);
  EXPECT_GE(tight, exact - 1e-9);
  EXPECT_LE(tight, loose + 1e-12);
  EXPECT_NEAR(tight, exact, 0.05 * exact + 1e-6);
}

// WA estimation error should be smaller than LSE at equal gamma (the
// paper's reason for choosing WA, after Hsu et al. DAC'11).
// Characterization: both smoothers converge to the exact HPWL as gamma
// shrinks, from below (WA) and above (LSE). Note: the paper (citing Hsu et
// al. DAC'11) attributes part of ePlace-A's edge to WA being tighter than
// LSE; for the low-degree nets that dominate analog circuits the two are
// actually comparable — for a 2-pin net of extent d, |err_WA| ~ 2d e^{-d/g}
// vs |err_LSE| ~ 2g e^{-d/g} — so we only assert convergence, not ranking.
// (Recorded as a reproduction finding in EXPERIMENTS.md.)
TEST(WirelengthTest, BothSmoothersConvergeWithGamma) {
  for (const std::string& name : {"Adder", "VGA", "SCF"}) {
    circuits::TestCase tc = circuits::make_testcase(name);
    const netlist::Circuit& c = tc.circuit;
    const std::vector<double> v = spread_positions(c);
    wirelength::WaWirelength wa(c);
    wirelength::LseWirelength lse(c);
    std::vector<double> g(v.size(), 0.0);
    const double exact = wa.exact_hpwl(v);
    double prev_wa = -1e300, prev_lse = 1e300;
    for (double gamma : {2.0, 0.5, 0.1}) {
      wa.set_gamma(gamma);
      lse.set_gamma(gamma);
      std::fill(g.begin(), g.end(), 0.0);
      const double vwa = wa.value_and_grad(v, g);
      std::fill(g.begin(), g.end(), 0.0);
      const double vlse = lse.value_and_grad(v, g);
      EXPECT_LE(vwa, exact + 1e-6) << name;    // WA from below
      EXPECT_GE(vlse, exact - 1e-6) << name;   // LSE from above
      EXPECT_GE(vwa, prev_wa - 1e-9) << name;  // monotone in gamma
      EXPECT_LE(vlse, prev_lse + 1e-9) << name;
      prev_wa = vwa;
      prev_lse = vlse;
    }
    EXPECT_NEAR(prev_wa, exact, 0.02 * exact);
    EXPECT_NEAR(prev_lse, exact, 0.02 * exact);
  }
}

class SmoothWlGradientTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(SmoothWlGradientTest, MatchesFiniteDifference) {
  const auto [kind, gamma] = GetParam();
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Circuit& c = tc.circuit;
  const std::vector<double> v = spread_positions(c);

  std::unique_ptr<wirelength::SmoothWirelength> wl;
  if (std::string(kind) == "wa") {
    wl = std::make_unique<wirelength::WaWirelength>(c);
  } else {
    wl = std::make_unique<wirelength::LseWirelength>(c);
  }
  wl->set_gamma(gamma);

  std::vector<double> grad(v.size(), 0.0);
  wl->value_and_grad(v, grad);

  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> g(x.size(), 0.0);
        return wl->value_and_grad(x, g);
      },
      v);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad[i], fd[i], 1e-5 + 1e-4 * std::abs(fd[i]))
        << kind << " gamma=" << gamma << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gammas, SmoothWlGradientTest,
    ::testing::Values(std::make_tuple("wa", 0.3), std::make_tuple("wa", 1.0),
                      std::make_tuple("wa", 5.0), std::make_tuple("lse", 0.3),
                      std::make_tuple("lse", 1.0),
                      std::make_tuple("lse", 5.0)));

TEST(AreaTermTest, ExactAreaMatchesPlacementBbox) {
  circuits::TestCase tc = circuits::make_testcase("VGA");
  const netlist::Circuit& c = tc.circuit;
  const std::size_t n = c.num_devices();
  const std::vector<double> v = spread_positions(c);
  netlist::Placement pl(c);
  for (std::size_t i = 0; i < n; ++i) {
    pl.set_position(DeviceId{i}, {v[i], v[n + i]});
  }
  wirelength::WaAreaTerm area(c);
  EXPECT_NEAR(area.exact_area(v), pl.layout_area(), 1e-9);
}

TEST(AreaTermTest, GradientMatchesFiniteDifference) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Circuit& c = tc.circuit;
  const std::vector<double> v = spread_positions(c);
  wirelength::WaAreaTerm area(c);
  area.set_gamma(0.8);

  std::vector<double> grad(v.size(), 0.0);
  area.value_and_grad(v, grad, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> g(x.size(), 0.0);
        return area.value_and_grad(x, g, 1.0);
      },
      v);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad[i], fd[i], 1e-4 + 1e-4 * std::abs(fd[i])) << i;
  }
}

TEST(AreaTermTest, SmoothedAreaApproachesExact) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const std::vector<double> v = spread_positions(tc.circuit);
  wirelength::WaAreaTerm area(tc.circuit);
  std::vector<double> g(v.size(), 0.0);
  area.set_gamma(0.05);
  const double smoothed = area.value_and_grad(v, g, 0.0);
  EXPECT_NEAR(smoothed, area.exact_area(v), 0.1 * area.exact_area(v));
}

}  // namespace
}  // namespace aplace
