// Testcase generators: every circuit builds, matches the paper's problem
// class (dozens of devices, analog constraint groups, valid specs).

#include <gtest/gtest.h>

#include "circuits/builder.hpp"
#include "circuits/testcases.hpp"

namespace aplace::circuits {
namespace {

class AllCircuitsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllCircuitsTest, BuildsFinalizedCircuit) {
  const TestCase tc = make_testcase(GetParam());
  EXPECT_TRUE(tc.circuit.finalized());
  EXPECT_EQ(tc.circuit.name(), GetParam());
}

TEST_P(AllCircuitsTest, HasDozensOfDevices) {
  const TestCase tc = make_testcase(GetParam());
  EXPECT_GE(tc.circuit.num_devices(), 12u);
  EXPECT_LE(tc.circuit.num_devices(), 80u);
}

TEST_P(AllCircuitsTest, EveryNetHasAtLeastTwoPins) {
  const TestCase tc = make_testcase(GetParam());
  for (const netlist::Net& net : tc.circuit.nets()) {
    EXPECT_GE(net.pins.size(), 2u) << net.name;
  }
}

TEST_P(AllCircuitsTest, HasAnalogConstraints) {
  const TestCase tc = make_testcase(GetParam());
  const netlist::ConstraintSet& cs = tc.circuit.constraints();
  EXPECT_FALSE(cs.symmetry_groups.empty());
  // Each design exercises alignment or ordering too.
  EXPECT_TRUE(!cs.alignments.empty() || !cs.orderings.empty());
}

TEST_P(AllCircuitsTest, HasCriticalNets) {
  const TestCase tc = make_testcase(GetParam());
  std::size_t critical = 0;
  for (const netlist::Net& net : tc.circuit.nets()) {
    if (net.critical) ++critical;
  }
  EXPECT_GE(critical, 2u);
}

TEST_P(AllCircuitsTest, SpecIsValid) {
  TestCase tc = make_testcase(GetParam());
  ASSERT_GE(tc.spec.metrics.size(), 3u);
  tc.spec.normalize_weights();
  double total = 0;
  for (const perf::MetricSpec& m : tc.spec.metrics) {
    EXPECT_GT(m.spec, 0.0) << m.name;
    EXPECT_GT(m.base, 0.0) << m.name;
    EXPECT_GT(m.weight, 0.0) << m.name;
    total += m.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(tc.spec.fom_threshold, 0.5);
  EXPECT_LT(tc.spec.fom_threshold, 1.0);
}

TEST_P(AllCircuitsTest, NominalPerformanceMeetsMostSpecs) {
  // With zero parasitics the design should be healthy: normalized metrics
  // near 1 on average (bases chosen above/below the specs accordingly).
  TestCase tc = make_testcase(GetParam());
  tc.spec.normalize_weights();
  double fom = 0;
  for (const perf::MetricSpec& m : tc.spec.metrics) {
    fom += m.weight * perf::normalize_metric(m.base, m);
  }
  EXPECT_GT(fom, 0.9) << "nominal FOM too low — spec miscalibrated";
}

INSTANTIATE_TEST_SUITE_P(Paper, AllCircuitsTest,
                         ::testing::ValuesIn(testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(TestcasesTest, CanonicalOrderMatchesPaper) {
  const std::vector<std::string>& names = testcase_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "Adder");
  EXPECT_EQ(names.back(), "VCO2");
}

TEST(TestcasesTest, UnknownNameThrows) {
  EXPECT_THROW(make_testcase("nonexistent"), CheckError);
}

TEST(TestcasesTest, RelativeAreasFollowPaperScale) {
  // SCF is by far the largest (big caps); the adder is the smallest.
  const double scf = make_testcase("SCF").circuit.total_device_area();
  const double adder = make_testcase("Adder").circuit.total_device_area();
  const double ccota = make_testcase("CC-OTA").circuit.total_device_area();
  EXPECT_GT(scf, 8 * ccota);
  EXPECT_LT(adder, ccota);
}

TEST(BuilderTest, RejectsSinglePinNamedNet) {
  Builder b("bad");
  b.mos("M1", netlist::DeviceType::Nmos, 2, 2, "a", "b", "c");
  b.mos("M2", netlist::DeviceType::Nmos, 2, 2, "a", "b", "dangling");
  EXPECT_THROW(b.finish(), CheckError);
}

TEST(BuilderTest, SymmetryByName) {
  Builder b("s");
  b.mos("M1", netlist::DeviceType::Nmos, 2, 2, "g", "d1", "s");
  b.mos("M2", netlist::DeviceType::Nmos, 2, 2, "g", "d1", "s");
  b.symmetry({{"M1", "M2"}});
  const netlist::Circuit c = b.finish();
  ASSERT_EQ(c.constraints().symmetry_groups.size(), 1u);
  EXPECT_EQ(c.constraints().symmetry_groups[0].pairs.size(), 1u);
}

}  // namespace
}  // namespace aplace::circuits
