// GNN performance model: graph construction, forward/backward correctness
// (finite differences on both weights and input coordinates) and training.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/testcases.hpp"
#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "gnn/trainer.hpp"
#include "test_util.hpp"

namespace aplace::gnn {
namespace {

std::vector<double> grid_positions(const netlist::Circuit& c) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    // Irregular spacing: keeps every laplacian feature away from its |.|
    // kink so finite differences are valid.
    v[i] = 2.0 * static_cast<double>(i % 4) + 1 +
           0.137 * static_cast<double>(i);
    v[n + i] = 2.0 * static_cast<double>(i / 4) + 1 +
               0.211 * static_cast<double>((i * 7) % 5);
  }
  return v;
}

TEST(CircuitGraphTest, AdjacencyRowStochastic) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const CircuitGraph g(tc.circuit, 10.0);
  const numeric::Matrix& a = g.adjacency();
  ASSERT_EQ(a.rows(), tc.circuit.num_devices());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double row = 0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_GE(a(r, c), 0.0);
      row += a(r, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
    EXPECT_GT(a(r, r), 0.0) << "self loop present";
  }
}

TEST(CircuitGraphTest, ConnectedDevicesShareEdges) {
  const netlist::Circuit c = test::two_device_circuit();
  const CircuitGraph g(c, 10.0);
  EXPECT_GT(g.adjacency()(0, 1), 0.0);
  EXPECT_GT(g.adjacency()(1, 0), 0.0);
}

TEST(CircuitGraphTest, FeaturesCarryPositionsAndStatics) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const CircuitGraph g(tc.circuit, 10.0);
  const std::vector<double> v = grid_positions(tc.circuit);
  const numeric::Matrix f = g.features(v);
  ASSERT_EQ(f.cols(), kFeatureDim);
  const std::size_t n = tc.circuit.num_devices();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(f(i, 0), v[i] / 10.0);
    EXPECT_DOUBLE_EQ(f(i, 1), v[n + i] / 10.0);
    // Exactly one type one-hot set.
    double onehot = 0;
    for (std::size_t t = 0; t < kNumDeviceTypes; ++t) onehot += f(i, 4 + t);
    EXPECT_DOUBLE_EQ(onehot, 1.0);
  }
}

TEST(GnnModelTest, ForwardInUnitInterval) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const CircuitGraph g(tc.circuit, 10.0);
  GnnModel model;
  numeric::Rng rng(3);
  model.initialize(rng);
  GnnModel::Activations act;
  const double phi =
      model.forward(g.adjacency(), g.features(grid_positions(tc.circuit)), act);
  EXPECT_GT(phi, 0.0);
  EXPECT_LT(phi, 1.0);
  EXPECT_DOUBLE_EQ(act.phi, phi);
}

TEST(GnnModelTest, ParameterRoundtrip) {
  GnnModel model;
  numeric::Rng rng(5);
  model.initialize(rng);
  const std::vector<double> p = model.parameters();
  ASSERT_EQ(p.size(), model.num_parameters());
  GnnModel copy;
  copy.set_parameters(p);
  EXPECT_EQ(copy.parameters(), p);
}

TEST(GnnModelTest, WeightGradientMatchesFiniteDifference) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const CircuitGraph g(tc.circuit, 10.0);
  GnnModel model;
  numeric::Rng rng(7);
  model.initialize(rng);
  const numeric::Matrix x = g.features(grid_positions(tc.circuit));

  GnnModel::Activations act;
  model.forward(g.adjacency(), x, act);
  std::vector<double> grad(model.num_parameters(), 0.0);
  // d(logit)/d(params): dlogit = 1.
  model.backward(g.adjacency(), act, 1.0, grad, nullptr);

  std::vector<double> params = model.parameters();
  const double h = 1e-6;
  // Spot-check a spread of parameter indices (full sweep is slow).
  for (std::size_t k = 0; k < params.size();
       k += std::max<std::size_t>(params.size() / 37, 1)) {
    const double orig = params[k];
    params[k] = orig + h;
    model.set_parameters(params);
    model.forward(g.adjacency(), x, act);
    const double lp = act.logit;
    params[k] = orig - h;
    model.set_parameters(params);
    model.forward(g.adjacency(), x, act);
    const double lm = act.logit;
    params[k] = orig;
    model.set_parameters(params);
    const double fd = (lp - lm) / (2 * h);
    EXPECT_NEAR(grad[k], fd, 1e-5 + 1e-4 * std::abs(fd)) << "param " << k;
  }
}

TEST(GnnModelTest, InputGradientMatchesFiniteDifference) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const CircuitGraph g(tc.circuit, 10.0);
  GnnModel model;
  numeric::Rng rng(11);
  model.initialize(rng);
  std::vector<double> v = grid_positions(tc.circuit);

  numeric::Matrix xg;
  const double phi0 =
      model.phi_and_input_grad(g.adjacency(), g.features(v), xg);
  (void)phi0;
  std::vector<double> grad_v(v.size(), 0.0);
  g.accumulate_position_grad(xg, grad_v);

  GnnModel::Activations act;
  const double h = 1e-5;
  for (std::size_t i = 0; i < v.size(); i += 3) {
    const double orig = v[i];
    v[i] = orig + h;
    const double fp = model.forward(g.adjacency(), g.features(v), act);
    v[i] = orig - h;
    const double fm = model.forward(g.adjacency(), g.features(v), act);
    v[i] = orig;
    const double fd = (fp - fm) / (2 * h);
    EXPECT_NEAR(grad_v[i], fd, 1e-6 + 1e-3 * std::abs(fd)) << "coord " << i;
  }
}

TEST(TrainerTest, LearnsSeparableLabels) {
  // Label = 1 when the layout is "stretched" (device 0 far right). The GNN
  // must learn this from coordinates.
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Circuit& c = tc.circuit;
  const CircuitGraph g(c, 10.0);
  const std::size_t n = c.num_devices();

  numeric::Rng rng(13);
  std::vector<Sample> samples;
  for (int k = 0; k < 160; ++k) {
    std::vector<double> v(2 * n);
    const bool stretched = k % 2 == 0;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = rng.uniform(0, 4) + (stretched ? 12.0 : 0.0);
      v[n + i] = rng.uniform(0, 4);
    }
    samples.push_back({std::move(v), stretched ? 1.0 : 0.0});
  }

  GnnModel model;
  numeric::Rng init(17);
  model.initialize(init);
  TrainOptions topts;
  topts.epochs = 250;
  topts.lr = 2e-2;
  Trainer trainer(g, model, topts);
  const TrainReport report = trainer.train(samples);
  EXPECT_GT(report.train_accuracy, 0.95) << "loss=" << report.final_loss;
  EXPECT_GT(report.validation_accuracy, 0.9);
}

}  // namespace
}  // namespace aplace::gnn
