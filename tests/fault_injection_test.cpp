// Fault-injection harness (robustness tentpole): drive all three flows over
// a gallery of adversarial circuits — malformed inputs, contradictory
// constraint sets, pathological geometry, poisoned GP hand-offs and expired
// budgets — and require the pipeline's contract to hold everywhere:
//
//   * a flow NEVER crashes or lets an exception escape;
//   * an Ok result means a legal placement with finite coordinates;
//   * a non-Ok result carries a structured Status (code != Ok) explaining
//     what went wrong, with validator rejections typed InvalidInput.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.hpp"

namespace aplace::core {
namespace {

using netlist::AlignmentKind;
using netlist::AlignmentPair;
using netlist::Axis;
using netlist::Circuit;
using netlist::CommonCentroidQuad;
using netlist::DeviceType;
using netlist::OrderDirection;
using netlist::OrderingConstraint;
using netlist::SymmetryGroup;

struct Adversary {
  std::string name;
  Circuit circuit;
  bool expect_invalid = false;  ///< pre-flight validation must reject it
};

// Adds a two-pin chain net between consecutive devices so finalize() passes
// (every pin must be on a net) and the wirelength engines have work to do.
void connect_chain(Circuit& c, const std::vector<DeviceId>& devs,
                   double weight = 1.0) {
  for (std::size_t i = 0; i + 1 < devs.size(); ++i) {
    const PinId a = c.add_center_pin(devs[i], "p" + std::to_string(i));
    const PinId b = c.add_center_pin(devs[i + 1], "q" + std::to_string(i));
    c.add_net("n" + std::to_string(i), {a, b}, weight);
  }
}

std::vector<DeviceId> add_devices(Circuit& c, int count, double w = 2.0,
                                  double h = 1.0) {
  std::vector<DeviceId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(c.add_device("m" + std::to_string(i), DeviceType::Nmos, w, h));
  }
  return out;
}

std::vector<Adversary> adversarial_circuits() {
  std::vector<Adversary> out;
  auto add = [&](std::string name, Circuit c, bool invalid = false) {
    out.push_back(Adversary{std::move(name), std::move(c), invalid});
  };

  // 1. Unfinalized circuit with a dangling pin: the classic API-misuse case.
  {
    Circuit c("unfinalized");
    const DeviceId d = c.add_device("m0", DeviceType::Nmos, 2, 1);
    c.add_center_pin(d, "g");  // never connected, finalize() never called
    add("unfinalized", std::move(c), /*invalid=*/true);
  }

  // 2. Empty-of-constraints, pinless circuit: no nets at all, HPWL is 0.
  {
    Circuit c("no-nets");
    add_devices(c, 3);
    c.finalize();
    add("no-nets", std::move(c));
  }

  // 3. A single device with a single-pin (dangling-but-legal) net.
  {
    Circuit c("single-device");
    const DeviceId d = c.add_device("m0", DeviceType::Nmos, 3, 2);
    c.add_net("n0", {c.add_center_pin(d, "g")});
    c.finalize();
    add("single-device", std::move(c));
  }

  // 4. Extreme aspect ratio next to square devices.
  {
    Circuit c("extreme-aspect");
    std::vector<DeviceId> d;
    d.push_back(c.add_device("sliver", DeviceType::Resistor, 100.0, 0.05));
    d.push_back(c.add_device("m1", DeviceType::Nmos, 2, 2));
    d.push_back(c.add_device("m2", DeviceType::Nmos, 2, 2));
    connect_chain(c, d);
    c.finalize();
    add("extreme-aspect", std::move(c));
  }

  // 5. Huge absolute scale (micron-grid numbers blown up by 1e6).
  {
    Circuit c("huge-scale");
    connect_chain(c, add_devices(c, 4, 2e6, 1e6));
    c.finalize();
    add("huge-scale", std::move(c));
  }

  // 6. Tiny absolute scale.
  {
    Circuit c("tiny-scale");
    connect_chain(c, add_devices(c, 4, 2e-5, 1e-5));
    c.finalize();
    add("tiny-scale", std::move(c));
  }

  // 7. Mixed scales in one net: 1e-3-sized devices wired to 1e3-sized ones.
  {
    Circuit c("mixed-scale");
    std::vector<DeviceId> d;
    d.push_back(c.add_device("tiny", DeviceType::Capacitor, 2e-3, 1e-3));
    d.push_back(c.add_device("big", DeviceType::Module, 2e3, 1e3));
    d.push_back(c.add_device("mid", DeviceType::Nmos, 2, 1));
    connect_chain(c, d);
    c.finalize();
    add("mixed-scale", std::move(c));
  }

  // 8. One massively weighted net spanning every device.
  {
    Circuit c("heavy-net");
    const std::vector<DeviceId> d = add_devices(c, 10);
    std::vector<PinId> pins;
    for (std::size_t i = 0; i < d.size(); ++i) {
      pins.push_back(c.add_center_pin(d[i], "p" + std::to_string(i)));
    }
    c.add_net("bus", pins, 1e6);
    c.finalize();
    add("heavy-net", std::move(c));
  }

  // 9. Many symmetry pairs in one group (a wide symmetry island).
  {
    Circuit c("many-sym-pairs");
    const std::vector<DeviceId> d = add_devices(c, 8);
    connect_chain(c, d);
    SymmetryGroup g;
    for (std::size_t i = 0; i + 1 < d.size(); i += 2) g.pairs.push_back({d[i], d[i + 1]});
    c.add_symmetry_group(std::move(g));
    c.finalize();
    add("many-sym-pairs", std::move(c));
  }

  // 10. A stack of self-symmetric devices sharing one axis.
  {
    Circuit c("self-sym-stack");
    const std::vector<DeviceId> d = add_devices(c, 5, 3.0, 1.0);
    connect_chain(c, d);
    SymmetryGroup g;
    g.self_symmetric = d;
    c.add_symmetry_group(std::move(g));
    c.finalize();
    add("self-sym-stack", std::move(c));
  }

  // 11. Cyclic ordering: A < B, B < C, C < A in x. finalize() accepts it
  //     (per-constraint checks only); the pre-flight validator must not.
  {
    Circuit c("cyclic-ordering");
    const std::vector<DeviceId> d = add_devices(c, 3);
    connect_chain(c, d);
    c.add_ordering({OrderDirection::LeftToRight, {d[0], d[1]}});
    c.add_ordering({OrderDirection::LeftToRight, {d[1], d[2]}});
    c.add_ordering({OrderDirection::LeftToRight, {d[2], d[0]}});
    c.finalize();
    add("cyclic-ordering", std::move(c), /*invalid=*/true);
  }

  // 12. Vertical-axis symmetry pair ordered bottom-to-top: the mirror makes
  //     their y equal, the ordering demands a strict y gap.
  {
    Circuit c("sym-vs-ordering");
    const std::vector<DeviceId> d = add_devices(c, 4);
    connect_chain(c, d);
    c.add_symmetry_group({Axis::Vertical, {{d[0], d[1]}}, {}});
    c.add_ordering({OrderDirection::BottomToTop, {d[0], d[1]}});
    c.finalize();
    add("sym-vs-ordering", std::move(c), /*invalid=*/true);
  }

  // 13. VerticalCenter alignment (equal x) vs. left-to-right ordering.
  {
    Circuit c("align-vs-ordering");
    const std::vector<DeviceId> d = add_devices(c, 3);
    connect_chain(c, d);
    c.add_alignment({AlignmentKind::VerticalCenter, d[0], d[2]});
    c.add_ordering({OrderDirection::LeftToRight, {d[0], d[1], d[2]}});
    c.finalize();
    add("align-vs-ordering", std::move(c), /*invalid=*/true);
  }

  // 14. Deep left-to-right ordering chain over every device.
  {
    Circuit c("deep-ordering");
    const std::vector<DeviceId> d = add_devices(c, 10);
    connect_chain(c, d);
    c.add_ordering({OrderDirection::LeftToRight, d});
    c.finalize();
    add("deep-ordering", std::move(c));
  }

  // 15. Crossed orderings: x-order one way, y-order the other. Feasible
  //     (a staircase) but adversarial for packers.
  {
    Circuit c("crossed-orderings");
    const std::vector<DeviceId> d = add_devices(c, 5);
    connect_chain(c, d);
    c.add_ordering({OrderDirection::LeftToRight, d});
    c.add_ordering(
        {OrderDirection::BottomToTop, {d[4], d[3], d[2], d[1], d[0]}});
    c.finalize();
    add("crossed-orderings", std::move(c));
  }

  // 16. Common-centroid quad with an ordering slicing through it.
  {
    Circuit c("centroid-plus-ordering");
    const std::vector<DeviceId> d = add_devices(c, 6);
    connect_chain(c, d);
    c.add_common_centroid({d[0], d[3], d[1], d[2]});
    c.add_ordering({OrderDirection::LeftToRight, {d[4], d[5]}});
    c.finalize();
    add("centroid-plus-ordering", std::move(c));
  }

  // 17. Two common-centroid quads sharing two devices.
  {
    Circuit c("overlapping-centroids");
    const std::vector<DeviceId> d = add_devices(c, 6);
    connect_chain(c, d);
    c.add_common_centroid({d[0], d[1], d[2], d[3]});
    c.add_common_centroid({d[2], d[3], d[4], d[5]});
    c.finalize();
    add("overlapping-centroids", std::move(c));
  }

  // 18. Bottom-alignment chain across devices of very different heights.
  {
    Circuit c("alignment-chain");
    std::vector<DeviceId> d;
    for (int i = 0; i < 5; ++i) {
      d.push_back(c.add_device("m" + std::to_string(i), DeviceType::Pmos, 2.0,
                               0.5 + 1.5 * i));
    }
    connect_chain(c, d);
    for (std::size_t i = 0; i + 1 < d.size(); ++i) {
      c.add_alignment({AlignmentKind::Bottom, d[i], d[i + 1]});
    }
    c.finalize();
    add("alignment-chain", std::move(c));
  }

  // 19. One giant module dwarfing many small devices (density hot spot).
  {
    Circuit c("giant-module");
    std::vector<DeviceId> d;
    d.push_back(c.add_device("core", DeviceType::Module, 40, 40));
    for (int i = 0; i < 8; ++i) {
      d.push_back(c.add_device("m" + std::to_string(i), DeviceType::Nmos, 1, 1));
    }
    connect_chain(c, d);
    c.finalize();
    add("giant-module", std::move(c));
  }

  // 20. Symmetric pairs of extreme-aspect devices (mirror + sliver packing).
  {
    Circuit c("sliver-symmetry");
    std::vector<DeviceId> d;
    for (int i = 0; i < 4; ++i) {
      d.push_back(c.add_device("r" + std::to_string(i), DeviceType::Resistor,
                               20.0, 0.2));
    }
    connect_chain(c, d);
    c.add_symmetry_group({Axis::Vertical, {{d[0], d[1]}, {d[2], d[3]}}, {}});
    c.finalize();
    add("sliver-symmetry", std::move(c));
  }

  // 21. Every constraint kind at once on a small circuit.
  {
    Circuit c("all-constraints");
    const std::vector<DeviceId> d = add_devices(c, 8);
    connect_chain(c, d);
    c.add_symmetry_group({Axis::Vertical, {{d[0], d[1]}}, {d[2]}});
    c.add_common_centroid({d[3], d[6], d[4], d[5]});
    c.add_alignment({AlignmentKind::Bottom, d[3], d[4]});
    c.add_ordering({OrderDirection::LeftToRight, {d[3], d[4], d[5]}});
    c.finalize();
    add("all-constraints", std::move(c));
  }

  // 22. Horizontal-axis symmetry (the less-exercised mirror direction)
  //     combined with a bottom-to-top ordering of the same pair — legal,
  //     since the mirror equalizes x while the ordering separates y.
  {
    Circuit c("horizontal-sym-ordered");
    const std::vector<DeviceId> d = add_devices(c, 4);
    connect_chain(c, d);
    c.add_symmetry_group({Axis::Horizontal, {{d[0], d[1]}}, {}});
    c.add_ordering({OrderDirection::BottomToTop, {d[0], d[1]}});
    c.finalize();
    add("horizontal-sym-ordered", std::move(c));
  }

  return out;
}

bool finite_placement(const netlist::Placement& pl) {
  for (const geom::Point& p : pl.positions()) {
    if (!(std::isfinite(p.x) && std::isfinite(p.y))) return false;
  }
  return true;
}

// The harness contract, checked for one flow on one adversary.
void check_contract(const char* flow, const Adversary& adv,
                    const std::optional<FlowResult>& r) {
  ASSERT_TRUE(r.has_value()) << flow << " threw on '" << adv.name << "'";
  if (adv.expect_invalid) {
    EXPECT_FALSE(r->ok()) << flow << " accepted invalid input '" << adv.name
                          << "'";
    EXPECT_EQ(r->status.code(), aplace::StatusCode::InvalidInput)
        << flow << " on '" << adv.name << "': " << r->status.to_string();
    return;
  }
  if (r->ok()) {
    EXPECT_TRUE(r->legal(1e-6))
        << flow << " reported Ok but is illegal on '" << adv.name << "'";
    EXPECT_TRUE(finite_placement(r->placement))
        << flow << " produced non-finite coordinates on '" << adv.name << "'";
  } else {
    EXPECT_NE(r->status.code(), aplace::StatusCode::Ok);
    EXPECT_FALSE(r->status.message().empty())
        << flow << " failed without a message on '" << adv.name << "'";
  }
}

EPlaceAOptions quick_eplace() {
  EPlaceAOptions o;
  o.candidates = 1;
  o.gp.num_starts = 1;
  o.gp.max_iters = 150;
  return o;
}

SaFlowOptions quick_sa() {
  SaFlowOptions o;
  o.sa.max_moves = 5000;
  return o;
}

TEST(FaultInjectionTest, EPlaceASurvivesAdversarialCircuits) {
  for (const Adversary& adv : adversarial_circuits()) {
    std::optional<FlowResult> r;
    EXPECT_NO_THROW(r.emplace(run_eplace_a(adv.circuit, quick_eplace())))
        << "ePlace-A threw on '" << adv.name << "'";
    check_contract("ePlace-A", adv, r);
  }
}

TEST(FaultInjectionTest, PriorWorkSurvivesAdversarialCircuits) {
  for (const Adversary& adv : adversarial_circuits()) {
    std::optional<FlowResult> r;
    PriorWorkOptions opts;
    opts.gp.outer_iters = 4;
    EXPECT_NO_THROW(r.emplace(run_prior_work(adv.circuit, opts)))
        << "prior-work threw on '" << adv.name << "'";
    check_contract("prior-work", adv, r);
  }
}

TEST(FaultInjectionTest, SaSurvivesAdversarialCircuits) {
  for (const Adversary& adv : adversarial_circuits()) {
    std::optional<FlowResult> r;
    EXPECT_NO_THROW(r.emplace(run_sa(adv.circuit, quick_sa())))
        << "SA threw on '" << adv.name << "'";
    check_contract("SA", adv, r);
  }
}

// Poisoned GP hand-off: the legalizers must sanitize NaN coordinates and
// still end with a legal placement (or a structured error), never NaN out.
TEST(FaultInjectionTest, PoisonedGpHandOffIsSanitized) {
  Circuit c("poisoned");
  const std::vector<DeviceId> d = add_devices(c, 6);
  connect_chain(c, d);
  c.finalize();

  EPlaceAOptions eo = quick_eplace();
  eo.inject.poison_gp = true;
  const FlowResult ep = run_eplace_a(c, eo);
  EXPECT_TRUE(ep.gp_diverged);
  if (ep.ok()) {
    EXPECT_TRUE(ep.legal(1e-6));
    EXPECT_TRUE(finite_placement(ep.placement));
  } else {
    EXPECT_NE(ep.status.code(), aplace::StatusCode::Ok);
  }

  PriorWorkOptions po;
  po.gp.outer_iters = 4;
  po.inject.poison_gp = true;
  const FlowResult pw = run_prior_work(c, po);
  EXPECT_TRUE(pw.gp_diverged);
  if (pw.ok()) {
    EXPECT_TRUE(pw.legal(1e-6));
    EXPECT_TRUE(finite_placement(pw.placement));
  } else {
    EXPECT_NE(pw.status.code(), aplace::StatusCode::Ok);
  }
}

// Injected failures at every chain level, on every flow: the chain must
// bottom out at greedy shift rather than crash or lie about success.
TEST(FaultInjectionTest, InjectedChainFailuresNeverCrash) {
  Circuit c("inject-all");
  const std::vector<DeviceId> d = add_devices(c, 6);
  connect_chain(c, d);
  c.add_symmetry_group({Axis::Vertical, {{d[0], d[1]}}, {}});
  c.finalize();

  for (int mask = 1; mask < 8; ++mask) {
    FaultInjection inj;
    inj.fail_primary_dp = (mask & 1) != 0;
    inj.fail_rounded_lp = (mask & 2) != 0;
    inj.fail_two_stage = (mask & 4) != 0;

    EPlaceAOptions eo = quick_eplace();
    eo.inject = inj;
    std::optional<FlowResult> r;
    EXPECT_NO_THROW(r.emplace(run_eplace_a(c, eo))) << "mask " << mask;
    ASSERT_TRUE(r.has_value());
    if (r->ok()) {
      EXPECT_TRUE(r->legal(1e-6)) << "mask " << mask;
    } else {
      EXPECT_NE(r->status.code(), aplace::StatusCode::Ok) << "mask " << mask;
    }
    if (inj.fail_primary_dp) {
      EXPECT_NE(r->fallback, FallbackLevel::None) << "mask " << mask;
    }
  }
}

// Expired budgets on all three flows: BudgetExhausted/deadline_hit shows up
// in the result, and the answer is still legal or a structured error.
TEST(FaultInjectionTest, ExpiredBudgetsReportDeadlineHit) {
  Circuit c("budget");
  const std::vector<DeviceId> d = add_devices(c, 6);
  connect_chain(c, d);
  c.finalize();

  EPlaceAOptions eo = quick_eplace();
  eo.time_budget_seconds = 1e-6;
  const FlowResult ep = run_eplace_a(c, eo);
  EXPECT_TRUE(ep.deadline_hit);
  if (ep.ok()) {
    EXPECT_TRUE(ep.legal(1e-6));
  }

  PriorWorkOptions po;
  po.time_budget_seconds = 1e-6;
  const FlowResult pw = run_prior_work(c, po);
  EXPECT_TRUE(pw.deadline_hit);
  if (pw.ok()) {
    EXPECT_TRUE(pw.legal(1e-6));
  }

  SaFlowOptions so = quick_sa();
  so.time_budget_seconds = 1e-6;
  const FlowResult sa = run_sa(c, so);
  EXPECT_TRUE(sa.deadline_hit);
  if (sa.ok()) {
    EXPECT_TRUE(sa.legal(1e-6));
  }
}

// The validator itself: every expect_invalid adversary is rejected with a
// non-empty actionable message; every valid one passes clean.
TEST(FaultInjectionTest, ValidatorClassifiesTheGallery) {
  for (const Adversary& adv : adversarial_circuits()) {
    const aplace::Status s = netlist::validate(adv.circuit);
    if (adv.expect_invalid) {
      EXPECT_FALSE(s.ok()) << "'" << adv.name << "' should be invalid";
      EXPECT_EQ(s.code(), aplace::StatusCode::InvalidInput);
      EXPECT_FALSE(s.message().empty());
    } else {
      EXPECT_TRUE(s.ok()) << "'" << adv.name << "': " << s.to_string();
    }
  }
}

}  // namespace
}  // namespace aplace::core
