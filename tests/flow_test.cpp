// End-to-end flow integration: each method produces legal placements on
// paper testcases; performance-driven variants improve the GNN objective;
// ablation directions (area term, soft symmetry) match the paper.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "core/perf_flow.hpp"

namespace aplace::core {
namespace {

class ConventionalFlowTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConventionalFlowTest, AllThreeMethodsLegal) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;

  EPlaceAOptions eopts;
  eopts.candidates = 1;  // keep the test fast
  const FlowResult ep = run_eplace_a(c, eopts);
  EXPECT_TRUE(ep.legal(1e-6)) << "ePlace-A illegal on " << GetParam();
  EXPECT_GT(ep.area(), 0);
  EXPECT_GT(ep.hpwl(), 0);

  const FlowResult pw = run_prior_work(c);
  EXPECT_TRUE(pw.legal(1e-6)) << "prior work illegal on " << GetParam();

  SaFlowOptions sopts;
  sopts.sa.max_moves = 30000;
  const FlowResult sa = run_sa(c, sopts);
  EXPECT_TRUE(sa.legal(1e-6)) << "SA illegal on " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Subset, ConventionalFlowTest,
                         ::testing::Values("Adder", "CC-OTA", "CM-OTA1",
                                           "VCO1"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(FlowTest, AreaTermAblationMatchesPaperDirection) {
  // Paper Fig. 2: dropping the area term inflates area substantially.
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  EPlaceAOptions with, without;
  with.candidates = without.candidates = 1;
  without.gp.eta_rel = 0.0;
  const FlowResult rw = run_eplace_a(tc.circuit, with);
  const FlowResult ro = run_eplace_a(tc.circuit, without);
  ASSERT_TRUE(rw.legal() && ro.legal());
  EXPECT_LT(rw.area(), ro.area() * 1.10)
      << "area term should not hurt area meaningfully";
}

TEST(FlowTest, HardSymmetryRunsAndStaysLegal) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  EPlaceAOptions opts;
  opts.candidates = 1;
  opts.gp.hard_symmetry = true;
  const FlowResult r = run_eplace_a(tc.circuit, opts);
  EXPECT_TRUE(r.legal(1e-6));
}

TEST(FlowTest, RuntimesAreRecorded) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceAOptions opts;
  opts.candidates = 1;
  const FlowResult r = run_eplace_a(tc.circuit, opts);
  EXPECT_GT(r.gp_seconds, 0);
  EXPECT_GT(r.dp_seconds, 0);
  EXPECT_GE(r.total_seconds, r.gp_seconds + r.dp_seconds - 1e-9);
}

TEST(FlowTest, AnalyticalFlowsCarryPerTermTraces) {
  // Both analytical placers run through CompositeObjective, so every
  // FlowResult must surface the per-term instrumentation; SA has no
  // gradient terms and stays empty.
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceAOptions eopts;
  eopts.candidates = 2;  // exercise candidate trace aggregation too
  const FlowResult ep = run_eplace_a(tc.circuit, eopts);
  ASSERT_FALSE(ep.gp_trace.empty());
  for (const char* term : {"wirelength", "density", "boundary"}) {
    const gp::TermStats* st = ep.gp_trace.find(term);
    ASSERT_NE(st, nullptr) << term;
    EXPECT_GT(st->evals, 0u) << term;
  }
  EXPECT_GT(ep.gp_trace.total_seconds(), 0.0);
  EXPECT_FALSE(ep.gp_trace.samples.empty());

  const FlowResult pw = run_prior_work(tc.circuit);
  ASSERT_FALSE(pw.gp_trace.empty());
  EXPECT_NE(pw.gp_trace.find("wirelength"), nullptr);
  EXPECT_NE(pw.gp_trace.find("density"), nullptr);
  EXPECT_FALSE(pw.gp_trace.samples.empty());

  SaFlowOptions sopts;
  sopts.sa.max_moves = 5000;
  const FlowResult sa = run_sa(tc.circuit, sopts);
  EXPECT_TRUE(sa.gp_trace.empty());
}

// --- robustness: fallback chain, budgets, structured errors ---------------

TEST(FlowRobustnessTest, ForcedInfeasiblePrimaryRecoversViaFallback) {
  // The ISSUE's mandatory case: force the primary ILP to report infeasible
  // and require the chain to still deliver a legal placement with a
  // degraded FallbackLevel.
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  EPlaceAOptions opts;
  opts.candidates = 1;
  opts.inject.fail_primary_dp = true;
  const FlowResult r = run_eplace_a(tc.circuit, opts);
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.legal(1e-6));
  EXPECT_NE(r.fallback, FallbackLevel::None)
      << "primary was forced to fail; a fallback must have produced this";
}

TEST(FlowRobustnessTest, FullInjectedChainBottomsOutAtGreedyShift) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceAOptions opts;
  opts.candidates = 1;
  opts.inject.fail_primary_dp = true;
  opts.inject.fail_rounded_lp = true;
  opts.inject.fail_two_stage = true;
  const FlowResult r = run_eplace_a(tc.circuit, opts);
  EXPECT_EQ(r.fallback, FallbackLevel::GreedyShift)
      << "status: " << r.status.to_string();
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.legal(1e-6));
}

TEST(FlowRobustnessTest, PriorWorkRecoversFromForcedPrimaryFailure) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  PriorWorkOptions opts;
  opts.inject.fail_primary_dp = true;
  const FlowResult r = run_prior_work(tc.circuit, opts);
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.legal(1e-6));
  EXPECT_EQ(r.fallback, FallbackLevel::GreedyShift);
}

TEST(FlowRobustnessTest, SaRecoversFromForcedPrimaryFailure) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  SaFlowOptions opts;
  opts.sa.max_moves = 20000;
  opts.inject.fail_primary_dp = true;
  const FlowResult r = run_sa(tc.circuit, opts);
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.legal(1e-6));
  EXPECT_NE(r.fallback, FallbackLevel::None);
}

TEST(FlowRobustnessTest, TinyTimeBudgetDegradesWithoutThrowing) {
  // An already-expired wall-clock budget: every deadline-aware stage must
  // step aside and the deadline-free greedy last resort still has to end
  // the flow with a legal placement.
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceAOptions opts;
  opts.candidates = 2;
  opts.time_budget_seconds = 1e-6;
  std::optional<FlowResult> r;
  EXPECT_NO_THROW(r.emplace(run_eplace_a(tc.circuit, opts)));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->deadline_hit);
  EXPECT_TRUE(r->ok()) << r->status.to_string();
  EXPECT_TRUE(r->legal(1e-6));
  EXPECT_EQ(r->fallback, FallbackLevel::GreedyShift)
      << "deadline-aware legalizers should have reported BudgetExhausted";
}

TEST(FlowRobustnessTest, InvalidInputReturnsStructuredStatus) {
  // Unfinalized circuit with a dangling pin: pre-flight validation must
  // reject it from every flow without throwing.
  netlist::Circuit c("broken");
  const auto d = c.add_device("m1", netlist::DeviceType::Nmos, 2.0, 1.0);
  c.add_center_pin(d, "g");  // never connected; finalize() never called

  std::optional<FlowResult> r;
  EXPECT_NO_THROW(r.emplace(run_eplace_a(c)));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok());
  EXPECT_EQ(r->status.code(), aplace::StatusCode::InvalidInput);
  EXPECT_NE(r->status.to_string().find("pre-flight"), std::string::npos)
      << r->status.to_string();

  const FlowResult pw = run_prior_work(c);
  EXPECT_EQ(pw.status.code(), aplace::StatusCode::InvalidInput);

  const FlowResult sa = run_sa(c);
  EXPECT_EQ(sa.status.code(), aplace::StatusCode::InvalidInput);
}

// --- performance-driven ---------------------------------------------------------

DatasetOptions quick_dataset() {
  DatasetOptions d;
  d.random_samples = 120;
  d.optimized_samples = 4;
  d.sa_moves_per_sample = 500;
  return d;
}

gnn::TrainOptions quick_training() {
  gnn::TrainOptions t;
  t.epochs = 60;
  return t;
}

TEST(PerfFlowTest, ContextBuildsAndGnnLearnsSomething) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  auto ctx = build_perf_context(tc.circuit, tc.spec, quick_dataset(),
                                quick_training());
  ASSERT_NE(ctx, nullptr);
  EXPECT_GT(ctx->label_threshold, 0.0);
  EXPECT_LT(ctx->label_threshold, 1.0);
  EXPECT_GT(ctx->training.train_accuracy, 0.6)
      << "GNN failed to fit the placement-quality labels at all";
}

TEST(PerfFlowTest, EPlaceApLegalAndScored) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  auto ctx = build_perf_context(tc.circuit, tc.spec, quick_dataset(),
                                quick_training());
  EPlaceAOptions opts;
  opts.candidates = 1;
  const PerfFlowResult r = run_eplace_ap(tc.circuit, *ctx, opts);
  EXPECT_TRUE(r.flow.legal(1e-6));
  EXPECT_GT(r.perf.fom, 0.0);
  EXPECT_LE(r.perf.fom, 1.0);
}

TEST(PerfFlowTest, PerfDrivenVariantsRunForAllMethods) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  auto ctx = build_perf_context(tc.circuit, tc.spec, quick_dataset(),
                                quick_training());

  EPlaceAOptions eopts;
  eopts.candidates = 1;
  const PerfFlowResult ap = run_eplace_ap(tc.circuit, *ctx, eopts);
  EXPECT_TRUE(ap.flow.legal(1e-6));

  const PerfFlowResult pw = run_prior_work_perf(tc.circuit, *ctx);
  EXPECT_TRUE(pw.flow.legal(1e-6));

  SaFlowOptions sopts;
  sopts.sa.max_moves = 4000;
  const PerfFlowResult sp = run_sa_perf(tc.circuit, *ctx, sopts, 1.0);
  EXPECT_TRUE(sp.flow.legal(1e-6));
}

TEST(PerfFlowTest, GnnPhiIsProbability) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  auto ctx = build_perf_context(tc.circuit, tc.spec, quick_dataset(),
                                quick_training());
  SaFlowOptions sopts;
  sopts.sa.max_moves = 2000;
  const FlowResult r = run_sa(tc.circuit, sopts);
  const double phi = gnn_phi(*ctx, r.placement);
  EXPECT_GT(phi, 0.0);
  EXPECT_LT(phi, 1.0);
}

}  // namespace
}  // namespace aplace::core
