// Thread-count determinism of the placement flows. The parallelism layers
// (candidate fan-out, multi-chain SA, density/wirelength hot loops) are
// designed so a fixed seed gives bit-identical quality for ANY pool size:
// chunk boundaries depend only on range size + grain, reductions happen in
// chunk order, and every concurrent unit draws from its own split RNG
// stream. These tests pin that contract at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "base/simd.hpp"
#include "base/thread_pool.hpp"
#include "circuits/testcases.hpp"
#include "core/batch.hpp"
#include "core/flow.hpp"
#include "io/netlist_io.hpp"
#include "obs/obs.hpp"
#include "sa/annealer.hpp"

namespace {

using namespace aplace;

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Restore the default global pool afterwards so other tests (and test
// order) are unaffected.
class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    base::ThreadPool::set_global_threads(base::ThreadPool::default_threads());
  }
};

void expect_same_quality(const netlist::QualityReport& a,
                         const netlist::QualityReport& b,
                         const char* what, unsigned threads) {
  EXPECT_EQ(a.hpwl, b.hpwl) << what << " at " << threads << " threads";
  EXPECT_EQ(a.area, b.area) << what << " at " << threads << " threads";
  EXPECT_EQ(a.overlap_area, b.overlap_area)
      << what << " at " << threads << " threads";
}

TEST_F(DeterminismTest, EPlaceAIdenticalAcrossThreadCounts) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  core::EPlaceAOptions opts;
  opts.candidates = 3;  // exercise the concurrent candidate fan-out
  opts.gp.seed = 11;

  std::vector<core::FlowResult> results;
  for (unsigned threads : kThreadCounts) {
    base::ThreadPool::set_global_threads(threads);
    results.push_back(core::run_eplace_a(tc.circuit, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_quality(results[0].quality, results[i].quality, "eplace-a",
                        kThreadCounts[i]);
    EXPECT_EQ(results[0].fallback, results[i].fallback);
  }
}

TEST_F(DeterminismTest, MultiChainSaIdenticalAcrossThreadCounts) {
  circuits::TestCase tc = circuits::make_testcase("Comp1");
  core::SaFlowOptions opts;
  opts.sa.seed = 7;
  opts.sa.num_chains = 3;  // exercise the concurrent chain fan-out
  opts.sa.max_moves = 4000;

  std::vector<core::FlowResult> results;
  for (unsigned threads : kThreadCounts) {
    base::ThreadPool::set_global_threads(threads);
    results.push_back(core::run_sa(tc.circuit, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_quality(results[0].quality, results[i].quality, "sa",
                        kThreadCounts[i]);
  }
}

TEST_F(DeterminismTest, MultiChainSaLegacyEngineIdenticalAcrossThreadCounts) {
  // Same contract for the legacy full-recompute evaluator: the engine flag
  // changes per-move evaluation only, never the reduction order.
  circuits::TestCase tc = circuits::make_testcase("SCF");
  core::SaFlowOptions opts;
  opts.sa.seed = 19;
  opts.sa.num_chains = 3;
  opts.sa.max_moves = 2500;
  opts.sa.incremental = false;

  std::vector<core::FlowResult> results;
  for (unsigned threads : kThreadCounts) {
    base::ThreadPool::set_global_threads(threads);
    results.push_back(core::run_sa(tc.circuit, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_quality(results[0].quality, results[i].quality, "sa-legacy",
                        kThreadCounts[i]);
  }
}

TEST_F(DeterminismTest, PriorWorkIdenticalAcrossThreadCounts) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  core::PriorWorkOptions opts;
  opts.gp.seed = 5;

  std::vector<core::FlowResult> results;
  for (unsigned threads : kThreadCounts) {
    base::ThreadPool::set_global_threads(threads);
    results.push_back(core::run_prior_work(tc.circuit, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_quality(results[0].quality, results[i].quality, "prior-work",
                        kThreadCounts[i]);
  }
}

TEST_F(DeterminismTest, SimdKernelsIdenticalAcrossThreadCounts) {
  // The SIMD kernels must honor the same thread-count contract as the
  // scalar ones: per-net/per-device work is independent and the
  // chunk-ordered reductions are untouched, so with SIMD explicitly ON the
  // flow is bit-identical at 1/2/8 threads (regardless of the APLACE_SIMD
  // environment this test process inherited).
  struct SimdOnGuard {
    bool saved = simd::default_enabled();
    SimdOnGuard() { simd::set_default_enabled(true); }
    ~SimdOnGuard() { simd::set_default_enabled(saved); }
  } simd_on;

  circuits::TestCase tc = circuits::make_testcase("VCO2");
  core::EPlaceAOptions opts;
  opts.candidates = 2;
  opts.gp.seed = 11;

  std::vector<core::FlowResult> results;
  for (unsigned threads : kThreadCounts) {
    base::ThreadPool::set_global_threads(threads);
    results.push_back(core::run_eplace_a(tc.circuit, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_same_quality(results[0].quality, results[i].quality, "eplace-simd",
                        kThreadCounts[i]);
    EXPECT_EQ(io::placement_to_text(results[0].placement),
              io::placement_to_text(results[i].placement))
        << "placement bits moved at " << kThreadCounts[i] << " threads";
  }
}

TEST_F(DeterminismTest, MultiChainSaBeatsOrMatchesSingleChain) {
  // Multi-chain is a best-of reduction over independent streams: its cost
  // can only improve on the best single chain it contains (chain 0 uses
  // stream 0, the same stream a 1-chain run uses).
  circuits::TestCase tc = circuits::make_testcase("Adder");
  sa::SaOptions one;
  one.seed = 13;
  one.max_moves = 3000;
  sa::SaOptions three = one;
  three.num_chains = 3;

  const sa::SaResult r1 = sa::SaPlacer(tc.circuit, one).place();
  const sa::SaResult r3 = sa::SaPlacer(tc.circuit, three).place();
  EXPECT_LE(r3.cost, r1.cost);
}

TEST_F(DeterminismTest, ObsDisabledBitIdenticalAcrossFullCircuitRegistry) {
  // The observability layer is observation-only: toggling it must not move
  // a single placement bit. Pinned on every built-in circuit with the
  // analytical prior-work flow (cheap enough to sweep the registry), using
  // the exact-double placement serialization so one changed coordinate bit
  // fails the test.
  struct EnabledGuard {
    bool saved = obs::enabled();
    ~EnabledGuard() { obs::set_enabled(saved); }
  } guard;

  for (const std::string& name : circuits::testcase_names()) {
    circuits::TestCase tc = circuits::make_testcase(name);
    core::PriorWorkOptions opts;
    opts.gp.seed = 3;

    obs::set_enabled(true);
    const core::FlowResult on = core::run_prior_work(tc.circuit, opts);
    obs::set_enabled(false);
    const core::FlowResult off = core::run_prior_work(tc.circuit, opts);
    obs::set_enabled(true);

    EXPECT_EQ(io::placement_to_text(on.placement),
              io::placement_to_text(off.placement))
        << name << ": placement moved when observability was toggled";
    expect_same_quality(on.quality, off.quality, name.c_str(), 1);
    EXPECT_EQ(on.spans.empty(), false) << name;
    EXPECT_EQ(off.spans.empty(), true) << name;
  }
}

TEST_F(DeterminismTest, ObsDisabledBitIdenticalForSaFlow) {
  // Same contract for the annealer path (per-chain counter flushes, chain
  // spans, incremental-evaluator stats).
  struct EnabledGuard {
    bool saved = obs::enabled();
    ~EnabledGuard() { obs::set_enabled(saved); }
  } guard;

  circuits::TestCase tc = circuits::make_testcase("VGA");
  core::SaFlowOptions opts;
  opts.sa.seed = 21;
  opts.sa.num_chains = 2;
  opts.sa.max_moves = 3000;

  obs::set_enabled(true);
  const core::FlowResult on = core::run_sa(tc.circuit, opts);
  obs::set_enabled(false);
  const core::FlowResult off = core::run_sa(tc.circuit, opts);
  obs::set_enabled(true);

  EXPECT_EQ(io::placement_to_text(on.placement),
            io::placement_to_text(off.placement));
  expect_same_quality(on.quality, off.quality, "sa-obs-toggle", 1);
}

TEST_F(DeterminismTest, GoldenQualityPinnedAcrossFullCircuitRegistry) {
  // Committed golden values: run_prior_work at gp.seed=3 on every registry
  // circuit must reproduce these doubles *exactly* (EXPECT_EQ, no
  // tolerance). Catches cross-version drift the thread-count tests above
  // cannot see — they only compare a binary against itself. If an
  // intentional algorithm change moves these numbers, regenerate the table
  // with the same flow/seed and say so in the commit message.
  //
  // Pinned on the scalar kernel path: the SIMD kernels agree only to 1e-12
  // per evaluation (and their bits differ between AVX2/SSE2/scalar builds),
  // which the iterate trajectory amplifies, so exact cross-build pinning is
  // only meaningful for the scalar reference. simd_test.cpp covers the
  // scalar-vs-SIMD agreement contract.
  struct SimdOffGuard {
    bool saved = simd::default_enabled();
    SimdOffGuard() { simd::set_default_enabled(false); }
    ~SimdOffGuard() { simd::set_default_enabled(saved); }
  } simd_off;

  struct Golden {
    const char* name;
    double hpwl, area, overlap_area;
  };
  constexpr Golden kGolden[] = {
      {"Adder", 59.199999999999996, 72, 0},
      {"CC-OTA", 83.400000000000006, 168, 0},
      {"Comp1", 78.900000000000006, 117, 0},
      {"Comp2", 120, 217, 0},
      {"CM-OTA1", 72.5, 156, 0},
      {"CM-OTA2", 104.40000000000001, 204, 0},
      {"SCF", 352.50000000000006, 1935, 0},
      {"VGA", 105.09999999999999, 208, 0},
      {"VCO1", 212.5, 374, 0},
      {"VCO2", 391.19999999999999, 812, 0},
  };
  ASSERT_EQ(std::size(kGolden), circuits::testcase_names().size());

  for (const Golden& g : kGolden) {
    circuits::TestCase tc = circuits::make_testcase(g.name);
    core::PriorWorkOptions opts;
    opts.gp.seed = 3;
    const core::FlowResult r = core::run_prior_work(tc.circuit, opts);
    ASSERT_TRUE(r.ok()) << g.name;
    EXPECT_TRUE(r.legal(1e-6)) << g.name;
    EXPECT_EQ(r.quality.hpwl, g.hpwl) << g.name;
    EXPECT_EQ(r.quality.area, g.area) << g.name;
    EXPECT_EQ(r.quality.overlap_area, g.overlap_area) << g.name;
  }
}

TEST_F(DeterminismTest, BatchResultsIdenticalSequentialVsParallel) {
  circuits::TestCase a = circuits::make_testcase("Adder");
  circuits::TestCase b = circuits::make_testcase("CC-OTA");
  std::vector<core::BatchJob> jobs;
  for (const netlist::Circuit* c : {&a.circuit, &b.circuit}) {
    core::BatchJob ep;
    ep.circuit = c;
    ep.flow = core::FlowKind::EPlaceA;
    ep.eplace.candidates = 2;
    jobs.push_back(ep);
    core::BatchJob sa_job;
    sa_job.circuit = c;
    sa_job.flow = core::FlowKind::Sa;
    sa_job.sa.sa.max_moves = 2000;
    jobs.push_back(sa_job);
  }

  base::ThreadPool::set_global_threads(1);
  core::BatchOptions seq;
  seq.parallel = false;
  const core::BatchReport r1 = core::run_batch(jobs, seq);

  base::ThreadPool::set_global_threads(8);
  const core::BatchReport r8 = core::run_batch(jobs, {});

  ASSERT_EQ(r1.items.size(), r8.items.size());
  for (std::size_t i = 0; i < r1.items.size(); ++i) {
    expect_same_quality(r1.items[i].result.quality,
                        r8.items[i].result.quality, "batch", 8);
    EXPECT_EQ(r1.items[i].result.ok(), r8.items[i].result.ok());
  }
  EXPECT_EQ(r1.num_ok, r1.items.size());
}

}  // namespace
