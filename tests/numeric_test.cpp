// Numeric substrate: vector helpers, dense matrix, spectral transforms and
// the three optimizers.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numeric/adam.hpp"
#include "numeric/cg.hpp"
#include "numeric/fft.hpp"
#include "numeric/matrix.hpp"
#include "numeric/nesterov.hpp"
#include "numeric/rng.hpp"
#include "numeric/spectral.hpp"
#include "numeric/vec.hpp"

namespace aplace::numeric {
namespace {

TEST(VecTest, BasicOps) {
  Vec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2(Vec{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  axpy(2.0, a, b);
  EXPECT_EQ(b, (Vec{6, -1, 12}));
  scale(b, 0.5);
  EXPECT_EQ(b, (Vec{3, -0.5, 6}));
  EXPECT_EQ(sub(a, Vec{1, 1, 1}), (Vec{0, 1, 2}));
}

TEST(MatrixTest, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = Matrix::multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);

  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6);
}

// --- spectral ---------------------------------------------------------------

TEST(SpectralTest, Dct1dRoundtrip) {
  const spectral::Basis basis(16);
  std::vector<double> v(16);
  Rng rng(5);
  for (double& x : v) x = rng.uniform(-2, 2);
  const std::vector<double> a = basis.dct(v);
  const std::vector<double> back = basis.idct(a);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 1e-10);
  }
}

TEST(SpectralTest, DctOfCosineIsImpulse) {
  const std::size_t n = 32;
  const spectral::Basis basis(n);
  // v_j = cos(pi*k0*(2j+1)/(2n)) should produce a_k = delta_{k,k0}.
  const std::size_t k0 = 5;
  std::vector<double> v(n);
  for (std::size_t j = 0; j < n; ++j) v[j] = basis.cosine(k0, j);
  const std::vector<double> a = basis.dct(v);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(a[k], k == k0 ? 1.0 : 0.0, 1e-10) << k;
  }
}

TEST(SpectralTest, Dct2dRoundtrip) {
  const std::size_t nx = 8, ny = 12;
  const spectral::Basis bx(nx), by(ny);
  Matrix m(ny, nx);
  Rng rng(7);
  for (double& x : m.data()) x = rng.uniform(-1, 1);
  const Matrix a = spectral::dct2d(m, bx, by);
  const Matrix back = spectral::idct2d(a, bx, by);
  for (std::size_t r = 0; r < ny; ++r) {
    for (std::size_t c = 0; c < nx; ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), 1e-10);
    }
  }
}

TEST(SpectralTest, SineSynthesisDifferentiatesCosine) {
  // d/dx of cos(w x) = -w sin(w x): sine synthesis of DCT coefficients
  // scaled by w must reproduce minus the derivative of the cosine series.
  const std::size_t n = 64;
  const spectral::Basis basis(n);
  const std::size_t k0 = 3;
  std::vector<double> v(n), a(n, 0.0);
  a[k0] = 1.0;
  const std::vector<double> synth = basis.sine_synthesis(a);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(synth[j], basis.sine(k0, j), 1e-12);
  }
}

// --- FFT path vs. dense-basis oracle ----------------------------------------

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-3, 3);
  return v;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data()) x = rng.uniform(-3, 3);
  return m;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "(" << r << ", " << c << ")";
    }
  }
}

TEST(FftSpectralTest, Matches1dNaiveAcrossSizes) {
  Rng rng(11);
  for (const std::size_t n : {4u, 8u, 16u, 64u, 128u}) {
    const spectral::Basis basis(n);
    ASSERT_TRUE(basis.uses_fft()) << n;
    const std::vector<double> v = random_vec(n, rng);
    const std::vector<double> fwd = basis.dct(v);
    const std::vector<double> fwd_ref = basis.naive_dct(v);
    const std::vector<double> cos_s = basis.idct(v);
    const std::vector<double> cos_ref = basis.naive_idct(v);
    const std::vector<double> sin_s = basis.sine_synthesis(v);
    const std::vector<double> sin_ref = basis.naive_sine_synthesis(v);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(fwd[j], fwd_ref[j], 1e-10) << "dct n=" << n << " j=" << j;
      EXPECT_NEAR(cos_s[j], cos_ref[j], 1e-10) << "idct n=" << n << " j=" << j;
      EXPECT_NEAR(sin_s[j], sin_ref[j], 1e-10) << "dst n=" << n << " j=" << j;
    }
  }
}

TEST(FftSpectralTest, Matches2dNaiveAcrossSizes) {
  Rng rng(13);
  for (const std::size_t n : {4u, 8u, 16u, 64u, 128u}) {
    const spectral::Basis bx(n), by(n);
    const Matrix m = random_matrix(n, n, rng);
    expect_matrix_near(spectral::dct2d(m, bx, by),
                       spectral::dct2d_naive(m, bx, by), 1e-10);
    expect_matrix_near(spectral::idct2d(m, bx, by),
                       spectral::idct2d_naive(m, bx, by), 1e-10);
    expect_matrix_near(spectral::isxcy2d(m, bx, by),
                       spectral::isxcy2d_naive(m, bx, by), 1e-10);
    expect_matrix_near(spectral::icxsy2d(m, bx, by),
                       spectral::icxsy2d_naive(m, bx, by), 1e-10);
  }
}

TEST(FftSpectralTest, RectangularGridsMatchNaive) {
  Rng rng(17);
  const spectral::Basis bx(16), by(64);
  const Matrix m = random_matrix(64, 16, rng);
  expect_matrix_near(spectral::dct2d(m, bx, by),
                     spectral::dct2d_naive(m, bx, by), 1e-10);
  expect_matrix_near(spectral::isxcy2d(m, bx, by),
                     spectral::isxcy2d_naive(m, bx, by), 1e-10);
}

TEST(FftSpectralTest, InplaceMatchesReturningVariants) {
  Rng rng(19);
  const spectral::Basis bx(32), by(8);
  const Matrix m = random_matrix(8, 32, rng);
  Matrix inplace = m;
  spectral::dct2d_inplace(inplace, bx, by);
  expect_matrix_near(inplace, spectral::dct2d(m, bx, by), 1e-12);
  inplace = m;
  spectral::icxsy2d_inplace(inplace, bx, by);
  expect_matrix_near(inplace, spectral::icxsy2d(m, bx, by), 1e-12);
}

TEST(FftSpectralTest, NonPow2FallsBackToNaive) {
  Rng rng(23);
  const spectral::Basis b12(12);
  EXPECT_FALSE(b12.uses_fft());
  const std::vector<double> v = random_vec(12, rng);
  const std::vector<double> back = b12.idct(b12.dct(v));
  for (std::size_t j = 0; j < v.size(); ++j) {
    EXPECT_NEAR(back[j], v[j], 1e-10);
  }
  // Mixed grid: FFT along x (16 bins), dense fallback along y (12 bins).
  const spectral::Basis bx(16);
  const Matrix m = random_matrix(12, 16, rng);
  const Matrix round = spectral::idct2d(spectral::dct2d(m, bx, b12), bx, b12);
  expect_matrix_near(round, m, 1e-10);
}

TEST(FftSpectralTest, FftPlanRejectsNonPow2) {
  EXPECT_TRUE(fft::is_pow2(2));
  EXPECT_TRUE(fft::is_pow2(256));
  EXPECT_FALSE(fft::is_pow2(0));
  EXPECT_FALSE(fft::is_pow2(1));
  EXPECT_FALSE(fft::is_pow2(12));
  EXPECT_EQ(fft::next_pow2(1), 2u);
  EXPECT_EQ(fft::next_pow2(33), 64u);
  EXPECT_EQ(fft::next_pow2(64), 64u);
}

// --- optimizers ---------------------------------------------------------------

TEST(NesterovTest, MinimizesQuadratic) {
  // f(v) = 0.5 * sum c_i (v_i - t_i)^2
  const Vec target{1.0, -2.0, 3.0, 0.5};
  const Vec curv{1.0, 4.0, 0.5, 2.0};
  Vec v{0, 0, 0, 0};
  NesterovOptions opts;
  opts.max_iters = 300;
  opts.initial_step = 0.1;
  const NesterovSolver solver(opts);
  solver.minimize(
      v,
      [&](std::span<const double> x, std::span<double> g) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          g[i] = curv[i] * (x[i] - target[i]);
        }
      },
      [](const NesterovState& st, std::span<const double>) {
        return st.gradient_norm > 1e-9;
      });
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], target[i], 1e-5);
  }
}

TEST(NesterovTest, CallbackCanStopEarly) {
  Vec v{10.0};
  NesterovOptions opts;
  opts.max_iters = 1000;
  const NesterovSolver solver(opts);
  const int iters = solver.minimize(
      v,
      [](std::span<const double> x, std::span<double> g) { g[0] = x[0]; },
      [](const NesterovState& st, std::span<const double>) {
        return st.iter < 4;
      });
  EXPECT_EQ(iters, 5);
}

TEST(CgTest, MinimizesRosenbrockish) {
  // Classic Rosenbrock in 2D; CG with restarts should get close.
  Vec v{-1.2, 1.0};
  CgOptions opts;
  opts.max_iters = 2000;
  opts.initial_step = 1e-3;
  const CgSolver cg(opts);
  cg.minimize(
      v,
      [](std::span<const double> x, std::span<double> g) {
        const double a = x[0], b = x[1];
        g[0] = -2 * (1 - a) - 400 * a * (b - a * a);
        g[1] = 200 * (b - a * a);
        return (1 - a) * (1 - a) + 100 * (b - a * a) * (b - a * a);
      },
      nullptr);
  EXPECT_NEAR(v[0], 1.0, 0.05);
  EXPECT_NEAR(v[1], 1.0, 0.1);
}

TEST(CgTest, QuadraticExactlyInFewIters) {
  Vec v{5, -3};
  const CgSolver cg;
  cg.minimize(
      v,
      [](std::span<const double> x, std::span<double> g) {
        g[0] = 2 * x[0];
        g[1] = 8 * x[1];
        return x[0] * x[0] + 4 * x[1] * x[1];
      },
      nullptr);
  EXPECT_NEAR(v[0], 0, 1e-4);
  EXPECT_NEAR(v[1], 0, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  std::vector<double> p{4.0, -7.0};
  Adam adam(2, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    std::vector<double> g{2 * (p[0] - 1), 2 * (p[1] + 2)};
    adam.step(p, g);
  }
  EXPECT_NEAR(p[0], 1.0, 1e-3);
  EXPECT_NEAR(p[1], -2.0, 1e-3);
  EXPECT_EQ(adam.steps_taken(), 500);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  Rng c(43);
  bool same = true;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) same &= a2.uniform() == c.uniform();
  EXPECT_FALSE(same);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace aplace::numeric
