// Simulated-annealing placer: sequence-pair packing properties, symmetry
// islands, annealer legality/determinism/improvement.

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "netlist/evaluator.hpp"
#include "sa/annealer.hpp"
#include "sa/island.hpp"
#include "sa/sequence_pair.hpp"
#include "test_util.hpp"

namespace aplace::sa {
namespace {

TEST(SequencePairTest, IdentityPacksInRow) {
  // (abc, abc) = all left-of relations -> a row.
  SequencePair sp(3);
  const std::vector<double> w{2, 3, 4}, h{1, 1, 1};
  const auto pk = sp.pack(w, h);
  EXPECT_DOUBLE_EQ(pk.x[0], 0);
  EXPECT_DOUBLE_EQ(pk.x[1], 2);
  EXPECT_DOUBLE_EQ(pk.x[2], 5);
  EXPECT_DOUBLE_EQ(pk.width, 9);
  EXPECT_DOUBLE_EQ(pk.height, 1);
}

TEST(SequencePairTest, ReversedMinusPacksInColumn) {
  // gamma+ = (0,1,2), gamma- = (2,1,0): 0 above 1 above 2.
  SequencePair sp(3);
  sp.swap_in_both(0, 2);           // gamma+ = 2,1,0 ; gamma- = 2,1,0
  sp.swap_in_plus(0, 2);           // gamma+ = 0,1,2 ; gamma- = 2,1,0
  const std::vector<double> w{2, 2, 2}, h{1, 2, 3};
  const auto pk = sp.pack(w, h);
  EXPECT_DOUBLE_EQ(pk.width, 2);
  EXPECT_DOUBLE_EQ(pk.height, 6);
}

TEST(SequencePairTest, RelationsAreConsistent) {
  SequencePair sp(4);
  numeric::Rng rng(9);
  sp.shuffle(rng);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      // Exactly one of: left_of(a,b), left_of(b,a), below(a,b), below(b,a).
      const int rel = sp.left_of(a, b) + sp.left_of(b, a) + sp.below(a, b) +
                      sp.below(b, a);
      EXPECT_EQ(rel, 1);
    }
  }
}

TEST(SequencePairTest, PackingNeverOverlapsProperty) {
  numeric::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    SequencePair sp(n);
    sp.shuffle(rng);
    std::vector<double> w(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.uniform(0.5, 4.0);
      h[i] = rng.uniform(0.5, 4.0);
    }
    const auto pk = sp.pack(w, h);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        const geom::Rect ra(pk.x[a], pk.y[a], pk.x[a] + w[a], pk.y[a] + h[a]);
        const geom::Rect rb(pk.x[b], pk.y[b], pk.x[b] + w[b], pk.y[b] + h[b]);
        EXPECT_FALSE(ra.overlaps(rb))
            << "trial " << trial << " blocks " << a << "," << b;
      }
    }
  }
}

TEST(SequencePairTest, LcsPackerMatchesNaiveBitForBit) {
  // The Tang-Wong LCS packer computes the same max/+ reductions over the
  // same operands as the naive longest-path packer, so coordinates must be
  // bit-identical — not merely close — on random instances.
  numeric::Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 39));
    SequencePair sp(n);
    sp.shuffle(rng);
    std::vector<double> w(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.uniform(0.25, 7.0);
      h[i] = rng.uniform(0.25, 7.0);
    }
    const auto fast = sp.pack(w, h);
    const auto naive = sp.pack_naive(w, h);
    EXPECT_DOUBLE_EQ(fast.width, naive.width) << "trial " << trial;
    EXPECT_DOUBLE_EQ(fast.height, naive.height) << "trial " << trial;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(fast.x[i], naive.x[i]) << "trial " << trial;
      EXPECT_DOUBLE_EQ(fast.y[i], naive.y[i]) << "trial " << trial;
    }
  }
}

TEST(IslandTest, PairRowGeometry) {
  const netlist::Circuit c = test::constrained_circuit();
  const netlist::SymmetryGroup& g = c.constraints().symmetry_groups[0];
  Island island(c, g);
  // One pair row (2x2 + 2x2 = 4 wide) and one self row (4 wide).
  EXPECT_EQ(island.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(island.width(), 4);
  EXPECT_DOUBLE_EQ(island.height(), 2 + 2);

  // Members mirror exactly about the island axis (x = 2).
  for (const Island::Member& m : island.members()) {
    if (!c.device(m.device).name.starts_with("S")) continue;
    EXPECT_DOUBLE_EQ(m.center.x, 2.0);
  }
  const auto members = island.members();
  double ax = 0, bx = 0, ay = -1, by = -2;
  for (const auto& m : members) {
    if (c.device(m.device).name == "A") { ax = m.center.x; ay = m.center.y; }
    if (c.device(m.device).name == "B") { bx = m.center.x; by = m.center.y; }
  }
  EXPECT_DOUBLE_EQ(ax + bx, 4.0);
  EXPECT_DOUBLE_EQ(ay, by);
}

TEST(IslandTest, MirrorRowSwapsSides) {
  const netlist::Circuit c = test::constrained_circuit();
  Island island(c, c.constraints().symmetry_groups[0]);
  auto x_of = [&](const char* name) {
    for (const auto& m : island.members()) {
      if (c.device(m.device).name == name) return m.center.x;
    }
    return -1.0;
  };
  const double before = x_of("A");
  island.mirror_row(0);
  EXPECT_NE(x_of("A"), before);
  island.mirror_row(0);
  EXPECT_DOUBLE_EQ(x_of("A"), before);
}

TEST(IslandTest, SwapRowsKeepsExtent) {
  const netlist::Circuit c = test::constrained_circuit();
  Island island(c, c.constraints().symmetry_groups[0]);
  const double w = island.width(), h = island.height();
  island.swap_rows(0, 1);
  EXPECT_DOUBLE_EQ(island.width(), w);
  EXPECT_DOUBLE_EQ(island.height(), h);
}

TEST(SaPlacerTest, ProducesLegalPlacement) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  SaOptions opts;
  opts.seed = 5;
  opts.max_moves = 20000;
  SaPlacer placer(tc.circuit, opts);
  const SaResult r = placer.place();
  const netlist::QualityReport q =
      netlist::Evaluator(tc.circuit).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6)) << "overlap=" << q.overlap_area
                             << " sym=" << q.symmetry_violation;
  EXPECT_GT(r.moves_accepted, 0);
}

TEST(SaPlacerTest, DeterministicForSeed) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  SaOptions opts;
  opts.seed = 11;
  opts.max_moves = 5000;
  const SaResult a = SaPlacer(tc.circuit, opts).place();
  const SaResult b = SaPlacer(tc.circuit, opts).place();
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(a.placement.position(DeviceId{i}),
              b.placement.position(DeviceId{i}));
  }
}

TEST(SaPlacerTest, MoreBudgetDoesNotHurtMuch) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  SaOptions small, large;
  small.seed = large.seed = 3;
  small.max_moves = 2000;
  large.max_moves = 60000;
  const double cost_small = SaPlacer(tc.circuit, small).place().cost;
  const double cost_large = SaPlacer(tc.circuit, large).place().cost;
  EXPECT_LE(cost_large, cost_small * 1.05);
}

TEST(SaPlacerTest, SymmetryHoldsExactlyViaIslands) {
  circuits::TestCase tc = circuits::make_testcase("Comp2");
  SaOptions opts;
  opts.max_moves = 10000;
  const SaResult r = SaPlacer(tc.circuit, opts).place();
  const netlist::Evaluator ev(tc.circuit);
  for (const netlist::SymmetryGroup& g :
       tc.circuit.constraints().symmetry_groups) {
    EXPECT_NEAR(ev.symmetry_residual(r.placement, g), 0.0, 1e-9);
  }
}

TEST(SaPlacerTest, RandomSamplesAreLegalAndDiverse) {
  circuits::TestCase tc = circuits::make_testcase("VGA");
  SaPlacer placer(tc.circuit, {});
  numeric::Rng rng(23);
  const netlist::Evaluator ev(tc.circuit);
  double first_area = -1;
  bool diverse = false;
  for (int k = 0; k < 10; ++k) {
    const netlist::Placement pl = placer.sample_random(rng);
    const netlist::QualityReport q = ev.evaluate(pl);
    EXPECT_NEAR(q.overlap_area, 0.0, 1e-9);
    EXPECT_NEAR(q.symmetry_violation, 0.0, 1e-9);
    if (first_area < 0) first_area = q.area;
    else if (std::abs(q.area - first_area) > 1e-9) diverse = true;
  }
  EXPECT_TRUE(diverse);
}

}  // namespace
}  // namespace aplace::sa
