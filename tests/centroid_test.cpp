// Common-centroid constraint: netlist validation, evaluator residuals,
// GP penalty gradient, and exact satisfaction through both legalizers.

#include <gtest/gtest.h>

#include "gp/penalties.hpp"
#include "legal/ilp_detailed.hpp"
#include "legal/two_stage_lp.hpp"
#include "netlist/evaluator.hpp"
#include "test_util.hpp"

namespace aplace {
namespace {

// Four matched 2x2 devices (a cross-coupled quad) plus a bias device.
netlist::Circuit quad_circuit() {
  netlist::Circuit c("quad");
  std::vector<PinId> pins;
  for (const char* name : {"A1", "A2", "B1", "B2", "T"}) {
    const DeviceId d = c.add_device(name, netlist::DeviceType::Nmos, 2, 2);
    pins.push_back(c.add_center_pin(d, "p"));
  }
  c.add_net("n", pins);
  c.add_common_centroid({c.find_device("A1"), c.find_device("A2"),
                         c.find_device("B1"), c.find_device("B2")});
  c.finalize();
  return c;
}

TEST(CentroidTest, RejectsDuplicateDevices) {
  netlist::Circuit c("bad");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId d = c.add_device("D", netlist::DeviceType::Nmos, 2, 2);
  EXPECT_THROW(c.add_common_centroid({a, a, b, d}), CheckError);
}

TEST(CentroidTest, FinalizeRejectsFootprintMismatch) {
  netlist::Circuit c("bad2");
  const DeviceId a1 = c.add_device("A1", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId a2 = c.add_device("A2", netlist::DeviceType::Nmos, 3, 2);
  const DeviceId b1 = c.add_device("B1", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b2 = c.add_device("B2", netlist::DeviceType::Nmos, 2, 2);
  std::vector<PinId> pins;
  for (DeviceId d : {a1, a2, b1, b2}) {
    pins.push_back(c.add_center_pin(d, "p"));
  }
  c.add_net("n", pins);
  c.add_common_centroid({a1, a2, b1, b2});
  EXPECT_THROW(c.finalize(), CheckError);
}

TEST(CentroidTest, EvaluatorResidual) {
  const netlist::Circuit c = quad_circuit();
  netlist::Placement pl(c);
  // Perfect cross-coupled 2x2 arrangement.
  pl.set_position(c.find_device("A1"), {1, 1});
  pl.set_position(c.find_device("B1"), {3, 1});
  pl.set_position(c.find_device("B2"), {1, 3});
  pl.set_position(c.find_device("A2"), {3, 3});
  pl.set_position(c.find_device("T"), {6, 1});
  const netlist::Evaluator ev(c);
  EXPECT_NEAR(ev.centroid_residual(pl, c.constraints().common_centroids[0]),
              0.0, 1e-12);
  EXPECT_TRUE(ev.evaluate(pl).legal());

  pl.set_position(c.find_device("A2"), {4, 3});  // break by 1 in x
  EXPECT_NEAR(ev.centroid_residual(pl, c.constraints().common_centroids[0]),
              1.0, 1e-12);
  EXPECT_FALSE(ev.evaluate(pl).legal());
}

TEST(CentroidTest, PenaltyGradientMatchesFiniteDifference) {
  const netlist::Circuit c = quad_circuit();
  const gp::ConstraintPenalties pen(c);
  std::vector<double> v{0.7, 3.1, 2.9, 1.2, 6.0, 1.1, 2.8, 0.9, 3.3, 1.0};
  std::vector<double> grad(v.size(), 0.0);
  pen.common_centroid(v, grad, 1.0);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) {
        std::vector<double> g(x.size(), 0.0);
        return pen.common_centroid(x, g, 1.0);
      },
      v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(grad[i], fd[i], 1e-6 + 1e-6 * std::abs(fd[i])) << i;
  }
}

TEST(CentroidTest, IlpSatisfiesExactly) {
  const netlist::Circuit c = quad_circuit();
  // Start from a rough cross arrangement with overlap.
  const std::vector<double> v{1.0, 2.6, 2.4, 0.8, 5.5,
                              1.0, 2.6, 0.9, 2.7, 1.0};
  const legal::IlpResult r = legal::IlpDetailedPlacer(c).place(v);
  ASSERT_TRUE(r.ok());
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6)) << "centroid=" << q.centroid_violation
                             << " overlap=" << q.overlap_area;
  EXPECT_NEAR(q.centroid_violation, 0.0, 1e-6);
}

TEST(CentroidTest, TwoStageSatisfiesExactly) {
  const netlist::Circuit c = quad_circuit();
  const std::vector<double> v{1.0, 2.6, 2.4, 0.8, 5.5,
                              1.0, 2.6, 0.9, 2.7, 1.0};
  const legal::TwoStageResult r = legal::TwoStageLpLegalizer(c).place(v);
  ASSERT_TRUE(r.ok());
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6)) << "centroid=" << q.centroid_violation;
}

}  // namespace
}  // namespace aplace
