// Unit tests for base::ThreadPool: parallel_for correctness, chunking
// invariance (the determinism contract), exception propagation, nested
// submission, and RNG stream splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "base/thread_pool.hpp"
#include "numeric/rng.hpp"

namespace {

using aplace::base::ThreadPool;

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(4).num_threads(), 4u);
  EXPECT_EQ(ThreadPool(0).num_threads(), 1u);  // clamped to serial
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(std::size_t{0}, hits.size(), 16,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                      });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract: for a fixed (n, grain), every pool size must
  // produce the same chunk decomposition, so chunk-ordered reductions give
  // bit-identical floating-point results.
  for (const std::size_t n : {std::size_t{1}, std::size_t{17},
                              std::size_t{1000}, std::size_t{4096}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{16},
                                    std::size_t{256}}) {
      std::set<std::vector<std::pair<std::size_t, std::size_t>>> seen;
      for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallel_for(std::size_t{0}, n, grain,
                          [&](std::size_t lo, std::size_t hi) {
                            std::lock_guard<std::mutex> lock(mu);
                            chunks.emplace_back(lo, hi);
                          });
        std::sort(chunks.begin(), chunks.end());
        seen.insert(chunks);
      }
      EXPECT_EQ(seen.size(), 1u) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerialBitExactly) {
  // Chunk-ordered reduction of an ill-conditioned series must not depend
  // on the pool size.
  const std::size_t n = 20000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.1 * static_cast<double>(i)) *
           std::pow(10.0, static_cast<double>(i % 7) - 3);
  }
  std::vector<double> sums;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t grain = 512;
    const std::size_t chunks = ThreadPool::chunk_count(n, grain);
    std::vector<double> partial(chunks, 0.0);
    pool.parallel_for(std::size_t{0}, chunks, 1,
                      [&](std::size_t clo, std::size_t chi) {
                        for (std::size_t c = clo; c < chi; ++c) {
                          const std::size_t lo = c * grain;
                          const std::size_t hi = std::min(n, lo + grain);
                          double s = 0;
                          for (std::size_t i = lo; i < hi; ++i) s += x[i];
                          partial[c] = s;
                        }
                      });
    double total = 0;
    for (double p : partial) total += p;
    sums.push_back(total);
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ThreadPoolTest, TaskGroupRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWait) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.run([i] {
        if (i == 5) throw std::runtime_error("task 5 failed");
      });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(std::size_t{0}, std::size_t{100}, 1,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo == 50) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmissionDoesNotDeadlock) {
  // Tasks that themselves run parallel_for on the same pool: the waiting
  // task help-runs queued work, so even a 2-thread pool with 8 outer tasks
  // x 8 inner chunks must finish.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  ThreadPool::TaskGroup outer(pool);
  for (int t = 0; t < 8; ++t) {
    outer.run([&pool, &inner] {
      pool.parallel_for(std::size_t{0}, std::size_t{64}, 8,
                        [&inner](std::size_t lo, std::size_t hi) {
                          inner.fetch_add(static_cast<int>(hi - lo),
                                          std::memory_order_relaxed);
                        });
    });
  }
  outer.wait();
  EXPECT_EQ(inner.load(), 8 * 64);
}

TEST(ThreadPoolTest, SerialPoolRunsTasksInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  ThreadPool::TaskGroup group(pool);
  group.run([&ran_on] { ran_on = std::this_thread::get_id(); });
  group.wait();
  EXPECT_EQ(ran_on, caller);
}

TEST(SplitSeedTest, DistinctStreamsAndNoAdditiveAliasing) {
  using aplace::numeric::split_seed;
  // Streams from one master never collide with each other or with nearby
  // masters (the old `seed + 48 * k` scheme aliased across both).
  std::set<std::uint64_t> seen;
  for (std::uint64_t master : {1ULL, 2ULL, 3ULL, 49ULL, 97ULL}) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(split_seed(master, stream));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 64u);
  // Nested splits stay distinct from first-level ones.
  const std::uint64_t child = split_seed(7, 3);
  for (std::uint64_t s = 0; s < 64; ++s) {
    EXPECT_NE(split_seed(child, s), split_seed(7, s));
  }
}

}  // namespace
