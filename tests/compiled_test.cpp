// Property tests for netlist::CompiledCircuit: every flat array and CSR
// table must round-trip exactly against the Circuit accessors it mirrors,
// on every circuit in the registry. This is the contract that lets engines
// index compiled tables instead of rebuilding adjacency (see
// docs/DATA_MODEL.md) — any divergence here would silently skew every
// engine at once.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuits/testcases.hpp"
#include "core/compile_cache.hpp"
#include "netlist/compiled.hpp"
#include "numeric/rng.hpp"

namespace {

using namespace aplace;
using netlist::CompiledCircuit;

class CompiledAllCircuitsTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, CompiledAllCircuitsTest,
    ::testing::ValuesIn(circuits::testcase_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST_P(CompiledAllCircuitsTest, DeviceArraysMatchCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const CompiledCircuit cc(c);

  ASSERT_EQ(cc.num_devices(), c.num_devices());
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const netlist::Device& d = c.device(DeviceId{i});
    EXPECT_EQ(cc.dev_width()[i], d.width) << i;
    EXPECT_EQ(cc.dev_height()[i], d.height) << i;
    EXPECT_EQ(cc.dev_area()[i], d.area()) << i;
    EXPECT_EQ(cc.dev_half_width()[i], d.width / 2) << i;
    EXPECT_EQ(cc.dev_half_height()[i], d.height / 2) << i;
    EXPECT_EQ(cc.dev_type()[i], d.type) << i;
  }
  EXPECT_EQ(cc.total_device_area(), c.total_device_area());
}

TEST_P(CompiledAllCircuitsTest, PinAndNetArraysMatchCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const CompiledCircuit cc(c);

  ASSERT_EQ(cc.num_pins(), c.num_pins());
  for (std::size_t p = 0; p < c.num_pins(); ++p) {
    const netlist::Pin& pin = c.pin(PinId{p});
    EXPECT_EQ(cc.pin_offset_x()[p], pin.offset.x) << p;
    EXPECT_EQ(cc.pin_offset_y()[p], pin.offset.y) << p;
    EXPECT_EQ(cc.pin_device()[p], pin.device.index()) << p;
    EXPECT_EQ(cc.pin_net()[p], pin.net.index()) << p;
  }

  ASSERT_EQ(cc.num_nets(), c.num_nets());
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    const netlist::Net& net = c.net(NetId{n});
    EXPECT_EQ(cc.net_weight()[n], net.weight) << n;
    EXPECT_EQ(cc.net_critical()[n] != 0, net.critical) << n;
  }
}

TEST_P(CompiledAllCircuitsTest, CsrTablesMatchCircuitAdjacency) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const CompiledCircuit cc(c);

  // net_pins: declaration order of Net::pins.
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    const netlist::Net& net = c.net(NetId{n});
    const auto pins = cc.net_pins(n);
    ASSERT_EQ(pins.size(), net.pins.size()) << n;
    for (std::size_t k = 0; k < pins.size(); ++k) {
      EXPECT_EQ(pins[k], net.pins[k].index()) << n << "," << k;
    }
  }

  // device_pins: declaration order of Device::pins.
  for (std::size_t d = 0; d < c.num_devices(); ++d) {
    const netlist::Device& dev = c.device(DeviceId{d});
    const auto pins = cc.device_pins(d);
    ASSERT_EQ(pins.size(), dev.pins.size()) << d;
    for (std::size_t k = 0; k < pins.size(); ++k) {
      EXPECT_EQ(pins[k], dev.pins[k].index()) << d << "," << k;
    }
  }

  // device_nets: the same deduped ascending table Circuit::nets_of exposes.
  for (std::size_t d = 0; d < c.num_devices(); ++d) {
    const auto nets = cc.device_nets(d);
    const auto expect = c.nets_of(DeviceId{d});
    ASSERT_EQ(nets.size(), expect.size()) << d;
    for (std::size_t k = 0; k < nets.size(); ++k) {
      EXPECT_EQ(nets[k], expect[k].index()) << d << "," << k;
    }
  }

  // net_devices: sort+unique over the devices of the net's pins.
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    std::vector<std::uint32_t> expect;
    for (const PinId p : c.net(NetId{n}).pins) {
      expect.push_back(
          static_cast<std::uint32_t>(c.pin(p).device.index()));
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    const auto devs = cc.net_devices(n);
    ASSERT_EQ(devs.size(), expect.size()) << n;
    for (std::size_t k = 0; k < devs.size(); ++k) {
      EXPECT_EQ(devs[k], expect[k]) << n << "," << k;
    }
  }
}

TEST_P(CompiledAllCircuitsTest, WirelengthTableMatchesCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const CompiledCircuit cc(c);

  std::size_t wl = 0;
  for (std::size_t n = 0; n < c.num_nets(); ++n) {
    const netlist::Net& net = c.net(NetId{n});
    if (net.degree() < 2) continue;  // degenerate nets carry no wirelength
    ASSERT_LT(wl, cc.num_wl_nets());
    EXPECT_EQ(cc.wl_net_id()[wl], n);
    EXPECT_EQ(cc.wl_weight()[wl], net.weight);
    const auto dev = cc.wl_pin_device(wl);
    const auto dx = cc.wl_pin_dx(wl);
    const auto dy = cc.wl_pin_dy(wl);
    ASSERT_EQ(dev.size(), net.pins.size());
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const netlist::Pin& pin = c.pin(net.pins[k]);
      const netlist::Device& d = c.device(pin.device);
      EXPECT_EQ(dev[k], pin.device.index());
      EXPECT_EQ(dx[k], pin.offset.x - d.width / 2);
      EXPECT_EQ(dy[k], pin.offset.y - d.height / 2);
    }
    ++wl;
  }
  EXPECT_EQ(wl, cc.num_wl_nets());
}

TEST_P(CompiledAllCircuitsTest, ConstraintTablesMatchCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const netlist::ConstraintSet& cs = c.constraints();
  const CompiledCircuit cc(c);

  ASSERT_EQ(cc.num_symmetry_groups(), cs.symmetry_groups.size());
  for (std::size_t g = 0; g < cs.symmetry_groups.size(); ++g) {
    const netlist::SymmetryGroup& sg = cs.symmetry_groups[g];
    EXPECT_EQ(cc.sym_axis(g), sg.axis) << g;
    const auto pa = cc.sym_pair_a(g);
    const auto pb = cc.sym_pair_b(g);
    ASSERT_EQ(pa.size(), sg.pairs.size()) << g;
    ASSERT_EQ(pb.size(), sg.pairs.size()) << g;
    for (std::size_t k = 0; k < sg.pairs.size(); ++k) {
      EXPECT_EQ(pa[k], sg.pairs[k].first.index()) << g << "," << k;
      EXPECT_EQ(pb[k], sg.pairs[k].second.index()) << g << "," << k;
    }
    const auto self = cc.sym_self(g);
    ASSERT_EQ(self.size(), sg.self_symmetric.size()) << g;
    for (std::size_t k = 0; k < self.size(); ++k) {
      EXPECT_EQ(self[k], sg.self_symmetric[k].index()) << g << "," << k;
    }
  }

  ASSERT_EQ(cc.num_alignments(), cs.alignments.size());
  for (std::size_t k = 0; k < cs.alignments.size(); ++k) {
    EXPECT_EQ(cc.align_kind()[k], cs.alignments[k].kind) << k;
    EXPECT_EQ(cc.align_a()[k], cs.alignments[k].a.index()) << k;
    EXPECT_EQ(cc.align_b()[k], cs.alignments[k].b.index()) << k;
  }

  ASSERT_EQ(cc.num_orderings(), cs.orderings.size());
  for (std::size_t k = 0; k < cs.orderings.size(); ++k) {
    EXPECT_EQ(cc.order_direction(k), cs.orderings[k].direction) << k;
    const auto devs = cc.order_devices(k);
    ASSERT_EQ(devs.size(), cs.orderings[k].devices.size()) << k;
    for (std::size_t j = 0; j < devs.size(); ++j) {
      EXPECT_EQ(devs[j], cs.orderings[k].devices[j].index()) << k << "," << j;
    }
  }

  ASSERT_EQ(cc.num_centroids(), cs.common_centroids.size());
  for (std::size_t k = 0; k < cs.common_centroids.size(); ++k) {
    const netlist::CommonCentroidQuad& q = cs.common_centroids[k];
    EXPECT_EQ(cc.cent_a1()[k], q.a1.index()) << k;
    EXPECT_EQ(cc.cent_a2()[k], q.a2.index()) << k;
    EXPECT_EQ(cc.cent_b1()[k], q.b1.index()) << k;
    EXPECT_EQ(cc.cent_b2()[k], q.b2.index()) << k;
  }
}

TEST_P(CompiledAllCircuitsTest, PlacementStateRoundTripsExactly) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;

  // Scatter the devices (including orientations) with a seeded RNG, then
  // round-trip Placement -> PlacementState -> Placement: every coordinate
  // bit and both flip flags must survive.
  netlist::Placement ref(c);
  numeric::Rng rng(12345);
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    ref.set_position(DeviceId{i}, {rng.uniform(-50.0, 50.0),
                                   rng.uniform(-50.0, 50.0)});
    ref.set_orientation(DeviceId{i}, {rng.uniform_int(0, 1) == 1,
                                      rng.uniform_int(0, 1) == 1});
  }

  const netlist::PlacementState state =
      netlist::PlacementState::from_placement(ref);
  ASSERT_EQ(state.size(), c.num_devices());
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    EXPECT_EQ(state.x[i], ref.position(DeviceId{i}).x) << i;
    EXPECT_EQ(state.y[i], ref.position(DeviceId{i}).y) << i;
    EXPECT_EQ(state.orient[i], ref.orientation(DeviceId{i})) << i;
  }

  const netlist::Placement back = state.to_placement(c);
  netlist::Placement applied(c);
  state.apply_to(applied);
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const DeviceId id{i};
    EXPECT_EQ(back.position(id).x, ref.position(id).x) << i;
    EXPECT_EQ(back.position(id).y, ref.position(id).y) << i;
    EXPECT_EQ(back.orientation(id), ref.orientation(id)) << i;
    EXPECT_EQ(applied.position(id).x, ref.position(id).x) << i;
    EXPECT_EQ(applied.position(id).y, ref.position(id).y) << i;
    EXPECT_EQ(applied.orientation(id), ref.orientation(id)) << i;
  }
}

TEST(CompileCacheTest, SharesOneSnapshotPerCircuit) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  core::CompileCache cache;
  const auto first = cache.get_or_compile(tc.circuit);
  const auto second = cache.get_or_compile(tc.circuit);
  EXPECT_EQ(first.get(), second.get());  // hit returns the cached snapshot
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(&first->circuit(), &tc.circuit);

  circuits::TestCase other = circuits::make_testcase("VGA");
  const auto third = cache.get_or_compile(other.circuit);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompileCacheTest, IdenticalContentSharesDigestDistinctObjectStaysSafe) {
  // Two separately built but identical circuits share a digest; the cache
  // still never hands circuit B a snapshot borrowing circuit A.
  circuits::TestCase a = circuits::make_testcase("Comp1");
  circuits::TestCase b = circuits::make_testcase("Comp1");
  ASSERT_EQ(a.circuit.digest(), b.circuit.digest());

  core::CompileCache cache;
  const auto sa = cache.get_or_compile(a.circuit);
  const auto sb = cache.get_or_compile(b.circuit);
  EXPECT_EQ(&sa->circuit(), &a.circuit);
  EXPECT_EQ(&sb->circuit(), &b.circuit);
}

TEST(CompileCacheTest, NullCacheCompilesPrivately) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const auto snap = core::compile_or_fetch(nullptr, tc.circuit);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(&snap->circuit(), &tc.circuit);
}

}  // namespace
