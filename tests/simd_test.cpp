// SIMD layer contract tests (tests/simd_test.cpp):
//  * Vec4d lane-op semantics: masked loads/stores, ordered reductions,
//    lane reversal, scatter-accumulate order, nearest-even rounding.
//  * exp4 accuracy (<= simd::kExpMaxRelError over the clamped domain) and
//    saturation behaviour beyond the clamp.
//  * Registry-wide property: every hot kernel pair (WA/LSE wirelength,
//    electrostatic splat/force, DCT/DST butterflies) agrees between its
//    scalar reference and its vectorized path to <= 1e-12 relative on all
//    ten paper circuits.
//  * Both GP flows run end-to-end with SIMD forced on and forced off.
//  * Overflow regression: WA/LSE stay finite (and scalar/SIMD-consistent)
//    at a 1e6-unit coordinate spread where naive exp() would overflow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/simd.hpp"
#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "density/electro.hpp"
#include "numeric/fft.hpp"
#include "test_util.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace {
namespace {

using simd::Vec4d;

constexpr double kRelTol = 1e-12;

/// |a - b| <= tol * max(1, |a|, |b|): the "1e-12 relative" kernel contract
/// with an absolute floor so near-zero entries compare by absolute error.
void expect_rel_close(double a, double b, double tol = kRelTol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  EXPECT_LE(std::abs(a - b), tol * scale) << "a=" << a << " b=" << b;
}

void expect_vectors_close(const std::vector<double>& a,
                          const std::vector<double>& b,
                          double tol = kRelTol) {
  ASSERT_EQ(a.size(), b.size());
  double scale = 1.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    scale = std::max({scale, std::abs(a[i]), std::abs(b[i])});
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::abs(a[i] - b[i]), tol * scale)
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Deterministic spread-out positions inside [0, extent]^2.
std::vector<double> registry_positions(const netlist::Circuit& c,
                                       double extent) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double fi = static_cast<double>(i);
    v[i] = extent * (0.5 + 0.45 * std::sin(1.7 * fi + 0.3));
    v[n + i] = extent * (0.5 + 0.45 * std::cos(2.3 * fi + 1.1));
  }
  return v;
}

// ---- Vec4d lane semantics ---------------------------------------------------

TEST(SimdTest, SetLaneRoundTrip) {
  const Vec4d v = Vec4d::set(1.5, -2.25, 3.0, -0.0);
  EXPECT_EQ(v.lane(0), 1.5);
  EXPECT_EQ(v.lane(1), -2.25);
  EXPECT_EQ(v.lane(2), 3.0);
  EXPECT_EQ(v.lane(3), 0.0);
}

TEST(SimdTest, LoadPartialZeroFillsTail) {
  const double src[3] = {7.0, 8.0, 9.0};
  const Vec4d v = Vec4d::load_partial(src, 3);
  EXPECT_EQ(v.lane(0), 7.0);
  EXPECT_EQ(v.lane(1), 8.0);
  EXPECT_EQ(v.lane(2), 9.0);
  EXPECT_EQ(v.lane(3), 0.0);
  const Vec4d none = Vec4d::load_partial(src, 0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(none.lane(i), 0.0);
}

TEST(SimdTest, StorePartialLeavesTailUntouched) {
  double dst[4] = {-1.0, -1.0, -1.0, -1.0};
  Vec4d::set(1, 2, 3, 4).store_partial(dst, 2);
  EXPECT_EQ(dst[0], 1.0);
  EXPECT_EQ(dst[1], 2.0);
  EXPECT_EQ(dst[2], -1.0);
  EXPECT_EQ(dst[3], -1.0);
}

TEST(SimdTest, KeepFirstMasksExactlyIncludingInfNan) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Vec4d v = Vec4d::set(inf, nan, 3.0, 4.0).keep_first(2);
  EXPECT_TRUE(std::isinf(v.lane(0)));
  EXPECT_TRUE(std::isnan(v.lane(1)));
  EXPECT_EQ(v.lane(2), 0.0);
  EXPECT_EQ(v.lane(3), 0.0);
  // keep_first(4) is the identity.
  const Vec4d w = Vec4d::set(1, 2, 3, 4).keep_first(4);
  EXPECT_EQ(w.lane(3), 4.0);
}

TEST(SimdTest, ReverseSwapsAllFourLanes) {
  const Vec4d v = Vec4d::set(1, 2, 3, 4).reverse();
  EXPECT_EQ(v.lane(0), 4.0);
  EXPECT_EQ(v.lane(1), 3.0);
  EXPECT_EQ(v.lane(2), 2.0);
  EXPECT_EQ(v.lane(3), 1.0);
}

TEST(SimdTest, GatherReadsThroughIndexTable) {
  const double base[6] = {0, 10, 20, 30, 40, 50};
  const std::uint32_t idx[4] = {5, 0, 3, 3};
  const Vec4d v = Vec4d::gather(base, idx);
  EXPECT_EQ(v.lane(0), 50.0);
  EXPECT_EQ(v.lane(1), 0.0);
  EXPECT_EQ(v.lane(2), 30.0);
  EXPECT_EQ(v.lane(3), 30.0);
}

TEST(SimdTest, ScatterAddAccumulatesDuplicatesInLaneOrder) {
  double base[2] = {100.0, 0.0};
  const std::uint32_t idx[4] = {0, 1, 0, 1};
  Vec4d::set(1, 2, 4, 8).scatter_add(base, idx, 4);
  EXPECT_EQ(base[0], ((100.0 + 1.0) + 4.0));
  EXPECT_EQ(base[1], (2.0 + 8.0));
  // Masked scatter touches only the first n lanes.
  double base2[2] = {0.0, 0.0};
  Vec4d::set(1, 2, 4, 8).scatter_add(base2, idx, 1);
  EXPECT_EQ(base2[0], 1.0);
  EXPECT_EQ(base2[1], 0.0);
}

TEST(SimdTest, HsumOrderedUsesDocumentedAssociation) {
  // Catastrophic-cancellation probe: only the documented association
  // ((l0 + l1) + l2) + l3 yields exactly 1.0 here.
  const double a = 1e16, b = 1.0, c = -1e16, d = 1.0;
  const Vec4d v = Vec4d::set(a, b, c, d);
  EXPECT_EQ(simd::hsum_ordered(v), ((a + b) + c) + d);
  EXPECT_EQ(simd::hsum_ordered(v), 1.0);
}

TEST(SimdTest, HmaxHminIgnoreLaneOrder) {
  const Vec4d v = Vec4d::set(-3.0, 7.5, 0.0, -11.0);
  EXPECT_EQ(simd::hmax(v), 7.5);
  EXPECT_EQ(simd::hmin(v), -11.0);
}

TEST(SimdTest, RoundNearestTiesToEven) {
  const Vec4d v = Vec4d::round_nearest(Vec4d::set(2.5, 3.5, -2.5, 0.5));
  EXPECT_EQ(v.lane(0), 2.0);
  EXPECT_EQ(v.lane(1), 4.0);
  EXPECT_EQ(v.lane(2), -2.0);
  EXPECT_EQ(v.lane(3), 0.0);
}

TEST(SimdTest, FmaMatchesMulAddToContractTolerance) {
  const Vec4d r = Vec4d::fma(Vec4d::set(1.25, -3.0, 0.5, 1e8),
                             Vec4d::set(2.0, 0.25, -8.0, 1e-8),
                             Vec4d::set(1.0, 1.0, 1.0, 1.0));
  const double expect[4] = {3.5, 0.25, -3.0, 2.0};
  for (std::size_t i = 0; i < 4; ++i) {
    expect_rel_close(r.lane(i), expect[i]);
  }
}

TEST(SimdTest, ZeroTailAndPadded4) {
  static_assert(base::padded4(0) == 0);
  static_assert(base::padded4(1) == 4);
  static_assert(base::padded4(4) == 4);
  static_assert(base::padded4(5) == 8);
  base::AlignedVec buf(base::padded4(6), -1.0);
  simd::zero_tail(buf.data(), 6, buf.size());
  EXPECT_EQ(buf[5], -1.0);
  EXPECT_EQ(buf[6], 0.0);
  EXPECT_EQ(buf[7], 0.0);
}

TEST(SimdTest, AlignedVecIs32ByteAligned) {
  base::AlignedVec v(17);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 32, 0u);
}

// ---- exp4 -------------------------------------------------------------------

TEST(SimdTest, Exp4AccuracyOverClampedDomain) {
  // Dense sweep of the full clamped domain, four staggered lanes per step.
  double max_rel = 0.0;
  for (double x = -simd::kExpClamp; x <= simd::kExpClamp; x += 0.377) {
    const Vec4d in = Vec4d::set(x, x + 0.091, x + 0.173, x + 0.311);
    const Vec4d out = simd::exp4(in);
    for (std::size_t l = 0; l < 4; ++l) {
      const double xi = in.lane(l);
      if (xi > simd::kExpClamp) continue;
      const double ref = std::exp(xi);
      const double got = out.lane(l);
      ASSERT_TRUE(std::isfinite(got)) << "x=" << xi;
      ASSERT_GT(got, 0.0) << "x=" << xi;
      max_rel = std::max(max_rel, std::abs(got - ref) / ref);
    }
  }
  EXPECT_LE(max_rel, simd::kExpMaxRelError);
}

TEST(SimdTest, Exp4ExactAtZeroAndSaturatesBeyondClamp) {
  EXPECT_EQ(simd::exp4(Vec4d::zero()).lane(0), 1.0);
  const Vec4d big = simd::exp4(Vec4d::set(1e9, 800.0, -1e9, -800.0));
  // Clamped arguments saturate to exp(+/-700) — finite, positive, no inf.
  expect_rel_close(big.lane(0), std::exp(700.0), simd::kExpMaxRelError);
  expect_rel_close(big.lane(1), std::exp(700.0), simd::kExpMaxRelError);
  EXPECT_TRUE(std::isfinite(big.lane(0)));
  EXPECT_GT(big.lane(2), 0.0);
  EXPECT_EQ(big.lane(2), big.lane(3));
}

// ---- kernel scalar-vs-SIMD agreement (full registry) ------------------------

class SimdKernelParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimdKernelParityTest, WirelengthScalarVsSimd) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const std::vector<double> v = registry_positions(c, 48.0);

  for (const bool lse : {false, true}) {
    std::unique_ptr<wirelength::SmoothWirelength> wl;
    if (lse) {
      wl = std::make_unique<wirelength::LseWirelength>(c);
    } else {
      wl = std::make_unique<wirelength::WaWirelength>(c);
    }
    wl->set_gamma(0.8);

    std::vector<double> g_scalar(v.size(), 0.0), g_simd(v.size(), 0.0);
    wl->set_use_simd(false);
    const double val_scalar = wl->value_and_grad(v, g_scalar);
    wl->set_use_simd(true);
    const double val_simd = wl->value_and_grad(v, g_simd);

    ASSERT_TRUE(std::isfinite(val_scalar));
    ASSERT_TRUE(std::isfinite(val_simd));
    expect_rel_close(val_scalar, val_simd);
    expect_vectors_close(g_scalar, g_simd);
  }
}

TEST_P(SimdKernelParityTest, ElectroDensityScalarVsSimd) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  const double extent = 64.0;
  const std::vector<double> v = registry_positions(c, extent);

  density::ElectroDensity ed(c, {0, 0, extent, extent}, 64, 64, 0.8);

  ed.set_use_simd(false);
  std::vector<double> g_scalar(v.size(), 0.0);
  const double val_scalar = ed.value_and_grad(v, g_scalar, 1.0);
  const double ovf_scalar = ed.overflow();
  const std::vector<double> rho_scalar(ed.rho().data().begin(),
                                       ed.rho().data().end());

  ed.set_use_simd(true);
  std::vector<double> g_simd(v.size(), 0.0);
  const double val_simd = ed.value_and_grad(v, g_simd, 1.0);
  const double ovf_simd = ed.overflow();
  const std::vector<double> rho_simd(ed.rho().data().begin(),
                                     ed.rho().data().end());

  ASSERT_TRUE(std::isfinite(val_scalar));
  expect_rel_close(val_scalar, val_simd);
  expect_rel_close(ovf_scalar, ovf_simd);
  expect_vectors_close(rho_scalar, rho_simd);
  expect_vectors_close(g_scalar, g_simd);
}

INSTANTIATE_TEST_SUITE_P(FullRegistry, SimdKernelParityTest,
                         ::testing::ValuesIn(circuits::testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// ---- FFT/DCT scalar-vs-SIMD -------------------------------------------------

TEST(SimdFftTest, SpectralTransformsScalarVsSimd) {
  for (const std::size_t n : {std::size_t{4}, std::size_t{8}, std::size_t{32},
                              std::size_t{256}}) {
    numeric::fft::FftPlan plan(n);
    std::vector<double> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = std::sin(0.37 * static_cast<double>(i) + 0.2) +
              0.25 * std::cos(1.9 * static_cast<double>(i));
    }
    using Fn = void (numeric::fft::FftPlan::*)(const double*, std::size_t,
                                               double*, std::size_t) const;
    for (const Fn fn : {static_cast<Fn>(&numeric::fft::FftPlan::dct2),
                        static_cast<Fn>(&numeric::fft::FftPlan::dct3),
                        static_cast<Fn>(&numeric::fft::FftPlan::dst3)}) {
      std::vector<double> out_scalar(n), out_simd(n);
      plan.set_use_simd(false);
      (plan.*fn)(in.data(), 1, out_scalar.data(), 1);
      plan.set_use_simd(true);
      (plan.*fn)(in.data(), 1, out_simd.data(), 1);
      expect_vectors_close(out_scalar, out_simd);

      // Strided (column-transform) layout: stride 3 exercises the scalar
      // gather fallback of the quarter-wave loops on the SIMD path too.
      std::vector<double> sin(3 * n, 0.0), s_scalar(3 * n, 0.0),
          s_simd(3 * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) sin[3 * i] = in[i];
      plan.set_use_simd(false);
      (plan.*fn)(sin.data(), 3, s_scalar.data(), 3);
      plan.set_use_simd(true);
      (plan.*fn)(sin.data(), 3, s_simd.data(), 3);
      expect_vectors_close(s_scalar, s_simd);
    }
  }
}

TEST(SimdFftTest, Dct2Dct3RoundTripWithSimd) {
  const std::size_t n = 64;
  numeric::fft::FftPlan plan(n);
  plan.set_use_simd(true);
  std::vector<double> in(n), spec(n), back(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = std::cos(0.13 * static_cast<double>(i * i % 17));
  }
  plan.dct2(in.data(), 1, spec.data(), 1);
  plan.dct3(spec.data(), 1, back.data(), 1);
  expect_vectors_close(in, back, 1e-11);
}

// ---- overflow regression: 1e6-unit coordinate spread ------------------------

TEST(SimdOverflowTest, WirelengthFiniteAtMillionUnitSpread) {
  // A chain net spanning 1e6 units: exp((c - min)/gamma) would overflow for
  // any naive (unshifted) exponential at gamma ~ 1. Both paths must stay
  // finite and agree — the scalar kernel max/min-shifts, the SIMD kernel
  // additionally clamps inside exp4.
  netlist::Circuit c("spread");
  std::vector<DeviceId> devs;
  std::vector<PinId> pins;
  for (int i = 0; i < 7; ++i) {
    devs.push_back(c.add_device("D" + std::to_string(i),
                                netlist::DeviceType::Nmos, 2, 2));
    pins.push_back(c.add_pin(devs.back(), "p", {1, 1}));
  }
  c.add_net("chain", pins);
  c.add_net("pair",
            {c.add_pin(devs[0], "q", {0.5, 0.5}),
             c.add_pin(devs[6], "q", {0.5, 0.5})},
            /*weight=*/2.0);
  c.finalize();

  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0e6 * static_cast<double>(i) / static_cast<double>(n - 1);
    v[n + i] = 0.5e6 * static_cast<double>((i * 3) % n) /
               static_cast<double>(n - 1);
  }

  for (const bool lse : {false, true}) {
    std::unique_ptr<wirelength::SmoothWirelength> wl;
    if (lse) {
      wl = std::make_unique<wirelength::LseWirelength>(c);
    } else {
      wl = std::make_unique<wirelength::WaWirelength>(c);
    }
    wl->set_gamma(1.0);

    std::vector<double> g_scalar(v.size(), 0.0), g_simd(v.size(), 0.0);
    wl->set_use_simd(false);
    const double val_scalar = wl->value_and_grad(v, g_scalar);
    wl->set_use_simd(true);
    const double val_simd = wl->value_and_grad(v, g_simd);

    ASSERT_TRUE(std::isfinite(val_scalar));
    ASSERT_TRUE(std::isfinite(val_simd));
    for (const double g : g_scalar) ASSERT_TRUE(std::isfinite(g));
    for (const double g : g_simd) ASSERT_TRUE(std::isfinite(g));
    expect_rel_close(val_scalar, val_simd);
    expect_vectors_close(g_scalar, g_simd);

    // At spread >> gamma the smoothed length converges to exact HPWL; for
    // WA from above within a vanishing margin. A loose sanity bracket:
    const double exact = wl->exact_hpwl(v);
    EXPECT_NEAR(val_scalar, exact, 1e-6 * exact);
  }
}

// ---- GP flows end-to-end with SIMD forced on / off --------------------------

struct DefaultSimdGuard {
  bool saved = simd::default_enabled();
  ~DefaultSimdGuard() { simd::set_default_enabled(saved); }
};

TEST(SimdFlowTest, BothGpFlowsLegalWithSimdOnAndOff) {
  DefaultSimdGuard guard;
  circuits::TestCase tc = circuits::make_testcase("Adder");

  double hpwl_ep[2] = {0, 0}, hpwl_pw[2] = {0, 0};
  for (const bool on : {false, true}) {
    simd::set_default_enabled(on);

    core::EPlaceAOptions eopts;
    eopts.candidates = 1;
    eopts.gp.seed = 3;
    const core::FlowResult ep = core::run_eplace_a(tc.circuit, eopts);
    EXPECT_TRUE(ep.legal(1e-6)) << "ePlace-A illegal, simd=" << on;
    ASSERT_TRUE(std::isfinite(ep.hpwl()));
    EXPECT_GT(ep.hpwl(), 0);
    hpwl_ep[on ? 1 : 0] = ep.hpwl();

    const core::FlowResult pw = core::run_prior_work(tc.circuit);
    EXPECT_TRUE(pw.legal(1e-6)) << "prior work illegal, simd=" << on;
    ASSERT_TRUE(std::isfinite(pw.hpwl()));
    EXPECT_GT(pw.hpwl(), 0);
    hpwl_pw[on ? 1 : 0] = pw.hpwl();
  }

  // The two paths agree to 1e-12 per evaluation but trajectories through
  // the nonconvex optimizer may diverge; quality must stay in the same
  // ballpark (loose 2x bracket, not bit equality).
  EXPECT_LT(std::max(hpwl_ep[0], hpwl_ep[1]),
            2.0 * std::min(hpwl_ep[0], hpwl_ep[1]));
  EXPECT_LT(std::max(hpwl_pw[0], hpwl_pw[1]),
            2.0 * std::min(hpwl_pw[0], hpwl_pw[1]));
}

}  // namespace
}  // namespace aplace
