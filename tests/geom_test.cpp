// Geometry primitives: points, rectangles, orientation transforms, grid.

#include <gtest/gtest.h>

#include "geom/grid.hpp"
#include "geom/orientation.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace aplace::geom {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Point(4, -2));
  EXPECT_EQ(a - b, Point(-2, 6));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_EQ(2.0 * a, Point(2, 4));
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(b.manhattan(a), 2 + 6);
}

TEST(RectTest, NormalizesCorners) {
  const Rect r(5, 7, 1, 3);
  EXPECT_DOUBLE_EQ(r.xlo(), 1);
  EXPECT_DOUBLE_EQ(r.ylo(), 3);
  EXPECT_DOUBLE_EQ(r.xhi(), 5);
  EXPECT_DOUBLE_EQ(r.yhi(), 7);
  EXPECT_DOUBLE_EQ(r.width(), 4);
  EXPECT_DOUBLE_EQ(r.height(), 4);
  EXPECT_DOUBLE_EQ(r.area(), 16);
}

TEST(RectTest, CenteredConstruction) {
  const Rect r = Rect::centered({2, 3}, 4, 6);
  EXPECT_EQ(r, Rect(0, 0, 4, 6));
  EXPECT_EQ(r.center(), Point(2, 3));
}

TEST(RectTest, OverlapSemantics) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 2, 6, 6);
  const Rect c(4, 0, 8, 4);  // abuts a
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c)) << "shared edges do not overlap";
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 4.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(c), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_dx(b), 2.0);
  EXPECT_DOUBLE_EQ(a.overlap_dx(c), 0.0);
  EXPECT_LT(Rect(0, 0, 1, 1).overlap_dx(Rect(3, 0, 4, 1)), 0.0)
      << "negative overlap_dx encodes the gap";
}

TEST(RectTest, IntersectionAndUnion) {
  const Rect a(0, 0, 4, 4), b(2, 1, 6, 3);
  EXPECT_EQ(a.intersection(b), Rect(2, 1, 4, 3));
  EXPECT_EQ(a.united(b), Rect(0, 0, 6, 4));
  EXPECT_EQ(a.intersection(Rect(10, 10, 12, 12)).area(), 0.0);
}

TEST(RectTest, ContainsAndExpand) {
  const Rect r(0, 0, 4, 4);
  EXPECT_TRUE(r.contains(Point{2, 2}));
  EXPECT_TRUE(r.contains(Point{0, 0})) << "boundary inclusive";
  EXPECT_FALSE(r.contains(Point{5, 2}));
  EXPECT_TRUE(r.contains(Rect(1, 1, 3, 3)));
  EXPECT_FALSE(r.contains(Rect(1, 1, 5, 3)));

  Rect e;
  e.expand({2, 3});
  e.expand({-1, 5});
  EXPECT_EQ(e, Rect(-1, 3, 2, 5));
}

TEST(RectTest, ShiftAndInflate) {
  const Rect r(0, 0, 2, 2);
  EXPECT_EQ(r.shifted({1, -1}), Rect(1, -1, 3, 1));
  EXPECT_EQ(r.inflated(1), Rect(-1, -1, 3, 3));
  EXPECT_EQ(r.inflated(-0.5), Rect(0.5, 0.5, 1.5, 1.5));
}

TEST(OrientationTest, PinTransformation) {
  const Point pin{1, 2};  // on a 4x6 device
  EXPECT_EQ(apply_orientation(pin, 4, 6, {false, false}), Point(1, 2));
  EXPECT_EQ(apply_orientation(pin, 4, 6, {true, false}), Point(3, 2));
  EXPECT_EQ(apply_orientation(pin, 4, 6, {false, true}), Point(1, 4));
  EXPECT_EQ(apply_orientation(pin, 4, 6, {true, true}), Point(3, 4));
}

TEST(OrientationTest, DoubleFlipIsIdentity) {
  const Point pin{0.5, 1.25};
  Point once = apply_orientation(pin, 3, 2, {true, true});
  Point twice = apply_orientation(once, 3, 2, {true, true});
  EXPECT_EQ(twice, pin);
}

TEST(GridTest, SnapRounding) {
  const Grid g(0.5);
  EXPECT_DOUBLE_EQ(g.snap(1.24), 1.0);
  EXPECT_DOUBLE_EQ(g.snap(1.26), 1.5);
  EXPECT_DOUBLE_EQ(g.snap_up(1.01), 1.5);
  EXPECT_DOUBLE_EQ(g.snap_down(1.49), 1.0);
  EXPECT_DOUBLE_EQ(g.snap_up(1.5), 1.5) << "exact values stay put";
  EXPECT_TRUE(g.on_grid(2.5));
  EXPECT_FALSE(g.on_grid(2.3));
}

TEST(GridTest, IndexRoundtrip) {
  const Grid g(0.25);
  EXPECT_EQ(g.to_index(1.75), 7);
  EXPECT_DOUBLE_EQ(g.from_index(7), 1.75);
}

TEST(GridTest, RejectsBadPitch) {
  EXPECT_THROW(Grid(0.0), CheckError);
  EXPECT_THROW(Grid(-1.0), CheckError);
}

}  // namespace
}  // namespace aplace::geom
