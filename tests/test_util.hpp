#pragma once
// Shared helpers for the test suite.

#include <functional>
#include <vector>

#include "circuits/testcases.hpp"
#include "netlist/circuit.hpp"

namespace aplace::test {

/// Central finite-difference gradient of f at v.
inline std::vector<double> numeric_gradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> v, double h = 1e-5) {
  std::vector<double> g(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double orig = v[i];
    v[i] = orig + h;
    const double fp = f(v);
    v[i] = orig - h;
    const double fm = f(v);
    v[i] = orig;
    g[i] = (fp - fm) / (2 * h);
  }
  return g;
}

/// A tiny two-device circuit: one net between two pins.
inline netlist::Circuit two_device_circuit() {
  netlist::Circuit c("two");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 4, 2);
  const PinId pa = c.add_pin(a, "p", {1, 1});
  const PinId pb = c.add_pin(b, "p", {1, 1});
  c.add_net("n", {pa, pb});
  c.finalize();
  return c;
}

/// A small circuit with a symmetry pair, alignment and ordering (used by
/// constraint-handling tests).
inline netlist::Circuit constrained_circuit() {
  netlist::Circuit c("constrained");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId s = c.add_device("S", netlist::DeviceType::Nmos, 4, 2);
  const DeviceId r1 = c.add_device("R1", netlist::DeviceType::Resistor, 1, 3);
  const DeviceId r2 = c.add_device("R2", netlist::DeviceType::Resistor, 1, 3);
  const PinId pa = c.add_pin(a, "d", {1, 2});
  const PinId pb = c.add_pin(b, "d", {1, 2});
  const PinId ps = c.add_pin(s, "d", {2, 2});
  const PinId p1 = c.add_pin(r1, "a", {0.5, 3});
  const PinId p2 = c.add_pin(r2, "a", {0.5, 3});
  const PinId p1b = c.add_pin(r1, "b", {0.5, 0});
  const PinId p2b = c.add_pin(r2, "b", {0.5, 0});
  c.add_net("n1", {pa, p1});
  c.add_net("n2", {pb, p2});
  c.add_net("n3", {ps, p1b, p2b});
  netlist::SymmetryGroup g;
  g.axis = netlist::Axis::Vertical;
  g.pairs.emplace_back(a, b);
  g.self_symmetric.push_back(s);
  c.add_symmetry_group(std::move(g));
  c.add_alignment({netlist::AlignmentKind::Bottom, r1, r2});
  c.add_ordering({netlist::OrderDirection::LeftToRight, {r1, s}});
  c.finalize();
  return c;
}

}  // namespace aplace::test
