// The observability layer's own contracts:
//
//   * merge determinism — a private MetricsRegistry scraped after the same
//     logical work, partitioned over 1, 2, or 8 threads, serializes to the
//     same bytes (u64 counter/bucket merges commute; histogram sums stay
//     exact for integer-valued samples);
//   * span trees — RAII nesting builds correct parent/root/depth links,
//     survives exceptions (the span closes during unwinding and still
//     records), and propagates across thread-pool hops;
//   * kill switch — with the layer disabled at runtime, neither metrics
//     nor spans record anything, and re-enabling resumes cleanly.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace aplace;

/// Restores the runtime kill switch on scope exit so a failing test can't
/// leave the rest of the suite with observability off.
struct EnabledGuard {
  bool saved = obs::enabled();
  ~EnabledGuard() { obs::set_enabled(saved); }
};

// ---- metrics ---------------------------------------------------------------

/// The same deterministic workload, partitioned over `threads` workers:
/// worker k handles every index with i % threads == k. Histogram samples
/// are integer-valued so the double sum is exact in any accumulation order.
obs::MetricsSnapshot run_partitioned(obs::MetricsRegistry& reg,
                                     unsigned threads, int total) {
  obs::Counter ticks = reg.counter("test/ticks");
  obs::Counter evens = reg.counter("test/evens");
  obs::Histogram hist = reg.histogram("test/values");
  auto worker = [&](unsigned k) {
    for (int i = static_cast<int>(k); i < total;
         i += static_cast<int>(threads)) {
      ticks.inc();
      if (i % 2 == 0) evens.add(2);
      hist.record(static_cast<double>(i % 7 + 1));
    }
  };
  std::vector<std::thread> pool;
  for (unsigned k = 1; k < threads; ++k) pool.emplace_back(worker, k);
  worker(0);
  for (std::thread& t : pool) t.join();
  return reg.scrape();
}

TEST(ObsMetricsTest, MergeDeterministicAcrossThreadCounts) {
  constexpr int kTotal = 4200;
  std::string reference;
  for (unsigned threads : {1U, 2U, 8U}) {
    obs::MetricsRegistry reg;
    const obs::MetricsSnapshot snap = run_partitioned(reg, threads, kTotal);
    const std::string json = snap.to_json(2);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(reference, json) << "at " << threads << " threads";
    }
    const obs::MetricsSnapshot::CounterRow* ticks =
        snap.find_counter("test/ticks");
    ASSERT_NE(ticks, nullptr);
    EXPECT_EQ(ticks->value, static_cast<std::uint64_t>(kTotal));
    const obs::MetricsSnapshot::HistogramRow* hist =
        snap.find_histogram("test/values");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kTotal));
    EXPECT_EQ(hist->min, 1.0);
    EXPECT_EQ(hist->max, 7.0);
  }
}

TEST(ObsMetricsTest, HistogramStatsAndBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("h");
  for (double v : {1.0, 2.0, 4.0, 4.0}) h.record(v);
  const obs::MetricsSnapshot snap = reg.scrape();
  const auto* row = snap.find_histogram("h");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 4u);
  EXPECT_EQ(row->sum, 11.0);
  EXPECT_EQ(row->mean(), 11.0 / 4.0);
  // Exponential buckets: equal values land together, larger values land in
  // weakly larger buckets.
  EXPECT_EQ(obs::Histogram::bucket_of(4.0), obs::Histogram::bucket_of(4.0));
  EXPECT_LE(obs::Histogram::bucket_of(1.0), obs::Histogram::bucket_of(2.0));
  EXPECT_LE(obs::Histogram::bucket_of(2.0), obs::Histogram::bucket_of(4.0));
  std::uint64_t bucket_total = 0;
  for (const auto& [idx, n] : row->buckets) {
    EXPECT_LT(idx, obs::Histogram::kBuckets);
    bucket_total += n;
  }
  EXPECT_EQ(bucket_total, 4u);
}

TEST(ObsMetricsTest, ResetClearsAndRegistriesAreIndependent) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("n").add(3);
  b.counter("n").add(5);
  EXPECT_EQ(a.scrape().find_counter("n")->value, 3u);
  EXPECT_EQ(b.scrape().find_counter("n")->value, 5u);
  a.reset();
  EXPECT_EQ(a.scrape().find_counter("n")->value, 0u);
  EXPECT_EQ(b.scrape().find_counter("n")->value, 5u);
}

// ---- spans -----------------------------------------------------------------

TEST(ObsSpanTest, NestingBuildsParentAndDepthLinks) {
  EnabledGuard guard;
  obs::set_enabled(true);
  std::uint64_t root_id = 0;
  {
    obs::Span root("t/root", obs::Span::Root::New);
    root_id = root.root_id();
    ASSERT_NE(root_id, 0u);
    obs::Span child("t/child");
    { obs::Span grandchild("t/grandchild"); }
  }
  const std::vector<obs::SpanEvent> events =
      obs::SpanCollector::global().take_events_for_root(root_id);
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: root opened first.
  EXPECT_EQ(events[0].name, "t/root");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].name, "t/child");
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "t/grandchild");
  EXPECT_EQ(events[2].parent, events[1].id);
  EXPECT_EQ(events[2].depth, 2u);
  for (const obs::SpanEvent& ev : events) {
    EXPECT_EQ(ev.root, root_id);
    EXPECT_GE(ev.dur_seconds, 0.0);
  }
}

TEST(ObsSpanTest, SpanRecordsWhenUnwoundByException) {
  EnabledGuard guard;
  obs::set_enabled(true);
  std::uint64_t root_id = 0;
  try {
    obs::Span root("t/throwing-root", obs::Span::Root::New);
    root_id = root.root_id();
    obs::Span inner("t/doomed");
    throw std::runtime_error("cancelled mid-stage");
  } catch (const std::runtime_error&) {
  }
  const std::vector<obs::SpanEvent> events =
      obs::SpanCollector::global().take_events_for_root(root_id);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "t/throwing-root");
  EXPECT_EQ(events[1].name, "t/doomed");
  EXPECT_EQ(events[1].parent, events[0].id);
  // The context fully unwound: a fresh span is a root again, not a child
  // of the dead tree.
  obs::Span after("t/after", obs::Span::Root::New);
  EXPECT_EQ(obs::current_context().depth, 0u);
}

TEST(ObsSpanTest, ContextPropagatesAcrossThreadPool) {
  EnabledGuard guard;
  obs::set_enabled(true);
  base::ThreadPool pool(2);
  std::uint64_t root_id = 0;
  {
    obs::Span root("t/submit", obs::Span::Root::New);
    root_id = root.root_id();
    base::ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 4; ++i) {
      group.run([] { obs::Span task("t/pool-task"); });
    }
    group.wait();
  }
  const std::vector<obs::SpanEvent> events =
      obs::SpanCollector::global().take_events_for_root(root_id);
  ASSERT_EQ(events.size(), 5u);
  std::uint64_t submit_id = 0;
  int tasks = 0;
  for (const obs::SpanEvent& ev : events) {
    if (ev.name == "t/submit") submit_id = ev.id;
  }
  ASSERT_NE(submit_id, 0u);
  for (const obs::SpanEvent& ev : events) {
    if (ev.name != "t/pool-task") continue;
    ++tasks;
    EXPECT_EQ(ev.parent, submit_id) << "pool task not parented to submitter";
    EXPECT_EQ(ev.depth, 1u);
  }
  EXPECT_EQ(tasks, 4);
}

TEST(ObsSpanTest, ChromeTraceJsonShape) {
  EnabledGuard guard;
  obs::set_enabled(true);
  std::uint64_t root_id = 0;
  {
    obs::Span root("t/\"quoted\"", obs::Span::Root::New);
    root_id = root.root_id();
  }
  const std::string json = obs::chrome_trace_json(
      obs::SpanCollector::global().take_events_for_root(root_id));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("t/\\\"quoted\\\""), std::string::npos);
}

// ---- kill switch -----------------------------------------------------------

TEST(ObsKillSwitchTest, DisabledRecordsNothingAndReenablingResumes) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::MetricsRegistry reg;
  reg.counter("k").inc();

  obs::set_enabled(false);
  reg.counter("k").add(100);
  reg.histogram("kh").record(1.0);
  {
    obs::Span dead("t/disabled", obs::Span::Root::New);
    EXPECT_EQ(dead.root_id(), 0u);
    EXPECT_EQ(obs::current_context().current, 0u);
  }

  obs::set_enabled(true);
  reg.counter("k").inc();
  const obs::MetricsSnapshot snap = reg.scrape();
  EXPECT_EQ(snap.find_counter("k")->value, 2u);
  const auto* kh = snap.find_histogram("kh");
  EXPECT_EQ(kh->count, 0u);
}

}  // namespace
