// Crash-safe batch serving: journal round-trip, truncation tolerance,
// resume bit-identity, retry/quarantine and cancellation semantics.
//
// The central contract these tests pin down: a journaled batch that is
// killed at ANY byte boundary and re-launched with --resume produces the
// same FlowResults as an uninterrupted run — completed jobs restore
// bit-identically from the journal, everything else re-runs under the same
// seeds. The truncation sweep emulates SIGKILL by replaying prefixes of a
// finished journal.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/testcases.hpp"
#include "core/batch.hpp"
#include "core/journal.hpp"
#include "io/netlist_io.hpp"

namespace {

using namespace aplace;
namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  if (f != nullptr) std::fclose(f);
  return out;
}

void spit(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Bit-identity of two batch items: status, flags, quality and the full
/// placement (compared through the exact-double serializer).
void expect_bit_identical(const core::BatchItem& ref,
                          const core::BatchItem& got, const std::string& ctx) {
  EXPECT_EQ(ref.label, got.label) << ctx;
  EXPECT_EQ(ref.result.status.code(), got.result.status.code()) << ctx;
  EXPECT_EQ(ref.result.status.to_string(), got.result.status.to_string())
      << ctx;
  EXPECT_EQ(ref.result.fallback, got.result.fallback) << ctx;
  EXPECT_EQ(ref.result.gp_diverged, got.result.gp_diverged) << ctx;
  EXPECT_EQ(ref.result.quality.hpwl, got.result.quality.hpwl) << ctx;
  EXPECT_EQ(ref.result.quality.area, got.result.quality.area) << ctx;
  EXPECT_EQ(ref.result.quality.overlap_area, got.result.quality.overlap_area)
      << ctx;
  EXPECT_EQ(ref.result.quality.symmetry_violation,
            got.result.quality.symmetry_violation)
      << ctx;
  EXPECT_EQ(io::placement_to_text(ref.result.placement),
            io::placement_to_text(got.result.placement))
      << ctx;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("journal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    a_ = circuits::make_testcase("Adder");
    b_ = circuits::make_testcase("CC-OTA");
    for (const netlist::Circuit* c : {&a_.circuit, &b_.circuit}) {
      core::BatchJob ep;
      ep.circuit = c;
      ep.flow = core::FlowKind::EPlaceA;
      ep.eplace.candidates = 1;
      ep.eplace.gp.seed = 11;
      jobs_.push_back(ep);
      core::BatchJob sa_job;
      sa_job.circuit = c;
      sa_job.flow = core::FlowKind::Sa;
      sa_job.sa.sa.max_moves = 1500;
      sa_job.sa.sa.seed = 7;
      jobs_.push_back(sa_job);
    }
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string journal_path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
  circuits::TestCase a_, b_;
  std::vector<core::BatchJob> jobs_;
};

TEST_F(JournalTest, ResumeRestoresBitIdenticalResults) {
  const core::BatchReport ref = core::run_batch(jobs_, {});
  ASSERT_EQ(ref.num_ok, jobs_.size());

  core::BatchOptions journaled;
  journaled.journal_path = journal_path("run.jsonl");
  const core::BatchReport first = core::run_batch(jobs_, journaled);
  ASSERT_TRUE(first.journal_status.ok()) << first.journal_status.to_string();
  ASSERT_EQ(first.num_resumed, 0u);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    expect_bit_identical(ref.items[i], first.items[i], "journaled run");
  }

  core::BatchOptions resume = journaled;
  resume.resume_journal = true;
  const core::BatchReport second = core::run_batch(jobs_, resume);
  EXPECT_EQ(second.num_resumed, jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    EXPECT_TRUE(second.items[i].resumed) << i;
    expect_bit_identical(ref.items[i], second.items[i], "resumed run");
  }
}

TEST_F(JournalTest, TruncatedJournalResumesToIdenticalResults) {
  // A full journaled run produces the reference journal; replaying resumes
  // from every line-boundary prefix (plus mid-record tears) emulates a
  // SIGKILL at each record. Results must match the reference regardless of
  // where the kill landed.
  core::BatchOptions journaled;
  journaled.journal_path = journal_path("full.jsonl");
  const core::BatchReport ref = core::run_batch(jobs_, journaled);
  ASSERT_TRUE(ref.journal_status.ok());
  ASSERT_EQ(ref.num_ok, jobs_.size());

  const std::string full = slurp(journaled.journal_path);
  ASSERT_FALSE(full.empty());
  std::vector<std::size_t> cuts{0};
  for (std::size_t pos = 0; (pos = full.find('\n', pos)) != std::string::npos;
       ++pos) {
    cuts.push_back(pos + 1);          // clean cut after a full record
    if (pos + 8 < full.size()) {
      cuts.push_back(pos + 8);        // torn cut inside the next record
    }
  }

  for (std::size_t k = 0; k < cuts.size(); ++k) {
    const std::string trunc_path =
        journal_path("trunc_" + std::to_string(k) + ".jsonl");
    spit(trunc_path, full.substr(0, cuts[k]));
    // Snapshots survive a crash untouched; share them with the prefix.
    fs::copy(journaled.journal_path + ".snapshots", trunc_path + ".snapshots",
             fs::copy_options::recursive);

    core::BatchOptions resume;
    resume.journal_path = trunc_path;
    resume.resume_journal = true;
    const core::BatchReport rerun = core::run_batch(jobs_, resume);
    ASSERT_EQ(rerun.items.size(), jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      expect_bit_identical(ref.items[i], rerun.items[i],
                           "cut " + std::to_string(cuts[k]) + " job " +
                               std::to_string(i));
    }
  }
}

TEST_F(JournalTest, MissingSnapshotFallsBackToRerun) {
  core::BatchOptions journaled;
  journaled.journal_path = journal_path("snap.jsonl");
  const core::BatchReport ref = core::run_batch(jobs_, journaled);
  ASSERT_EQ(ref.num_ok, jobs_.size());

  // Corrupt one snapshot and delete another: both jobs must silently re-run
  // (digest mismatch / missing file) and still land on identical results.
  const fs::path snaps = fs::path(journaled.journal_path + ".snapshots");
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(snaps)) files.push_back(e.path());
  ASSERT_GE(files.size(), 2u);
  spit(files[0].string(), "# torn snapshot\n");
  fs::remove(files[1]);

  core::BatchOptions resume = journaled;
  resume.resume_journal = true;
  const core::BatchReport rerun = core::run_batch(jobs_, resume);
  EXPECT_EQ(rerun.num_resumed, jobs_.size() - 2);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    expect_bit_identical(ref.items[i], rerun.items[i], "snapshot fallback");
  }
}

TEST_F(JournalTest, RetriesExhaustedQuarantinesDeterministically) {
  // candidates = 0 trips the flow's own option check, which the batch guard
  // converts to a retryable Internal status — so every attempt fails the
  // same way and the job must end quarantined with all attempts consumed.
  core::BatchJob bad;
  bad.circuit = &a_.circuit;
  bad.flow = core::FlowKind::EPlaceA;
  bad.eplace.candidates = 0;
  bad.label = "bad-job";
  std::vector<core::BatchJob> jobs{bad, jobs_[1]};

  core::BatchOptions opts;
  opts.journal_path = journal_path("retry.jsonl");
  opts.retry.max_attempts = 3;
  opts.retry.backoff_seconds = 0;  // keep the test fast
  const core::BatchReport report = core::run_batch(jobs, opts);
  EXPECT_EQ(report.num_quarantined, 1u);
  EXPECT_TRUE(report.items[0].quarantined);
  EXPECT_EQ(report.items[0].attempts, 3);
  EXPECT_EQ(report.items[0].result.status.code(), StatusCode::Internal);
  EXPECT_TRUE(report.items[1].result.ok());

  // Quarantine is terminal: a resume skips the poisoned job instead of
  // burning three more attempts on it.
  core::BatchOptions resume = opts;
  resume.resume_journal = true;
  const core::BatchReport again = core::run_batch(jobs, resume);
  EXPECT_EQ(again.num_resumed, 2u);
  EXPECT_TRUE(again.items[0].resumed);
  EXPECT_TRUE(again.items[0].quarantined);
  EXPECT_EQ(again.items[0].attempts, 3);
  EXPECT_EQ(again.items[0].result.status.code(), StatusCode::Internal);

  // The journal itself must carry the retry trail and the terminal record.
  const std::string text = slurp(opts.journal_path);
  EXPECT_NE(text.find("\"type\":\"retry\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"attempts_exhausted\""), std::string::npos);
}

TEST_F(JournalTest, CancelledJobsAreNotTerminalAndRerunOnResume) {
  base::CancelToken cancel = base::CancelToken::make_cancellable();
  cancel.request_cancel();  // cancelled before any solver work starts

  core::BatchOptions opts;
  opts.journal_path = journal_path("cancel.jsonl");
  opts.cancel = cancel;
  const core::BatchReport cancelled = core::run_batch(jobs_, opts);
  for (const core::BatchItem& item : cancelled.items) {
    EXPECT_EQ(item.result.status.code(), StatusCode::Cancelled) << item.label;
  }

  // Interruption records are non-terminal, so the resumed batch runs every
  // job for real and matches an uninterrupted reference bit-for-bit.
  const core::BatchReport ref = core::run_batch(jobs_, {});
  core::BatchOptions resume;
  resume.journal_path = opts.journal_path;
  resume.resume_journal = true;
  const core::BatchReport rerun = core::run_batch(jobs_, resume);
  EXPECT_EQ(rerun.num_resumed, 0u);
  ASSERT_EQ(rerun.items.size(), ref.items.size());
  for (std::size_t i = 0; i < ref.items.size(); ++i) {
    expect_bit_identical(ref.items[i], rerun.items[i], "post-cancel rerun");
  }
}

TEST_F(JournalTest, UnopenableJournalIsReportedNotFatal) {
  // Point the journal *under an existing file* so the directory cannot be
  // created; the batch must still run and surface the failure as a status.
  const std::string blocker = journal_path("blocker");
  spit(blocker, "not a directory\n");
  core::BatchOptions opts;
  opts.journal_path = blocker + "/run.jsonl";
  const core::BatchReport report = core::run_batch(jobs_, opts);
  EXPECT_FALSE(report.journal_status.ok());
  EXPECT_EQ(report.items.size(), jobs_.size());
  EXPECT_EQ(report.num_ok, jobs_.size());
}

TEST_F(JournalTest, LoadCompletedToleratesGarbageLines) {
  core::BatchOptions opts;
  opts.journal_path = journal_path("garbage.jsonl");
  const core::BatchReport ref = core::run_batch(jobs_, opts);
  ASSERT_EQ(ref.num_ok, jobs_.size());

  // Splice junk between valid records; the loader must skip it and still
  // recover every terminal entry.
  std::string text = slurp(opts.journal_path);
  text.insert(text.find('\n') + 1, "THIS IS NOT JSON\n{\"type\":\n\x01\x02\n");
  text += "{\"type\":\"done\",\"key\":\"truncated";  // torn final record
  spit(opts.journal_path, text);

  const auto completed = core::RunJournal::load_completed(opts.journal_path);
  EXPECT_EQ(completed.size(), jobs_.size());
  for (const core::BatchJob& job : jobs_) {
    EXPECT_TRUE(completed.contains(core::batch_job_key(job)));
  }
}

TEST_F(JournalTest, CircuitDriftInvalidatesTerminalRecords) {
  // Terminal records carry Circuit::digest(). A resumed batch whose circuit
  // changed content — but kept its name and device count, so the
  // label|flow|circuit|ndev key still matches — must re-run the job instead
  // of restoring a stale result.
  const auto build = [](double w0) {
    netlist::Circuit c("drift");
    const DeviceId d0 = c.add_device("m0", netlist::DeviceType::Nmos, w0, 2.0);
    const DeviceId d1 = c.add_device("m1", netlist::DeviceType::Pmos, 3.0, 2.0);
    const PinId p0 = c.add_center_pin(d0, "a");
    const PinId p1 = c.add_center_pin(d1, "a");
    c.add_net("n", {p0, p1});
    c.finalize();
    return c;
  };
  const netlist::Circuit original = build(3.0);
  const netlist::Circuit drifted = build(4.0);
  ASSERT_NE(original.digest(), drifted.digest());

  core::BatchJob job;
  job.circuit = &original;
  job.flow = core::FlowKind::Sa;
  job.sa.sa.max_moves = 500;
  ASSERT_EQ(core::batch_job_key(job),
            core::batch_job_key([&] {
              core::BatchJob j = job;
              j.circuit = &drifted;
              return j;
            }()));

  core::BatchOptions opts;
  opts.journal_path = journal_path("drift.jsonl");
  const core::BatchReport first = core::run_batch({&job, 1}, opts);
  ASSERT_EQ(first.num_ok, 1u);

  // Unchanged circuit: the record is valid and restores.
  core::BatchOptions resume = opts;
  resume.resume_journal = true;
  const core::BatchReport same = core::run_batch({&job, 1}, resume);
  EXPECT_EQ(same.num_resumed, 1u);

  // Drifted circuit: same key, different digest — the job re-runs and the
  // result reflects the new netlist.
  core::BatchJob drifted_job = job;
  drifted_job.circuit = &drifted;
  const core::BatchReport rerun = core::run_batch({&drifted_job, 1}, resume);
  EXPECT_EQ(rerun.num_resumed, 0u);
  ASSERT_EQ(rerun.num_ok, 1u);
  EXPECT_FALSE(rerun.items[0].resumed);
}

TEST_F(JournalTest, JournalKeyDisambiguatesJobs) {
  // Same circuit, different flows and labels → distinct keys.
  EXPECT_NE(core::batch_job_key(jobs_[0]), core::batch_job_key(jobs_[1]));
  core::BatchJob relabeled = jobs_[0];
  relabeled.label = "other";
  EXPECT_NE(core::batch_job_key(jobs_[0]), core::batch_job_key(relabeled));
}

}  // namespace
