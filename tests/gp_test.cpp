// Global placement: constraint-penalty gradients against finite
// differences, symmetry projection, and end-to-end behaviour of both GP
// engines (spreading, constraint satisfaction trends, extra-term hooks).

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "gp/eplace_gp.hpp"
#include "gp/ntu_gp.hpp"
#include "gp/penalties.hpp"
#include "netlist/placement.hpp"
#include "test_util.hpp"

namespace aplace::gp {
namespace {

std::vector<double> irregular_positions(const netlist::Circuit& c) {
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 2.3 * static_cast<double>(i % 4) + 0.31 * static_cast<double>(i);
    v[n + i] =
        1.9 * static_cast<double>(i / 4) + 0.17 * static_cast<double>(i % 7);
  }
  return v;
}

class PenaltyGradientTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PenaltyGradientTest, MatchesFiniteDifference) {
  const std::string kind = GetParam();
  const netlist::Circuit c = test::constrained_circuit();
  const ConstraintPenalties pen(c);
  const std::vector<double> v = irregular_positions(c);
  const geom::Rect region{0.5, 0.5, 6.0, 5.0};  // forces boundary hinges on

  auto eval = [&](const std::vector<double>& x, std::vector<double>* g) {
    std::vector<double> tmp(x.size(), 0.0);
    double val = 0;
    if (kind == "symmetry") val = pen.symmetry(x, tmp, 1.0);
    else if (kind == "alignment") val = pen.alignment(x, tmp, 1.0);
    else if (kind == "ordering") val = pen.ordering(x, tmp, 1.0);
    else val = pen.boundary(x, tmp, 1.0, region);
    if (g) *g = tmp;
    return val;
  };

  std::vector<double> grad;
  eval(v, &grad);
  const auto fd = test::numeric_gradient(
      [&](const std::vector<double>& x) { return eval(x, nullptr); }, v);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad[i], fd[i], 1e-4 + 1e-4 * std::abs(fd[i]))
        << kind << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PenaltyGradientTest,
                         ::testing::Values("symmetry", "alignment",
                                           "ordering", "boundary"));

TEST(PenaltiesTest, SymmetryZeroAtSymmetricState) {
  const netlist::Circuit c = test::constrained_circuit();
  const ConstraintPenalties pen(c);
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n, 0.0);
  // A, B mirrored about x=5 at equal y; S centered.
  v[c.find_device("A").index()] = 3;
  v[c.find_device("B").index()] = 7;
  v[n + c.find_device("A").index()] = 2;
  v[n + c.find_device("B").index()] = 2;
  v[c.find_device("S").index()] = 5;
  v[c.find_device("R1").index()] = 1;
  v[c.find_device("R2").index()] = 9;
  std::vector<double> g(2 * n, 0.0);
  EXPECT_NEAR(pen.symmetry(v, g, 1.0), 0.0, 1e-12);
}

TEST(PenaltiesTest, ProjectionZeroesSymmetryPenalty) {
  const netlist::Circuit c = test::constrained_circuit();
  const ConstraintPenalties pen(c);
  std::vector<double> v = irregular_positions(c);
  std::vector<double> g(v.size(), 0.0);
  EXPECT_GT(pen.symmetry(v, g, 1.0), 0.0);
  pen.project_symmetry(v);
  std::fill(g.begin(), g.end(), 0.0);
  EXPECT_NEAR(pen.symmetry(v, g, 1.0), 0.0, 1e-12);
}

TEST(PenaltiesTest, BoundaryZeroInside) {
  const netlist::Circuit c = test::constrained_circuit();
  const ConstraintPenalties pen(c);
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n, 50.0);  // all well inside a huge region
  std::vector<double> g(2 * n, 0.0);
  EXPECT_DOUBLE_EQ(pen.boundary(v, g, 1.0, {0, 0, 100, 100}), 0.0);
  for (double x : g) EXPECT_DOUBLE_EQ(x, 0.0);
}

// --- ePlace GP ---------------------------------------------------------------

TEST(EPlaceGpTest, SpreadsAndKeepsDevicesNearRegion) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  EPlaceGlobalPlacer placer(tc.circuit, opts);
  const GpResult r = placer.run();
  ASSERT_EQ(r.positions.size(), 2 * tc.circuit.num_devices());
  EXPECT_GT(r.iterations, opts.min_iters);

  netlist::Placement pl(tc.circuit);
  const std::size_t n = tc.circuit.num_devices();
  for (std::size_t i = 0; i < n; ++i) {
    pl.set_position(DeviceId{i}, {r.positions[i], r.positions[n + i]});
  }
  // Residual overlap far below the fully-stacked initial state.
  EXPECT_LT(pl.total_overlap_area(), 0.5 * tc.circuit.total_device_area());
  // Devices stay within (or very near) the placement region.
  const geom::Rect region = placer.region().inflated(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(region.contains(pl.position(DeviceId{i})))
        << tc.circuit.device(DeviceId{i}).name;
  }
}

TEST(EPlaceGpTest, DeterministicForSeed) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  const GpResult a = EPlaceGlobalPlacer(tc.circuit, opts).run();
  const GpResult b = EPlaceGlobalPlacer(tc.circuit, opts).run();
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.positions[i], b.positions[i]);
  }
}

TEST(EPlaceGpTest, HardSymmetryProducesExactMirrors) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  opts.hard_symmetry = true;
  EPlaceGlobalPlacer placer(tc.circuit, opts);
  const GpResult r = placer.run();
  const ConstraintPenalties pen(tc.circuit);
  std::vector<double> g(r.positions.size(), 0.0);
  std::vector<double> v = r.positions;
  EXPECT_NEAR(pen.symmetry(v, g, 1.0), 0.0, 1e-9);
}

TEST(EPlaceGpTest, SoftSymmetryNearlySymmetric) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  EPlaceGlobalPlacer placer(tc.circuit, opts);
  const GpResult r = placer.run();
  const ConstraintPenalties pen(tc.circuit);
  std::vector<double> g(r.positions.size(), 0.0);
  std::vector<double> v = r.positions;
  // Soft constraints: small but not necessarily zero residual, relative to
  // the layout scale.
  const double residual = pen.symmetry(v, g, 1.0);
  EXPECT_LT(residual, tc.circuit.total_device_area());
}

TEST(EPlaceGpTest, ExtraTermReceivesCalls) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  opts.max_iters = 40;
  opts.min_iters = 10;
  EPlaceGlobalPlacer placer(tc.circuit, opts);
  int calls = 0;
  placer.set_extra_term(
      [&](std::span<const double>, std::span<double>) {
        ++calls;
        return 0.0;
      });
  (void)placer.run();
  EXPECT_GT(calls, 10);
}

TEST(EPlaceGpTest, LseSmoothingOptionRuns) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  EPlaceGpOptions opts;
  opts.num_starts = 1;
  opts.smoothing = WlSmoothing::LogSumExp;
  const GpResult r = EPlaceGlobalPlacer(tc.circuit, opts).run();
  EXPECT_GT(r.hpwl, 0.0);
}

// --- prior-work GP --------------------------------------------------------------

TEST(NtuGpTest, RunsAndReducesWirelength) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  NtuGpOptions opts;
  PriorAnalyticalGlobalPlacer placer(tc.circuit, opts);
  const GpResult r = placer.run();
  ASSERT_EQ(r.positions.size(), 2 * tc.circuit.num_devices());
  // Wirelength should beat a naive row placement by a wide margin.
  netlist::Placement rows(tc.circuit);
  double x = 0;
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    const netlist::Device& d = tc.circuit.device(DeviceId{i});
    rows.set_position(DeviceId{i}, {x + d.width / 2, d.height / 2});
    x += d.width;
  }
  EXPECT_LT(r.hpwl, rows.total_hpwl());
}

TEST(NtuGpTest, Deterministic) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const GpResult a = PriorAnalyticalGlobalPlacer(tc.circuit, {}).run();
  const GpResult b = PriorAnalyticalGlobalPlacer(tc.circuit, {}).run();
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.positions[i], b.positions[i]);
  }
}

}  // namespace
}  // namespace aplace::gp
