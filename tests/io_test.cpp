// I/O: circuit/placement text round trips, SVG rendering sanity, error
// handling on malformed input.

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "io/netlist_io.hpp"
#include "io/svg.hpp"
#include "sa/annealer.hpp"
#include "test_util.hpp"

namespace aplace::io {
namespace {

netlist::Placement quick_placement(const netlist::Circuit& c) {
  sa::SaOptions opts;
  opts.max_moves = 2000;
  return sa::SaPlacer(c, opts).place().placement;
}

class IoRoundtripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IoRoundtripTest, CircuitTextRoundtrip) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const std::string text = circuit_to_text(tc.circuit);
  const netlist::Circuit back = circuit_from_text(text);

  EXPECT_EQ(back.name(), tc.circuit.name());
  ASSERT_EQ(back.num_devices(), tc.circuit.num_devices());
  ASSERT_EQ(back.num_pins(), tc.circuit.num_pins());
  ASSERT_EQ(back.num_nets(), tc.circuit.num_nets());
  for (std::size_t i = 0; i < back.num_devices(); ++i) {
    const netlist::Device& a = tc.circuit.device(DeviceId{i});
    const netlist::Device& b = back.device(DeviceId{i});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_DOUBLE_EQ(a.width, b.width);
    EXPECT_DOUBLE_EQ(a.height, b.height);
  }
  for (std::size_t e = 0; e < back.num_nets(); ++e) {
    const netlist::Net& a = tc.circuit.net(NetId{e});
    const netlist::Net& b = back.net(NetId{e});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.pins.size(), b.pins.size());
    EXPECT_EQ(a.critical, b.critical);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
  }
  const netlist::ConstraintSet& ca = tc.circuit.constraints();
  const netlist::ConstraintSet& cb = back.constraints();
  EXPECT_EQ(ca.symmetry_groups.size(), cb.symmetry_groups.size());
  EXPECT_EQ(ca.alignments.size(), cb.alignments.size());
  EXPECT_EQ(ca.orderings.size(), cb.orderings.size());
  // A second serialization must be byte-identical (canonical form).
  EXPECT_EQ(circuit_to_text(back), text);
}

TEST_P(IoRoundtripTest, PlacementTextRoundtrip) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Placement pl = quick_placement(tc.circuit);
  const netlist::Placement back =
      placement_from_text(tc.circuit, placement_to_text(pl));
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(back.position(DeviceId{i}), pl.position(DeviceId{i}));
    EXPECT_EQ(back.orientation(DeviceId{i}), pl.orientation(DeviceId{i}));
  }
  EXPECT_DOUBLE_EQ(back.total_hpwl(), pl.total_hpwl());
}

INSTANTIATE_TEST_SUITE_P(Subset, IoRoundtripTest,
                         ::testing::Values("Adder", "CC-OTA", "SCF", "VCO2"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(IoErrorTest, RejectsUnknownDirective) {
  EXPECT_THROW(circuit_from_text("circuit x\nbogus line\n"), CheckError);
}

TEST(IoErrorTest, RejectsUnknownDeviceInNet) {
  const std::string text =
      "circuit x\n"
      "device A nmos 2 2\n"
      "pin A p 1 1\n"
      "net n 1 0 A.p B.q\n";
  EXPECT_THROW(circuit_from_text(text), CheckError);
}

TEST(IoErrorTest, RejectsIncompletePlacement) {
  const netlist::Circuit c = test::two_device_circuit();
  EXPECT_THROW(placement_from_text(c, "placement two\nplace A 1 1\n"),
               CheckError);
}

TEST(IoErrorTest, RejectsWrongCircuitName) {
  const netlist::Circuit c = test::two_device_circuit();
  EXPECT_THROW(placement_from_text(
                   c, "placement other\nplace A 1 1\nplace B 2 2\n"),
               CheckError);
}

TEST(IoErrorTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "circuit x\n"
      "\n"
      "device A nmos 2 2   # trailing comment\n"
      "device B nmos 2 2\n"
      "pin A p 1 1\n"
      "pin B p 1 1\n"
      "net n 1 0 A.p B.p\n";
  const netlist::Circuit c = circuit_from_text(text);
  EXPECT_EQ(c.num_devices(), 2u);
}

TEST(SvgTest, RendersAllDevicesAndParses) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Placement pl = quick_placement(tc.circuit);
  const std::string svg = to_svg(pl);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  for (const netlist::Device& d : tc.circuit.devices()) {
    EXPECT_NE(svg.find(">" + d.name + "<"), std::string::npos) << d.name;
  }
  // Symmetry axes drawn for both groups.
  std::size_t dashes = 0, pos = 0;
  while ((pos = svg.find("stroke-dasharray=\"2 4\"", pos)) !=
         std::string::npos) {
    ++dashes;
    pos += 1;
  }
  EXPECT_EQ(dashes, tc.circuit.constraints().symmetry_groups.size());
}

TEST(SvgTest, OptionsDisableLayers) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Placement pl = quick_placement(tc.circuit);
  SvgOptions opt;
  opt.draw_nets = false;
  opt.draw_pins = false;
  opt.draw_labels = false;
  opt.draw_symmetry = false;
  const std::string svg = to_svg(pl, opt);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(IoFileTest, WriteAndReadBack) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const std::string dir = ::testing::TempDir();
  write_circuit(tc.circuit, dir + "/adder.acirc");
  const netlist::Circuit back = read_circuit(dir + "/adder.acirc");
  EXPECT_EQ(back.num_devices(), tc.circuit.num_devices());

  const netlist::Placement pl = quick_placement(tc.circuit);
  write_placement(pl, dir + "/adder.aplc");
  const netlist::Placement pback = read_placement(tc.circuit,
                                                  dir + "/adder.aplc");
  EXPECT_DOUBLE_EQ(pback.total_hpwl(), pl.total_hpwl());

  write_svg(pl, dir + "/adder.svg");
  EXPECT_THROW(write_svg(pl, "/nonexistent-dir/x.svg"), CheckError);
}

}  // namespace
}  // namespace aplace::io

namespace aplace::io {
namespace {

TEST(IoRoundtripExtraTest, CommonCentroidDirective) {
  const std::string text =
      "circuit quad\n"
      "device A1 nmos 2 2\ndevice A2 nmos 2 2\n"
      "device B1 nmos 2 2\ndevice B2 nmos 2 2\n"
      "pin A1 p 1 1\npin A2 p 1 1\npin B1 p 1 1\npin B2 p 1 1\n"
      "net n 1 0 A1.p A2.p B1.p B2.p\n"
      "centroid A1 A2 B1 B2\n";
  const netlist::Circuit c = circuit_from_text(text);
  ASSERT_EQ(c.constraints().common_centroids.size(), 1u);
  // Round trip preserves the directive.
  const netlist::Circuit back = circuit_from_text(circuit_to_text(c));
  EXPECT_EQ(back.constraints().common_centroids.size(), 1u);
  EXPECT_EQ(circuit_to_text(back), circuit_to_text(c));
}

}  // namespace
}  // namespace aplace::io
