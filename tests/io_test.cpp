// I/O: circuit/placement text round trips over every registry circuit, SVG
// rendering sanity, and diagnostics on malformed input (the hardened parsers
// return Result<T> with line/column context instead of throwing).

#include <gtest/gtest.h>

#include <string>

#include "circuits/testcases.hpp"
#include "io/netlist_io.hpp"
#include "io/svg.hpp"
#include "sa/annealer.hpp"
#include "test_util.hpp"

namespace aplace::io {
namespace {

netlist::Placement quick_placement(const netlist::Circuit& c) {
  sa::SaOptions opts;
  opts.max_moves = 2000;
  return sa::SaPlacer(c, opts).place().placement;
}

void expect_invalid(const Status& st, const std::string& needle) {
  EXPECT_EQ(st.code(), StatusCode::InvalidInput) << st.to_string();
  EXPECT_NE(st.to_string().find(needle), std::string::npos)
      << "expected '" << needle << "' in: " << st.to_string();
}

class IoRoundtripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IoRoundtripTest, CircuitTextRoundtrip) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const std::string text = circuit_to_text(tc.circuit);
  const Result<netlist::Circuit> parsed = circuit_from_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const netlist::Circuit& back = parsed.value();

  EXPECT_EQ(back.name(), tc.circuit.name());
  ASSERT_EQ(back.num_devices(), tc.circuit.num_devices());
  ASSERT_EQ(back.num_pins(), tc.circuit.num_pins());
  ASSERT_EQ(back.num_nets(), tc.circuit.num_nets());
  for (std::size_t i = 0; i < back.num_devices(); ++i) {
    const netlist::Device& a = tc.circuit.device(DeviceId{i});
    const netlist::Device& b = back.device(DeviceId{i});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    // Exact (to_chars) serialization: bit-identical, not just close.
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.height, b.height);
  }
  for (std::size_t p = 0; p < back.num_pins(); ++p) {
    const netlist::Pin& a = tc.circuit.pin(PinId{p});
    const netlist::Pin& b = back.pin(PinId{p});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.offset.x, b.offset.x);
    EXPECT_EQ(a.offset.y, b.offset.y);
  }
  for (std::size_t e = 0; e < back.num_nets(); ++e) {
    const netlist::Net& a = tc.circuit.net(NetId{e});
    const netlist::Net& b = back.net(NetId{e});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.pins.size(), b.pins.size());
    EXPECT_EQ(a.critical, b.critical);
    EXPECT_EQ(a.weight, b.weight);
  }
  const netlist::ConstraintSet& ca = tc.circuit.constraints();
  const netlist::ConstraintSet& cb = back.constraints();
  EXPECT_EQ(ca.symmetry_groups.size(), cb.symmetry_groups.size());
  EXPECT_EQ(ca.alignments.size(), cb.alignments.size());
  EXPECT_EQ(ca.orderings.size(), cb.orderings.size());
  EXPECT_EQ(ca.common_centroids.size(), cb.common_centroids.size());
  // A second serialization must be byte-identical (canonical form).
  EXPECT_EQ(circuit_to_text(back), text);
}

TEST_P(IoRoundtripTest, PlacementTextRoundtrip) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Placement pl = quick_placement(tc.circuit);
  const Result<netlist::Placement> parsed =
      placement_from_text(tc.circuit, placement_to_text(pl));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const netlist::Placement& back = parsed.value();
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    EXPECT_EQ(back.position(DeviceId{i}), pl.position(DeviceId{i}));
    EXPECT_EQ(back.orientation(DeviceId{i}), pl.orientation(DeviceId{i}));
  }
  EXPECT_DOUBLE_EQ(back.total_hpwl(), pl.total_hpwl());
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, IoRoundtripTest,
                         ::testing::ValuesIn(circuits::testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(IoRoundtripExactTest, AwkwardDoublesSurviveBitExactly) {
  // Coordinates with no short decimal form must still round-trip to the
  // same bits (the run journal replays placements through this path).
  const netlist::Circuit c = test::two_device_circuit();
  netlist::Placement pl(c);
  pl.set_position(c.find_device("A"), {0.1 + 0.2, 1.0 / 3.0});
  pl.set_position(c.find_device("B"), {1e-300, 12345.678901234567});
  pl.set_orientation(c.find_device("B"), {true, false});
  const Result<netlist::Placement> back =
      placement_from_text(c, placement_to_text(pl));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    EXPECT_EQ(back.value().position(DeviceId{i}), pl.position(DeviceId{i}));
    EXPECT_EQ(back.value().orientation(DeviceId{i}),
              pl.orientation(DeviceId{i}));
  }
}

TEST(IoErrorTest, RejectsUnknownDirective) {
  const auto r = circuit_from_text("circuit x\nbogus line\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "line 2");
  expect_invalid(r.status(), "bogus");
}

TEST(IoErrorTest, RejectsDirectiveBeforeCircuit) {
  const auto r = circuit_from_text("device A nmos 2 2\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "expected 'circuit <name>'");
}

TEST(IoErrorTest, DuplicateDeviceNamesBothLines) {
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\n"
      "device B nmos 2 2\n"
      "device A pmos 3 3\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "line 4");
  expect_invalid(r.status(), "duplicate device 'A'");
  expect_invalid(r.status(), "first defined at line 2");
}

TEST(IoErrorTest, DuplicateNetNamesBothLines) {
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\ndevice B nmos 2 2\n"
      "pin A p 1 1\npin B p 1 1\n"
      "net n 1 0 A.p\n"
      "net n 1 0 B.p\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "line 7");
  expect_invalid(r.status(), "duplicate net 'n'");
  expect_invalid(r.status(), "first defined at line 6");
}

TEST(IoErrorTest, DuplicatePinNamesBothLines) {
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\n"
      "pin A p 1 1\n"
      "pin A p 0 0\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "duplicate pin 'A.p'");
  expect_invalid(r.status(), "first defined at line 3");
}

TEST(IoErrorTest, RejectsUnknownDeviceInNet) {
  const std::string text =
      "circuit x\n"
      "device A nmos 2 2\n"
      "pin A p 1 1\n"
      "net n 1 0 A.p B.q\n";
  const auto r = circuit_from_text(text);
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "unknown pin 'B.q'");
  expect_invalid(r.status(), "line 4");
}

TEST(IoErrorTest, RejectsPinOnTwoNets) {
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\ndevice B nmos 2 2\n"
      "pin A p 1 1\npin B p 1 1\n"
      "net n1 1 0 A.p B.p\n"
      "net n2 1 0 A.p\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "pin 'A.p' already on net 'n1'");
}

TEST(IoErrorTest, RejectsUnconnectedPin) {
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\ndevice B nmos 2 2\n"
      "pin A p 1 1\npin B p 1 1\npin B q 0 0\n"
      "net n 1 0 A.p B.p\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "pin 'B.q' is not connected");
  expect_invalid(r.status(), "line 6");
}

TEST(IoErrorTest, RejectsMalformedNumbers) {
  const auto r = circuit_from_text("circuit x\ndevice A nmos 2 tall\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "expected a finite number");
  expect_invalid(r.status(), "'tall'");
}

TEST(IoErrorTest, RejectsNonFiniteCoordinates) {
  const netlist::Circuit c = test::two_device_circuit();
  const auto r = placement_from_text(
      c, "placement two\nplace A inf 0\nplace B 0 0\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "finite number");
}

TEST(IoErrorTest, RejectsNonPositiveFootprint) {
  const auto r = circuit_from_text("circuit x\ndevice A nmos 2 0\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "positive footprint");
}

TEST(IoErrorTest, RejectsPinOutsideFootprint) {
  const auto r =
      circuit_from_text("circuit x\ndevice A nmos 2 2\npin A p 3 1\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "outside device 'A' footprint");
}

TEST(IoErrorTest, RejectsSecondCircuitDirective) {
  const auto r = circuit_from_text("circuit x\ncircuit y\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "duplicate 'circuit'");
}

TEST(IoErrorTest, RejectsBadSymmetryAxis) {
  const auto r = circuit_from_text(
      "circuit x\ndevice A nmos 2 2\npin A p 1 1\nnet n 1 0 A.p\n"
      "sym X self A\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "V or H");
}

TEST(IoErrorTest, RejectsIncompletePlacement) {
  const netlist::Circuit c = test::two_device_circuit();
  const auto r = placement_from_text(c, "placement two\nplace A 1 1\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "missing 'B'");
}

TEST(IoErrorTest, DuplicatePlaceNamesBothLines) {
  const netlist::Circuit c = test::two_device_circuit();
  const auto r = placement_from_text(
      c, "placement two\nplace A 1 1\nplace A 2 2\nplace B 0 0\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "duplicate 'place' for device 'A'");
  expect_invalid(r.status(), "first at line 2");
}

TEST(IoErrorTest, RejectsWrongCircuitName) {
  const netlist::Circuit c = test::two_device_circuit();
  const auto r = placement_from_text(
      c, "placement other\nplace A 1 1\nplace B 2 2\n");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "placement is for circuit 'other'");
}

TEST(IoErrorTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "circuit x\n"
      "\n"
      "device A nmos 2 2   # trailing comment\n"
      "device B nmos 2 2\n"
      "pin A p 1 1\n"
      "pin B p 1 1\n"
      "net n 1 0 A.p B.p\n";
  const auto r = circuit_from_text(text);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().num_devices(), 2u);
}

TEST(IoErrorTest, SinglePinNetsAccepted) {
  // add_net allows dangling single-pin nets and circuit_to_text emits them,
  // so the parser must accept them for the round trip to close.
  const auto r = circuit_from_text(
      "circuit x\n"
      "device A nmos 2 2\ndevice B nmos 2 2\n"
      "pin A p 1 1\npin B p 1 1\n"
      "net n1 1 0 A.p\n"
      "net n2 1 0 B.p\n");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().num_nets(), 2u);
}

TEST(SvgTest, RendersAllDevicesAndParses) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Placement pl = quick_placement(tc.circuit);
  const std::string svg = to_svg(pl);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  for (const netlist::Device& d : tc.circuit.devices()) {
    EXPECT_NE(svg.find(">" + d.name + "<"), std::string::npos) << d.name;
  }
  // Symmetry axes drawn for both groups.
  std::size_t dashes = 0, pos = 0;
  while ((pos = svg.find("stroke-dasharray=\"2 4\"", pos)) !=
         std::string::npos) {
    ++dashes;
    pos += 1;
  }
  EXPECT_EQ(dashes, tc.circuit.constraints().symmetry_groups.size());
}

TEST(SvgTest, OptionsDisableLayers) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Placement pl = quick_placement(tc.circuit);
  SvgOptions opt;
  opt.draw_nets = false;
  opt.draw_pins = false;
  opt.draw_labels = false;
  opt.draw_symmetry = false;
  const std::string svg = to_svg(pl, opt);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(IoFileTest, WriteAndReadBack) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_circuit(tc.circuit, dir + "/adder.acirc").ok());
  const Result<netlist::Circuit> back = read_circuit(dir + "/adder.acirc");
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().num_devices(), tc.circuit.num_devices());

  const netlist::Placement pl = quick_placement(tc.circuit);
  ASSERT_TRUE(write_placement(pl, dir + "/adder.aplc").ok());
  const Result<netlist::Placement> pback =
      read_placement(tc.circuit, dir + "/adder.aplc");
  ASSERT_TRUE(pback.ok()) << pback.status().to_string();
  EXPECT_DOUBLE_EQ(pback.value().total_hpwl(), pl.total_hpwl());

  write_svg(pl, dir + "/adder.svg");
  EXPECT_THROW(write_svg(pl, "/nonexistent-dir/x.svg"), CheckError);
}

TEST(IoFileTest, MissingFilesReportThePath) {
  const Result<netlist::Circuit> r = read_circuit("/no/such/file.acirc");
  ASSERT_FALSE(r.ok());
  expect_invalid(r.status(), "/no/such/file.acirc");
  EXPECT_FALSE(write_circuit(circuits::make_testcase("Adder").circuit,
                             "/no/such/dir/x.acirc")
                   .ok());
}

TEST(IoRoundtripExtraTest, CommonCentroidDirective) {
  const std::string text =
      "circuit quad\n"
      "device A1 nmos 2 2\ndevice A2 nmos 2 2\n"
      "device B1 nmos 2 2\ndevice B2 nmos 2 2\n"
      "pin A1 p 1 1\npin A2 p 1 1\npin B1 p 1 1\npin B2 p 1 1\n"
      "net n 1 0 A1.p A2.p B1.p B2.p\n"
      "centroid A1 A2 B1 B2\n";
  const Result<netlist::Circuit> parsed = circuit_from_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const netlist::Circuit& c = parsed.value();
  ASSERT_EQ(c.constraints().common_centroids.size(), 1u);
  // Round trip preserves the directive.
  const Result<netlist::Circuit> back =
      circuit_from_text(circuit_to_text(c));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().constraints().common_centroids.size(), 1u);
  EXPECT_EQ(circuit_to_text(back.value()), circuit_to_text(c));
}

}  // namespace
}  // namespace aplace::io
