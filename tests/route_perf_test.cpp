// Router and surrogate performance model.

#include <gtest/gtest.h>

#include "circuits/testcases.hpp"
#include "core/flow.hpp"
#include "perf/model.hpp"
#include "perf/spec.hpp"
#include "route/router.hpp"
#include "test_util.hpp"

namespace aplace {
namespace {

netlist::Placement legal_placement(const netlist::Circuit& c) {
  // Quick legal placement via short SA.
  sa::SaOptions opts;
  opts.max_moves = 4000;
  return sa::SaPlacer(c, opts).place().placement;
}

TEST(RouterTest, RoutesEveryNet) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Placement pl = legal_placement(tc.circuit);
  const route::RoutingResult rr = route::GridRouter().route(pl);
  ASSERT_EQ(rr.nets.size(), tc.circuit.num_nets());
  for (std::size_t e = 0; e < rr.nets.size(); ++e) {
    EXPECT_GT(rr.net_length(NetId{e}), 0.0)
        << tc.circuit.net(NetId{e}).name;
  }
  EXPECT_GT(rr.total_length, 0.0);
}

TEST(RouterTest, RoutedLengthAtLeastGridHpwl) {
  // Manhattan routing cannot beat the pin bounding box by more than the
  // grid snapping error.
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Placement pl = legal_placement(tc.circuit);
  route::RouterOptions opts;
  opts.pitch = 0.25;
  const route::RoutingResult rr = route::GridRouter(opts).route(pl);
  for (std::size_t e = 0; e < rr.nets.size(); ++e) {
    const double hpwl = pl.net_hpwl(NetId{e});
    EXPECT_GE(rr.net_length(NetId{e}), hpwl - 4 * 0.25 - 1e-9)
        << tc.circuit.net(NetId{e}).name;
  }
}

TEST(RouterTest, Deterministic) {
  circuits::TestCase tc = circuits::make_testcase("VGA");
  const netlist::Placement pl = legal_placement(tc.circuit);
  const route::RoutingResult a = route::GridRouter().route(pl);
  const route::RoutingResult b = route::GridRouter().route(pl);
  EXPECT_DOUBLE_EQ(a.total_length, b.total_length);
}

TEST(RouterTest, CongestionPenaltySpreadsRoutes) {
  circuits::TestCase tc = circuits::make_testcase("Comp1");
  const netlist::Placement pl = legal_placement(tc.circuit);
  route::RouterOptions congested, relaxed;
  congested.congestion_penalty = 2.0;
  relaxed.congestion_penalty = 0.0;
  const auto rc = route::GridRouter(congested).route(pl);
  const auto rr = route::GridRouter(relaxed).route(pl);
  EXPECT_LE(rr.total_length, rc.total_length + 1e-9)
      << "zero congestion cost yields shortest paths";
  EXPECT_LE(rc.max_edge_usage, rr.max_edge_usage + 1e-9);
}

// --- perf spec ------------------------------------------------------------------

TEST(PerfSpecTest, NormalizeMetricEq6) {
  perf::MetricSpec above{"gain", 25.0, perf::Direction::Above, 1.0, 0.0,
                         perf::MetricForm::InverseLoad, {}};
  EXPECT_DOUBLE_EQ(perf::normalize_metric(25.0, above), 1.0);
  EXPECT_DOUBLE_EQ(perf::normalize_metric(30.0, above), 1.0) << "clipped";
  EXPECT_DOUBLE_EQ(perf::normalize_metric(12.5, above), 0.5);
  EXPECT_DOUBLE_EQ(perf::normalize_metric(-3.0, above), 0.0);

  perf::MetricSpec below{"delay", 100.0, perf::Direction::Below, 1.0, 0.0,
                         perf::MetricForm::LinearGrowth, {}};
  EXPECT_DOUBLE_EQ(perf::normalize_metric(100.0, below), 1.0);
  EXPECT_DOUBLE_EQ(perf::normalize_metric(50.0, below), 1.0) << "clipped";
  EXPECT_DOUBLE_EQ(perf::normalize_metric(200.0, below), 0.5);
}

TEST(PerfSpecTest, WeightNormalization) {
  perf::PerformanceSpec spec;
  spec.metrics.push_back({"a", 1, perf::Direction::Above, 3.0, 1,
                          perf::MetricForm::InverseLoad, {}});
  spec.metrics.push_back({"b", 1, perf::Direction::Above, 1.0, 1,
                          perf::MetricForm::InverseLoad, {}});
  spec.normalize_weights();
  EXPECT_DOUBLE_EQ(spec.metrics[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(spec.metrics[1].weight, 0.25);
}

TEST(PerfModelTest, FomInUnitInterval) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const perf::PerformanceModel model(tc.circuit, tc.spec);
  const netlist::Placement pl = legal_placement(tc.circuit);
  const perf::PerformanceResult res = model.evaluate(pl);
  EXPECT_GT(res.fom, 0.0);
  EXPECT_LE(res.fom, 1.0);
  EXPECT_EQ(res.metrics.size(), tc.spec.metrics.size());
  for (const perf::MetricResult& m : res.metrics) {
    EXPECT_GE(m.normalized, 0.0);
    EXPECT_LE(m.normalized, 1.0);
  }
}

TEST(PerfModelTest, WorsePlacementWorseFom) {
  // Scaling all positions up stretches every net and pair separation, so
  // the FOM must not improve.
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  const perf::PerformanceModel model(tc.circuit, tc.spec);
  netlist::Placement good = legal_placement(tc.circuit);
  netlist::Placement bad = good;
  for (std::size_t i = 0; i < tc.circuit.num_devices(); ++i) {
    const geom::Point p = good.position(DeviceId{i});
    bad.set_position(DeviceId{i}, {p.x * 4.0, p.y * 4.0});
  }
  const double fom_good = model.evaluate(good).fom;
  const double fom_bad = model.evaluate(bad).fom;
  EXPECT_LE(fom_bad, fom_good + 1e-12);
}

TEST(PerfModelTest, FeatureMonotonicity) {
  circuits::TestCase tc = circuits::make_testcase("VCO1");
  const perf::PerformanceModel model(tc.circuit, tc.spec);
  perf::Features f{0.2, 0.3, 0.4, 0.1};
  perf::Features worse = f;
  worse.critical_len = 1.5;
  EXPECT_LE(model.evaluate_features(worse).fom,
            model.evaluate_features(f).fom);
}

TEST(PerfModelTest, RoutedFeaturesLongerThanHpwl) {
  circuits::TestCase tc = circuits::make_testcase("Comp2");
  const perf::PerformanceModel model(tc.circuit, tc.spec);
  const netlist::Placement pl = legal_placement(tc.circuit);
  const route::RoutingResult rr = route::GridRouter().route(pl);
  const perf::Features unrouted = model.extract_features(pl, nullptr);
  const perf::Features routed = model.extract_features(pl, &rr);
  EXPECT_GE(routed.total_len, unrouted.total_len * 0.8)
      << "routed lengths should not be wildly below HPWL";
}

}  // namespace
}  // namespace aplace

namespace aplace {
namespace {

TEST(RouterTest, WaypointsFormManhattanPaths) {
  circuits::TestCase tc = circuits::make_testcase("Adder");
  const netlist::Placement pl = legal_placement(tc.circuit);
  route::RouterOptions opts;
  opts.pitch = 0.5;
  const route::RoutingResult rr = route::GridRouter(opts).route(pl);
  for (const route::NetRoute& net : rr.nets) {
    for (std::size_t k = 1; k < net.waypoints.size(); ++k) {
      const geom::Point a = net.waypoints[k - 1];
      const geom::Point b = net.waypoints[k];
      // Consecutive waypoints within one segment are one grid step apart
      // in exactly one axis (segment breaks re-start at the tree, so allow
      // larger jumps only when one coordinate matches a previous node).
      const double d = a.manhattan(b);
      if (d <= opts.pitch + 1e-9) {
        EXPECT_TRUE(std::abs(a.x - b.x) < 1e-9 ||
                    std::abs(a.y - b.y) < 1e-9);
      }
    }
  }
}

TEST(RouterTest, CoincidentPinsYieldZeroLengthNet) {
  netlist::Circuit c("coin");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 2, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 2, 2);
  const PinId pa = c.add_pin(a, "p", {2, 1});   // right edge of A
  const PinId pb = c.add_pin(b, "p", {0, 1});   // left edge of B
  c.add_net("n", {pa, pb});
  c.finalize();
  netlist::Placement pl(c);
  pl.set_position(a, {1, 1});
  pl.set_position(b, {3, 1});  // pins coincide at (2, 1)
  const route::RoutingResult rr = route::GridRouter().route(pl);
  EXPECT_NEAR(rr.total_length, 0.0, 1e-9);
}

TEST(PerfModelTest, SensScaleMonotone) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  perf::PerformanceSpec strong = tc.spec;
  strong.sens_scale *= 3.0;
  const perf::PerformanceModel weak_model(tc.circuit, tc.spec);
  const perf::PerformanceModel strong_model(tc.circuit, strong);
  const perf::Features f{0.5, 0.5, 0.5, 0.5};
  EXPECT_LT(strong_model.evaluate_features(f).fom,
            weak_model.evaluate_features(f).fom);
}

TEST(PerfModelTest, ZeroFeaturesGiveNominal) {
  circuits::TestCase tc = circuits::make_testcase("VGA");
  const perf::PerformanceModel model(tc.circuit, tc.spec);
  const perf::PerformanceResult r = model.evaluate_features({});
  for (std::size_t m = 0; m < r.metrics.size(); ++m) {
    EXPECT_NEAR(r.metrics[m].value, tc.spec.metrics[m].base, 1e-12)
        << r.metrics[m].name;
  }
}

TEST(PerfModelTest, SubtractiveFormCanGoNegativeButNormalizedClamps) {
  perf::MetricSpec m{"pm", 60.0, perf::Direction::Above, 1.0, 70.0,
                     perf::MetricForm::Subtractive, {100.0, 0, 0, 0}};
  netlist::Circuit c = test::two_device_circuit();
  perf::PerformanceSpec spec;
  spec.metrics.push_back(m);
  const perf::PerformanceModel model(c, spec);
  const perf::PerformanceResult r =
      model.evaluate_features({2.0, 0, 0, 0});  // 70 - 200 = -130
  EXPECT_LT(r.metrics[0].value, 0.0);
  EXPECT_DOUBLE_EQ(r.metrics[0].normalized, 0.0);
  EXPECT_DOUBLE_EQ(r.fom, 0.0);
}

}  // namespace
}  // namespace aplace
