// LP/MILP solver: simplex on canonical cases (bounded, equality, free
// variables, infeasible, unbounded, degenerate) and branch-and-bound on
// small integer programs.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "solver/lp.hpp"
#include "solver/milp.hpp"

namespace aplace::solver {
namespace {

TEST(LpTest, SimpleBounded) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
  // => min -(x+y); optimum at intersection (1.6, 1.2), value 2.8.
  LpProblem p;
  const int x = p.add_variable(0, kInf, -1.0, "x");
  const int y = p.add_variable(0, kInf, -1.0, "y");
  p.add_constraint({{x, 1}, {y, 2}}, Relation::LessEq, 4);
  p.add_constraint({{x, 3}, {y, 1}}, Relation::LessEq, 6);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 1.6, 1e-7);
  EXPECT_NEAR(s.x[y], 1.2, 1e-7);
  EXPECT_NEAR(s.objective, -2.8, 1e-7);
}

TEST(LpTest, EqualityConstraint) {
  // min x + y s.t. x + y = 3, x - y = 1 -> x=2, y=1.
  LpProblem p;
  const int x = p.add_variable(0, kInf, 1.0);
  const int y = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::Equal, 3);
  p.add_constraint({{x, 1}, {y, -1}}, Relation::Equal, 1);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 2, 1e-8);
  EXPECT_NEAR(s.x[y], 1, 1e-8);
}

TEST(LpTest, FreeVariable) {
  // min |style| distance: min t s.t. t >= x - 5, t >= 5 - x, x free.
  // x can sit at 5 making t = 0.
  LpProblem p;
  const int x = p.add_variable(-kInf, kInf, 0.0);
  const int t = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1}, {t, -1}}, Relation::LessEq, 5);
  p.add_constraint({{x, -1}, {t, -1}}, Relation::LessEq, -5);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 5, 1e-7);
  EXPECT_NEAR(s.objective, 0, 1e-8);
}

TEST(LpTest, NegativeLowerBounds) {
  // min x s.t. x >= -3 -> x = -3.
  LpProblem p;
  const int x = p.add_variable(-3, kInf, 1.0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 10);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], -3, 1e-8);
}

TEST(LpTest, UpperBoundedVariable) {
  // min -x with x in [0, 7] -> x = 7.
  LpProblem p;
  const int x = p.add_variable(0, 7, -1.0);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 0);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 7, 1e-8);
}

TEST(LpTest, Infeasible) {
  LpProblem p;
  const int x = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 2);
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::Infeasible);
}

TEST(LpTest, Unbounded) {
  LpProblem p;
  const int x = p.add_variable(0, kInf, -1.0);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 1);
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::Unbounded);
}

TEST(LpTest, UnconstrainedProblem) {
  LpProblem p;
  const int x = p.add_variable(2, 9, 1.0);
  const int y = p.add_variable(-4, 3, -1.0);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 2, 1e-12);
  EXPECT_NEAR(s.x[y], 3, 1e-12);
}

TEST(LpTest, DegenerateVertex) {
  // Multiple constraints through one vertex; must not cycle.
  LpProblem p;
  const int x = p.add_variable(0, kInf, -1.0);
  const int y = p.add_variable(0, kInf, -1.0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 1);
  p.add_constraint({{y, 1}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 2);
  p.add_constraint({{x, 2}, {y, 1}}, Relation::LessEq, 3);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::LessEq, 3);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -2.0, 1e-7);
}

TEST(LpTest, SeparationChain) {
  // Placement-like: x1 + 2 <= x2, x2 + 2 <= x3, minimize x3 with x1 >= 1.
  LpProblem p;
  const int x1 = p.add_variable(1, kInf, 0.0);
  const int x2 = p.add_variable(0, kInf, 0.0);
  const int x3 = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x1, 1}, {x2, -1}}, Relation::LessEq, -2);
  p.add_constraint({{x2, 1}, {x3, -1}}, Relation::LessEq, -2);
  const LpSolution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x3], 5, 1e-7);
}

TEST(MilpTest, SimpleBinaryChoice) {
  // min -(3a + 2b) s.t. a + b <= 1, a,b binary -> a=1, b=0.
  LpProblem p;
  const int a = p.add_variable(0, 1, -3.0);
  const int b = p.add_variable(0, 1, -2.0);
  p.set_integer(a);
  p.set_integer(b);
  p.add_constraint({{a, 1}, {b, 1}}, Relation::LessEq, 1);
  const MilpSolution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[a], 1, 1e-9);
  EXPECT_NEAR(s.x[b], 0, 1e-9);
  EXPECT_TRUE(s.proven_optimal);
}

TEST(MilpTest, KnapsackRequiresBranching) {
  // Fractional relaxation would take half of item 1.
  // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7 (binaries).
  // Optimal integer: b + c = 10, or a + ... check: a alone=10 (w5), b+c=10
  // (w7); tie at 10.
  LpProblem p;
  const int a = p.add_variable(0, 1, -10.0);
  const int b = p.add_variable(0, 1, -6.0);
  const int c = p.add_variable(0, 1, -4.0);
  for (int v : {a, b, c}) p.set_integer(v);
  p.add_constraint({{a, 5}, {b, 4}, {c, 3}}, Relation::LessEq, 7);
  const MilpSolution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -10.0, 1e-7);
  // Solution must be integral.
  for (int v : {a, b, c}) {
    EXPECT_NEAR(s.x[v], std::round(s.x[v]), 1e-7);
  }
}

TEST(MilpTest, IntegerGeneral) {
  // min x s.t. 2x >= 7, x integer -> x = 4.
  LpProblem p;
  const int x = p.add_variable(0, kInf, 1.0);
  p.set_integer(x);
  p.add_constraint({{x, 2}}, Relation::GreaterEq, 7);
  const MilpSolution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 4, 1e-9);
}

TEST(MilpTest, InfeasibleInteger) {
  // 0.4 <= x <= 0.6, integer: infeasible.
  LpProblem p;
  const int x = p.add_variable(0.4, 0.6, 1.0);
  p.set_integer(x);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 0.0);
  const MilpSolution s = solve_milp(p);
  EXPECT_FALSE(s.ok());
}

TEST(MilpTest, RelaxationAlreadyIntegral) {
  LpProblem p;
  const int x = p.add_variable(0, 5, -1.0);
  p.set_integer(x);
  p.add_constraint({{x, 1}}, Relation::LessEq, 3);
  const MilpSolution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 3, 1e-9);
  EXPECT_EQ(s.nodes_explored, 1);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // min -(x + y), x integer in [0,10], y continuous in [0, 2.5],
  // x + y <= 5.7 -> best integral x maximizes x + y at x=5, y=0.7.
  LpProblem p;
  const int x = p.add_variable(0, 10, -1.0);
  const int y = p.add_variable(0, 2.5, -1.0);
  p.set_integer(x);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 5.7);
  const MilpSolution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], 5, 1e-7);
  EXPECT_NEAR(s.x[y], 0.7, 1e-7);
  EXPECT_NEAR(s.objective, -5.7, 1e-7);
}

}  // namespace
}  // namespace aplace::solver

namespace aplace::solver {
namespace {

// Property: on random small integer programs with bounded variables, B&B
// must match exhaustive enumeration of the integer lattice.
TEST(MilpPropertyTest, MatchesBruteForceOnRandomPrograms) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> coef(-4, 4);
  std::uniform_int_distribution<int> rhs_d(2, 14);
  std::uniform_real_distribution<double> cost_d(-3.0, 3.0);

  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3;
    const int lo = 0, hi = 3;
    LpProblem p;
    std::vector<int> vars;
    std::vector<double> costs;
    for (int j = 0; j < n; ++j) {
      const double cost = cost_d(rng);
      vars.push_back(p.add_variable(lo, hi, cost));
      p.set_integer(vars.back());
      costs.push_back(cost);
    }
    // Two random <= constraints with nonnegative coefficients on at least
    // one side so the box keeps everything bounded.
    std::vector<std::vector<int>> rows;
    std::vector<int> rhs;
    for (int r = 0; r < 2; ++r) {
      std::vector<LpTerm> terms;
      std::vector<int> row;
      for (int j = 0; j < n; ++j) {
        const int a = coef(rng);
        row.push_back(a);
        if (a != 0) terms.push_back({vars[j], static_cast<double>(a)});
      }
      const int b = rhs_d(rng);
      rows.push_back(row);
      rhs.push_back(b);
      if (!terms.empty()) {
        p.add_constraint(std::move(terms), Relation::LessEq,
                         static_cast<double>(b));
      }
    }

    // Brute force over the 4^3 lattice.
    double best = 1e300;
    for (int a = lo; a <= hi; ++a) {
      for (int b = lo; b <= hi; ++b) {
        for (int c = lo; c <= hi; ++c) {
          const int x[3] = {a, b, c};
          bool ok = true;
          for (std::size_t r = 0; r < rows.size(); ++r) {
            int lhs = 0;
            for (int j = 0; j < n; ++j) lhs += rows[r][j] * x[j];
            if (lhs > rhs[r]) ok = false;
          }
          if (!ok) continue;
          double val = 0;
          for (int j = 0; j < n; ++j) val += costs[j] * x[j];
          best = std::min(best, val);
        }
      }
    }

    const MilpSolution s = solve_milp(p);
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(s.x[vars[j]], std::round(s.x[vars[j]]), 1e-6);
    }
  }
}

// Property: LP optimum is always <= MILP optimum (relaxation bound).
TEST(MilpPropertyTest, RelaxationBoundsInteger) {
  std::mt19937 rng(77);
  std::uniform_real_distribution<double> cost_d(-2.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem p;
    std::vector<int> vars;
    for (int j = 0; j < 4; ++j) {
      vars.push_back(p.add_variable(0, 5, cost_d(rng)));
    }
    p.add_constraint({{vars[0], 2}, {vars[1], 3}, {vars[2], 1}},
                     Relation::LessEq, 11);
    p.add_constraint({{vars[1], 1}, {vars[3], 4}}, Relation::LessEq, 9);
    const LpSolution rel = solve_lp(p);
    ASSERT_TRUE(rel.ok());
    for (int v : vars) p.set_integer(v);
    const MilpSolution s = solve_milp(p);
    ASSERT_TRUE(s.ok());
    EXPECT_LE(rel.objective, s.objective + 1e-9);
  }
}

}  // namespace
}  // namespace aplace::solver
