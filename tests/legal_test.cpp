// Legalization: pair-order derivation rules, transitive reduction, the ILP
// detailed placer (flipping, symmetry, alignment, ordering — paper Fig. 3/4
// semantics) and the prior-work two-stage LP legalizer.

#include <gtest/gtest.h>

#include "legal/ilp_detailed.hpp"
#include "legal/relative_order.hpp"
#include "legal/two_stage_lp.hpp"
#include "netlist/evaluator.hpp"
#include "numeric/rng.hpp"
#include "sa/annealer.hpp"
#include "test_util.hpp"

namespace aplace::legal {
namespace {

std::vector<double> positions(std::initializer_list<double> xs,
                              std::initializer_list<double> ys) {
  std::vector<double> v(xs);
  v.insert(v.end(), ys);
  return v;
}

TEST(RelativeOrderTest, OverlapRuleSmallerDimensionWins) {
  const netlist::Circuit c = test::two_device_circuit();  // A 2x2, B 4x2
  // Overlap width dx = 1 < dy = 2 -> horizontal separation.
  const auto orders = derive_pair_orders(c, positions({1, 3.5}, {1, 1}));
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_TRUE(orders[0].horizontal);
  EXPECT_EQ(orders[0].left_or_bottom, c.find_device("A"));
}

TEST(RelativeOrderTest, DisjointKeepsSeparatingDimension) {
  const netlist::Circuit c = test::two_device_circuit();
  // Disjoint in y only -> vertical order (no proximity cutoff here).
  const auto orders =
      derive_pair_orders(c, positions({1, 1.5}, {1, 6}), 1e9);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_FALSE(orders[0].horizontal);
  EXPECT_EQ(orders[0].left_or_bottom, c.find_device("A"));
}

TEST(RelativeOrderTest, ProximityMarginSkipsFarPairs) {
  const netlist::Circuit c = test::two_device_circuit();
  const auto near = derive_pair_orders(c, positions({1, 30}, {1, 1}), 100.0);
  EXPECT_EQ(near.size(), 1u);
  const auto far = derive_pair_orders(c, positions({1, 30}, {1, 1}), 1.0);
  EXPECT_TRUE(far.empty());
}

TEST(RelativeOrderTest, SymmetryPairForcedPerpendicularToAxis) {
  const netlist::Circuit c = test::constrained_circuit();
  // Stack A above B: geometry says vertical, but the vertical-axis pair
  // must separate horizontally or the mirror constraint is infeasible.
  std::vector<double> v(10, 0.0);
  const std::size_t n = 5;
  const DeviceId a = c.find_device("A"), b = c.find_device("B");
  v[a.index()] = 5; v[n + a.index()] = 2;
  v[b.index()] = 5; v[n + b.index()] = 6;
  v[c.find_device("S").index()] = 10;
  v[c.find_device("R1").index()] = 15;
  v[c.find_device("R2").index()] = 20;
  for (const PairOrder& po : derive_pair_orders(c, v)) {
    const auto ids = std::make_pair(po.left_or_bottom, po.right_or_top);
    if ((ids.first == a && ids.second == b) ||
        (ids.first == b && ids.second == a)) {
      EXPECT_TRUE(po.horizontal);
    }
  }
}

TEST(RelativeOrderTest, OrderingConstraintFixesOrder) {
  const netlist::Circuit c = test::constrained_circuit();
  // R1 must precede S horizontally even if currently placed to its right.
  std::vector<double> v(10, 0.0);
  const std::size_t n = 5;
  const DeviceId r1 = c.find_device("R1"), s = c.find_device("S");
  v[r1.index()] = 20; v[n + r1.index()] = 0;
  v[s.index()] = 2; v[n + s.index()] = 0;
  v[c.find_device("A").index()] = 40;
  v[c.find_device("B").index()] = 44;
  v[c.find_device("R2").index()] = 60;
  bool found = false;
  for (const PairOrder& po : derive_pair_orders(c, v)) {
    if (po.left_or_bottom == r1 && po.right_or_top == s) {
      EXPECT_TRUE(po.horizontal);
      found = true;
    }
    EXPECT_FALSE(po.left_or_bottom == s && po.right_or_top == r1);
  }
  EXPECT_TRUE(found);
}

TEST(RelativeOrderTest, ForcedDirectionLookup) {
  const netlist::Circuit c = test::constrained_circuit();
  EXPECT_TRUE(
      forced_direction(c, c.find_device("A"), c.find_device("B")).has_value());
  EXPECT_TRUE(*forced_direction(c, c.find_device("A"), c.find_device("B")));
  EXPECT_TRUE(
      forced_direction(c, c.find_device("R1"), c.find_device("R2")).has_value())
      << "bottom alignment forces horizontal separation";
  EXPECT_FALSE(
      forced_direction(c, c.find_device("A"), c.find_device("R1")).has_value());
}

TEST(RelativeOrderTest, TransitiveReductionDropsImpliedEdges) {
  // Three blocks in a row: (0,1), (1,2) kept; (0,2) dropped.
  const netlist::Circuit c = [] {
    netlist::Circuit cc("t3");
    std::vector<PinId> pins;
    for (int i = 0; i < 3; ++i) {
      const DeviceId d = cc.add_device("D" + std::to_string(i),
                                       netlist::DeviceType::Nmos, 2, 2);
      pins.push_back(cc.add_center_pin(d, "p"));
    }
    cc.add_net("n", pins);
    cc.finalize();
    return cc;
  }();
  const auto orders =
      derive_pair_orders(c, positions({1, 4, 7}, {1, 1, 1}), 1e9);
  EXPECT_EQ(orders.size(), 3u);
  const auto reduced = reduce_transitive(orders, 3);
  EXPECT_EQ(reduced.size(), 2u);
  for (const PairOrder& po : reduced) {
    EXPECT_FALSE(po.left_or_bottom.index() == 0 &&
                 po.right_or_top.index() == 2);
  }
}

// --- ILP detailed placer ------------------------------------------------------

TEST(IlpDetailedTest, TwoDevicesCompactAndLegal) {
  const netlist::Circuit c = test::two_device_circuit();
  const IlpDetailedPlacer dp(c);
  const IlpResult r = dp.place(positions({2, 6}, {2, 2}));
  ASSERT_TRUE(r.ok());
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6));
  // Two blocks 2x2 and 4x2 side by side: area 12, or stacked: area 16.
  EXPECT_LE(q.area, 16.0 + 1e-9);
}

TEST(IlpDetailedTest, FlippingReducesWirelength) {
  // Paper Fig. 3: two devices whose pins face away from each other; flipping
  // device B moves its pin toward A's.
  netlist::Circuit c("fig3");
  const DeviceId a = c.add_device("A", netlist::DeviceType::Nmos, 4, 2);
  const DeviceId b = c.add_device("B", netlist::DeviceType::Nmos, 4, 2);
  const PinId pa = c.add_pin(a, "p", {4, 1});  // right edge of A
  const PinId pb = c.add_pin(b, "p", {0, 1});  // left edge of B
  c.add_net("n", {pa, pb});
  c.finalize();

  // The integrated objective prefers stacking these wide devices; in the
  // stack the pins sit on opposite edges (HPWL 4 in x) unless one device is
  // flipped, which aligns them.
  const std::vector<double> start = positions({2, 8}, {1, 1});
  IlpOptions with, without;
  without.enable_flipping = false;
  const IlpResult rf = IlpDetailedPlacer(c, with).place(start);
  const IlpResult rn = IlpDetailedPlacer(c, without).place(start);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rn.ok());
  const double hf = rf.placement.total_hpwl();
  const double hn = rn.placement.total_hpwl();
  EXPECT_LT(hf, hn) << "flipping should strictly reduce HPWL here";
}

TEST(IlpDetailedTest, HardSymmetryExactInResult) {
  const netlist::Circuit c = test::constrained_circuit();
  const IlpDetailedPlacer dp(c);
  // Roughly symmetric start.
  const IlpResult r =
      dp.place(positions({3, 7, 5, 1, 9}, {2, 2, 5, 8, 8}));
  ASSERT_TRUE(r.ok());
  const netlist::Evaluator ev(c);
  const netlist::QualityReport q = ev.evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6)) << "sym=" << q.symmetry_violation
                             << " align=" << q.alignment_violation
                             << " order=" << q.ordering_violation
                             << " overlap=" << q.overlap_area;
  EXPECT_NEAR(q.symmetry_violation, 0.0, 1e-6);
  EXPECT_NEAR(q.alignment_violation, 0.0, 1e-6);
  EXPECT_NEAR(q.ordering_violation, 0.0, 1e-6);
}

TEST(IlpDetailedTest, SnapsToGrid) {
  const netlist::Circuit c = test::two_device_circuit();
  IlpOptions opts;
  opts.grid_pitch = 0.5;
  const IlpResult r = IlpDetailedPlacer(c, opts).place(
      positions({2.13, 6.77}, {2.41, 2.02}));
  ASSERT_TRUE(r.ok());
  if (r.snapped) {
    for (std::size_t i = 0; i < c.num_devices(); ++i) {
      const geom::Point p = r.placement.position(DeviceId{i});
      EXPECT_NEAR(std::round(p.x / 0.5) * 0.5, p.x, 1e-9);
      EXPECT_NEAR(std::round(p.y / 0.5) * 0.5, p.y, 1e-9);
    }
  }
}

TEST(IlpDetailedTest, FullCircuitLegalFromSpreadStart) {
  circuits::TestCase tc = circuits::make_testcase("CM-OTA1");
  const netlist::Circuit& c = tc.circuit;
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 3.0 * static_cast<double>(i % 5);
    v[n + i] = 3.0 * static_cast<double>(i / 5);
  }
  const IlpResult r = IlpDetailedPlacer(c).place(v);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(netlist::Evaluator(c).evaluate(r.placement).legal(1e-6));
}

// --- two-stage LP ---------------------------------------------------------------

TEST(TwoStageTest, LegalAndCompact) {
  const netlist::Circuit c = test::two_device_circuit();
  const TwoStageLpLegalizer lg(c);
  const TwoStageResult r = lg.place(positions({2, 5}, {2, 2.5}));
  ASSERT_TRUE(r.ok());
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6));
  EXPECT_LE(q.area, 16.0 + 1e-9);
}

TEST(TwoStageTest, ConstraintsSatisfiedOnFullCircuit) {
  circuits::TestCase tc = circuits::make_testcase("CC-OTA");
  const netlist::Circuit& c = tc.circuit;
  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 2.5 * static_cast<double>(i % 6);
    v[n + i] = 2.5 * static_cast<double>(i / 6);
  }
  const TwoStageResult r = TwoStageLpLegalizer(c).place(v);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(netlist::Evaluator(c).evaluate(r.placement).legal(1e-6));
}

TEST(TwoStageTest, StageOneSetsExtentCap) {
  const netlist::Circuit c = test::two_device_circuit();
  const TwoStageLpLegalizer lg(c);
  const TwoStageResult r = lg.place(positions({2, 6}, {2, 2}));
  ASSERT_TRUE(r.ok());
  const geom::Rect bb = r.placement.bounding_box();
  EXPECT_LE(bb.width(), r.stage1_width * 0.5 + 1e-6)
      << "extents are in grid units (pitch 0.5)";
  EXPECT_LE(bb.height(), r.stage1_height * 0.5 + 1e-6);
}

}  // namespace
}  // namespace aplace::legal

namespace aplace::legal {
namespace {

// Property sweep: both detailed placers produce fully legal placements on
// every paper testcase, starting from an arbitrary legal SA placement that
// was perturbed into overlap (stresses direction derivation, symmetry/
// alignment/ordering handling, and lazy feasibility repairs).
class LegalizerPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LegalizerPropertyTest, IlpLegalOnEveryCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  sa::SaOptions sopts;
  sopts.max_moves = 3000;
  const netlist::Placement seed = sa::SaPlacer(c, sopts).place().placement;

  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  numeric::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point p = seed.position(DeviceId{i});
    v[i] = p.x + rng.normal(0, 1.0);       // perturb into overlap
    v[n + i] = p.y + rng.normal(0, 1.0);
  }

  const IlpResult r = IlpDetailedPlacer(c).place(v);
  ASSERT_TRUE(r.ok()) << GetParam();
  const netlist::QualityReport q = netlist::Evaluator(c).evaluate(r.placement);
  EXPECT_TRUE(q.legal(1e-6))
      << GetParam() << ": overlap=" << q.overlap_area
      << " sym=" << q.symmetry_violation << " align=" << q.alignment_violation
      << " order=" << q.ordering_violation;
}

TEST_P(LegalizerPropertyTest, TwoStageLegalOnEveryCircuit) {
  circuits::TestCase tc = circuits::make_testcase(GetParam());
  const netlist::Circuit& c = tc.circuit;
  sa::SaOptions sopts;
  sopts.max_moves = 3000;
  sopts.seed = 17;
  const netlist::Placement seed = sa::SaPlacer(c, sopts).place().placement;

  const std::size_t n = c.num_devices();
  std::vector<double> v(2 * n);
  numeric::Rng rng(23);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point p = seed.position(DeviceId{i});
    v[i] = p.x + rng.normal(0, 1.0);
    v[n + i] = p.y + rng.normal(0, 1.0);
  }

  const TwoStageResult r = TwoStageLpLegalizer(c).place(v);
  ASSERT_TRUE(r.ok()) << GetParam();
  EXPECT_TRUE(netlist::Evaluator(c).evaluate(r.placement).legal(1e-6))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, LegalizerPropertyTest,
                         ::testing::ValuesIn(circuits::testcase_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace aplace::legal
