#pragma once
// Smoothed (differentiable) wirelength models for analytical global
// placement.
//
//  * WaWirelength  — Weighted-Average smoothing (paper Eq. 2), used by
//    ePlace/ePlace-A. Lower estimation error than LSE (Hsu et al., DAC'11).
//  * LseWirelength — Log-Sum-Exponential smoothing, used by NTUplace3 and
//    the prior analytical analog work [11].
//
// Both evaluate a smoothed total weighted HPWL over all nets and accumulate
// its gradient with respect to the device-center variable vector
// v = (x_1..x_n, y_1..y_n). Pin offsets (relative to device centers, in the
// unflipped orientation) are constants during global placement, so
// d pin / d center = 1.
//
// The kernels gather/scatter over the CompiledCircuit wirelength table
// (non-degenerate nets, center-relative pin offsets) — no adjacency is
// built here.
//
// Each net's per-pin inner loops exist twice: a scalar reference and a
// 4-lane simd::Vec4d kernel (per-net max/min shift kept, exp values cached
// between the value and gradient passes, masked tail for the remainder
// pins). set_use_simd() switches per instance at runtime — the default
// follows simd::default_enabled() — and the two paths agree to <= 1e-12
// relative on every registry circuit (tests/simd_test.cpp). Within one
// build+path, results stay bit-identical at any thread count.

#include <memory>
#include <span>

#include "netlist/compiled.hpp"
#include "numeric/vec.hpp"

namespace aplace::wirelength {

class SmoothWirelength {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  explicit SmoothWirelength(const netlist::CompiledCircuit& compiled);
  /// Share ownership of a compiled snapshot (flow/batch cache path).
  explicit SmoothWirelength(
      std::shared_ptr<const netlist::CompiledCircuit> compiled);
  /// Convenience: compile privately from a raw circuit.
  explicit SmoothWirelength(const netlist::Circuit& circuit);
  virtual ~SmoothWirelength() = default;

  /// Smoothing parameter gamma (um). Smaller = closer to exact HPWL but
  /// stiffer gradients; global placers anneal it downward.
  void set_gamma(double gamma) {
    APLACE_CHECK(gamma > 0);
    gamma_ = gamma;
  }
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Select the vectorized (true) or scalar-reference (false) inner loops.
  /// Defaults to simd::default_enabled(). Either path is deterministic;
  /// they agree to <= 1e-12 relative.
  void set_use_simd(bool on) { use_simd_ = on; }
  [[nodiscard]] bool use_simd() const { return use_simd_; }

  /// Evaluate at v (size 2n) and *add* the gradient into grad (size 2n).
  /// Returns the smoothed weighted wirelength.
  virtual double value_and_grad(std::span<const double> v,
                                std::span<double> grad) const = 0;

  /// Exact weighted HPWL at v (pins at constant offsets, no flipping).
  [[nodiscard]] double exact_hpwl(std::span<const double> v) const;

 protected:
  enum class Kind { kWa, kLse };

  [[nodiscard]] const netlist::CompiledCircuit& compiled() const {
    return *compiled_;
  }
  [[nodiscard]] std::size_t num_devices() const {
    return compiled_->num_devices();
  }

  /// Run the smoothing kernel of `kind` over every net of the compiled
  /// wirelength table, accumulating the weighted total and the gradient
  /// into `grad`. Nets are cut into fixed chunks of kNetGrain (independent
  /// of thread count); chunks beyond the first run on the global pool with
  /// private gradient partials that are reduced in chunk order, so the
  /// result is bit-identical for any pool size. One-chunk circuits take the
  /// direct serial path with no partials.
  double accumulate(std::span<const double> v, std::span<double> grad,
                    Kind kind) const;

  double gamma_ = 1.0;

 private:
  static constexpr std::size_t kNetGrain = 128;

  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  std::size_t max_net_pins_ = 0;
  bool use_simd_;

  // Per-chunk scratch for the parallel path (empty until first used; each
  // instance is driven by one placement flow at a time, so `mutable` here
  // is safe).
  mutable std::vector<std::vector<double>> grad_part_;
  mutable std::vector<double> total_part_;
};

class WaWirelength final : public SmoothWirelength {
 public:
  using SmoothWirelength::SmoothWirelength;
  double value_and_grad(std::span<const double> v,
                        std::span<double> grad) const override;
};

class LseWirelength final : public SmoothWirelength {
 public:
  using SmoothWirelength::SmoothWirelength;
  double value_and_grad(std::span<const double> v,
                        std::span<double> grad) const override;
};

}  // namespace aplace::wirelength
