#pragma once
// Smoothed layout-area term Area(v) = WA_x(v) * WA_y(v) (paper Sec. IV-A).
//
// WA_x smooths the horizontal extent max_{i,j} |x_i - x_j| over all device
// *edges* (each device contributes its left and right edge so footprints are
// respected), WA_y the vertical extent; the product approximates the layout
// bounding-box area. Analog placement optimizes this explicitly — dropping
// it costs >20% area and HPWL (paper Fig. 2).

#include <memory>
#include <span>

#include "netlist/compiled.hpp"

namespace aplace::wirelength {

class WaAreaTerm {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  explicit WaAreaTerm(const netlist::CompiledCircuit& compiled);
  /// Share ownership of a compiled snapshot.
  explicit WaAreaTerm(std::shared_ptr<const netlist::CompiledCircuit> compiled);
  /// Convenience: compile privately from a raw circuit.
  explicit WaAreaTerm(const netlist::Circuit& circuit);

  void set_gamma(double gamma) {
    APLACE_CHECK(gamma > 0);
    gamma_ = gamma;
  }
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Smoothed area at v; adds scale * d(Area)/dv into grad.
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) const;

  /// Exact bounding-box area over device rectangles at v.
  [[nodiscard]] double exact_area(std::span<const double> v) const;

 private:
  std::size_t n_;
  // Device half-extents, viewing the compiled snapshot's flat arrays.
  std::span<const double> half_w_, half_h_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  // Per-axis edge-derivative scratch, hoisted so the optimizer hot loop
  // stays allocation-free (assign() below reuses the capacity).
  mutable std::vector<double> dx_, dy_;
  double gamma_ = 1.0;
};

}  // namespace aplace::wirelength
