#include "wirelength/area_term.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::wirelength {
namespace {

// WA smooth extent over edge coordinates; every device owns two edges whose
// derivative w.r.t. the device center is 1. Returns extent; writes d/dcenter.
double wa_edge_extent(std::span<const double> centers,
                      std::span<const double> half, double gamma,
                      std::vector<double>& dcenter) {
  const std::size_t n = centers.size();
  dcenter.assign(n, 0.0);

  double cmax = -1e300, cmin = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    cmax = std::max(cmax, centers[i] + half[i]);
    cmin = std::min(cmin, centers[i] - half[i]);
  }

  double num_p = 0, den_p = 0, num_m = 0, den_m = 0;
  auto acc = [&](double c) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp(-(c - cmin) / gamma);
    num_p += c * ep;
    den_p += ep;
    num_m += c * em;
    den_m += em;
  };
  for (std::size_t i = 0; i < n; ++i) {
    acc(centers[i] - half[i]);
    acc(centers[i] + half[i]);
  }
  const double f_max = num_p / den_p;
  const double f_min = num_m / den_m;

  for (std::size_t i = 0; i < n; ++i) {
    for (const double c : {centers[i] - half[i], centers[i] + half[i]}) {
      const double ap = std::exp((c - cmax) / gamma) / den_p;
      const double am = std::exp(-(c - cmin) / gamma) / den_m;
      dcenter[i] += ap * (1.0 + (c - f_max) / gamma) -
                    am * (1.0 - (c - f_min) / gamma);
    }
  }
  return f_max - f_min;
}

}  // namespace

WaAreaTerm::WaAreaTerm(const netlist::CompiledCircuit& compiled)
    : n_(compiled.num_devices()),
      half_w_(compiled.dev_half_width()),
      half_h_(compiled.dev_half_height()) {}

WaAreaTerm::WaAreaTerm(std::shared_ptr<const netlist::CompiledCircuit> compiled)
    : WaAreaTerm(*compiled) {
  keep_ = std::move(compiled);
}

WaAreaTerm::WaAreaTerm(const netlist::Circuit& circuit)
    : WaAreaTerm(std::make_shared<const netlist::CompiledCircuit>(circuit)) {}

double WaAreaTerm::value_and_grad(std::span<const double> v,
                                  std::span<double> grad, double scale) const {
  APLACE_DCHECK(v.size() == 2 * n_ && grad.size() == v.size());
  const double wx = wa_edge_extent(v.subspan(0, n_), half_w_, gamma_, dx_);
  const double wy = wa_edge_extent(v.subspan(n_, n_), half_h_, gamma_, dy_);
  for (std::size_t i = 0; i < n_; ++i) {
    grad[i] += scale * dx_[i] * wy;
    grad[n_ + i] += scale * wx * dy_[i];
  }
  return wx * wy;
}

double WaAreaTerm::exact_area(std::span<const double> v) const {
  double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
  for (std::size_t i = 0; i < n_; ++i) {
    xlo = std::min(xlo, v[i] - half_w_[i]);
    xhi = std::max(xhi, v[i] + half_w_[i]);
    ylo = std::min(ylo, v[n_ + i] - half_h_[i]);
    yhi = std::max(yhi, v[n_ + i] + half_h_[i]);
  }
  return (xhi - xlo) * (yhi - ylo);
}

}  // namespace aplace::wirelength
