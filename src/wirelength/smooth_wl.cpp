#include "wirelength/smooth_wl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/thread_pool.hpp"

namespace aplace::wirelength {
namespace {

// Pin coordinates for one dimension of one net, given the variable vector.
void gather(std::span<const double> v, std::size_t dim_offset,
            const std::vector<std::pair<std::size_t, double>>& pins,
            std::vector<double>& out) {
  out.clear();
  out.reserve(pins.size());
  for (auto [dev, off] : pins) out.push_back(v[dim_offset + dev] + off);
}

}  // namespace

SmoothWirelength::SmoothWirelength(const netlist::Circuit& circuit)
    : n_(circuit.num_devices()) {
  APLACE_CHECK(circuit.finalized());
  nets_.reserve(circuit.num_nets());
  for (const netlist::Net& net : circuit.nets()) {
    // Degenerate nets: an empty pin list would make the minmax/max_element
    // dereferences below undefined behavior, and a single-pin net has zero
    // extent and zero gradient — skip both up front.
    if (net.pins.size() < 2) continue;
    NetPins np;
    np.weight = net.weight;
    for (PinId pid : net.pins) {
      const netlist::Pin& pin = circuit.pin(pid);
      const netlist::Device& dev = circuit.device(pin.device);
      np.x.emplace_back(pin.device.index(), pin.offset.x - dev.width / 2);
      np.y.emplace_back(pin.device.index(), pin.offset.y - dev.height / 2);
    }
    nets_.push_back(std::move(np));
  }
}

double SmoothWirelength::exact_hpwl(std::span<const double> v) const {
  double total = 0;
  std::vector<double> coords;
  for (const NetPins& np : nets_) {
    gather(v, 0, np.x, coords);
    auto [xmin, xmax] = std::minmax_element(coords.begin(), coords.end());
    const double wx = *xmax - *xmin;
    gather(v, n_, np.y, coords);
    auto [ymin, ymax] = std::minmax_element(coords.begin(), coords.end());
    total += np.weight * (wx + (*ymax - *ymin));
  }
  return total;
}

namespace {

// Weighted-average smooth max minus smooth min over `coords`, with gradient
// d(WA)/d(coord_k) written to `dcoord`. Numerically stabilized by shifting
// exponents by the max/min coordinate.
double wa_extent(const std::vector<double>& coords, double gamma,
                 std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double num_p = 0, den_p = 0, num_m = 0, den_m = 0;
  for (double c : coords) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp(-(c - cmin) / gamma);
    num_p += c * ep;
    den_p += ep;
    num_m += c * em;
    den_m += em;
  }
  const double f_max = num_p / den_p;
  const double f_min = num_m / den_m;

  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    const double ap = std::exp((c - cmax) / gamma) / den_p;
    const double am = std::exp(-(c - cmin) / gamma) / den_m;
    const double dmax = ap * (1.0 + (c - f_max) / gamma);
    const double dmin = am * (1.0 - (c - f_min) / gamma);
    dcoord[i] = dmax - dmin;
  }
  return f_max - f_min;
}

// LSE smooth extent: gamma*ln(sum e^{c/g}) + gamma*ln(sum e^{-c/g}).
double lse_extent(const std::vector<double>& coords, double gamma,
                  std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double sp = 0, sm = 0;
  for (double c : coords) {
    sp += std::exp((c - cmax) / gamma);
    sm += std::exp(-(c - cmin) / gamma);
  }
  const double f_max = cmax + gamma * std::log(sp);
  const double f_min = cmin - gamma * std::log(sm);
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    dcoord[i] = std::exp((c - cmax) / gamma) / sp -
                std::exp(-(c - cmin) / gamma) / sm;
  }
  return f_max - f_min;
}

}  // namespace

template <class ExtentFn>
double SmoothWirelength::accumulate(std::span<const double> v,
                                    std::span<double> grad,
                                    ExtentFn&& extent) const {
  const std::size_t n = n_;
  // One chunk of nets, accumulated into `g` (either the caller's gradient
  // directly, or a per-chunk partial on the parallel path).
  auto run_range = [&](std::size_t lo, std::size_t hi, std::span<double> g) {
    double total = 0;
    std::vector<double> coords, dcoord;
    for (std::size_t ni = lo; ni < hi; ++ni) {
      const NetPins& np = nets_[ni];
      gather(v, 0, np.x, coords);
      total += np.weight * extent(coords, gamma_, dcoord);
      for (std::size_t i = 0; i < np.x.size(); ++i) {
        g[np.x[i].first] += np.weight * dcoord[i];
      }
      gather(v, n, np.y, coords);
      total += np.weight * extent(coords, gamma_, dcoord);
      for (std::size_t i = 0; i < np.y.size(); ++i) {
        g[n + np.y[i].first] += np.weight * dcoord[i];
      }
    }
    return total;
  };

  const std::size_t chunks =
      base::ThreadPool::chunk_count(nets_.size(), kNetGrain);
  if (chunks <= 1) return run_range(0, nets_.size(), grad);

  if (grad_part_.size() != chunks) {
    grad_part_.assign(chunks, std::vector<double>());
    total_part_.assign(chunks, 0.0);
  }
  base::ThreadPool& pool = base::ThreadPool::global();
  pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      grad_part_[c].assign(2 * n, 0.0);
      total_part_[c] = run_range(
          c * kNetGrain, std::min(nets_.size(), (c + 1) * kNetGrain),
          grad_part_[c]);
    }
  });
  // Reduce gradients device-wise, chunks in fixed order per entry.
  pool.parallel_for(0, 2 * n, 4096, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double g = 0;
      for (std::size_t c = 0; c < chunks; ++c) g += grad_part_[c][i];
      grad[i] += g;
    }
  });
  double total = 0;
  for (std::size_t c = 0; c < chunks; ++c) total += total_part_[c];
  return total;
}

double WaWirelength::value_and_grad(std::span<const double> v,
                                    std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, wa_extent);
}

double LseWirelength::value_and_grad(std::span<const double> v,
                                     std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, lse_extent);
}

}  // namespace aplace::wirelength
