#include "wirelength/smooth_wl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/aligned.hpp"
#include "base/simd.hpp"
#include "base/thread_pool.hpp"

namespace aplace::wirelength {
namespace {

using base::padded4;
using simd::Vec4d;

// Pin coordinates for one dimension of one net, given the variable vector.
void gather(std::span<const double> v, std::size_t dim_offset,
            std::span<const std::uint32_t> devs, std::span<const double> offs,
            std::vector<double>& out) {
  out.clear();
  out.reserve(devs.size());
  for (std::size_t i = 0; i < devs.size(); ++i) {
    out.push_back(v[dim_offset + devs[i]] + offs[i]);
  }
}

// Same gather into an aligned scratch row, with the pad lanes [k, padded4(k))
// filled with out[0] so full-width max/min loops see neutral values.
void gather_padded(std::span<const double> v, std::size_t dim_offset,
                   std::span<const std::uint32_t> devs,
                   std::span<const double> offs, double* out) {
  const std::size_t k = devs.size();
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = v[dim_offset + devs[i]] + offs[i];
  }
  for (std::size_t i = k; i < padded4(k); ++i) out[i] = out[0];
}

// Per-chunk aligned scratch: one padded row per array, sized once to the
// longest net of the snapshot. ep/em cache the exp values between the value
// and gradient passes of the SIMD kernels.
struct NetScratch {
  base::AlignedVec coords, dcoord, coords_y, dcoord_y, ep, em;
  explicit NetScratch(std::size_t max_pins) { ensure(max_pins); }

  void ensure(std::size_t max_pins) {
    const std::size_t k4 = padded4(std::max<std::size_t>(max_pins, 1));
    if (coords.size() >= k4) return;
    coords.resize(k4);
    dcoord.resize(k4);
    coords_y.resize(4);  // fused x/y block path only runs for k <= 4
    dcoord_y.resize(4);
    ep.resize(k4);
    em.resize(k4);
  }

  /// Per-thread reusable instance: the per-chunk worker bodies run on pool
  /// threads, so a thread_local avoids six heap allocations per chunk. The
  /// contents carry no state between nets (every row is fully rewritten
  /// before it is read), so reuse cannot affect determinism.
  static NetScratch& local(std::size_t max_pins) {
    static thread_local NetScratch s(4);
    s.ensure(max_pins);
    return s;
  }
};

// ---- scalar reference kernels ----------------------------------------------
// Loop order and arithmetic are the pre-SIMD originals, element by element,
// so the scalar path reproduces historical results bit-for-bit.

// Weighted-average smooth max minus smooth min over coords[0..k), with
// gradient d(WA)/d(coord_i) written to dcoord. Numerically stabilized by
// shifting exponents by the max/min coordinate: den_p/den_m always contain
// an exp(0) = 1 term, so no finite coordinate spread can overflow — extreme
// spreads only underflow far-away pins to weight 0 (see the 1e6-spread
// regression in tests/simd_test.cpp).
double wa_extent_scalar(const double* coords, std::size_t k, double gamma,
                        double* dcoord) {
  const double cmax = *std::max_element(coords, coords + k);
  const double cmin = *std::min_element(coords, coords + k);

  double num_p = 0, den_p = 0, num_m = 0, den_m = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp(-(c - cmin) / gamma);
    num_p += c * ep;
    den_p += ep;
    num_m += c * em;
    den_m += em;
  }
  const double f_max = num_p / den_p;
  const double f_min = num_m / den_m;

  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    const double ap = std::exp((c - cmax) / gamma) / den_p;
    const double am = std::exp(-(c - cmin) / gamma) / den_m;
    const double dmax = ap * (1.0 + (c - f_max) / gamma);
    const double dmin = am * (1.0 - (c - f_min) / gamma);
    dcoord[i] = dmax - dmin;
  }
  return f_max - f_min;
}

// LSE smooth extent: gamma*ln(sum e^{c/g}) + gamma*ln(sum e^{-c/g}).
double lse_extent_scalar(const double* coords, std::size_t k, double gamma,
                         double* dcoord) {
  const double cmax = *std::max_element(coords, coords + k);
  const double cmin = *std::min_element(coords, coords + k);

  double sp = 0, sm = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    sp += std::exp((c - cmax) / gamma);
    sm += std::exp(-(c - cmin) / gamma);
  }
  const double f_max = cmax + gamma * std::log(sp);
  const double f_min = cmin - gamma * std::log(sm);
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    dcoord[i] = std::exp((c - cmax) / gamma) / sp -
                std::exp(-(c - cmin) / gamma) / sm;
  }
  return f_max - f_min;
}

// ---- 4-lane kernels --------------------------------------------------------
// coords is the padded row written by gather_padded (pad lanes = coords[0],
// so they are neutral for max/min). The exp values are computed once,
// masked to zero on the tail block, and cached in ep/em for the gradient
// pass — the scalar reference recomputes them, so the SIMD path saves a
// full exp sweep on top of the 4-wide evaluation.

// Shared first pass: cmax/cmin over the padded row, then
// ep[i] = exp4((c-cmax)/g), em[i] = exp4((cmin-c)/g) with zeroed tail lanes.
struct ExpSums {
  double cmax, cmin;
  Vec4d sum_cep, sum_ep, sum_cem, sum_em;  // c*ep, ep, c*em, em partials
};

// The SIMD kernels scale by reciprocals (one scalar divide per net, then
// multiplies) instead of dividing lane-wise — divpd is the slowest FP op on
// every backend and the extra rounding stays far inside the 1e-12 contract.
ExpSums exp_pass(const double* coords, std::size_t k, double inv_gamma,
                 double* ep, double* em) {
  const std::size_t k4 = padded4(k);
  Vec4d vmax = Vec4d::load(coords);
  Vec4d vmin = vmax;
  for (std::size_t i = 4; i < k4; i += 4) {
    const Vec4d v = Vec4d::load(coords + i);
    vmax = Vec4d::max(vmax, v);
    vmin = Vec4d::min(vmin, v);
  }
  ExpSums s;
  s.cmax = simd::hmax(vmax);
  s.cmin = simd::hmin(vmin);
  const Vec4d cmaxv = Vec4d::broadcast(s.cmax);
  const Vec4d cminv = Vec4d::broadcast(s.cmin);
  const Vec4d igv = Vec4d::broadcast(inv_gamma);
  s.sum_cep = s.sum_ep = s.sum_cem = s.sum_em = Vec4d::zero();
  // em_i = K / ep_i with K = exp((cmin-cmax)/g): one exp4 per block instead
  // of two, valid away from the exp4 clamp (see wa_extent_block2).
  const bool em_by_ratio = (s.cmax - s.cmin) * inv_gamma < 600.0;
  const Vec4d kv =
      em_by_ratio ? simd::exp4((cminv - cmaxv) * igv) : Vec4d::zero();
  for (std::size_t i = 0; i < k4; i += 4) {
    const Vec4d v = Vec4d::load(coords + i);
    Vec4d vep = simd::exp4((v - cmaxv) * igv);
    Vec4d vem = em_by_ratio ? kv / vep : simd::exp4((cminv - v) * igv);
    if (i + 4 > k) {  // masked tail: pad lanes contribute exact zero
      vep = vep.keep_first(k - i);
      vem = vem.keep_first(k - i);
    }
    vep.store(ep + i);
    vem.store(em + i);
    s.sum_cep = Vec4d::fma(v, vep, s.sum_cep);
    s.sum_ep = s.sum_ep + vep;
    s.sum_cem = Vec4d::fma(v, vem, s.sum_cem);
    s.sum_em = s.sum_em + vem;
  }
  return s;
}

// Fused both-dimension specialization for nets of <= 4 pins — the common
// case in analog netlists (most paper-circuit nets have 2-4 pins). The x
// and y extents are fully independent, so interleaving them doubles the
// instruction-level parallelism of this otherwise latency-bound block: the
// four exp4 dependency chains (x/y times ep/em) execute concurrently, and
// everything stays in registers (no ep/em spill, no loop, no ExpSums
// round-trip). Returns extent_x + extent_y.
double wa_extent_block2(const double* cx, const double* cy, std::size_t k,
                        double inv_gamma, double* dcx, double* dcy) {
  const Vec4d vx = Vec4d::load(cx);  // pad lanes = c[0] (neutral)
  const Vec4d vy = Vec4d::load(cy);
  const double xmax = simd::hmax(vx), xmin = simd::hmin(vx);
  const double ymax = simd::hmax(vy), ymin = simd::hmin(vy);
  const Vec4d igv = Vec4d::broadcast(inv_gamma);
  const Vec4d xep_raw = simd::exp4((vx - Vec4d::broadcast(xmax)) * igv);
  const Vec4d yep_raw = simd::exp4((vy - Vec4d::broadcast(ymax)) * igv);
  Vec4d xem, yem;
  if (std::max(xmax - xmin, ymax - ymin) * inv_gamma < 600.0) {
    // em_i = exp((cmin-c_i)/g) = K / ep_i with K = exp((cmin-cmax)/g), and K
    // is exactly the smallest lane of ep (exp is monotone) — two packed
    // divides replace two exp4 evaluations. Only valid away from the exp4
    // clamp (spread < 600*gamma): past it ep saturates and the ratio would
    // assign weight 1 to mid-span pins that should underflow to 0.
    xem = (Vec4d::broadcast(simd::hmin(xep_raw)) / xep_raw).keep_first(k);
    yem = (Vec4d::broadcast(simd::hmin(yep_raw)) / yep_raw).keep_first(k);
  } else {
    xem = simd::exp4((Vec4d::broadcast(xmin) - vx) * igv).keep_first(k);
    yem = simd::exp4((Vec4d::broadcast(ymin) - vy) * igv).keep_first(k);
  }
  const Vec4d xep = xep_raw.keep_first(k);
  const Vec4d yep = yep_raw.keep_first(k);
  // All four denominators reduce through one shuffle tree, and a single
  // packed divide produces every reciprocal this kernel needs — divides
  // are the slowest FP op, so they are the first thing to coalesce.
  const Vec4d dens = simd::hsum4(xep, xem, yep, yem);
  const Vec4d inv_dens = Vec4d::broadcast(1.0) / dens;
  const Vec4d f =
      simd::hsum4(vx * xep, vx * xem, vy * yep, vy * yem) * inv_dens;
  const double fx_max = f.lane(0), fx_min = f.lane(1);
  const double fy_max = f.lane(2), fy_min = f.lane(3);

  const Vec4d one = Vec4d::broadcast(1.0);
  const Vec4d xap = xep * Vec4d::broadcast(inv_dens.lane(0));
  const Vec4d xam = xem * Vec4d::broadcast(inv_dens.lane(1));
  const Vec4d yap = yep * Vec4d::broadcast(inv_dens.lane(2));
  const Vec4d yam = yem * Vec4d::broadcast(inv_dens.lane(3));
  const Vec4d dx_max = xap * (one + (vx - Vec4d::broadcast(fx_max)) * igv);
  const Vec4d dx_min = xam * (one - (vx - Vec4d::broadcast(fx_min)) * igv);
  const Vec4d dy_max = yap * (one + (vy - Vec4d::broadcast(fy_max)) * igv);
  const Vec4d dy_min = yam * (one - (vy - Vec4d::broadcast(fy_min)) * igv);
  (dx_max - dx_min).store(dcx);
  (dy_max - dy_min).store(dcy);
  return (fx_max - fx_min) + (fy_max - fy_min);
}

double lse_extent_block2(const double* cx, const double* cy, std::size_t k,
                         double gamma, double inv_gamma, double* dcx,
                         double* dcy) {
  const Vec4d vx = Vec4d::load(cx);
  const Vec4d vy = Vec4d::load(cy);
  const double xmax = simd::hmax(vx), xmin = simd::hmin(vx);
  const double ymax = simd::hmax(vy), ymin = simd::hmin(vy);
  const Vec4d igv = Vec4d::broadcast(inv_gamma);
  const Vec4d xep =
      simd::exp4((vx - Vec4d::broadcast(xmax)) * igv).keep_first(k);
  const Vec4d xem =
      simd::exp4((Vec4d::broadcast(xmin) - vx) * igv).keep_first(k);
  const Vec4d yep =
      simd::exp4((vy - Vec4d::broadcast(ymax)) * igv).keep_first(k);
  const Vec4d yem =
      simd::exp4((Vec4d::broadcast(ymin) - vy) * igv).keep_first(k);
  const Vec4d sums = simd::hsum4(xep, xem, yep, yem);
  const Vec4d inv_sums = Vec4d::broadcast(1.0) / sums;
  (xep * Vec4d::broadcast(inv_sums.lane(0)) -
   xem * Vec4d::broadcast(inv_sums.lane(1)))
      .store(dcx);
  (yep * Vec4d::broadcast(inv_sums.lane(2)) -
   yem * Vec4d::broadcast(inv_sums.lane(3)))
      .store(dcy);
  return ((xmax + gamma * std::log(sums.lane(0))) -
          (xmin - gamma * std::log(sums.lane(1)))) +
         ((ymax + gamma * std::log(sums.lane(2))) -
          (ymin - gamma * std::log(sums.lane(3))));
}

double wa_extent_simd(const double* coords, std::size_t k, double gamma,
                      NetScratch& scratch) {
  double* ep = scratch.ep.data();
  double* em = scratch.em.data();
  const double inv_gamma = 1.0 / gamma;
  const ExpSums s = exp_pass(coords, k, inv_gamma, ep, em);
  const double den_p = simd::hsum_ordered(s.sum_ep);
  const double den_m = simd::hsum_ordered(s.sum_em);
  const double f_max = simd::hsum_ordered(s.sum_cep) / den_p;
  const double f_min = simd::hsum_ordered(s.sum_cem) / den_m;

  const Vec4d iden_pv = Vec4d::broadcast(1.0 / den_p);
  const Vec4d iden_mv = Vec4d::broadcast(1.0 / den_m);
  const Vec4d fmaxv = Vec4d::broadcast(f_max);
  const Vec4d fminv = Vec4d::broadcast(f_min);
  const Vec4d igv = Vec4d::broadcast(inv_gamma);
  const Vec4d one = Vec4d::broadcast(1.0);
  double* dcoord = scratch.dcoord.data();
  const std::size_t k4 = padded4(k);
  for (std::size_t i = 0; i < k4; i += 4) {
    const Vec4d v = Vec4d::load(coords + i);
    const Vec4d ap = Vec4d::load(ep + i) * iden_pv;
    const Vec4d am = Vec4d::load(em + i) * iden_mv;
    const Vec4d dmax = ap * (one + (v - fmaxv) * igv);
    const Vec4d dmin = am * (one - (v - fminv) * igv);
    (dmax - dmin).store(dcoord + i);
  }
  return f_max - f_min;
}

double lse_extent_simd(const double* coords, std::size_t k, double gamma,
                       NetScratch& scratch) {
  double* ep = scratch.ep.data();
  double* em = scratch.em.data();
  const ExpSums s = exp_pass(coords, k, 1.0 / gamma, ep, em);
  const double sp = simd::hsum_ordered(s.sum_ep);
  const double sm = simd::hsum_ordered(s.sum_em);
  const double f_max = s.cmax + gamma * std::log(sp);
  const double f_min = s.cmin - gamma * std::log(sm);

  const Vec4d ispv = Vec4d::broadcast(1.0 / sp);
  const Vec4d ismv = Vec4d::broadcast(1.0 / sm);
  double* dcoord = scratch.dcoord.data();
  const std::size_t k4 = padded4(k);
  for (std::size_t i = 0; i < k4; i += 4) {
    const Vec4d d = Vec4d::load(ep + i) * ispv - Vec4d::load(em + i) * ismv;
    d.store(dcoord + i);
  }
  return f_max - f_min;
}

}  // namespace

SmoothWirelength::SmoothWirelength(const netlist::CompiledCircuit& compiled)
    : compiled_(&compiled), use_simd_(simd::default_enabled()) {
  for (std::size_t ni = 0; ni < compiled.num_wl_nets(); ++ni) {
    max_net_pins_ = std::max(max_net_pins_, compiled.wl_pin_device(ni).size());
  }
}

SmoothWirelength::SmoothWirelength(
    std::shared_ptr<const netlist::CompiledCircuit> compiled)
    : SmoothWirelength(*compiled) {
  keep_ = std::move(compiled);
}

SmoothWirelength::SmoothWirelength(const netlist::Circuit& circuit)
    : SmoothWirelength(
          std::make_shared<const netlist::CompiledCircuit>(circuit)) {}

double SmoothWirelength::exact_hpwl(std::span<const double> v) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::size_t n = num_devices();
  double total = 0;
  std::vector<double> coords;
  for (std::size_t ni = 0; ni < cc.num_wl_nets(); ++ni) {
    gather(v, 0, cc.wl_pin_device(ni), cc.wl_pin_dx(ni), coords);
    auto [xmin, xmax] = std::minmax_element(coords.begin(), coords.end());
    const double wx = *xmax - *xmin;
    gather(v, n, cc.wl_pin_device(ni), cc.wl_pin_dy(ni), coords);
    auto [ymin, ymax] = std::minmax_element(coords.begin(), coords.end());
    total += cc.wl_weight()[ni] * (wx + (*ymax - *ymin));
  }
  return total;
}

double SmoothWirelength::accumulate(std::span<const double> v,
                                    std::span<double> grad, Kind kind) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::size_t n = num_devices();
  const std::size_t num_nets = cc.num_wl_nets();
  const bool use_simd = use_simd_;
  const Kind k = kind;
  // One chunk of nets, accumulated into `g` (either the caller's gradient
  // directly, or a per-chunk partial on the parallel path).
  const double inv_gamma = 1.0 / gamma_;
  auto run_range = [&](std::size_t lo, std::size_t hi, std::span<double> g) {
    double total = 0;
    NetScratch& scratch = NetScratch::local(max_net_pins_);
    double* coords = scratch.coords.data();
    double* dcoord = scratch.dcoord.data();
    auto extent = [&](std::size_t pins) {
      if (use_simd) {
        return k == Kind::kWa ? wa_extent_simd(coords, pins, gamma_, scratch)
                              : lse_extent_simd(coords, pins, gamma_, scratch);
      }
      return k == Kind::kWa ? wa_extent_scalar(coords, pins, gamma_, dcoord)
                            : lse_extent_scalar(coords, pins, gamma_, dcoord);
    };
    double* coords_y = scratch.coords_y.data();
    double* dcoord_y = scratch.dcoord_y.data();
    for (std::size_t ni = lo; ni < hi; ++ni) {
      const std::span<const std::uint32_t> devs = cc.wl_pin_device(ni);
      const std::size_t pins = devs.size();
      const double weight = cc.wl_weight()[ni];
      if (use_simd && pins <= 4) {
        // Fused x/y block: both dimensions of a short net in one call so the
        // four exp4 dependency chains overlap (see wa_extent_block2).
        gather_padded(v, 0, devs, cc.wl_pin_dx(ni), coords);
        gather_padded(v, n, devs, cc.wl_pin_dy(ni), coords_y);
        total +=
            weight * (k == Kind::kWa
                          ? wa_extent_block2(coords, coords_y, pins, inv_gamma,
                                             dcoord, dcoord_y)
                          : lse_extent_block2(coords, coords_y, pins, gamma_,
                                              inv_gamma, dcoord, dcoord_y));
        for (std::size_t i = 0; i < pins; ++i) {
          g[devs[i]] += weight * dcoord[i];
          g[n + devs[i]] += weight * dcoord_y[i];
        }
        continue;
      }
      gather_padded(v, 0, devs, cc.wl_pin_dx(ni), coords);
      total += weight * extent(pins);
      for (std::size_t i = 0; i < pins; ++i) {
        g[devs[i]] += weight * dcoord[i];
      }
      gather_padded(v, n, devs, cc.wl_pin_dy(ni), coords);
      total += weight * extent(pins);
      for (std::size_t i = 0; i < pins; ++i) {
        g[n + devs[i]] += weight * dcoord[i];
      }
    }
    return total;
  };

  const std::size_t chunks = base::ThreadPool::chunk_count(num_nets, kNetGrain);
  if (chunks <= 1) return run_range(0, num_nets, grad);

  if (grad_part_.size() != chunks) {
    grad_part_.assign(chunks, std::vector<double>());
    total_part_.assign(chunks, 0.0);
  }
  base::ThreadPool& pool = base::ThreadPool::global();
  pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      grad_part_[c].assign(2 * n, 0.0);
      total_part_[c] =
          run_range(c * kNetGrain, std::min(num_nets, (c + 1) * kNetGrain),
                    grad_part_[c]);
    }
  });
  // Reduce gradients device-wise, chunks in fixed order per entry.
  pool.parallel_for(0, 2 * n, 4096, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double g = 0;
      for (std::size_t c = 0; c < chunks; ++c) g += grad_part_[c][i];
      grad[i] += g;
    }
  });
  double total = 0;
  for (std::size_t c = 0; c < chunks; ++c) total += total_part_[c];
  return total;
}

double WaWirelength::value_and_grad(std::span<const double> v,
                                    std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, Kind::kWa);
}

double LseWirelength::value_and_grad(std::span<const double> v,
                                     std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, Kind::kLse);
}

}  // namespace aplace::wirelength
