#include "wirelength/smooth_wl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aplace::wirelength {
namespace {

// Pin coordinates for one dimension of one net, given the variable vector.
void gather(std::span<const double> v, std::size_t dim_offset,
            const std::vector<std::pair<std::size_t, double>>& pins,
            std::vector<double>& out) {
  out.clear();
  out.reserve(pins.size());
  for (auto [dev, off] : pins) out.push_back(v[dim_offset + dev] + off);
}

}  // namespace

SmoothWirelength::SmoothWirelength(const netlist::Circuit& circuit)
    : n_(circuit.num_devices()) {
  APLACE_CHECK(circuit.finalized());
  nets_.reserve(circuit.num_nets());
  for (const netlist::Net& net : circuit.nets()) {
    // Degenerate nets: an empty pin list would make the minmax/max_element
    // dereferences below undefined behavior, and a single-pin net has zero
    // extent and zero gradient — skip both up front.
    if (net.pins.size() < 2) continue;
    NetPins np;
    np.weight = net.weight;
    for (PinId pid : net.pins) {
      const netlist::Pin& pin = circuit.pin(pid);
      const netlist::Device& dev = circuit.device(pin.device);
      np.x.emplace_back(pin.device.index(), pin.offset.x - dev.width / 2);
      np.y.emplace_back(pin.device.index(), pin.offset.y - dev.height / 2);
    }
    nets_.push_back(std::move(np));
  }
}

double SmoothWirelength::exact_hpwl(std::span<const double> v) const {
  double total = 0;
  std::vector<double> coords;
  for (const NetPins& np : nets_) {
    gather(v, 0, np.x, coords);
    auto [xmin, xmax] = std::minmax_element(coords.begin(), coords.end());
    const double wx = *xmax - *xmin;
    gather(v, n_, np.y, coords);
    auto [ymin, ymax] = std::minmax_element(coords.begin(), coords.end());
    total += np.weight * (wx + (*ymax - *ymin));
  }
  return total;
}

namespace {

// Weighted-average smooth max minus smooth min over `coords`, with gradient
// d(WA)/d(coord_k) written to `dcoord`. Numerically stabilized by shifting
// exponents by the max/min coordinate.
double wa_extent(const std::vector<double>& coords, double gamma,
                 std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double num_p = 0, den_p = 0, num_m = 0, den_m = 0;
  for (double c : coords) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp(-(c - cmin) / gamma);
    num_p += c * ep;
    den_p += ep;
    num_m += c * em;
    den_m += em;
  }
  const double f_max = num_p / den_p;
  const double f_min = num_m / den_m;

  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    const double ap = std::exp((c - cmax) / gamma) / den_p;
    const double am = std::exp(-(c - cmin) / gamma) / den_m;
    const double dmax = ap * (1.0 + (c - f_max) / gamma);
    const double dmin = am * (1.0 - (c - f_min) / gamma);
    dcoord[i] = dmax - dmin;
  }
  return f_max - f_min;
}

// LSE smooth extent: gamma*ln(sum e^{c/g}) + gamma*ln(sum e^{-c/g}).
double lse_extent(const std::vector<double>& coords, double gamma,
                  std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double sp = 0, sm = 0;
  for (double c : coords) {
    sp += std::exp((c - cmax) / gamma);
    sm += std::exp(-(c - cmin) / gamma);
  }
  const double f_max = cmax + gamma * std::log(sp);
  const double f_min = cmin - gamma * std::log(sm);
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    dcoord[i] = std::exp((c - cmax) / gamma) / sp -
                std::exp(-(c - cmin) / gamma) / sm;
  }
  return f_max - f_min;
}

template <class ExtentFn>
double accumulate_wl(std::span<const double> v, std::span<double> grad,
                     std::size_t n, double gamma, ExtentFn&& extent,
                     const auto& nets) {
  double total = 0;
  std::vector<double> coords, dcoord;
  for (const auto& np : nets) {
    gather(v, 0, np.x, coords);
    total += np.weight * extent(coords, gamma, dcoord);
    for (std::size_t i = 0; i < np.x.size(); ++i) {
      grad[np.x[i].first] += np.weight * dcoord[i];
    }
    gather(v, n, np.y, coords);
    total += np.weight * extent(coords, gamma, dcoord);
    for (std::size_t i = 0; i < np.y.size(); ++i) {
      grad[n + np.y[i].first] += np.weight * dcoord[i];
    }
  }
  return total;
}

}  // namespace

double WaWirelength::value_and_grad(std::span<const double> v,
                                    std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate_wl(v, grad, num_devices(), gamma_, wa_extent, nets());
}

double LseWirelength::value_and_grad(std::span<const double> v,
                                     std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate_wl(v, grad, num_devices(), gamma_, lse_extent, nets());
}

}  // namespace aplace::wirelength
