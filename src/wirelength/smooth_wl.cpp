#include "wirelength/smooth_wl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/thread_pool.hpp"

namespace aplace::wirelength {
namespace {

// Pin coordinates for one dimension of one net, given the variable vector.
void gather(std::span<const double> v, std::size_t dim_offset,
            std::span<const std::uint32_t> devs, std::span<const double> offs,
            std::vector<double>& out) {
  out.clear();
  out.reserve(devs.size());
  for (std::size_t i = 0; i < devs.size(); ++i) {
    out.push_back(v[dim_offset + devs[i]] + offs[i]);
  }
}

}  // namespace

SmoothWirelength::SmoothWirelength(const netlist::CompiledCircuit& compiled)
    : compiled_(&compiled) {}

SmoothWirelength::SmoothWirelength(
    std::shared_ptr<const netlist::CompiledCircuit> compiled)
    : SmoothWirelength(*compiled) {
  keep_ = std::move(compiled);
}

SmoothWirelength::SmoothWirelength(const netlist::Circuit& circuit)
    : SmoothWirelength(
          std::make_shared<const netlist::CompiledCircuit>(circuit)) {}

double SmoothWirelength::exact_hpwl(std::span<const double> v) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::size_t n = num_devices();
  double total = 0;
  std::vector<double> coords;
  for (std::size_t ni = 0; ni < cc.num_wl_nets(); ++ni) {
    gather(v, 0, cc.wl_pin_device(ni), cc.wl_pin_dx(ni), coords);
    auto [xmin, xmax] = std::minmax_element(coords.begin(), coords.end());
    const double wx = *xmax - *xmin;
    gather(v, n, cc.wl_pin_device(ni), cc.wl_pin_dy(ni), coords);
    auto [ymin, ymax] = std::minmax_element(coords.begin(), coords.end());
    total += cc.wl_weight()[ni] * (wx + (*ymax - *ymin));
  }
  return total;
}

namespace {

// Weighted-average smooth max minus smooth min over `coords`, with gradient
// d(WA)/d(coord_k) written to `dcoord`. Numerically stabilized by shifting
// exponents by the max/min coordinate.
double wa_extent(const std::vector<double>& coords, double gamma,
                 std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double num_p = 0, den_p = 0, num_m = 0, den_m = 0;
  for (double c : coords) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp(-(c - cmin) / gamma);
    num_p += c * ep;
    den_p += ep;
    num_m += c * em;
    den_m += em;
  }
  const double f_max = num_p / den_p;
  const double f_min = num_m / den_m;

  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    const double ap = std::exp((c - cmax) / gamma) / den_p;
    const double am = std::exp(-(c - cmin) / gamma) / den_m;
    const double dmax = ap * (1.0 + (c - f_max) / gamma);
    const double dmin = am * (1.0 - (c - f_min) / gamma);
    dcoord[i] = dmax - dmin;
  }
  return f_max - f_min;
}

// LSE smooth extent: gamma*ln(sum e^{c/g}) + gamma*ln(sum e^{-c/g}).
double lse_extent(const std::vector<double>& coords, double gamma,
                  std::vector<double>& dcoord) {
  const std::size_t k = coords.size();
  dcoord.assign(k, 0.0);
  const double cmax = *std::max_element(coords.begin(), coords.end());
  const double cmin = *std::min_element(coords.begin(), coords.end());

  double sp = 0, sm = 0;
  for (double c : coords) {
    sp += std::exp((c - cmax) / gamma);
    sm += std::exp(-(c - cmin) / gamma);
  }
  const double f_max = cmax + gamma * std::log(sp);
  const double f_min = cmin - gamma * std::log(sm);
  for (std::size_t i = 0; i < k; ++i) {
    const double c = coords[i];
    dcoord[i] = std::exp((c - cmax) / gamma) / sp -
                std::exp(-(c - cmin) / gamma) / sm;
  }
  return f_max - f_min;
}

}  // namespace

template <class ExtentFn>
double SmoothWirelength::accumulate(std::span<const double> v,
                                    std::span<double> grad,
                                    ExtentFn&& extent) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::size_t n = num_devices();
  const std::size_t num_nets = cc.num_wl_nets();
  // One chunk of nets, accumulated into `g` (either the caller's gradient
  // directly, or a per-chunk partial on the parallel path).
  auto run_range = [&](std::size_t lo, std::size_t hi, std::span<double> g) {
    double total = 0;
    std::vector<double> coords, dcoord;
    for (std::size_t ni = lo; ni < hi; ++ni) {
      const std::span<const std::uint32_t> devs = cc.wl_pin_device(ni);
      const double weight = cc.wl_weight()[ni];
      gather(v, 0, devs, cc.wl_pin_dx(ni), coords);
      total += weight * extent(coords, gamma_, dcoord);
      for (std::size_t i = 0; i < devs.size(); ++i) {
        g[devs[i]] += weight * dcoord[i];
      }
      gather(v, n, devs, cc.wl_pin_dy(ni), coords);
      total += weight * extent(coords, gamma_, dcoord);
      for (std::size_t i = 0; i < devs.size(); ++i) {
        g[n + devs[i]] += weight * dcoord[i];
      }
    }
    return total;
  };

  const std::size_t chunks = base::ThreadPool::chunk_count(num_nets, kNetGrain);
  if (chunks <= 1) return run_range(0, num_nets, grad);

  if (grad_part_.size() != chunks) {
    grad_part_.assign(chunks, std::vector<double>());
    total_part_.assign(chunks, 0.0);
  }
  base::ThreadPool& pool = base::ThreadPool::global();
  pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      grad_part_[c].assign(2 * n, 0.0);
      total_part_[c] =
          run_range(c * kNetGrain, std::min(num_nets, (c + 1) * kNetGrain),
                    grad_part_[c]);
    }
  });
  // Reduce gradients device-wise, chunks in fixed order per entry.
  pool.parallel_for(0, 2 * n, 4096, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double g = 0;
      for (std::size_t c = 0; c < chunks; ++c) g += grad_part_[c][i];
      grad[i] += g;
    }
  });
  double total = 0;
  for (std::size_t c = 0; c < chunks; ++c) total += total_part_[c];
  return total;
}

double WaWirelength::value_and_grad(std::span<const double> v,
                                    std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, wa_extent);
}

double LseWirelength::value_and_grad(std::span<const double> v,
                                     std::span<double> grad) const {
  APLACE_DCHECK(v.size() == 2 * num_devices() && grad.size() == v.size());
  return accumulate(v, grad, lse_extent);
}

}  // namespace aplace::wirelength
