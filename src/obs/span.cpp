#include "obs/span.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <mutex>

namespace aplace::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_tid{1};

thread_local SpanContext t_context;

std::uint32_t local_tid() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_u64(std::string& out, std::uint64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

double now_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

SpanContext current_context() {
  if constexpr (!kCompiledIn) return SpanContext{};
  return t_context;
}

ContextGuard::ContextGuard(const SpanContext& ctx) {
  if constexpr (!kCompiledIn) return;
  saved_ = t_context;
  t_context = ctx;
  active_ = true;
}

ContextGuard::~ContextGuard() {
  if (active_) t_context = saved_;
}

Span::Span(const char* name, Root root) {
  if constexpr (!kCompiledIn) {
    (void)name;
    (void)root;
    return;
  }
  if (!enabled()) return;
  name_ = name;
  saved_ = t_context;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (root == Root::New || saved_.current == 0) {
    parent_ = (root == Root::New) ? 0 : saved_.current;
    root_ = id_;
    depth_ = 0;
  } else {
    parent_ = saved_.current;
    root_ = saved_.root;
    depth_ = saved_.depth + 1;
  }
  t_context = SpanContext{id_, root_, depth_};
  active_ = true;
  start_ = now_seconds();
}

Span::~Span() {
  if (!active_) return;
  const double end = now_seconds();
  t_context = saved_;
  SpanEvent ev;
  ev.name = name_;
  ev.id = id_;
  ev.parent = parent_;
  ev.root = root_;
  ev.depth = depth_;
  ev.tid = local_tid();
  ev.start_seconds = start_;
  ev.dur_seconds = end - start_;
  SpanCollector::global().record(std::move(ev));
}

struct SpanCollector::State {
  mutable std::mutex mu;
  std::vector<SpanEvent> events;
};

SpanCollector::State* SpanCollector::state() {
  // Leaked on purpose (see global()).
  static State* s = new State();
  return s;
}

SpanCollector& SpanCollector::global() {
  static SpanCollector* c = new SpanCollector();
  return *c;
}

void SpanCollector::record(SpanEvent ev) {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  s->events.push_back(std::move(ev));
}

std::vector<SpanEvent> SpanCollector::take_events_for_root(
    std::uint64_t root_id) {
  State* s = state();
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    auto keep = s->events.begin();
    for (auto it = s->events.begin(); it != s->events.end(); ++it) {
      if (it->root == root_id) {
        out.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    s->events.erase(keep, s->events.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.start_seconds < b.start_seconds;
  });
  return out;
}

std::vector<SpanEvent> SpanCollector::drain() {
  State* s = state();
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    out.swap(s->events);
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.start_seconds < b.start_seconds;
  });
  return out;
}

void SpanCollector::clear() {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  s->events.clear();
}

std::size_t SpanCollector::size() const {
  State* s = const_cast<SpanCollector*>(this)->state();
  std::lock_guard<std::mutex> lock(s->mu);
  return s->events.size();
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  // Complete "X" (duration) events; timestamps/durations in microseconds,
  // the unit chrome://tracing expects.
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& ev = events[i];
    if (i != 0) out.push_back(',');
    out += "\n  {\"name\": ";
    append_quoted(out, ev.name);
    out += ", \"ph\": \"X\", \"ts\": ";
    append_u64(out, static_cast<std::uint64_t>(ev.start_seconds * 1e6));
    out += ", \"dur\": ";
    append_u64(out, static_cast<std::uint64_t>(ev.dur_seconds * 1e6));
    out += ", \"pid\": 1, \"tid\": ";
    append_u64(out, ev.tid);
    out += ", \"args\": {\"id\": ";
    append_u64(out, ev.id);
    out += ", \"parent\": ";
    append_u64(out, ev.parent);
    out += ", \"depth\": ";
    append_u64(out, ev.depth);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace aplace::obs
