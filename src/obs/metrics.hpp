#pragma once
// Process-wide metrics registry: named counters, gauges, and histograms
// with lock-free per-thread shards, merged deterministically at scrape.
//
// Design (see docs/OBSERVABILITY.md):
//
//  * Registration (counter("sa/moves") etc.) interns the name under a mutex
//    once and returns a trivially copyable handle. Handles are cheap to
//    store as function-local statics next to the hot loop they instrument.
//  * Recording is lock-free: each thread lazily owns one Shard per registry
//    — fixed-capacity arrays of relaxed std::atomics — so a counter add is
//    one thread-local lookup plus one relaxed fetch_add, with zero
//    cross-thread contention. Gauges are registry-level (set semantics:
//    last write wins) rather than sharded.
//  * scrape() merges shards in shard-creation order. Counter values and
//    histogram bucket counts are unsigned integers, so the merged totals
//    are exact and independent of which thread recorded what — the
//    determinism contract tests/obs_test.cpp pins at 1/2/8 threads.
//    Histogram *sums* are doubles: they are exact whenever the recorded
//    values are integers (every partial sum is representable), and within
//    rounding otherwise.
//  * Every record call is behind obs::enabled() (metrics disabled = one
//    relaxed atomic load) and compiles out entirely under APLACE_OBS=OFF.
//
// Capacity is fixed at registration caps (kMaxCounters/...) so shard
// storage never reallocates under a concurrent reader; exceeding a cap is
// a programming error and fails a CHECK.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace aplace::obs {

class MetricsRegistry;

/// Monotone event count (moves proposed, jobs done, FFT transforms, ...).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const;
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, thread count, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;
  /// Keep the maximum of the current and the given value (high-water mark).
  void set_max(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Value distribution with base-2 exponential buckets spanning
/// [1e-9, 1e-9 * 2^47) — nanoseconds to ~1.6 days when the value is in
/// seconds — plus exact count / sum / min / max.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  Histogram() = default;
  void record(double value) const;

  /// Bucket index for a value: 0 for values below the 1e-9 base, else
  /// floor(log2(value / 1e-9)) clamped to the bucket range. Exposed so
  /// tests can pin bucket boundaries.
  [[nodiscard]] static std::size_t bucket_of(double value);
  /// Inclusive upper bound of bucket `i` (1e-9 * 2^(i+1); +inf for the
  /// last bucket).
  [[nodiscard]] static double bucket_upper(std::size_t i);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Point-in-time merged view of every metric, sorted by name. JSON export
/// is a single stable object (keys sorted), so two scrapes of identical
/// state serialize identically.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< 0 when count == 0
    double max = 0;
    /// Sparse non-zero buckets as (bucket index, count) pairs.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  [[nodiscard]] const CounterRow* find_counter(std::string_view name) const;
  [[nodiscard]] const HistogramRow* find_histogram(std::string_view name) const;

  /// Stable, pretty-printed JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, buckets: [[idx, n], ...]}, ...}}.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// The registry. Thread-safe; normally used through global(), but tests
/// may construct private instances.
class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 96;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site records
  /// into. Intentionally leaked: pool worker threads may still be flushing
  /// counters during static destruction.
  [[nodiscard]] static MetricsRegistry& global();

  /// Intern a metric by name (idempotent: same name -> same handle).
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Merge every shard into one snapshot (see the determinism notes above).
  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Zero every recorded value. Registered names (and handles) survive.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;
  struct State;

  void counter_add(std::uint32_t id, std::uint64_t delta);
  void gauge_set(std::uint32_t id, double value, bool max_only);
  void histogram_record(std::uint32_t id, double value);
  [[nodiscard]] Shard& local_shard();

  State* state_ = nullptr;
  std::uint64_t generation_ = 0;  ///< process-unique registry identity
};

/// Convenience: intern on the global registry.
[[nodiscard]] inline Counter counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
[[nodiscard]] inline Gauge gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
[[nodiscard]] inline Histogram histogram(std::string_view name) {
  return MetricsRegistry::global().histogram(name);
}

}  // namespace aplace::obs
