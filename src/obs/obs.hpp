#pragma once
// Process-wide observability kill switches.
//
// The observability layer (MetricsRegistry in metrics.hpp, scoped Spans in
// span.hpp) answers the paper's central runtime question — *where* does
// wall-clock go in each flow — but must never change what the flows
// compute. Two switches guarantee that:
//
//   * Compile time: configure with -DAPLACE_OBS=OFF and every metric /
//     span call site compiles to nothing (the headers degrade to inline
//     no-ops behind APLACE_OBS_DISABLED; no registry, no clocks, no
//     atomics anywhere in the binary).
//   * Run time: obs::set_enabled(false) — or the APLACE_OBS=0 environment
//     variable read on first use — short-circuits every record call behind
//     one relaxed atomic load.
//
// Instrumentation is observation-only by construction (it never feeds back
// into any solver), so results are bit-identical with the layer enabled,
// disabled, or compiled out; tests/obs_test.cpp pins that contract on the
// full circuit registry.

#include <atomic>

namespace aplace::obs {

#ifdef APLACE_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
/// The runtime switch. Initialized on first use from APLACE_OBS (unset or
/// non-"0" = enabled). Read with relaxed ordering on every record path —
/// telemetry needs no synchronization with the flag flip.
std::atomic<bool>& enabled_flag();
}  // namespace detail

/// Is telemetry being recorded right now?
[[nodiscard]] inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// Flip the runtime switch (tests and the bit-identity harness use this).
/// A no-op in APLACE_OBS=OFF builds.
inline void set_enabled(bool on) {
  if constexpr (kCompiledIn) {
    detail::enabled_flag().store(on, std::memory_order_relaxed);
  } else {
    (void)on;
  }
}

}  // namespace aplace::obs
