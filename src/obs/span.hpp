#pragma once
// RAII scoped timers that nest into per-flow trace trees.
//
// A Span measures one stage (GP phase, legalizer attempt, SA chain, batch
// job, ...) on the thread that runs it. Spans nest through a thread-local
// context: a Span opened while another is live on the same thread becomes
// its child; the ThreadPool propagates the submitting thread's context to
// workers (base/thread_pool.cpp installs a ContextGuard around each task),
// so fan-out work parents correctly across threads.
//
// Each span carries a root id identifying the tree it belongs to. A span
// opened with Span::Root::New starts a fresh tree rooted at itself — the
// per-flow entry points use this, so a flow's subtree can be extracted
// from the global collector with take_events_for_root() even when the flow
// runs nested inside a batch job span.
//
// Finished spans land in the process-wide SpanCollector as plain
// SpanEvent records; chrome_trace_json() renders any event list in Chrome
// trace_event format for chrome://tracing / Perfetto (see
// docs/OBSERVABILITY.md).
//
// Like metrics, spans are observation-only: with the layer disabled
// (runtime or APLACE_OBS=OFF) construction is a no-op and nothing is
// recorded.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace aplace::obs {

/// One finished span. Plain data so results structs (FlowResult) and the
/// bench JSON can carry span lists without touching the collector.
struct SpanEvent {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = no parent (tree root)
  std::uint64_t root = 0;    ///< id of the tree's root span
  std::uint32_t depth = 0;   ///< 0 at the root
  std::uint32_t tid = 0;     ///< small per-thread ordinal, 1-based
  double start_seconds = 0;  ///< relative to process start (steady clock)
  double dur_seconds = 0;
};

/// The ambient span position of the current thread. Captured by the
/// ThreadPool at submit and reinstalled on the worker via ContextGuard.
struct SpanContext {
  std::uint64_t current = 0;
  std::uint64_t root = 0;
  std::uint32_t depth = 0;
};

/// The current thread's span context (what a new Span would nest under).
[[nodiscard]] SpanContext current_context();

/// Installs a span context on this thread for its lifetime (RAII); used to
/// carry the submitter's context across a thread-pool hop.
class ContextGuard {
 public:
  explicit ContextGuard(const SpanContext& ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanContext saved_;
  bool active_ = false;
};

/// Scoped timer. `name` must outlive the span (string literals only).
class Span {
 public:
  enum class Root {
    Inherit,  ///< join the enclosing tree (the default)
    New,      ///< start a fresh tree rooted at this span
  };

  explicit Span(const char* name, Root root = Root::Inherit);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's tree root id (its own id under Root::New); 0 when the
  /// span is inactive (observability disabled).
  [[nodiscard]] std::uint64_t root_id() const { return root_; }

 private:
  const char* name_ = nullptr;
  bool active_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t root_ = 0;
  std::uint32_t depth_ = 0;
  double start_ = 0;
  SpanContext saved_{};
};

/// Process-wide sink for finished spans. Mutex-guarded — spans close at
/// stage boundaries, not in hot loops, so contention is negligible.
class SpanCollector {
 public:
  /// Intentionally leaked, same rationale as MetricsRegistry::global().
  [[nodiscard]] static SpanCollector& global();

  void record(SpanEvent ev);

  /// Remove and return every event whose tree root is `root_id`, ordered
  /// by start time. Used to attach a flow's subtree to its FlowResult.
  [[nodiscard]] std::vector<SpanEvent> take_events_for_root(
      std::uint64_t root_id);

  /// Remove and return everything (batch --trace-out, tests).
  [[nodiscard]] std::vector<SpanEvent> drain();

  void clear();
  [[nodiscard]] std::size_t size() const;

 private:
  SpanCollector() = default;
  struct State;
  State* state();
};

/// Seconds since process start on the steady clock (span timestamps).
[[nodiscard]] double now_seconds();

/// Render events as a Chrome trace_event JSON document:
/// {"traceEvents": [{"name":.., "ph":"X", "ts":<µs>, "dur":<µs>,
///  "pid":1, "tid":<tid>, "args":{...}}, ...]}
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<SpanEvent>& events);

}  // namespace aplace::obs
