#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/check.hpp"

namespace aplace::obs {

namespace detail {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("APLACE_OBS");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return flag;
}

namespace {

void append_double(std::string& out, double v) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

/// Relaxed add on an atomic double (no fetch_add for FP pre-C++20 on all
/// our toolchains).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

constexpr double kHistBase = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// Storage

struct HistogramCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{detail::kInf};
  std::atomic<double> max{-detail::kInf};
  std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets{};
};

/// One thread's private slice of every metric. Fixed capacity: never
/// reallocated, so scrape() can read it without locking the writer.
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};

  void zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(detail::kInf, std::memory_order_relaxed);
      h.max.store(-detail::kInf, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

struct MetricsRegistry::State {
  mutable std::mutex mu;  // guards names, maps, and the shard list
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  std::unordered_map<std::string, std::uint32_t> histogram_ids;
  std::vector<std::unique_ptr<Shard>> shards;  // in creation order
  std::array<std::atomic<double>, kMaxGauges> gauges{};
};

namespace {

/// Each registry instance gets a process-unique generation so the
/// thread-local shard cache below can never hand back a shard belonging
/// to a destroyed (or different) registry.
std::atomic<std::uint64_t> g_next_generation{1};

struct CachedShard {
  std::uint64_t generation = 0;
  void* shard = nullptr;  // MetricsRegistry::Shard (private nested type)
};

thread_local std::vector<CachedShard> t_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : state_(new State),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() { delete state_; }

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads may record during static destruction.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->counter_ids.find(std::string(name));
  if (it == state_->counter_ids.end()) {
    APLACE_CHECK_MSG(state_->counter_names.size() < kMaxCounters,
                     "counter cap exceeded registering " << name);
    const auto id = static_cast<std::uint32_t>(state_->counter_names.size());
    state_->counter_names.emplace_back(name);
    it = state_->counter_ids.emplace(std::string(name), id).first;
  }
  return Counter(this, it->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->gauge_ids.find(std::string(name));
  if (it == state_->gauge_ids.end()) {
    APLACE_CHECK_MSG(state_->gauge_names.size() < kMaxGauges,
                     "gauge cap exceeded registering " << name);
    const auto id = static_cast<std::uint32_t>(state_->gauge_names.size());
    state_->gauge_names.emplace_back(name);
    state_->gauges[id].store(0.0, std::memory_order_relaxed);
    it = state_->gauge_ids.emplace(std::string(name), id).first;
  }
  return Gauge(this, it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->histogram_ids.find(std::string(name));
  if (it == state_->histogram_ids.end()) {
    APLACE_CHECK_MSG(state_->histogram_names.size() < kMaxHistograms,
                     "histogram cap exceeded registering " << name);
    const auto id = static_cast<std::uint32_t>(state_->histogram_names.size());
    state_->histogram_names.emplace_back(name);
    it = state_->histogram_ids.emplace(std::string(name), id).first;
  }
  return Histogram(this, it->second);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const auto& entry : t_shard_cache) {
    if (entry.generation == generation_) {
      return *static_cast<Shard*>(entry.shard);
    }
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->shards.push_back(std::move(shard));
  }
  t_shard_cache.push_back(CachedShard{generation_, raw});
  return *raw;
}

void MetricsRegistry::counter_add(std::uint32_t id, std::uint64_t delta) {
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(std::uint32_t id, double value, bool max_only) {
  if (max_only) {
    detail::atomic_max(state_->gauges[id], value);
  } else {
    state_->gauges[id].store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::histogram_record(std::uint32_t id, double value) {
  HistogramCells& h = local_shard().histograms[id];
  h.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(h.sum, value);
  detail::atomic_min(h.min, value);
  detail::atomic_max(h.max, value);
  h.buckets[Histogram::bucket_of(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(state_->mu);

  snap.counters.resize(state_->counter_names.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    snap.counters[i].name = state_->counter_names[i];
  }
  snap.gauges.resize(state_->gauge_names.size());
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    snap.gauges[i].name = state_->gauge_names[i];
    snap.gauges[i].value = state_->gauges[i].load(std::memory_order_relaxed);
  }

  struct HistAccum {
    std::uint64_t count = 0;
    double sum = 0;
    double min = detail::kInf;
    double max = -detail::kInf;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };
  std::vector<HistAccum> hists(state_->histogram_names.size());

  // Merge shards in creation order. Counter values and bucket counts are
  // u64 (exact, order-independent); histogram sums are double and exact
  // for integer-valued samples — see the header contract.
  for (const auto& shard : state_->shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < hists.size(); ++i) {
      const HistogramCells& cells = shard->histograms[i];
      HistAccum& acc = hists[i];
      acc.count += cells.count.load(std::memory_order_relaxed);
      acc.sum += cells.sum.load(std::memory_order_relaxed);
      acc.min = std::min(acc.min, cells.min.load(std::memory_order_relaxed));
      acc.max = std::max(acc.max, cells.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        acc.buckets[b] += cells.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  snap.histograms.resize(hists.size());
  for (std::size_t i = 0; i < hists.size(); ++i) {
    auto& row = snap.histograms[i];
    row.name = state_->histogram_names[i];
    row.count = hists[i].count;
    row.sum = hists[i].sum;
    row.min = hists[i].count > 0 ? hists[i].min : 0.0;
    row.max = hists[i].count > 0 ? hists[i].max : 0.0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (hists[i].buckets[b] != 0) {
        row.buckets.emplace_back(static_cast<std::uint32_t>(b),
                                 hists[i].buckets[b]);
      }
    }
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(state_->mu);
  for (auto& shard : state_->shards) shard->zero();
  for (auto& g : state_->gauges) g.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Handles

void Counter::add(std::uint64_t delta) const {
  if constexpr (!kCompiledIn) return;
  if (reg_ == nullptr || !enabled()) return;
  reg_->counter_add(id_, delta);
}

void Gauge::set(double value) const {
  if constexpr (!kCompiledIn) return;
  if (reg_ == nullptr || !enabled()) return;
  reg_->gauge_set(id_, value, /*max_only=*/false);
}

void Gauge::set_max(double value) const {
  if constexpr (!kCompiledIn) return;
  if (reg_ == nullptr || !enabled()) return;
  reg_->gauge_set(id_, value, /*max_only=*/true);
}

void Histogram::record(double value) const {
  if constexpr (!kCompiledIn) return;
  if (reg_ == nullptr || !enabled()) return;
  reg_->histogram_record(id_, value);
}

std::size_t Histogram::bucket_of(double value) {
  if (!(value > detail::kHistBase)) return 0;
  const int e = static_cast<int>(std::floor(std::log2(value / detail::kHistBase)));
  if (e < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(e), kBuckets - 1);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i >= kBuckets - 1) return detail::kInf;
  return detail::kHistBase * std::ldexp(1.0, static_cast<int>(i) + 1);
}

// ---------------------------------------------------------------------------
// Snapshot

const MetricsSnapshot::CounterRow* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& row : counters) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramRow* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& row : histograms) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json(int indent) const {
  using detail::append_double;
  using detail::append_indent;
  using detail::append_quoted;
  using detail::append_u64;

  std::string out;
  out.push_back('{');
  append_indent(out, indent, 1);
  out += "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_indent(out, indent, 2);
    append_quoted(out, counters[i].name);
    out += ": ";
    append_u64(out, counters[i].value);
  }
  if (!counters.empty()) append_indent(out, indent, 1);
  out += "},";
  append_indent(out, indent, 1);
  out += "\"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_indent(out, indent, 2);
    append_quoted(out, gauges[i].name);
    out += ": ";
    append_double(out, gauges[i].value);
  }
  if (!gauges.empty()) append_indent(out, indent, 1);
  out += "},";
  append_indent(out, indent, 1);
  out += "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i != 0) out.push_back(',');
    append_indent(out, indent, 2);
    append_quoted(out, h.name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"min\": ";
    append_double(out, h.min);
    out += ", \"max\": ";
    append_double(out, h.max);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out.push_back(',');
      out += "[";
      append_u64(out, h.buckets[b].first);
      out.push_back(',');
      append_u64(out, h.buckets[b].second);
      out += "]";
    }
    out += "]}";
  }
  if (!histograms.empty()) append_indent(out, indent, 1);
  out += "}";
  append_indent(out, indent, 0);
  out.push_back('}');
  return out;
}

}  // namespace aplace::obs
