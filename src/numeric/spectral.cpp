#include "numeric/spectral.hpp"

#include <cmath>
#include <numbers>

#include "base/check.hpp"

namespace aplace::numeric::spectral {

Basis::Basis(std::size_t n) : n_(n), cos_(n * n), sin_(n * n) {
  APLACE_CHECK_MSG(n >= 2, "spectral basis needs >= 2 bins");
  const double pi = std::numbers::pi;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double arg =
          pi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
          (2.0 * static_cast<double>(n));
      cos_[k * n + j] = std::cos(arg);
      sin_[k * n + j] = std::sin(arg);
    }
  }
}

std::vector<double> Basis::dct(const std::vector<double>& v) const {
  APLACE_DCHECK(v.size() == n_);
  std::vector<double> a(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    double s = 0;
    for (std::size_t j = 0; j < n_; ++j) s += v[j] * cosine(k, j);
    const double w = (k == 0) ? 0.5 : 1.0;
    a[k] = (2.0 / static_cast<double>(n_)) * w * s;
  }
  return a;
}

std::vector<double> Basis::idct(const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    double s = 0;
    for (std::size_t k = 0; k < n_; ++k) s += a[k] * cosine(k, j);
    v[j] = s;
  }
  return v;
}

std::vector<double> Basis::sine_synthesis(const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    double s = 0;
    for (std::size_t k = 1; k < n_; ++k) s += a[k] * sine(k, j);
    v[j] = s;
  }
  return v;
}

namespace {

enum class Kind { Analysis, CosSynth, SinSynth };

// Apply a 1D transform along every row of `m` (length = bx.size()).
Matrix transform_rows(const Matrix& m, const Basis& bx, Kind kind) {
  APLACE_CHECK(m.cols() == bx.size());
  Matrix out(m.rows(), m.cols());
  std::vector<double> row(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] = m(r, c);
    std::vector<double> t;
    switch (kind) {
      case Kind::Analysis: t = bx.dct(row); break;
      case Kind::CosSynth: t = bx.idct(row); break;
      case Kind::SinSynth: t = bx.sine_synthesis(row); break;
    }
    for (std::size_t c = 0; c < m.cols(); ++c) out(r, c) = t[c];
  }
  return out;
}

Matrix transform_cols(const Matrix& m, const Basis& by, Kind kind) {
  APLACE_CHECK(m.rows() == by.size());
  Matrix out(m.rows(), m.cols());
  std::vector<double> col(m.rows());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) col[r] = m(r, c);
    std::vector<double> t;
    switch (kind) {
      case Kind::Analysis: t = by.dct(col); break;
      case Kind::CosSynth: t = by.idct(col); break;
      case Kind::SinSynth: t = by.sine_synthesis(col); break;
    }
    for (std::size_t r = 0; r < m.rows(); ++r) out(r, c) = t[r];
  }
  return out;
}

}  // namespace

Matrix dct2d(const Matrix& m, const Basis& bx, const Basis& by) {
  return transform_cols(transform_rows(m, bx, Kind::Analysis), by,
                        Kind::Analysis);
}

Matrix idct2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return transform_cols(transform_rows(a, bx, Kind::CosSynth), by,
                        Kind::CosSynth);
}

Matrix isxcy2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return transform_cols(transform_rows(a, bx, Kind::SinSynth), by,
                        Kind::CosSynth);
}

Matrix icxsy2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return transform_cols(transform_rows(a, bx, Kind::CosSynth), by,
                        Kind::SinSynth);
}

}  // namespace aplace::numeric::spectral
