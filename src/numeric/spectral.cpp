#include "numeric/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/check.hpp"
#include "obs/metrics.hpp"

namespace aplace::numeric::spectral {

Basis::Basis(std::size_t n) : n_(n), gather_(n), result_(n) {
  APLACE_CHECK_MSG(n >= 2, "spectral basis needs >= 2 bins");
  if (fft::is_pow2(n)) plan_ = std::make_unique<fft::FftPlan>(n);
}

Basis::~Basis() = default;
Basis::Basis(Basis&&) noexcept = default;
Basis& Basis::operator=(Basis&&) noexcept = default;

void Basis::ensure_tables() const {
  if (!cos_.empty()) return;
  const double pi = std::numbers::pi;
  cos_.resize(n_ * n_);
  sin_.resize(n_ * n_);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double arg =
          pi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
          (2.0 * static_cast<double>(n_));
      cos_[k * n_ + j] = std::cos(arg);
      sin_[k * n_ + j] = std::sin(arg);
    }
  }
}

double Basis::cosine(std::size_t k, std::size_t j) const {
  ensure_tables();
  return cos_[k * n_ + j];
}

double Basis::sine(std::size_t k, std::size_t j) const {
  ensure_tables();
  return sin_[k * n_ + j];
}

void Basis::naive_strided(Kind kind, const double* in, std::size_t in_stride,
                          double* out, std::size_t out_stride) const {
  ensure_tables();
  for (std::size_t t = 0; t < n_; ++t) gather_[t] = in[t * in_stride];
  switch (kind) {
    case Kind::Dct:
      for (std::size_t k = 0; k < n_; ++k) {
        const double* row = &cos_[k * n_];
        double s = 0;
        for (std::size_t j = 0; j < n_; ++j) s += gather_[j] * row[j];
        const double w = (k == 0) ? 0.5 : 1.0;
        result_[k] = (2.0 / static_cast<double>(n_)) * w * s;
      }
      break;
    case Kind::Idct:
      std::fill(result_.begin(), result_.end(), 0.0);
      for (std::size_t k = 0; k < n_; ++k) {
        const double a = gather_[k];
        if (a == 0.0) continue;
        const double* row = &cos_[k * n_];
        for (std::size_t j = 0; j < n_; ++j) result_[j] += a * row[j];
      }
      break;
    case Kind::SineSynth:
      std::fill(result_.begin(), result_.end(), 0.0);
      for (std::size_t k = 1; k < n_; ++k) {
        const double a = gather_[k];
        if (a == 0.0) continue;
        const double* row = &sin_[k * n_];
        for (std::size_t j = 0; j < n_; ++j) result_[j] += a * row[j];
      }
      break;
  }
  for (std::size_t t = 0; t < n_; ++t) out[t * out_stride] = result_[t];
}

void Basis::dct_strided(const double* in, std::size_t in_stride, double* out,
                        std::size_t out_stride) const {
  if (plan_) {
    plan_->dct2(in, in_stride, out, out_stride);
  } else {
    naive_strided(Kind::Dct, in, in_stride, out, out_stride);
  }
}

void Basis::idct_strided(const double* in, std::size_t in_stride, double* out,
                         std::size_t out_stride) const {
  if (plan_) {
    plan_->dct3(in, in_stride, out, out_stride);
  } else {
    naive_strided(Kind::Idct, in, in_stride, out, out_stride);
  }
}

void Basis::sine_synthesis_strided(const double* in, std::size_t in_stride,
                                   double* out, std::size_t out_stride) const {
  if (plan_) {
    plan_->dst3(in, in_stride, out, out_stride);
  } else {
    naive_strided(Kind::SineSynth, in, in_stride, out, out_stride);
  }
}

std::vector<double> Basis::dct(const std::vector<double>& v) const {
  APLACE_DCHECK(v.size() == n_);
  std::vector<double> a(n_);
  dct_strided(v.data(), 1, a.data(), 1);
  return a;
}

std::vector<double> Basis::idct(const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_);
  idct_strided(a.data(), 1, v.data(), 1);
  return v;
}

std::vector<double> Basis::sine_synthesis(const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_);
  sine_synthesis_strided(a.data(), 1, v.data(), 1);
  return v;
}

std::vector<double> Basis::naive_dct(const std::vector<double>& v) const {
  APLACE_DCHECK(v.size() == n_);
  std::vector<double> a(n_);
  naive_strided(Kind::Dct, v.data(), 1, a.data(), 1);
  return a;
}

std::vector<double> Basis::naive_idct(const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_);
  naive_strided(Kind::Idct, a.data(), 1, v.data(), 1);
  return v;
}

std::vector<double> Basis::naive_sine_synthesis(
    const std::vector<double>& a) const {
  APLACE_DCHECK(a.size() == n_);
  std::vector<double> v(n_);
  naive_strided(Kind::SineSynth, a.data(), 1, v.data(), 1);
  return v;
}

namespace {

enum class Kind : std::uint8_t { Dct, Idct, SineSynth };

void apply_1d(const Basis& b, Kind kind, const double* in,
              std::size_t in_stride, double* out, std::size_t out_stride,
              bool naive) {
  if (naive) {
    // Route through the vector oracle API to stay on the dense path.
    std::vector<double> tmp(b.size());
    for (std::size_t t = 0; t < b.size(); ++t) tmp[t] = in[t * in_stride];
    std::vector<double> r;
    switch (kind) {
      case Kind::Dct: r = b.naive_dct(tmp); break;
      case Kind::Idct: r = b.naive_idct(tmp); break;
      case Kind::SineSynth: r = b.naive_sine_synthesis(tmp); break;
    }
    for (std::size_t t = 0; t < b.size(); ++t) out[t * out_stride] = r[t];
    return;
  }
  switch (kind) {
    case Kind::Dct: b.dct_strided(in, in_stride, out, out_stride); break;
    case Kind::Idct: b.idct_strided(in, in_stride, out, out_stride); break;
    case Kind::SineSynth:
      b.sine_synthesis_strided(in, in_stride, out, out_stride);
      break;
  }
}

// Rows with bx (kind_x), then columns with by (kind_y), in place.
void apply_2d(Matrix& m, const Basis& bx, const Basis& by, Kind kind_x,
              Kind kind_y, bool naive = false) {
  APLACE_CHECK(m.cols() == bx.size() && m.rows() == by.size());
  static const obs::Counter transforms = obs::counter("fft/transforms2d");
  transforms.inc();
  double* d = m.data().data();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    apply_1d(bx, kind_x, d + r * cols, 1, d + r * cols, 1, naive);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    apply_1d(by, kind_y, d + c, cols, d + c, cols, naive);
  }
}

Matrix apply_2d_copy(const Matrix& m, const Basis& bx, const Basis& by,
                     Kind kind_x, Kind kind_y, bool naive = false) {
  Matrix out = m;
  apply_2d(out, bx, by, kind_x, kind_y, naive);
  return out;
}

}  // namespace

Matrix dct2d(const Matrix& m, const Basis& bx, const Basis& by) {
  return apply_2d_copy(m, bx, by, Kind::Dct, Kind::Dct);
}

Matrix idct2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::Idct, Kind::Idct);
}

Matrix isxcy2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::SineSynth, Kind::Idct);
}

Matrix icxsy2d(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::Idct, Kind::SineSynth);
}

void dct2d_inplace(Matrix& m, const Basis& bx, const Basis& by) {
  apply_2d(m, bx, by, Kind::Dct, Kind::Dct);
}

void idct2d_inplace(Matrix& m, const Basis& bx, const Basis& by) {
  apply_2d(m, bx, by, Kind::Idct, Kind::Idct);
}

void isxcy2d_inplace(Matrix& m, const Basis& bx, const Basis& by) {
  apply_2d(m, bx, by, Kind::SineSynth, Kind::Idct);
}

void icxsy2d_inplace(Matrix& m, const Basis& bx, const Basis& by) {
  apply_2d(m, bx, by, Kind::Idct, Kind::SineSynth);
}

Matrix dct2d_naive(const Matrix& m, const Basis& bx, const Basis& by) {
  return apply_2d_copy(m, bx, by, Kind::Dct, Kind::Dct, /*naive=*/true);
}

Matrix idct2d_naive(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::Idct, Kind::Idct, /*naive=*/true);
}

Matrix isxcy2d_naive(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::SineSynth, Kind::Idct,
                       /*naive=*/true);
}

Matrix icxsy2d_naive(const Matrix& a, const Basis& bx, const Basis& by) {
  return apply_2d_copy(a, bx, by, Kind::Idct, Kind::SineSynth,
                       /*naive=*/true);
}

}  // namespace aplace::numeric::spectral
