#include "numeric/fft.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "base/check.hpp"
#include "base/simd.hpp"

namespace aplace::numeric::fft {

using simd::Vec4d;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n)
    : n_(n),
      use_simd_(simd::default_enabled()),
      rev_(n),
      qre_(n),
      qim_(n),
      re_(n),
      im_(n) {
  APLACE_CHECK_MSG(is_pow2(n), "FftPlan needs a power-of-two size >= 2");
  const double pi = std::numbers::pi;

  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) r |= ((i >> b) & 1) << (log2n - 1 - b);
    rev_[i] = r;
  }

  // Twiddles for every stage, flattened: the stage with half-size h uses
  // e^{-2 pi i m / (2h)} for m in [0, h), stored at offset h - 1.
  wre_.resize(n - 1);
  wim_.resize(n - 1);
  for (std::size_t half = 1; half < n; half <<= 1) {
    for (std::size_t m = 0; m < half; ++m) {
      const double ang = pi * static_cast<double>(m) / static_cast<double>(half);
      wre_[half - 1 + m] = std::cos(ang);
      wim_[half - 1 + m] = -std::sin(ang);
    }
  }

  for (std::size_t k = 0; k < n; ++k) {
    const double ang = pi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    qre_[k] = std::cos(ang);
    qim_[k] = std::sin(ang);
  }
}

void FftPlan::transform(bool inverse) const {
  double* re = re_.data();
  double* im = im_.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t half = 1; half < n_; half <<= 1) {
    const std::size_t len = half << 1;
    const double* wr = &wre_[half - 1];
    const double* wi = &wim_[half - 1];
    if (use_simd_ && half >= 4) {
      // 4-lane butterflies: for half >= 4 the m-loop touches contiguous
      // runs of re/im/twiddles (half is a power of two, so no tail).
      const Vec4d sign = Vec4d::broadcast(inverse ? -1.0 : 1.0);
      for (std::size_t start = 0; start < n_; start += len) {
        for (std::size_t m = 0; m < half; m += 4) {
          const std::size_t i = start + m;
          const std::size_t j = i + half;
          const Vec4d wrv = Vec4d::loadu(wr + m);
          const Vec4d wiv = Vec4d::loadu(wi + m) * sign;
          const Vec4d rej = Vec4d::loadu(re + j);
          const Vec4d imj = Vec4d::loadu(im + j);
          const Vec4d tr = wrv * rej - wiv * imj;
          const Vec4d ti = wrv * imj + wiv * rej;
          const Vec4d rei = Vec4d::loadu(re + i);
          const Vec4d imi = Vec4d::loadu(im + i);
          (rei - tr).storeu(re + j);
          (imi - ti).storeu(im + j);
          (rei + tr).storeu(re + i);
          (imi + ti).storeu(im + i);
        }
      }
      continue;
    }
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t m = 0; m < half; ++m) {
        const std::size_t i = start + m;
        const std::size_t j = i + half;
        const double wim = inverse ? -wi[m] : wi[m];
        const double tr = wr[m] * re[j] - wim * im[j];
        const double ti = wr[m] * im[j] + wim * re[j];
        re[j] = re[i] - tr;
        im[j] = im[i] - ti;
        re[i] += tr;
        im[i] += ti;
      }
    }
  }
}

void FftPlan::dct2(const double* in, std::size_t in_stride, double* out,
                   std::size_t out_stride) const {
  // Makhoul permutation: y = (v_0, v_2, ..., v_{n-2}, v_{n-1}, ..., v_3, v_1).
  const std::size_t h = n_ / 2;
  for (std::size_t j = 0; j < h; ++j) {
    re_[j] = in[(2 * j) * in_stride];
    re_[n_ - 1 - j] = in[(2 * j + 1) * in_stride];
  }
  std::fill(im_.begin(), im_.end(), 0.0);
  transform(false);
  // c_k = Re(e^{-i pi k/(2n)} Y_k) = sum_j v_j cos(pi k (2j+1)/(2n)), then
  // scale to the reconstruction-ready convention of spectral::Basis::dct.
  const double s = 2.0 / static_cast<double>(n_);
  out[0] = (0.5 * s) * re_[0];
  std::size_t k = 1;
  if (use_simd_ && out_stride == 1) {
    const Vec4d sv = Vec4d::broadcast(s);
    for (; k + 4 <= n_; k += 4) {
      const Vec4d c = Vec4d::fma(Vec4d::loadu(&qre_[k]), Vec4d::loadu(&re_[k]),
                                 Vec4d::loadu(&qim_[k]) * Vec4d::loadu(&im_[k]));
      (sv * c).storeu(out + k);
    }
  }
  for (; k < n_; ++k) {
    out[k * out_stride] = s * (qre_[k] * re_[k] + qim_[k] * im_[k]);
  }
}

void FftPlan::synthesize(double* out, std::size_t out_stride,
                         bool alternate) const {
  transform(true);
  const std::size_t h = n_ / 2;
  const double sign = alternate ? -1.0 : 1.0;
  for (std::size_t j = 0; j < h; ++j) {
    out[(2 * j) * out_stride] = re_[j];
    out[(2 * j + 1) * out_stride] = sign * re_[n_ - 1 - j];
  }
}

void FftPlan::dct3(const double* in, std::size_t in_stride, double* out,
                   std::size_t out_stride) const {
  // Rebuild the conjugate-symmetric spectrum Y_k = e^{i pi k/(2n)}
  // (c_k - i c_{n-k}) with c_0 = a_0, c_k = a_k / 2 (the 1/n of the inverse
  // FFT folded in), then one unnormalized inverse FFT and un-permute.
  re_[0] = in[0];
  im_[0] = 0.0;
  std::size_t k = 1;
  if (use_simd_ && in_stride == 1) {
    const Vec4d half = Vec4d::broadcast(0.5);
    for (; k + 4 <= n_; k += 4) {
      const Vec4d x = half * Vec4d::loadu(in + k);
      // in[n-k], in[n-k-1], ... : a reversed contiguous run.
      const Vec4d y = half * Vec4d::loadu(in + n_ - k - 3).reverse();
      const Vec4d qr = Vec4d::loadu(&qre_[k]);
      const Vec4d qi = Vec4d::loadu(&qim_[k]);
      Vec4d::fma(qr, x, qi * y).storeu(&re_[k]);
      (qi * x - qr * y).storeu(&im_[k]);
    }
  }
  for (; k < n_; ++k) {
    const double x = 0.5 * in[k * in_stride];
    const double y = 0.5 * in[(n_ - k) * in_stride];
    re_[k] = qre_[k] * x + qim_[k] * y;
    im_[k] = qim_[k] * x - qre_[k] * y;
  }
  synthesize(out, out_stride, /*alternate=*/false);
}

void FftPlan::dst3(const double* in, std::size_t in_stride, double* out,
                   std::size_t out_stride) const {
  // sin(pi k (2j+1)/(2n)) = (-1)^j cos(pi (n-k) (2j+1)/(2n)): a dst3 is a
  // dct3 of the index-reversed coefficients (b_0 = 0, b_k = a_{n-k}) with
  // the odd output samples negated.
  re_[0] = 0.0;
  im_[0] = 0.0;
  std::size_t k = 1;
  if (use_simd_ && in_stride == 1) {
    const Vec4d half = Vec4d::broadcast(0.5);
    for (; k + 4 <= n_; k += 4) {
      const Vec4d x = half * Vec4d::loadu(in + n_ - k - 3).reverse();
      const Vec4d y = half * Vec4d::loadu(in + k);
      const Vec4d qr = Vec4d::loadu(&qre_[k]);
      const Vec4d qi = Vec4d::loadu(&qim_[k]);
      Vec4d::fma(qr, x, qi * y).storeu(&re_[k]);
      (qi * x - qr * y).storeu(&im_[k]);
    }
  }
  for (; k < n_; ++k) {
    const double x = 0.5 * in[(n_ - k) * in_stride];
    const double y = 0.5 * in[k * in_stride];
    re_[k] = qre_[k] * x + qim_[k] * y;
    im_[k] = qim_[k] * x - qre_[k] * y;
  }
  synthesize(out, out_stride, /*alternate=*/true);
}

}  // namespace aplace::numeric::fft
