#pragma once
// Nonlinear conjugate gradient (Polak-Ribiere+ with restart and a
// backtracking Armijo line search). This is the solver used by the
// NTUplace3-style prior-work global placer [11]/[10], which predates the
// Nesterov scheme of ePlace.

#include <functional>
#include <span>

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "numeric/vec.hpp"

namespace aplace::numeric {

struct CgOptions {
  int max_iters = 500;
  double initial_step = 0.05;
  double armijo_c = 1e-4;
  double backtrack_factor = 0.5;
  int max_line_search = 20;
  double grad_tol = 1e-7;
  /// Wall-clock budget polled once per iteration; unlimited by default.
  Deadline deadline;
  /// Cooperative cancellation, polled at the same per-iteration site.
  base::CancelToken cancel;
  /// Watchdog: non-finite objective/gradient values are treated as rejected
  /// trial points; when the current state itself is poisoned the solver
  /// rolls back to the last healthy iterate and restarts once, damped.
  bool watchdog = true;
};

struct CgState {
  int iter = 0;
  double value = 0.0;
  double gradient_norm = 0.0;
};

/// Post-mortem of one minimize() call (all false on a clean run).
struct CgInfo {
  bool diverged = false;
  bool deadline_hit = false;
  bool cancelled = false;  ///< stopped by cooperative cancellation
  int restarts = 0;
};

class CgSolver {
 public:
  /// Value-and-gradient oracle: returns f(v) and fills grad.
  using ValueGradFn = std::function<double(std::span<const double> v,
                                           std::span<double> grad)>;
  using Callback =
      std::function<bool(const CgState&, std::span<const double> v)>;

  explicit CgSolver(CgOptions opts = {}) : opts_(opts) {}

  /// Minimize starting from v (updated in place). Returns iterations used.
  /// `info`, when given, reports divergence / deadline / restart outcomes.
  int minimize(Vec& v, const ValueGradFn& fg, const Callback& cb,
               CgInfo* info = nullptr) const;

 private:
  CgOptions opts_;
};

}  // namespace aplace::numeric
