#pragma once
// Nonlinear conjugate gradient (Polak-Ribiere+ with restart and a
// backtracking Armijo line search). This is the solver used by the
// NTUplace3-style prior-work global placer [11]/[10], which predates the
// Nesterov scheme of ePlace.

#include <functional>
#include <span>

#include "numeric/vec.hpp"

namespace aplace::numeric {

struct CgOptions {
  int max_iters = 500;
  double initial_step = 0.05;
  double armijo_c = 1e-4;
  double backtrack_factor = 0.5;
  int max_line_search = 20;
  double grad_tol = 1e-7;
};

struct CgState {
  int iter = 0;
  double value = 0.0;
  double gradient_norm = 0.0;
};

class CgSolver {
 public:
  /// Value-and-gradient oracle: returns f(v) and fills grad.
  using ValueGradFn = std::function<double(std::span<const double> v,
                                           std::span<double> grad)>;
  using Callback =
      std::function<bool(const CgState&, std::span<const double> v)>;

  explicit CgSolver(CgOptions opts = {}) : opts_(opts) {}

  /// Minimize starting from v (updated in place). Returns iterations used.
  int minimize(Vec& v, const ValueGradFn& fg, const Callback& cb) const;

 private:
  CgOptions opts_;
};

}  // namespace aplace::numeric
