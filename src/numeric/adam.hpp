#pragma once
// Adam optimizer (Kingma & Ba) used to train the GNN performance model.

#include <cmath>
#include <vector>

#include "base/check.hpp"

namespace aplace::numeric {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  explicit Adam(std::size_t n, AdamOptions opts = {})
      : opts_(opts), m_(n, 0.0), v_(n, 0.0) {}

  /// Apply one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(std::vector<double>& params, const std::vector<double>& grad) {
    APLACE_CHECK(params.size() == m_.size() && grad.size() == m_.size());
    ++t_;
    const double bc1 = 1.0 - std::pow(opts_.beta1, t_);
    const double bc2 = 1.0 - std::pow(opts_.beta2, t_);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i] = opts_.beta1 * m_[i] + (1.0 - opts_.beta1) * grad[i];
      v_[i] = opts_.beta2 * v_[i] + (1.0 - opts_.beta2) * grad[i] * grad[i];
      const double mh = m_[i] / bc1;
      const double vh = v_[i] / bc2;
      params[i] -= opts_.lr * mh / (std::sqrt(vh) + opts_.eps);
    }
  }

  [[nodiscard]] int steps_taken() const { return t_; }

 private:
  AdamOptions opts_;
  int t_ = 0;
  std::vector<double> m_, v_;
};

}  // namespace aplace::numeric
