#pragma once
// Dense row-major matrix. Sized for this project's needs: bin grids of a few
// thousand entries and GNN weight matrices of a few hundred — no BLAS
// required.

#include <vector>

#include "base/check.hpp"

namespace aplace::numeric {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    APLACE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    APLACE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// this = A * B
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    APLACE_CHECK(a.cols() == b.rows());
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < b.cols(); ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace aplace::numeric
