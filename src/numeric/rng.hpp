#pragma once
// Deterministic RNG wrapper. All stochastic components (SA, GNN init,
// dataset generation) take an explicit Rng so experiments are reproducible.

#include <cstdint>
#include <random>

namespace aplace::numeric {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xA11A0C5EED) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  [[nodiscard]] bool bernoulli(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aplace::numeric
