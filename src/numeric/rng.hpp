#pragma once
// Deterministic RNG wrapper. All stochastic components (SA, GNN init,
// dataset generation) take an explicit Rng so experiments are reproducible.
//
// Stream splitting: parallel multi-start (GP candidates, SA chains, batch
// jobs) must give every task an *independent* stream derived from one
// master seed. Deriving streams additively (seed + k * stride) aliases:
// candidate k of one run collides with candidate k' of a run whose master
// seed differs by a multiple of the stride, and nested derivations (start j
// inside candidate k) land on each other's streams. split_seed() instead
// pushes (master, stream) through SplitMix64, a full-avalanche bijective
// mixer, so distinct (master, stream) pairs map to effectively uncorrelated
// mt19937_64 seeds and stream k is independent of how many streams exist.

#include <cstdint>
#include <random>

namespace aplace::numeric {

/// SplitMix64 finalizer (Vigna / Steele et al.): bijective on uint64 with
/// full avalanche — every input bit affects every output bit.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed for independent stream `stream` of master seed `master`. Safe to
/// nest: split_seed(split_seed(m, a), b) is again an independent stream.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t master,
                                                 std::uint64_t stream) {
  return splitmix64(splitmix64(master) ^ splitmix64(~stream));
}

// The uniform/uniform_int/bernoulli transforms below are hand-rolled
// instead of going through std::uniform_*_distribution for two reasons:
//   * the std distributions are the hottest non-algorithmic cost of the SA
//     move loop — libstdc++'s bounded-int path performs two 64-bit
//     divisions per draw, which is more than the incremental cost engine
//     spends evaluating a typical move;
//   * their output is implementation-defined, so streams (and therefore
//     every seeded experiment) would differ across standard libraries.
//     The transforms here pin the exact draw sequence to the mt19937_64
//     output alone.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xA11A0C5EED) : engine_(seed) {}

  /// Uniform double in [lo, hi): top 53 bits of one engine draw, scaled.
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    const double u =
        static_cast<double>(engine_() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + (hi - lo) * u;
  }
  /// Uniform integer in [lo, hi] inclusive. Lemire's nearly divisionless
  /// bounded draw: one 64x64->128 multiply, rejection only in the biased
  /// sliver (a division is needed at most once per rare rejection).
  [[nodiscard]] int uniform_int(int lo, int hi) {
    const std::uint64_t range =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                   static_cast<std::int64_t>(lo)) +
        1;
    unsigned __int128 m =
        static_cast<unsigned __int128>(engine_()) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) [[unlikely]] {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(engine_()) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<int>(static_cast<std::uint64_t>(m >> 64));
  }
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  [[nodiscard]] bool bernoulli(double p = 0.5) { return uniform() < p; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aplace::numeric
