#pragma once
// Small free-function toolkit over std::vector<double>, the variable vector
// type used by the NLP solvers (v = (x_1..x_n, y_1..y_n)).

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "base/check.hpp"

namespace aplace::numeric {

using Vec = std::vector<double>;

[[nodiscard]] inline double dot(std::span<const double> a,
                                std::span<const double> b) {
  APLACE_DCHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

[[nodiscard]] inline double norm2(std::span<const double> a) {
  return std::sqrt(dot(a, a));
}

[[nodiscard]] inline double norm_inf(std::span<const double> a) {
  double m = 0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  APLACE_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

/// out = a - b
[[nodiscard]] inline Vec sub(std::span<const double> a,
                             std::span<const double> b) {
  APLACE_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

/// True when every entry is neither NaN nor infinite. Used by the solver
/// watchdogs to catch numerical blow-ups before they poison the iterate.
[[nodiscard]] inline bool all_finite(std::span<const double> a) {
  for (double v : a) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace aplace::numeric
