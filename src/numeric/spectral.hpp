#pragma once
// Separable cosine/sine spectral transforms for the electrostatic density
// system (ePlace-style Poisson solve with Neumann boundary conditions).
//
// Conventions (per dimension, N bins):
//   forward DCT (analysis, reconstruction-ready coefficients):
//     a_k = (2/N) * w(k) * sum_j v_j cos(pi k (2j+1) / (2N)),  w(0)=1/2, w(k)=1
//   inverse DCT (synthesis):
//     v_j = sum_k a_k cos(pi k (2j+1) / (2N))       -- exact inverse
//   sine synthesis (for field components):
//     s_j = sum_k a_k sin(pi k (2j+1) / (2N))
//
// Two execution paths share these conventions:
//   * FFT (numeric/fft): O(N log N) per 1D transform, O(N) table memory.
//     Taken automatically when N is a power of two — which the placement
//     flows guarantee (gp options round bin counts up).
//   * Naive dense basis: O(N^2) per transform with O(N^2) precomputed
//     cos/sin tables, built lazily. Reference fallback for arbitrary N and
//     the test oracle for the FFT path.
//
// The 2D transforms apply the 1D transform along rows then columns; the
// *_inplace variants overwrite their argument and perform no heap
// allocation (all scratch lives in the Basis / its plan), which is what the
// per-iteration Poisson solve in density::ElectroDensity uses.

#include <memory>
#include <vector>

#include "numeric/fft.hpp"
#include "numeric/matrix.hpp"

namespace aplace::numeric::spectral {

/// Per-dimension transform engine of size n: an FFT plan when n is a power
/// of two, plus lazily built dense cos/sin tables for the reference path.
/// Transform scratch is mutable — not safe for concurrent use of one Basis.
class Basis {
 public:
  explicit Basis(std::size_t n);
  ~Basis();
  Basis(Basis&&) noexcept;
  Basis& operator=(Basis&&) noexcept;

  [[nodiscard]] std::size_t size() const { return n_; }
  /// True when the O(n log n) FFT path backs dct/idct/sine_synthesis.
  [[nodiscard]] bool uses_fft() const { return plan_ != nullptr; }

  /// Forwarded to the FFT plan's SIMD toggle (see fft::FftPlan). No-op on
  /// the dense naive path.
  void set_use_simd(bool on) {
    if (plan_) plan_->set_use_simd(on);
  }
  [[nodiscard]] bool use_simd() const { return plan_ && plan_->use_simd(); }

  /// cos(pi k (2j+1) / (2n)); builds the dense table on first use.
  [[nodiscard]] double cosine(std::size_t k, std::size_t j) const;
  /// sin(pi k (2j+1) / (2n)); builds the dense table on first use.
  [[nodiscard]] double sine(std::size_t k, std::size_t j) const;

  /// Forward DCT producing reconstruction-ready coefficients (see header).
  [[nodiscard]] std::vector<double> dct(const std::vector<double>& v) const;
  /// Exact inverse of dct().
  [[nodiscard]] std::vector<double> idct(const std::vector<double>& a) const;
  /// Sine synthesis of DCT coefficients (a_0 ignored since sin(0)=0).
  [[nodiscard]] std::vector<double> sine_synthesis(
      const std::vector<double>& a) const;

  // Strided allocation-free primitives (dispatch to FFT when available).
  // Read n values at in[t*in_stride], write n at out[t*out_stride]; the
  // input is gathered before outputs are written, so in == out is fine.
  void dct_strided(const double* in, std::size_t in_stride, double* out,
                   std::size_t out_stride) const;
  void idct_strided(const double* in, std::size_t in_stride, double* out,
                    std::size_t out_stride) const;
  void sine_synthesis_strided(const double* in, std::size_t in_stride,
                              double* out, std::size_t out_stride) const;

  // Dense-basis reference implementations (the FFT test oracle). Always
  // O(n^2), regardless of uses_fft().
  [[nodiscard]] std::vector<double> naive_dct(
      const std::vector<double>& v) const;
  [[nodiscard]] std::vector<double> naive_idct(
      const std::vector<double>& a) const;
  [[nodiscard]] std::vector<double> naive_sine_synthesis(
      const std::vector<double>& a) const;

 private:
  enum class Kind : std::uint8_t { Dct, Idct, SineSynth };

  void ensure_tables() const;
  void naive_strided(Kind kind, const double* in, std::size_t in_stride,
                     double* out, std::size_t out_stride) const;
  std::size_t n_;
  std::unique_ptr<fft::FftPlan> plan_;   // power-of-two sizes only
  mutable std::vector<double> cos_;      // lazy [k * n + j] dense tables
  mutable std::vector<double> sin_;
  mutable std::vector<double> gather_;   // naive-path strided scratch
  mutable std::vector<double> result_;
};

/// 2D forward DCT: rows transformed with `bx`, columns with `by`.
/// Input m(r, c): r indexes y bins, c indexes x bins. Output coefficient
/// matrix a(v, u) with v the y-frequency and u the x-frequency.
[[nodiscard]] Matrix dct2d(const Matrix& m, const Basis& bx, const Basis& by);

/// 2D cosine synthesis (exact inverse of dct2d).
[[nodiscard]] Matrix idct2d(const Matrix& a, const Basis& bx, const Basis& by);

/// Mixed synthesis: sine along x, cosine along y (x-field component).
[[nodiscard]] Matrix isxcy2d(const Matrix& a, const Basis& bx,
                             const Basis& by);
/// Mixed synthesis: cosine along x, sine along y (y-field component).
[[nodiscard]] Matrix icxsy2d(const Matrix& a, const Basis& bx,
                             const Basis& by);

// In-place variants: overwrite `m`, zero heap allocation per call. The hot
// path for the per-iteration Poisson solve.
void dct2d_inplace(Matrix& m, const Basis& bx, const Basis& by);
void idct2d_inplace(Matrix& m, const Basis& bx, const Basis& by);
void isxcy2d_inplace(Matrix& m, const Basis& bx, const Basis& by);
void icxsy2d_inplace(Matrix& m, const Basis& bx, const Basis& by);

// Dense-basis reference 2D transforms (oracle / benchmark baseline).
[[nodiscard]] Matrix dct2d_naive(const Matrix& m, const Basis& bx,
                                 const Basis& by);
[[nodiscard]] Matrix idct2d_naive(const Matrix& a, const Basis& bx,
                                  const Basis& by);
[[nodiscard]] Matrix isxcy2d_naive(const Matrix& a, const Basis& bx,
                                   const Basis& by);
[[nodiscard]] Matrix icxsy2d_naive(const Matrix& a, const Basis& bx,
                                   const Basis& by);

}  // namespace aplace::numeric::spectral
