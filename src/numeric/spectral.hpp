#pragma once
// Separable cosine/sine spectral transforms for the electrostatic density
// system (ePlace-style Poisson solve with Neumann boundary conditions).
//
// Conventions (per dimension, N bins):
//   forward DCT (analysis, reconstruction-ready coefficients):
//     a_k = (2/N) * w(k) * sum_j v_j cos(pi k (2j+1) / (2N)),  w(0)=1/2, w(k)=1
//   inverse DCT (synthesis):
//     v_j = sum_k a_k cos(pi k (2j+1) / (2N))       -- exact inverse
//   sine synthesis (for field components):
//     s_j = sum_k a_k sin(pi k (2j+1) / (2N))
//
// The 2D transforms apply the 1D transform along rows then columns. All
// transforms are O(N^2) per dimension with precomputed tables; bin grids in
// this project are <= 128 per side, so a full 2D solve is well under a
// millisecond.

#include <vector>

#include "numeric/matrix.hpp"

namespace aplace::numeric::spectral {

/// Precomputed cos/sin tables for one dimension of size n.
class Basis {
 public:
  explicit Basis(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  /// cos(pi k (2j+1) / (2n))
  [[nodiscard]] double cosine(std::size_t k, std::size_t j) const {
    return cos_[k * n_ + j];
  }
  /// sin(pi k (2j+1) / (2n))
  [[nodiscard]] double sine(std::size_t k, std::size_t j) const {
    return sin_[k * n_ + j];
  }

  /// Forward DCT producing reconstruction-ready coefficients (see header).
  [[nodiscard]] std::vector<double> dct(const std::vector<double>& v) const;
  /// Exact inverse of dct().
  [[nodiscard]] std::vector<double> idct(const std::vector<double>& a) const;
  /// Sine synthesis of DCT coefficients (a_0 ignored since sin(0)=0).
  [[nodiscard]] std::vector<double> sine_synthesis(
      const std::vector<double>& a) const;

 private:
  std::size_t n_;
  std::vector<double> cos_;  // [k * n + j]
  std::vector<double> sin_;
};

/// 2D forward DCT: rows transformed with `bx`, columns with `by`.
/// Input m(r, c): r indexes y bins, c indexes x bins. Output coefficient
/// matrix a(v, u) with v the y-frequency and u the x-frequency.
[[nodiscard]] Matrix dct2d(const Matrix& m, const Basis& bx, const Basis& by);

/// 2D cosine synthesis (exact inverse of dct2d).
[[nodiscard]] Matrix idct2d(const Matrix& a, const Basis& bx, const Basis& by);

/// Mixed synthesis: sine along x, cosine along y (x-field component).
[[nodiscard]] Matrix isxcy2d(const Matrix& a, const Basis& bx,
                             const Basis& by);
/// Mixed synthesis: cosine along x, sine along y (y-field component).
[[nodiscard]] Matrix icxsy2d(const Matrix& a, const Basis& bx,
                             const Basis& by);

}  // namespace aplace::numeric::spectral
