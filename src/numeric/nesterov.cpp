#include "numeric/nesterov.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::numeric {
namespace {

double lipschitz_step(const Vec& u_new, const Vec& u_old, const Vec& g_new,
                      const Vec& g_old, const NesterovOptions& opts) {
  const double du = norm2(sub(u_new, u_old));
  const double dg = norm2(sub(g_new, g_old));
  if (dg <= 1e-30 || du <= 1e-30) return opts.max_step;
  return std::clamp(du / dg, opts.min_step, opts.max_step);
}

}  // namespace

int NesterovSolver::minimize(Vec& v, const GradientFn& grad, const Callback& cb,
                             NesterovInfo* info) const {
  NesterovInfo local;
  NesterovInfo& inf = info ? *info : local;
  inf = {};
  const std::size_t n = v.size();
  if (n == 0) return 0;

  // Notation per ePlace: v = major iterate, u = reference (lookahead) point.
  Vec v_cur = v;
  Vec u_cur = v;
  Vec g_cur(n), g_prev(n);
  Vec u_prev = u_cur;

  grad(u_cur, g_cur);
  if (opts_.watchdog && (!all_finite(v_cur) || !all_finite(g_cur))) {
    // Nothing to roll back to: the start state itself is poisoned.
    inf.diverged = true;
    return 0;
  }
  double a_cur = 1.0;
  double alpha = opts_.initial_step;
  const double g0 = norm2(g_cur);
  if (g0 > 1e-30) alpha = std::clamp(alpha, opts_.min_step, opts_.max_step);
  // Gradient-explosion threshold, relative to the starting magnitude.
  const double explode = opts_.explosion_factor * std::max(g0, 1.0);

  Vec v_good = v_cur;  ///< last healthy major iterate (watchdog rollback)
  int iter = 0;
  Vec v_next(n), u_next(n), g_next(n);
  for (; iter < opts_.max_iters; ++iter) {
    if (opts_.deadline.expired()) {
      inf.deadline_hit = true;
      break;
    }
    if (opts_.cancel.cancelled()) {
      inf.cancelled = true;
      break;
    }
    // Backtracking on the trial step: accept once the Lipschitz step
    // re-estimated at the trial point does not collapse below the trial.
    double trial = alpha;
    const double a_next = (1.0 + std::sqrt(4.0 * a_cur * a_cur + 1.0)) / 2.0;
    const double lookahead = (a_cur - 1.0) / a_next;
    bool unhealthy = false;
    for (int bt = 0;; ++bt) {
      for (std::size_t i = 0; i < n; ++i) {
        v_next[i] = u_cur[i] - trial * g_cur[i];
        u_next[i] = v_next[i] + lookahead * (v_next[i] - v_cur[i]);
      }
      grad(u_next, g_next);
      if (opts_.watchdog &&
          (!all_finite(v_next) || !all_finite(g_next))) {
        // Keep NaN/Inf out of the Lipschitz estimate: shrink and retry,
        // escalate to the watchdog when the step cannot shrink further.
        if (bt >= opts_.backtrack_limit || trial <= opts_.min_step) {
          unhealthy = true;
          break;
        }
        trial *= 0.5;
        continue;
      }
      const double predicted =
          lipschitz_step(u_next, u_cur, g_next, g_cur, opts_);
      if (predicted >= 0.95 * trial || bt >= opts_.backtrack_limit ||
          trial <= opts_.min_step) {
        trial = std::min(trial, predicted);
        break;
      }
      trial = std::max(predicted, trial * 0.5);
    }
    if (opts_.watchdog && !unhealthy && norm2(g_next) > explode) {
      unhealthy = true;
    }

    if (unhealthy) {
      if (inf.restarts < 1) {
        // Roll back to the last good iterate and restart the momentum with
        // a damped step. One retry: a second blow-up means the objective
        // itself is pathological, not a transient overshoot.
        ++inf.restarts;
        v_cur = v_good;
        u_cur = v_good;
        grad(u_cur, g_cur);
        if (!all_finite(g_cur)) {
          inf.diverged = true;
          break;
        }
        a_cur = 1.0;
        alpha = std::max(opts_.min_step, 0.01 * alpha);
        continue;
      }
      inf.diverged = true;
      break;
    }

    u_prev = u_cur;
    g_prev = g_cur;
    v_cur = v_next;
    u_cur = u_next;
    g_cur = g_next;
    a_cur = a_next;
    alpha = std::clamp(lipschitz_step(u_cur, u_prev, g_cur, g_prev, opts_),
                       opts_.min_step, opts_.max_step);
    v_good = v_cur;

    NesterovState st;
    st.iter = iter;
    st.step = trial;
    st.gradient_norm = norm2(g_cur);
    if (cb && !cb(st, v_cur)) {
      ++iter;
      break;
    }
  }
  // On divergence hand back the last healthy iterate, never the poisoned one.
  v = inf.diverged ? v_good : v_cur;
  return iter;
}

}  // namespace aplace::numeric
