#include "numeric/nesterov.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::numeric {
namespace {

double lipschitz_step(const Vec& u_new, const Vec& u_old, const Vec& g_new,
                      const Vec& g_old, const NesterovOptions& opts) {
  const double du = norm2(sub(u_new, u_old));
  const double dg = norm2(sub(g_new, g_old));
  if (dg <= 1e-30 || du <= 1e-30) return opts.max_step;
  return std::clamp(du / dg, opts.min_step, opts.max_step);
}

}  // namespace

int NesterovSolver::minimize(Vec& v, const GradientFn& grad,
                             const Callback& cb) const {
  const std::size_t n = v.size();
  if (n == 0) return 0;

  // Notation per ePlace: v = major iterate, u = reference (lookahead) point.
  Vec v_cur = v;
  Vec u_cur = v;
  Vec g_cur(n), g_prev(n);
  Vec u_prev = u_cur;

  grad(u_cur, g_cur);
  double a_cur = 1.0;
  double alpha = opts_.initial_step;
  const double g0 = norm2(g_cur);
  if (g0 > 1e-30) alpha = std::clamp(alpha, opts_.min_step, opts_.max_step);

  int iter = 0;
  Vec v_next(n), u_next(n), g_next(n);
  for (; iter < opts_.max_iters; ++iter) {
    // Backtracking on the trial step: accept once the Lipschitz step
    // re-estimated at the trial point does not collapse below the trial.
    double trial = alpha;
    const double a_next = (1.0 + std::sqrt(4.0 * a_cur * a_cur + 1.0)) / 2.0;
    const double lookahead = (a_cur - 1.0) / a_next;
    for (int bt = 0;; ++bt) {
      for (std::size_t i = 0; i < n; ++i) {
        v_next[i] = u_cur[i] - trial * g_cur[i];
        u_next[i] = v_next[i] + lookahead * (v_next[i] - v_cur[i]);
      }
      grad(u_next, g_next);
      const double predicted =
          lipschitz_step(u_next, u_cur, g_next, g_cur, opts_);
      if (predicted >= 0.95 * trial || bt >= opts_.backtrack_limit ||
          trial <= opts_.min_step) {
        trial = std::min(trial, predicted);
        break;
      }
      trial = std::max(predicted, trial * 0.5);
    }

    u_prev = u_cur;
    g_prev = g_cur;
    v_cur = v_next;
    u_cur = u_next;
    g_cur = g_next;
    a_cur = a_next;
    alpha = std::clamp(lipschitz_step(u_cur, u_prev, g_cur, g_prev, opts_),
                       opts_.min_step, opts_.max_step);

    NesterovState st;
    st.iter = iter;
    st.step = trial;
    st.gradient_norm = norm2(g_cur);
    if (cb && !cb(st, v_cur)) {
      ++iter;
      break;
    }
  }
  v = v_cur;
  return iter;
}

}  // namespace aplace::numeric
