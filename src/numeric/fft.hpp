#pragma once
// Real-input spectral kernels on an iterative radix-2 complex FFT.
//
// One FftPlan serves a fixed power-of-two length n and provides the three
// 1D transforms the electrostatic Poisson solve needs, each O(n log n):
//
//   dct2  : a_k = (2/n) w(k) sum_j v_j cos(pi k (2j+1) / (2n)),
//           w(0) = 1/2, w(k>0) = 1   (forward analysis, matches
//           spectral::Basis::dct exactly)
//   dct3  : v_j = a_0 + sum_{k>=1} a_k cos(pi k (2j+1) / (2n))
//           (cosine synthesis, exact inverse of dct2)
//   dst3  : s_j = sum_{k>=1} a_k sin(pi k (2j+1) / (2n))
//           (sine synthesis; a_0 is ignored since sin(0) = 0)
//
// All three reduce to a single length-n complex FFT via Makhoul's
// even/odd permutation plus a quarter-wave twist; dst3 additionally uses
// the flip identity sin(pi k (2j+1)/(2n)) = (-1)^j cos(pi (n-k) (2j+1)/(2n)),
// so it is a dct3 of the index-reversed coefficients with alternating signs.
//
// Tables (bit-reversal permutation, per-stage twiddles, quarter-wave
// factors) and scratch are precomputed at construction: O(n) memory and
// zero heap allocation per transform. Inputs/outputs are strided so the
// same plan runs row transforms (stride 1) and column transforms
// (stride = row length) of a row-major matrix in place. Scratch is
// mutable, so a plan must not be shared across threads concurrently.

#include <cstddef>
#include <vector>

#include "base/aligned.hpp"

namespace aplace::numeric::fft {

/// True for n >= 2 that are exact powers of two (FFT-eligible sizes).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n >= 2 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (and >= 2).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

class FftPlan {
 public:
  /// n must satisfy is_pow2(n).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Select the 4-lane butterfly/twiddle kernels (true) or the scalar
  /// reference (false). Defaults to simd::default_enabled(). The SIMD path
  /// vectorizes stages with half-size >= 4 and the stride-1 quarter-wave
  /// twiddle loops; both paths agree to <= 1e-12 relative.
  void set_use_simd(bool on) { use_simd_ = on; }
  [[nodiscard]] bool use_simd() const { return use_simd_; }

  // Each transform reads n values at `in[t * in_stride]` and writes n
  // values at `out[t * out_stride]`. `in == out` (any strides) is fine:
  // the input is fully gathered into scratch before outputs are written.

  void dct2(const double* in, std::size_t in_stride, double* out,
            std::size_t out_stride) const;
  void dct3(const double* in, std::size_t in_stride, double* out,
            std::size_t out_stride) const;
  void dst3(const double* in, std::size_t in_stride, double* out,
            std::size_t out_stride) const;

 private:
  /// In-place radix-2 Cooley-Tukey on (re_, im_); inverse = conjugate
  /// twiddles, no 1/n normalization.
  void transform(bool inverse) const;
  /// Shared synthesis tail of dct3/dst3: spectrum already in (re_, im_).
  void synthesize(double* out, std::size_t out_stride, bool alternate) const;

  std::size_t n_;
  bool use_simd_;
  std::vector<std::size_t> rev_;     // bit-reversal permutation
  base::AlignedVec wre_, wim_;       // stage twiddles e^{-2 pi i m / len},
                                     // stage with half-size h at offset h - 1
  base::AlignedVec qre_, qim_;       // quarter-wave cos/sin(pi k / (2n))
  mutable base::AlignedVec re_, im_;  // complex work buffer
};

}  // namespace aplace::numeric::fft
