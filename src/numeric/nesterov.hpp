#pragma once
// Nesterov accelerated gradient descent with Lipschitz-estimated step length,
// following ePlace (Lu et al., TCAD'15).
//
// The solver minimizes an implicit objective given only its gradient. The
// step length is the inverse of a local Lipschitz estimate
//   L_k ~= ||g(u_k) - g(u_{k-1})|| / ||u_k - u_{k-1}||
// with backtracking: a trial step is accepted once the step predicted *from*
// the trial point does not undershoot the trial step (ePlace Algorithm 1).
//
// The caller observes progress through a per-iteration callback and may stop
// early (e.g. when the density overflow target is reached) or mutate penalty
// weights between iterations (the gradient closure sees the new weights on
// the next evaluation).

#include <functional>
#include <span>

#include "numeric/vec.hpp"

namespace aplace::numeric {

struct NesterovOptions {
  int max_iters = 1000;
  double initial_step = 0.01;   ///< fallback when no curvature info yet
  int backtrack_limit = 10;     ///< max halvings per iteration
  double min_step = 1e-12;
  double max_step = 1e6;
};

struct NesterovState {
  int iter = 0;
  double step = 0.0;
  double gradient_norm = 0.0;
};

class NesterovSolver {
 public:
  /// Gradient oracle: fills `grad` with the objective gradient at `v`.
  using GradientFn =
      std::function<void(std::span<const double> v, std::span<double> grad)>;
  /// Called after each accepted iterate; return false to stop.
  using Callback =
      std::function<bool(const NesterovState&, std::span<const double> v)>;

  explicit NesterovSolver(NesterovOptions opts = {}) : opts_(opts) {}

  /// Minimize starting from v (updated in place). Returns iterations used.
  int minimize(Vec& v, const GradientFn& grad, const Callback& cb) const;

 private:
  NesterovOptions opts_;
};

}  // namespace aplace::numeric
