#pragma once
// Nesterov accelerated gradient descent with Lipschitz-estimated step length,
// following ePlace (Lu et al., TCAD'15).
//
// The solver minimizes an implicit objective given only its gradient. The
// step length is the inverse of a local Lipschitz estimate
//   L_k ~= ||g(u_k) - g(u_{k-1})|| / ||u_k - u_{k-1}||
// with backtracking: a trial step is accepted once the step predicted *from*
// the trial point does not undershoot the trial step (ePlace Algorithm 1).
//
// The caller observes progress through a per-iteration callback and may stop
// early (e.g. when the density overflow target is reached) or mutate penalty
// weights between iterations (the gradient closure sees the new weights on
// the next evaluation).

#include <functional>
#include <span>

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "numeric/vec.hpp"

namespace aplace::numeric {

struct NesterovOptions {
  int max_iters = 1000;
  double initial_step = 0.01;   ///< fallback when no curvature info yet
  int backtrack_limit = 10;     ///< max halvings per iteration
  double min_step = 1e-12;
  double max_step = 1e6;
  /// Wall-clock budget polled once per iteration; unlimited by default.
  Deadline deadline;
  /// Cooperative cancellation, polled at the same per-iteration site.
  base::CancelToken cancel;
  /// Watchdog: treat a NaN/Inf iterate/gradient, or a gradient norm above
  /// explosion_factor * max(initial norm, 1), as divergence. The solver
  /// rolls back to the last healthy iterate and retries once with a damped
  /// step before giving up.
  bool watchdog = true;
  double explosion_factor = 1e8;
};

struct NesterovState {
  int iter = 0;
  double step = 0.0;
  double gradient_norm = 0.0;
};

/// Post-mortem of one minimize() call (all false on a clean run).
struct NesterovInfo {
  bool diverged = false;      ///< watchdog gave up; v holds last good iterate
  bool deadline_hit = false;  ///< stopped by the wall-clock budget
  bool cancelled = false;     ///< stopped by cooperative cancellation
  int restarts = 0;           ///< damped watchdog restarts taken
};

class NesterovSolver {
 public:
  /// Gradient oracle: fills `grad` with the objective gradient at `v`.
  using GradientFn =
      std::function<void(std::span<const double> v, std::span<double> grad)>;
  /// Called after each accepted iterate; return false to stop.
  using Callback =
      std::function<bool(const NesterovState&, std::span<const double> v)>;

  explicit NesterovSolver(NesterovOptions opts = {}) : opts_(opts) {}

  /// Minimize starting from v (updated in place). Returns iterations used.
  /// `info`, when given, reports divergence / deadline / restart outcomes.
  int minimize(Vec& v, const GradientFn& grad, const Callback& cb,
               NesterovInfo* info = nullptr) const;

 private:
  NesterovOptions opts_;
};

}  // namespace aplace::numeric
