#include "numeric/cg.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::numeric {

int CgSolver::minimize(Vec& v, const ValueGradFn& fg, const Callback& cb,
                       CgInfo* info) const {
  CgInfo local;
  CgInfo& inf = info ? *info : local;
  inf = {};
  const std::size_t n = v.size();
  if (n == 0) return 0;

  Vec g(n), g_prev(n), dir(n), trial(n), g_trial(n);
  double f = fg(v, g);
  if (opts_.watchdog &&
      (!std::isfinite(f) || !all_finite(v) || !all_finite(g))) {
    // The start state itself is poisoned; nothing to roll back to.
    inf.diverged = true;
    return 0;
  }
  for (std::size_t i = 0; i < n; ++i) dir[i] = -g[i];

  Vec v_good = v;  ///< last healthy iterate (watchdog rollback target)
  double step = opts_.initial_step;
  int iter = 0;
  for (; iter < opts_.max_iters; ++iter) {
    if (opts_.deadline.expired()) {
      inf.deadline_hit = true;
      break;
    }
    if (opts_.cancel.cancelled()) {
      inf.cancelled = true;
      break;
    }
    const double gnorm = norm2(g);
    if (gnorm <= opts_.grad_tol) break;

    // Ensure descent; restart on uphill directions.
    double dg = dot(dir, g);
    if (dg >= 0) {
      for (std::size_t i = 0; i < n; ++i) dir[i] = -g[i];
      dg = -gnorm * gnorm;
    }

    // Backtracking Armijo line search. Non-finite trial values (overflow in
    // the objective at a too-long step) count as rejections so the search
    // naturally backs off into the finite region.
    double t = step;
    double f_new = f;
    bool accepted = false;
    for (int ls = 0; ls < opts_.max_line_search; ++ls) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = v[i] + t * dir[i];
      f_new = fg(trial, g_trial);
      const bool healthy = !opts_.watchdog ||
                           (std::isfinite(f_new) && all_finite(g_trial) &&
                            all_finite(trial));
      if (healthy && f_new <= f + opts_.armijo_c * t * dg) {
        accepted = true;
        break;
      }
      t *= opts_.backtrack_factor;
    }
    if (!accepted) {
      if (opts_.watchdog && !(std::isfinite(f) && all_finite(g))) {
        // The *current* state is poisoned (the objective can inject NaNs
        // through mutated weights between calls). Roll back once, damped.
        if (inf.restarts < 1) {
          ++inf.restarts;
          v = v_good;
          f = fg(v, g);
          if (!std::isfinite(f) || !all_finite(g)) {
            inf.diverged = true;
            break;
          }
          for (std::size_t i = 0; i < n; ++i) dir[i] = -g[i];
          step = std::max(opts_.initial_step * 0.01, 1e-12);
          continue;
        }
        inf.diverged = true;
        break;
      }
      // Could not make progress along this direction; steepest-descent
      // restart with a tiny step, then give the callback a chance to stop.
      for (std::size_t i = 0; i < n; ++i) dir[i] = -g[i];
      step = std::max(step * opts_.backtrack_factor, 1e-12);
      CgState st{iter, f, gnorm};
      if (cb && !cb(st, v)) {
        ++iter;
        break;
      }
      if (step <= 1e-12) break;
      continue;
    }

    g_prev = g;
    v = trial;
    f = f_new;
    g = g_trial;
    v_good = v;
    // Grow the step cautiously after success so the search adapts upward.
    step = std::min(t * 2.0, opts_.initial_step * 100.0);

    // Polak-Ribiere+ beta.
    double num = 0;
    for (std::size_t i = 0; i < n; ++i) num += g[i] * (g[i] - g_prev[i]);
    const double den = dot(g_prev, g_prev);
    const double beta = den > 1e-30 ? std::max(0.0, num / den) : 0.0;
    for (std::size_t i = 0; i < n; ++i) dir[i] = -g[i] + beta * dir[i];

    CgState st{iter, f, norm2(g)};
    if (cb && !cb(st, v)) {
      ++iter;
      break;
    }
  }
  if (inf.diverged) v = v_good;
  return iter;
}

}  // namespace aplace::numeric
