#pragma once
// Shared wall-clock budget for the placement pipeline.
//
// A Deadline is a cheap value type handed down through solver options: the
// Nesterov/CG iteration loops, the SA move loop and the MILP branch-and-bound
// node loop all poll expired() and stop early, reporting BudgetExhausted up
// the flow instead of overrunning. A default-constructed Deadline is
// unlimited, so existing call sites pay nothing.

#include <chrono>
#include <limits>

namespace aplace {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unlimited

  /// Deadline `seconds` from now. Non-positive values are already expired
  /// (a zero budget is a valid adversarial input, not an error).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    seconds > 0 ? seconds : 0.0));
    return d;
  }

  [[nodiscard]] bool limited() const { return limited_; }
  [[nodiscard]] bool expired() const {
    return limited_ && Clock::now() >= end_;
  }
  /// Seconds left (clamped at 0); +inf when unlimited.
  [[nodiscard]] double remaining_seconds() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const double s = std::chrono::duration<double>(end_ - Clock::now()).count();
    return s > 0 ? s : 0.0;
  }

 private:
  bool limited_ = false;
  Clock::time_point end_{};
};

}  // namespace aplace
