#pragma once
// Cooperative cancellation for the placement pipeline.
//
// A CancelToken is a cheap value type threaded through solver options next
// to Deadline: the Nesterov/CG iteration loops, the SA move loop, the MILP
// branch-and-bound node loop and the legalizer refinement rounds poll
// cancelled() at the same watchdog sites where they poll the deadline, and
// stop early when the owner of the token (typically the batch driver, on
// behalf of a SIGINT handler or an RPC abort) requested cancellation.
//
// A default-constructed token is inert — cancelled() is always false and
// costs one null-pointer test — so existing call sites pay nothing. Tokens
// copied from one cancellable() source share the flag: requesting
// cancellation on any copy is observed by all of them, across threads.
// Requesting cancellation is lock-free (a relaxed atomic store), so a
// signal handler may call request_cancel() directly.
//
// Cancellation is cooperative and lossy by design: a stage that already
// finished keeps its result (the flows report Ok work as Ok even when the
// batch was cancelled moments later); a stage interrupted mid-loop surfaces
// StatusCode::Cancelled instead of a half-baked answer.

#include <atomic>
#include <memory>

namespace aplace::base {

class CancelToken {
 public:
  /// Inert token: never cancelled, copies share nothing.
  CancelToken() = default;

  /// A live token whose copies all observe request_cancel().
  [[nodiscard]] static CancelToken make_cancellable() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// True when this token was created via make_cancellable().
  [[nodiscard]] bool cancellable() const { return flag_ != nullptr; }

  /// Request cancellation. Safe from any thread and from signal handlers
  /// (std::atomic<bool> is lock-free on every supported platform); no-op on
  /// an inert token.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// Poll site: true once any copy requested cancellation.
  [[nodiscard]] bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace aplace::base
