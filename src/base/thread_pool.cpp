#include "base/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "base/check.hpp"
#include "obs/metrics.hpp"

namespace aplace::base {

namespace {

/// Pool telemetry handles, interned once. Leaked like the registry itself
/// so worker threads can record during static destruction.
struct PoolMetrics {
  obs::Counter tasks = obs::counter("pool/tasks");
  obs::Gauge queue_peak = obs::gauge("pool/queue_depth_peak");
  obs::Histogram wait = obs::histogram("pool/task_wait_seconds");
  obs::Histogram run = obs::histogram("pool/task_run_seconds");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : requested_(threads), threads_(std::max(threads, 1u)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  const bool record = obs::enabled() && task.submit_seconds > 0;
  double start = 0;
  if (record) {
    start = obs::now_seconds();
    pool_metrics().wait.record(start - task.submit_seconds);
  }
  std::exception_ptr err;
  {
    // Run under the submitter's span context so spans opened inside the
    // task nest into the submitting flow's tree, not the worker's.
    obs::ContextGuard ctx(task.ctx);
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (record) {
    pool_metrics().tasks.inc();
    pool_metrics().run.record(obs::now_seconds() - start);
  }
  lock.lock();
  TaskGroup& g = *task.group;
  if (err && !g.first_error_) g.first_error_ = err;
  if (--g.pending_ == 0) g.done_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (run_one(lock)) continue;
    if (stop_) return;
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  }
}

void ThreadPool::TaskGroup::run(std::function<void()> fn) {
  if (pool_.threads_ <= 1) {
    // Serial pool: execute immediately, capturing errors exactly like the
    // threaded path so wait() behaves identically.
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(pool_.mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  Task task{std::move(fn), this, obs::SpanContext{}, 0.0};
  const bool record = obs::enabled();
  if (record) {
    task.ctx = obs::current_context();
    task.submit_seconds = obs::now_seconds();
  }
  {
    std::lock_guard<std::mutex> lock(pool_.mu_);
    ++pending_;
    pool_.queue_.push_back(std::move(task));
    if (record) {
      pool_metrics().queue_peak.set_max(
          static_cast<double>(pool_.queue_.size()));
    }
  }
  pool_.work_cv_.notify_one();
}

void ThreadPool::TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  while (pending_ > 0) {
    // Help: run queued tasks (ours or anyone's) instead of blocking, so a
    // task that spawns a nested group can never deadlock the pool.
    if (pool_.run_one(lock)) continue;
    done_cv_.wait(lock, [this] { return pending_ == 0 || !pool_.queue_.empty(); });
  }
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::TaskGroup::wait_nothrow() noexcept {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  while (pending_ > 0) {
    if (pool_.run_one(lock)) continue;
    done_cv_.wait(lock, [this] { return pending_ == 0 || !pool_.queue_.empty(); });
  }
  // An un-waited error is dropped: the destructor must not throw.
  first_error_ = nullptr;
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // NOLINT: guarded singleton

}  // namespace

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("APLACE_THREADS");
      env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
  APLACE_CHECK_MSG(threads >= 1, "thread pool needs at least one thread");
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool && g_global_pool->num_threads() == threads) return;
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace aplace::base
