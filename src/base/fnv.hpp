#pragma once
// FNV-1a 64-bit hashing, header-only so every layer (netlist digesting,
// journal keys) shares one implementation without a link-time dependency.

#include <cstdint>
#include <string_view>

namespace aplace::base {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Fold `data` into a running FNV-1a state. Start from kFnvOffsetBasis.
[[nodiscard]] constexpr std::uint64_t fnv1a64_accumulate(
    std::uint64_t h, std::string_view data) {
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// One-shot FNV-1a64 of a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_accumulate(kFnvOffsetBasis, data);
}

}  // namespace aplace::base
