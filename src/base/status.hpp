#pragma once
// Structured error propagation for the placement pipeline.
//
// Every flow stage (validation, global placement, legalization) reports how
// it ended through a Status instead of letting CheckError escape: an error
// code, a human-readable message, and a diagnostic trail of context notes
// accumulated as the status bubbles up through the pipeline (innermost
// first). Result<T> carries either a value or the Status explaining its
// absence.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/check.hpp"

namespace aplace {

enum class StatusCode : std::uint8_t {
  Ok,
  InvalidInput,      ///< malformed netlist / constraint set (pre-flight)
  Diverged,          ///< numerical blow-up the watchdog could not recover
  Infeasible,        ///< constraint set has no legal realization
  BudgetExhausted,   ///< wall-clock / iteration / node budget ran out
  Cancelled,         ///< cooperative cancellation stopped the work mid-flight
  Internal,          ///< unexpected failure (escaped exception, solver bug)
};

inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidInput: return "invalid-input";
    case StatusCode::Diverged: return "diverged";
    case StatusCode::Infeasible: return "infeasible";
    case StatusCode::BudgetExhausted: return "budget-exhausted";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::Internal: return "internal";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  ///< Ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return {}; }
  static Status invalid_input(std::string msg) {
    return {StatusCode::InvalidInput, std::move(msg)};
  }
  static Status diverged(std::string msg) {
    return {StatusCode::Diverged, std::move(msg)};
  }
  static Status infeasible(std::string msg) {
    return {StatusCode::Infeasible, std::move(msg)};
  }
  static Status budget_exhausted(std::string msg) {
    return {StatusCode::BudgetExhausted, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::Cancelled, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::Internal, std::move(msg)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::Ok; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const std::vector<std::string>& trail() const {
    return trail_;
  }

  /// Append a context note (e.g. "stage: ILP legalization on 'CC-OTA'").
  /// Notes read innermost-first. No-op on Ok statuses so call sites can
  /// annotate unconditionally.
  Status& add_context(std::string note) {
    if (!ok()) trail_.push_back(std::move(note));
    return *this;
  }

  /// "code: message [note; note; ...]" for logs and test failures.
  [[nodiscard]] std::string to_string() const {
    std::string s = aplace::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    if (!trail_.empty()) {
      s += " [";
      for (std::size_t i = 0; i < trail_.size(); ++i) {
        if (i) s += "; ";
        s += trail_[i];
      }
      s += "]";
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
  std::vector<std::string> trail_;
};

/// Value-or-Status. A Result constructed from a value is ok(); one
/// constructed from a non-ok Status carries the error instead.
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    APLACE_CHECK_MSG(!status_.ok(),
                     "Result constructed from an Ok status without a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    APLACE_CHECK_MSG(ok(), "Result::value() on error: " << status_.to_string());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    APLACE_CHECK_MSG(ok(), "Result::value() on error: " << status_.to_string());
    return *value_;
  }
  [[nodiscard]] T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aplace
