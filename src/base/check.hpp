#pragma once
// Lightweight precondition / invariant checking for the analogplace libraries.
//
// APLACE_CHECK is always on (placement problems are small; the cost is
// negligible) and throws aplace::CheckError so callers and tests can react.
// APLACE_DCHECK compiles away in NDEBUG builds and is used on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace aplace {

/// Thrown when a checked precondition or invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "APLACE_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace aplace

#define APLACE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::aplace::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define APLACE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream aplace_os_;                                    \
      aplace_os_ << msg;                                                \
      ::aplace::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     aplace_os_.str());                 \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define APLACE_DCHECK(expr) ((void)0)
#else
#define APLACE_DCHECK(expr) APLACE_CHECK(expr)
#endif
