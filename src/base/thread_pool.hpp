#pragma once
// Fixed-size thread pool with deterministic parallel decomposition.
//
// Design goals, in priority order (see docs/PARALLELISM.md):
//
//  1. Determinism. parallel_for splits [begin, end) into chunks whose
//     boundaries depend only on the range size and the grain — never on the
//     thread count — so callers that keep per-chunk partials and reduce them
//     in chunk order get bit-identical results for any pool size (including
//     a single thread, which executes the same chunks in order).
//  2. No deadlocks under nesting. A thread that waits on a TaskGroup helps
//     execute queued tasks instead of blocking, so tasks may freely submit
//     sub-tasks or call parallel_for (candidate flows call the density /
//     wirelength hot loops, which parallelize again).
//  3. Simplicity over peak throughput. One shared FIFO queue guarded by one
//     mutex, no work stealing; tasks are expected to be coarse (the grain
//     thresholds at the call sites keep tiny problems on the inline path,
//     where parallel_for costs nothing but a loop).
//
// Exceptions thrown inside tasks are captured and rethrown from
// TaskGroup::wait() (first one wins; later ones are dropped after the tasks
// finish). The global() pool is sized from APLACE_THREADS or, failing that,
// std::thread::hardware_concurrency(); set_global_threads() resizes it and
// must only be called while no tasks are in flight.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.hpp"

namespace aplace::base {

class ThreadPool {
 public:
  /// A pool of `threads` total execution contexts: `threads - 1` workers
  /// plus the caller, which participates while waiting. `threads <= 1`
  /// means fully serial execution (no workers are spawned).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resolved pool size: the number of execution contexts that actually
  /// exist (spawned workers + the participating caller). This is what
  /// determinism and bench metadata care about.
  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// The thread count the constructor was asked for, before clamping
  /// (e.g. 0 resolves to 1). Bench reports emit both values.
  [[nodiscard]] unsigned requested_threads() const { return requested_; }

  /// A set of tasks whose completion can be awaited together. wait() helps
  /// drain the pool's queue (any group's tasks), so groups nest freely.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup() { wait_nothrow(); }
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submit a task. With a serial pool the task runs immediately on the
    /// calling thread (same code path, deterministic submission order).
    void run(std::function<void()> fn);

    /// Block until every task submitted to this group has finished,
    /// executing queued tasks meanwhile. Rethrows the first exception any
    /// of this group's tasks threw.
    void wait();

   private:
    friend class ThreadPool;
    void wait_nothrow() noexcept;

    ThreadPool& pool_;
    std::condition_variable done_cv_;       // waits on pool_.mu_
    std::size_t pending_ = 0;               // guarded by pool_.mu_
    std::exception_ptr first_error_;        // guarded by pool_.mu_
  };

  /// Chunk count for a range of `n` items at the given grain: depends on
  /// nothing else, which is what makes chunked reductions deterministic.
  [[nodiscard]] static std::size_t chunk_count(std::size_t n,
                                               std::size_t grain) {
    if (n == 0) return 0;
    const std::size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
  }

  /// Run fn(chunk_begin, chunk_end) over every chunk of [begin, end).
  /// Chunks may execute concurrently and in any order; each chunk runs on
  /// exactly one thread. Ranges smaller than one grain (or a serial pool)
  /// execute inline with zero synchronization.
  template <class Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Fn&& fn) {
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = chunk_count(end - begin, g);
    if (chunks == 0) return;
    if (chunks == 1 || threads_ <= 1) {
      for (std::size_t c = 0; c < chunks; ++c) {
        fn(begin + c * g, std::min(end, begin + (c + 1) * g));
      }
      return;
    }
    TaskGroup group(*this);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = begin + c * g;
      const std::size_t hi = std::min(end, lo + g);
      group.run([&fn, lo, hi] { fn(lo, hi); });
    }
    fn(begin, begin + g);  // caller takes the first chunk
    group.wait();
  }

  /// The process-wide pool. Sized on first use from the APLACE_THREADS
  /// environment variable, else hardware_concurrency().
  [[nodiscard]] static ThreadPool& global();

  /// Resize the global pool (tears the old one down). Only call at a
  /// quiescent point — no tasks in flight.
  static void set_global_threads(unsigned threads);

  /// The thread count global() would pick on first use.
  [[nodiscard]] static unsigned default_threads();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
    /// Submitter's span context, reinstalled on whichever thread runs the
    /// task so spans opened inside parent correctly across the hop.
    obs::SpanContext ctx{};
    double submit_seconds = 0;  ///< obs::now_seconds() at enqueue (0 = off)
  };

  void worker_loop();
  // Pops and runs one queued task. `lock` must hold mu_; it is released
  // while the task runs and re-acquired after. Returns false if the queue
  // was empty.
  bool run_one(std::unique_lock<std::mutex>& lock);

  unsigned requested_;  // raw constructor argument (pre-clamp)
  unsigned threads_;    // resolved size (>= 1)
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aplace::base
