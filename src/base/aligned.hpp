#pragma once
// 32-byte-aligned storage for SIMD kernels.
//
// AlignedAllocator<T> is a minimal C++17 aligned-new allocator whose
// alignment matches simd::Vec4d (one AVX2 register / two SSE2-NEON
// registers). AlignedVec is the std::vector instantiation the hot-path
// containers use: CompiledCircuit's double tables, PlacementState
// coordinates and every per-net/per-row kernel scratch buffer, so the
// 4-lane loops in src/base/simd.hpp can use aligned loads with no
// peeling/fixup prologue.
//
// padded4(n) rounds a length up to the next multiple of 4 lanes; kernels
// size scratch to padded4(n) and neutralize the pad lanes explicitly
// (see simd::zero_tail), which keeps every inner loop full-width.

#include <cstddef>
#include <new>
#include <vector>

namespace aplace::base {

inline constexpr std::size_t kSimdAlign = 32;

template <class T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two >= alignof(T)");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// The SIMD-kernel vector type: contents identical to std::vector<double>,
/// storage guaranteed 32-byte aligned.
using AlignedVec = std::vector<double, AlignedAllocator<double>>;

/// Smallest multiple of 4 that is >= n (scratch padding for 4-lane loops).
[[nodiscard]] constexpr std::size_t padded4(std::size_t n) {
  return (n + 3) & ~std::size_t{3};
}

}  // namespace aplace::base
