#pragma once
// Strongly-typed index wrappers for the netlist database.
//
// Devices, pins and nets are stored in flat vectors; these wrappers stop a
// device index from being accidentally used as a net index. They are trivial
// value types with full comparison support so they work as map keys.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace aplace {

template <class Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = static_cast<value_type>(-1);

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}
  constexpr explicit Id(std::size_t v) : value_(static_cast<value_type>(v)) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type value_ = kInvalid;
};

struct DeviceTag {};
struct PinTag {};
struct NetTag {};

using DeviceId = Id<DeviceTag>;
using PinId = Id<PinTag>;
using NetId = Id<NetTag>;

}  // namespace aplace

template <class Tag>
struct std::hash<aplace::Id<Tag>> {
  std::size_t operator()(aplace::Id<Tag> id) const noexcept {
    return std::hash<typename aplace::Id<Tag>::value_type>{}(id.value());
  }
};
