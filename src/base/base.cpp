// Intentionally (almost) empty: base is header-only but built as a static
// library so downstream targets get a real archive to link against.
#include "base/check.hpp"
#include "base/ids.hpp"

namespace aplace {
namespace {
// Anchor to silence "no symbols" archiver warnings.
[[maybe_unused]] const int kBaseAnchor = 0;
}  // namespace
}  // namespace aplace
