#pragma once
// Portable fixed-width SIMD layer: one 4-lane double vector type
// (simd::Vec4d) with compile-time dispatch to AVX2+FMA, SSE2, NEON or a
// plain-scalar fallback. Every backend implements the same operations with
// the same lane semantics, so a kernel written against Vec4d compiles on
// all four paths and CI can run the full test suite on each.
//
// Determinism contract (see docs/PERFORMANCE.md):
//  * Within one build configuration the kernels built on this layer are
//    bit-deterministic: lane order is fixed, horizontal reductions are
//    ordered (((l0+l1)+l2)+l3), and nothing here depends on thread count.
//  * Across build configurations (scalar vs SSE2 vs AVX2) results may
//    differ in the last bits — fma() fuses only where the hardware does,
//    and exp4() is an approximation — but every kernel pair is property-
//    tested to agree to <= 1e-12 relative (tests/simd_test.cpp).
//
// exp4() is a Cephes-style exp: Cody-Waite range reduction, a degree-2/3
// Pade approximant, exponent reassembly by integer bit manipulation. Its
// relative error is bounded by kExpMaxRelError (~2 ulp; unit-tested), and
// the input is clamped to [-700, 700] so extreme arguments saturate to
// exp(+/-700) instead of producing inf/NaN — the wirelength kernels only
// ever pass max-shifted (<= 0) exponents, where saturation at ~1e-304 is
// indistinguishable from the underflow-to-zero of std::exp at 1e-12.
//
// Compile-time kill switch: -DAPLACE_SIMD=OFF (CMake) defines
// APLACE_SIMD_DISABLED and forces the scalar backend everywhere. Runtime
// default: simd::default_enabled() is true unless APLACE_SIMD=0/off is in
// the environment; kernels expose per-instance setters on top of it.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <cmath>

#include "base/aligned.hpp"

#if !defined(APLACE_SIMD_DISABLED)
#if defined(__AVX2__) && defined(__FMA__)
#define APLACE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define APLACE_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define APLACE_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !APLACE_SIMD_DISABLED

namespace aplace::simd {

inline constexpr std::size_t kLanes = 4;

/// Name of the compiled-in backend (build metadata, bench labels).
[[nodiscard]] constexpr const char* dispatch_name() {
#if defined(APLACE_SIMD_AVX2)
  return "avx2";
#elif defined(APLACE_SIMD_SSE2)
  return "sse2";
#elif defined(APLACE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// True when a vector backend (not the scalar fallback) is compiled in.
[[nodiscard]] constexpr bool compiled_vector() {
#if defined(APLACE_SIMD_AVX2) || defined(APLACE_SIMD_SSE2) || \
    defined(APLACE_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

namespace detail {
// -1 = not yet resolved from the environment; 0/1 = off/on.
inline std::atomic<int>& default_flag() {
  static std::atomic<int> flag{-1};
  return flag;
}

// Bit masks for Vec4d::keep_first: row n keeps lanes [0, n). Kept as a
// table so masking is one aligned load + AND (a store/reload round-trip
// here shows up as a store-forwarding stall in the per-net tail blocks).
alignas(32) inline constexpr std::uint64_t kKeepMask[5][4] = {
    {0, 0, 0, 0},
    {~0ull, 0, 0, 0},
    {~0ull, ~0ull, 0, 0},
    {~0ull, ~0ull, ~0ull, 0},
    {~0ull, ~0ull, ~0ull, ~0ull},
};
}  // namespace detail

/// Runtime default for the kernels' use_simd flags: true unless the
/// APLACE_SIMD environment variable is "0"/"off"/"OFF" or
/// set_default_enabled(false) was called. Engines sample this at
/// construction; the per-instance set_use_simd() setters override it.
[[nodiscard]] inline bool default_enabled() {
  int v = detail::default_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("APLACE_SIMD");
    const bool on =
        e == nullptr || e[0] == '\0' ||
        !(e[0] == '0' || e[0] == 'o' || e[0] == 'O');
    v = on ? 1 : 0;
    detail::default_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// Override the process-wide default (tests pinning one path, e.g. the
/// golden-quality regression runs the scalar reference on every build).
inline void set_default_enabled(bool on) {
  detail::default_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

struct Vec4d {
#if defined(APLACE_SIMD_AVX2)
  __m256d v;
#elif defined(APLACE_SIMD_SSE2)
  __m128d lo, hi;
#elif defined(APLACE_SIMD_NEON)
  float64x2_t lo, hi;
#else
  double d[4];
#endif

  // ---- construction / memory ----------------------------------------------

  [[nodiscard]] static Vec4d zero() { return broadcast(0.0); }

  [[nodiscard]] static Vec4d broadcast(double x) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_set1_pd(x)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_set1_pd(x), _mm_set1_pd(x)};
#elif defined(APLACE_SIMD_NEON)
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
#else
    return {{x, x, x, x}};
#endif
  }

  [[nodiscard]] static Vec4d set(double a, double b, double c, double d) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_setr_pd(a, b, c, d)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_setr_pd(a, b), _mm_setr_pd(c, d)};
#elif defined(APLACE_SIMD_NEON)
    const double lo2[2] = {a, b}, hi2[2] = {c, d};
    return {vld1q_f64(lo2), vld1q_f64(hi2)};
#else
    return {{a, b, c, d}};
#endif
  }

  /// Aligned load (p must be 32-byte aligned; AlignedVec storage is).
  [[nodiscard]] static Vec4d load(const double* p) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_load_pd(p)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_load_pd(p), _mm_load_pd(p + 2)};
#elif defined(APLACE_SIMD_NEON)
    return {vld1q_f64(p), vld1q_f64(p + 2)};
#else
    return {{p[0], p[1], p[2], p[3]}};
#endif
  }

  [[nodiscard]] static Vec4d loadu(const double* p) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_loadu_pd(p)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
#else
    return load(p);  // NEON/scalar loads carry no alignment requirement
#endif
  }

  /// Masked load: lanes [0, n) from p, lanes [n, 4) zero. n in [0, 4].
  [[nodiscard]] static Vec4d load_partial(const double* p, std::size_t n) {
    double tmp[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < (n < 4 ? n : 4); ++i) tmp[i] = p[i];
    return loadu(tmp);
  }

  /// Lane-wise gather through a 32-bit index table (v[idx[0..3]]).
  [[nodiscard]] static Vec4d gather(const double* base,
                                    const std::uint32_t* idx) {
    return set(base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]);
  }

  void store(double* p) const {
#if defined(APLACE_SIMD_AVX2)
    _mm256_store_pd(p, v);
#elif defined(APLACE_SIMD_SSE2)
    _mm_store_pd(p, lo);
    _mm_store_pd(p + 2, hi);
#elif defined(APLACE_SIMD_NEON)
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
#else
    p[0] = d[0];
    p[1] = d[1];
    p[2] = d[2];
    p[3] = d[3];
#endif
  }

  void storeu(double* p) const {
#if defined(APLACE_SIMD_AVX2)
    _mm256_storeu_pd(p, v);
#elif defined(APLACE_SIMD_SSE2)
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
#else
    store(p);
#endif
  }

  /// Masked store: lanes [0, n) to p, the rest untouched. n in [0, 4].
  void store_partial(double* p, std::size_t n) const {
    double tmp[4];
    storeu(tmp);
    for (std::size_t i = 0; i < (n < 4 ? n : 4); ++i) p[i] = tmp[i];
  }

  /// Scatter-accumulate lanes [0, n) in lane order: base[idx[i]] += lane i.
  /// Sequential, so duplicate indices accumulate deterministically.
  void scatter_add(double* base, const std::uint32_t* idx,
                   std::size_t n) const {
    double tmp[4];
    storeu(tmp);
    for (std::size_t i = 0; i < (n < 4 ? n : 4); ++i) base[idx[i]] += tmp[i];
  }

  [[nodiscard]] double lane(std::size_t i) const {
    double tmp[4];
    storeu(tmp);
    return tmp[i];
  }

  // ---- arithmetic ----------------------------------------------------------

  friend Vec4d operator+(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_add_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] + b.d[0], a.d[1] + b.d[1], a.d[2] + b.d[2],
             a.d[3] + b.d[3]}};
#endif
  }

  friend Vec4d operator-(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_sub_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] - b.d[0], a.d[1] - b.d[1], a.d[2] - b.d[2],
             a.d[3] - b.d[3]}};
#endif
  }

  friend Vec4d operator*(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_mul_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] * b.d[0], a.d[1] * b.d[1], a.d[2] * b.d[2],
             a.d[3] * b.d[3]}};
#endif
  }

  friend Vec4d operator/(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_div_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] / b.d[0], a.d[1] / b.d[1], a.d[2] / b.d[2],
             a.d[3] / b.d[3]}};
#endif
  }

  /// a * b + c. Fused (single rounding) on AVX2/NEON; mul+add (two
  /// roundings) on SSE2 and the scalar fallback — a documented cross-build
  /// difference inside the 1e-12 contract.
  [[nodiscard]] static Vec4d fma(Vec4d a, Vec4d b, Vec4d c) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#elif defined(APLACE_SIMD_NEON)
    return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
#else
    return a * b + c;
#endif
  }

  [[nodiscard]] static Vec4d min(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_min_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_min_pd(a.lo, b.lo), _mm_min_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] < b.d[0] ? a.d[0] : b.d[0],
             a.d[1] < b.d[1] ? a.d[1] : b.d[1],
             a.d[2] < b.d[2] ? a.d[2] : b.d[2],
             a.d[3] < b.d[3] ? a.d[3] : b.d[3]}};
#endif
  }

  [[nodiscard]] static Vec4d max(Vec4d a, Vec4d b) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_max_pd(a.v, b.v)};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_max_pd(a.lo, b.lo), _mm_max_pd(a.hi, b.hi)};
#elif defined(APLACE_SIMD_NEON)
    return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
#else
    return {{a.d[0] > b.d[0] ? a.d[0] : b.d[0],
             a.d[1] > b.d[1] ? a.d[1] : b.d[1],
             a.d[2] > b.d[2] ? a.d[2] : b.d[2],
             a.d[3] > b.d[3] ? a.d[3] : b.d[3]}};
#endif
  }

  /// Round each lane to the nearest integer, ties to even (the one rounding
  /// mode every backend implements identically).
  [[nodiscard]] static Vec4d round_nearest(Vec4d a) {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_round_pd(a.v,
                            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
#elif defined(APLACE_SIMD_SSE2)
    // SSE2 has no round_pd; cvtpd_epi32 rounds to nearest-even and the
    // exp4 domain keeps |n| < 2^31, so the int32 round trip is exact.
    return {_mm_cvtepi32_pd(_mm_cvtpd_epi32(a.lo)),
            _mm_cvtepi32_pd(_mm_cvtpd_epi32(a.hi))};
#elif defined(APLACE_SIMD_NEON)
    return {vrndnq_f64(a.lo), vrndnq_f64(a.hi)};
#else
    return {{std::nearbyint(a.d[0]), std::nearbyint(a.d[1]),
             std::nearbyint(a.d[2]), std::nearbyint(a.d[3])}};
#endif
  }

  /// Lane reversal: (l0, l1, l2, l3) -> (l3, l2, l1, l0). Used for the
  /// reversed-index loads of the DCT-III/DST-III twiddle loops.
  [[nodiscard]] Vec4d reverse() const {
#if defined(APLACE_SIMD_AVX2)
    return {_mm256_permute4x64_pd(v, _MM_SHUFFLE(0, 1, 2, 3))};
#elif defined(APLACE_SIMD_SSE2)
    return {_mm_shuffle_pd(hi, hi, 1), _mm_shuffle_pd(lo, lo, 1)};
#elif defined(APLACE_SIMD_NEON)
    return {vextq_f64(hi, hi, 1), vextq_f64(lo, lo, 1)};
#else
    return {{d[3], d[2], d[1], d[0]}};
#endif
  }

  /// Masked tail: keep lanes [0, n), zero lanes [n, 4). Bitwise (AND with a
  /// mask-table row), so it is exact for every value including inf/NaN.
  [[nodiscard]] Vec4d keep_first(std::size_t n) const {
    if (n >= 4) return *this;
#if defined(APLACE_SIMD_AVX2)
    const __m256i m = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(detail::kKeepMask[n]));
    return {_mm256_and_pd(v, _mm256_castsi256_pd(m))};
#elif defined(APLACE_SIMD_SSE2)
    const __m128i mlo = _mm_load_si128(
        reinterpret_cast<const __m128i*>(detail::kKeepMask[n]));
    const __m128i mhi = _mm_load_si128(
        reinterpret_cast<const __m128i*>(detail::kKeepMask[n] + 2));
    return {_mm_and_pd(lo, _mm_castsi128_pd(mlo)),
            _mm_and_pd(hi, _mm_castsi128_pd(mhi))};
#elif defined(APLACE_SIMD_NEON)
    return {vreinterpretq_f64_u64(
                vandq_u64(vreinterpretq_u64_f64(lo),
                          vld1q_u64(detail::kKeepMask[n]))),
            vreinterpretq_f64_u64(
                vandq_u64(vreinterpretq_u64_f64(hi),
                          vld1q_u64(detail::kKeepMask[n] + 2)))};
#else
    Vec4d r = *this;
    for (std::size_t i = n; i < 4; ++i) r.d[i] = 0.0;
    return r;
#endif
  }
};

// ---- reductions -------------------------------------------------------------

/// Ordered horizontal sum (((l0 + l1) + l2) + l3): the one association every
/// backend uses, so reductions are reproducible across scalar/vector builds.
[[nodiscard]] inline double hsum_ordered(Vec4d a) {
  double tmp[4];
  a.storeu(tmp);
  return ((tmp[0] + tmp[1]) + tmp[2]) + tmp[3];
}

[[nodiscard]] inline double hmax(Vec4d a) {
#if defined(APLACE_SIMD_AVX2)
  const __m128d m2 = _mm_max_pd(_mm256_castpd256_pd128(a.v),
                                _mm256_extractf128_pd(a.v, 1));
  return _mm_cvtsd_f64(_mm_max_sd(m2, _mm_unpackhi_pd(m2, m2)));
#elif defined(APLACE_SIMD_SSE2)
  const __m128d m2 = _mm_max_pd(a.lo, a.hi);
  return _mm_cvtsd_f64(_mm_max_sd(m2, _mm_unpackhi_pd(m2, m2)));
#elif defined(APLACE_SIMD_NEON)
  return vmaxvq_f64(vmaxq_f64(a.lo, a.hi));
#else
  double m = a.d[0];
  for (int i = 1; i < 4; ++i) m = a.d[i] > m ? a.d[i] : m;
  return m;
#endif
}

[[nodiscard]] inline double hmin(Vec4d a) {
#if defined(APLACE_SIMD_AVX2)
  const __m128d m2 = _mm_min_pd(_mm256_castpd256_pd128(a.v),
                                _mm256_extractf128_pd(a.v, 1));
  return _mm_cvtsd_f64(_mm_min_sd(m2, _mm_unpackhi_pd(m2, m2)));
#elif defined(APLACE_SIMD_SSE2)
  const __m128d m2 = _mm_min_pd(a.lo, a.hi);
  return _mm_cvtsd_f64(_mm_min_sd(m2, _mm_unpackhi_pd(m2, m2)));
#elif defined(APLACE_SIMD_NEON)
  return vminvq_f64(vminq_f64(a.lo, a.hi));
#else
  double m = a.d[0];
  for (int i = 1; i < 4; ++i) m = a.d[i] < m ? a.d[i] : m;
  return m;
#endif
}

/// Four horizontal sums at once: {sum(a), sum(b), sum(c), sum(d)}. Uses a
/// pairwise association (deterministic per build, but backend-specific and
/// different from hsum_ordered's left-to-right chain), so use it only where
/// the 1e-12 cross-dispatch contract — not bit-identity — is required. The
/// shuffle tree keeps all four reductions in registers and pipelines them,
/// unlike four serial hsum_ordered chains.
[[nodiscard]] inline Vec4d hsum4(Vec4d a, Vec4d b, Vec4d c, Vec4d d) {
  Vec4d r;
#if defined(APLACE_SIMD_AVX2)
  const __m256d t0 = _mm256_hadd_pd(a.v, b.v);  // {a0+a1, b0+b1, a2+a3, b2+b3}
  const __m256d t1 = _mm256_hadd_pd(c.v, d.v);
  const __m256d lo = _mm256_permute2f128_pd(t0, t1, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(t0, t1, 0x31);
  r.v = _mm256_add_pd(lo, hi);  // (l0+l1) + (l2+l3)
#elif defined(APLACE_SIMD_SSE2)
  const __m128d sa = _mm_add_pd(a.lo, a.hi);  // {a0+a2, a1+a3}
  const __m128d sb = _mm_add_pd(b.lo, b.hi);
  const __m128d sc = _mm_add_pd(c.lo, c.hi);
  const __m128d sd = _mm_add_pd(d.lo, d.hi);
  r.lo = _mm_add_pd(_mm_unpacklo_pd(sa, sb), _mm_unpackhi_pd(sa, sb));
  r.hi = _mm_add_pd(_mm_unpacklo_pd(sc, sd), _mm_unpackhi_pd(sc, sd));
#elif defined(APLACE_SIMD_NEON)
  const float64x2_t sa = vaddq_f64(a.lo, a.hi);  // {a0+a2, a1+a3}
  const float64x2_t sb = vaddq_f64(b.lo, b.hi);
  const float64x2_t sc = vaddq_f64(c.lo, c.hi);
  const float64x2_t sd = vaddq_f64(d.lo, d.hi);
  r.lo = vpaddq_f64(sa, sb);
  r.hi = vpaddq_f64(sc, sd);
#else
  r.d[0] = (a.d[0] + a.d[2]) + (a.d[1] + a.d[3]);
  r.d[1] = (b.d[0] + b.d[2]) + (b.d[1] + b.d[3]);
  r.d[2] = (c.d[0] + c.d[2]) + (c.d[1] + c.d[3]);
  r.d[3] = (d.d[0] + d.d[2]) + (d.d[1] + d.d[3]);
#endif
  return r;
}

/// Zero the pad lanes [n, n4) of a padded4-sized scratch buffer so full-
/// width accumulation loops see exact-zero contributions from the tail.
inline void zero_tail(double* p, std::size_t n, std::size_t n4) {
  for (std::size_t i = n; i < n4; ++i) p[i] = 0.0;
}

// ---- exp4 -------------------------------------------------------------------

/// Documented accuracy bound of exp4 vs. a correctly rounded exp, relative
/// (unit-tested over the full clamped domain).
inline constexpr double kExpMaxRelError = 5e-15;
/// exp4 input clamp: arguments outside [-700, 700] saturate.
inline constexpr double kExpClamp = 700.0;

namespace detail {

// Cephes exp() constants (degree-2/3 Pade of exp on [-ln2/2, ln2/2]).
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;

/// 2^n for lanes holding integral n in [-1010, 1010], by exponent-field
/// assembly. AVX2/SSE2 stay in registers (n + 1023 is a small positive
/// int32, so the SSE2 path zero-extends with unpacklo); NEON/scalar go
/// lane-wise (the surrounding polynomial dominates there).
[[nodiscard]] inline Vec4d pow2_int(Vec4d n) {
#if defined(APLACE_SIMD_AVX2)
  const __m128i n32 = _mm256_cvtpd_epi32(n.v);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return {_mm256_castsi256_pd(bits)};
#elif defined(APLACE_SIMD_SSE2)
  const __m128i zero = _mm_setzero_si128();
  const __m128i bias = _mm_set1_epi32(1023);
  const __m128i mlo = _mm_add_epi32(_mm_cvtpd_epi32(n.lo), bias);
  const __m128i mhi = _mm_add_epi32(_mm_cvtpd_epi32(n.hi), bias);
  return {_mm_castsi128_pd(_mm_slli_epi64(_mm_unpacklo_epi32(mlo, zero), 52)),
          _mm_castsi128_pd(_mm_slli_epi64(_mm_unpacklo_epi32(mhi, zero), 52))};
#else
  double tmp[4];
  n.storeu(tmp);
  for (double& x : tmp) {
    const std::uint64_t bits =
        (static_cast<std::uint64_t>(static_cast<std::int64_t>(x) + 1023))
        << 52;
    std::memcpy(&x, &bits, sizeof x);
  }
  return Vec4d::loadu(tmp);
#endif
}

}  // namespace detail

/// Vectorized exp, identical algorithm on every backend: clamp to
/// [-kExpClamp, kExpClamp], n = round-to-nearest-even(x log2 e), Cody-Waite
/// reduction r = x - n ln2, Pade exp(r) = 1 + 2 r P(r^2)/(Q(r^2)-r P(r^2)),
/// scale by 2^n. Max relative error kExpMaxRelError; never inf/NaN for
/// finite input.
[[nodiscard]] inline Vec4d exp4(Vec4d x) {
  using namespace detail;
  x = Vec4d::min(Vec4d::max(x, Vec4d::broadcast(-kExpClamp)),
                 Vec4d::broadcast(kExpClamp));
  const Vec4d n = Vec4d::round_nearest(x * Vec4d::broadcast(kLog2E));
  Vec4d r = Vec4d::fma(n, Vec4d::broadcast(-kLn2Hi), x);
  r = Vec4d::fma(n, Vec4d::broadcast(-kLn2Lo), r);
  const Vec4d rr = r * r;
  Vec4d px = Vec4d::fma(Vec4d::broadcast(kExpP0), rr,
                        Vec4d::broadcast(kExpP1));
  px = Vec4d::fma(px, rr, Vec4d::broadcast(kExpP2));
  px = px * r;
  Vec4d qx = Vec4d::fma(Vec4d::broadcast(kExpQ0), rr,
                        Vec4d::broadcast(kExpQ1));
  qx = Vec4d::fma(qx, rr, Vec4d::broadcast(kExpQ2));
  qx = Vec4d::fma(qx, rr, Vec4d::broadcast(kExpQ3));
  const Vec4d e =
      Vec4d::broadcast(1.0) + (px + px) / (qx - px);
  return e * detail::pow2_int(n);
}

}  // namespace aplace::simd
