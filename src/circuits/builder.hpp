#pragma once
// Fluent construction helper for the synthetic testcase netlists.
//
// Devices connect pins to *named* nets; the builder materializes Net objects
// (with weights / critical flags) in finish(). Pin conventions:
//   transistor: g at the left edge center, d at the top center, s at the
//   bottom center; capacitor/resistor: two terminals top/bottom center;
//   module: pins evenly spaced along the top edge.

#include <map>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace aplace::circuits {

class Builder {
 public:
  explicit Builder(std::string circuit_name);

  // ---- devices -------------------------------------------------------------
  DeviceId mos(const std::string& name, netlist::DeviceType type, double w,
               double h, const std::string& gate, const std::string& drain,
               const std::string& source);
  DeviceId cap(const std::string& name, double w, double h,
               const std::string& top, const std::string& bottom);
  DeviceId res(const std::string& name, double w, double h,
               const std::string& a, const std::string& b);
  /// Pre-composed block with pins named/connected in order along the top.
  DeviceId module(const std::string& name, double w, double h,
                  const std::vector<std::pair<std::string, std::string>>&
                      pin_to_net);

  // ---- net attributes --------------------------------------------------------
  void set_critical(const std::string& net, double weight = 2.0);
  void set_weight(const std::string& net, double weight);

  // ---- constraints -----------------------------------------------------------
  void symmetry(const std::vector<std::pair<std::string, std::string>>& pairs,
                const std::vector<std::string>& selfs = {},
                netlist::Axis axis = netlist::Axis::Vertical);
  void align(netlist::AlignmentKind kind, const std::string& a,
             const std::string& b);
  void order(netlist::OrderDirection dir,
             const std::vector<std::string>& names);

  /// Build nets, validate, finalize and return the circuit.
  [[nodiscard]] netlist::Circuit finish();

 private:
  [[nodiscard]] DeviceId dev(const std::string& name) const;
  void attach(DeviceId d, const std::string& pin_name,
              geom::Point offset, const std::string& net);

  netlist::Circuit circuit_;
  // Net name -> pins, in insertion order for reproducibility.
  std::vector<std::string> net_order_;
  std::map<std::string, std::vector<PinId>> net_pins_;
  std::map<std::string, double> net_weight_;
  std::map<std::string, bool> net_critical_;
};

}  // namespace aplace::circuits
