// VCO testcases: VCO1 (four-stage differential ring oscillator) and VCO2
// (five-stage current-starved ring with varactor tuning).

#include <string>

#include "circuits/builder.hpp"
#include "circuits/testcases.hpp"

namespace aplace::circuits {

using netlist::AlignmentKind;
using netlist::DeviceType;
using netlist::OrderDirection;
using perf::Direction;
using perf::MetricForm;

namespace {

// One differential delay stage: input pair + PMOS load pair + tail source.
// Nets: inp/inn -> outp/outn, shared vctl (load gate bias = tuning).
void add_ring_stage(Builder& b, const std::string& prefix,
                    const std::string& inp, const std::string& inn,
                    const std::string& outp, const std::string& outn,
                    double pair_w) {
  b.mos(prefix + "A", DeviceType::Nmos, pair_w, 2, inp, outn, prefix + "t");
  b.mos(prefix + "B", DeviceType::Nmos, pair_w, 2, inn, outp, prefix + "t");
  b.mos(prefix + "LA", DeviceType::Pmos, 2, 2, "vctl", outn, "vdd");
  b.mos(prefix + "LB", DeviceType::Pmos, 2, 2, "vctl", outp, "vdd");
  b.mos(prefix + "T", DeviceType::Nmos, 3, 2, "vb", prefix + "t", "gnd");
  b.symmetry({{prefix + "A", prefix + "B"}, {prefix + "LA", prefix + "LB"}},
             {prefix + "T"});
}

}  // namespace

TestCase make_vco1() {
  Builder b("VCO1");
  // Four differential stages in a ring (last stage swaps polarity).
  add_ring_stage(b, "S1", "n4p", "n4n", "n1p", "n1n", 4);
  add_ring_stage(b, "S2", "n1p", "n1n", "n2p", "n2n", 4);
  add_ring_stage(b, "S3", "n2p", "n2n", "n3p", "n3n", 4);
  add_ring_stage(b, "S4", "n3n", "n3p", "n4p", "n4n", 4);
  // Bias generation and control filtering.
  b.mos("MB1", DeviceType::Nmos, 3, 2, "vb", "vb", "gnd");
  b.mos("MB2", DeviceType::Pmos, 3, 2, "vctl", "vb", "vdd");
  b.cap("CF", 4, 4, "vctl", "gnd");
  b.cap("CB", 3, 3, "vb", "gnd");
  // Output buffer pair tapping the last stage.
  b.mos("MO1", DeviceType::Nmos, 2, 2, "n4p", "obufp", "gnd");
  b.mos("MO2", DeviceType::Nmos, 2, 2, "n4n", "obufn", "gnd");
  b.res("RO1", 2, 3, "obufp", "vdd");
  b.res("RO2", 2, 3, "obufn", "vdd");

  for (const char* net : {"n1p", "n1n", "n2p", "n2n", "n3p", "n3n", "n4p",
                          "n4n"}) {
    b.set_critical(net);
  }
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);
  b.set_weight("vctl", 0.6);
  b.set_weight("vb", 0.6);

  b.symmetry({{"MO1", "MO2"}, {"RO1", "RO2"}});
  // Monotone ring: stage tails ordered left to right for a clean loop.
  b.order(OrderDirection::LeftToRight, {"S1T", "S2T", "S3T", "S4T"});
  b.align(AlignmentKind::Bottom, "MB1", "MB2");

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Freq(GHz)", 2.4, Direction::Above, 0.30, 3.3,
       MetricForm::InverseLoad, {0.50, 0.18, 0.28, 0.20}},
      {"Tuning(%)", 18.0, Direction::Above, 0.25, 25.0,
       MetricForm::InverseLoad, {0.35, 0.15, 0.22, 0.18}},
      // Phase-noise magnitude |PN| at 1 MHz offset: larger = quieter.
      {"|PN|(dBc/Hz)", 92.0, Direction::Above, 0.25, 99.0,
       MetricForm::Subtractive, {6.0, 2.5, 4.0, 5.0}},
      {"Power(mW)", 2.0, Direction::Below, 0.20, 1.5,
       MetricForm::LinearGrowth, {0.20, 0.25, 0.22, 0.10}},
  };
  tc.spec.fom_threshold = 0.82;
  tc.spec.sens_scale = 0.8;
  return tc;
}

TestCase make_vco2() {
  Builder b("VCO2");
  // Five differential stages.
  add_ring_stage(b, "S1", "n5p", "n5n", "n1p", "n1n", 4);
  add_ring_stage(b, "S2", "n1p", "n1n", "n2p", "n2n", 4);
  add_ring_stage(b, "S3", "n2p", "n2n", "n3p", "n3n", 4);
  add_ring_stage(b, "S4", "n3p", "n3n", "n4p", "n4n", 4);
  add_ring_stage(b, "S5", "n4n", "n4p", "n5p", "n5n", 4);
  // Varactor tuning caps on two ring nodes.
  b.cap("CV1", 3, 3, "n1p", "vctl");
  b.cap("CV2", 3, 3, "n1n", "vctl");
  b.cap("CV3", 3, 3, "n3p", "vctl");
  b.cap("CV4", 3, 3, "n3n", "vctl");
  // Bias and control filtering.
  b.mos("MB1", DeviceType::Nmos, 3, 2, "vb", "vb", "gnd");
  b.mos("MB2", DeviceType::Pmos, 3, 2, "vctl", "vb", "vdd");
  b.cap("CF", 5, 5, "vctl", "gnd");
  b.cap("CB", 3, 3, "vb", "gnd");
  // Output buffers.
  b.mos("MO1", DeviceType::Nmos, 2, 2, "n5p", "obufp", "gnd");
  b.mos("MO2", DeviceType::Nmos, 2, 2, "n5n", "obufn", "gnd");
  b.res("RO1", 2, 3, "obufp", "vdd");
  b.res("RO2", 2, 3, "obufn", "vdd");

  for (const char* net : {"n1p", "n1n", "n2p", "n2n", "n3p", "n3n", "n4p",
                          "n4n", "n5p", "n5n"}) {
    b.set_critical(net);
  }
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);
  b.set_weight("vctl", 0.6);
  b.set_weight("vb", 0.6);

  b.symmetry({{"CV1", "CV2"}, {"CV3", "CV4"}});
  b.symmetry({{"MO1", "MO2"}, {"RO1", "RO2"}});
  b.order(OrderDirection::LeftToRight, {"S1T", "S2T", "S3T", "S4T", "S5T"});
  b.align(AlignmentKind::Bottom, "MB1", "MB2");

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Freq(GHz)", 1.8, Direction::Above, 0.30, 2.6,
       MetricForm::InverseLoad, {0.52, 0.20, 0.30, 0.22}},
      {"Tuning(%)", 25.0, Direction::Above, 0.25, 36.0,
       MetricForm::InverseLoad, {0.38, 0.16, 0.24, 0.20}},
      {"|PN|(dBc/Hz)", 90.0, Direction::Above, 0.25, 97.0,
       MetricForm::Subtractive, {6.5, 2.8, 4.2, 5.2}},
      {"Power(mW)", 3.0, Direction::Below, 0.20, 2.3,
       MetricForm::LinearGrowth, {0.20, 0.26, 0.24, 0.10}},
  };
  tc.spec.fom_threshold = 0.82;
  tc.spec.sens_scale = 0.5;
  return tc;
}

}  // namespace aplace::circuits
