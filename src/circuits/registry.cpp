#include "circuits/testcases.hpp"

#include "base/check.hpp"

namespace aplace::circuits {

const std::vector<std::string>& testcase_names() {
  static const std::vector<std::string> names = {
      "Adder",   "CC-OTA",  "Comp1", "Comp2", "CM-OTA1",
      "CM-OTA2", "SCF",     "VGA",   "VCO1",  "VCO2",
  };
  return names;
}

TestCase make_testcase(std::string_view name) {
  if (name == "Adder") return make_adder();
  if (name == "CC-OTA") return make_cc_ota();
  if (name == "Comp1") return make_comp1();
  if (name == "Comp2") return make_comp2();
  if (name == "CM-OTA1") return make_cm_ota1();
  if (name == "CM-OTA2") return make_cm_ota2();
  if (name == "SCF") return make_scf();
  if (name == "VGA") return make_vga();
  if (name == "VCO1") return make_vco1();
  if (name == "VCO2") return make_vco2();
  APLACE_CHECK_MSG(false, "unknown testcase '" << std::string(name) << "'");
  return make_adder();  // unreachable
}

}  // namespace aplace::circuits
