#pragma once
// The ten paper testcases (Sec. IV-C): three OTAs, two comparators, two
// VCOs, an analog adder, a VGA and a switched-capacitor filter — synthetic
// netlists modeled on the named topologies, each with dozens of devices,
// analog constraint groups and a surrogate performance specification.
//
// The paper's circuits come from a GF12nm PDK we cannot ship; these
// generators produce the same *problem structure* (device counts, symmetry
// groups, alignment/ordering constraints, net topology, relative areas) so
// every placement algorithm exercises identical code paths.

#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.hpp"
#include "perf/spec.hpp"

namespace aplace::circuits {

struct TestCase {
  netlist::Circuit circuit;
  perf::PerformanceSpec spec;
};

TestCase make_adder();
TestCase make_cc_ota();
TestCase make_comp1();
TestCase make_comp2();
TestCase make_cm_ota1();
TestCase make_cm_ota2();
TestCase make_scf();
TestCase make_vga();
TestCase make_vco1();
TestCase make_vco2();

/// Canonical paper order: Adder, CC-OTA, Comp1, Comp2, CM-OTA1, CM-OTA2,
/// SCF, VGA, VCO1, VCO2.
[[nodiscard]] const std::vector<std::string>& testcase_names();

/// Factory by canonical name (case sensitive). Throws on unknown name.
[[nodiscard]] TestCase make_testcase(std::string_view name);

}  // namespace aplace::circuits
