// Comparator testcases: Comp1 (StrongARM latch) and Comp2 (double-tail
// latched comparator with output buffers).

#include "circuits/builder.hpp"
#include "circuits/testcases.hpp"

namespace aplace::circuits {

using netlist::AlignmentKind;
using netlist::DeviceType;
using netlist::OrderDirection;
using perf::Direction;
using perf::MetricForm;

TestCase make_comp1() {
  Builder b("Comp1");
  // StrongARM core.
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "x1", "tail");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "x2", "tail");
  b.mos("M3", DeviceType::Nmos, 2, 2, "outn", "x1", "gnd");
  b.mos("M4", DeviceType::Nmos, 2, 2, "outp", "x2", "gnd");
  b.mos("M5", DeviceType::Pmos, 2, 2, "outn", "outp", "vdd");
  b.mos("M6", DeviceType::Pmos, 2, 2, "outp", "outn", "vdd");
  // Reset switches.
  b.mos("M7", DeviceType::Pmos, 1, 2, "clk", "outp", "vdd");
  b.mos("M8", DeviceType::Pmos, 1, 2, "clk", "outn", "vdd");
  b.mos("M9", DeviceType::Pmos, 1, 2, "clk", "x1", "vdd");
  b.mos("M10", DeviceType::Pmos, 1, 2, "clk", "x2", "vdd");
  // Clocked tail.
  b.mos("M11", DeviceType::Nmos, 4, 2, "clk", "tail", "gnd");
  // Clock buffer (two-inverter chain).
  b.mos("M12", DeviceType::Nmos, 1, 2, "clkin", "clkb", "gnd");
  b.mos("M13", DeviceType::Pmos, 1, 2, "clkin", "clkb", "vdd");
  b.mos("M14", DeviceType::Nmos, 1, 2, "clkb", "clk", "gnd");
  b.mos("M15", DeviceType::Pmos, 1, 2, "clkb", "clk", "vdd");
  // SR latch modules on the outputs.
  b.module("NAND1", 3, 3, {{"a", "outp"}, {"b", "q2"}, {"y", "q1"}});
  b.module("NAND2", 3, 3, {{"a", "outn"}, {"b", "q1"}, {"y", "q2"}});
  // Input and output loading.
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");
  b.cap("CQ1", 1, 1, "q1", "gnd");
  b.cap("CQ2", 1, 1, "q2", "gnd");
  b.cap("CCK", 1, 1, "clkin", "gnd");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("outp");
  b.set_critical("outn");
  b.set_critical("x1");
  b.set_critical("x2");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);
  b.set_weight("clk", 0.8);

  b.symmetry({{"M1", "M2"}, {"M3", "M4"}, {"M5", "M6"}, {"M7", "M8"},
              {"M9", "M10"}},
             {"M11"});
  b.symmetry({{"NAND1", "NAND2"}});
  b.symmetry({{"CIN1", "CIN2"}});
  b.align(AlignmentKind::Bottom, "M12", "M14");
  b.align(AlignmentKind::Bottom, "M13", "M15");
  b.order(OrderDirection::LeftToRight, {"M12", "M14"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Delay(ps)", 120.0, Direction::Below, 0.35, 82.0,
       MetricForm::LinearGrowth, {0.55, 0.20, 0.30, 0.25}},
      {"Offset(mV)", 5.0, Direction::Below, 0.35, 3.4,
       MetricForm::LinearGrowth, {0.35, 0.10, 0.25, 1.00}},
      {"Noise(uVrms)", 400.0, Direction::Below, 0.15, 300.0,
       MetricForm::LinearGrowth, {0.25, 0.12, 0.18, 0.35}},
      {"Power(uW)", 250.0, Direction::Below, 0.15, 190.0,
       MetricForm::LinearGrowth, {0.20, 0.25, 0.22, 0.10}},
  };
  tc.spec.fom_threshold = 0.82;
  tc.spec.sens_scale = 1.25;
  return tc;
}

TestCase make_comp2() {
  Builder b("Comp2");
  // Input (first) stage.
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "fn", "tail1");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "fp", "tail1");
  b.mos("M3", DeviceType::Pmos, 2, 2, "clk", "fn", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 2, "clk", "fp", "vdd");
  b.mos("M5", DeviceType::Nmos, 4, 2, "clk", "tail1", "gnd");
  // Latch (second) stage.
  b.mos("M6", DeviceType::Nmos, 2, 2, "fn", "latn", "tail2");
  b.mos("M7", DeviceType::Nmos, 2, 2, "fp", "latp", "tail2");
  b.mos("M8", DeviceType::Nmos, 2, 2, "latp", "latn", "gnd");
  b.mos("M9", DeviceType::Nmos, 2, 2, "latn", "latp", "gnd");
  b.mos("M10", DeviceType::Pmos, 2, 2, "latp", "latn", "vdd");
  b.mos("M11", DeviceType::Pmos, 2, 2, "latn", "latp", "vdd");
  b.mos("M12", DeviceType::Nmos, 3, 2, "clkb", "tail2", "gnd");
  // Reset switches on the latch.
  b.mos("M13", DeviceType::Pmos, 1, 2, "clkb", "latn", "vdd");
  b.mos("M14", DeviceType::Pmos, 1, 2, "clkb", "latp", "vdd");
  // Clock inverter chain.
  b.mos("M15", DeviceType::Nmos, 1, 2, "clkin", "clk", "gnd");
  b.mos("M16", DeviceType::Pmos, 1, 2, "clkin", "clk", "vdd");
  b.mos("M17", DeviceType::Nmos, 1, 2, "clk", "clkb", "gnd");
  b.mos("M18", DeviceType::Pmos, 1, 2, "clk", "clkb", "vdd");
  // Output inverter buffers.
  b.mos("M19", DeviceType::Nmos, 2, 2, "latn", "von", "gnd");
  b.mos("M20", DeviceType::Pmos, 2, 2, "latn", "von", "vdd");
  b.mos("M21", DeviceType::Nmos, 2, 2, "latp", "vop", "gnd");
  b.mos("M22", DeviceType::Pmos, 2, 2, "latp", "vop", "vdd");
  // Loads and inputs.
  b.cap("CIN1", 2, 2, "vinp", "gnd");
  b.cap("CIN2", 2, 2, "vinn", "gnd");
  b.cap("CO1", 2, 2, "von", "gnd");
  b.cap("CO2", 2, 2, "vop", "gnd");
  b.cap("CCK", 1, 1, "clkin", "gnd");
  b.res("RD1", 1, 2, "fn", "gnd");
  b.res("RD2", 1, 2, "fp", "gnd");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("fn");
  b.set_critical("fp");
  b.set_critical("latn");
  b.set_critical("latp");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);
  b.set_weight("clk", 0.8);
  b.set_weight("clkb", 0.8);

  b.symmetry({{"M1", "M2"}, {"M3", "M4"}}, {"M5"});
  b.symmetry({{"M6", "M7"},
              {"M8", "M9"},
              {"M10", "M11"},
              {"M13", "M14"}},
             {"M12"});
  b.symmetry({{"M19", "M21"}, {"M20", "M22"}});
  b.symmetry({{"CIN1", "CIN2"}});
  b.symmetry({{"RD1", "RD2"}});
  b.align(AlignmentKind::Bottom, "M15", "M17");
  b.align(AlignmentKind::Bottom, "M16", "M18");
  b.order(OrderDirection::LeftToRight, {"M15", "M17"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Delay(ps)", 150.0, Direction::Below, 0.30, 100.0,
       MetricForm::LinearGrowth, {0.55, 0.22, 0.32, 0.28}},
      {"Offset(mV)", 4.0, Direction::Below, 0.35, 2.9,
       MetricForm::LinearGrowth, {0.38, 0.12, 0.28, 1.05}},
      {"Noise(uVrms)", 350.0, Direction::Below, 0.15, 275.0,
       MetricForm::LinearGrowth, {0.25, 0.14, 0.20, 0.40}},
      {"Power(uW)", 400.0, Direction::Below, 0.20, 310.0,
       MetricForm::LinearGrowth, {0.20, 0.28, 0.25, 0.10}},
  };
  tc.spec.fom_threshold = 0.80;
  tc.spec.sens_scale = 0.85;
  return tc;
}

}  // namespace aplace::circuits
