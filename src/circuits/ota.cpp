// OTA testcases: CC-OTA (cross-coupled), CM-OTA1 and CM-OTA2 (current
// mirror, plain and cascoded).

#include "circuits/builder.hpp"
#include "circuits/testcases.hpp"

namespace aplace::circuits {

using netlist::AlignmentKind;
using netlist::DeviceType;
using netlist::OrderDirection;
using perf::Direction;
using perf::MetricForm;

TestCase make_cc_ota() {
  Builder b("CC-OTA");
  // Input differential pair.
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "d1", "tail");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "d2", "tail");
  // Cross-coupled PMOS load pair (gates crossed to the opposite output).
  b.mos("M3", DeviceType::Pmos, 2, 2, "d2", "d1", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 2, "d1", "d2", "vdd");
  // Diode-connected loads.
  b.mos("M5", DeviceType::Pmos, 2, 2, "d1", "d1", "vdd");
  b.mos("M6", DeviceType::Pmos, 2, 2, "d2", "d2", "vdd");
  // Cascode output devices.
  b.mos("M7", DeviceType::Nmos, 2, 2, "vcas", "voutp", "d1");
  b.mos("M8", DeviceType::Nmos, 2, 2, "vcas", "voutn", "d2");
  // Tail current source and bias mirror.
  b.mos("M9", DeviceType::Nmos, 4, 2, "vb", "tail", "gnd");
  b.mos("M10", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  // Output buffers.
  b.mos("M11", DeviceType::Pmos, 2, 2, "voutp", "obufp", "vdd");
  b.mos("M12", DeviceType::Pmos, 2, 2, "voutn", "obufn", "vdd");
  // Load capacitors, compensation, zero-nulling resistor.
  b.cap("CL1", 3, 3, "voutp", "gnd");
  b.cap("CL2", 3, 3, "voutn", "gnd");
  b.cap("CC", 2, 2, "d1", "voutp");
  b.res("RZ", 1, 2, "vcas", "vb");
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");
  b.cap("COB1", 1, 1, "obufp", "gnd");
  b.cap("COB2", 1, 1, "obufn", "gnd");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("d1");
  b.set_critical("d2");
  b.set_critical("voutp");
  b.set_critical("voutn");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  b.symmetry({{"M1", "M2"}, {"M3", "M4"}, {"M5", "M6"}, {"M7", "M8"}},
             {"M9"});
  b.symmetry({{"CL1", "CL2"}});
  b.align(AlignmentKind::Bottom, "M10", "RZ");
  b.order(OrderDirection::LeftToRight, {"M10", "CC"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Gain(dB)", 25.0, Direction::Above, 0.25, 27.5,
       MetricForm::InverseLoad, {0.05, 0.02, 0.03, 0.04}},
      {"UGF(MHz)", 1200.0, Direction::Above, 0.25, 1650.0,
       MetricForm::InverseLoad, {0.55, 0.18, 0.30, 0.22}},
      {"BW(MHz)", 70.0, Direction::Above, 0.25, 105.0,
       MetricForm::InverseLoad, {0.70, 0.25, 0.40, 0.30}},
      {"PM(deg)", 90.0, Direction::Above, 0.25, 97.0,
       MetricForm::Subtractive, {9.0, 4.0, 6.0, 5.0}},
  };
  tc.spec.fom_threshold = 0.88;
  tc.spec.sens_scale = 0.9;
  return tc;
}

TestCase make_cm_ota1() {
  Builder b("CM-OTA1");
  // Differential input pair with current-mirror loads.
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "d1", "tail");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "d2", "tail");
  b.mos("M3", DeviceType::Pmos, 2, 2, "d1", "d1", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 2, "d1", "m1o", "vdd");
  b.mos("M5", DeviceType::Pmos, 2, 2, "d2", "d2", "vdd");
  b.mos("M6", DeviceType::Pmos, 2, 2, "d2", "vout", "vdd");
  // Bottom mirror steering the first branch to the output.
  b.mos("M7", DeviceType::Nmos, 2, 2, "m1o", "m1o", "gnd");
  b.mos("M8", DeviceType::Nmos, 2, 2, "m1o", "vout", "gnd");
  // Tail and bias chain.
  b.mos("M9", DeviceType::Nmos, 4, 2, "vb", "tail", "gnd");
  b.mos("M10", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  b.mos("M11", DeviceType::Pmos, 2, 2, "vbp", "vbp", "vdd");
  b.res("RB", 1, 3, "vbp", "vb");
  // Output load and compensation.
  b.cap("CL", 4, 4, "vout", "gnd");
  b.cap("CC", 2, 2, "d2", "vout");
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");
  b.mos("M12", DeviceType::Nmos, 2, 1, "vout", "obuf", "gnd");
  b.res("RO", 1, 2, "obuf", "vdd");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("d1");
  b.set_critical("d2");
  b.set_critical("vout");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  b.symmetry({{"M1", "M2"}, {"M3", "M5"}, {"M4", "M6"}}, {"M9"});
  b.symmetry({{"CIN1", "CIN2"}});
  b.align(AlignmentKind::Bottom, "M7", "M8");
  b.order(OrderDirection::LeftToRight, {"M10", "M11"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Gain(dB)", 32.0, Direction::Above, 0.25, 35.5,
       MetricForm::InverseLoad, {0.05, 0.02, 0.04, 0.05}},
      {"UGF(MHz)", 900.0, Direction::Above, 0.25, 1250.0,
       MetricForm::InverseLoad, {0.50, 0.20, 0.30, 0.25}},
      {"BW(MHz)", 45.0, Direction::Above, 0.25, 70.0,
       MetricForm::InverseLoad, {0.65, 0.28, 0.40, 0.35}},
      {"Offset(mV)", 4.0, Direction::Below, 0.25, 2.2,
       MetricForm::LinearGrowth, {0.30, 0.10, 0.25, 0.80}},
  };
  tc.spec.fom_threshold = 0.90;
  tc.spec.sens_scale = 1.5;
  return tc;
}

TestCase make_cm_ota2() {
  Builder b("CM-OTA2");
  // Core: same current-mirror OTA but cascoded, with CMFB.
  b.mos("M1", DeviceType::Nmos, 3, 2, "vinp", "d1", "tail");
  b.mos("M2", DeviceType::Nmos, 3, 2, "vinn", "d2", "tail");
  b.mos("M3", DeviceType::Pmos, 2, 2, "d1", "d1", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 2, "d1", "c1", "vdd");
  b.mos("M5", DeviceType::Pmos, 2, 2, "d2", "d2", "vdd");
  b.mos("M6", DeviceType::Pmos, 2, 2, "d2", "c2", "vdd");
  // Cascodes.
  b.mos("M7", DeviceType::Pmos, 2, 2, "vcp", "voutp", "c1");
  b.mos("M8", DeviceType::Pmos, 2, 2, "vcp", "voutn", "c2");
  b.mos("M9", DeviceType::Nmos, 2, 2, "vcn", "voutp", "b1");
  b.mos("M10", DeviceType::Nmos, 2, 2, "vcn", "voutn", "b2");
  b.mos("M11", DeviceType::Nmos, 2, 2, "cmfb", "b1", "gnd");
  b.mos("M12", DeviceType::Nmos, 2, 2, "cmfb", "b2", "gnd");
  // Tail, bias chain, CMFB sense.
  b.mos("M13", DeviceType::Nmos, 4, 2, "vb", "tail", "gnd");
  b.mos("M14", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  b.mos("M15", DeviceType::Pmos, 2, 2, "vcp", "vcp", "vdd");
  b.mos("M16", DeviceType::Nmos, 2, 2, "vcn", "vcn", "gnd");
  b.res("R1", 1, 3, "voutp", "cmfb");
  b.res("R2", 1, 3, "voutn", "cmfb");
  b.cap("C1", 2, 2, "voutp", "cmfb");
  b.cap("C2", 2, 2, "voutn", "cmfb");
  // Loads and inputs.
  b.cap("CL1", 3, 3, "voutp", "gnd");
  b.cap("CL2", 3, 3, "voutn", "gnd");
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("voutp");
  b.set_critical("voutn");
  b.set_critical("d1");
  b.set_critical("d2");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  b.symmetry({{"M1", "M2"},
              {"M3", "M5"},
              {"M4", "M6"},
              {"M7", "M8"},
              {"M9", "M10"},
              {"M11", "M12"}},
             {"M13"});
  b.symmetry({{"R1", "R2"}, {"C1", "C2"}});
  b.symmetry({{"CL1", "CL2"}});
  b.align(AlignmentKind::Bottom, "M14", "M16");
  b.order(OrderDirection::LeftToRight, {"M14", "M15"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Gain(dB)", 48.0, Direction::Above, 0.25, 52.5,
       MetricForm::InverseLoad, {0.04, 0.02, 0.03, 0.04}},
      {"UGF(MHz)", 700.0, Direction::Above, 0.25, 980.0,
       MetricForm::InverseLoad, {0.50, 0.22, 0.28, 0.22}},
      {"BW(MHz)", 20.0, Direction::Above, 0.20, 31.0,
       MetricForm::InverseLoad, {0.62, 0.30, 0.38, 0.30}},
      {"PM(deg)", 75.0, Direction::Above, 0.15, 84.0,
       MetricForm::Subtractive, {8.0, 4.5, 5.5, 4.0}},
      {"Offset(mV)", 3.0, Direction::Below, 0.15, 1.8,
       MetricForm::LinearGrowth, {0.25, 0.10, 0.20, 0.70}},
  };
  tc.spec.fom_threshold = 0.90;
  tc.spec.sens_scale = 0.55;
  return tc;
}

}  // namespace aplace::circuits
