#include "circuits/builder.hpp"

#include <algorithm>

namespace aplace::circuits {

Builder::Builder(std::string circuit_name)
    : circuit_(std::move(circuit_name)) {}

DeviceId Builder::dev(const std::string& name) const {
  const DeviceId id = circuit_.find_device(name);
  APLACE_CHECK_MSG(id.valid(), "unknown device '" << name << "'");
  return id;
}

void Builder::attach(DeviceId d, const std::string& pin_name,
                     geom::Point offset, const std::string& net) {
  const PinId pid = circuit_.add_pin(d, pin_name, offset);
  if (!net_pins_.contains(net)) net_order_.push_back(net);
  net_pins_[net].push_back(pid);
}

DeviceId Builder::mos(const std::string& name, netlist::DeviceType type,
                      double w, double h, const std::string& gate,
                      const std::string& drain, const std::string& source) {
  const DeviceId d = circuit_.add_device(name, type, w, h);
  attach(d, name + ".g", {0, h / 2}, gate);
  attach(d, name + ".d", {w / 2, h}, drain);
  attach(d, name + ".s", {w / 2, 0}, source);
  return d;
}

DeviceId Builder::cap(const std::string& name, double w, double h,
                      const std::string& top, const std::string& bottom) {
  const DeviceId d =
      circuit_.add_device(name, netlist::DeviceType::Capacitor, w, h);
  attach(d, name + ".a", {w / 2, h}, top);
  attach(d, name + ".b", {w / 2, 0}, bottom);
  return d;
}

DeviceId Builder::res(const std::string& name, double w, double h,
                      const std::string& a, const std::string& b) {
  const DeviceId d =
      circuit_.add_device(name, netlist::DeviceType::Resistor, w, h);
  attach(d, name + ".a", {w / 2, h}, a);
  attach(d, name + ".b", {w / 2, 0}, b);
  return d;
}

DeviceId Builder::module(
    const std::string& name, double w, double h,
    const std::vector<std::pair<std::string, std::string>>& pin_to_net) {
  const DeviceId d =
      circuit_.add_device(name, netlist::DeviceType::Module, w, h);
  const double step = w / (static_cast<double>(pin_to_net.size()) + 1.0);
  double x = step;
  for (const auto& [pin_name, net] : pin_to_net) {
    attach(d, name + "." + pin_name, {x, h}, net);
    x += step;
  }
  return d;
}

void Builder::set_critical(const std::string& net, double weight) {
  net_critical_[net] = true;
  net_weight_[net] = weight;
}

void Builder::set_weight(const std::string& net, double weight) {
  net_weight_[net] = weight;
}

void Builder::symmetry(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const std::vector<std::string>& selfs, netlist::Axis axis) {
  netlist::SymmetryGroup g;
  g.axis = axis;
  for (const auto& [a, b] : pairs) g.pairs.emplace_back(dev(a), dev(b));
  for (const std::string& s : selfs) g.self_symmetric.push_back(dev(s));
  circuit_.add_symmetry_group(std::move(g));
}

void Builder::align(netlist::AlignmentKind kind, const std::string& a,
                    const std::string& b) {
  circuit_.add_alignment({kind, dev(a), dev(b)});
}

void Builder::order(netlist::OrderDirection dir,
                    const std::vector<std::string>& names) {
  netlist::OrderingConstraint c;
  c.direction = dir;
  for (const std::string& n : names) c.devices.push_back(dev(n));
  circuit_.add_ordering(std::move(c));
}

netlist::Circuit Builder::finish() {
  for (const std::string& net : net_order_) {
    const auto& pins = net_pins_.at(net);
    APLACE_CHECK_MSG(pins.size() >= 2,
                     "net '" << net << "' has fewer than two pins; connect "
                             "it to more devices or merge it");
    double weight = 1.0;
    if (auto it = net_weight_.find(net); it != net_weight_.end()) {
      weight = it->second;
    }
    const bool critical =
        net_critical_.contains(net) && net_critical_.at(net);
    circuit_.add_net(net, pins, weight, critical);
  }
  circuit_.finalize();
  return std::move(circuit_);
}

}  // namespace aplace::circuits
