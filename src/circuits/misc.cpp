// Adder (opamp summing amplifier), VGA (two-stage variable gain amplifier)
// and SCF (switched-capacitor filter) testcases.

#include <string>

#include "circuits/builder.hpp"
#include "circuits/testcases.hpp"

namespace aplace::circuits {

using netlist::AlignmentKind;
using netlist::DeviceType;
using netlist::OrderDirection;
using perf::Direction;
using perf::MetricForm;

TestCase make_adder() {
  Builder b("Adder");
  // Three AC-coupled inputs summed into a virtual ground.
  for (int i = 1; i <= 3; ++i) {
    const std::string n = std::to_string(i);
    b.cap("CIN" + n, 1, 1, "vin" + n, "gnd");
    b.res("R" + n, 1, 2, "vin" + n, "vsum");
  }
  b.res("RF", 1, 2, "vsum", "vout");
  b.res("RB", 1, 2, "vref", "gnd");
  // Two-stage Miller opamp.
  b.mos("M1", DeviceType::Nmos, 2, 1, "vsum", "d1", "tail");
  b.mos("M2", DeviceType::Nmos, 2, 1, "vref", "d2", "tail");
  b.mos("M3", DeviceType::Pmos, 2, 1, "d1", "d1", "vdd");
  b.mos("M4", DeviceType::Pmos, 2, 1, "d1", "d2", "vdd");
  b.mos("M5", DeviceType::Nmos, 2, 2, "vb", "tail", "gnd");
  b.mos("M6", DeviceType::Pmos, 2, 1, "d2", "vout", "vdd");
  b.mos("M7", DeviceType::Nmos, 2, 1, "vb", "vout", "gnd");
  b.mos("M8", DeviceType::Nmos, 2, 1, "vb", "vb", "gnd");
  b.cap("CC", 3, 2, "d2", "vout");
  b.cap("CL", 2, 2, "vout", "gnd");

  b.set_critical("vsum", 2.5);
  b.set_critical("vout");
  b.set_critical("d2");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  b.symmetry({{"M1", "M2"}, {"M3", "M4"}}, {"M5"});
  b.align(AlignmentKind::Bottom, "CC", "CL");
  b.order(OrderDirection::LeftToRight, {"R1", "RF"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"BW(MHz)", 100.0, Direction::Above, 0.30, 150.0,
       MetricForm::InverseLoad, {0.55, 0.22, 0.32, 0.25}},
      {"THD(%)", 1.0, Direction::Below, 0.25, 0.62,
       MetricForm::LinearGrowth, {0.30, 0.12, 0.22, 0.45}},
      {"Offset(mV)", 5.0, Direction::Below, 0.25, 3.1,
       MetricForm::LinearGrowth, {0.28, 0.10, 0.22, 0.85}},
      {"Power(uW)", 150.0, Direction::Below, 0.20, 118.0,
       MetricForm::LinearGrowth, {0.18, 0.22, 0.20, 0.08}},
  };
  tc.spec.fom_threshold = 0.88;
  tc.spec.sens_scale = 2.2;
  return tc;
}

TestCase make_vga() {
  Builder b("VGA");
  // Stage 1: differential pair with resistor loads + gain-select switches.
  b.mos("A1", DeviceType::Nmos, 3, 2, "vinp", "s1n", "t1");
  b.mos("A2", DeviceType::Nmos, 3, 2, "vinn", "s1p", "t1");
  b.res("RL1", 1, 3, "s1n", "vdd");
  b.res("RL2", 1, 3, "s1p", "vdd");
  b.mos("SW1", DeviceType::Nmos, 1, 1, "g0", "s1n", "s1na");
  b.mos("SW2", DeviceType::Nmos, 1, 1, "g0", "s1p", "s1pa");
  b.res("RG1", 1, 2, "s1na", "vdd");
  b.res("RG2", 1, 2, "s1pa", "vdd");
  b.mos("T1", DeviceType::Nmos, 3, 2, "vb", "t1", "gnd");
  // Stage 2: second differential pair, degeneration switches.
  b.mos("B1", DeviceType::Nmos, 3, 2, "s1n", "s2n", "t2a");
  b.mos("B2", DeviceType::Nmos, 3, 2, "s1p", "s2p", "t2b");
  b.mos("SW3", DeviceType::Nmos, 1, 1, "g1", "t2a", "t2b");
  b.res("RD1", 1, 2, "t2a", "tt2");
  b.res("RD2", 1, 2, "t2b", "tt2");
  b.res("RL3", 1, 3, "s2n", "vdd");
  b.res("RL4", 1, 3, "s2p", "vdd");
  b.mos("T2", DeviceType::Nmos, 3, 2, "vb", "tt2", "gnd");
  // Output buffers and bias.
  b.mos("O1", DeviceType::Nmos, 2, 2, "s2n", "voutn", "gnd");
  b.mos("O2", DeviceType::Nmos, 2, 2, "s2p", "voutp", "gnd");
  b.res("RO1", 1, 2, "voutn", "vdd");
  b.res("RO2", 1, 2, "voutp", "vdd");
  b.mos("MB", DeviceType::Nmos, 2, 2, "vb", "vb", "gnd");
  b.cap("CIN1", 1, 1, "vinp", "gnd");
  b.cap("CIN2", 1, 1, "vinn", "gnd");
  b.cap("CO1", 2, 2, "voutp", "gnd");
  b.cap("CO2", 2, 2, "voutn", "gnd");
  b.cap("CG", 1, 1, "g0", "g1");

  b.set_critical("vinp");
  b.set_critical("vinn");
  b.set_critical("s1p");
  b.set_critical("s1n");
  b.set_critical("s2p");
  b.set_critical("s2n");
  b.set_critical("voutp");
  b.set_critical("voutn");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);

  b.symmetry({{"A1", "A2"}, {"RL1", "RL2"}, {"SW1", "SW2"}, {"RG1", "RG2"}},
             {"T1"});
  b.symmetry({{"B1", "B2"}, {"RD1", "RD2"}, {"RL3", "RL4"}}, {"T2", "SW3"});
  b.symmetry({{"O1", "O2"}, {"RO1", "RO2"}});
  b.symmetry({{"CIN1", "CIN2"}});
  // Monotone signal path: stage1 tail -> stage2 tail -> output bias.
  b.order(OrderDirection::LeftToRight, {"T1", "T2", "MB"});
  b.align(AlignmentKind::Bottom, "T1", "T2");

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Gain(dB)", 20.0, Direction::Above, 0.25, 23.0,
       MetricForm::InverseLoad, {0.06, 0.03, 0.04, 0.05}},
      {"BW(MHz)", 500.0, Direction::Above, 0.30, 760.0,
       MetricForm::InverseLoad, {0.55, 0.22, 0.30, 0.24}},
      {"GainErr(dB)", 0.5, Direction::Below, 0.25, 0.32,
       MetricForm::LinearGrowth, {0.30, 0.10, 0.20, 0.80}},
      {"Power(mW)", 1.5, Direction::Below, 0.20, 1.15,
       MetricForm::LinearGrowth, {0.18, 0.24, 0.20, 0.08}},
  };
  tc.spec.fom_threshold = 0.82;
  tc.spec.sens_scale = 2.0;
  return tc;
}

TestCase make_scf() {
  Builder b("SCF");
  // Two-integrator biquad: opamps as pre-composed modules, large cap
  // arrays, NMOS switches with two-phase clocks.
  b.module("OP1", 8, 6,
           {{"inn", "x1"}, {"inp", "cm"}, {"out", "int1"}});
  b.module("OP2", 8, 6,
           {{"inn", "x2"}, {"inp", "cm"}, {"out", "int2"}});
  // Integration / sampling capacitor pairs (kept symmetric for matching).
  b.cap("CI1", 12, 12, "x1", "int1");
  b.cap("CI2", 12, 12, "x2", "int2");
  b.cap("CS1", 9, 9, "s1", "s2");
  b.cap("CS2", 9, 9, "s3", "s4");
  b.cap("CF1", 7, 7, "int1", "s5");
  b.cap("CF2", 7, 7, "int2", "s6");
  b.cap("CQ1", 5, 5, "int2", "x1");
  b.cap("CQ2", 5, 5, "vin", "s1");
  // Switch matrix (two-phase non-overlapping clocks p1 / p2).
  auto sw = [&](const std::string& name, const std::string& clk,
                const std::string& a, const std::string& bnet) {
    b.mos(name, DeviceType::Nmos, 2, 2, clk, a, bnet);
  };
  sw("S1", "p1", "vin", "s1");
  sw("S2", "p2", "s1", "cm");
  sw("S3", "p1", "s2", "cm");
  sw("S4", "p2", "s2", "x1");
  sw("S5", "p1", "int1", "s3");
  sw("S6", "p2", "s3", "cm");
  sw("S7", "p1", "s4", "cm");
  sw("S8", "p2", "s4", "x2");
  sw("S9", "p1", "s5", "cm");
  sw("S10", "p2", "s5", "x1");
  sw("S11", "p1", "s6", "cm");
  sw("S12", "p2", "s6", "x2");
  sw("S13", "p1", "int2", "vout");
  sw("S14", "p2", "vout", "cm");
  // Clock buffers.
  b.mos("CK1", DeviceType::Nmos, 2, 2, "ck", "p1", "gnd");
  b.mos("CK2", DeviceType::Pmos, 2, 2, "ck", "p1", "vdd");
  b.mos("CK3", DeviceType::Nmos, 2, 2, "p1", "p2", "gnd");
  b.mos("CK4", DeviceType::Pmos, 2, 2, "p1", "p2", "vdd");
  // Common-mode reference and loads.
  b.res("RCM1", 2, 4, "vdd", "cm");
  b.res("RCM2", 2, 4, "cm", "gnd");
  b.cap("CCM", 4, 4, "cm", "gnd");
  b.cap("CLOAD", 6, 6, "vout", "gnd");
  b.cap("CCK", 2, 2, "ck", "gnd");

  b.set_critical("x1");
  b.set_critical("x2");
  b.set_critical("int1");
  b.set_critical("int2");
  b.set_critical("vout");
  b.set_weight("vdd", 0.2);
  b.set_weight("gnd", 0.2);
  b.set_weight("cm", 0.4);
  b.set_weight("p1", 0.6);
  b.set_weight("p2", 0.6);

  b.symmetry({{"CI1", "CI2"}});
  b.symmetry({{"CS1", "CS2"}, {"CF1", "CF2"}});
  b.symmetry({{"OP1", "OP2"}});
  b.align(AlignmentKind::Bottom, "CK1", "CK3");
  b.align(AlignmentKind::Bottom, "CK2", "CK4");
  b.order(OrderDirection::LeftToRight, {"S1", "S4", "S8", "S13"});

  TestCase tc{b.finish(), {}};
  tc.spec.metrics = {
      {"Fc-acc(%)", 2.0, Direction::Below, 0.30, 1.2,
       MetricForm::LinearGrowth, {0.25, 0.08, 0.15, 0.60}},
      {"SNR(dB)", 62.0, Direction::Above, 0.25, 67.0,
       MetricForm::Subtractive, {3.0, 1.2, 2.0, 2.5}},
      {"THD(%)", 0.5, Direction::Below, 0.25, 0.34,
       MetricForm::LinearGrowth, {0.28, 0.10, 0.18, 0.55}},
      {"Power(mW)", 2.5, Direction::Below, 0.20, 1.95,
       MetricForm::LinearGrowth, {0.15, 0.22, 0.18, 0.06}},
  };
  tc.spec.fom_threshold = 0.84;
  tc.spec.sens_scale = 0.45;
  return tc;
}

}  // namespace aplace::circuits
