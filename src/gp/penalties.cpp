#include "gp/penalties.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::gp {
namespace {

using netlist::Axis;

// Index of the mirrored coordinate of device d in v: x block for a vertical
// axis, y block for a horizontal one.
std::size_t mir_idx(std::size_t d, Axis a, std::size_t n) {
  return a == Axis::Vertical ? d : n + d;
}
std::size_t ort_idx(std::size_t d, Axis a, std::size_t n) {
  return a == Axis::Vertical ? n + d : d;
}

// Least-squares-optimal axis position for a group at the current v:
// minimizes sum_p (v_a + v_b - 2m)^2 + sum_s (v_d - m)^2. At this m the
// derivative w.r.t. m vanishes, so the penalty gradient may treat the axis
// as a constant (envelope theorem). Note pairs carry weight 4 (the 2m) and
// selfs weight 1 — a plain mean of midpoints would NOT be the minimizer.
double optimal_axis(std::span<const double> v,
                    const netlist::CompiledCircuit& cc, std::size_t g,
                    std::size_t n) {
  const Axis axis = cc.sym_axis(g);
  const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
  const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
  double num = 0, den = 0;
  for (std::size_t p = 0; p < pa.size(); ++p) {
    num += 2.0 * (v[mir_idx(pa[p], axis, n)] + v[mir_idx(pb[p], axis, n)]);
    den += 4.0;
  }
  for (std::uint32_t d : cc.sym_self(g)) {
    num += v[mir_idx(d, axis, n)];
    den += 1.0;
  }
  return num / den;
}

}  // namespace

ConstraintPenalties::ConstraintPenalties(
    const netlist::CompiledCircuit& compiled)
    : compiled_(&compiled), n_(compiled.num_devices()) {}

ConstraintPenalties::ConstraintPenalties(
    std::shared_ptr<const netlist::CompiledCircuit> compiled)
    : ConstraintPenalties(*compiled) {
  keep_ = std::move(compiled);
}

ConstraintPenalties::ConstraintPenalties(const netlist::Circuit& circuit)
    : ConstraintPenalties(
          std::make_shared<const netlist::CompiledCircuit>(circuit)) {}

double ConstraintPenalties::symmetry(std::span<const double> v,
                                     std::span<double> grad,
                                     double scale) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  double total = 0;
  for (std::size_t g = 0; g < cc.num_symmetry_groups(); ++g) {
    const Axis axis = cc.sym_axis(g);
    const double m = optimal_axis(v, cc, g, n_);
    const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
    const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
    for (std::size_t p = 0; p < pa.size(); ++p) {
      const std::size_t ma = mir_idx(pa[p], axis, n_);
      const std::size_t mb = mir_idx(pb[p], axis, n_);
      const std::size_t oa = ort_idx(pa[p], axis, n_);
      const std::size_t ob = ort_idx(pb[p], axis, n_);
      const double e_orth = v[oa] - v[ob];
      const double e_mir = v[ma] + v[mb] - 2.0 * m;
      total += e_orth * e_orth + e_mir * e_mir;
      grad[oa] += scale * 2.0 * e_orth;
      grad[ob] -= scale * 2.0 * e_orth;
      grad[ma] += scale * 2.0 * e_mir;
      grad[mb] += scale * 2.0 * e_mir;
    }
    for (std::uint32_t d : cc.sym_self(g)) {
      const std::size_t md = mir_idx(d, axis, n_);
      const double e = v[md] - m;
      total += e * e;
      grad[md] += scale * 2.0 * e;
    }
  }
  return total;
}

double ConstraintPenalties::alignment(std::span<const double> v,
                                      std::span<double> grad,
                                      double scale) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::span<const double> half_h = cc.dev_half_height();
  double total = 0;
  for (std::size_t k = 0; k < cc.num_alignments(); ++k) {
    const std::uint32_t a = cc.align_a()[k];
    const std::uint32_t b = cc.align_b()[k];
    double e = 0;
    std::size_t ia = 0, ib = 0;
    switch (cc.align_kind()[k]) {
      case netlist::AlignmentKind::Bottom:
        ia = n_ + a;
        ib = n_ + b;
        e = (v[ia] - half_h[a]) - (v[ib] - half_h[b]);
        break;
      case netlist::AlignmentKind::VerticalCenter:
        ia = a;
        ib = b;
        e = v[ia] - v[ib];
        break;
      case netlist::AlignmentKind::HorizontalCenter:
        ia = n_ + a;
        ib = n_ + b;
        e = v[ia] - v[ib];
        break;
    }
    total += e * e;
    grad[ia] += scale * 2.0 * e;
    grad[ib] -= scale * 2.0 * e;
  }
  return total;
}

double ConstraintPenalties::ordering(std::span<const double> v,
                                     std::span<double> grad,
                                     double scale) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  double total = 0;
  for (std::size_t k = 0; k < cc.num_orderings(); ++k) {
    const bool horiz =
        cc.order_direction(k) == netlist::OrderDirection::LeftToRight;
    const std::span<const double> ext =
        horiz ? cc.dev_width() : cc.dev_height();
    const std::span<const std::uint32_t> devs = cc.order_devices(k);
    for (std::size_t p = 0; p + 1 < devs.size(); ++p) {
      const std::uint32_t a = devs[p];
      const std::uint32_t b = devs[p + 1];
      const std::size_t ia = horiz ? a : n_ + a;
      const std::size_t ib = horiz ? b : n_ + b;
      // Require v[ib] - v[ia] >= (ext_a + ext_b) / 2; hinge^2 otherwise.
      const double gap = v[ib] - v[ia] - (ext[a] + ext[b]) / 2;
      if (gap < 0) {
        total += gap * gap;
        grad[ib] += scale * 2.0 * gap;
        grad[ia] -= scale * 2.0 * gap;
      }
    }
  }
  return total;
}

double ConstraintPenalties::common_centroid(std::span<const double> v,
                                             std::span<double> grad,
                                             double scale) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  double total = 0;
  for (std::size_t k = 0; k < cc.num_centroids(); ++k) {
    const std::uint32_t a1 = cc.cent_a1()[k], a2 = cc.cent_a2()[k];
    const std::uint32_t b1 = cc.cent_b1()[k], b2 = cc.cent_b2()[k];
    for (std::size_t dim = 0; dim < 2; ++dim) {
      const std::size_t off = dim * n_;
      const double e = v[off + a1] + v[off + a2] - v[off + b1] - v[off + b2];
      total += e * e;
      grad[off + a1] += scale * 2.0 * e;
      grad[off + a2] += scale * 2.0 * e;
      grad[off + b1] -= scale * 2.0 * e;
      grad[off + b2] -= scale * 2.0 * e;
    }
  }
  return total;
}

double ConstraintPenalties::boundary(std::span<const double> v,
                                     std::span<double> grad, double scale,
                                     const geom::Rect& region) const {
  const std::span<const double> half_w = compiled_->dev_half_width();
  const std::span<const double> half_h = compiled_->dev_half_height();
  double total = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double xlo = region.xlo() + half_w[i];
    const double xhi = region.xhi() - half_w[i];
    const double ylo = region.ylo() + half_h[i];
    const double yhi = region.yhi() - half_h[i];
    auto hinge = [&](std::size_t idx, double lo, double hi) {
      double e = 0;
      if (v[idx] < lo) e = v[idx] - lo;
      else if (v[idx] > hi) e = v[idx] - hi;
      if (e != 0) {
        total += e * e;
        grad[idx] += scale * 2.0 * e;
      }
    };
    hinge(i, xlo, std::max(xlo, xhi));
    hinge(n_ + i, ylo, std::max(ylo, yhi));
  }
  return total;
}

void ConstraintPenalties::project_symmetry(std::span<double> v) const {
  const netlist::CompiledCircuit& cc = *compiled_;
  for (std::size_t g = 0; g < cc.num_symmetry_groups(); ++g) {
    const Axis axis = cc.sym_axis(g);
    const double m = optimal_axis(v, cc, g, n_);
    const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
    const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
    for (std::size_t p = 0; p < pa.size(); ++p) {
      const std::size_t ma = mir_idx(pa[p], axis, n_);
      const std::size_t mb = mir_idx(pb[p], axis, n_);
      const std::size_t oa = ort_idx(pa[p], axis, n_);
      const std::size_t ob = ort_idx(pb[p], axis, n_);
      const double half = (v[ma] - v[mb]) / 2.0;
      v[ma] = m + half;
      v[mb] = m - half;
      const double orth = (v[oa] + v[ob]) / 2.0;
      v[oa] = orth;
      v[ob] = orth;
    }
    for (std::uint32_t d : cc.sym_self(g)) {
      v[mir_idx(d, axis, n_)] = m;
    }
  }
}

}  // namespace aplace::gp
