#include "gp/penalties.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::gp {
namespace {

using netlist::Axis;

// Index of the mirrored coordinate of device d in v: x block for a vertical
// axis, y block for a horizontal one.
std::size_t mir_idx(std::size_t d, Axis a, std::size_t n) {
  return a == Axis::Vertical ? d : n + d;
}
std::size_t ort_idx(std::size_t d, Axis a, std::size_t n) {
  return a == Axis::Vertical ? n + d : d;
}

// Least-squares-optimal axis position for a group at the current v:
// minimizes sum_p (v_a + v_b - 2m)^2 + sum_s (v_d - m)^2. At this m the
// derivative w.r.t. m vanishes, so the penalty gradient may treat the axis
// as a constant (envelope theorem). Note pairs carry weight 4 (the 2m) and
// selfs weight 1 — a plain mean of midpoints would NOT be the minimizer.
double optimal_axis(std::span<const double> v,
                    const netlist::SymmetryGroup& g, std::size_t n) {
  double num = 0, den = 0;
  for (auto [a, b] : g.pairs) {
    num += 2.0 * (v[mir_idx(a.index(), g.axis, n)] +
                  v[mir_idx(b.index(), g.axis, n)]);
    den += 4.0;
  }
  for (DeviceId d : g.self_symmetric) {
    num += v[mir_idx(d.index(), g.axis, n)];
    den += 1.0;
  }
  return num / den;
}

}  // namespace

ConstraintPenalties::ConstraintPenalties(const netlist::Circuit& circuit)
    : circuit_(&circuit), n_(circuit.num_devices()) {
  APLACE_CHECK(circuit.finalized());
}

double ConstraintPenalties::symmetry(std::span<const double> v,
                                     std::span<double> grad,
                                     double scale) const {
  double total = 0;
  for (const netlist::SymmetryGroup& g :
       circuit_->constraints().symmetry_groups) {
    const double m = optimal_axis(v, g, n_);
    for (auto [a, b] : g.pairs) {
      const std::size_t ma = mir_idx(a.index(), g.axis, n_);
      const std::size_t mb = mir_idx(b.index(), g.axis, n_);
      const std::size_t oa = ort_idx(a.index(), g.axis, n_);
      const std::size_t ob = ort_idx(b.index(), g.axis, n_);
      const double e_orth = v[oa] - v[ob];
      const double e_mir = v[ma] + v[mb] - 2.0 * m;
      total += e_orth * e_orth + e_mir * e_mir;
      grad[oa] += scale * 2.0 * e_orth;
      grad[ob] -= scale * 2.0 * e_orth;
      grad[ma] += scale * 2.0 * e_mir;
      grad[mb] += scale * 2.0 * e_mir;
    }
    for (DeviceId d : g.self_symmetric) {
      const std::size_t md = mir_idx(d.index(), g.axis, n_);
      const double e = v[md] - m;
      total += e * e;
      grad[md] += scale * 2.0 * e;
    }
  }
  return total;
}

double ConstraintPenalties::alignment(std::span<const double> v,
                                      std::span<double> grad,
                                      double scale) const {
  double total = 0;
  for (const netlist::AlignmentPair& p : circuit_->constraints().alignments) {
    const netlist::Device& da = circuit_->device(p.a);
    const netlist::Device& db = circuit_->device(p.b);
    double e = 0;
    std::size_t ia = 0, ib = 0;
    switch (p.kind) {
      case netlist::AlignmentKind::Bottom:
        ia = n_ + p.a.index();
        ib = n_ + p.b.index();
        e = (v[ia] - da.height / 2) - (v[ib] - db.height / 2);
        break;
      case netlist::AlignmentKind::VerticalCenter:
        ia = p.a.index();
        ib = p.b.index();
        e = v[ia] - v[ib];
        break;
      case netlist::AlignmentKind::HorizontalCenter:
        ia = n_ + p.a.index();
        ib = n_ + p.b.index();
        e = v[ia] - v[ib];
        break;
    }
    total += e * e;
    grad[ia] += scale * 2.0 * e;
    grad[ib] -= scale * 2.0 * e;
  }
  return total;
}

double ConstraintPenalties::ordering(std::span<const double> v,
                                     std::span<double> grad,
                                     double scale) const {
  double total = 0;
  for (const netlist::OrderingConstraint& c :
       circuit_->constraints().orderings) {
    const bool horiz = c.direction == netlist::OrderDirection::LeftToRight;
    for (std::size_t k = 0; k + 1 < c.devices.size(); ++k) {
      const DeviceId a = c.devices[k];
      const DeviceId b = c.devices[k + 1];
      const double ext_a = horiz ? circuit_->device(a).width
                                 : circuit_->device(a).height;
      const double ext_b = horiz ? circuit_->device(b).width
                                 : circuit_->device(b).height;
      const std::size_t ia = horiz ? a.index() : n_ + a.index();
      const std::size_t ib = horiz ? b.index() : n_ + b.index();
      // Require v[ib] - v[ia] >= (ext_a + ext_b) / 2; hinge^2 otherwise.
      const double gap = v[ib] - v[ia] - (ext_a + ext_b) / 2;
      if (gap < 0) {
        total += gap * gap;
        grad[ib] += scale * 2.0 * gap;
        grad[ia] -= scale * 2.0 * gap;
      }
    }
  }
  return total;
}

double ConstraintPenalties::common_centroid(std::span<const double> v,
                                             std::span<double> grad,
                                             double scale) const {
  double total = 0;
  for (const netlist::CommonCentroidQuad& q :
       circuit_->constraints().common_centroids) {
    for (std::size_t dim = 0; dim < 2; ++dim) {
      const std::size_t off = dim * n_;
      const double e = v[off + q.a1.index()] + v[off + q.a2.index()] -
                       v[off + q.b1.index()] - v[off + q.b2.index()];
      total += e * e;
      grad[off + q.a1.index()] += scale * 2.0 * e;
      grad[off + q.a2.index()] += scale * 2.0 * e;
      grad[off + q.b1.index()] -= scale * 2.0 * e;
      grad[off + q.b2.index()] -= scale * 2.0 * e;
    }
  }
  return total;
}

double ConstraintPenalties::boundary(std::span<const double> v,
                                     std::span<double> grad, double scale,
                                     const geom::Rect& region) const {
  double total = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const netlist::Device& d = circuit_->device(DeviceId{i});
    const double xlo = region.xlo() + d.width / 2;
    const double xhi = region.xhi() - d.width / 2;
    const double ylo = region.ylo() + d.height / 2;
    const double yhi = region.yhi() - d.height / 2;
    auto hinge = [&](std::size_t idx, double lo, double hi) {
      double e = 0;
      if (v[idx] < lo) e = v[idx] - lo;
      else if (v[idx] > hi) e = v[idx] - hi;
      if (e != 0) {
        total += e * e;
        grad[idx] += scale * 2.0 * e;
      }
    };
    hinge(i, xlo, std::max(xlo, xhi));
    hinge(n_ + i, ylo, std::max(ylo, yhi));
  }
  return total;
}

void ConstraintPenalties::project_symmetry(std::span<double> v) const {
  for (const netlist::SymmetryGroup& g :
       circuit_->constraints().symmetry_groups) {
    const double m = optimal_axis(v, g, n_);
    for (auto [a, b] : g.pairs) {
      const std::size_t ma = mir_idx(a.index(), g.axis, n_);
      const std::size_t mb = mir_idx(b.index(), g.axis, n_);
      const std::size_t oa = ort_idx(a.index(), g.axis, n_);
      const std::size_t ob = ort_idx(b.index(), g.axis, n_);
      const double half = (v[ma] - v[mb]) / 2.0;
      v[ma] = m + half;
      v[mb] = m - half;
      const double orth = (v[oa] + v[ob]) / 2.0;
      v[oa] = orth;
      v[ob] = orth;
    }
    for (DeviceId d : g.self_symmetric) {
      v[mir_idx(d.index(), g.axis, n_)] = m;
    }
  }
}

}  // namespace aplace::gp
