#pragma once
// ePlace-A global placement (paper Sec. IV-A).
//
// Minimizes  W(v) + lambda*N(v) + tau*Sym(v) + eta*Area(v)  (+ alignment,
// ordering and boundary penalties) with Nesterov's method, where W is the
// WA-smoothed wirelength, N the electrostatic potential energy and Area the
// smoothed bounding-box area WA_x * WA_y. Penalty weights are calibrated
// from the initial gradient magnitudes and annealed: lambda and tau grow
// multiplicatively, the smoothing gamma shrinks as density overflow falls.
//
// The performance-driven variant (ePlace-AP) plugs an extra gradient term —
// alpha * dPhi/dv from the GNN — via set_extra_term().

#include <functional>
#include <memory>

#include "base/deadline.hpp"
#include "density/electro.hpp"
#include "gp/penalties.hpp"
#include "netlist/circuit.hpp"
#include "numeric/nesterov.hpp"
#include "wirelength/area_term.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {

enum class WlSmoothing : std::uint8_t { WeightedAverage, LogSumExp };

struct EPlaceGpOptions {
  std::size_t bins = 32;          ///< density bins per side
  /// Round `bins` up to the next power of two so the electrostatic Poisson
  /// solve takes the O(n log n) FFT path instead of the O(n^2) dense-basis
  /// fallback. Disable only to exercise the fallback deliberately.
  bool pow2_bins = true;
  double utilization = 0.55;      ///< region side = sqrt(total area / util)
  double target_density = 0.85;   ///< bin capacity fraction
  double stop_overflow = 0.18;    ///< stop when density overflow drops below
                                  ///< (the ILP DP removes the residual)
  int max_iters = 600;
  int min_iters = 60;             ///< run at least this many iterations

  double lambda_rel = 0.06;   ///< initial density weight (vs. WL gradient)
  double lambda_growth = 1.05;
  double tau_rel = 0.04;      ///< initial symmetry weight
  double tau_growth = 1.04;
  double eta_rel = 0.55;      ///< area-term weight; 0 disables (Fig. 2)
  double align_rel = 0.08;
  double order_rel = 0.08;
  double boundary_rel = 2.0;
  double extra_rel = 2.0;  ///< extra-term (GNN) weight vs. WL gradient

  /// Table I variant: emulate hard symmetry by a rigid (50x, non-ramped)
  /// symmetry weight plus per-callback projection onto the symmetric set.
  bool hard_symmetry = false;

  std::uint64_t seed = 3;  ///< initial-spread jitter
  int num_starts = 3;      ///< multi-start trajectories (best kept)
  /// Wirelength smoothing function. ePlace-A uses WA (paper Eq. 2); the
  /// LSE option exists for the smoothing ablation bench.
  WlSmoothing smoothing = WlSmoothing::WeightedAverage;
  /// Wall-clock budget shared with the rest of the flow: checked between
  /// multi-start trajectories, between phases, and inside the solver.
  Deadline deadline;
};

struct GpResult {
  numeric::Vec positions;  ///< (x.., y..) device centers
  int iterations = 0;
  double overflow = 1.0;
  double hpwl = 0.0;  ///< exact HPWL at the final iterate
  /// The solver watchdog tripped (NaN/Inf or gradient explosion); positions
  /// hold the last healthy iterate, not a converged solution.
  bool diverged = false;
  bool deadline_hit = false;  ///< truncated by the wall-clock budget
};

class EPlaceGlobalPlacer {
 public:
  using ExtraTerm = std::function<double(std::span<const double> v,
                                         std::span<double> grad)>;

  EPlaceGlobalPlacer(const netlist::Circuit& circuit, EPlaceGpOptions opts);

  /// Extra objective term (returns its value, accumulates its gradient).
  void set_extra_term(ExtraTerm term) { extra_ = std::move(term); }

  [[nodiscard]] const geom::Rect& region() const { return region_; }

  [[nodiscard]] GpResult run();

 private:
  [[nodiscard]] GpResult run_single(std::uint64_t seed);

  const netlist::Circuit* circuit_;
  EPlaceGpOptions opts_;
  geom::Rect region_;
  std::unique_ptr<wirelength::SmoothWirelength> wl_owner_;
  wirelength::SmoothWirelength& wl_;
  wirelength::WaAreaTerm area_;
  density::ElectroDensity dens_;
  ConstraintPenalties pen_;
  ExtraTerm extra_;
};

}  // namespace aplace::gp
