#pragma once
// ePlace-A global placement (paper Sec. IV-A).
//
// Minimizes  W(v) + lambda*N(v) + tau*Sym(v) + eta*Area(v)  (+ alignment,
// ordering and boundary penalties) with Nesterov's method. The objective is
// assembled declaratively as a gp::CompositeObjective — one ObjectiveTerm
// per summand — and the penalty weights are calibrated from the initial
// gradient magnitudes and annealed by a gp::WeightScheduler: lambda and tau
// grow multiplicatively, the smoothing gamma shrinks as density overflow
// falls. Per-term eval counts, wall time and convergence samples come back
// in GpResult::trace.
//
// The performance-driven variant (ePlace-AP) plugs the GNN term in as one
// more ObjectiveTerm via set_extra_term().

#include <functional>
#include <memory>

#include "density/electro.hpp"
#include "gp/gp_options.hpp"
#include "gp/objective.hpp"
#include "gp/penalties.hpp"
#include "netlist/compiled.hpp"
#include "numeric/nesterov.hpp"
#include "wirelength/area_term.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {

enum class WlSmoothing : std::uint8_t { WeightedAverage, LogSumExp };

struct EPlaceGpOptions : GpCommonOptions {
  /// Round `bins` up to the next power of two so the electrostatic Poisson
  /// solve takes the O(n log n) FFT path instead of the O(n^2) dense-basis
  /// fallback. Disable only to exercise the fallback deliberately.
  bool pow2_bins = true;
  int max_iters = 600;
  int min_iters = 60;  ///< run at least this many iterations

  double lambda_rel = 0.06;  ///< initial density weight (vs. WL gradient)
  double lambda_growth = 1.05;
  double eta_rel = 0.55;  ///< area-term weight; 0 disables (Fig. 2)

  /// Table I variant: emulate hard symmetry by a rigid (50x, non-ramped)
  /// symmetry weight plus per-callback projection onto the symmetric set.
  bool hard_symmetry = false;

  int num_starts = 3;  ///< multi-start trajectories (best kept)
  /// Wirelength smoothing function. ePlace-A uses WA (paper Eq. 2); the
  /// LSE option exists for the smoothing ablation bench.
  WlSmoothing smoothing = WlSmoothing::WeightedAverage;
};

struct GpResult {
  numeric::Vec positions;  ///< (x.., y..) device centers
  int iterations = 0;
  double overflow = 1.0;
  double hpwl = 0.0;  ///< exact HPWL at the final iterate
  /// The solver watchdog tripped (NaN/Inf or gradient explosion); positions
  /// hold the last healthy iterate, not a converged solution.
  bool diverged = false;
  bool deadline_hit = false;  ///< truncated by the wall-clock budget
  bool cancelled = false;     ///< truncated by cooperative cancellation
  /// Per-term observability accumulated over the whole run (all starts):
  /// eval counts, wall seconds, final weights, convergence samples.
  TermTrace trace;
};

class EPlaceGlobalPlacer {
 public:
  using ExtraTerm = std::function<double(std::span<const double> v,
                                         std::span<double> grad)>;

  /// Borrow a compiled snapshot the caller keeps alive.
  EPlaceGlobalPlacer(const netlist::CompiledCircuit& compiled,
                     EPlaceGpOptions opts);
  /// Share ownership of a compiled snapshot (flow/batch cache path).
  EPlaceGlobalPlacer(std::shared_ptr<const netlist::CompiledCircuit> compiled,
                     EPlaceGpOptions opts);
  /// Convenience: compile privately from a raw circuit.
  EPlaceGlobalPlacer(const netlist::Circuit& circuit, EPlaceGpOptions opts);

  /// Extra objective term (returns its value, accumulates its gradient).
  /// Legacy functor hook; wrapped into a FunctionTerm named "extra".
  void set_extra_term(ExtraTerm term);
  /// First-class extra term (e.g. gnn::PhiTerm). Must precede run().
  void set_extra_term(std::shared_ptr<ObjectiveTerm> term);

  [[nodiscard]] const geom::Rect& region() const { return region_; }

  [[nodiscard]] GpResult run();

 private:
  /// Build the composite objective + scheduler mirroring opts_ (term order
  /// fixed: wirelength, density, symmetry, common-centroid, area,
  /// alignment, ordering, boundary, extra).
  void build_objective();
  [[nodiscard]] GpResult run_single(std::uint64_t seed);

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  EPlaceGpOptions opts_;
  geom::Rect region_;
  std::unique_ptr<wirelength::SmoothWirelength> wl_owner_;
  wirelength::SmoothWirelength& wl_;
  wirelength::WaAreaTerm area_;
  density::ElectroDensity dens_;
  ConstraintPenalties pen_;
  std::shared_ptr<ObjectiveTerm> extra_;
  std::unique_ptr<CompositeObjective> objective_;
  std::unique_ptr<WeightScheduler> scheduler_;
};

}  // namespace aplace::gp
