#pragma once
// Soft analog-constraint penalties for global placement (paper Eq. 3).
//
//   Sym(v):   for devices i,j mirrored about a free axis m,
//             (orth_i - orth_j)^2 + (mir_i + mir_j - 2m)^2, and
//             (mir_r - m)^2 for self-symmetric devices. The axis position is
//             chosen optimally per evaluation (envelope theorem: its
//             gradient contribution vanishes at the optimum).
//   Align(v): squared alignment residuals (bottom / center alignment).
//   Order(v): squared hinge on monotone-order gap violations.
//   Bound(v): quadratic pull-back of device edges into the placement region
//             (keeps the density model's charges inside the domain).

#include <span>

#include "geom/rect.hpp"
#include "netlist/circuit.hpp"

namespace aplace::gp {

class ConstraintPenalties {
 public:
  explicit ConstraintPenalties(const netlist::Circuit& circuit);

  /// Each evaluates at v = (x.., y..), adds scale * gradient, returns value.
  double symmetry(std::span<const double> v, std::span<double> grad,
                  double scale) const;
  double alignment(std::span<const double> v, std::span<double> grad,
                   double scale) const;
  double ordering(std::span<const double> v, std::span<double> grad,
                  double scale) const;
  /// Common-centroid quads: squared diagonal-sum mismatch in x and y.
  double common_centroid(std::span<const double> v, std::span<double> grad,
                         double scale) const;
  double boundary(std::span<const double> v, std::span<double> grad,
                  double scale, const geom::Rect& region) const;

  /// Project v so every symmetry group is exactly mirrored about its
  /// current optimal axis (used by the hard-constraint GP variant).
  void project_symmetry(std::span<double> v) const;

 private:
  const netlist::Circuit* circuit_;
  std::size_t n_;
};

}  // namespace aplace::gp
