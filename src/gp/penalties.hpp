#pragma once
// Soft analog-constraint penalties for global placement (paper Eq. 3).
//
//   Sym(v):   for devices i,j mirrored about a free axis m,
//             (orth_i - orth_j)^2 + (mir_i + mir_j - 2m)^2, and
//             (mir_r - m)^2 for self-symmetric devices. The axis position is
//             chosen optimally per evaluation (envelope theorem: its
//             gradient contribution vanishes at the optimum).
//   Align(v): squared alignment residuals (bottom / center alignment).
//   Order(v): squared hinge on monotone-order gap violations.
//   Bound(v): quadratic pull-back of device edges into the placement region
//             (keeps the density model's charges inside the domain).
//
// All terms iterate the CompiledCircuit's flattened constraint tables and
// flat device half-extents — no AoS constraint walking in the hot loop.

#include <memory>
#include <span>

#include "geom/rect.hpp"
#include "netlist/compiled.hpp"

namespace aplace::gp {

class ConstraintPenalties {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  explicit ConstraintPenalties(const netlist::CompiledCircuit& compiled);
  /// Share ownership of a compiled snapshot.
  explicit ConstraintPenalties(
      std::shared_ptr<const netlist::CompiledCircuit> compiled);
  /// Convenience: compile privately from a raw circuit.
  explicit ConstraintPenalties(const netlist::Circuit& circuit);

  /// Each evaluates at v = (x.., y..), adds scale * gradient, returns value.
  double symmetry(std::span<const double> v, std::span<double> grad,
                  double scale) const;
  double alignment(std::span<const double> v, std::span<double> grad,
                   double scale) const;
  double ordering(std::span<const double> v, std::span<double> grad,
                  double scale) const;
  /// Common-centroid quads: squared diagonal-sum mismatch in x and y.
  double common_centroid(std::span<const double> v, std::span<double> grad,
                         double scale) const;
  double boundary(std::span<const double> v, std::span<double> grad,
                  double scale, const geom::Rect& region) const;

  /// Project v so every symmetry group is exactly mirrored about its
  /// current optimal axis (used by the hard-constraint GP variant).
  void project_symmetry(std::span<double> v) const;

 private:
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  std::size_t n_;
};

}  // namespace aplace::gp
