#include "gp/ntu_gp.hpp"

#include <cmath>
#include <numbers>

#include "numeric/rng.hpp"

namespace aplace::gp {
namespace {

double mean_abs(const numeric::Vec& g) {
  double s = 0;
  for (double x : g) s += std::abs(x);
  return s / static_cast<double>(std::max<std::size_t>(g.size(), 1));
}

}  // namespace

PriorAnalyticalGlobalPlacer::PriorAnalyticalGlobalPlacer(
    const netlist::Circuit& circuit, NtuGpOptions opts)
    : circuit_(&circuit),
      opts_(opts),
      region_([&] {
        const double side =
            std::sqrt(circuit.total_device_area() / opts.utilization);
        return geom::Rect{0, 0, side, side};
      }()),
      wl_(circuit),
      dens_(circuit, region_, opts.bins, opts.bins, opts.target_density),
      pen_(circuit) {}

GpResult PriorAnalyticalGlobalPlacer::run() {
  const std::size_t n = circuit_->num_devices();
  numeric::Vec v(2 * n);

  numeric::Rng rng(opts_.seed);
  const geom::Point c = region_.center();
  const double r0 = 0.02 * region_.width();
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double r = r0 * std::sqrt(static_cast<double>(i) + 0.5);
    const double th = golden * static_cast<double>(i) + rng.uniform(0, 0.05);
    v[i] = c.x + r * std::cos(th);
    v[n + i] = c.y + r * std::sin(th);
  }

  const double bin_w = dens_.grid().bin_w();
  double gamma = bin_w * 8.0;
  wl_.set_gamma(gamma);

  numeric::Vec g_wl(2 * n, 0.0), g_dens(2 * n, 0.0), g_sym(2 * n, 0.0);
  wl_.value_and_grad(v, g_wl);
  dens_.value_and_grad(v, g_dens, 1.0);
  pen_.symmetry(v, g_sym, 1.0);
  const double mw = std::max(mean_abs(g_wl), 1e-12);
  auto rel_weight = [&](double rel, const numeric::Vec& g) {
    const double mg = mean_abs(g);
    return mg > 1e-12 ? rel * mw / mg : rel;
  };
  double beta = rel_weight(opts_.beta_rel, g_dens);
  double tau = rel_weight(opts_.tau_rel, g_sym);
  double align_w = tau * opts_.align_rel / std::max(opts_.tau_rel, 1e-12);
  double order_w = tau * opts_.order_rel / std::max(opts_.tau_rel, 1e-12);
  const double bound_w = 2.0 * mw / bin_w;

  GpResult result;
  numeric::CgOptions copts;
  copts.max_iters = opts_.inner_iters;
  copts.initial_step = 0.2 * bin_w;
  copts.deadline = opts_.deadline;
  const numeric::CgSolver cg(copts);

  double extra_scale = 1.0;
  if (extra_) {
    numeric::Vec g_extra(2 * n, 0.0);
    extra_(v, g_extra);
    extra_scale = rel_weight(opts_.extra_rel, g_extra);
  }

  numeric::Vec g_tmp(2 * n);
  auto objective = [&](std::span<const double> vv, std::span<double> grad) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double f = wl_.value_and_grad(vv, grad);
    f += beta * dens_.value_and_grad(vv, grad, beta);
    f += tau * pen_.symmetry(vv, grad, tau);
    f += tau * pen_.common_centroid(vv, grad, tau);
    f += align_w * pen_.alignment(vv, grad, align_w);
    f += order_w * pen_.ordering(vv, grad, order_w);
    f += bound_w * pen_.boundary(vv, grad, bound_w, region_);
    if (extra_) {
      std::fill(g_tmp.begin(), g_tmp.end(), 0.0);
      f += extra_scale * extra_(vv, g_tmp);
      numeric::axpy(extra_scale, g_tmp, grad);
    }
    return f;
  };

  for (int outer = 0; outer < opts_.outer_iters; ++outer) {
    if (opts_.deadline.expired()) {
      result.deadline_hit = true;
      break;
    }
    numeric::CgInfo cinfo;
    result.iterations +=
        cg.minimize(v, objective,
                    [](const numeric::CgState&, std::span<const double>) {
                      return true;
                    },
                    &cinfo);
    result.diverged |= cinfo.diverged;
    result.deadline_hit |= cinfo.deadline_hit;
    // v was rolled back to the last healthy iterate; doubling the density
    // weight and continuing from a poisoned trajectory rarely helps, so
    // hand off what we have.
    if (cinfo.diverged || cinfo.deadline_hit) break;
    const double overflow = dens_.overflow();
    if (outer >= 1 && overflow < opts_.stop_overflow) break;
    beta *= 2.0;  // NTUplace3-style outer ramp
    tau *= 1.5;
    align_w *= 1.5;
    order_w *= 1.5;
    gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
    wl_.set_gamma(gamma);
  }

  result.overflow = dens_.overflow();
  result.hpwl = wl_.exact_hpwl(v);
  result.positions = std::move(v);
  return result;
}

}  // namespace aplace::gp
