#include "gp/ntu_gp.hpp"

#include <cmath>
#include <numbers>

#include <algorithm>

#include "numeric/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::gp {

PriorAnalyticalGlobalPlacer::PriorAnalyticalGlobalPlacer(
    const netlist::CompiledCircuit& compiled, NtuGpOptions opts)
    : circuit_(&compiled.circuit()),
      compiled_(&compiled),
      opts_(opts),
      region_([&] {
        const double side =
            std::sqrt(compiled.total_device_area() / opts.utilization);
        return geom::Rect{0, 0, side, side};
      }()),
      wl_(compiled),
      dens_(compiled, region_, opts.bins, opts.bins, opts.target_density),
      pen_(compiled) {}

PriorAnalyticalGlobalPlacer::PriorAnalyticalGlobalPlacer(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    NtuGpOptions opts)
    : PriorAnalyticalGlobalPlacer(*compiled, opts) {
  keep_ = std::move(compiled);
}

PriorAnalyticalGlobalPlacer::PriorAnalyticalGlobalPlacer(
    const netlist::Circuit& circuit, NtuGpOptions opts)
    : PriorAnalyticalGlobalPlacer(
          std::make_shared<const netlist::CompiledCircuit>(circuit), opts) {}

void PriorAnalyticalGlobalPlacer::set_extra_term(ExtraTerm term) {
  extra_ = std::make_shared<FunctionTerm>("extra", std::move(term));
}

void PriorAnalyticalGlobalPlacer::set_extra_term(
    std::shared_ptr<ObjectiveTerm> term) {
  extra_ = std::move(term);
}

void PriorAnalyticalGlobalPlacer::build_objective() {
  objective_ =
      std::make_unique<CompositeObjective>(2 * circuit_->num_devices());
  CompositeObjective& obj = *objective_;
  // Same term families as ePlace-A minus the area term, with the bell
  // density kernel; registration order is the accumulation order.
  obj.add_term(std::make_shared<SmoothWirelengthTerm>(wl_, "wirelength"));
  obj.add_term(std::make_shared<BellDensityTerm>(dens_));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Symmetry));
  obj.add_term(
      std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::CommonCentroid));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Alignment));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Ordering));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, region_));
  if (extra_) obj.add_term(extra_);

  scheduler_ = std::make_unique<WeightScheduler>(obj);
  using Rule = WeightScheduler::Rule;
  scheduler_->set_rule("wirelength", {.init = Rule::Init::Fixed, .rel = 1.0});
  scheduler_->set_rule("density", {.init = Rule::Init::RelToRefGrad,
                                   .rel = opts_.beta_rel,
                                   .growth = opts_.beta_growth});
  scheduler_->set_rule("symmetry", {.init = Rule::Init::RelToRefGrad,
                                    .rel = opts_.tau_rel,
                                    .growth = opts_.tau_growth});
  scheduler_->set_rule("common-centroid", {.init = Rule::Init::TiedTo,
                                           .rel = opts_.tau_rel,
                                           .tied_to = "symmetry",
                                           .tied_rel = opts_.tau_rel,
                                           .growth = opts_.tau_growth});
  scheduler_->set_rule("alignment", {.init = Rule::Init::TiedTo,
                                     .rel = opts_.align_rel,
                                     .tied_to = "symmetry",
                                     .tied_rel = opts_.tau_rel,
                                     .growth = opts_.tau_growth});
  scheduler_->set_rule("ordering", {.init = Rule::Init::TiedTo,
                                    .rel = opts_.order_rel,
                                    .tied_to = "symmetry",
                                    .tied_rel = opts_.tau_rel,
                                    .growth = opts_.tau_growth});
  scheduler_->set_rule("boundary", {.init = Rule::Init::RefOverScale,
                                    .rel = opts_.boundary_rel,
                                    .scale_div = dens_.grid().bin_w()});
  if (extra_) {
    scheduler_->set_rule(std::string(extra_->name()),
                         {.init = Rule::Init::RelToRefGrad,
                          .rel = opts_.extra_rel});
  }
}

GpResult PriorAnalyticalGlobalPlacer::run() {
  build_objective();
  const std::size_t n = circuit_->num_devices();
  numeric::Vec v(2 * n);

  numeric::Rng rng(opts_.seed);
  const geom::Point c = region_.center();
  const double r0 = 0.02 * region_.width();
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double r = r0 * std::sqrt(static_cast<double>(i) + 0.5);
    const double th = golden * static_cast<double>(i) + rng.uniform(0, 0.05);
    v[i] = c.x + r * std::cos(th);
    v[n + i] = c.y + r * std::sin(th);
  }

  const double bin_w = dens_.grid().bin_w();
  double gamma = bin_w * 8.0;
  wl_.set_gamma(gamma);

  CompositeObjective& obj = *objective_;
  scheduler_->calibrate(v, "wirelength");

  GpResult result;
  numeric::CgOptions copts;
  copts.max_iters = opts_.inner_iters;
  copts.initial_step = 0.2 * bin_w;
  copts.deadline = opts_.deadline;
  copts.cancel = opts_.cancel;
  const numeric::CgSolver cg(copts);

  auto objective = [&obj](std::span<const double> vv, std::span<double> grad) {
    return obj.value_and_grad(vv, grad);
  };

  for (int outer = 0; outer < opts_.outer_iters; ++outer) {
    if (opts_.deadline.expired()) {
      result.deadline_hit = true;
      break;
    }
    if (opts_.cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    obs::Span outer_span("gp/outer");
    obs::counter("gp/outer_iters").inc();
    numeric::CgInfo cinfo;
    const int before = result.iterations;
    result.iterations +=
        cg.minimize(v, objective,
                    [](const numeric::CgState&, std::span<const double>) {
                      return true;
                    },
                    &cinfo);
    obs::counter("gp/iterations").add(
        static_cast<std::uint64_t>(std::max(result.iterations - before, 0)));
    result.diverged |= cinfo.diverged;
    result.deadline_hit |= cinfo.deadline_hit;
    result.cancelled |= cinfo.cancelled;
    obj.sample(outer);
    // v was rolled back to the last healthy iterate; doubling the density
    // weight and continuing from a poisoned trajectory rarely helps, so
    // hand off what we have.
    if (cinfo.diverged || cinfo.deadline_hit || cinfo.cancelled) break;
    const double overflow = dens_.overflow();
    if (outer >= 1 && overflow < opts_.stop_overflow) break;
    scheduler_->advance();  // NTUplace3-style outer ramp
    gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
    wl_.set_gamma(gamma);
  }

  result.overflow = dens_.overflow();
  result.hpwl = wl_.exact_hpwl(v);
  result.positions = std::move(v);
  result.trace = obj.trace();
  return result;
}

}  // namespace aplace::gp
