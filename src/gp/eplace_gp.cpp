#include "gp/eplace_gp.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "netlist/placement.hpp"
#include "numeric/fft.hpp"
#include "numeric/rng.hpp"

namespace aplace::gp {
namespace {

geom::Rect make_region(const netlist::Circuit& c, double utilization) {
  const double side = std::sqrt(c.total_device_area() / utilization);
  return {0, 0, side, side};
}

// Validate the density bin count and (by default) round it up to a power of
// two, which keeps ElectroDensity on the FFT-backed spectral path.
EPlaceGpOptions normalized(EPlaceGpOptions opts) {
  APLACE_CHECK_MSG(opts.bins >= 2, "ePlace-A needs >= 2 density bins");
  if (opts.pow2_bins && !numeric::fft::is_pow2(opts.bins)) {
    opts.bins = numeric::fft::next_pow2(opts.bins);
  }
  return opts;
}

// Mean absolute value over a vector (gradient magnitude proxy).
double mean_abs(const numeric::Vec& g) {
  double s = 0;
  for (double x : g) s += std::abs(x);
  return s / static_cast<double>(std::max<std::size_t>(g.size(), 1));
}

}  // namespace

EPlaceGlobalPlacer::EPlaceGlobalPlacer(const netlist::Circuit& circuit,
                                       EPlaceGpOptions opts)
    : circuit_(&circuit),
      opts_(normalized(opts)),
      region_(make_region(circuit, opts.utilization)),
      wl_owner_(opts.smoothing == WlSmoothing::WeightedAverage
                    ? std::unique_ptr<wirelength::SmoothWirelength>(
                          std::make_unique<wirelength::WaWirelength>(circuit))
                    : std::make_unique<wirelength::LseWirelength>(circuit)),
      wl_(*wl_owner_),
      area_(circuit),
      dens_(circuit, region_, opts_.bins, opts_.bins, opts_.target_density),
      pen_(circuit) {}

GpResult EPlaceGlobalPlacer::run() {
  // Multi-start: Nesterov trajectories from clustered inits are sensitive
  // to the initial jitter, so run a few deterministic seeds and keep the
  // best hand-off state. Each start is a few hundred cheap iterations; the
  // total stays far below the SA baseline's budget.
  GpResult best;
  double best_score = std::numeric_limits<double>::infinity();
  bool any_deadline_hit = false;
  for (int k = 0; k < opts_.num_starts; ++k) {
    // Keep whatever starts already finished when the budget runs out.
    if (k > 0 && opts_.deadline.expired()) {
      any_deadline_hit = true;
      break;
    }
    // Stream-split rather than additive (seed + stride*k) derivation: start
    // k must be independent of the start count and must not collide with
    // the candidate-level streams the flow splits from the same master.
    GpResult r =
        run_single(numeric::split_seed(opts_.seed, static_cast<std::uint64_t>(k)));
    any_deadline_hit |= r.deadline_hit;
    const std::size_t n = circuit_->num_devices();
    netlist::Placement pl(*circuit_);
    for (std::size_t i = 0; i < n; ++i) {
      pl.set_position(DeviceId{i}, {r.positions[i], r.positions[n + i]});
    }
    // Score the hand-off: wirelength + area + residual-overlap penalty (a
    // proxy for how much the ILP will have to distort it). When an extra
    // (GNN) term is installed, prefer hand-offs the model likes too.
    double score = pl.total_hpwl() + std::sqrt(pl.layout_area()) +
                   4.0 * pl.total_overlap_area();
    if (extra_) {
      numeric::Vec tmp(2 * n, 0.0);
      const double phi = extra_(r.positions, tmp);
      score *= 1.0 + phi;
    }
    if (score < best_score) {
      best_score = score;
      best = std::move(r);
    }
  }
  best.deadline_hit |= any_deadline_hit;
  return best;
}

GpResult EPlaceGlobalPlacer::run_single(std::uint64_t seed) {
  const std::size_t n = circuit_->num_devices();
  numeric::Vec v(2 * n);

  // Initial spread: golden-angle spiral around the region center (compact,
  // deterministic, no two devices exactly coincident).
  numeric::Rng rng(seed);
  const geom::Point c = region_.center();
  // Tight initial cluster: density overflow starts high (ePlace-like) so
  // the solver actually spreads + optimizes instead of stopping at once.
  const double r0 = 0.02 * region_.width();
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double r = r0 * std::sqrt(static_cast<double>(i) + 0.5);
    const double th = golden * static_cast<double>(i) + rng.uniform(0, 0.05);
    v[i] = c.x + r * std::cos(th);
    v[n + i] = c.y + r * std::sin(th);
  }

  // --- calibrate weights from initial gradient magnitudes -------------------
  const double bin_w = dens_.grid().bin_w();
  double gamma = bin_w * 8.0;
  wl_.set_gamma(gamma);
  area_.set_gamma(gamma);

  numeric::Vec g_wl(2 * n, 0.0), g_dens(2 * n, 0.0), g_sym(2 * n, 0.0),
      g_area(2 * n, 0.0);
  wl_.value_and_grad(v, g_wl);
  dens_.value_and_grad(v, g_dens, 1.0);
  pen_.symmetry(v, g_sym, 1.0);
  area_.value_and_grad(v, g_area, 1.0);
  const double mw = std::max(mean_abs(g_wl), 1e-12);
  auto rel_weight = [&](double rel, const numeric::Vec& g) {
    const double mg = mean_abs(g);
    return mg > 1e-12 ? rel * mw / mg : rel;
  };

  double lambda = rel_weight(opts_.lambda_rel, g_dens);
  double tau = rel_weight(opts_.tau_rel, g_sym);
  const double eta =
      opts_.eta_rel > 0 ? rel_weight(opts_.eta_rel, g_area) : 0.0;
  // Alignment/ordering/boundary share the symmetry scale heuristic: their
  // gradients are position-scale residuals like Sym's.
  double align_w = tau * opts_.align_rel / std::max(opts_.tau_rel, 1e-12);
  double order_w = tau * opts_.order_rel / std::max(opts_.tau_rel, 1e-12);
  // Boundary hinge: strong enough to dominate the wirelength pull within a
  // fraction of a bin of escaping the region.
  const double bound_w = opts_.boundary_rel * mw / bin_w;
  if (opts_.hard_symmetry) {
    tau *= 50.0;
    align_w *= 4.0;
    order_w *= 4.0;
    pen_.project_symmetry(v);
  }

  // Calibrate the extra (GNN) term against the wirelength gradient so its
  // forces are comparable regardless of model scale.
  double extra_scale = 1.0;
  if (extra_) {
    numeric::Vec g_extra(2 * n, 0.0);
    extra_(v, g_extra);
    extra_scale = rel_weight(opts_.extra_rel, g_extra);
  }

  // --- assemble the gradient oracle -----------------------------------------
  numeric::Vec g_tmp(2 * n);
  auto gradient = [&](std::span<const double> vv, std::span<double> grad) {
    std::fill(grad.begin(), grad.end(), 0.0);
    wl_.value_and_grad(vv, grad);
    dens_.value_and_grad(vv, grad, lambda);
    pen_.symmetry(vv, grad, tau);
    pen_.common_centroid(vv, grad, tau);
    if (eta > 0) area_.value_and_grad(vv, grad, eta);
    pen_.alignment(vv, grad, align_w);
    pen_.ordering(vv, grad, order_w);
    pen_.boundary(vv, grad, bound_w, region_);
    if (extra_) {
      std::fill(g_tmp.begin(), g_tmp.end(), 0.0);
      extra_(vv, g_tmp);
      numeric::axpy(extra_scale, g_tmp, grad);
    }
  };

  GpResult result;
  numeric::NesterovOptions nopts;
  nopts.max_iters = opts_.max_iters;
  nopts.initial_step = 0.1 * bin_w;
  nopts.deadline = opts_.deadline;
  numeric::NesterovSolver solver(nopts);
  numeric::NesterovInfo ninfo;

  double last_hpwl = wl_.exact_hpwl(v);
  // Track the best iterate seen: Nesterov is not a descent method, and the
  // density force keeps spreading devices after the wirelength-optimal
  // configuration has been passed. Any iterate with acceptable overflow is
  // a valid hand-off to the ILP detailed placer, so keep the best-scoring
  // one (HPWL + area, the same mix the DP optimizes).
  numeric::Vec best_v = v;
  double best_score = std::numeric_limits<double>::infinity();
  const double overflow_gate = std::max(0.35, opts_.stop_overflow);
  result.iterations = solver.minimize(
      v, gradient,
      [&](const numeric::NesterovState& st, std::span<const double> vv) {
        const double overflow = dens_.overflow();
        if (overflow <= overflow_gate) {
          const double area_now = area_.exact_area(vv);
          const double score =
              wl_.exact_hpwl(vv) + 0.5 * mw * std::sqrt(area_now);
          if (score < best_score) {
            best_score = score;
            best_v.assign(vv.begin(), vv.end());
          }
        }
        // Anneal smoothing with overflow; ramp penalty weights.
        gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
        wl_.set_gamma(gamma);
        area_.set_gamma(gamma);
        // ePlace-style self-adaptive density weight: lambda grows while the
        // wirelength is stable and *shrinks* when it deteriorates, keeping
        // the two forces balanced throughout the run.
        const double hpwl = wl_.exact_hpwl(vv);
        const double rel = (hpwl - last_hpwl) / std::max(last_hpwl, 1e-9);
        last_hpwl = hpwl;
        const double exponent = std::clamp(1.0 - rel / 0.01, -3.0, 1.0);
        lambda *= std::pow(opts_.lambda_growth, exponent);
        if (!opts_.hard_symmetry) {
          tau *= opts_.tau_growth;
          align_w *= opts_.tau_growth;
          order_w *= opts_.tau_growth;
        }
        // A minimum iteration count lets wirelength/area optimization act
        // even when the initial state is accidentally overlap-free.
        return st.iter < opts_.min_iters || overflow >= opts_.stop_overflow;
      },
      &ninfo);
  result.diverged |= ninfo.diverged;
  result.deadline_hit |= ninfo.deadline_hit;

  if (best_score < std::numeric_limits<double>::infinity()) v = best_v;

  // --- phase 2: spreading ----------------------------------------------------
  // Restart from the best wirelength-quality iterate and drive the overlap
  // down with a monotone density ramp (classic ePlace schedule). The best
  // low-overflow iterate becomes the hand-off to the detailed placer, whose
  // pair directions are only reliable when residual overlap is small.
  if (!opts_.deadline.expired()) {
    numeric::Vec g0(2 * n, 0.0);
    dens_.value_and_grad(v, g0, 1.0);  // refresh overflow at the restart
    double best2_score = std::numeric_limits<double>::infinity();
    numeric::Vec best2_v = v;
    const double gate2 = 0.16;
    numeric::NesterovOptions n2 = nopts;
    n2.max_iters = opts_.max_iters / 2;
    const numeric::NesterovSolver spread(n2);
    numeric::NesterovInfo sinfo;
    result.iterations += spread.minimize(
        v, gradient,
        [&](const numeric::NesterovState& st, std::span<const double> vv) {
          const double overflow = dens_.overflow();
          if (overflow <= gate2) {
            const double score = wl_.exact_hpwl(vv) +
                                 0.5 * mw * std::sqrt(area_.exact_area(vv));
            if (score < best2_score) {
              best2_score = score;
              best2_v.assign(vv.begin(), vv.end());
            }
          }
          gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
          wl_.set_gamma(gamma);
          area_.set_gamma(gamma);
          lambda *= opts_.lambda_growth;  // monotone ramp: legality first
          return st.iter < 10 || overflow >= opts_.stop_overflow;
        },
        &sinfo);
    result.diverged |= sinfo.diverged;
    result.deadline_hit |= sinfo.deadline_hit;
    if (best2_score < std::numeric_limits<double>::infinity()) v = best2_v;
  } else {
    result.deadline_hit = true;
  }

  if (opts_.hard_symmetry) pen_.project_symmetry(v);
  result.overflow = dens_.overflow();
  result.hpwl = wl_.exact_hpwl(v);
  result.positions = std::move(v);
  return result;
}

}  // namespace aplace::gp
