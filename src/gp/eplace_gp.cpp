#include "gp/eplace_gp.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include <algorithm>

#include "netlist/placement.hpp"
#include "numeric/fft.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::gp {
namespace {

geom::Rect make_region(const netlist::CompiledCircuit& cc,
                       double utilization) {
  const double side = std::sqrt(cc.total_device_area() / utilization);
  return {0, 0, side, side};
}

// Validate the density bin count and (by default) round it up to a power of
// two, which keeps ElectroDensity on the FFT-backed spectral path.
EPlaceGpOptions normalized(EPlaceGpOptions opts) {
  APLACE_CHECK_MSG(opts.bins >= 2, "ePlace-A needs >= 2 density bins");
  if (opts.pow2_bins && !numeric::fft::is_pow2(opts.bins)) {
    opts.bins = numeric::fft::next_pow2(opts.bins);
  }
  return opts;
}

}  // namespace

EPlaceGlobalPlacer::EPlaceGlobalPlacer(const netlist::CompiledCircuit& compiled,
                                       EPlaceGpOptions opts)
    : circuit_(&compiled.circuit()),
      compiled_(&compiled),
      opts_(normalized(opts)),
      region_(make_region(compiled, opts.utilization)),
      wl_owner_(opts.smoothing == WlSmoothing::WeightedAverage
                    ? std::unique_ptr<wirelength::SmoothWirelength>(
                          std::make_unique<wirelength::WaWirelength>(compiled))
                    : std::make_unique<wirelength::LseWirelength>(compiled)),
      wl_(*wl_owner_),
      area_(compiled),
      dens_(compiled, region_, opts_.bins, opts_.bins, opts_.target_density),
      pen_(compiled) {}

EPlaceGlobalPlacer::EPlaceGlobalPlacer(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    EPlaceGpOptions opts)
    : EPlaceGlobalPlacer(*compiled, opts) {
  keep_ = std::move(compiled);
}

EPlaceGlobalPlacer::EPlaceGlobalPlacer(const netlist::Circuit& circuit,
                                       EPlaceGpOptions opts)
    : EPlaceGlobalPlacer(
          std::make_shared<const netlist::CompiledCircuit>(circuit), opts) {}

void EPlaceGlobalPlacer::set_extra_term(ExtraTerm term) {
  extra_ = std::make_shared<FunctionTerm>("extra", std::move(term));
}

void EPlaceGlobalPlacer::set_extra_term(std::shared_ptr<ObjectiveTerm> term) {
  extra_ = std::move(term);
}

void EPlaceGlobalPlacer::build_objective() {
  objective_ =
      std::make_unique<CompositeObjective>(2 * circuit_->num_devices());
  CompositeObjective& obj = *objective_;
  // Registration order IS the accumulation order; keep wirelength first
  // (the calibration reference) and the extra term last.
  obj.add_term(std::make_shared<SmoothWirelengthTerm>(wl_, "wirelength"));
  obj.add_term(std::make_shared<ElectroDensityTerm>(dens_));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Symmetry));
  obj.add_term(
      std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::CommonCentroid));
  // The area term stays registered (visible in traces) even when disabled
  // by eta_rel <= 0 — the Fig. 2 ablation flips `enabled`, nothing else.
  obj.add_term(std::make_shared<SmoothAreaTerm>(area_), 0.0,
               opts_.eta_rel > 0);
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Alignment));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, PenaltyTerm::Kind::Ordering));
  obj.add_term(std::make_shared<PenaltyTerm>(pen_, region_));
  if (extra_) obj.add_term(extra_);

  scheduler_ = std::make_unique<WeightScheduler>(obj);
  using Rule = WeightScheduler::Rule;
  scheduler_->set_rule("wirelength",
                       {.init = Rule::Init::Fixed, .rel = 1.0});
  // Density growth is self-adaptive (exponent computed per iteration in the
  // solver callback), so its rule carries no static growth factor.
  scheduler_->set_rule("density", {.init = Rule::Init::RelToRefGrad,
                                   .rel = opts_.lambda_rel});
  scheduler_->set_rule("symmetry", {.init = Rule::Init::RelToRefGrad,
                                    .rel = opts_.tau_rel,
                                    .growth = opts_.tau_growth});
  scheduler_->set_rule("common-centroid", {.init = Rule::Init::TiedTo,
                                           .rel = opts_.tau_rel,
                                           .tied_to = "symmetry",
                                           .tied_rel = opts_.tau_rel,
                                           .growth = opts_.tau_growth});
  scheduler_->set_rule("area", {.init = Rule::Init::RelToRefGrad,
                                .rel = opts_.eta_rel});
  // Alignment/ordering share the symmetry scale heuristic: their gradients
  // are position-scale residuals like Sym's.
  scheduler_->set_rule("alignment", {.init = Rule::Init::TiedTo,
                                     .rel = opts_.align_rel,
                                     .tied_to = "symmetry",
                                     .tied_rel = opts_.tau_rel,
                                     .growth = opts_.tau_growth});
  scheduler_->set_rule("ordering", {.init = Rule::Init::TiedTo,
                                    .rel = opts_.order_rel,
                                    .tied_to = "symmetry",
                                    .tied_rel = opts_.tau_rel,
                                    .growth = opts_.tau_growth});
  // Boundary hinge: strong enough to dominate the wirelength pull within a
  // fraction of a bin of escaping the region.
  scheduler_->set_rule("boundary", {.init = Rule::Init::RefOverScale,
                                    .rel = opts_.boundary_rel,
                                    .scale_div = dens_.grid().bin_w()});
  if (extra_) {
    // Calibrate the extra (GNN) term against the wirelength gradient so its
    // forces are comparable regardless of model scale.
    scheduler_->set_rule(std::string(extra_->name()),
                         {.init = Rule::Init::RelToRefGrad,
                          .rel = opts_.extra_rel});
  }
}

GpResult EPlaceGlobalPlacer::run() {
  build_objective();
  // Multi-start: Nesterov trajectories from clustered inits are sensitive
  // to the initial jitter, so run a few deterministic seeds and keep the
  // best hand-off state. Each start is a few hundred cheap iterations; the
  // total stays far below the SA baseline's budget.
  GpResult best;
  double best_score = std::numeric_limits<double>::infinity();
  bool any_deadline_hit = false;
  bool any_cancelled = false;
  for (int k = 0; k < opts_.num_starts; ++k) {
    // Keep whatever starts already finished when the budget runs out.
    if (k > 0 && (opts_.deadline.expired() || opts_.cancel.cancelled())) {
      any_deadline_hit = true;
      break;
    }
    // Stream-split rather than additive (seed + stride*k) derivation: start
    // k must be independent of the start count and must not collide with
    // the candidate-level streams the flow splits from the same master.
    GpResult r = [&] {
      obs::Span span("gp/start");
      return run_single(
          numeric::split_seed(opts_.seed, static_cast<std::uint64_t>(k)));
    }();
    obs::counter("gp/starts").inc();
    obs::counter("gp/iterations").add(static_cast<std::uint64_t>(
        std::max(r.iterations, 0)));
    any_deadline_hit |= r.deadline_hit;
    any_cancelled |= r.cancelled;
    const std::size_t n = circuit_->num_devices();
    netlist::Placement pl(*circuit_);
    for (std::size_t i = 0; i < n; ++i) {
      pl.set_position(DeviceId{i}, {r.positions[i], r.positions[n + i]});
    }
    // Score the hand-off: wirelength + area + residual-overlap penalty (a
    // proxy for how much the ILP will have to distort it). When an extra
    // (GNN) term is installed, prefer hand-offs the model likes too.
    double score = pl.total_hpwl() + std::sqrt(pl.layout_area()) +
                   4.0 * pl.total_overlap_area();
    if (extra_) {
      numeric::Vec tmp(2 * n, 0.0);
      const double phi = extra_->value_and_grad(r.positions, tmp, 1.0);
      score *= 1.0 + phi;
    }
    if (score < best_score) {
      best_score = score;
      best = std::move(r);
    }
  }
  best.deadline_hit |= any_deadline_hit;
  best.cancelled |= any_cancelled || opts_.cancel.cancelled();
  // The trace accumulates over every start; the samples belong to whichever
  // start ran last, the counters to the whole run.
  best.trace = objective_->trace();
  return best;
}

GpResult EPlaceGlobalPlacer::run_single(std::uint64_t seed) {
  const std::size_t n = circuit_->num_devices();
  numeric::Vec v(2 * n);

  // Initial spread: golden-angle spiral around the region center (compact,
  // deterministic, no two devices exactly coincident).
  numeric::Rng rng(seed);
  const geom::Point c = region_.center();
  // Tight initial cluster: density overflow starts high (ePlace-like) so
  // the solver actually spreads + optimizes instead of stopping at once.
  const double r0 = 0.02 * region_.width();
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double r = r0 * std::sqrt(static_cast<double>(i) + 0.5);
    const double th = golden * static_cast<double>(i) + rng.uniform(0, 0.05);
    v[i] = c.x + r * std::cos(th);
    v[n + i] = c.y + r * std::sin(th);
  }

  // --- calibrate weights from initial gradient magnitudes -------------------
  const double bin_w = dens_.grid().bin_w();
  double gamma = bin_w * 8.0;
  wl_.set_gamma(gamma);
  area_.set_gamma(gamma);

  CompositeObjective& obj = *objective_;
  const double mw = scheduler_->calibrate(v, "wirelength");
  if (opts_.hard_symmetry) {
    // Rigid symmetry: 50x weight held flat (no growth), stiffer
    // alignment/ordering, plus projection onto the symmetric set.
    obj.scale_weight("symmetry", 50.0);
    obj.scale_weight("common-centroid", 50.0);
    obj.scale_weight("alignment", 4.0);
    obj.scale_weight("ordering", 4.0);
    pen_.project_symmetry(v);
  }

  auto gradient = [&obj](std::span<const double> vv, std::span<double> grad) {
    obj.value_and_grad(vv, grad);
  };

  GpResult result;
  numeric::NesterovOptions nopts;
  nopts.max_iters = opts_.max_iters;
  nopts.initial_step = 0.1 * bin_w;
  nopts.deadline = opts_.deadline;
  nopts.cancel = opts_.cancel;
  numeric::NesterovSolver solver(nopts);
  numeric::NesterovInfo ninfo;

  double last_hpwl = wl_.exact_hpwl(v);
  // Track the best iterate seen: Nesterov is not a descent method, and the
  // density force keeps spreading devices after the wirelength-optimal
  // configuration has been passed. Any iterate with acceptable overflow is
  // a valid hand-off to the ILP detailed placer, so keep the best-scoring
  // one (HPWL + area, the same mix the DP optimizes).
  numeric::Vec best_v = v;
  double best_score = std::numeric_limits<double>::infinity();
  const double overflow_gate = std::max(0.35, opts_.stop_overflow);
  result.iterations = solver.minimize(
      v, gradient,
      [&](const numeric::NesterovState& st, std::span<const double> vv) {
        const double overflow = dens_.overflow();
        if (overflow <= overflow_gate) {
          const double area_now = area_.exact_area(vv);
          const double score =
              wl_.exact_hpwl(vv) + 0.5 * mw * std::sqrt(area_now);
          if (score < best_score) {
            best_score = score;
            best_v.assign(vv.begin(), vv.end());
          }
        }
        // Anneal smoothing with overflow; ramp penalty weights.
        gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
        wl_.set_gamma(gamma);
        area_.set_gamma(gamma);
        // ePlace-style self-adaptive density weight: lambda grows while the
        // wirelength is stable and *shrinks* when it deteriorates, keeping
        // the two forces balanced throughout the run.
        const double hpwl = wl_.exact_hpwl(vv);
        const double rel = (hpwl - last_hpwl) / std::max(last_hpwl, 1e-9);
        last_hpwl = hpwl;
        const double exponent = std::clamp(1.0 - rel / 0.01, -3.0, 1.0);
        scheduler_->advance("density",
                            std::pow(opts_.lambda_growth, exponent));
        if (!opts_.hard_symmetry) scheduler_->advance();
        obj.sample(st.iter);
        // A minimum iteration count lets wirelength/area optimization act
        // even when the initial state is accidentally overlap-free.
        return st.iter < opts_.min_iters || overflow >= opts_.stop_overflow;
      },
      &ninfo);
  result.diverged |= ninfo.diverged;
  result.deadline_hit |= ninfo.deadline_hit;
  result.cancelled |= ninfo.cancelled;

  if (best_score < std::numeric_limits<double>::infinity()) v = best_v;

  // --- phase 2: spreading ----------------------------------------------------
  // Restart from the best wirelength-quality iterate and drive the overlap
  // down with a monotone density ramp (classic ePlace schedule). The best
  // low-overflow iterate becomes the hand-off to the detailed placer, whose
  // pair directions are only reliable when residual overlap is small.
  if (!opts_.deadline.expired() && !opts_.cancel.cancelled()) {
    // Refresh overflow at the restart point (best_v, not the last iterate).
    obj.probe_grad_magnitude(obj.index_of("density"), v);
    double best2_score = std::numeric_limits<double>::infinity();
    numeric::Vec best2_v = v;
    const double gate2 = 0.16;
    numeric::NesterovOptions n2 = nopts;
    n2.max_iters = opts_.max_iters / 2;
    const numeric::NesterovSolver spread(n2);
    numeric::NesterovInfo sinfo;
    const int phase1_iters = result.iterations;
    result.iterations += spread.minimize(
        v, gradient,
        [&](const numeric::NesterovState& st, std::span<const double> vv) {
          const double overflow = dens_.overflow();
          if (overflow <= gate2) {
            const double score = wl_.exact_hpwl(vv) +
                                 0.5 * mw * std::sqrt(area_.exact_area(vv));
            if (score < best2_score) {
              best2_score = score;
              best2_v.assign(vv.begin(), vv.end());
            }
          }
          gamma = bin_w * (0.5 + 8.0 * std::clamp(overflow, 0.0, 1.0));
          wl_.set_gamma(gamma);
          area_.set_gamma(gamma);
          // Monotone density ramp: legality first.
          scheduler_->advance("density", opts_.lambda_growth);
          obj.sample(phase1_iters + st.iter);
          return st.iter < 10 || overflow >= opts_.stop_overflow;
        },
        &sinfo);
    result.diverged |= sinfo.diverged;
    result.deadline_hit |= sinfo.deadline_hit;
    result.cancelled |= sinfo.cancelled;
    if (best2_score < std::numeric_limits<double>::infinity()) v = best2_v;
  } else if (opts_.cancel.cancelled()) {
    result.cancelled = true;
  } else {
    result.deadline_hit = true;
  }

  if (opts_.hard_symmetry) pen_.project_symmetry(v);
  result.overflow = dens_.overflow();
  result.hpwl = wl_.exact_hpwl(v);
  result.positions = std::move(v);
  return result;
}

}  // namespace aplace::gp
