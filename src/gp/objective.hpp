#pragma once
// Composable objective-term layer shared by both analytical global placers.
//
// The paper's central comparison (Tables 3-5, Fig. 2) is a comparison of
// *objective compositions*: WA vs. LSE wirelength, electrostatic vs.
// bell-shaped density, with/without the area term, plus the GNN extra term
// of the performance-driven variants. This module makes that composition a
// first-class object instead of a hand-rolled gradient lambda per placer:
//
//   * ObjectiveTerm       — one named term: value + gradient at v, plus a
//                           cheap/expensive cost hint.
//   * CompositeObjective  — ordered list of weighted terms. Evaluates them
//                           in sequence into the caller's gradient buffer
//                           (allocation-free after construction; the
//                           underlying kernels keep their own thread-pool
//                           parallelism) and records per-term observability:
//                           eval counts, wall time, last value/grad-norm.
//   * WeightScheduler     — centralizes the initial-gradient-magnitude
//                           weight calibration and the per-iteration growth
//                           rules previously duplicated across the two
//                           placers.
//   * TermTrace           — the per-term instrumentation snapshot threaded
//                           through GpResult/FlowResult into the bench JSON.
//
// Adapters at the bottom of this header wrap the existing kernels
// (SmoothWirelength, ElectroDensity, BellDensity, WaAreaTerm, each
// ConstraintPenalties family, and an arbitrary value-and-grad functor for
// the GNN term) without changing their math: a composite built to mirror
// the old lambdas accumulates the same contributions in the same order.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "density/bell.hpp"
#include "density/electro.hpp"
#include "geom/rect.hpp"
#include "gp/penalties.hpp"
#include "numeric/vec.hpp"
#include "wirelength/area_term.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {

/// Rough per-evaluation cost of a term, used by callers that want to
/// subsample expensive terms (and by the trace printer for ordering).
enum class TermCost : std::uint8_t {
  Cheap,      ///< O(n) or O(constraints): penalties, boundary
  Moderate,   ///< O(pins) / O(n * support): wirelength, bell density, area
  Expensive,  ///< spectral solve / GNN forward+backward
};

[[nodiscard]] constexpr const char* to_string(TermCost c) {
  switch (c) {
    case TermCost::Cheap: return "cheap";
    case TermCost::Moderate: return "moderate";
    case TermCost::Expensive: return "expensive";
  }
  return "?";
}

/// One differentiable objective term f_i(v). Implementations ADD
/// scale * df_i/dv into `grad` and return the raw (unscaled) value f_i(v).
class ObjectiveTerm {
 public:
  virtual ~ObjectiveTerm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual TermCost cost() const { return TermCost::Cheap; }

  /// Evaluate at v = (x.., y..); add scale * gradient into grad (same
  /// size); return the raw term value.
  virtual double value_and_grad(std::span<const double> v,
                                std::span<double> grad, double scale) = 0;
};

/// Cumulative per-term observability counters plus the latest sample.
struct TermStats {
  std::string name;
  TermCost cost = TermCost::Cheap;
  std::uint64_t evals = 0;   ///< value_and_grad calls (incl. calibration)
  double seconds = 0;        ///< wall time spent inside the term
  double value = 0;          ///< raw value at the last evaluation
  double grad_norm = 0;      ///< mean-abs of the last weighted contribution
  double weight = 0;         ///< current scheduled weight
};

/// Per-term instrumentation of one GP run: cumulative totals plus a
/// decimated per-outer-iteration history (so long Nesterov runs stay
/// bounded). Threaded through GpResult -> FlowResult -> bench JSON.
struct TermTrace {
  /// One sampled outer iteration: parallel arrays over `terms`.
  struct Sample {
    int iter = 0;
    std::vector<double> values;
    std::vector<double> weights;
    std::vector<double> grad_norms;
  };

  std::vector<TermStats> terms;
  std::vector<Sample> samples;
  int sample_stride = 1;  ///< samples kept every `stride` sample() calls

  [[nodiscard]] bool empty() const { return terms.empty(); }
  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] const TermStats* find(std::string_view name) const;

  /// Fold another run's trace into this one (candidate/multi-start
  /// aggregation): eval counts and seconds add up; value/grad-norm/weight
  /// and the sample history keep this trace's (the winner's) data. Terms
  /// are matched by name; unmatched terms are appended.
  void merge_counts(const TermTrace& other);
};

/// Fold a finished run's trace into the global obs::MetricsRegistry —
/// per-term eval counters ("gp/term/<name>/evals") and per-run seconds
/// histograms ("gp/term/<name>/run_seconds"). Call once per flow on the
/// final (merged) trace; a no-op when observability is disabled.
void publish_trace_metrics(const TermTrace& trace);

/// Ordered weighted sum F(v) = sum_i w_i f_i(v) with per-term stats.
///
/// The hot path is allocation-free: terms write scale=w_i gradients
/// directly into the caller's buffer (exactly what the hand-rolled lambdas
/// did), and the per-term gradient-norm probe reuses one scratch snapshot
/// owned by the composite. Evaluation order == registration order, so a
/// composite mirroring an old lambda reproduces its floating-point result.
class CompositeObjective {
 public:
  explicit CompositeObjective(std::size_t num_vars);

  /// Register a term (evaluation order = registration order). Returns the
  /// term index. `weight` is the initial weight; `enabled` = false keeps
  /// the term registered (visible in traces) but never evaluated.
  std::size_t add_term(std::shared_ptr<ObjectiveTerm> term,
                       double weight = 1.0, bool enabled = true);

  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }
  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }

  [[nodiscard]] std::size_t index_of(std::string_view name) const;
  [[nodiscard]] bool has_term(std::string_view name) const;

  [[nodiscard]] double weight(std::string_view name) const;
  void set_weight(std::string_view name, double w);
  void scale_weight(std::string_view name, double factor);
  [[nodiscard]] bool enabled(std::string_view name) const;
  void set_enabled(std::string_view name, bool enabled);

  /// F(v) and its gradient: zeroes `grad`, then accumulates every enabled
  /// term in registration order with its current weight. Returns the
  /// weighted total sum_i w_i f_i(v).
  double value_and_grad(std::span<const double> v, std::span<double> grad);

  /// Probe one term's raw gradient magnitude (mean-abs of df_i/dv at v)
  /// without touching any caller state; used by weight calibration.
  double probe_grad_magnitude(std::size_t term_index,
                              std::span<const double> v);

  /// Record one per-outer-iteration sample of (value, weight, grad-norm)
  /// for every term. The history is decimated (stride doubling) once it
  /// exceeds `max_samples`, keeping memory bounded on long runs.
  void sample(int iter);

  [[nodiscard]] const TermTrace& trace() const { return trace_; }
  /// Reset eval counts, seconds and the sample history (weights stay).
  void reset_trace();

  /// Per-eval gradient-norm probing costs two extra O(n) passes per term;
  /// it is on by default (the benches want it) but can be disabled for
  /// pure speed runs.
  void set_observe_grad_norms(bool on) { observe_grad_norms_ = on; }

  static constexpr int kMaxSamples = 96;

 private:
  struct Entry {
    std::shared_ptr<ObjectiveTerm> term;
    double weight = 1.0;
    bool enabled = true;
  };

  [[nodiscard]] std::size_t must_find(std::string_view name) const;

  std::size_t num_vars_;
  std::vector<Entry> terms_;
  TermTrace trace_;
  numeric::Vec scratch_;  ///< grad snapshot for the grad-norm probe
  bool observe_grad_norms_ = true;
  int sample_calls_ = 0;
};

/// Centralized weight calibration + growth scheduling.
///
/// Initial weights come from gradient magnitudes at the starting point v0
/// (the rule both placers previously duplicated):
///
///   RelToRefGrad:  w = rel * |g_ref| / |g_own|   (fallback: rel when the
///                  own-gradient magnitude vanishes)
///   TiedTo:        w = w(master) * rel / max(master_rel, 1e-12), and the
///                  weight is *stored* (not recomputed), so subsequent
///                  growth applies to it independently — exactly the old
///                  align/order derivation from tau.
///   RefOverScale:  w = rel * |g_ref| / scale_div  (boundary hinge: strong
///                  enough to beat the wirelength pull within a fraction
///                  of a bin, no own-gradient normalization)
///   Fixed:         w = rel verbatim (the reference wirelength term, w=1)
///
/// Per-iteration growth: advance() multiplies every term's weight by its
/// rule's growth factor; advance(name, factor) applies a caller-computed
/// factor (ePlace's self-adaptive lambda exponent).
class WeightScheduler {
 public:
  struct Rule {
    enum class Init : std::uint8_t { Fixed, RelToRefGrad, TiedTo, RefOverScale };
    Init init = Init::RelToRefGrad;
    double rel = 1.0;
    std::string tied_to;    ///< TiedTo: master term name
    double tied_rel = 1.0;  ///< TiedTo: master's rel (the denominator)
    double scale_div = 1.0; ///< RefOverScale: length scale divisor
    double growth = 1.0;    ///< multiplicative factor per advance()
  };

  explicit WeightScheduler(CompositeObjective& objective)
      : obj_(&objective) {}

  void set_rule(std::string term, Rule rule);
  [[nodiscard]] const Rule* rule(std::string_view term) const;

  /// Assign every ruled term's initial weight from gradient magnitudes at
  /// v0. `ref` names the reference term (its magnitude is the numerator;
  /// disabled terms are skipped). Probes each RelToRefGrad term once.
  /// Returns the clamped reference magnitude max(|g_ref|, 1e-12) — the
  /// placers reuse it as their length/score scale.
  double calibrate(std::span<const double> v0, std::string_view ref);

  /// w *= growth for every ruled term whose growth != 1.
  void advance();
  /// w *= factor for one term (self-adaptive schedules).
  void advance(std::string_view term, double factor);

 private:
  CompositeObjective* obj_;
  std::vector<std::pair<std::string, Rule>> rules_;
};

// ---- kernel adapters --------------------------------------------------------

/// WA or LSE smoothed wirelength (weight is 1 in both placers; non-unit
/// scales go through an internal scratch buffer).
class SmoothWirelengthTerm final : public ObjectiveTerm {
 public:
  SmoothWirelengthTerm(wirelength::SmoothWirelength& wl, std::string name)
      : wl_(&wl), name_(std::move(name)) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] TermCost cost() const override { return TermCost::Moderate; }
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override;

 private:
  wirelength::SmoothWirelength* wl_;
  std::string name_;
  numeric::Vec scratch_;
};

/// Electrostatic potential energy (ePlace density).
class ElectroDensityTerm final : public ObjectiveTerm {
 public:
  explicit ElectroDensityTerm(density::ElectroDensity& dens) : dens_(&dens) {}
  [[nodiscard]] std::string_view name() const override { return "density"; }
  [[nodiscard]] TermCost cost() const override { return TermCost::Expensive; }
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override {
    return dens_->value_and_grad(v, grad, scale);
  }

 private:
  density::ElectroDensity* dens_;
};

/// Bell-shaped density penalty (NTUplace3-style prior work).
class BellDensityTerm final : public ObjectiveTerm {
 public:
  explicit BellDensityTerm(density::BellDensity& dens) : dens_(&dens) {}
  [[nodiscard]] std::string_view name() const override { return "density"; }
  [[nodiscard]] TermCost cost() const override { return TermCost::Moderate; }
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override {
    return dens_->value_and_grad(v, grad, scale);
  }

 private:
  density::BellDensity* dens_;
};

/// Smoothed bounding-box area WA_x * WA_y (ePlace-A only; Fig. 2).
class SmoothAreaTerm final : public ObjectiveTerm {
 public:
  explicit SmoothAreaTerm(wirelength::WaAreaTerm& area) : area_(&area) {}
  [[nodiscard]] std::string_view name() const override { return "area"; }
  [[nodiscard]] TermCost cost() const override { return TermCost::Moderate; }
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override {
    return area_->value_and_grad(v, grad, scale);
  }

 private:
  wirelength::WaAreaTerm* area_;
};

/// One ConstraintPenalties family as a term.
class PenaltyTerm final : public ObjectiveTerm {
 public:
  enum class Kind : std::uint8_t {
    Symmetry,
    CommonCentroid,
    Alignment,
    Ordering,
    Boundary,
  };

  /// Non-boundary families.
  PenaltyTerm(const ConstraintPenalties& pen, Kind kind);
  /// Boundary hinge (needs the placement region).
  PenaltyTerm(const ConstraintPenalties& pen, const geom::Rect& region);

  [[nodiscard]] std::string_view name() const override;
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override;

 private:
  const ConstraintPenalties* pen_;
  Kind kind_;
  geom::Rect region_{};
};

/// Arbitrary value-and-grad functor (the GNN extra term's legacy hook and
/// the test seam). The functor ADDS its raw gradient to the span it is
/// given; the adapter applies the scale through an internal scratch buffer,
/// mirroring the old extra-term handling in both placers.
class FunctionTerm final : public ObjectiveTerm {
 public:
  using Fn = std::function<double(std::span<const double> v,
                                  std::span<double> grad)>;

  FunctionTerm(std::string name, Fn fn, TermCost cost = TermCost::Expensive)
      : name_(std::move(name)), fn_(std::move(fn)), cost_(cost) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] TermCost cost() const override { return cost_; }
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override;

 private:
  std::string name_;
  Fn fn_;
  TermCost cost_;
  numeric::Vec scratch_;
};

}  // namespace aplace::gp
