#pragma once
// Options shared by both analytical global placers. EPlaceGpOptions and
// NtuGpOptions extend this struct, so call sites keep flat field access
// (opts.gp.seed, opts.gp.utilization, ...) while the common knobs are
// declared — and documented — exactly once.

#include <cstddef>
#include <cstdint>

#include "base/cancel.hpp"
#include "base/deadline.hpp"

namespace aplace::gp {

struct GpCommonOptions {
  std::size_t bins = 32;        ///< density bins per side
  double utilization = 0.55;    ///< region side = sqrt(total area / util)
  double target_density = 0.85; ///< bin capacity fraction
  /// Stop once density overflow drops below this (the detailed placer
  /// removes the residual). ePlace-A hands off earlier (0.18 default); the
  /// prior-work flow runs its outer loop down to 0.07.
  double stop_overflow = 0.18;

  double tau_rel = 0.04;      ///< initial symmetry weight (vs. WL gradient)
  double tau_growth = 1.04;   ///< symmetry/alignment/ordering growth per
                              ///< outer iteration (1.5 for prior work)
  double align_rel = 0.08;    ///< alignment weight, tied to the tau scale
  double order_rel = 0.08;    ///< ordering weight, tied to the tau scale
  double boundary_rel = 2.0;  ///< boundary hinge vs. WL gradient per bin
  double extra_rel = 2.0;     ///< extra-term (GNN) weight vs. WL gradient

  std::uint64_t seed = 3;  ///< initial-spread jitter
  /// Wall-clock budget shared with the rest of the flow.
  Deadline deadline;
  /// Cooperative cancellation, polled wherever the deadline is polled
  /// (multi-start loop, outer loop, every inner solver iteration).
  base::CancelToken cancel;
};

}  // namespace aplace::gp
