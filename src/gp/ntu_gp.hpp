#pragma once
// Prior-work analytical global placement (Xu et al. ISPD'19 [11], built on
// the NTUplace3 framework [10]).
//
// Differences from ePlace-A, deliberately preserved because they are the
// paper's explanation for the quality gap (Sec. IV-C):
//   (1) no explicit area term in the objective;
//   (2) LSE wirelength smoothing instead of WA;
//   (3) conjugate-gradient solver with a bell-shaped density penalty and an
//       outer loop that doubles the density weight (NTUplace3 style) instead
//       of the Nesterov + electrostatics machinery.

#include <functional>

#include "base/deadline.hpp"
#include "density/bell.hpp"
#include "gp/eplace_gp.hpp"  // GpResult
#include "gp/penalties.hpp"
#include "netlist/circuit.hpp"
#include "numeric/cg.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {

struct NtuGpOptions {
  std::size_t bins = 32;
  double utilization = 0.55;
  double target_density = 0.85;
  double stop_overflow = 0.07;
  int outer_iters = 10;   ///< density-weight doublings
  int inner_iters = 60;   ///< CG iterations per outer round
  double beta_rel = 0.03; ///< initial density weight vs. WL gradient
  double tau_rel = 0.04;  ///< symmetry weight
  double align_rel = 0.08;
  double order_rel = 0.08;
  double extra_rel = 2.0;  ///< extra-term (GNN) weight vs. WL gradient
  std::uint64_t seed = 3;
  /// Wall-clock budget: checked between outer rounds and inside CG.
  Deadline deadline;
};

class PriorAnalyticalGlobalPlacer {
 public:
  using ExtraTerm = std::function<double(std::span<const double> v,
                                         std::span<double> grad)>;

  PriorAnalyticalGlobalPlacer(const netlist::Circuit& circuit,
                              NtuGpOptions opts);

  /// Used by the Perf* extension (paper Table V): adds alpha * Phi to the
  /// objective via its value and gradient.
  void set_extra_term(ExtraTerm term) { extra_ = std::move(term); }

  [[nodiscard]] const geom::Rect& region() const { return region_; }

  [[nodiscard]] GpResult run();

 private:
  const netlist::Circuit* circuit_;
  NtuGpOptions opts_;
  geom::Rect region_;
  wirelength::LseWirelength wl_;
  density::BellDensity dens_;
  ConstraintPenalties pen_;
  ExtraTerm extra_;
};

}  // namespace aplace::gp
