#pragma once
// Prior-work analytical global placement (Xu et al. ISPD'19 [11], built on
// the NTUplace3 framework [10]).
//
// Differences from ePlace-A, deliberately preserved because they are the
// paper's explanation for the quality gap (Sec. IV-C):
//   (1) no explicit area term in the objective;
//   (2) LSE wirelength smoothing instead of WA;
//   (3) conjugate-gradient solver with a bell-shaped density penalty and an
//       outer loop that doubles the density weight (NTUplace3 style) instead
//       of the Nesterov + electrostatics machinery.
//
// Like ePlace-A the objective is a gp::CompositeObjective; only the term
// choices and the WeightScheduler growth rules differ.

#include <functional>
#include <memory>

#include "density/bell.hpp"
#include "gp/eplace_gp.hpp"  // GpResult
#include "gp/gp_options.hpp"
#include "gp/objective.hpp"
#include "gp/penalties.hpp"
#include "netlist/compiled.hpp"
#include "numeric/cg.hpp"
#include "wirelength/smooth_wl.hpp"

namespace aplace::gp {

struct NtuGpOptions : GpCommonOptions {
  NtuGpOptions() {
    // The outer loop iterates all the way down to DP hand-off quality, and
    // ramps much harder per round than ePlace-A does per iteration.
    stop_overflow = 0.07;
    tau_growth = 1.5;
  }

  int outer_iters = 10;    ///< density-weight doublings
  int inner_iters = 60;    ///< CG iterations per outer round
  double beta_rel = 0.03;  ///< initial density weight vs. WL gradient
  double beta_growth = 2.0;  ///< density ramp per outer round
};

class PriorAnalyticalGlobalPlacer {
 public:
  using ExtraTerm = std::function<double(std::span<const double> v,
                                         std::span<double> grad)>;

  /// Borrow a compiled snapshot the caller keeps alive.
  PriorAnalyticalGlobalPlacer(const netlist::CompiledCircuit& compiled,
                              NtuGpOptions opts);
  /// Share ownership of a compiled snapshot (flow/batch cache path).
  PriorAnalyticalGlobalPlacer(
      std::shared_ptr<const netlist::CompiledCircuit> compiled,
      NtuGpOptions opts);
  /// Convenience: compile privately from a raw circuit.
  PriorAnalyticalGlobalPlacer(const netlist::Circuit& circuit,
                              NtuGpOptions opts);

  /// Used by the Perf* extension (paper Table V): adds alpha * Phi to the
  /// objective via its value and gradient. Legacy functor hook.
  void set_extra_term(ExtraTerm term);
  /// First-class extra term (e.g. gnn::PhiTerm). Must precede run().
  void set_extra_term(std::shared_ptr<ObjectiveTerm> term);

  [[nodiscard]] const geom::Rect& region() const { return region_; }

  [[nodiscard]] GpResult run();

 private:
  void build_objective();

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  NtuGpOptions opts_;
  geom::Rect region_;
  wirelength::LseWirelength wl_;
  density::BellDensity dens_;
  ConstraintPenalties pen_;
  std::shared_ptr<ObjectiveTerm> extra_;
  std::unique_ptr<CompositeObjective> objective_;
  std::unique_ptr<WeightScheduler> scheduler_;
};

}  // namespace aplace::gp
