#include "gp/objective.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"

namespace aplace::gp {
namespace {

using Clock = std::chrono::steady_clock;

// Mean absolute value (the gradient-magnitude proxy both placers used).
double mean_abs(std::span<const double> g) {
  double s = 0;
  for (double x : g) s += std::abs(x);
  return s / static_cast<double>(std::max<std::size_t>(g.size(), 1));
}

// Mean absolute element-wise difference |a - b| (the weighted contribution
// a term just added to the shared gradient buffer).
double mean_abs_diff(std::span<const double> a, std::span<const double> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(std::max<std::size_t>(a.size(), 1));
}

}  // namespace

// ---- TermTrace --------------------------------------------------------------

double TermTrace::total_seconds() const {
  double s = 0;
  for (const TermStats& t : terms) s += t.seconds;
  return s;
}

const TermStats* TermTrace::find(std::string_view name) const {
  for (const TermStats& t : terms) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

void TermTrace::merge_counts(const TermTrace& other) {
  for (const TermStats& o : other.terms) {
    bool matched = false;
    for (TermStats& t : terms) {
      if (t.name == o.name) {
        t.evals += o.evals;
        t.seconds += o.seconds;
        matched = true;
        break;
      }
    }
    if (!matched) terms.push_back(o);
  }
}

void publish_trace_metrics(const TermTrace& trace) {
  if (!obs::enabled() || trace.empty()) return;
  for (const TermStats& t : trace.terms) {
    // Per-term eval totals as counters; per-run seconds as one histogram
    // sample per flow, so count = flows run and sum = cumulative seconds.
    obs::counter("gp/term/" + t.name + "/evals").add(t.evals);
    obs::histogram("gp/term/" + t.name + "/run_seconds").record(t.seconds);
  }
}

// ---- CompositeObjective -----------------------------------------------------

CompositeObjective::CompositeObjective(std::size_t num_vars)
    : num_vars_(num_vars), scratch_(num_vars, 0.0) {}

std::size_t CompositeObjective::add_term(std::shared_ptr<ObjectiveTerm> term,
                                         double weight, bool enabled) {
  APLACE_CHECK(term != nullptr);
  TermStats stats;
  stats.name = std::string(term->name());
  stats.cost = term->cost();
  stats.weight = weight;
  trace_.terms.push_back(std::move(stats));
  terms_.push_back(Entry{std::move(term), weight, enabled});
  return terms_.size() - 1;
}

std::size_t CompositeObjective::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].term->name() == name) return i;
  }
  return terms_.size();
}

bool CompositeObjective::has_term(std::string_view name) const {
  return index_of(name) < terms_.size();
}

std::size_t CompositeObjective::must_find(std::string_view name) const {
  const std::size_t i = index_of(name);
  APLACE_CHECK_MSG(i < terms_.size(),
                   "objective has no term named '" << std::string(name) << "'");
  return i;
}

double CompositeObjective::weight(std::string_view name) const {
  return terms_[must_find(name)].weight;
}

void CompositeObjective::set_weight(std::string_view name, double w) {
  const std::size_t i = must_find(name);
  terms_[i].weight = w;
  trace_.terms[i].weight = w;
}

void CompositeObjective::scale_weight(std::string_view name, double factor) {
  const std::size_t i = must_find(name);
  terms_[i].weight *= factor;
  trace_.terms[i].weight = terms_[i].weight;
}

bool CompositeObjective::enabled(std::string_view name) const {
  return terms_[must_find(name)].enabled;
}

void CompositeObjective::set_enabled(std::string_view name, bool enabled) {
  terms_[must_find(name)].enabled = enabled;
}

double CompositeObjective::value_and_grad(std::span<const double> v,
                                          std::span<double> grad) {
  APLACE_DCHECK(v.size() == num_vars_ && grad.size() == num_vars_);
  std::fill(grad.begin(), grad.end(), 0.0);
  double total = 0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    Entry& e = terms_[i];
    if (!e.enabled) continue;
    // Snapshot the running gradient so the term's own (weighted)
    // contribution can be measured without perturbing the accumulation.
    if (observe_grad_norms_) {
      std::copy(grad.begin(), grad.end(), scratch_.begin());
    }
    const auto t0 = Clock::now();
    const double val = e.term->value_and_grad(v, grad, e.weight);
    TermStats& st = trace_.terms[i];
    st.seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    ++st.evals;
    st.value = val;
    st.weight = e.weight;
    if (observe_grad_norms_) st.grad_norm = mean_abs_diff(grad, scratch_);
    total += e.weight * val;
  }
  return total;
}

double CompositeObjective::probe_grad_magnitude(std::size_t term_index,
                                                std::span<const double> v) {
  APLACE_CHECK(term_index < terms_.size());
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  const auto t0 = Clock::now();
  const double val =
      terms_[term_index].term->value_and_grad(v, scratch_, 1.0);
  TermStats& st = trace_.terms[term_index];
  st.seconds += std::chrono::duration<double>(Clock::now() - t0).count();
  ++st.evals;
  st.value = val;
  return mean_abs(scratch_);
}

void CompositeObjective::sample(int iter) {
  ++sample_calls_;
  if ((sample_calls_ - 1) % trace_.sample_stride != 0) return;
  TermTrace::Sample s;
  s.iter = iter;
  s.values.reserve(trace_.terms.size());
  s.weights.reserve(trace_.terms.size());
  s.grad_norms.reserve(trace_.terms.size());
  for (const TermStats& t : trace_.terms) {
    s.values.push_back(t.value);
    s.weights.push_back(t.weight);
    s.grad_norms.push_back(t.grad_norm);
  }
  trace_.samples.push_back(std::move(s));
  // Decimate: drop every other retained sample and double the stride, so
  // arbitrarily long runs keep <= kMaxSamples entries spread evenly.
  if (trace_.samples.size() > static_cast<std::size_t>(kMaxSamples)) {
    std::vector<TermTrace::Sample> kept;
    kept.reserve(trace_.samples.size() / 2 + 1);
    for (std::size_t i = 0; i < trace_.samples.size(); i += 2) {
      kept.push_back(std::move(trace_.samples[i]));
    }
    trace_.samples = std::move(kept);
    trace_.sample_stride *= 2;
  }
}

void CompositeObjective::reset_trace() {
  for (TermStats& t : trace_.terms) {
    t.evals = 0;
    t.seconds = 0;
    t.value = 0;
    t.grad_norm = 0;
  }
  trace_.samples.clear();
  trace_.sample_stride = 1;
  sample_calls_ = 0;
}

// ---- WeightScheduler --------------------------------------------------------

void WeightScheduler::set_rule(std::string term, Rule rule) {
  for (auto& [name, r] : rules_) {
    if (name == term) {
      r = std::move(rule);
      return;
    }
  }
  rules_.emplace_back(std::move(term), std::move(rule));
}

const WeightScheduler::Rule* WeightScheduler::rule(
    std::string_view term) const {
  for (const auto& [name, r] : rules_) {
    if (name == term) return &r;
  }
  return nullptr;
}

double WeightScheduler::calibrate(std::span<const double> v0,
                                  std::string_view ref) {
  const std::size_t ref_idx = obj_->index_of(ref);
  APLACE_CHECK_MSG(ref_idx < obj_->num_terms(),
                   "calibration reference term '" << std::string(ref)
                                                  << "' is not registered");
  const double ref_mag =
      std::max(obj_->probe_grad_magnitude(ref_idx, v0), 1e-12);

  // First pass: measured rules (everything a TiedTo rule may reference).
  for (const auto& [name, r] : rules_) {
    if (!obj_->has_term(name) || !obj_->enabled(name)) continue;
    switch (r.init) {
      case Rule::Init::Fixed:
        obj_->set_weight(name, r.rel);
        break;
      case Rule::Init::RelToRefGrad: {
        const double mag =
            obj_->probe_grad_magnitude(obj_->index_of(name), v0);
        obj_->set_weight(name, mag > 1e-12 ? r.rel * ref_mag / mag : r.rel);
        break;
      }
      case Rule::Init::RefOverScale:
        obj_->set_weight(name, r.rel * ref_mag / r.scale_div);
        break;
      case Rule::Init::TiedTo:
        break;  // second pass
    }
  }
  // Second pass: tied weights, derived from their master's calibrated
  // value with the same arithmetic the placers used
  // (w = w_master * rel / max(master_rel, 1e-12)).
  for (const auto& [name, r] : rules_) {
    if (r.init != Rule::Init::TiedTo) continue;
    if (!obj_->has_term(name) || !obj_->enabled(name)) continue;
    const double master = obj_->weight(r.tied_to);
    // rel == tied_rel means "same weight as the master": short-circuit the
    // ratio so the tie is exact (x*r/r can round away from x).
    obj_->set_weight(name, r.rel == r.tied_rel
                               ? master
                               : master * r.rel / std::max(r.tied_rel, 1e-12));
  }
  return ref_mag;
}

void WeightScheduler::advance() {
  for (const auto& [name, r] : rules_) {
    if (r.growth == 1.0) continue;
    if (!obj_->has_term(name) || !obj_->enabled(name)) continue;
    obj_->scale_weight(name, r.growth);
  }
}

void WeightScheduler::advance(std::string_view term, double factor) {
  obj_->scale_weight(term, factor);
}

// ---- adapters ---------------------------------------------------------------

double SmoothWirelengthTerm::value_and_grad(std::span<const double> v,
                                            std::span<double> grad,
                                            double scale) {
  if (scale == 1.0) return wl_->value_and_grad(v, grad);
  if (scratch_.size() != grad.size()) scratch_.assign(grad.size(), 0.0);
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  const double val = wl_->value_and_grad(v, scratch_);
  numeric::axpy(scale, scratch_, grad);
  return val;
}

PenaltyTerm::PenaltyTerm(const ConstraintPenalties& pen, Kind kind)
    : pen_(&pen), kind_(kind) {
  APLACE_CHECK(kind != Kind::Boundary);  // boundary needs a region
}

PenaltyTerm::PenaltyTerm(const ConstraintPenalties& pen,
                         const geom::Rect& region)
    : pen_(&pen), kind_(Kind::Boundary), region_(region) {}

std::string_view PenaltyTerm::name() const {
  switch (kind_) {
    case Kind::Symmetry: return "symmetry";
    case Kind::CommonCentroid: return "common-centroid";
    case Kind::Alignment: return "alignment";
    case Kind::Ordering: return "ordering";
    case Kind::Boundary: return "boundary";
  }
  return "?";
}

double PenaltyTerm::value_and_grad(std::span<const double> v,
                                   std::span<double> grad, double scale) {
  switch (kind_) {
    case Kind::Symmetry: return pen_->symmetry(v, grad, scale);
    case Kind::CommonCentroid: return pen_->common_centroid(v, grad, scale);
    case Kind::Alignment: return pen_->alignment(v, grad, scale);
    case Kind::Ordering: return pen_->ordering(v, grad, scale);
    case Kind::Boundary: return pen_->boundary(v, grad, scale, region_);
  }
  return 0;
}

double FunctionTerm::value_and_grad(std::span<const double> v,
                                    std::span<double> grad, double scale) {
  if (scratch_.size() != grad.size()) scratch_.assign(grad.size(), 0.0);
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  const double val = fn_(v, scratch_);
  numeric::axpy(scale, scratch_, grad);
  return val;
}

}  // namespace aplace::gp
