#pragma once
// Coarse grid maze router (stand-in for the ALIGN router the paper used).
//
// The performance substrate only needs physically plausible per-net routed
// lengths and congestion, not DRC-clean geometry: nets are decomposed into
// two-pin connections (nearest-unconnected-sink order) and each connection
// is routed with A* over a uniform grid whose edge cost grows with usage, so
// parallel nets spread out and routed length responds to placement quality.

#include <vector>

#include "netlist/compiled.hpp"
#include "netlist/placement.hpp"

namespace aplace::route {

struct RouterOptions {
  double pitch = 0.0;        ///< grid pitch in um; 0 = auto (~bbox/64)
  double congestion_penalty = 0.6;  ///< extra cost per prior use of an edge
  double margin = 2.0;       ///< routing halo around the layout bbox (um)
};

struct NetRoute {
  double length = 0.0;                  ///< total routed wirelength (um)
  std::vector<geom::Point> waypoints;   ///< polyline through grid nodes
};

struct RoutingResult {
  std::vector<NetRoute> nets;  ///< indexed by net id
  double total_length = 0.0;
  double max_edge_usage = 0.0;

  [[nodiscard]] double net_length(NetId id) const {
    return nets[id.index()].length;
  }
};

class GridRouter {
 public:
  explicit GridRouter(RouterOptions options = {}) : opts_(options) {}

  /// Route every net of the placement using a prebuilt compiled snapshot
  /// (the net->pin CSR). Deterministic. `compiled` must describe the same
  /// circuit the placement was built on.
  [[nodiscard]] RoutingResult route(const netlist::CompiledCircuit& compiled,
                                    const netlist::Placement& placement) const;

  /// Convenience: compile a private snapshot, then route. Prefer the
  /// overload above when routing many placements of the same circuit.
  [[nodiscard]] RoutingResult route(const netlist::Placement& placement) const;

 private:
  RouterOptions opts_;
};

}  // namespace aplace::route
