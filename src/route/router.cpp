#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::route {
namespace {

struct RoutingGrid {
  geom::Rect region;
  double pitch;
  std::size_t nx, ny;
  // Usage of horizontal edges ((cx,cy) -> (cx+1,cy)) and vertical edges
  // ((cx,cy) -> (cx,cy+1)). An nx-by-ny node grid has (nx-1)*ny horizontal
  // and nx*(ny-1) vertical edges — the arrays used to be allocated nx*ny
  // each, silently over-sized and indexed by source-node id, so the last
  // column's "horizontal" slots (and last row's vertical ones) were dead
  // weight that also hid any indexing bug from ASan.
  std::vector<double> h_use, v_use;

  RoutingGrid(const geom::Rect& r, double p)
      : region(r),
        pitch(p),
        nx(static_cast<std::size_t>(std::ceil(r.width() / p)) + 1),
        ny(static_cast<std::size_t>(std::ceil(r.height() / p)) + 1),
        h_use((nx - 1) * ny, 0.0),
        v_use(nx * (ny - 1), 0.0) {}

  [[nodiscard]] std::size_t idx(std::size_t cx, std::size_t cy) const {
    return cy * nx + cx;
  }
  /// Horizontal edge (cx,cy) -> (cx+1,cy); requires cx < nx-1.
  [[nodiscard]] std::size_t h_idx(std::size_t cx, std::size_t cy) const {
    APLACE_DCHECK(cx + 1 < nx && cy < ny);
    return cy * (nx - 1) + cx;
  }
  /// Vertical edge (cx,cy) -> (cx,cy+1); requires cy < ny-1.
  [[nodiscard]] std::size_t v_idx(std::size_t cx, std::size_t cy) const {
    APLACE_DCHECK(cx < nx && cy + 1 < ny);
    return cy * nx + cx;
  }
  [[nodiscard]] geom::Point node(std::size_t cx, std::size_t cy) const {
    return {region.xlo() + static_cast<double>(cx) * pitch,
            region.ylo() + static_cast<double>(cy) * pitch};
  }
  [[nodiscard]] std::pair<std::size_t, std::size_t> nearest(
      const geom::Point& p) const {
    const long cx = std::lround((p.x - region.xlo()) / pitch);
    const long cy = std::lround((p.y - region.ylo()) / pitch);
    return {static_cast<std::size_t>(
                std::clamp<long>(cx, 0, static_cast<long>(nx) - 1)),
            static_cast<std::size_t>(
                std::clamp<long>(cy, 0, static_cast<long>(ny) - 1))};
  }
};

struct AstarNode {
  double f;
  double g;
  std::size_t id;
  friend bool operator>(const AstarNode& a, const AstarNode& b) {
    return a.f > b.f;
  }
};

// A* from source node to target node; returns path of node ids (reversed).
std::vector<std::size_t> astar(const RoutingGrid& g, std::size_t src,
                               std::size_t dst, double congestion_penalty) {
  const std::size_t n = g.nx * g.ny;
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, n);
  std::priority_queue<AstarNode, std::vector<AstarNode>, std::greater<>> open;

  const auto hx = [&](std::size_t id) {
    const long ax = static_cast<long>(id % g.nx), ay = static_cast<long>(id / g.nx);
    const long bx = static_cast<long>(dst % g.nx), by = static_cast<long>(dst / g.nx);
    return g.pitch * static_cast<double>(std::labs(ax - bx) + std::labs(ay - by));
  };

  best[src] = 0;
  open.push({hx(src), 0, src});
  while (!open.empty()) {
    const AstarNode cur = open.top();
    open.pop();
    if (cur.g > best[cur.id] + 1e-12) continue;
    if (cur.id == dst) break;
    const std::size_t cx = cur.id % g.nx, cy = cur.id / g.nx;

    const auto relax = [&](std::size_t nid, double edge_use) {
      const double cost =
          cur.g + g.pitch * (1.0 + congestion_penalty * edge_use);
      if (cost < best[nid] - 1e-12) {
        best[nid] = cost;
        parent[nid] = cur.id;
        open.push({cost + hx(nid), cost, nid});
      }
    };
    if (cx + 1 < g.nx) relax(g.idx(cx + 1, cy), g.h_use[g.h_idx(cx, cy)]);
    if (cx > 0) relax(g.idx(cx - 1, cy), g.h_use[g.h_idx(cx - 1, cy)]);
    if (cy + 1 < g.ny) relax(g.idx(cx, cy + 1), g.v_use[g.v_idx(cx, cy)]);
    if (cy > 0) relax(g.idx(cx, cy - 1), g.v_use[g.v_idx(cx, cy - 1)]);
  }

  std::vector<std::size_t> path;
  if (parent[dst] == n && src != dst) return path;  // unreachable (never
                                                    // happens on a full grid)
  for (std::size_t at = dst;; at = parent[at]) {
    path.push_back(at);
    if (at == src) break;
  }
  return path;
}

void commit_path(RoutingGrid& g, const std::vector<std::size_t>& path) {
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    const std::size_t a = std::min(path[k], path[k + 1]);
    const std::size_t b = std::max(path[k], path[k + 1]);
    const std::size_t ax = a % g.nx, ay = a / g.nx;
    if (b == a + g.nx) {
      g.v_use[g.v_idx(ax, ay)] += 1.0;
    } else {
      // Adjacent-node invariant from A*: same row, one column apart. On an
      // nx==1 grid every step is vertical and handled above.
      APLACE_DCHECK(b == a + 1 && b / g.nx == ay);
      g.h_use[g.h_idx(ax, ay)] += 1.0;
    }
  }
}

}  // namespace

RoutingResult GridRouter::route(const netlist::CompiledCircuit& compiled,
                                const netlist::Placement& placement) const {
  obs::Span span("route/estimate");
  obs::counter("route/runs").inc();
  APLACE_DCHECK(&compiled.circuit() == &placement.circuit());
  RoutingResult result;
  result.nets.resize(compiled.num_nets());

  const geom::Rect bbox = placement.bounding_box().inflated(opts_.margin);
  double pitch = opts_.pitch;
  if (pitch <= 0) {
    pitch = std::max(bbox.width(), bbox.height()) / 64.0;
    pitch = std::max(pitch, 0.1);
  }
  RoutingGrid grid(bbox, pitch);

  // Route nets in ascending bbox half-perimeter order (small first), the
  // usual global-routing heuristic.
  std::vector<std::size_t> order(compiled.num_nets());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> key(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    key[i] = placement.net_hpwl(NetId{i});
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return key[a] < key[b]; });

  for (std::size_t ni : order) {
    const std::span<const std::uint32_t> net_pins = compiled.net_pins(ni);
    NetRoute& out = result.nets[ni];

    // Pin grid nodes.
    std::vector<std::size_t> pins;
    pins.reserve(net_pins.size());
    for (std::uint32_t pid : net_pins) {
      const auto [cx, cy] = grid.nearest(placement.pin_position(PinId{pid}));
      pins.push_back(grid.idx(cx, cy));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;

    // Prim-style: connect the nearest unconnected pin to the tree.
    std::vector<std::size_t> tree{pins[0]};
    std::vector<char> connected(pins.size(), 0);
    connected[0] = 1;
    auto manhattan = [&](std::size_t a, std::size_t b) {
      const long ax = static_cast<long>(a % grid.nx), ay = static_cast<long>(a / grid.nx);
      const long bx = static_cast<long>(b % grid.nx), by = static_cast<long>(b / grid.nx);
      return std::labs(ax - bx) + std::labs(ay - by);
    };
    for (std::size_t step = 1; step < pins.size(); ++step) {
      std::size_t best_pin = 0, best_src = tree[0];
      long best_d = std::numeric_limits<long>::max();
      for (std::size_t p = 0; p < pins.size(); ++p) {
        if (connected[p]) continue;
        for (std::size_t t : tree) {
          const long d = manhattan(pins[p], t);
          if (d < best_d) {
            best_d = d;
            best_pin = p;
            best_src = t;
          }
        }
      }
      const std::vector<std::size_t> path =
          astar(grid, best_src, pins[best_pin], opts_.congestion_penalty);
      commit_path(grid, path);
      out.length += grid.pitch * static_cast<double>(
                        path.size() > 0 ? path.size() - 1 : 0);
      for (std::size_t id : path) {
        tree.push_back(id);
        out.waypoints.push_back(
            grid.node(id % grid.nx, id / grid.nx));
      }
      connected[best_pin] = 1;
    }
    result.total_length += out.length;
  }

  for (double u : grid.h_use) result.max_edge_usage = std::max(result.max_edge_usage, u);
  for (double u : grid.v_use) result.max_edge_usage = std::max(result.max_edge_usage, u);
  return result;
}

RoutingResult GridRouter::route(const netlist::Placement& placement) const {
  const netlist::CompiledCircuit compiled(placement.circuit());
  return route(compiled, placement);
}

}  // namespace aplace::route
