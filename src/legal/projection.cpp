#include "legal/projection.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace aplace::legal {

using netlist::Axis;

bool sanitize_positions(const netlist::Circuit& circuit,
                        std::vector<double>& v) {
  const std::size_t n = circuit.num_devices();
  bool repaired = false;
  // Centroid of the finite coordinates anchors the replacements so repaired
  // devices land near the rest of the layout instead of at the origin.
  double cx = 0, cy = 0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isfinite(v[i]) && std::isfinite(v[n + i])) {
      cx += v[i];
      cy += v[n + i];
      ++cnt;
    }
  }
  if (cnt > 0) {
    cx /= static_cast<double>(cnt);
    cy /= static_cast<double>(cnt);
  }
  const double pitch = std::sqrt(circuit.total_device_area() /
                                 static_cast<double>(std::max<std::size_t>(
                                     n, 1)));
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(v[i])) {
      v[i] = cx + pitch * (0.1 + static_cast<double>(i));
      repaired = true;
    }
    if (!std::isfinite(v[n + i])) {
      v[n + i] = cy + pitch * (0.1 + static_cast<double>(i));
      repaired = true;
    }
  }
  return repaired;
}

void project_symmetry(const netlist::Circuit& circuit,
                      std::vector<double>& v) {
  const std::size_t n = circuit.num_devices();
  for (const netlist::SymmetryGroup& g :
       circuit.constraints().symmetry_groups) {
    auto mir = [&](std::size_t d) -> double& {
      return g.axis == Axis::Vertical ? v[d] : v[n + d];
    };
    auto ort = [&](std::size_t d) -> double& {
      return g.axis == Axis::Vertical ? v[n + d] : v[d];
    };
    double m = 0;
    std::size_t cnt = 0;
    for (auto [a, b] : g.pairs) {
      m += (mir(a.index()) + mir(b.index())) / 2;
      ++cnt;
    }
    for (DeviceId d : g.self_symmetric) {
      m += mir(d.index());
      ++cnt;
    }
    m /= static_cast<double>(cnt);
    for (auto [a, b] : g.pairs) {
      const double half = (mir(a.index()) - mir(b.index())) / 2;
      mir(a.index()) = m + half;
      mir(b.index()) = m - half;
      const double o = (ort(a.index()) + ort(b.index())) / 2;
      ort(a.index()) = o;
      ort(b.index()) = o;
    }
    for (DeviceId d : g.self_symmetric) mir(d.index()) = m;
  }
}

void project_ordering(const netlist::Circuit& circuit,
                      std::vector<double>& v) {
  const std::size_t n = circuit.num_devices();
  for (const netlist::OrderingConstraint& oc :
       circuit.constraints().orderings) {
    const bool horiz = oc.direction == netlist::OrderDirection::LeftToRight;
    std::vector<double> coords;
    coords.reserve(oc.devices.size());
    for (DeviceId d : oc.devices) {
      coords.push_back(horiz ? v[d.index()] : v[n + d.index()]);
    }
    std::sort(coords.begin(), coords.end());
    for (std::size_t k = 0; k < oc.devices.size(); ++k) {
      (horiz ? v[oc.devices[k].index()]
             : v[n + oc.devices[k].index()]) = coords[k];
    }
  }
}

void project_centroid(const netlist::Circuit& circuit,
                      std::vector<double>& v) {
  const std::size_t n = circuit.num_devices();
  for (const netlist::CommonCentroidQuad& q :
       circuit.constraints().common_centroids) {
    const double cx = (v[q.a1.index()] + v[q.a2.index()] + v[q.b1.index()] +
                       v[q.b2.index()]) /
                      4.0;
    const double cy = (v[n + q.a1.index()] + v[n + q.a2.index()] +
                       v[n + q.b1.index()] + v[n + q.b2.index()]) /
                      4.0;
    const netlist::Device& da = circuit.device(q.a1);
    const double hw = da.width / 2, hh = da.height / 2;
    v[q.a1.index()] = cx - hw;
    v[n + q.a1.index()] = cy - hh;
    v[q.a2.index()] = cx + hw;
    v[n + q.a2.index()] = cy + hh;
    v[q.b1.index()] = cx + hw;
    v[n + q.b1.index()] = cy - hh;
    v[q.b2.index()] = cx - hw;
    v[n + q.b2.index()] = cy + hh;
  }
}

aplace::Status status_from_lp(solver::LpStatus s, std::string_view what) {
  const std::string name(what);
  switch (s) {
    case solver::LpStatus::Optimal:
      return {};
    case solver::LpStatus::Infeasible:
      return aplace::Status::infeasible(name + " is infeasible");
    case solver::LpStatus::IterLimit:
      return aplace::Status::budget_exhausted(name +
                                              " hit its iteration limit");
    case solver::LpStatus::Unbounded:
      return aplace::Status::internal(name + " is unbounded");
  }
  return aplace::Status::internal(name + " returned an unknown status");
}

}  // namespace aplace::legal
