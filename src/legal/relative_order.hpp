#pragma once
// Pairwise separation directions derived from a global-placement solution
// (paper Fig. 4a): for every device pair, decide whether legalization should
// separate them horizontally or vertically, and in which order.
//
// Overlapping pairs use the paper's rule — overlap width dx < dy goes to the
// horizontal set P^H (cheapest push), otherwise vertical. Non-overlapping
// pairs keep their current separating dimension (larger gap wins) so the
// optimizer cannot create *new* overlaps while compacting.

#include <optional>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace aplace::legal {

struct PairOrder {
  DeviceId left_or_bottom;
  DeviceId right_or_top;
  bool horizontal = true;  ///< true: member of P^H, false: P^V
};

/// Derive separation constraints for pairs that are overlapping or within
/// `proximity_margin` um of each other (the paper constrains only
/// overlapping pairs; the margin guards against near-misses). Pairs whose
/// direction is forced by a constraint group (symmetry / alignment /
/// ordering) are always included. Pass proximity_margin = infinity to
/// constrain every pair. Callers run lazy rounds: solve, detect any new
/// overlaps, extend with derive_single_order(), re-solve.
[[nodiscard]] std::vector<PairOrder> derive_pair_orders(
    const netlist::Circuit& circuit, std::span<const double> positions,
    double proximity_margin = 1.0);

/// Direction + order for one pair at the given positions (overlap rule).
[[nodiscard]] PairOrder derive_single_order(const netlist::Circuit& circuit,
                                            std::span<const double> positions,
                                            DeviceId a, DeviceId b);

/// Direction forced by a constraint group between two devices, if any:
/// true = must separate horizontally, false = vertically, nullopt = free.
[[nodiscard]] std::optional<bool> forced_direction(
    const netlist::Circuit& circuit, DeviceId a, DeviceId b);

/// Drop separation constraints implied transitively within one dimension:
/// a left-of b and b left-of c implies a left-of c with slack >= w_b > 0, so
/// the (a, c) edge is redundant. Cuts the all-pairs O(n^2) constraint set to
/// roughly the adjacency structure, which is what makes the LP/ILP solves
/// fast at analog sizes.
[[nodiscard]] std::vector<PairOrder> reduce_transitive(
    std::vector<PairOrder> orders, std::size_t num_devices);

}  // namespace aplace::legal
