#pragma once
// Greedy shift legalizer: the last resort of the legalization fallback
// chain. No LP/ILP involved — it packs devices along each dimension by a
// longest-path relaxation over the derived separation constraints, then
// re-projects the constraint groups (symmetry, alignment, ordering, common
// centroid) exactly, and iterates until the result is legal or the round
// budget runs out. Quality is poor compared to the analytical legalizers,
// but it cannot be infeasible for any circuit that passes
// netlist::validate() and it runs in O(rounds * n^2).

#include <span>

#include "base/status.hpp"
#include "netlist/placement.hpp"

namespace aplace::legal {

struct GreedyShiftOptions {
  /// Pack/project rounds before giving up. Each round re-derives the
  /// separation directions from the current iterate.
  int max_rounds = 8;
};

struct GreedyShiftResult {
  netlist::Placement placement;
  /// Ok iff `placement` is legal; otherwise why the last resort gave up
  /// (the best iterate found is still in `placement` for diagnostics).
  aplace::Status outcome =
      aplace::Status::internal("greedy shift legalizer did not run");
  int rounds = 0;  ///< pack/project rounds actually executed

  [[nodiscard]] bool ok() const { return outcome.ok(); }
};

class GreedyShiftLegalizer {
 public:
  explicit GreedyShiftLegalizer(const netlist::Circuit& circuit,
                                GreedyShiftOptions opts = {});

  /// Legalize starting from device centers (x.., y..); non-finite inputs
  /// are sanitized first, so a diverged GP hand-off is acceptable.
  [[nodiscard]] GreedyShiftResult place(
      std::span<const double> gp_positions) const;

 private:
  const netlist::Circuit* circuit_;
  GreedyShiftOptions opts_;
};

}  // namespace aplace::legal
