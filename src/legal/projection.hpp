#pragma once
// Start-point projections shared by the legalizers.
//
// Every legalizer derives pairwise separation directions from the GP
// hand-off, so the hand-off must first be made *self-consistent* with the
// constraint groups: exactly mirrored symmetry pairs, ordering chains in
// their required sequence, common-centroid quads in a cross-coupled
// arrangement. Deriving orders from an inconsistent start would produce
// contradictory constraints and an infeasible LP. These helpers were
// previously duplicated file-locally in ilp_detailed.cpp and
// two_stage_lp.cpp.
//
// sanitize_positions() additionally replaces non-finite coordinates (a
// diverged GP can hand off NaN/Inf) with a deterministic finite spread so
// the projections and order derivation below stay well defined.

#include <span>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "netlist/circuit.hpp"
#include "solver/lp.hpp"

namespace aplace::legal {

/// Replace NaN/Inf coordinates in v = (x.., y..) with a finite deterministic
/// spread near the centroid of the finite entries. Returns true when any
/// coordinate needed repair.
bool sanitize_positions(const netlist::Circuit& circuit,
                        std::vector<double>& v);

/// Project positions onto the exactly-symmetric set (per-group optimal axis)
/// so pair-order derivation within symmetry groups is self-consistent.
void project_symmetry(const netlist::Circuit& circuit, std::vector<double>& v);

/// Repair coordinates so ordering constraints hold in their dimension.
/// Keeps the multiset of coordinates, assigns them sorted to the sequence.
void project_ordering(const netlist::Circuit& circuit, std::vector<double>& v);

/// Snap each common-centroid quad to an ideal cross-coupled arrangement at
/// its joint centroid before deriving pair orders.
void project_centroid(const netlist::Circuit& circuit, std::vector<double>& v);

/// Map a solver status to a pipeline Status: Optimal -> Ok, Infeasible ->
/// Infeasible, IterLimit -> BudgetExhausted, Unbounded -> Internal. `what`
/// names the solve for the message ("stage-1 area LP", "ILP round 0", ...).
[[nodiscard]] aplace::Status status_from_lp(solver::LpStatus s,
                                            std::string_view what);

}  // namespace aplace::legal
