#include "legal/greedy_shift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "legal/projection.hpp"
#include "netlist/evaluator.hpp"

namespace aplace::legal {
namespace {

using netlist::Axis;

// Union-find over devices coupled by an equality-type constraint (symmetry
// group, alignment pair, common-centroid quad). Coupled devices move as one
// rigid cluster during packing, so the projected equalities — which are all
// translation-invariant — survive the pack untouched.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) a = parent_[a] = parent_[parent_[a]];
    return a;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Longest-path relaxation along one dimension: every edge a -> b demands
// coord_b >= coord_a + (ext_a + ext_b) / 2. Kahn's order makes the single
// relaxation sweep exact. Returns false if the edge set has a cycle
// (contradictory separation constraints).
bool pack_dimension(std::size_t k,
                    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                    const std::vector<double>& extent,
                    std::vector<double>& coord) {
  std::vector<std::vector<std::size_t>> succ(k);
  std::vector<int> indeg(k, 0);
  for (auto [a, b] : edges) {
    succ[a].push_back(b);
    ++indeg[b];
  }
  std::vector<std::size_t> queue;
  std::vector<double> packed(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    if (indeg[i] == 0) {
      queue.push_back(i);
      packed[i] = extent[i] / 2;
    }
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::size_t a = queue.back();
    queue.pop_back();
    ++processed;
    for (std::size_t b : succ[a]) {
      packed[b] =
          std::max(packed[b],
                   std::max(packed[a] + (extent[a] + extent[b]) / 2,
                            extent[b] / 2));
      if (--indeg[b] == 0) queue.push_back(b);
    }
  }
  if (processed != k) return false;
  coord = std::move(packed);
  return true;
}

// Exact compact layout for one symmetry group: one row per pair (devices
// mirrored to touch at the axis) or self-symmetric device (centered on it),
// rows stacked along the axis direction around their previous mean. Removes
// every intra-group overlap in one shot while keeping the symmetry exact —
// pair footprints are equal by construction (finalize() enforces it).
void stack_symmetry_group(const netlist::Circuit& c,
                          const netlist::SymmetryGroup& g,
                          std::vector<double>& v) {
  const std::size_t n = c.num_devices();
  const bool vert = g.axis == Axis::Vertical;
  auto mir = [&](std::size_t d) -> double& { return vert ? v[d] : v[n + d]; };
  auto ort = [&](std::size_t d) -> double& { return vert ? v[n + d] : v[d]; };
  auto mir_extent = [&](std::size_t d) {
    const netlist::Device& dev = c.device(DeviceId{d});
    return vert ? dev.width : dev.height;
  };
  auto ort_extent = [&](std::size_t d) {
    const netlist::Device& dev = c.device(DeviceId{d});
    return vert ? dev.height : dev.width;
  };

  struct Row {
    std::size_t a, b;  ///< b == a for a self-symmetric row
    double extent;
    double at;  ///< current (then stacked) ort coordinate
  };
  std::vector<Row> rows;
  double m = 0;
  for (auto [a, b] : g.pairs) {
    rows.push_back({a.index(), b.index(), ort_extent(a.index()),
                    (ort(a.index()) + ort(b.index())) / 2});
    m += (mir(a.index()) + mir(b.index())) / 2;
  }
  for (DeviceId d : g.self_symmetric) {
    rows.push_back({d.index(), d.index(), ort_extent(d.index()),
                    ort(d.index())});
    m += mir(d.index());
  }
  m /= static_cast<double>(rows.size());

  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& x, const Row& y) { return x.at < y.at; });
  double mean_before = 0;
  for (const Row& r : rows) mean_before += r.at;
  mean_before /= static_cast<double>(rows.size());
  double cum = 0, mean_after = 0;
  for (Row& r : rows) {
    r.at = cum + r.extent / 2;
    cum += r.extent;
    mean_after += r.at;
  }
  mean_after /= static_cast<double>(rows.size());
  const double shift = mean_before - mean_after;

  for (const Row& r : rows) {
    if (r.a != r.b) {
      mir(r.a) = m - mir_extent(r.a) / 2;
      mir(r.b) = m + mir_extent(r.b) / 2;
      ort(r.a) = ort(r.b) = r.at + shift;
    } else {
      mir(r.a) = m;
      ort(r.a) = r.at + shift;
    }
  }
}

// Separate the two devices of an overlapping alignment pair along the
// dimension the alignment leaves free, so the equality itself is preserved.
void separate_alignment_overlaps(const netlist::Circuit& c,
                                 std::vector<double>& v) {
  const std::size_t n = c.num_devices();
  for (const netlist::AlignmentPair& p : c.constraints().alignments) {
    const std::size_t a = p.a.index(), b = p.b.index();
    const netlist::Device& da = c.device(p.a);
    const netlist::Device& db = c.device(p.b);
    const bool overlap =
        std::abs(v[a] - v[b]) < (da.width + db.width) / 2 - 1e-12 &&
        std::abs(v[n + a] - v[n + b]) < (da.height + db.height) / 2 - 1e-12;
    if (!overlap) continue;
    if (p.kind == netlist::AlignmentKind::VerticalCenter) {
      // Shared x center: stack vertically, touching, around the y mean.
      const double my = (v[n + a] + v[n + b]) / 2;
      const bool a_low = v[n + a] <= v[n + b];
      v[n + (a_low ? a : b)] = my - (a_low ? da : db).height / 2;
      v[n + (a_low ? b : a)] = my + (a_low ? db : da).height / 2;
    } else {
      // Bottom / HorizontalCenter pin y: separate in x, touching.
      const double mx = (v[a] + v[b]) / 2;
      const bool a_left = v[a] <= v[b];
      v[a_left ? a : b] = mx - (a_left ? da : db).width / 2;
      v[a_left ? b : a] = mx + (a_left ? db : da).width / 2;
    }
  }
}

// Force alignment pairs exact: equalize the aligned edge/center at the mean
// so neither device jumps far. The LP legalizers encode these as equality
// rows; here we project after packing instead.
void project_alignment(const netlist::Circuit& c, std::vector<double>& v) {
  const std::size_t n = c.num_devices();
  for (const netlist::AlignmentPair& p : c.constraints().alignments) {
    const std::size_t a = p.a.index(), b = p.b.index();
    switch (p.kind) {
      case netlist::AlignmentKind::Bottom: {
        const double ha = c.device(p.a).height, hb = c.device(p.b).height;
        const double bot =
            ((v[n + a] - ha / 2) + (v[n + b] - hb / 2)) / 2;
        v[n + a] = bot + ha / 2;
        v[n + b] = bot + hb / 2;
        break;
      }
      case netlist::AlignmentKind::VerticalCenter: {
        const double m = (v[a] + v[b]) / 2;
        v[a] = m;
        v[b] = m;
        break;
      }
      case netlist::AlignmentKind::HorizontalCenter: {
        const double m = (v[n + a] + v[n + b]) / 2;
        v[n + a] = m;
        v[n + b] = m;
        break;
      }
    }
  }
}

double violation_sum(const netlist::QualityReport& q) {
  return q.overlap_area + q.symmetry_violation + q.alignment_violation +
         q.ordering_violation + q.centroid_violation;
}

}  // namespace

GreedyShiftLegalizer::GreedyShiftLegalizer(const netlist::Circuit& circuit,
                                           GreedyShiftOptions opts)
    : circuit_(&circuit), opts_(opts) {
  APLACE_CHECK(circuit.finalized());
}

GreedyShiftResult GreedyShiftLegalizer::place(
    std::span<const double> gp_positions) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = c.num_devices();
  APLACE_CHECK(gp_positions.size() == 2 * n);

  std::vector<double> w(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = c.device(DeviceId{i}).width;
    h[i] = c.device(DeviceId{i}).height;
  }

  std::vector<double> v(gp_positions.begin(), gp_positions.end());
  sanitize_positions(c, v);

  // Constraint-coupled devices form rigid clusters for the pack.
  DisjointSet ds(n);
  for (const netlist::SymmetryGroup& g : c.constraints().symmetry_groups) {
    std::size_t first = n;
    auto join = [&](DeviceId d) {
      if (first == n) first = d.index();
      ds.unite(first, d.index());
    };
    for (auto [a, b] : g.pairs) {
      join(a);
      join(b);
    }
    for (DeviceId d : g.self_symmetric) join(d);
  }
  for (const netlist::AlignmentPair& p : c.constraints().alignments) {
    ds.unite(p.a.index(), p.b.index());
  }
  for (const netlist::CommonCentroidQuad& q :
       c.constraints().common_centroids) {
    ds.unite(q.a1.index(), q.a2.index());
    ds.unite(q.a1.index(), q.b1.index());
    ds.unite(q.a1.index(), q.b2.index());
  }
  std::vector<std::size_t> cid(n, n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = ds.find(i);
    if (cid[root] == n) cid[root] = k++;
    cid[i] = cid[root];
  }

  GreedyShiftResult result{netlist::Placement(c)};
  const netlist::Evaluator eval(c);
  auto realize = [&](const std::vector<double>& pos) {
    netlist::Placement pl(c);
    for (std::size_t i = 0; i < n; ++i) {
      pl.set_position(DeviceId{i}, {pos[i], pos[n + i]});
    }
    pl.normalize_to_origin();
    return pl;
  };

  double best_viol = std::numeric_limits<double>::infinity();
  for (int round = 0; round < opts_.max_rounds; ++round) {
    ++result.rounds;

    // 1. Equality constraints exact; intra-cluster overlap removed by the
    //    per-group stack layout and the alignment separation.
    project_symmetry(c, v);
    project_ordering(c, v);
    project_centroid(c, v);
    project_alignment(c, v);
    for (const netlist::SymmetryGroup& g : c.constraints().symmetry_groups) {
      stack_symmetry_group(c, g, v);
    }
    separate_alignment_overlaps(c, v);

    // 2. Cluster bounding boxes at the current iterate.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> lx(k, kInf), hx(k, -kInf), ly(k, kInf), hy(k, -kInf);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ci = cid[i];
      lx[ci] = std::min(lx[ci], v[i] - w[i] / 2);
      hx[ci] = std::max(hx[ci], v[i] + w[i] / 2);
      ly[ci] = std::min(ly[ci], v[n + i] - h[i] / 2);
      hy[ci] = std::max(hy[ci], v[n + i] + h[i] / 2);
    }
    std::vector<double> ex(k), ey(k), cx(k), cy(k);
    for (std::size_t ci = 0; ci < k; ++ci) {
      ex[ci] = hx[ci] - lx[ci];
      ey[ci] = hy[ci] - ly[ci];
      cx[ci] = (lx[ci] + hx[ci]) / 2;
      cy[ci] = (ly[ci] + hy[ci]) / 2;
    }

    // 3. One separation edge per cluster pair. Ordering constraints force
    //    direction and dimension; everything else keeps its current
    //    relative arrangement (larger normalized gap wins).
    std::vector<std::pair<std::size_t, std::size_t>> xedges, yedges;
    std::set<std::pair<std::size_t, std::size_t>> forced;
    for (const netlist::OrderingConstraint& oc : c.constraints().orderings) {
      const bool horiz =
          oc.direction == netlist::OrderDirection::LeftToRight;
      for (std::size_t t = 0; t + 1 < oc.devices.size(); ++t) {
        const std::size_t ca = cid[oc.devices[t].index()];
        const std::size_t cb = cid[oc.devices[t + 1].index()];
        if (ca == cb) continue;  // internal to a cluster; evaluated below
        (horiz ? xedges : yedges).emplace_back(ca, cb);
        forced.insert(std::minmax(ca, cb));
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        if (forced.contains({i, j})) continue;
        const double dx = cx[j] - cx[i], dy = cy[j] - cy[i];
        const double sx = std::abs(dx) / ((ex[i] + ex[j]) / 2);
        const double sy = std::abs(dy) / ((ey[i] + ey[j]) / 2);
        if (sx >= sy) {
          xedges.emplace_back(dx >= 0 ? i : j, dx >= 0 ? j : i);
        } else {
          yedges.emplace_back(dy >= 0 ? i : j, dy >= 0 ? j : i);
        }
      }
    }

    // 4. Pack the clusters, then translate each one rigidly.
    std::vector<double> px, py;
    if (!pack_dimension(k, xedges, ex, px) ||
        !pack_dimension(k, yedges, ey, py)) {
      result.outcome = aplace::Status::infeasible(
          "greedy shift derived a cyclic separation-constraint set");
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) {
      v[i] += px[cid[i]] - cx[cid[i]];
      v[n + i] += py[cid[i]] - cy[cid[i]];
    }

    netlist::Placement pl = realize(v);
    const netlist::QualityReport q = eval.evaluate(pl);
    const double viol = violation_sum(q);
    const bool legal = q.legal(1e-6);
    if (legal || viol < best_viol) {
      best_viol = std::min(best_viol, viol);
      result.placement = std::move(pl);
    }
    if (legal) {
      result.outcome = {};
      return result;
    }
  }

  std::ostringstream oss;
  oss << "greedy shift did not reach a legal placement in " << result.rounds
      << " rounds (best residual " << best_viol << ")";
  result.outcome = aplace::Status::infeasible(oss.str());
  return result;
}

}  // namespace aplace::legal
