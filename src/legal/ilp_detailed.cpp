#include "legal/ilp_detailed.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>

#include "legal/projection.hpp"
#include "legal/relative_order.hpp"

namespace aplace::legal {

using netlist::Axis;

IlpDetailedPlacer::IlpDetailedPlacer(const netlist::CompiledCircuit& compiled,
                                     IlpOptions opts)
    : circuit_(&compiled.circuit()), compiled_(&compiled), opts_(opts) {
  APLACE_CHECK(opts.grid_pitch > 0);
  APLACE_CHECK(opts.utilization > 0 && opts.utilization <= 1.0);
}

IlpDetailedPlacer::IlpDetailedPlacer(
    std::shared_ptr<const netlist::CompiledCircuit> compiled, IlpOptions opts)
    : IlpDetailedPlacer(*compiled, opts) {
  keep_ = std::move(compiled);
}

IlpDetailedPlacer::IlpDetailedPlacer(const netlist::Circuit& circuit,
                                     IlpOptions opts)
    : IlpDetailedPlacer(
          std::make_shared<const netlist::CompiledCircuit>(circuit), opts) {}

IlpResult IlpDetailedPlacer::place(std::span<const double> gp_positions) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = c.num_devices();
  APLACE_CHECK(gp_positions.size() == 2 * n);
  const double gu = opts_.grid_pitch;  // um per grid unit

  std::vector<double> start(gp_positions.begin(), gp_positions.end());
  sanitize_positions(c, start);
  project_symmetry(c, start);
  project_ordering(c, start);
  project_centroid(c, start);
  // Initial separation directions from the (projected) GP solution, for
  // every pair (paper Fig. 4a).
  std::vector<PairOrder> orders = reduce_transitive(
      derive_pair_orders(c, start, std::numeric_limits<double>::infinity()),
      n);

  IlpResult result{netlist::Placement(c)};
  if (opts_.deadline.expired()) {
    result.outcome = aplace::Status::budget_exhausted(
        "time budget expired before ILP legalization started");
    return result;
  }
  if (opts_.cancel.cancelled()) {
    result.outcome =
        aplace::Status::cancelled("ILP legalization cancelled before it ran");
    return result;
  }
  std::vector<int> vx(n), vy(n), vfx(n, -1), vfy(n, -1);

  // Direction refinement: solve, re-derive every pair's direction from the
  // solved (legal) placement, re-solve. A legal placement always satisfies
  // its own re-derived constraints, so the objective is non-increasing;
  // stop at the first round without improvement.
  double best_obj = std::numeric_limits<double>::infinity();
  bool have_solution = false;
  std::vector<geom::Orientation> fixed_flips;
  for (int round = 0; round < opts_.refine_rounds; ++round) {
    if (round > 0 &&
        (opts_.deadline.expired() || opts_.cancel.cancelled())) {
      break;
    }
    // Round 0 decides the flipping binaries by branch-and-bound; later
    // refinement rounds keep them fixed so each round is a single LP.
    solver::MilpSolution sol =
        solve_round(orders, round == 0 ? nullptr : &fixed_flips, vx, vy, vfx,
                    vfy, result);
    if (!sol.ok()) {
      if (!have_solution) {
        // Nothing usable yet: report why instead of handing back the
        // default (origin pile-up) placement with only an LpStatus flag.
        result.outcome =
            sol.deadline_hit
                ? aplace::Status::budget_exhausted(
                      "branch-and-bound hit the time budget before finding "
                      "an integral solution")
                : status_from_lp(sol.status, "ILP legalization round 0");
        return result;
      }
      // A later refinement round failed; the placement from the previous
      // round is still valid — restore its status instead of leaking the
      // failed trial's (previously this returned a good placement marked
      // Infeasible).
      break;
    }
    if (round == 0 && opts_.enable_flipping) {
      fixed_flips.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        fixed_flips[i] = {vfx[i] >= 0 && sol.x[vfx[i]] > 0.5,
                          vfy[i] >= 0 && sol.x[vfy[i]] > 0.5};
      }
    }
    if (sol.objective >= best_obj - 1e-9) break;
    best_obj = sol.objective;
    finish_placement(sol, vx, vy, vfx, vfy, result);
    have_solution = true;

    std::vector<double> pos(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      pos[i] = sol.x[vx[i]] * gu;
      pos[n + i] = sol.x[vy[i]] * gu;
    }
    orders = reduce_transitive(
        derive_pair_orders(c, pos, std::numeric_limits<double>::infinity()),
        n);
  }

  // --- critical-chain reshaping ------------------------------------------------
  // The layout extents are set by chains of binding separation constraints,
  // so the objective is insensitive to mu once directions are fixed. Try
  // flipping one edge of the binding chain of the larger extent from
  // horizontal to vertical (or vice versa) and keep the move when the
  // objective improves. Each attempt is a single LP (flips stay fixed).
  if (!have_solution) {
    result.outcome = aplace::Status::internal(
        "ILP legalization produced no solution (refine_rounds <= 0?)");
    return result;
  }
  for (int attempt = 0; attempt < opts_.reshape_attempts; ++attempt) {
    if (opts_.deadline.expired() || opts_.cancel.cancelled()) break;
    std::vector<double> pos(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Point p = result.placement.position(DeviceId{i});
      pos[i] = p.x;
      pos[n + i] = p.y;
    }
    const geom::Rect bb = result.placement.bounding_box();
    const bool shrink_w = bb.width() >= bb.height();

    // Walk the binding chain of the critical dimension from its far edge.
    const std::span<const double> ext_arr =
        shrink_w ? compiled_->dev_width() : compiled_->dev_height();
    const auto extent = [&](std::size_t i) { return ext_arr[i]; };
    const auto coord = [&](std::size_t i) {
      return shrink_w ? pos[i] : pos[n + i];
    };
    std::size_t cur = 0;
    double far_edge = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = coord(i) + extent(i) / 2;
      if (e > far_edge) {
        far_edge = e;
        cur = i;
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> chain;  // (pred, succ)
    result.reshape_chain_len = 0;
    for (std::size_t guard = 0; guard < n; ++guard) {
      std::size_t pred = n;
      for (const PairOrder& po : orders) {
        if (po.horizontal != shrink_w) continue;
        if (po.right_or_top.index() != cur) continue;
        const std::size_t a = po.left_or_bottom.index();
        if (coord(a) + (extent(a) + extent(cur)) / 2 >= coord(cur) - 1e-6) {
          pred = a;
          break;
        }
      }
      if (pred == n) break;
      chain.emplace_back(pred, cur);
      ++result.reshape_chain_len;
      cur = pred;
    }

    bool improved = false;
    for (auto [a, b] : chain) {
      if (forced_direction(c, DeviceId{a}, DeviceId{b}).has_value()) continue;
      // Candidate: same edge, perpendicular direction, order by position.
      std::vector<PairOrder> trial = orders;
      for (PairOrder& po : trial) {
        const std::size_t x = po.left_or_bottom.index();
        const std::size_t y = po.right_or_top.index();
        if ((x == a && y == b) || (x == b && y == a)) {
          po.horizontal = !shrink_w;
          const std::size_t lo =
              (shrink_w ? pos[n + a] <= pos[n + b] : pos[a] <= pos[b]) ? a : b;
          po.left_or_bottom = DeviceId{lo};
          po.right_or_top = DeviceId{lo == a ? b : a};
          break;
        }
      }
      solver::MilpSolution sol =
          solve_round(trial, opts_.enable_flipping ? &fixed_flips : nullptr,
                      vx, vy, vfx, vfy, result);
      if (sol.ok() && sol.objective < best_obj - 1e-9) {
        // The flipped edge may have carried transitive implications, so
        // verify the trial is actually overlap-free before accepting.
        IlpResult trial_result{netlist::Placement(c)};
        trial_result.status = sol.status;
        finish_placement(sol, vx, vy, vfx, vfy, trial_result);
        if (!netlist::Evaluator(c).evaluate(trial_result.placement).legal(
                1e-6)) {
          continue;
        }
        best_obj = sol.objective;
        finish_placement(sol, vx, vy, vfx, vfy, result);
        std::vector<double> npos(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
          npos[i] = sol.x[vx[i]] * gu;
          npos[n + i] = sol.x[vy[i]] * gu;
        }
        orders = reduce_transitive(
            derive_pair_orders(c, npos,
                               std::numeric_limits<double>::infinity()),
            n);
        improved = true;
        ++result.reshape_accepted;
        break;
      }
    }
    if (!improved) break;
  }
  // --- final flip re-optimization ------------------------------------------------
  // The binaries were decided against the round-0 arrangement; refinement
  // and reshaping may have changed the topology enough that different flips
  // now win. One more branch-and-bound pass with the final direction set.
  if (opts_.enable_flipping && opts_.refine_rounds > 1 &&
      !opts_.deadline.expired() && !opts_.cancel.cancelled()) {
    // Small node budget: the relaxation is usually near-integral by now.
    solver::MilpSolution sol =
        solve_round(orders, nullptr, vx, vy, vfx, vfy, result, 8);
    if (sol.ok() && sol.objective < best_obj - 1e-9) {
      best_obj = sol.objective;
      finish_placement(sol, vx, vy, vfx, vfy, result);
    }
  }

  // Restore the best solution's status (reshape trials may have left a
  // rejected trial's status behind).
  result.status = solver::LpStatus::Optimal;
  result.objective = best_obj;
  result.outcome = {};
  return result;
}

solver::MilpSolution IlpDetailedPlacer::solve_round(
    const std::vector<PairOrder>& orders,
    const std::vector<geom::Orientation>* fixed_flips, std::vector<int>& vx,
    std::vector<int>& vy, std::vector<int>& vfx, std::vector<int>& vfy,
    IlpResult& result, long max_nodes) const {
  const netlist::Circuit& c = *circuit_;
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::size_t n = cc.num_devices();
  const double gu = opts_.grid_pitch;
  const std::span<const double> dev_w = cc.dev_width();
  const std::span<const double> dev_h = cc.dev_height();

  // ---- variables -------------------------------------------------------------
  solver::LpProblem lp;
  const double inf = solver::kInf;
  auto gw = [&](std::size_t d) { return dev_w[d] / gu; };
  auto gh = [&](std::size_t d) { return dev_h[d] / gu; };

  // W~ = H~ = sqrt(sum s_i / zeta) in grid units (paper constants).
  double total_area_gu = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_area_gu += (dev_w[i] / gu) * (dev_h[i] / gu);
  }
  const double wh_tilde = std::sqrt(total_area_gu / opts_.utilization);

  vx.assign(n, -1);
  vy.assign(n, -1);
  vfx.assign(n, -1);
  vfy.assign(n, -1);
  double max_w = 0, max_h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    vx[i] =
        lp.add_variable(gw(i) / 2, inf, 0.0, c.device(DeviceId{i}).name + ".x");
    vy[i] =
        lp.add_variable(gh(i) / 2, inf, 0.0, c.device(DeviceId{i}).name + ".y");
    max_w = std::max(max_w, gw(i));
    max_h = std::max(max_h, gh(i));
  }
  const int vW =
      lp.add_variable(max_w, inf, opts_.mu * wh_tilde / 2.0, "W");
  const int vH =
      lp.add_variable(max_h, inf, opts_.mu * wh_tilde / 2.0, "H");
  if (opts_.enable_flipping) {
    // A flip variable only matters when some pin is offset from the device
    // center line in that dimension; otherwise skip it (fewer binaries).
    std::vector<char> fx_useful(n, 0), fy_useful(n, 0);
    const std::span<const std::uint32_t> pdev = cc.pin_device();
    const std::span<const double> pox = cc.pin_offset_x();
    const std::span<const double> poy = cc.pin_offset_y();
    for (std::size_t p = 0; p < cc.num_pins(); ++p) {
      const std::uint32_t i = pdev[p];
      if (std::abs(dev_w[i] - 2 * pox[p]) > 1e-12) fx_useful[i] = 1;
      if (std::abs(dev_h[i] - 2 * poy[p]) > 1e-12) fy_useful[i] = 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name = c.device(DeviceId{i}).name;
      if (fx_useful[i]) {
        vfx[i] = lp.add_variable(0, 1, 0.0, name + ".fx");
        if (fixed_flips == nullptr) {
          lp.set_integer(vfx[i]);
        } else {
          const double f = (*fixed_flips)[i].flip_x ? 1.0 : 0.0;
          lp.set_bounds(vfx[i], f, f);
        }
      }
      if (fy_useful[i]) {
        vfy[i] = lp.add_variable(0, 1, 0.0, name + ".fy");
        if (fixed_flips == nullptr) {
          lp.set_integer(vfy[i]);
        } else {
          const double f = (*fixed_flips)[i].flip_y ? 1.0 : 0.0;
          lp.set_bounds(vfy[i], f, f);
        }
      }
    }
  }
  // Net bounding boxes (xmin, xmax, ymin, ymax).
  const std::size_t ne = cc.num_nets();
  const std::span<const double> net_weight = cc.net_weight();
  std::vector<std::array<int, 4>> vnet(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    const double w = net_weight[e];
    vnet[e][0] = lp.add_variable(0, inf, -w, c.net(NetId{e}).name + ".xmin");
    vnet[e][1] = lp.add_variable(0, inf, +w, c.net(NetId{e}).name + ".xmax");
    vnet[e][2] = lp.add_variable(0, inf, -w, c.net(NetId{e}).name + ".ymin");
    vnet[e][3] = lp.add_variable(0, inf, +w, c.net(NetId{e}).name + ".ymax");
  }

  using solver::LpTerm;
  using solver::Relation;

  // ---- (4b)+(4d): net bounds over pin positions with flipping ----------------
  const std::span<const std::uint32_t> pin_device = cc.pin_device();
  const std::span<const double> pin_off_x = cc.pin_offset_x();
  const std::span<const double> pin_off_y = cc.pin_offset_y();
  for (std::size_t e = 0; e < ne; ++e) {
    for (std::uint32_t pid : cc.net_pins(e)) {
      const std::size_t i = pin_device[pid];
      // Offsets from the device *center* in grid units; flipping adds
      // f * (w - 2*xpin).
      const double cx = (pin_off_x[pid] - dev_w[i] / 2) / gu;
      const double cy = (pin_off_y[pid] - dev_h[i] / 2) / gu;
      const double dx = (dev_w[i] - 2 * pin_off_x[pid]) / gu;
      const double dy = (dev_h[i] - 2 * pin_off_y[pid]) / gu;

      auto bound = [&](int vmin, int vmax, int vpos, int vflip, double c0,
                       double dflip) {
        std::vector<LpTerm> lo{{vmin, 1.0}, {vpos, -1.0}};
        std::vector<LpTerm> hi{{vpos, 1.0}, {vmax, -1.0}};
        if (vflip >= 0 && dflip != 0.0) {
          lo.push_back({vflip, -dflip});
          hi.push_back({vflip, +dflip});
        }
        lp.add_constraint(std::move(lo), Relation::LessEq, c0);
        lp.add_constraint(std::move(hi), Relation::LessEq, -c0);
      };
      bound(vnet[e][0], vnet[e][1], vx[i], vfx[i], cx, dx);
      bound(vnet[e][2], vnet[e][3], vy[i], vfy[i], cy, dy);
    }
  }

  // ---- (4c): die extents -------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    lp.add_constraint({{vx[i], 1.0}, {vW, -1.0}}, Relation::LessEq,
                      -gw(i) / 2);
    lp.add_constraint({{vy[i], 1.0}, {vH, -1.0}}, Relation::LessEq,
                      -gh(i) / 2);
  }

  // ---- (4e)+(4i): pairwise separation ------------------------------------------
  for (const PairOrder& po : orders) {
    const std::size_t a = po.left_or_bottom.index();
    const std::size_t b = po.right_or_top.index();
    if (po.horizontal) {
      lp.add_constraint({{vx[a], 1.0}, {vx[b], -1.0}}, Relation::LessEq,
                        -(gw(a) + gw(b)) / 2);
    } else {
      lp.add_constraint({{vy[a], 1.0}, {vy[b], -1.0}}, Relation::LessEq,
                        -(gh(a) + gh(b)) / 2);
    }
  }

  // ---- (4f): hard symmetry -------------------------------------------------------
  for (std::size_t g = 0; g < cc.num_symmetry_groups(); ++g) {
    const bool vert = cc.sym_axis(g) == Axis::Vertical;
    const int vm = lp.add_variable(0, inf, 0.0, "axis");
    auto mir_var = [&](std::size_t d) { return vert ? vx[d] : vy[d]; };
    auto ort_var = [&](std::size_t d) { return vert ? vy[d] : vx[d]; };
    const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
    const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
    for (std::size_t k = 0; k < pa.size(); ++k) {
      lp.add_constraint(
          {{mir_var(pa[k]), 1.0}, {mir_var(pb[k]), 1.0}, {vm, -2.0}},
          Relation::Equal, 0.0);
      lp.add_constraint({{ort_var(pa[k]), 1.0}, {ort_var(pb[k]), -1.0}},
                        Relation::Equal, 0.0);
    }
    for (std::uint32_t d : cc.sym_self(g)) {
      lp.add_constraint({{mir_var(d), 1.0}, {vm, -1.0}}, Relation::Equal,
                        0.0);
    }
  }

  // ---- (4g)+(4h): alignment -------------------------------------------------------
  for (std::size_t k = 0; k < cc.num_alignments(); ++k) {
    const std::size_t a = cc.align_a()[k], b = cc.align_b()[k];
    switch (cc.align_kind()[k]) {
      case netlist::AlignmentKind::Bottom:
        lp.add_constraint({{vy[a], 1.0}, {vy[b], -1.0}}, Relation::Equal,
                          (gh(a) - gh(b)) / 2);
        break;
      case netlist::AlignmentKind::VerticalCenter:
        lp.add_constraint({{vx[a], 1.0}, {vx[b], -1.0}}, Relation::Equal,
                          0.0);
        break;
      case netlist::AlignmentKind::HorizontalCenter:
        lp.add_constraint({{vy[a], 1.0}, {vy[b], -1.0}}, Relation::Equal,
                          0.0);
        break;
    }
  }

  // ---- common centroid: diagonal-sum equalities --------------------------------
  for (std::size_t q = 0; q < cc.num_centroids(); ++q) {
    const std::size_t a1 = cc.cent_a1()[q], a2 = cc.cent_a2()[q];
    const std::size_t b1 = cc.cent_b1()[q], b2 = cc.cent_b2()[q];
    lp.add_constraint(
        {{vx[a1], 1.0}, {vx[a2], 1.0}, {vx[b1], -1.0}, {vx[b2], -1.0}},
        Relation::Equal, 0.0);
    lp.add_constraint(
        {{vy[a1], 1.0}, {vy[a2], 1.0}, {vy[b1], -1.0}, {vy[b2], -1.0}},
        Relation::Equal, 0.0);
  }

  // ---- solve -------------------------------------------------------------------
  solver::MilpOptions mopts;
  mopts.max_nodes = max_nodes > 0 ? max_nodes : opts_.max_nodes;
  mopts.deadline = opts_.deadline;
  mopts.cancel = opts_.cancel;
  solver::MilpSolution sol = solver::solve_milp(lp, mopts);
  result.status = sol.status;
  result.objective = sol.objective;
  result.bb_nodes += sol.nodes_explored;
  return sol;
}

void IlpDetailedPlacer::finish_placement(const solver::MilpSolution& sol,
                                         const std::vector<int>& vx,
                                         const std::vector<int>& vy,
                                         const std::vector<int>& vfx,
                                         const std::vector<int>& vfy,
                                         IlpResult& result) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = c.num_devices();
  const double gu = opts_.grid_pitch;

  auto build_placement = [&](bool snap) {
    netlist::Placement pl(c);
    for (std::size_t i = 0; i < n; ++i) {
      double x = sol.x[vx[i]];
      double y = sol.x[vy[i]];
      if (snap) {
        x = std::round(x);
        y = std::round(y);
      }
      pl.set_position(DeviceId{i}, {x * gu, y * gu});
      if (opts_.enable_flipping) {
        pl.set_orientation(DeviceId{i},
                           {vfx[i] >= 0 && sol.x[vfx[i]] > 0.5,
                            vfy[i] >= 0 && sol.x[vfy[i]] > 0.5});
      }
    }
    pl.normalize_to_origin();
    return pl;
  };

  // Snap to the grid; keep the raw (feasible) solution if snapping breaks
  // legality (possible when the LP optimum is fractional).
  const netlist::Evaluator eval(c);
  netlist::Placement snapped = build_placement(true);
  if (eval.evaluate(snapped).legal(1e-6)) {
    result.placement = std::move(snapped);
    result.snapped = true;
  } else {
    result.placement = build_placement(false);
    result.snapped = false;
  }
}

}  // namespace aplace::legal
