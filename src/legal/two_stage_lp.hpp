#pragma once
// Two-stage LP legalization + detailed placement of the prior analytical
// work (Xu et al. ISPD'19 [11]).
//
// Stage 1 (area compaction): minimize W + H subject to the pairwise
// separation, symmetry, alignment and ordering constraints. Stage 2
// (wirelength): minimize total net bounding-box size with the layout
// extents capped at the stage-1 result. Differences from ePlace-A's ILP
// (paper Sec. IV-B): two sequential objectives instead of one integrated
// one, and no device flipping.

#include <memory>
#include <span>
#include <vector>

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "base/status.hpp"
#include "legal/relative_order.hpp"
#include "netlist/compiled.hpp"
#include "netlist/placement.hpp"
#include "solver/lp.hpp"

namespace aplace::legal {

struct TwoStageOptions {
  double grid_pitch = 0.5;
  double area_slack = 1.0;  ///< stage-2 W/H cap = slack * stage-1 extents
  /// Direction-refinement rounds. Default 1 = the faithful single-pass
  /// behaviour of [11] (area LP, then wirelength LP); the iterative
  /// refinement is an ePlace-A-side enhancement.
  int refine_rounds = 1;
  /// Wall-clock budget; checked between refinement rounds (a solved round
  /// is always kept).
  Deadline deadline;
  /// Cooperative cancellation. Unlike an expired deadline — which still
  /// delivers the best solved round — a cancelled legalizer returns a
  /// Cancelled outcome immediately so the batch can drain fast.
  base::CancelToken cancel;
};

struct TwoStageResult {
  netlist::Placement placement;
  solver::LpStatus status = solver::LpStatus::IterLimit;
  double stage1_width = 0.0;   ///< grid units
  double stage1_height = 0.0;
  /// Structured outcome. Non-ok means `placement` was never filled in (it is
  /// the default origin pile-up) — callers must not use it silently.
  aplace::Status outcome =
      aplace::Status::internal("two-stage LP legalizer did not run");

  [[nodiscard]] bool ok() const {
    return outcome.ok() && status == solver::LpStatus::Optimal;
  }
};

class TwoStageLpLegalizer {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  TwoStageLpLegalizer(const netlist::CompiledCircuit& compiled,
                      TwoStageOptions opts = {});
  /// Share ownership of a compiled snapshot.
  explicit TwoStageLpLegalizer(
      std::shared_ptr<const netlist::CompiledCircuit> compiled,
      TwoStageOptions opts = {});
  /// Convenience: compile privately from a raw circuit.
  explicit TwoStageLpLegalizer(const netlist::Circuit& circuit,
                               TwoStageOptions opts = {});

  [[nodiscard]] TwoStageResult place(
      std::span<const double> gp_positions) const;

 private:
  /// One stage-1 + stage-2 pass under the given separation constraints.
  /// Returns false (with status set) when either LP fails.
  bool run_stages(const std::vector<PairOrder>& orders,
                  TwoStageResult& result) const;

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  TwoStageOptions opts_;
};

}  // namespace aplace::legal
