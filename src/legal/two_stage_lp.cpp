#include "legal/two_stage_lp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>

#include "legal/projection.hpp"
#include "legal/relative_order.hpp"
#include "netlist/evaluator.hpp"

namespace aplace::legal {
namespace {

using netlist::Axis;
using solver::LpTerm;
using solver::Relation;

// Shared constraint skeleton between the two stages.
struct Skeleton {
  solver::LpProblem lp;
  std::vector<int> vx, vy;
  int vW = -1, vH = -1;
};

Skeleton build_skeleton(const netlist::CompiledCircuit& cc,
                        const std::vector<PairOrder>& orders, double gu,
                        double extent_cost) {
  const netlist::Circuit& c = cc.circuit();
  const std::size_t n = cc.num_devices();
  const std::span<const double> dev_w = cc.dev_width();
  const std::span<const double> dev_h = cc.dev_height();
  Skeleton s;
  s.vx.resize(n);
  s.vy.resize(n);
  const double inf = solver::kInf;
  auto gw = [&](std::size_t d) { return dev_w[d] / gu; };
  auto gh = [&](std::size_t d) { return dev_h[d] / gu; };

  double max_w = 0, max_h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s.vx[i] =
        s.lp.add_variable(gw(i) / 2, inf, 0.0, c.device(DeviceId{i}).name + ".x");
    s.vy[i] =
        s.lp.add_variable(gh(i) / 2, inf, 0.0, c.device(DeviceId{i}).name + ".y");
    max_w = std::max(max_w, gw(i));
    max_h = std::max(max_h, gh(i));
  }
  s.vW = s.lp.add_variable(max_w, inf, extent_cost, "W");
  s.vH = s.lp.add_variable(max_h, inf, extent_cost, "H");

  for (std::size_t i = 0; i < n; ++i) {
    s.lp.add_constraint({{s.vx[i], 1.0}, {s.vW, -1.0}}, Relation::LessEq,
                        -gw(i) / 2);
    s.lp.add_constraint({{s.vy[i], 1.0}, {s.vH, -1.0}}, Relation::LessEq,
                        -gh(i) / 2);
  }
  for (const PairOrder& po : orders) {
    const std::size_t a = po.left_or_bottom.index();
    const std::size_t b = po.right_or_top.index();
    if (po.horizontal) {
      s.lp.add_constraint({{s.vx[a], 1.0}, {s.vx[b], -1.0}}, Relation::LessEq,
                          -(gw(a) + gw(b)) / 2);
    } else {
      s.lp.add_constraint({{s.vy[a], 1.0}, {s.vy[b], -1.0}}, Relation::LessEq,
                          -(gh(a) + gh(b)) / 2);
    }
  }
  for (std::size_t g = 0; g < cc.num_symmetry_groups(); ++g) {
    const bool vert = cc.sym_axis(g) == Axis::Vertical;
    const int vm = s.lp.add_variable(0, inf, 0.0, "axis");
    auto mir_var = [&](std::size_t d) { return vert ? s.vx[d] : s.vy[d]; };
    auto ort_var = [&](std::size_t d) { return vert ? s.vy[d] : s.vx[d]; };
    const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
    const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
    for (std::size_t k = 0; k < pa.size(); ++k) {
      s.lp.add_constraint(
          {{mir_var(pa[k]), 1.0}, {mir_var(pb[k]), 1.0}, {vm, -2.0}},
          Relation::Equal, 0.0);
      s.lp.add_constraint({{ort_var(pa[k]), 1.0}, {ort_var(pb[k]), -1.0}},
                          Relation::Equal, 0.0);
    }
    for (std::uint32_t d : cc.sym_self(g)) {
      s.lp.add_constraint({{mir_var(d), 1.0}, {vm, -1.0}}, Relation::Equal,
                          0.0);
    }
  }
  for (std::size_t q = 0; q < cc.num_centroids(); ++q) {
    const std::size_t a1 = cc.cent_a1()[q], a2 = cc.cent_a2()[q];
    const std::size_t b1 = cc.cent_b1()[q], b2 = cc.cent_b2()[q];
    s.lp.add_constraint({{s.vx[a1], 1.0},
                         {s.vx[a2], 1.0},
                         {s.vx[b1], -1.0},
                         {s.vx[b2], -1.0}},
                        Relation::Equal, 0.0);
    s.lp.add_constraint({{s.vy[a1], 1.0},
                         {s.vy[a2], 1.0},
                         {s.vy[b1], -1.0},
                         {s.vy[b2], -1.0}},
                        Relation::Equal, 0.0);
  }
  for (std::size_t k = 0; k < cc.num_alignments(); ++k) {
    const std::size_t a = cc.align_a()[k], b = cc.align_b()[k];
    switch (cc.align_kind()[k]) {
      case netlist::AlignmentKind::Bottom:
        s.lp.add_constraint({{s.vy[a], 1.0}, {s.vy[b], -1.0}},
                            Relation::Equal, (gh(a) - gh(b)) / 2);
        break;
      case netlist::AlignmentKind::VerticalCenter:
        s.lp.add_constraint({{s.vx[a], 1.0}, {s.vx[b], -1.0}},
                            Relation::Equal, 0.0);
        break;
      case netlist::AlignmentKind::HorizontalCenter:
        s.lp.add_constraint({{s.vy[a], 1.0}, {s.vy[b], -1.0}},
                            Relation::Equal, 0.0);
        break;
    }
  }
  return s;
}

}  // namespace

TwoStageLpLegalizer::TwoStageLpLegalizer(
    const netlist::CompiledCircuit& compiled, TwoStageOptions opts)
    : circuit_(&compiled.circuit()), compiled_(&compiled), opts_(opts) {
  APLACE_CHECK(opts.grid_pitch > 0);
  APLACE_CHECK(opts.area_slack >= 1.0);
}

TwoStageLpLegalizer::TwoStageLpLegalizer(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    TwoStageOptions opts)
    : TwoStageLpLegalizer(*compiled, opts) {
  keep_ = std::move(compiled);
}

TwoStageLpLegalizer::TwoStageLpLegalizer(const netlist::Circuit& circuit,
                                         TwoStageOptions opts)
    : TwoStageLpLegalizer(
          std::make_shared<const netlist::CompiledCircuit>(circuit), opts) {}

TwoStageResult TwoStageLpLegalizer::place(
    std::span<const double> gp_positions) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = c.num_devices();
  APLACE_CHECK(gp_positions.size() == 2 * n);

  std::vector<double> start(gp_positions.begin(), gp_positions.end());
  sanitize_positions(c, start);
  project_symmetry(c, start);
  project_ordering(c, start);
  project_centroid(c, start);
  std::vector<PairOrder> orders = reduce_transitive(
      derive_pair_orders(c, start, std::numeric_limits<double>::infinity()),
      n);

  TwoStageResult result{netlist::Placement(c)};
  if (opts_.deadline.expired()) {
    result.outcome = aplace::Status::budget_exhausted(
        "time budget expired before two-stage LP legalization started");
    return result;
  }
  if (opts_.cancel.cancelled()) {
    result.outcome = aplace::Status::cancelled(
        "two-stage LP legalization cancelled before it ran");
    return result;
  }
  // Direction refinement, area-first (matching [11]'s two-stage priority):
  // re-derive every pair's direction from the solved placement and re-run
  // while the lexicographic (extents, wirelength) score improves.
  double best_score = std::numeric_limits<double>::infinity();
  TwoStageResult best = result;
  for (int round = 0; round < opts_.refine_rounds; ++round) {
    if (round > 0 &&
        (opts_.deadline.expired() || opts_.cancel.cancelled())) {
      break;
    }
    if (!run_stages(orders, result)) {
      if (round == 0) return result;  // propagate first-round failure
      break;  // keep `best` from the previous round
    }
    const double hpwl = result.placement.total_hpwl();
    const double score =
        1e4 * (result.stage1_width + result.stage1_height) + hpwl;
    if (score >= best_score - 1e-9) break;
    best_score = score;
    best = result;

    std::vector<double> pos(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Point p = result.placement.position(DeviceId{i});
      pos[i] = p.x;
      pos[n + i] = p.y;
    }
    orders = reduce_transitive(
        derive_pair_orders(c, pos, std::numeric_limits<double>::infinity()),
        n);
  }
  return best;
}

bool TwoStageLpLegalizer::run_stages(const std::vector<PairOrder>& orders,
                                     TwoStageResult& result) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = c.num_devices();
  const double gu = opts_.grid_pitch;

  // ---- stage 1: area compaction (min W + H) ---------------------------------
  Skeleton s1 = build_skeleton(*compiled_, orders, gu, /*extent_cost=*/1.0);
  const solver::LpSolution sol1 = solve_lp(s1.lp);
  result.status = sol1.status;
  if (!sol1.ok()) {
    result.outcome = status_from_lp(sol1.status, "stage-1 area LP");
    return false;
  }
  const double W1 = sol1.x[s1.vW];
  const double H1 = sol1.x[s1.vH];
  result.stage1_width = W1;
  result.stage1_height = H1;

  // ---- stage 2: wirelength under the compacted extents -----------------------
  Skeleton s2 = build_skeleton(*compiled_, orders, gu, /*extent_cost=*/0.0);
  solver::LpProblem& lp = s2.lp;
  lp.add_constraint({{s2.vW, 1.0}}, Relation::LessEq,
                    W1 * opts_.area_slack + 1e-9);
  lp.add_constraint({{s2.vH, 1.0}}, Relation::LessEq,
                    H1 * opts_.area_slack + 1e-9);

  const netlist::CompiledCircuit& cc = *compiled_;
  const std::span<const double> net_weight = cc.net_weight();
  const std::span<const std::uint32_t> pin_device = cc.pin_device();
  const std::span<const double> pin_off_x = cc.pin_offset_x();
  const std::span<const double> pin_off_y = cc.pin_offset_y();
  const std::span<const double> dev_w = cc.dev_width();
  const std::span<const double> dev_h = cc.dev_height();
  const std::size_t ne = cc.num_nets();
  for (std::size_t e = 0; e < ne; ++e) {
    const double weight = net_weight[e];
    const int vxmin = lp.add_variable(0, solver::kInf, -weight, "");
    const int vxmax = lp.add_variable(0, solver::kInf, +weight, "");
    const int vymin = lp.add_variable(0, solver::kInf, -weight, "");
    const int vymax = lp.add_variable(0, solver::kInf, +weight, "");
    for (std::uint32_t pid : cc.net_pins(e)) {
      const std::size_t i = pin_device[pid];
      const double cx = (pin_off_x[pid] - dev_w[i] / 2) / gu;
      const double cy = (pin_off_y[pid] - dev_h[i] / 2) / gu;
      lp.add_constraint({{vxmin, 1.0}, {s2.vx[i], -1.0}}, Relation::LessEq,
                        cx);
      lp.add_constraint({{s2.vx[i], 1.0}, {vxmax, -1.0}}, Relation::LessEq,
                        -cx);
      lp.add_constraint({{vymin, 1.0}, {s2.vy[i], -1.0}}, Relation::LessEq,
                        cy);
      lp.add_constraint({{s2.vy[i], 1.0}, {vymax, -1.0}}, Relation::LessEq,
                        -cy);
    }
  }

  const solver::LpSolution sol2 = solve_lp(lp);
  result.status = sol2.status;
  if (!sol2.ok()) {
    result.outcome = status_from_lp(sol2.status, "stage-2 wirelength LP");
    return false;
  }

  const netlist::Evaluator eval(c);
  auto build = [&](bool snap) {
    netlist::Placement pl(c);
    for (std::size_t i = 0; i < n; ++i) {
      double x = sol2.x[s2.vx[i]];
      double y = sol2.x[s2.vy[i]];
      if (snap) {
        x = std::round(x);
        y = std::round(y);
      }
      pl.set_position(DeviceId{i}, {x * gu, y * gu});
    }
    pl.normalize_to_origin();
    return pl;
  };
  netlist::Placement snapped = build(true);
  if (eval.evaluate(snapped).legal(1e-6)) {
    result.placement = std::move(snapped);
  } else {
    result.placement = build(false);
  }
  result.outcome = {};
  return true;
}

}  // namespace aplace::legal
