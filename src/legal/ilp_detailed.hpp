#pragma once
// Integrated ILP legalization + detailed placement of ePlace-A (paper
// Sec. IV-B, formulation 4a-4j).
//
// Single-stage minimization of  sum_e HPWL_e + mu * (H~*W + W~*H)/2  over an
// integer grid, subject to: net bounding boxes (4b), die coupling (4c),
// pin positions with device flipping binaries (4d), pairwise separation
// directions derived from the GP solution (4e / Fig. 4a), hard symmetry
// with free axis variables (4f), bottom / center alignment (4g, 4h),
// monotone ordering (4i) and integrality (4j). Flipping binaries are solved
// by branch-and-bound; coordinates are snapped to the grid afterwards and
// the unsnapped (still feasible) solution is kept if snapping would break
// legality.

#include <memory>
#include <span>
#include <vector>

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "base/status.hpp"
#include "legal/relative_order.hpp"
#include "netlist/compiled.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/placement.hpp"
#include "solver/milp.hpp"

namespace aplace::legal {

struct IlpOptions {
  double grid_pitch = 0.5;   ///< um per grid unit
  double mu = 1.0;           ///< area weight in objective (4a)
  double utilization = 0.55; ///< zeta, defines the W~/H~ constants
  bool enable_flipping = true;
  long max_nodes = 24;       ///< branch-and-bound budget (round 0 only)
  /// Direction-refinement rounds: re-derive every pair's separation
  /// direction from the solved placement and re-solve while the objective
  /// improves (monotone). Rounds after the first are single LPs.
  int refine_rounds = 10;
  /// Critical-chain reshaping attempts: flip one binding separation edge of
  /// the larger layout extent per attempt (single LP each).
  int reshape_attempts = 10;
  /// Wall-clock budget shared with the rest of the flow. Checked between
  /// rounds and inside branch-and-bound; an already-solved round is kept.
  Deadline deadline;
  /// Cooperative cancellation. Unlike an expired deadline — which still
  /// delivers the best solved round — a cancelled legalizer returns a
  /// Cancelled outcome immediately so the batch can drain fast.
  base::CancelToken cancel;
};

struct IlpResult {
  netlist::Placement placement;
  solver::LpStatus status = solver::LpStatus::IterLimit;
  double objective = 0.0;
  bool snapped = false;   ///< coordinates are on the integer grid
  long bb_nodes = 0;
  int reshape_accepted = 0;  ///< accepted critical-chain flips
  int reshape_chain_len = 0; ///< last binding-chain length (diagnostics)
  /// Structured outcome: Ok when `placement` holds a solved round, otherwise
  /// why legalization produced nothing usable (Infeasible, BudgetExhausted,
  /// ...). Never trust `placement` when this is non-ok.
  aplace::Status outcome = aplace::Status::internal("ILP placer did not run");

  [[nodiscard]] bool ok() const {
    return outcome.ok() && status == solver::LpStatus::Optimal;
  }
};

class IlpDetailedPlacer {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  IlpDetailedPlacer(const netlist::CompiledCircuit& compiled,
                    IlpOptions opts = {});
  /// Share ownership of a compiled snapshot.
  explicit IlpDetailedPlacer(
      std::shared_ptr<const netlist::CompiledCircuit> compiled,
      IlpOptions opts = {});
  /// Convenience: compile privately from a raw circuit.
  explicit IlpDetailedPlacer(const netlist::Circuit& circuit,
                             IlpOptions opts = {});

  /// Legalize + detail-place starting from GP device centers (x.., y..).
  [[nodiscard]] IlpResult place(std::span<const double> gp_positions) const;

 private:
  /// Build and solve one round. When `fixed_flips` is non-null the flipping
  /// variables are pinned (pure LP); otherwise they are binaries solved by
  /// branch-and-bound.
  [[nodiscard]] solver::MilpSolution solve_round(
      const std::vector<PairOrder>& orders,
      const std::vector<geom::Orientation>* fixed_flips, std::vector<int>& vx,
      std::vector<int>& vy, std::vector<int>& vfx, std::vector<int>& vfy,
      IlpResult& result, long max_nodes = 0) const;
  void finish_placement(const solver::MilpSolution& sol,
                        const std::vector<int>& vx, const std::vector<int>& vy,
                        const std::vector<int>& vfx,
                        const std::vector<int>& vfy, IlpResult& result) const;

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  IlpOptions opts_;
};

}  // namespace aplace::legal
