#include "legal/relative_order.hpp"

#include <limits>
#include <map>
#include <numeric>

#include "geom/rect.hpp"

namespace aplace::legal {
namespace {

// Direction forced by a constraint between a device pair, if any.
// horizontal=true means "must separate in x".
struct Forced {
  bool horizontal;
};

using ForcedMap = std::map<std::pair<std::size_t, std::size_t>, Forced>;

std::pair<std::size_t, std::size_t> key(std::size_t a, std::size_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Constraints that make one separation dimension infeasible:
//  * a mirrored pair must straddle its axis -> separate in the mirrored dim;
//  * bottom / horizontal-center alignment pins the y relation -> separate
//    in x; vertical-center alignment pins x -> separate in y;
//  * ordering constraints fix both dimension and order for their members.
ForcedMap forced_directions(const netlist::Circuit& circuit) {
  ForcedMap forced;
  const netlist::ConstraintSet& cs = circuit.constraints();
  for (const netlist::SymmetryGroup& g : cs.symmetry_groups) {
    const bool horizontal = g.axis == netlist::Axis::Vertical;
    for (auto [a, b] : g.pairs) {
      forced[key(a.index(), b.index())] = {horizontal};
    }
  }
  for (const netlist::AlignmentPair& p : cs.alignments) {
    const bool horizontal = p.kind != netlist::AlignmentKind::VerticalCenter;
    forced[key(p.a.index(), p.b.index())] = {horizontal};
  }
  for (const netlist::OrderingConstraint& c : cs.orderings) {
    const bool horizontal =
        c.direction == netlist::OrderDirection::LeftToRight;
    for (std::size_t i = 0; i < c.devices.size(); ++i) {
      for (std::size_t j = i + 1; j < c.devices.size(); ++j) {
        forced[key(c.devices[i].index(), c.devices[j].index())] = {horizontal};
      }
    }
  }
  return forced;
}

// Union-find over devices whose coordinate in one dimension is tied by an
// equality constraint (symmetry-pair orthogonal equality, center/bottom
// alignment). Orders in that dimension must treat tied devices as one
// entity, otherwise transitive chains through a third device can demand
// y_a < y_b while the equality demands y_a == y_b (infeasible ILP).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

struct TieClasses {
  UnionFind x_class;
  UnionFind y_class;
};

TieClasses tie_classes(const netlist::Circuit& circuit) {
  const std::size_t n = circuit.num_devices();
  TieClasses t{UnionFind(n), UnionFind(n)};
  const netlist::ConstraintSet& cs = circuit.constraints();
  for (const netlist::SymmetryGroup& g : cs.symmetry_groups) {
    for (auto [a, b] : g.pairs) {
      // Vertical axis: y_a == y_b; horizontal axis: x_a == x_b.
      if (g.axis == netlist::Axis::Vertical) {
        t.y_class.unite(a.index(), b.index());
      } else {
        t.x_class.unite(a.index(), b.index());
      }
    }
  }
  for (const netlist::AlignmentPair& p : cs.alignments) {
    switch (p.kind) {
      case netlist::AlignmentKind::Bottom:
      case netlist::AlignmentKind::HorizontalCenter:
        t.y_class.unite(p.a.index(), p.b.index());
        break;
      case netlist::AlignmentKind::VerticalCenter:
        t.x_class.unite(p.a.index(), p.b.index());
        break;
    }
  }
  return t;
}

geom::Rect rect_of(const netlist::Circuit& c, std::span<const double> v,
                   std::size_t i) {
  const std::size_t n = c.num_devices();
  const netlist::Device& d = c.device(DeviceId{i});
  return geom::Rect::centered({v[i], v[n + i]}, d.width, d.height);
}

bool direction_for(const geom::Rect& ri, const geom::Rect& rj) {
  const double dx = ri.overlap_dx(rj);  // >0: overlap extent, <0: gap
  const double dy = ri.overlap_dy(rj);
  if (dx > 0 && dy > 0) return dx < dy;  // paper rule: smaller overlap dim
  if (dx > 0) return false;              // separated vertically already
  if (dy > 0) return true;
  return (-dx) >= (-dy);  // keep the larger gap's dimension
}

}  // namespace

PairOrder derive_single_order(const netlist::Circuit& circuit,
                              std::span<const double> positions, DeviceId a,
                              DeviceId b) {
  const std::size_t n = circuit.num_devices();
  const geom::Rect ra = rect_of(circuit, positions, a.index());
  const geom::Rect rb = rect_of(circuit, positions, b.index());
  const bool horizontal = direction_for(ra, rb);
  const double ca = horizontal ? positions[a.index()] : positions[n + a.index()];
  const double cb = horizontal ? positions[b.index()] : positions[n + b.index()];
  PairOrder po;
  po.horizontal = horizontal;
  const bool a_first = ca < cb || (ca == cb && a.index() < b.index());
  po.left_or_bottom = a_first ? a : b;
  po.right_or_top = a_first ? b : a;
  return po;
}

std::optional<bool> forced_direction(const netlist::Circuit& circuit,
                                     DeviceId a, DeviceId b) {
  const ForcedMap forced = forced_directions(circuit);
  if (auto it = forced.find(key(a.index(), b.index())); it != forced.end()) {
    return it->second.horizontal;
  }
  return std::nullopt;
}

std::vector<PairOrder> derive_pair_orders(const netlist::Circuit& circuit,
                                          std::span<const double> positions,
                                          double proximity_margin) {
  const std::size_t n = circuit.num_devices();
  APLACE_CHECK(positions.size() == 2 * n);
  std::vector<PairOrder> out;

  const ForcedMap forced = forced_directions(circuit);
  TieClasses ties = tie_classes(circuit);

  // Class-representative coordinates: every member of a tie class compares
  // through the class mean, with the class root id as a global tie break.
  // This keeps per-dimension orders a total preorder consistent with the
  // equality constraints.
  std::vector<double> x_rep(n, 0.0), y_rep(n, 0.0);
  {
    std::vector<double> sum_x(n, 0.0), sum_y(n, 0.0);
    std::vector<std::size_t> cnt_x(n, 0), cnt_y(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      sum_x[ties.x_class.find(i)] += positions[i];
      ++cnt_x[ties.x_class.find(i)];
      sum_y[ties.y_class.find(i)] += positions[n + i];
      ++cnt_y[ties.y_class.find(i)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t rx = ties.x_class.find(i);
      const std::size_t ry = ties.y_class.find(i);
      x_rep[i] = sum_x[rx] / static_cast<double>(cnt_x[rx]);
      y_rep[i] = sum_y[ry] / static_cast<double>(cnt_y[ry]);
    }
  }

  // Ordering constraints also fix the *order*, not just the dimension.
  std::map<std::pair<std::size_t, std::size_t>, bool> fixed_first;
  for (const netlist::OrderingConstraint& c :
       circuit.constraints().orderings) {
    for (std::size_t i = 0; i < c.devices.size(); ++i) {
      for (std::size_t j = i + 1; j < c.devices.size(); ++j) {
        const std::size_t a = c.devices[i].index();
        const std::size_t b = c.devices[j].index();
        fixed_first[key(a, b)] = a < b;  // true: lower index goes first
      }
    }
  }

  auto order_in = [&](std::size_t i, std::size_t j, bool horizontal) {
    // true = i goes first. Compare class representatives; break ties by
    // class root id (consistent across all pairs), then by index.
    const std::size_t ci = horizontal ? ties.x_class.find(i)
                                      : ties.y_class.find(i);
    const std::size_t cj = horizontal ? ties.x_class.find(j)
                                      : ties.y_class.find(j);
    const double ri = horizontal ? x_rep[i] : y_rep[i];
    const double rj = horizontal ? x_rep[j] : y_rep[j];
    if (ri != rj) return ri < rj;
    if (ci != cj) return ci < cj;
    return i < j;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const geom::Rect ri = rect_of(circuit, positions, i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const geom::Rect rj = rect_of(circuit, positions, j);

      bool horizontal;
      if (auto it = forced.find(key(i, j)); it != forced.end()) {
        horizontal = it->second.horizontal;
      } else {
        // Skip distant pairs; callers using a finite margin add them back
        // lazily if they collide.
        if (!ri.inflated(proximity_margin / 2).overlaps(rj)) continue;
        const bool same_x = ties.x_class.find(i) == ties.x_class.find(j);
        const bool same_y = ties.y_class.find(i) == ties.y_class.find(j);
        if (same_x && !same_y) {
          horizontal = false;  // x tied by equality: must separate in y
        } else if (same_y && !same_x) {
          horizontal = true;
        } else {
          horizontal = direction_for(ri, rj);
        }
      }

      PairOrder po;
      po.horizontal = horizontal;
      bool i_first;
      if (auto it = fixed_first.find(key(i, j)); it != fixed_first.end()) {
        i_first = it->second;  // lower index first when true; i < j here
      } else {
        i_first = order_in(i, j, horizontal);
      }
      po.left_or_bottom = DeviceId{i_first ? i : j};
      po.right_or_top = DeviceId{i_first ? j : i};
      out.push_back(po);
    }
  }
  return out;
}

std::vector<PairOrder> reduce_transitive(std::vector<PairOrder> orders,
                                         std::size_t num_devices) {
  // Adjacency per dimension: edge a -> b means "a before b" in that dim.
  const std::size_t n = num_devices;
  std::vector<char> h_edge(n * n, 0), v_edge(n * n, 0);
  for (const PairOrder& po : orders) {
    const std::size_t a = po.left_or_bottom.index();
    const std::size_t b = po.right_or_top.index();
    (po.horizontal ? h_edge : v_edge)[a * n + b] = 1;
  }
  // An edge (a, b) is redundant when a 2-hop path a -> c -> b exists in the
  // *original* edge set (chains of implications compose, so testing against
  // the unreduced set is safe).
  std::vector<PairOrder> kept;
  kept.reserve(orders.size());
  for (const PairOrder& po : orders) {
    const std::size_t a = po.left_or_bottom.index();
    const std::size_t b = po.right_or_top.index();
    const std::vector<char>& e = po.horizontal ? h_edge : v_edge;
    bool redundant = false;
    for (std::size_t c = 0; c < n && !redundant; ++c) {
      if (e[a * n + c] && e[c * n + b]) redundant = true;
    }
    if (!redundant) kept.push_back(po);
  }
  return kept;
}

}  // namespace aplace::legal
