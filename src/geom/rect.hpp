#pragma once
// Axis-aligned rectangle with the overlap / union / containment operations
// the legalizers and density models need.

#include <algorithm>
#include <ostream>

#include "base/check.hpp"
#include "geom/point.hpp"

namespace aplace::geom {

class Rect {
 public:
  constexpr Rect() = default;
  /// Construct from corner coordinates. Normalizes so lo <= hi.
  constexpr Rect(double xlo, double ylo, double xhi, double yhi)
      : xlo_(std::min(xlo, xhi)),
        ylo_(std::min(ylo, yhi)),
        xhi_(std::max(xlo, xhi)),
        yhi_(std::max(ylo, yhi)) {}

  /// Rectangle of size w x h centered at c.
  static constexpr Rect centered(const Point& c, double w, double h) {
    return Rect(c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2);
  }

  [[nodiscard]] constexpr double xlo() const { return xlo_; }
  [[nodiscard]] constexpr double ylo() const { return ylo_; }
  [[nodiscard]] constexpr double xhi() const { return xhi_; }
  [[nodiscard]] constexpr double yhi() const { return yhi_; }
  [[nodiscard]] constexpr double width() const { return xhi_ - xlo_; }
  [[nodiscard]] constexpr double height() const { return yhi_ - ylo_; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Point center() const {
    return {(xlo_ + xhi_) / 2, (ylo_ + yhi_) / 2};
  }
  [[nodiscard]] constexpr bool empty() const {
    return width() <= 0.0 || height() <= 0.0;
  }

  [[nodiscard]] constexpr bool contains(const Point& p) const {
    return p.x >= xlo_ && p.x <= xhi_ && p.y >= ylo_ && p.y <= yhi_;
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const {
    return r.xlo_ >= xlo_ && r.xhi_ <= xhi_ && r.ylo_ >= ylo_ &&
           r.yhi_ <= yhi_;
  }

  /// Strict interior overlap (shared edges do not count).
  [[nodiscard]] constexpr bool overlaps(const Rect& r) const {
    return xlo_ < r.xhi_ && r.xlo_ < xhi_ && ylo_ < r.yhi_ && r.ylo_ < yhi_;
  }

  /// Width of the horizontal overlap interval; <= 0 means disjoint in x.
  [[nodiscard]] constexpr double overlap_dx(const Rect& r) const {
    return std::min(xhi_, r.xhi_) - std::max(xlo_, r.xlo_);
  }
  /// Height of the vertical overlap interval; <= 0 means disjoint in y.
  [[nodiscard]] constexpr double overlap_dy(const Rect& r) const {
    return std::min(yhi_, r.yhi_) - std::max(ylo_, r.ylo_);
  }
  /// Overlapping area (0 when disjoint).
  [[nodiscard]] constexpr double overlap_area(const Rect& r) const {
    const double dx = overlap_dx(r);
    const double dy = overlap_dy(r);
    return (dx > 0 && dy > 0) ? dx * dy : 0.0;
  }

  [[nodiscard]] constexpr Rect intersection(const Rect& r) const {
    if (!overlaps(r)) return Rect{};
    return Rect(std::max(xlo_, r.xlo_), std::max(ylo_, r.ylo_),
                std::min(xhi_, r.xhi_), std::min(yhi_, r.yhi_));
  }

  /// Smallest rectangle containing both.
  [[nodiscard]] constexpr Rect united(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return Rect(std::min(xlo_, r.xlo_), std::min(ylo_, r.ylo_),
                std::max(xhi_, r.xhi_), std::max(yhi_, r.yhi_));
  }

  /// Expand to include a point.
  constexpr void expand(const Point& p) {
    if (empty() && xlo_ == 0 && xhi_ == 0 && ylo_ == 0 && yhi_ == 0) {
      xlo_ = xhi_ = p.x;
      ylo_ = yhi_ = p.y;
      return;
    }
    xlo_ = std::min(xlo_, p.x);
    xhi_ = std::max(xhi_, p.x);
    ylo_ = std::min(ylo_, p.y);
    yhi_ = std::max(yhi_, p.y);
  }

  /// Translated copy.
  [[nodiscard]] constexpr Rect shifted(const Point& d) const {
    return Rect(xlo_ + d.x, ylo_ + d.y, xhi_ + d.x, yhi_ + d.y);
  }

  /// Grow (or shrink, if negative) by m on every side.
  [[nodiscard]] constexpr Rect inflated(double m) const {
    return Rect(xlo_ - m, ylo_ - m, xhi_ + m, yhi_ + m);
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

 private:
  double xlo_ = 0.0, ylo_ = 0.0, xhi_ = 0.0, yhi_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo() << ',' << r.ylo() << " .. " << r.xhi() << ','
            << r.yhi() << ']';
}

}  // namespace aplace::geom
