// geom is header-only; this TU anchors the static library.
#include "geom/grid.hpp"
#include "geom/orientation.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace aplace::geom {
namespace {
[[maybe_unused]] const int kGeomAnchor = 0;
}  // namespace
}  // namespace aplace::geom
