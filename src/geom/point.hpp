#pragma once
// 2-D point/vector type used throughout the placement engines.
//
// Coordinates are double microns. The detailed placer additionally works on
// an integer grid; grid snapping lives in geom/grid.hpp.

#include <cmath>
#include <compare>
#include <ostream>

namespace aplace::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Point& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr Point operator+(Point a, const Point& b) { return a += b; }
  friend constexpr Point operator-(Point a, const Point& b) { return a -= b; }
  friend constexpr Point operator*(Point a, double s) { return a *= s; }
  friend constexpr Point operator*(double s, Point a) { return a *= s; }
  friend constexpr bool operator==(const Point&, const Point&) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double manhattan(const Point& o) const {
    return std::abs(x - o.x) + std::abs(y - o.y);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace aplace::geom
