#pragma once
// Device orientation = independent horizontal/vertical mirroring.
//
// The ILP detailed placer (paper Eq. 4d) models flipping with binary
// variables f_x, f_y; the SA placer toggles the same flags as moves. Pin
// offsets are stored from the device's lower-left corner in the unflipped
// orientation and transformed on demand.

#include <cstdint>
#include <ostream>

#include "geom/point.hpp"

namespace aplace::geom {

struct Orientation {
  bool flip_x = false;  ///< mirrored about the device's vertical center line
  bool flip_y = false;  ///< mirrored about the device's horizontal center line

  friend constexpr bool operator==(const Orientation&,
                                   const Orientation&) = default;
};

/// Transform a pin offset (from the lower-left corner of an unflipped device
/// of size w x h) into the offset under the given orientation.
[[nodiscard]] constexpr Point apply_orientation(const Point& pin_offset,
                                                double w, double h,
                                                Orientation o) {
  return {o.flip_x ? (w - pin_offset.x) : pin_offset.x,
          o.flip_y ? (h - pin_offset.y) : pin_offset.y};
}

inline std::ostream& operator<<(std::ostream& os, const Orientation& o) {
  return os << (o.flip_x ? "FX" : "--") << (o.flip_y ? "FY" : "--");
}

}  // namespace aplace::geom
