#pragma once
// Integer placement grid helpers.
//
// The layout system is built on discrete grids (paper Sec. IV-B): the ILP
// detailed placer requires integer device coordinates and integer net
// bounding boxes. The grid pitch maps a continuous micron coordinate onto
// that lattice.

#include <cmath>

#include "base/check.hpp"
#include "geom/point.hpp"

namespace aplace::geom {

class Grid {
 public:
  explicit Grid(double pitch = 1.0) : pitch_(pitch) {
    APLACE_CHECK_MSG(pitch > 0.0, "grid pitch must be positive");
  }

  [[nodiscard]] double pitch() const { return pitch_; }

  /// Nearest grid line.
  [[nodiscard]] double snap(double v) const {
    return std::round(v / pitch_) * pitch_;
  }
  [[nodiscard]] Point snap(const Point& p) const {
    return {snap(p.x), snap(p.y)};
  }
  /// Snap up / down.
  [[nodiscard]] double snap_up(double v) const {
    return std::ceil(v / pitch_ - 1e-9) * pitch_;
  }
  [[nodiscard]] double snap_down(double v) const {
    return std::floor(v / pitch_ + 1e-9) * pitch_;
  }

  [[nodiscard]] long to_index(double v) const {
    return static_cast<long>(std::lround(v / pitch_));
  }
  [[nodiscard]] double from_index(long i) const {
    return static_cast<double>(i) * pitch_;
  }

  [[nodiscard]] bool on_grid(double v, double tol = 1e-6) const {
    return std::abs(v - snap(v)) <= tol;
  }

 private:
  double pitch_;
};

}  // namespace aplace::geom
