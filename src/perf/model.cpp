#include "perf/model.hpp"

#include <cmath>

namespace aplace::perf {

PerformanceModel::PerformanceModel(const netlist::CompiledCircuit& compiled,
                                   PerformanceSpec spec)
    : compiled_(&compiled), spec_(std::move(spec)) {
  APLACE_CHECK_MSG(!spec_.metrics.empty(), "empty performance spec");
  spec_.normalize_weights();
}

PerformanceModel::PerformanceModel(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    PerformanceSpec spec)
    : PerformanceModel(*compiled, std::move(spec)) {
  keep_ = std::move(compiled);
}

PerformanceModel::PerformanceModel(const netlist::Circuit& circuit,
                                   PerformanceSpec spec)
    : PerformanceModel(std::make_shared<const netlist::CompiledCircuit>(circuit),
                       std::move(spec)) {}

Features PerformanceModel::extract_features(
    const netlist::Placement& placement,
    const route::RoutingResult* routing) const {
  Features f;
  const netlist::CompiledCircuit& cc = *compiled_;
  const std::span<const std::uint8_t> critical = cc.net_critical();
  double crit = 0, total = 0;
  for (std::size_t i = 0; i < cc.num_nets(); ++i) {
    // Routed length when available; HPWL (a lower bound) otherwise.
    const double len =
        routing ? routing->net_length(NetId{i}) : placement.net_hpwl(NetId{i});
    total += len;
    if (critical[i] != 0) crit += len;
  }
  f.critical_len = crit / 50.0;
  f.total_len = total / 200.0;
  f.sqrt_area = std::sqrt(std::max(placement.layout_area(), 0.0)) / 20.0;

  double sep = 0;
  std::size_t pairs = 0;
  for (std::size_t g = 0; g < cc.num_symmetry_groups(); ++g) {
    const std::span<const std::uint32_t> pa = cc.sym_pair_a(g);
    const std::span<const std::uint32_t> pb = cc.sym_pair_b(g);
    for (std::size_t k = 0; k < pa.size(); ++k) {
      sep += (placement.position(DeviceId{pa[k]}) -
              placement.position(DeviceId{pb[k]}))
                 .norm();
      ++pairs;
    }
  }
  f.pair_sep = pairs > 0 ? sep / static_cast<double>(pairs) / 10.0 : 0.0;
  return f;
}

PerformanceResult PerformanceModel::evaluate_features(const Features& f) const {
  PerformanceResult out;
  out.features = f;
  const std::array<double, 4> x = f.as_array();
  for (const MetricSpec& m : spec_.metrics) {
    double load = 0;
    for (std::size_t k = 0; k < 4; ++k) load += m.sens[k] * x[k];
    load = std::max(load * spec_.sens_scale, 0.0);
    double z = 0;
    switch (m.form) {
      case MetricForm::InverseLoad: z = m.base / (1.0 + load); break;
      case MetricForm::LinearGrowth: z = m.base * (1.0 + load); break;
      case MetricForm::Subtractive: z = m.base - load; break;
    }
    const double zn = normalize_metric(z, m);
    out.metrics.push_back(MetricResult{m.name, z, zn, m.spec});
    out.fom += m.weight * zn;
  }
  return out;
}

PerformanceResult PerformanceModel::evaluate(
    const netlist::Placement& placement,
    const route::RoutingResult* routing) const {
  return evaluate_features(extract_features(placement, routing));
}

}  // namespace aplace::perf
