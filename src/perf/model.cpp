#include "perf/model.hpp"

#include <cmath>

namespace aplace::perf {

PerformanceModel::PerformanceModel(const netlist::Circuit& circuit,
                                   PerformanceSpec spec)
    : circuit_(&circuit), spec_(std::move(spec)) {
  APLACE_CHECK(circuit.finalized());
  APLACE_CHECK_MSG(!spec_.metrics.empty(), "empty performance spec");
  spec_.normalize_weights();
}

Features PerformanceModel::extract_features(
    const netlist::Placement& placement,
    const route::RoutingResult* routing) const {
  Features f;
  double crit = 0, total = 0;
  for (std::size_t i = 0; i < circuit_->num_nets(); ++i) {
    const NetId id{i};
    // Routed length when available; HPWL (a lower bound) otherwise.
    const double len =
        routing ? routing->net_length(id) : placement.net_hpwl(id);
    total += len;
    if (circuit_->net(id).critical) crit += len;
  }
  f.critical_len = crit / 50.0;
  f.total_len = total / 200.0;
  f.sqrt_area = std::sqrt(std::max(placement.layout_area(), 0.0)) / 20.0;

  double sep = 0;
  std::size_t pairs = 0;
  for (const netlist::SymmetryGroup& g :
       circuit_->constraints().symmetry_groups) {
    for (auto [a, b] : g.pairs) {
      sep += (placement.position(a) - placement.position(b)).norm();
      ++pairs;
    }
  }
  f.pair_sep = pairs > 0 ? sep / static_cast<double>(pairs) / 10.0 : 0.0;
  return f;
}

PerformanceResult PerformanceModel::evaluate_features(const Features& f) const {
  PerformanceResult out;
  out.features = f;
  const std::array<double, 4> x = f.as_array();
  for (const MetricSpec& m : spec_.metrics) {
    double load = 0;
    for (std::size_t k = 0; k < 4; ++k) load += m.sens[k] * x[k];
    load = std::max(load * spec_.sens_scale, 0.0);
    double z = 0;
    switch (m.form) {
      case MetricForm::InverseLoad: z = m.base / (1.0 + load); break;
      case MetricForm::LinearGrowth: z = m.base * (1.0 + load); break;
      case MetricForm::Subtractive: z = m.base - load; break;
    }
    const double zn = normalize_metric(z, m);
    out.metrics.push_back(MetricResult{m.name, z, zn, m.spec});
    out.fom += m.weight * zn;
  }
  return out;
}

PerformanceResult PerformanceModel::evaluate(
    const netlist::Placement& placement,
    const route::RoutingResult* routing) const {
  return evaluate_features(extract_features(placement, routing));
}

}  // namespace aplace::perf
