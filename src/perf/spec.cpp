#include "perf/spec.hpp"

#include <algorithm>

namespace aplace::perf {

void PerformanceSpec::normalize_weights() {
  double total = 0;
  for (const MetricSpec& m : metrics) total += m.weight;
  APLACE_CHECK_MSG(total > 0, "performance spec needs positive weights");
  for (MetricSpec& m : metrics) m.weight /= total;
}

double normalize_metric(double z, const MetricSpec& m) {
  APLACE_CHECK_MSG(m.spec > 0, "metric spec must be positive");
  if (m.direction == Direction::Above) {
    return std::min(std::max(z, 0.0) / m.spec, 1.0);
  }
  if (z <= 0) return 1.0;  // a non-positive "below" metric trivially passes
  return std::min(m.spec / z, 1.0);
}

}  // namespace aplace::perf
