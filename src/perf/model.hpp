#pragma once
// Surrogate analog performance simulator.
//
// Stand-in for the paper's route -> extract -> SPICE (GF12nm) loop: metric
// values are deterministic analytic functions of placement-derived parasitic
// features (routed wirelength of critical/all nets, layout area, symmetric
// pair separation). The functional forms are physically motivated —
// bandwidth and unity-gain frequency are load-capacitance-limited, offsets
// and delays grow with mismatch and parasitics, phase margin loses degrees
// to added poles — so the *shape* of placement-vs-performance comparisons is
// preserved even though absolute numbers are synthetic.

#include <memory>
#include <optional>

#include "netlist/compiled.hpp"
#include "netlist/placement.hpp"
#include "perf/spec.hpp"
#include "route/router.hpp"

namespace aplace::perf {

struct MetricResult {
  std::string name;
  double value = 0;       ///< raw metric value
  double normalized = 0;  ///< z~ in [0, 1]
  double spec = 0;
};

struct PerformanceResult {
  std::vector<MetricResult> metrics;
  double fom = 0;
  Features features;

  [[nodiscard]] bool satisfactory(double threshold) const {
    return fom >= threshold;
  }
};

class PerformanceModel {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  PerformanceModel(const netlist::CompiledCircuit& compiled,
                   PerformanceSpec spec);
  /// Share ownership of a compiled snapshot.
  PerformanceModel(std::shared_ptr<const netlist::CompiledCircuit> compiled,
                   PerformanceSpec spec);
  /// Convenience: compile privately from a raw circuit.
  PerformanceModel(const netlist::Circuit& circuit, PerformanceSpec spec);

  [[nodiscard]] const PerformanceSpec& spec() const { return spec_; }

  /// Extract parasitic features. Uses routed lengths when a routing result
  /// is supplied, HPWL otherwise (useful for quick estimates inside SA).
  [[nodiscard]] Features extract_features(
      const netlist::Placement& placement,
      const route::RoutingResult* routing = nullptr) const;

  [[nodiscard]] PerformanceResult evaluate(
      const netlist::Placement& placement,
      const route::RoutingResult* routing = nullptr) const;

  [[nodiscard]] PerformanceResult evaluate_features(const Features& f) const;

 private:
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  PerformanceSpec spec_;
};

}  // namespace aplace::perf
