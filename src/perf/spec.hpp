#pragma once
// Performance specifications and the paper's FOM (Sec. V-B).
//
// Each circuit carries a set of metrics z_i with spec psi_i, a direction
// (greater-is-better for gain/bandwidth, less-is-better for delay/offset)
// and a weight beta_i (sum = 1). Normalization follows paper Eq. 6:
//   z~ = min(z/psi, 1)  for "above" metrics,  min(psi/z, 1) for "below",
// and FOM = sum beta_i z~_i in [0, 1].

#include <array>
#include <string>
#include <vector>

#include "base/check.hpp"

namespace aplace::perf {

enum class Direction : std::uint8_t {
  Above,  ///< in Pi+, prefer z >= psi (gain, bandwidth, ...)
  Below,  ///< in Pi-, prefer z <= psi (delay, offset, power, ...)
};

/// Functional form mapping placement parasitics to a metric value.
enum class MetricForm : std::uint8_t {
  InverseLoad,   ///< base / (1 + s.x): capacitive-load-limited (UGF, BW)
  LinearGrowth,  ///< base * (1 + s.x): grows with parasitics (delay, offset)
  Subtractive,   ///< base - s.x: additive degradation (phase margin)
};

/// Placement-derived parasitic features the surrogate models consume.
/// All normalized to O(1) at typical layout scales.
struct Features {
  double critical_len = 0;  ///< routed length of critical nets / 50 um
  double total_len = 0;     ///< routed length of all nets / 200 um
  double sqrt_area = 0;     ///< sqrt(layout area) / 20 um
  double pair_sep = 0;      ///< mean symmetric-pair separation / 10 um

  [[nodiscard]] std::array<double, 4> as_array() const {
    return {critical_len, total_len, sqrt_area, pair_sep};
  }
};

struct MetricSpec {
  std::string name;
  double spec = 1.0;  ///< psi_i
  Direction direction = Direction::Above;
  double weight = 1.0;  ///< beta_i (normalized across the circuit's metrics)
  double base = 1.0;    ///< nominal metric value at zero parasitics
  MetricForm form = MetricForm::InverseLoad;
  std::array<double, 4> sens{};  ///< sensitivities to Features::as_array()
};

struct PerformanceSpec {
  std::vector<MetricSpec> metrics;
  double fom_threshold = 0.85;  ///< label boundary for the GNN dataset
  /// Global multiplier on every metric's sensitivities — the per-circuit
  /// calibration knob that anchors typical conventional-placement FOMs to
  /// the paper's reported range.
  double sens_scale = 1.0;

  /// Normalize weights to sum 1 (paper requires sum beta_i = 1).
  void normalize_weights();
};

/// Paper Eq. 6.
[[nodiscard]] double normalize_metric(double z, const MetricSpec& m);

}  // namespace aplace::perf
