#pragma once
// Devices and pins of an analog circuit.
//
// A Device is a rectangular layout object (transistor, capacitor, resistor,
// pre-merged module …) with a fixed footprint. Pins carry a geometric offset
// from the device's lower-left corner (in the unflipped orientation) and
// belong to exactly one net once connected.

#include <string>
#include <vector>

#include "base/ids.hpp"
#include "geom/point.hpp"

namespace aplace::netlist {

enum class DeviceType : std::uint8_t {
  Nmos,
  Pmos,
  Capacitor,
  Resistor,
  Inductor,
  Diode,
  Module,  ///< pre-composed sub-layout treated as one placeable block
};

[[nodiscard]] const char* to_string(DeviceType t);

struct Device {
  std::string name;
  DeviceType type = DeviceType::Nmos;
  double width = 0.0;   ///< footprint width in microns
  double height = 0.0;  ///< footprint height in microns
  std::vector<PinId> pins;

  [[nodiscard]] double area() const { return width * height; }
};

struct Pin {
  std::string name;
  DeviceId device;
  geom::Point offset;  ///< from device lower-left corner, unflipped
  NetId net;           ///< invalid until connected
};

}  // namespace aplace::netlist
