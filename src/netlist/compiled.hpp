#pragma once
// CompiledCircuit: the one flat, immutable SoA/CSR snapshot of a Circuit
// that every engine family consumes (paper Table III compares five engine
// families over the same netlists; each used to re-derive its own adjacency
// from the AoS Circuit).
//
// Built deterministically once per circuit — identical input produces
// identical arrays, bit for bit — and then shared read-only across engines
// and threads. The invariant downstream: engines never rebuild adjacency;
// they index these tables. See docs/DATA_MODEL.md.
//
// Lifetime: CompiledCircuit borrows the Circuit it was compiled from (the
// Circuit must outlive it). Engines either borrow a CompiledCircuit the
// caller owns, or hold a shared_ptr keep-alive (the flow/batch layer caches
// snapshots in core::CompileCache keyed by Circuit::digest()).

#include <cstdint>
#include <span>
#include <vector>

#include "base/aligned.hpp"
#include "geom/orientation.hpp"
#include "netlist/circuit.hpp"
#include "netlist/placement.hpp"

namespace aplace::netlist {

/// SoA mirror of Placement (x[], y[], orient[]) for kernels that want flat
/// coordinate arrays. Round-trips losslessly with Placement: the same
/// doubles and orientation flags, no transformation applied. Coordinate
/// storage is 32-byte aligned (base::AlignedVec) so 4-lane SIMD kernels can
/// use aligned loads.
struct PlacementState {
  base::AlignedVec x;
  base::AlignedVec y;
  std::vector<geom::Orientation> orient;

  PlacementState() = default;
  explicit PlacementState(std::size_t n) : x(n), y(n), orient(n) {}

  [[nodiscard]] std::size_t size() const { return x.size(); }

  [[nodiscard]] static PlacementState from_placement(const Placement& p);
  /// Copy this state into `p` (same circuit, same device count).
  void apply_to(Placement& p) const;
  /// Materialize a fresh Placement of `circuit` from this state.
  [[nodiscard]] Placement to_placement(const Circuit& circuit) const;
};

class CompiledCircuit {
 public:
  /// Compile a finalized circuit. Deterministic: registration order drives
  /// every table; no pointers, hashes or parallelism involved.
  explicit CompiledCircuit(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const { return *circuit_; }
  [[nodiscard]] std::size_t num_devices() const { return dev_width_.size(); }
  [[nodiscard]] std::size_t num_pins() const { return pin_offset_x_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return net_weight_.size(); }

  // ---- flat device arrays (registration order) -----------------------------
  [[nodiscard]] std::span<const double> dev_width() const { return dev_width_; }
  [[nodiscard]] std::span<const double> dev_height() const {
    return dev_height_;
  }
  [[nodiscard]] std::span<const double> dev_area() const { return dev_area_; }
  /// width/2 and height/2, precomputed once so every engine uses the exact
  /// same half-extent bits.
  [[nodiscard]] std::span<const double> dev_half_width() const {
    return dev_half_width_;
  }
  [[nodiscard]] std::span<const double> dev_half_height() const {
    return dev_half_height_;
  }
  [[nodiscard]] std::span<const DeviceType> dev_type() const {
    return dev_type_;
  }
  /// Sum of device footprints, accumulated in registration order (the same
  /// order — and therefore the same bits — as Circuit::total_device_area()).
  [[nodiscard]] double total_device_area() const { return total_device_area_; }

  // ---- flat pin arrays (registration order) --------------------------------
  [[nodiscard]] std::span<const double> pin_offset_x() const {
    return pin_offset_x_;
  }
  [[nodiscard]] std::span<const double> pin_offset_y() const {
    return pin_offset_y_;
  }
  [[nodiscard]] std::span<const std::uint32_t> pin_device() const {
    return pin_device_;
  }
  [[nodiscard]] std::span<const std::uint32_t> pin_net() const {
    return pin_net_;
  }

  // ---- flat net arrays -----------------------------------------------------
  [[nodiscard]] std::span<const double> net_weight() const {
    return net_weight_;
  }
  [[nodiscard]] std::span<const std::uint8_t> net_critical() const {
    return net_critical_;
  }

  // ---- CSR adjacency -------------------------------------------------------
  /// Pins of net `n`, in Net::pins (declaration) order.
  [[nodiscard]] std::span<const std::uint32_t> net_pins(std::size_t n) const {
    return csr(net_pin_off_, net_pins_, n);
  }
  /// Pins of device `d`, in Device::pins (declaration) order.
  [[nodiscard]] std::span<const std::uint32_t> device_pins(
      std::size_t d) const {
    return csr(dev_pin_off_, dev_pins_, d);
  }
  /// Nets incident to device `d`, deduplicated, ascending net order (the
  /// same table Circuit::nets_of() exposes).
  [[nodiscard]] std::span<const std::uint32_t> device_nets(
      std::size_t d) const {
    return csr(dev_net_off_, dev_nets_, d);
  }
  /// Devices on net `n`, deduplicated, ascending device order.
  [[nodiscard]] std::span<const std::uint32_t> net_devices(
      std::size_t n) const {
    return csr(net_dev_off_, net_devs_, n);
  }

  // ---- wirelength table ----------------------------------------------------
  // Non-degenerate (>= 2-pin) nets in net order, each pin carrying its
  // device index and center-relative offset (pin.offset - extent/2). This
  // is the table the smooth-wirelength kernels gather/scatter over.
  [[nodiscard]] std::size_t num_wl_nets() const { return wl_weight_.size(); }
  [[nodiscard]] std::span<const double> wl_weight() const { return wl_weight_; }
  /// Original NetId index of wirelength net `i`.
  [[nodiscard]] std::span<const std::uint32_t> wl_net_id() const {
    return wl_net_id_;
  }
  [[nodiscard]] std::span<const std::uint32_t> wl_pin_device(
      std::size_t i) const {
    return csr(wl_off_, wl_dev_, i);
  }
  [[nodiscard]] std::span<const double> wl_pin_dx(std::size_t i) const {
    return csr(wl_off_, wl_dx_, i);
  }
  [[nodiscard]] std::span<const double> wl_pin_dy(std::size_t i) const {
    return csr(wl_off_, wl_dy_, i);
  }

  // ---- flattened constraint tables -----------------------------------------
  [[nodiscard]] std::size_t num_symmetry_groups() const {
    return sym_axis_.size();
  }
  [[nodiscard]] Axis sym_axis(std::size_t g) const { return sym_axis_[g]; }
  [[nodiscard]] std::span<const std::uint32_t> sym_pair_a(std::size_t g) const {
    return csr(sym_pair_off_, sym_pair_a_, g);
  }
  [[nodiscard]] std::span<const std::uint32_t> sym_pair_b(std::size_t g) const {
    return csr(sym_pair_off_, sym_pair_b_, g);
  }
  [[nodiscard]] std::span<const std::uint32_t> sym_self(std::size_t g) const {
    return csr(sym_self_off_, sym_self_, g);
  }

  [[nodiscard]] std::size_t num_alignments() const {
    return align_kind_.size();
  }
  [[nodiscard]] std::span<const AlignmentKind> align_kind() const {
    return align_kind_;
  }
  [[nodiscard]] std::span<const std::uint32_t> align_a() const {
    return align_a_;
  }
  [[nodiscard]] std::span<const std::uint32_t> align_b() const {
    return align_b_;
  }

  [[nodiscard]] std::size_t num_orderings() const {
    return order_direction_.size();
  }
  [[nodiscard]] OrderDirection order_direction(std::size_t k) const {
    return order_direction_[k];
  }
  [[nodiscard]] std::span<const std::uint32_t> order_devices(
      std::size_t k) const {
    return csr(order_dev_off_, order_devs_, k);
  }

  [[nodiscard]] std::size_t num_centroids() const { return cent_a1_.size(); }
  [[nodiscard]] std::span<const std::uint32_t> cent_a1() const {
    return cent_a1_;
  }
  [[nodiscard]] std::span<const std::uint32_t> cent_a2() const {
    return cent_a2_;
  }
  [[nodiscard]] std::span<const std::uint32_t> cent_b1() const {
    return cent_b1_;
  }
  [[nodiscard]] std::span<const std::uint32_t> cent_b2() const {
    return cent_b2_;
  }

 private:
  template <class Vec>
  [[nodiscard]] static std::span<const typename Vec::value_type> csr(
      const std::vector<std::size_t>& off, const Vec& data, std::size_t i) {
    return {data.data() + off[i], off[i + 1] - off[i]};
  }

  const Circuit* circuit_;

  // Double tables use 32-byte-aligned storage (base::AlignedVec); the
  // std::span accessors above are unchanged, so this is invisible to
  // consumers except that SIMD kernels may use aligned loads on the table
  // heads.
  base::AlignedVec dev_width_, dev_height_, dev_area_;
  base::AlignedVec dev_half_width_, dev_half_height_;
  std::vector<DeviceType> dev_type_;
  double total_device_area_ = 0;

  base::AlignedVec pin_offset_x_, pin_offset_y_;
  std::vector<std::uint32_t> pin_device_, pin_net_;

  base::AlignedVec net_weight_;
  std::vector<std::uint8_t> net_critical_;

  std::vector<std::size_t> net_pin_off_;
  std::vector<std::uint32_t> net_pins_;
  std::vector<std::size_t> dev_pin_off_;
  std::vector<std::uint32_t> dev_pins_;
  std::vector<std::size_t> dev_net_off_;
  std::vector<std::uint32_t> dev_nets_;
  std::vector<std::size_t> net_dev_off_;
  std::vector<std::uint32_t> net_devs_;

  std::vector<std::size_t> wl_off_;
  std::vector<std::uint32_t> wl_dev_;
  base::AlignedVec wl_dx_, wl_dy_;
  base::AlignedVec wl_weight_;
  std::vector<std::uint32_t> wl_net_id_;

  std::vector<Axis> sym_axis_;
  std::vector<std::size_t> sym_pair_off_, sym_self_off_;
  std::vector<std::uint32_t> sym_pair_a_, sym_pair_b_, sym_self_;
  std::vector<AlignmentKind> align_kind_;
  std::vector<std::uint32_t> align_a_, align_b_;
  std::vector<OrderDirection> order_direction_;
  std::vector<std::size_t> order_dev_off_;
  std::vector<std::uint32_t> order_devs_;
  std::vector<std::uint32_t> cent_a1_, cent_a2_, cent_b1_, cent_b2_;
};

}  // namespace aplace::netlist
