#pragma once
// Placement: positions + orientations for every device of a Circuit.
//
// Device coordinates are *centers* (matching the paper's formulation where
// x_i is the center of device i). The class provides the geometric queries
// every engine needs: device rectangles, pin positions under flipping, net
// bounding boxes, HPWL and the layout bounding box.

#include <vector>

#include "geom/orientation.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "netlist/circuit.hpp"

namespace aplace::netlist {

class Placement {
 public:
  /// All devices at the origin, unflipped.
  explicit Placement(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const { return *circuit_; }

  // ---- device state --------------------------------------------------------
  [[nodiscard]] geom::Point position(DeviceId id) const {
    return positions_[id.index()];
  }
  void set_position(DeviceId id, geom::Point center) {
    positions_[id.index()] = center;
  }
  [[nodiscard]] geom::Orientation orientation(DeviceId id) const {
    return orientations_[id.index()];
  }
  void set_orientation(DeviceId id, geom::Orientation o) {
    orientations_[id.index()] = o;
  }

  [[nodiscard]] const std::vector<geom::Point>& positions() const {
    return positions_;
  }
  [[nodiscard]] const std::vector<geom::Orientation>& orientations() const {
    return orientations_;
  }
  void set_positions(std::vector<geom::Point> p);

  // ---- geometry queries ----------------------------------------------------
  [[nodiscard]] geom::Rect device_rect(DeviceId id) const;
  /// Pin position under the device's current orientation.
  [[nodiscard]] geom::Point pin_position(PinId id) const;
  /// Net bounding box over pin positions.
  [[nodiscard]] geom::Rect net_bbox(NetId id) const;
  /// HPWL of one net (net weight NOT applied).
  [[nodiscard]] double net_hpwl(NetId id) const;
  /// Total weighted HPWL over all nets.
  [[nodiscard]] double total_hpwl() const;
  /// Bounding box over all device rectangles.
  [[nodiscard]] geom::Rect bounding_box() const;
  /// Area of the bounding box (the paper's layout-area metric).
  [[nodiscard]] double layout_area() const { return bounding_box().area(); }
  /// Sum of pairwise device overlap areas (0 for a legal placement).
  [[nodiscard]] double total_overlap_area() const;

  /// Translate everything so the layout bounding box starts at (0, 0).
  void normalize_to_origin();

 private:
  const Circuit* circuit_;
  std::vector<geom::Point> positions_;          ///< device centers
  std::vector<geom::Orientation> orientations_;
};

}  // namespace aplace::netlist
