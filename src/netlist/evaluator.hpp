#pragma once
// Placement quality and legality evaluation.
//
// Used by every flow to score results and by the test suite to assert that
// legalized placements actually satisfy the analog constraints: no overlap,
// symmetry groups mirrored about a common axis, alignments met, orderings
// monotone, everything inside the die (when a die is given).

#include <string>
#include <vector>

#include "netlist/placement.hpp"

namespace aplace::netlist {

struct QualityReport {
  double hpwl = 0.0;          ///< total weighted HPWL (um)
  double area = 0.0;          ///< layout bounding-box area (um^2)
  double overlap_area = 0.0;  ///< residual pairwise overlap (um^2)
  double symmetry_violation = 0.0;   ///< sum of axis-mirror residuals (um)
  double alignment_violation = 0.0;  ///< sum of alignment residuals (um)
  double ordering_violation = 0.0;   ///< sum of order inversions (um)
  double centroid_violation = 0.0;   ///< common-centroid residuals (um)

  [[nodiscard]] bool legal(double tol = 1e-6) const {
    return overlap_area <= tol && symmetry_violation <= tol &&
           alignment_violation <= tol && ordering_violation <= tol &&
           centroid_violation <= tol;
  }
};

class Evaluator {
 public:
  explicit Evaluator(const Circuit& circuit) : circuit_(&circuit) {}

  [[nodiscard]] QualityReport evaluate(const Placement& pl) const;

  /// Residual of one symmetry group: best-axis mirror error (L1, um).
  /// The axis is free, so we compute the optimal axis first.
  [[nodiscard]] double symmetry_residual(const Placement& pl,
                                         const SymmetryGroup& g) const;
  [[nodiscard]] double alignment_residual(const Placement& pl,
                                          const AlignmentPair& p) const;
  [[nodiscard]] double ordering_residual(const Placement& pl,
                                         const OrderingConstraint& c) const;
  /// L1 residual of a common-centroid quad's diagonal-sum equalities.
  [[nodiscard]] double centroid_residual(const Placement& pl,
                                         const CommonCentroidQuad& q) const;

  /// The wirelength-optimal symmetry-axis coordinate for a group (mean of
  /// pair centers / self centers), in the mirrored dimension.
  [[nodiscard]] double best_axis(const Placement& pl,
                                 const SymmetryGroup& g) const;

  /// Human-readable list of violations (empty when legal).
  [[nodiscard]] std::vector<std::string> violations(const Placement& pl,
                                                    double tol = 1e-6) const;

 private:
  const Circuit* circuit_;
};

}  // namespace aplace::netlist
