#include "netlist/compiled.hpp"

#include <algorithm>

namespace aplace::netlist {

PlacementState PlacementState::from_placement(const Placement& p) {
  const std::size_t n = p.positions().size();
  PlacementState s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = p.positions()[i].x;
    s.y[i] = p.positions()[i].y;
    s.orient[i] = p.orientations()[i];
  }
  return s;
}

void PlacementState::apply_to(Placement& p) const {
  APLACE_CHECK(p.positions().size() == size());
  for (std::size_t i = 0; i < size(); ++i) {
    const DeviceId id(i);
    p.set_position(id, {x[i], y[i]});
    p.set_orientation(id, orient[i]);
  }
}

Placement PlacementState::to_placement(const Circuit& circuit) const {
  Placement p(circuit);
  apply_to(p);
  return p;
}

CompiledCircuit::CompiledCircuit(const Circuit& c) : circuit_(&c) {
  APLACE_CHECK_MSG(c.finalized(), "compile requires a finalized circuit");
  const std::size_t nd = c.num_devices();
  const std::size_t np = c.num_pins();
  const std::size_t nn = c.num_nets();

  // ---- flat device arrays --------------------------------------------------
  dev_width_.resize(nd);
  dev_height_.resize(nd);
  dev_area_.resize(nd);
  dev_half_width_.resize(nd);
  dev_half_height_.resize(nd);
  dev_type_.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const Device& dev = c.devices()[d];
    dev_width_[d] = dev.width;
    dev_height_[d] = dev.height;
    dev_area_[d] = dev.area();
    dev_half_width_[d] = dev.width / 2;
    dev_half_height_[d] = dev.height / 2;
    dev_type_[d] = dev.type;
    total_device_area_ += dev.area();
  }

  // ---- flat pin arrays -----------------------------------------------------
  pin_offset_x_.resize(np);
  pin_offset_y_.resize(np);
  pin_device_.resize(np);
  pin_net_.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    const Pin& pin = c.pins()[p];
    pin_offset_x_[p] = pin.offset.x;
    pin_offset_y_[p] = pin.offset.y;
    pin_device_[p] = static_cast<std::uint32_t>(pin.device.index());
    pin_net_[p] = static_cast<std::uint32_t>(pin.net.index());
  }

  // ---- flat net arrays + net->pin CSR (declaration order) ------------------
  net_weight_.resize(nn);
  net_critical_.resize(nn);
  net_pin_off_.assign(nn + 1, 0);
  for (std::size_t n = 0; n < nn; ++n) {
    const Net& net = c.nets()[n];
    net_weight_[n] = net.weight;
    net_critical_[n] = net.critical ? 1 : 0;
    for (PinId pid : net.pins) {
      net_pins_.push_back(static_cast<std::uint32_t>(pid.index()));
    }
    net_pin_off_[n + 1] = net_pins_.size();
  }

  // ---- device->pin CSR (declaration order) ---------------------------------
  dev_pin_off_.assign(nd + 1, 0);
  for (std::size_t d = 0; d < nd; ++d) {
    for (PinId pid : c.devices()[d].pins) {
      dev_pins_.push_back(static_cast<std::uint32_t>(pid.index()));
    }
    dev_pin_off_[d + 1] = dev_pins_.size();
  }

  // ---- device->net CSR (deduped, ascending — mirrors Circuit::nets_of) -----
  dev_net_off_.assign(nd + 1, 0);
  for (std::size_t d = 0; d < nd; ++d) {
    for (NetId nid : c.nets_of(DeviceId(d))) {
      dev_nets_.push_back(static_cast<std::uint32_t>(nid.index()));
    }
    dev_net_off_[d + 1] = dev_nets_.size();
  }

  // ---- net->device CSR (deduped via sort+unique, ascending) ----------------
  net_dev_off_.assign(nn + 1, 0);
  {
    std::vector<std::uint32_t> devs;
    for (std::size_t n = 0; n < nn; ++n) {
      devs.clear();
      for (PinId pid : c.nets()[n].pins) {
        devs.push_back(static_cast<std::uint32_t>(c.pin(pid).device.index()));
      }
      std::sort(devs.begin(), devs.end());
      devs.erase(std::unique(devs.begin(), devs.end()), devs.end());
      net_devs_.insert(net_devs_.end(), devs.begin(), devs.end());
      net_dev_off_[n + 1] = net_devs_.size();
    }
  }

  // ---- wirelength table (>= 2-pin nets, net order) -------------------------
  wl_off_.push_back(0);
  for (std::size_t n = 0; n < nn; ++n) {
    const Net& net = c.nets()[n];
    if (net.pins.size() < 2) continue;  // degenerate: no extent
    for (PinId pid : net.pins) {
      const Pin& pin = c.pin(pid);
      const Device& dev = c.device(pin.device);
      wl_dev_.push_back(static_cast<std::uint32_t>(pin.device.index()));
      wl_dx_.push_back(pin.offset.x - dev.width / 2);
      wl_dy_.push_back(pin.offset.y - dev.height / 2);
    }
    wl_off_.push_back(wl_dev_.size());
    wl_weight_.push_back(net.weight);
    wl_net_id_.push_back(static_cast<std::uint32_t>(n));
  }

  // ---- flattened constraint tables -----------------------------------------
  const ConstraintSet& cs = c.constraints();
  sym_pair_off_.push_back(0);
  sym_self_off_.push_back(0);
  for (const SymmetryGroup& g : cs.symmetry_groups) {
    sym_axis_.push_back(g.axis);
    for (auto [a, b] : g.pairs) {
      sym_pair_a_.push_back(static_cast<std::uint32_t>(a.index()));
      sym_pair_b_.push_back(static_cast<std::uint32_t>(b.index()));
    }
    for (DeviceId d : g.self_symmetric) {
      sym_self_.push_back(static_cast<std::uint32_t>(d.index()));
    }
    sym_pair_off_.push_back(sym_pair_a_.size());
    sym_self_off_.push_back(sym_self_.size());
  }
  for (const AlignmentPair& p : cs.alignments) {
    align_kind_.push_back(p.kind);
    align_a_.push_back(static_cast<std::uint32_t>(p.a.index()));
    align_b_.push_back(static_cast<std::uint32_t>(p.b.index()));
  }
  order_dev_off_.push_back(0);
  for (const OrderingConstraint& o : cs.orderings) {
    order_direction_.push_back(o.direction);
    for (DeviceId d : o.devices) {
      order_devs_.push_back(static_cast<std::uint32_t>(d.index()));
    }
    order_dev_off_.push_back(order_devs_.size());
  }
  for (const CommonCentroidQuad& q : cs.common_centroids) {
    cent_a1_.push_back(static_cast<std::uint32_t>(q.a1.index()));
    cent_a2_.push_back(static_cast<std::uint32_t>(q.a2.index()));
    cent_b1_.push_back(static_cast<std::uint32_t>(q.b1.index()));
    cent_b2_.push_back(static_cast<std::uint32_t>(q.b2.index()));
  }
}

}  // namespace aplace::netlist
