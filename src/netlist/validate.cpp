#include "netlist/validate.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace aplace::netlist {
namespace {

// Collects findings; the first becomes the Status message, the rest go to
// the diagnostic trail so one validate() pass reports everything at once.
class Findings {
 public:
  std::ostringstream& add() {
    lines_.emplace_back();
    return lines_.back();
  }

  [[nodiscard]] aplace::Status to_status() const {
    if (lines_.empty()) return {};
    aplace::Status s = aplace::Status::invalid_input(lines_.front().str());
    for (std::size_t i = 1; i < lines_.size(); ++i) {
      s.add_context(lines_[i].str());
    }
    return s;
  }

 private:
  std::vector<std::ostringstream> lines_;
};

// Cycle detection over the directed "must precede" graph of one dimension
// (x for LeftToRight orderings, y for BottomToTop). Kahn's algorithm; any
// node left unprocessed sits on a cycle.
void check_ordering_cycles(const Circuit& c, OrderDirection dir,
                           Findings& out) {
  const std::size_t n = c.num_devices();
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  bool any_edge = false;
  for (const OrderingConstraint& oc : c.constraints().orderings) {
    if (oc.direction != dir) continue;
    for (std::size_t k = 0; k + 1 < oc.devices.size(); ++k) {
      const std::size_t a = oc.devices[k].index();
      const std::size_t b = oc.devices[k + 1].index();
      if (a >= n || b >= n) continue;  // reported separately
      succ[a].push_back(b);
      ++indeg[b];
      any_edge = true;
    }
  }
  if (!any_edge) return;

  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) queue.push_back(i);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.back();
    queue.pop_back();
    ++processed;
    for (std::size_t v : succ[u]) {
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  if (processed == n) return;

  std::ostringstream& os = out.add();
  os << "ordering constraints ("
     << (dir == OrderDirection::LeftToRight ? "left-to-right" : "bottom-to-top")
     << ") form a cycle through:";
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] > 0) os << " '" << c.device(DeviceId{i}).name << "'";
  }
}

}  // namespace

aplace::Status validate(const Circuit& c) {
  Findings out;
  const std::size_t nd = c.num_devices();
  const std::size_t np = c.num_pins();
  const std::size_t nn = c.num_nets();

  if (nd == 0) {
    out.add() << "circuit '" << c.name() << "' has no devices";
    return out.to_status();
  }
  if (!c.finalized()) {
    out.add() << "circuit '" << c.name()
              << "' is not finalized; call finalize() before placement";
  }

  auto dev_ok = [&](DeviceId id) { return id.valid() && id.index() < nd; };
  auto dev_name = [&](DeviceId id) -> std::string {
    return dev_ok(id) ? c.device(id).name : "<bad id>";
  };

  // ---- devices -------------------------------------------------------------
  for (std::size_t i = 0; i < nd; ++i) {
    const Device& d = c.device(DeviceId{i});
    if (!(std::isfinite(d.width) && std::isfinite(d.height)) ||
        d.width <= 0 || d.height <= 0) {
      out.add() << "device '" << d.name << "' has a degenerate footprint "
                << d.width << " x " << d.height
                << " (zero/negative/non-finite)";
    }
  }

  // ---- pins / nets (referential integrity both ways) -----------------------
  for (std::size_t i = 0; i < np; ++i) {
    const Pin& p = c.pin(PinId{i});
    if (!dev_ok(p.device)) {
      out.add() << "pin '" << p.name << "' references a nonexistent device";
      continue;
    }
    if (!p.net.valid() || p.net.index() >= nn) {
      out.add() << "pin '" << p.name << "' on device '" << dev_name(p.device)
                << "' dangles (not connected to any net)";
    }
    const Device& d = c.device(p.device);
    if (!(p.offset.x >= 0 && p.offset.x <= d.width && p.offset.y >= 0 &&
          p.offset.y <= d.height)) {
      out.add() << "pin '" << p.name << "' offset lies outside device '"
                << d.name << "'";
    }
  }
  for (std::size_t e = 0; e < nn; ++e) {
    const Net& net = c.net(NetId{e});
    if (net.pins.empty()) {
      out.add() << "net '" << net.name << "' has no pins";
      continue;
    }
    if (!(std::isfinite(net.weight)) || net.weight <= 0) {
      out.add() << "net '" << net.name << "' has non-positive weight "
                << net.weight;
    }
    for (PinId pid : net.pins) {
      if (!pid.valid() || pid.index() >= np) {
        out.add() << "net '" << net.name << "' references a nonexistent pin";
      } else if (c.pin(pid).net != NetId{e}) {
        out.add() << "net '" << net.name
                  << "' lists a pin that belongs to another net";
      }
    }
  }

  // ---- symmetry groups -----------------------------------------------------
  // in_group: device -> (group index, axis) for cross-constraint checks.
  std::unordered_map<std::size_t, std::pair<std::size_t, Axis>> in_group;
  std::unordered_map<std::size_t, std::size_t> pair_partner;
  const auto& groups = c.constraints().symmetry_groups;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const SymmetryGroup& g = groups[gi];
    // Degenerate groups produce an identically-zero penalty gradient (the
    // optimal axis tracks whatever the group does), so the placer would
    // silently ignore them; reject them up front instead.
    if (g.pairs.empty() && g.self_symmetric.empty()) {
      out.add() << "symmetry group " << gi
                << " is empty (no pairs, no self-symmetric devices)";
      continue;
    }
    if (g.pairs.empty() && g.self_symmetric.size() == 1) {
      out.add() << "symmetry group " << gi
                << " contains only the single self-symmetric device '"
                << dev_name(g.self_symmetric.front())
                << "'; its mirror axis is unconstrained and the symmetry "
                << "penalty is identically zero";
    }
    auto claim = [&](DeviceId id) {
      if (!dev_ok(id)) {
        out.add() << "symmetry group " << gi
                  << " references a nonexistent device";
        return;
      }
      auto [it, inserted] = in_group.emplace(id.index(),
                                             std::make_pair(gi, g.axis));
      if (!inserted && it->second.first != gi) {
        out.add() << "device '" << dev_name(id) << "' belongs to symmetry "
                  << "groups " << it->second.first << " and " << gi
                  << "; a device may mirror about only one axis";
      }
    };
    for (auto [a, b] : g.pairs) {
      if (a == b) {
        out.add() << "symmetry group " << gi << " pairs device '"
                  << dev_name(a) << "' with itself";
        continue;
      }
      claim(a);
      claim(b);
      if (dev_ok(a) && dev_ok(b)) {
        pair_partner[a.index()] = b.index();
        pair_partner[b.index()] = a.index();
        const Device& da = c.device(a);
        const Device& db = c.device(b);
        if (da.width != db.width || da.height != db.height) {
          out.add() << "symmetry pair '" << da.name << "'/'" << db.name
                    << "' footprints differ; mirroring about a shared axis "
                    << "is impossible";
        }
      }
    }
    for (DeviceId d : g.self_symmetric) claim(d);
  }

  // ---- alignments ----------------------------------------------------------
  const auto& aligns = c.constraints().alignments;
  for (const AlignmentPair& p : aligns) {
    if (!dev_ok(p.a) || !dev_ok(p.b)) {
      out.add() << "alignment references a nonexistent device";
    } else if (p.a == p.b) {
      out.add() << "alignment of device '" << dev_name(p.a) << "' with itself";
    }
  }

  // ---- orderings -----------------------------------------------------------
  for (const OrderingConstraint& oc : c.constraints().orderings) {
    if (oc.devices.size() < 2) {
      out.add() << "ordering constraint with fewer than two devices";
      continue;
    }
    std::unordered_set<std::size_t> seen;
    for (DeviceId d : oc.devices) {
      if (!dev_ok(d)) {
        out.add() << "ordering references a nonexistent device";
      } else if (!seen.insert(d.index()).second) {
        out.add() << "device '" << dev_name(d)
                  << "' appears twice in one ordering constraint";
      }
    }

    // A symmetry pair mirrored about a vertical axis shares its y
    // coordinate; ordering the two bottom-to-top (which needs a strict y
    // gap) is contradictory. Likewise horizontal axis vs. left-to-right.
    const Axis conflicting_axis = oc.direction == OrderDirection::BottomToTop
                                      ? Axis::Vertical
                                      : Axis::Horizontal;
    for (std::size_t i = 0; i < oc.devices.size(); ++i) {
      for (std::size_t j = i + 1; j < oc.devices.size(); ++j) {
        const std::size_t a = oc.devices[i].index();
        const std::size_t b = oc.devices[j].index();
        auto pit = pair_partner.find(a);
        if (pit == pair_partner.end() || pit->second != b) continue;
        auto git = in_group.find(a);
        if (git != in_group.end() && git->second.second == conflicting_axis) {
          out.add() << "ordering forces a gap between symmetry pair '"
                    << dev_name(oc.devices[i]) << "'/'"
                    << dev_name(oc.devices[j])
                    << "' along the coordinate their axis makes equal";
        }
      }
    }

    // Alignments that equalize the ordered coordinate are contradictory:
    // Bottom / HorizontalCenter pin y while bottom-to-top ordering needs a
    // y gap; VerticalCenter pins x against left-to-right ordering.
    for (const AlignmentPair& p : aligns) {
      if (!dev_ok(p.a) || !dev_ok(p.b)) continue;
      const bool same_coord =
          oc.direction == OrderDirection::BottomToTop
              ? (p.kind == AlignmentKind::Bottom ||
                 p.kind == AlignmentKind::HorizontalCenter)
              : p.kind == AlignmentKind::VerticalCenter;
      if (!same_coord) continue;
      bool has_a = false, has_b = false;
      for (DeviceId d : oc.devices) {
        has_a |= d == p.a;
        has_b |= d == p.b;
      }
      if (has_a && has_b) {
        out.add() << "ordering forces a gap between aligned devices '"
                  << dev_name(p.a) << "'/'" << dev_name(p.b)
                  << "' in the aligned dimension";
      }
    }
  }
  check_ordering_cycles(c, OrderDirection::LeftToRight, out);
  check_ordering_cycles(c, OrderDirection::BottomToTop, out);

  // ---- common centroid -----------------------------------------------------
  for (const CommonCentroidQuad& q : c.constraints().common_centroids) {
    const DeviceId ids[4] = {q.a1, q.a2, q.b1, q.b2};
    bool ok = true;
    for (DeviceId d : ids) {
      if (!dev_ok(d)) {
        out.add() << "common-centroid quad references a nonexistent device";
        ok = false;
      }
    }
    if (!ok) continue;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        if (ids[i] == ids[j]) {
          out.add() << "common-centroid quad repeats device '"
                    << dev_name(ids[i]) << "'; four distinct devices required";
        }
      }
    }
  }

  return out.to_status();
}

}  // namespace aplace::netlist
