#include "netlist/evaluator.hpp"

#include <cmath>
#include <sstream>

namespace aplace::netlist {
namespace {

// Coordinate in the mirrored dimension (x for a vertical axis, y for a
// horizontal one) and the orthogonal dimension.
double mir(const geom::Point& p, Axis a) {
  return a == Axis::Vertical ? p.x : p.y;
}
double ort(const geom::Point& p, Axis a) {
  return a == Axis::Vertical ? p.y : p.x;
}

}  // namespace

double Evaluator::best_axis(const Placement& pl, const SymmetryGroup& g) const {
  // Minimizing sum of squared residuals over the axis position m:
  //   pairs contribute ((c_a + c_b)/2 - m)^2, selfs (c_r - m)^2,
  // so the optimum is the mean of pair midpoints and self centers.
  double sum = 0;
  std::size_t count = 0;
  for (auto [a, b] : g.pairs) {
    sum += (mir(pl.position(a), g.axis) + mir(pl.position(b), g.axis)) / 2.0;
    ++count;
  }
  for (DeviceId d : g.self_symmetric) {
    sum += mir(pl.position(d), g.axis);
    ++count;
  }
  APLACE_DCHECK(count > 0);
  return sum / static_cast<double>(count);
}

double Evaluator::symmetry_residual(const Placement& pl,
                                    const SymmetryGroup& g) const {
  const double m = best_axis(pl, g);
  double res = 0;
  for (auto [a, b] : g.pairs) {
    const geom::Point pa = pl.position(a);
    const geom::Point pb = pl.position(b);
    // Mirror condition: midpoint in the mirrored dim on the axis, equal
    // orthogonal coordinates.
    res += std::abs((mir(pa, g.axis) + mir(pb, g.axis)) / 2.0 - m);
    res += std::abs(ort(pa, g.axis) - ort(pb, g.axis));
  }
  for (DeviceId d : g.self_symmetric) {
    res += std::abs(mir(pl.position(d), g.axis) - m);
  }
  return res;
}

double Evaluator::alignment_residual(const Placement& pl,
                                     const AlignmentPair& p) const {
  const Device& da = circuit_->device(p.a);
  const Device& db = circuit_->device(p.b);
  const geom::Point pa = pl.position(p.a);
  const geom::Point pb = pl.position(p.b);
  switch (p.kind) {
    case AlignmentKind::Bottom:
      return std::abs((pa.y - da.height / 2) - (pb.y - db.height / 2));
    case AlignmentKind::VerticalCenter:
      return std::abs(pa.x - pb.x);
    case AlignmentKind::HorizontalCenter:
      return std::abs(pa.y - pb.y);
  }
  return 0;
}

double Evaluator::ordering_residual(const Placement& pl,
                                    const OrderingConstraint& c) const {
  double res = 0;
  for (std::size_t i = 0; i + 1 < c.devices.size(); ++i) {
    const DeviceId a = c.devices[i];
    const DeviceId b = c.devices[i + 1];
    const Device& da = circuit_->device(a);
    const Device& db = circuit_->device(b);
    if (c.direction == OrderDirection::LeftToRight) {
      const double gap = (pl.position(b).x - db.width / 2) -
                         (pl.position(a).x + da.width / 2);
      if (gap < 0) res += -gap;
    } else {
      const double gap = (pl.position(b).y - db.height / 2) -
                         (pl.position(a).y + da.height / 2);
      if (gap < 0) res += -gap;
    }
  }
  return res;
}

double Evaluator::centroid_residual(const Placement& pl,
                                    const CommonCentroidQuad& q) const {
  const geom::Point a1 = pl.position(q.a1), a2 = pl.position(q.a2);
  const geom::Point b1 = pl.position(q.b1), b2 = pl.position(q.b2);
  return std::abs((a1.x + a2.x) - (b1.x + b2.x)) +
         std::abs((a1.y + a2.y) - (b1.y + b2.y));
}

QualityReport Evaluator::evaluate(const Placement& pl) const {
  QualityReport r;
  r.hpwl = pl.total_hpwl();
  r.area = pl.layout_area();
  r.overlap_area = pl.total_overlap_area();
  const ConstraintSet& cs = circuit_->constraints();
  for (const SymmetryGroup& g : cs.symmetry_groups) {
    r.symmetry_violation += symmetry_residual(pl, g);
  }
  for (const AlignmentPair& p : cs.alignments) {
    r.alignment_violation += alignment_residual(pl, p);
  }
  for (const OrderingConstraint& c : cs.orderings) {
    r.ordering_violation += ordering_residual(pl, c);
  }
  for (const CommonCentroidQuad& q : cs.common_centroids) {
    r.centroid_violation += centroid_residual(pl, q);
  }
  return r;
}

std::vector<std::string> Evaluator::violations(const Placement& pl,
                                               double tol) const {
  std::vector<std::string> out;
  const std::size_t n = circuit_->num_devices();
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Rect ri = pl.device_rect(DeviceId{i});
    for (std::size_t j = i + 1; j < n; ++j) {
      const double ov = ri.overlap_area(pl.device_rect(DeviceId{j}));
      if (ov > tol) {
        std::ostringstream os;
        os << "overlap " << circuit_->device(DeviceId{i}).name << " / "
           << circuit_->device(DeviceId{j}).name << " area=" << ov;
        out.push_back(os.str());
      }
    }
  }
  const ConstraintSet& cs = circuit_->constraints();
  for (std::size_t k = 0; k < cs.symmetry_groups.size(); ++k) {
    const double res = symmetry_residual(pl, cs.symmetry_groups[k]);
    if (res > tol) {
      std::ostringstream os;
      os << "symmetry group " << k << " residual=" << res;
      out.push_back(os.str());
    }
  }
  for (std::size_t k = 0; k < cs.alignments.size(); ++k) {
    const double res = alignment_residual(pl, cs.alignments[k]);
    if (res > tol) {
      std::ostringstream os;
      os << "alignment " << k << " residual=" << res;
      out.push_back(os.str());
    }
  }
  for (std::size_t k = 0; k < cs.orderings.size(); ++k) {
    const double res = ordering_residual(pl, cs.orderings[k]);
    if (res > tol) {
      std::ostringstream os;
      os << "ordering " << k << " residual=" << res;
      out.push_back(os.str());
    }
  }
  for (std::size_t k = 0; k < cs.common_centroids.size(); ++k) {
    const double res = centroid_residual(pl, cs.common_centroids[k]);
    if (res > tol) {
      std::ostringstream os;
      os << "common centroid " << k << " residual=" << res;
      out.push_back(os.str());
    }
  }
  return out;
}

}  // namespace aplace::netlist
