#pragma once
// Circuit: the immutable-after-build netlist database all placers consume.
//
// Build pattern: add devices, add pins, create nets from pin lists, attach
// constraint groups, then call finalize(). finalize() validates referential
// integrity (every pin on a net, ids in range, constraint groups referencing
// real devices) and freezes the structure; placers then only vary positions
// via the Placement class.

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "base/ids.hpp"
#include "netlist/constraints.hpp"
#include "netlist/device.hpp"
#include "netlist/net.hpp"

namespace aplace::netlist {

class Circuit {
 public:
  explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------
  DeviceId add_device(std::string name, DeviceType type, double width,
                      double height);
  /// Add a pin to a device; offset measured from the device lower-left
  /// corner in the unflipped orientation. Must lie inside the footprint.
  PinId add_pin(DeviceId device, std::string name, geom::Point offset);
  /// Convenience: pin at the device center.
  PinId add_center_pin(DeviceId device, std::string name);
  NetId add_net(std::string name, std::vector<PinId> pins, double weight = 1.0,
                bool critical = false);

  void add_symmetry_group(SymmetryGroup g);
  void add_alignment(AlignmentPair p);
  void add_ordering(OrderingConstraint c);
  void add_common_centroid(CommonCentroidQuad q);

  /// Validate and freeze. Throws CheckError on inconsistency.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// FNV-1a64 over a canonical serialization of the whole netlist (devices,
  /// pins, nets, constraints). Computed eagerly by finalize() so concurrent
  /// readers never race on lazy initialization. Two circuits with equal
  /// digests compile to identical CompiledCircuit tables; the batch layer
  /// keys its compile cache and journal drift checks on it.
  [[nodiscard]] std::uint64_t digest() const {
    APLACE_DCHECK(finalized_);
    return digest_;
  }

  // ---- read access ---------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_devices() const { return devices_.size(); }
  [[nodiscard]] std::size_t num_pins() const { return pins_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }

  [[nodiscard]] const Device& device(DeviceId id) const {
    APLACE_DCHECK(id.index() < devices_.size());
    return devices_[id.index()];
  }
  [[nodiscard]] const Pin& pin(PinId id) const {
    APLACE_DCHECK(id.index() < pins_.size());
    return pins_[id.index()];
  }
  [[nodiscard]] const Net& net(NetId id) const {
    APLACE_DCHECK(id.index() < nets_.size());
    return nets_[id.index()];
  }

  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Pin>& pins() const { return pins_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] const ConstraintSet& constraints() const {
    return constraints_;
  }

  /// Lookup by name; returns invalid id when absent.
  [[nodiscard]] DeviceId find_device(const std::string& name) const;
  [[nodiscard]] NetId find_net(const std::string& name) const;

  /// Sum of device footprints.
  [[nodiscard]] double total_device_area() const;

  /// Nets incident to a device (deduplicated: a device with several pins on
  /// one net lists it once), in ascending net order. Built by finalize();
  /// the backbone of incremental (dirty-net) cost evaluation.
  [[nodiscard]] std::span<const NetId> nets_of(DeviceId id) const {
    APLACE_DCHECK(finalized_ && id.index() < devices_.size());
    return {device_nets_.data() + device_net_offset_[id.index()],
            device_net_offset_[id.index() + 1] -
                device_net_offset_[id.index()]};
  }

  /// Devices participating in any symmetry group, in group order.
  [[nodiscard]] std::vector<DeviceId> symmetric_devices() const;

 private:
  void require_mutable() const {
    APLACE_CHECK_MSG(!finalized_, "circuit '" << name_ << "' is finalized");
  }

  void build_device_net_adjacency();
  [[nodiscard]] std::uint64_t compute_digest() const;

  std::string name_;
  std::vector<Device> devices_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  // CSR device -> incident nets (deduped), filled by finalize().
  std::vector<std::size_t> device_net_offset_;
  std::vector<NetId> device_nets_;
  ConstraintSet constraints_;
  std::unordered_map<std::string, DeviceId> device_by_name_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::uint64_t digest_ = 0;
  bool finalized_ = false;
};

}  // namespace aplace::netlist
