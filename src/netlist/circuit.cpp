#include "netlist/circuit.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "base/fnv.hpp"

namespace aplace::netlist {

const char* to_string(DeviceType t) {
  switch (t) {
    case DeviceType::Nmos: return "nmos";
    case DeviceType::Pmos: return "pmos";
    case DeviceType::Capacitor: return "cap";
    case DeviceType::Resistor: return "res";
    case DeviceType::Inductor: return "ind";
    case DeviceType::Diode: return "diode";
    case DeviceType::Module: return "module";
  }
  return "?";
}

DeviceId Circuit::add_device(std::string name, DeviceType type, double width,
                             double height) {
  require_mutable();
  APLACE_CHECK_MSG(width > 0 && height > 0,
                   "device '" << name << "' needs positive footprint");
  APLACE_CHECK_MSG(!device_by_name_.contains(name),
                   "duplicate device name '" << name << "'");
  DeviceId id(devices_.size());
  devices_.push_back(Device{std::move(name), type, width, height, {}});
  device_by_name_.emplace(devices_.back().name, id);
  return id;
}

PinId Circuit::add_pin(DeviceId device, std::string name, geom::Point offset) {
  require_mutable();
  APLACE_CHECK(device.index() < devices_.size());
  Device& dev = devices_[device.index()];
  APLACE_CHECK_MSG(offset.x >= 0 && offset.x <= dev.width && offset.y >= 0 &&
                       offset.y <= dev.height,
                   "pin '" << name << "' offset " << offset
                           << " outside device '" << dev.name << "' footprint");
  PinId id(pins_.size());
  pins_.push_back(Pin{std::move(name), device, offset, NetId{}});
  dev.pins.push_back(id);
  return id;
}

PinId Circuit::add_center_pin(DeviceId device, std::string name) {
  APLACE_CHECK(device.index() < devices_.size());
  const Device& dev = devices_[device.index()];
  return add_pin(device, std::move(name), {dev.width / 2, dev.height / 2});
}

NetId Circuit::add_net(std::string name, std::vector<PinId> pins,
                       double weight, bool critical) {
  require_mutable();
  // Single-pin (dangling) nets are legal — they contribute nothing to
  // wirelength and every consumer skips them — but a pinless net is a bug.
  APLACE_CHECK_MSG(!pins.empty(), "net '" << name << "' needs at least one pin");
  APLACE_CHECK_MSG(!net_by_name_.contains(name),
                   "duplicate net name '" << name << "'");
  APLACE_CHECK_MSG(weight > 0, "net '" << name << "' weight must be positive");
  NetId id(nets_.size());
  for (PinId p : pins) {
    APLACE_CHECK(p.index() < pins_.size());
    APLACE_CHECK_MSG(!pins_[p.index()].net.valid(),
                     "pin already connected to a net");
    pins_[p.index()].net = id;
  }
  nets_.push_back(Net{std::move(name), std::move(pins), weight, critical});
  net_by_name_.emplace(nets_.back().name, id);
  return id;
}

void Circuit::add_symmetry_group(SymmetryGroup g) {
  require_mutable();
  APLACE_CHECK_MSG(!g.pairs.empty() || !g.self_symmetric.empty(),
                   "empty symmetry group");
  constraints_.symmetry_groups.push_back(std::move(g));
}

void Circuit::add_alignment(AlignmentPair p) {
  require_mutable();
  APLACE_CHECK(p.a != p.b);
  constraints_.alignments.push_back(p);
}

void Circuit::add_ordering(OrderingConstraint c) {
  require_mutable();
  APLACE_CHECK_MSG(c.devices.size() >= 2, "ordering needs >= 2 devices");
  constraints_.orderings.push_back(std::move(c));
}

void Circuit::add_common_centroid(CommonCentroidQuad q) {
  require_mutable();
  APLACE_CHECK_MSG(q.a1 != q.a2 && q.b1 != q.b2 && q.a1 != q.b1 &&
                       q.a1 != q.b2 && q.a2 != q.b1 && q.a2 != q.b2,
                   "common-centroid quad needs four distinct devices");
  constraints_.common_centroids.push_back(q);
}

void Circuit::finalize() {
  require_mutable();
  APLACE_CHECK_MSG(!devices_.empty(), "circuit has no devices");

  auto valid_device = [&](DeviceId id) {
    return id.valid() && id.index() < devices_.size();
  };

  // Every symmetry group member must be a real device and appear in at most
  // one group (overlapping groups would make the ILP infeasible).
  std::unordered_set<DeviceId> in_group;
  for (const SymmetryGroup& g : constraints_.symmetry_groups) {
    auto claim = [&](DeviceId id) {
      APLACE_CHECK_MSG(valid_device(id), "symmetry group: bad device id");
      APLACE_CHECK_MSG(in_group.insert(id).second,
                       "device '" << devices_[id.index()].name
                                  << "' in two symmetry groups");
    };
    for (auto [a, b] : g.pairs) {
      APLACE_CHECK_MSG(a != b, "symmetry pair of a device with itself");
      claim(a);
      claim(b);
    }
    for (DeviceId d : g.self_symmetric) claim(d);
    // Mirrored pairs must share footprints or the mirror is geometrically
    // impossible on a common axis.
    for (auto [a, b] : g.pairs) {
      const Device& da = devices_[a.index()];
      const Device& db = devices_[b.index()];
      APLACE_CHECK_MSG(da.width == db.width && da.height == db.height,
                       "symmetry pair '" << da.name << "'/'" << db.name
                                         << "' footprint mismatch");
    }
  }
  for (const AlignmentPair& p : constraints_.alignments) {
    APLACE_CHECK(valid_device(p.a) && valid_device(p.b));
  }
  for (const OrderingConstraint& c : constraints_.orderings) {
    std::unordered_set<DeviceId> seen;
    for (DeviceId d : c.devices) {
      APLACE_CHECK(valid_device(d));
      APLACE_CHECK_MSG(seen.insert(d).second, "duplicate device in ordering");
    }
  }
  for (const CommonCentroidQuad& q : constraints_.common_centroids) {
    for (DeviceId d : {q.a1, q.a2, q.b1, q.b2}) {
      APLACE_CHECK_MSG(valid_device(d), "common centroid: bad device id");
    }
    // Matched devices should share footprints within each diagonal.
    const Device& a1 = devices_[q.a1.index()];
    const Device& a2 = devices_[q.a2.index()];
    const Device& b1 = devices_[q.b1.index()];
    const Device& b2 = devices_[q.b2.index()];
    APLACE_CHECK_MSG(a1.width == a2.width && a1.height == a2.height &&
                         b1.width == b2.width && b1.height == b2.height,
                     "common centroid: diagonal footprint mismatch");
  }
  for (const Pin& p : pins_) {
    APLACE_CHECK_MSG(p.net.valid(),
                     "pin '" << p.name << "' left unconnected; every pin "
                             "must be on a net before finalize()");
  }
  build_device_net_adjacency();
  digest_ = compute_digest();
  finalized_ = true;
}

std::uint64_t Circuit::compute_digest() const {
  // Canonical serialization: every structural field in registration order,
  // strings null-terminated, numbers as raw little-endian bit patterns (the
  // build is single-platform; doubles hash their exact bits).
  std::uint64_t h = base::kFnvOffsetBasis;
  auto mix_bytes = [&](const void* p, std::size_t n) {
    h = base::fnv1a64_accumulate(
        h, std::string_view(static_cast<const char*>(p), n));
  };
  auto mix_str = [&](const std::string& s) {
    mix_bytes(s.data(), s.size());
    const char zero = '\0';
    mix_bytes(&zero, 1);
  };
  auto mix_u64 = [&](std::uint64_t v) { mix_bytes(&v, sizeof v); };
  auto mix_f64 = [&](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    mix_u64(bits);
  };

  mix_str(name_);
  mix_u64(devices_.size());
  for (const Device& d : devices_) {
    mix_str(d.name);
    mix_u64(static_cast<std::uint64_t>(d.type));
    mix_f64(d.width);
    mix_f64(d.height);
  }
  mix_u64(pins_.size());
  for (const Pin& p : pins_) {
    mix_str(p.name);
    mix_u64(p.device.index());
    mix_f64(p.offset.x);
    mix_f64(p.offset.y);
  }
  mix_u64(nets_.size());
  for (const Net& n : nets_) {
    mix_str(n.name);
    mix_f64(n.weight);
    mix_u64(n.critical ? 1 : 0);
    mix_u64(n.pins.size());
    for (PinId p : n.pins) mix_u64(p.index());
  }
  mix_u64(constraints_.symmetry_groups.size());
  for (const SymmetryGroup& g : constraints_.symmetry_groups) {
    mix_u64(static_cast<std::uint64_t>(g.axis));
    mix_u64(g.pairs.size());
    for (auto [a, b] : g.pairs) {
      mix_u64(a.index());
      mix_u64(b.index());
    }
    mix_u64(g.self_symmetric.size());
    for (DeviceId d : g.self_symmetric) mix_u64(d.index());
  }
  mix_u64(constraints_.alignments.size());
  for (const AlignmentPair& p : constraints_.alignments) {
    mix_u64(static_cast<std::uint64_t>(p.kind));
    mix_u64(p.a.index());
    mix_u64(p.b.index());
  }
  mix_u64(constraints_.orderings.size());
  for (const OrderingConstraint& c : constraints_.orderings) {
    mix_u64(static_cast<std::uint64_t>(c.direction));
    mix_u64(c.devices.size());
    for (DeviceId d : c.devices) mix_u64(d.index());
  }
  mix_u64(constraints_.common_centroids.size());
  for (const CommonCentroidQuad& q : constraints_.common_centroids) {
    mix_u64(q.a1.index());
    mix_u64(q.a2.index());
    mix_u64(q.b1.index());
    mix_u64(q.b2.index());
  }
  return h;
}

void Circuit::build_device_net_adjacency() {
  const std::size_t n = devices_.size();
  device_net_offset_.assign(n + 1, 0);
  device_nets_.clear();
  // Pins are grouped per device already; nets_of must be deduplicated, so
  // collect per device with a net-indexed stamp array.
  std::vector<std::size_t> stamp(nets_.size(), static_cast<std::size_t>(-1));
  for (std::size_t d = 0; d < n; ++d) {
    for (PinId pid : devices_[d].pins) {
      const NetId net = pins_[pid.index()].net;
      if (stamp[net.index()] != d) {
        stamp[net.index()] = d;
        device_nets_.push_back(net);
      }
    }
    device_net_offset_[d + 1] = device_nets_.size();
    // Ascending net order keeps dirty-net iteration deterministic and
    // cache-friendly regardless of pin declaration order.
    std::sort(device_nets_.begin() +
                  static_cast<std::ptrdiff_t>(device_net_offset_[d]),
              device_nets_.end(),
              [](NetId a, NetId b) { return a.index() < b.index(); });
  }
}

DeviceId Circuit::find_device(const std::string& name) const {
  auto it = device_by_name_.find(name);
  return it == device_by_name_.end() ? DeviceId{} : it->second;
}

NetId Circuit::find_net(const std::string& name) const {
  auto it = net_by_name_.find(name);
  return it == net_by_name_.end() ? NetId{} : it->second;
}

double Circuit::total_device_area() const {
  double a = 0;
  for (const Device& d : devices_) a += d.area();
  return a;
}

std::vector<DeviceId> Circuit::symmetric_devices() const {
  std::vector<DeviceId> out;
  for (const SymmetryGroup& g : constraints_.symmetry_groups) {
    for (auto [a, b] : g.pairs) {
      out.push_back(a);
      out.push_back(b);
    }
    for (DeviceId d : g.self_symmetric) out.push_back(d);
  }
  return out;
}

}  // namespace aplace::netlist
