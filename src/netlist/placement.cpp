#include "netlist/placement.hpp"

#include <limits>

namespace aplace::netlist {

Placement::Placement(const Circuit& circuit)
    : circuit_(&circuit),
      positions_(circuit.num_devices()),
      orientations_(circuit.num_devices()) {
  APLACE_CHECK_MSG(circuit.finalized(),
                   "placement requires a finalized circuit");
}

void Placement::set_positions(std::vector<geom::Point> p) {
  APLACE_CHECK(p.size() == positions_.size());
  positions_ = std::move(p);
}

geom::Rect Placement::device_rect(DeviceId id) const {
  const Device& d = circuit_->device(id);
  return geom::Rect::centered(positions_[id.index()], d.width, d.height);
}

geom::Point Placement::pin_position(PinId id) const {
  const Pin& pin = circuit_->pin(id);
  const Device& dev = circuit_->device(pin.device);
  const geom::Point local = geom::apply_orientation(
      pin.offset, dev.width, dev.height, orientations_[pin.device.index()]);
  const geom::Point center = positions_[pin.device.index()];
  return {center.x - dev.width / 2 + local.x,
          center.y - dev.height / 2 + local.y};
}

geom::Rect Placement::net_bbox(NetId id) const {
  const Net& net = circuit_->net(id);
  APLACE_DCHECK(!net.pins.empty());
  double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
  double ylo = xlo, yhi = -xlo;
  for (PinId p : net.pins) {
    const geom::Point pos = pin_position(p);
    xlo = std::min(xlo, pos.x);
    xhi = std::max(xhi, pos.x);
    ylo = std::min(ylo, pos.y);
    yhi = std::max(yhi, pos.y);
  }
  return {xlo, ylo, xhi, yhi};
}

double Placement::net_hpwl(NetId id) const {
  const geom::Rect bb = net_bbox(id);
  return bb.width() + bb.height();
}

double Placement::total_hpwl() const {
  double total = 0;
  for (std::size_t i = 0; i < circuit_->num_nets(); ++i) {
    const NetId id{i};
    total += circuit_->net(id).weight * net_hpwl(id);
  }
  return total;
}

geom::Rect Placement::bounding_box() const {
  geom::Rect bb;
  bool first = true;
  for (std::size_t i = 0; i < circuit_->num_devices(); ++i) {
    const geom::Rect r = device_rect(DeviceId{i});
    bb = first ? r : bb.united(r);
    first = false;
  }
  return bb;
}

double Placement::total_overlap_area() const {
  double total = 0;
  const std::size_t n = circuit_->num_devices();
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Rect ri = device_rect(DeviceId{i});
    for (std::size_t j = i + 1; j < n; ++j) {
      total += ri.overlap_area(device_rect(DeviceId{j}));
    }
  }
  return total;
}

void Placement::normalize_to_origin() {
  const geom::Rect bb = bounding_box();
  const geom::Point shift{-bb.xlo(), -bb.ylo()};
  for (geom::Point& p : positions_) p += shift;
}

}  // namespace aplace::netlist
