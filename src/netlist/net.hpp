#pragma once
// Nets connect pins. Net weight scales its wirelength contribution; the
// `critical` flag marks performance-critical signals (used by the surrogate
// performance models and the monotone-ordering constraints).

#include <string>
#include <vector>

#include "base/ids.hpp"

namespace aplace::netlist {

struct Net {
  std::string name;
  std::vector<PinId> pins;
  double weight = 1.0;
  bool critical = false;

  [[nodiscard]] std::size_t degree() const { return pins.size(); }
};

}  // namespace aplace::netlist
