#pragma once
// Analog geometric constraint groups (paper Sec. IV, Eq. 4f-4i).
//
//  * SymmetryGroup — device pairs mirrored about a common (vertical or
//    horizontal) axis plus self-symmetric devices centered on it. The axis
//    position is a free variable chosen by the placer.
//  * AlignmentPair — bottom alignment (shared bottom edge, 4g) or vertical
//    central alignment (shared x center, 4h).
//  * OrderingConstraint — devices that must appear in a fixed left-to-right
//    (or bottom-to-top) order to realize monotone current paths (4i).

#include <vector>

#include "base/ids.hpp"

namespace aplace::netlist {

enum class Axis : std::uint8_t {
  Vertical,    ///< pairs mirror in x about a vertical line
  Horizontal,  ///< pairs mirror in y about a horizontal line
};

struct SymmetryGroup {
  Axis axis = Axis::Vertical;
  std::vector<std::pair<DeviceId, DeviceId>> pairs;
  std::vector<DeviceId> self_symmetric;

  [[nodiscard]] std::size_t device_count() const {
    return 2 * pairs.size() + self_symmetric.size();
  }
};

enum class AlignmentKind : std::uint8_t {
  Bottom,           ///< equal bottom edges: y_a - h_a/2 == y_b - h_b/2
  VerticalCenter,   ///< equal x centers:   x_a == x_b
  HorizontalCenter, ///< equal y centers:   y_a == y_b
};

struct AlignmentPair {
  AlignmentKind kind = AlignmentKind::Bottom;
  DeviceId a;
  DeviceId b;
};

enum class OrderDirection : std::uint8_t {
  LeftToRight,  ///< increasing x, non-overlapping in x
  BottomToTop,  ///< increasing y, non-overlapping in y
};

struct OrderingConstraint {
  OrderDirection direction = OrderDirection::LeftToRight;
  std::vector<DeviceId> devices;  ///< required order, front = leftmost/bottom
};

/// Common-centroid quad (classic matched-device pattern, e.g. cross-coupled
/// current-mirror banks): devices a1/a2 form one diagonal and b1/b2 the
/// other; the two diagonals must share a centroid:
///   x_a1 + x_a2 == x_b1 + x_b2   and   y_a1 + y_a2 == y_b1 + y_b2.
struct CommonCentroidQuad {
  DeviceId a1, a2;  ///< first matched device, placed diagonally
  DeviceId b1, b2;  ///< second matched device, the other diagonal
};

struct ConstraintSet {
  std::vector<SymmetryGroup> symmetry_groups;
  std::vector<AlignmentPair> alignments;
  std::vector<OrderingConstraint> orderings;
  std::vector<CommonCentroidQuad> common_centroids;

  [[nodiscard]] bool empty() const {
    return symmetry_groups.empty() && alignments.empty() &&
           orderings.empty() && common_centroids.empty();
  }
};

}  // namespace aplace::netlist
