#pragma once
// Pre-flight netlist validation for untrusted inputs.
//
// validate() inspects a Circuit without throwing and returns a structured
// Status: Ok when the netlist and its constraint set are well formed, or
// InvalidInput with an actionable message (plus every further finding in the
// diagnostic trail). It catches the classes of malformed input that would
// otherwise surface deep inside a solver as a raw CheckError, an infeasible
// LP or a NaN: ordering cycles, devices claimed by multiple symmetry groups,
// degenerate footprints, dangling pin/net references, and constraint
// combinations that are contradictory by construction (a symmetry pair
// ordered along its equal coordinate, an alignment fighting an ordering).
//
// Every flow runs validate() before constructing placers, so adversarial
// netlists are rejected with context instead of crashing the pipeline.

#include "base/status.hpp"
#include "netlist/circuit.hpp"

namespace aplace::netlist {

[[nodiscard]] aplace::Status validate(const Circuit& circuit);

}  // namespace aplace::netlist
