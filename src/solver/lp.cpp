#include "solver/lp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aplace::solver {

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::Optimal: return "optimal";
    case LpStatus::Infeasible: return "infeasible";
    case LpStatus::Unbounded: return "unbounded";
    case LpStatus::IterLimit: return "iteration-limit";
  }
  return "?";
}

int LpProblem::add_variable(double lo, double hi, double cost,
                            std::string name) {
  APLACE_CHECK_MSG(lo <= hi, "variable bounds crossed");
  lo_.push_back(lo);
  hi_.push_back(hi);
  cost_.push_back(cost);
  integer_.push_back(0);
  names_.push_back(std::move(name));
  return static_cast<int>(lo_.size()) - 1;
}

void LpProblem::add_constraint(std::vector<LpTerm> terms, Relation rel,
                               double rhs) {
  for (const LpTerm& t : terms) {
    APLACE_CHECK_MSG(
        t.var >= 0 && static_cast<std::size_t>(t.var) < lo_.size(),
        "constraint references unknown variable");
  }
  constraints_.push_back(LpConstraint{std::move(terms), rel, rhs});
}

namespace {

// Standard-form translation of one natural variable.
struct VarMap {
  // x = offset + sign * x'   (x' >= 0), or x = p - q for free variables.
  double offset = 0.0;
  double sign = 1.0;
  int col = -1;       ///< column of x' (or p)
  int col_neg = -1;   ///< column of q for free variables, else -1
  double upper_row_rhs = kInf;  ///< finite => x' <= rhs row added
};

struct Standard {
  std::size_t n_cols = 0;  // structural standard-form columns
  std::vector<VarMap> map;
  // rows: coefficients over structural columns, relation, rhs
  std::vector<std::vector<double>> rows;
  std::vector<Relation> rels;
  std::vector<double> rhs;
  std::vector<double> cost;    // structural costs
  double cost_offset = 0.0;
};

Standard to_standard_form(const LpProblem& p) {
  Standard s;
  const std::size_t n = p.num_variables();
  s.map.resize(n);

  for (std::size_t j = 0; j < n; ++j) {
    const double lo = p.lower_bound(static_cast<int>(j));
    const double hi = p.upper_bound(static_cast<int>(j));
    VarMap& m = s.map[j];
    if (lo == -kInf && hi == kInf) {
      m.col = static_cast<int>(s.n_cols++);
      m.col_neg = static_cast<int>(s.n_cols++);
    } else if (lo > -kInf) {
      m.offset = lo;
      m.sign = 1.0;
      m.col = static_cast<int>(s.n_cols++);
      if (hi < kInf) m.upper_row_rhs = hi - lo;
    } else {
      // lo == -inf, hi finite: x = hi - x'
      m.offset = hi;
      m.sign = -1.0;
      m.col = static_cast<int>(s.n_cols++);
    }
  }

  s.cost.assign(s.n_cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const VarMap& m = s.map[j];
    const double c = p.cost(static_cast<int>(j));
    s.cost[m.col] += c * m.sign;
    if (m.col_neg >= 0) s.cost[m.col_neg] -= c;
    s.cost_offset += c * m.offset;
  }

  auto add_row = [&](const std::vector<LpTerm>& terms, Relation rel,
                     double rhs) {
    std::vector<double> row(s.n_cols, 0.0);
    double b = rhs;
    for (const LpTerm& t : terms) {
      const VarMap& m = s.map[t.var];
      row[m.col] += t.coef * m.sign;
      if (m.col_neg >= 0) row[m.col_neg] -= t.coef;
      b -= t.coef * m.offset;
    }
    s.rows.push_back(std::move(row));
    s.rels.push_back(rel);
    s.rhs.push_back(b);
  };

  for (const LpConstraint& c : p.constraints()) {
    add_row(c.terms, c.relation, c.rhs);
  }
  // Upper-bound rows for shifted variables.
  for (std::size_t j = 0; j < n; ++j) {
    const VarMap& m = s.map[j];
    if (m.upper_row_rhs < kInf) {
      std::vector<double> row(s.n_cols, 0.0);
      row[m.col] = 1.0;
      s.rows.push_back(std::move(row));
      s.rels.push_back(Relation::LessEq);
      s.rhs.push_back(m.upper_row_rhs);
    }
  }
  return s;
}

// Dense two-phase tableau simplex over the standard form. Flat row-major
// storage: a_[r * stride + c], last column = rhs.
class Tableau {
 public:
  Tableau(const Standard& s, const SimplexOptions& opts)
      : opts_(opts), m_(s.rows.size()), n_struct_(s.n_cols) {
    // Normalize rows so rhs >= 0 first.
    std::vector<std::vector<double>> rows = s.rows;
    std::vector<Relation> rels = s.rels;
    std::vector<double> rhs = s.rhs;
    for (std::size_t i = 0; i < m_; ++i) {
      if (rhs[i] < 0) {
        for (double& v : rows[i]) v = -v;
        rhs[i] = -rhs[i];
        if (rels[i] == Relation::LessEq) rels[i] = Relation::GreaterEq;
        else if (rels[i] == Relation::GreaterEq) rels[i] = Relation::LessEq;
      }
    }
    std::size_t n_slack = 0, n_art = 0;
    for (Relation r : rels) {
      if (r == Relation::LessEq) ++n_slack;
      else if (r == Relation::GreaterEq) { ++n_slack; ++n_art; }
      else ++n_art;
    }
    n_total_ = n_struct_ + n_slack + n_art;
    art_begin_ = n_struct_ + n_slack;
    stride_ = n_total_ + 1;
    a_.assign(m_ * stride_, 0.0);
    basis_.assign(m_, -1);

    std::size_t slack_col = n_struct_;
    std::size_t art_col = art_begin_;
    for (std::size_t i = 0; i < m_; ++i) {
      double* row = &a_[i * stride_];
      for (std::size_t j = 0; j < n_struct_; ++j) row[j] = rows[i][j];
      row[n_total_] = rhs[i];
      switch (rels[i]) {
        case Relation::LessEq:
          row[slack_col] = 1.0;
          basis_[i] = static_cast<int>(slack_col++);
          break;
        case Relation::GreaterEq:
          row[slack_col++] = -1.0;
          row[art_col] = 1.0;
          basis_[i] = static_cast<int>(art_col++);
          break;
        case Relation::Equal:
          row[art_col] = 1.0;
          basis_[i] = static_cast<int>(art_col++);
          break;
      }
    }
    cost_.assign(n_total_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost_[j] = s.cost[j];
    max_iters_ = opts_.max_iters > 0
                     ? opts_.max_iters
                     : static_cast<long>(60 * (m_ + n_total_) + 2000);
  }

  LpStatus solve() {
    // ---- Phase 1: minimize sum of artificials ----
    if (art_begin_ < n_total_) {
      std::vector<double> phase1(n_total_, 0.0);
      for (std::size_t j = art_begin_; j < n_total_; ++j) phase1[j] = 1.0;
      build_reduced_costs(phase1);
      const LpStatus st = iterate(/*phase1=*/true);
      if (st != LpStatus::Optimal) return st;
      if (objective_value(phase1) > 1e-6) return LpStatus::Infeasible;
      // Drive remaining artificial basics out where possible.
      for (std::size_t i = 0; i < m_; ++i) {
        if (static_cast<std::size_t>(basis_[i]) >= art_begin_) {
          const double* row = &a_[i * stride_];
          std::size_t piv = n_total_;
          for (std::size_t j = 0; j < art_begin_; ++j) {
            if (std::abs(row[j]) > opts_.tol) { piv = j; break; }
          }
          if (piv < n_total_) pivot(i, piv);
          // else: redundant row; artificial stays basic at value 0.
        }
      }
    }
    // ---- Phase 2 ----
    build_reduced_costs(cost_);
    return iterate(/*phase1=*/false);
  }

  [[nodiscard]] std::vector<double> structural_values() const {
    std::vector<double> x(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= 0 && static_cast<std::size_t>(basis_[i]) < n_struct_) {
        x[basis_[i]] = a_[i * stride_ + n_total_];
      }
    }
    return x;
  }

 private:
  void build_reduced_costs(const std::vector<double>& c) {
    red_.assign(stride_, 0.0);
    for (std::size_t j = 0; j < n_total_; ++j) red_[j] = c[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = c[basis_[i]];
      if (cb == 0.0) continue;
      const double* row = &a_[i * stride_];
      for (std::size_t j = 0; j < stride_; ++j) red_[j] -= cb * row[j];
    }
  }

  [[nodiscard]] double objective_value(const std::vector<double>& c) const {
    double v = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      v += c[basis_[i]] * a_[i * stride_ + n_total_];
    }
    return v;
  }

  void pivot(std::size_t r, std::size_t c) {
    double* prow = &a_[r * stride_];
    const double piv = prow[c];
    const double inv = 1.0 / piv;
    for (std::size_t j = 0; j < stride_; ++j) prow[j] *= inv;
    prow[c] = 1.0;  // kill roundoff on the pivot column
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      double* row = &a_[i * stride_];
      const double f = row[c];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < stride_; ++j) row[j] -= f * prow[j];
      row[c] = 0.0;
    }
    const double f = red_[c];
    if (f != 0.0) {
      for (std::size_t j = 0; j < stride_; ++j) red_[j] -= f * prow[j];
      red_[c] = 0.0;
    }
    basis_[r] = static_cast<int>(c);
  }

  LpStatus iterate(bool phase1) {
    long degenerate_streak = 0;
    for (long it = 0; it < max_iters_; ++it) {
      // Entering column: Dantzig rule, Bland after a degeneracy streak.
      const bool bland = degenerate_streak > static_cast<long>(m_) + 50;
      std::size_t enter = n_total_;
      double best = -opts_.tol;
      const std::size_t limit = phase1 ? n_total_ : art_begin_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (red_[j] < best) {
          best = red_[j];
          enter = j;
          if (bland) break;
        }
      }
      if (enter == n_total_) return LpStatus::Optimal;

      // Ratio test.
      std::size_t leave = m_;
      double best_ratio = kInf;
      for (std::size_t i = 0; i < m_; ++i) {
        const double aij = a_[i * stride_ + enter];
        if (aij > opts_.tol) {
          const double ratio = a_[i * stride_ + n_total_] / aij;
          if (ratio < best_ratio - 1e-12 ||
              (ratio < best_ratio + 1e-12 && leave < m_ &&
               basis_[i] < basis_[leave])) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return LpStatus::Unbounded;
      degenerate_streak = best_ratio <= 1e-12 ? degenerate_streak + 1 : 0;
      pivot(leave, enter);
    }
    return LpStatus::IterLimit;
  }

  SimplexOptions opts_;
  std::size_t m_;
  std::size_t n_struct_;
  std::size_t n_total_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t stride_ = 0;
  long max_iters_ = 0;
  std::vector<double> a_;  // flat row-major tableau, last column = rhs
  std::vector<double> cost_;
  std::vector<double> red_;  // reduced cost row
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& p, SimplexOptions opts) {
  LpSolution sol;
  const Standard s = to_standard_form(p);
  if (s.rows.empty()) {
    // Unconstrained: optimum is at a finite bound for every variable with
    // nonzero cost; infinite otherwise -> report unbounded.
    sol.x.assign(p.num_variables(), 0.0);
    sol.objective = 0.0;
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      const double c = p.cost(static_cast<int>(j));
      const double lo = p.lower_bound(static_cast<int>(j));
      const double hi = p.upper_bound(static_cast<int>(j));
      double v = 0.0;
      if (c > 0) v = lo;
      else if (c < 0) v = hi;
      else v = (lo > -kInf) ? lo : (hi < kInf ? hi : 0.0);
      if (v == -kInf || v == kInf) {
        sol.status = LpStatus::Unbounded;
        return sol;
      }
      sol.x[j] = v;
      sol.objective += c * v;
    }
    sol.status = LpStatus::Optimal;
    return sol;
  }

  Tableau t(s, opts);
  sol.status = t.solve();
  if (sol.status != LpStatus::Optimal) return sol;

  const std::vector<double> xs = t.structural_values();
  sol.x.assign(p.num_variables(), 0.0);
  sol.objective = s.cost_offset;
  for (std::size_t j = 0; j < p.num_variables(); ++j) {
    const VarMap& m = s.map[j];
    double v = m.offset + m.sign * xs[m.col];
    if (m.col_neg >= 0) v -= xs[m.col_neg];
    sol.x[j] = v;
    sol.objective += p.cost(static_cast<int>(j)) * (v - m.offset);
  }
  return sol;
}

}  // namespace aplace::solver
