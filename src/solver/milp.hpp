#pragma once
// Branch-and-bound MILP on top of the simplex LP solver.
//
// Depth-first search branching on the most fractional integer-marked
// variable, pruning on the incumbent objective. Analog detailed-placement
// instances have only a handful of fractional binaries at the relaxation
// optimum, so the tree stays tiny; a node limit guards the worst case and
// a rounding fallback guarantees an integral answer whenever the relaxation
// is feasible and rounding preserves feasibility (true for the flipping
// binaries, which never constrain other variables).

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "solver/lp.hpp"

namespace aplace::solver {

struct MilpOptions {
  long max_nodes = 4000;
  double int_tol = 1e-6;
  SimplexOptions simplex;
  /// Wall-clock budget polled once per branch-and-bound node; an expired
  /// deadline truncates the search (rounding fallback still runs, so a
  /// feasible relaxation keeps yielding an integral answer).
  Deadline deadline;
  /// Cooperative cancellation, polled at the same per-node site. A cancelled
  /// search truncates exactly like an expired deadline.
  base::CancelToken cancel;
};

struct MilpSolution {
  LpStatus status = LpStatus::IterLimit;
  std::vector<double> x;
  double objective = 0.0;
  long nodes_explored = 0;
  bool proven_optimal = false;  ///< false when the node limit truncated search
  bool deadline_hit = false;    ///< the wall-clock budget truncated the search

  [[nodiscard]] bool ok() const { return status == LpStatus::Optimal; }
};

[[nodiscard]] MilpSolution solve_milp(const LpProblem& p,
                                      MilpOptions opts = {});

}  // namespace aplace::solver
