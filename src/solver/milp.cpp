#include "solver/milp.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <tuple>
#include <vector>

namespace aplace::solver {
namespace {

struct Node {
  // Bound overrides: (var, lo, hi) triples accumulated down the branch.
  std::vector<std::tuple<int, double, double>> bounds;
};

// Most fractional integer variable, or nullopt when integral.
std::optional<int> pick_branch_var(const LpProblem& p,
                                   const std::vector<double>& x, double tol) {
  int best = -1;
  double best_frac = tol;
  for (std::size_t j = 0; j < p.num_variables(); ++j) {
    if (!p.is_integer(static_cast<int>(j))) continue;
    const double f = x[j] - std::floor(x[j]);
    const double frac = std::min(f, 1.0 - f);
    if (frac > best_frac) {
      best_frac = frac;
      best = static_cast<int>(j);
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

}  // namespace

MilpSolution solve_milp(const LpProblem& p, MilpOptions opts) {
  MilpSolution best;
  best.status = LpStatus::Infeasible;

  std::vector<Node> stack;
  stack.push_back(Node{});
  bool truncated = false;

  LpProblem work = p;  // bounds mutated per node, structure shared

  while (!stack.empty() && best.nodes_explored < opts.max_nodes) {
    if (opts.deadline.expired() || opts.cancel.cancelled()) {
      best.deadline_hit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;

    // Apply node bounds on a fresh copy of the original bounds.
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      work.set_bounds(static_cast<int>(j),
                      p.lower_bound(static_cast<int>(j)),
                      p.upper_bound(static_cast<int>(j)));
    }
    bool bounds_ok = true;
    for (auto [var, lo, hi] : node.bounds) {
      // Intersect with overrides applied earlier along this branch so a
      // later bound never loosens an earlier one.
      const double new_lo = std::max(lo, work.lower_bound(var));
      const double new_hi = std::min(hi, work.upper_bound(var));
      if (new_lo > new_hi) { bounds_ok = false; break; }
      work.set_bounds(var, new_lo, new_hi);
    }
    if (!bounds_ok) continue;

    const LpSolution rel = solve_lp(work, opts.simplex);
    if (rel.status == LpStatus::Unbounded) {
      // MILP unbounded only if relaxation unbounded at the root.
      if (best.status == LpStatus::Infeasible && node.bounds.empty()) {
        best.status = LpStatus::Unbounded;
        return best;
      }
      continue;
    }
    if (!rel.ok()) continue;
    if (best.status == LpStatus::Optimal &&
        rel.objective >= best.objective - 1e-12) {
      continue;  // pruned by bound
    }

    const auto branch = pick_branch_var(p, rel.x, opts.int_tol);
    if (!branch) {
      // Integral: new incumbent.
      best.status = LpStatus::Optimal;
      best.x = rel.x;
      best.objective = rel.objective;
      continue;
    }

    const int var = *branch;
    const double val = rel.x[var];
    // Branch down then up; push "up" first so "down" (usually closer to the
    // relaxation) is explored first in DFS order.
    Node down = node, up = node;
    down.bounds.emplace_back(var, p.lower_bound(var), std::floor(val));
    up.bounds.emplace_back(var, std::ceil(val), p.upper_bound(var));
    // Tighten against any earlier override of the same variable.
    stack.push_back(std::move(up));
    stack.push_back(std::move(down));
  }
  if (!stack.empty()) truncated = true;
  best.proven_optimal = best.status == LpStatus::Optimal && !truncated;

  if (best.status != LpStatus::Optimal) {
    // Rounding fallback: solve the relaxation, fix every integer variable to
    // its rounded value, re-solve. Guarantees an answer when fixing keeps
    // the problem feasible (flipping binaries always do).
    const LpSolution rel = solve_lp(p, opts.simplex);
    if (rel.ok()) {
      bool roundable = true;
      for (std::size_t j = 0; j < p.num_variables(); ++j) {
        const double lo = p.lower_bound(static_cast<int>(j));
        const double hi = p.upper_bound(static_cast<int>(j));
        work.set_bounds(static_cast<int>(j), lo, hi);
        if (p.is_integer(static_cast<int>(j))) {
          // Round toward the nearest integer *inside* the original bounds;
          // if none exists the problem has no integral solution here.
          double r = std::round(rel.x[j]);
          if (r < lo) r = std::ceil(lo - 1e-9);
          if (r > hi) r = std::floor(hi + 1e-9);
          if (r < lo - 1e-9 || r > hi + 1e-9) {
            roundable = false;
            break;
          }
          work.set_bounds(static_cast<int>(j), r, r);
        }
      }
      if (!roundable) return best;
      const LpSolution fixed = solve_lp(work, opts.simplex);
      if (fixed.ok()) {
        best.status = LpStatus::Optimal;
        best.x = fixed.x;
        best.objective = fixed.objective;
        best.proven_optimal = false;
      }
    }
  }
  return best;
}

}  // namespace aplace::solver
