#pragma once
// Linear programming front-end used by both detailed placers.
//
// The problem is stated in natural form: variables with (possibly infinite)
// bounds and a linear cost, constraints as sparse rows with <=, >= or ==
// relations. solve_lp() runs a dense two-phase primal simplex; analog
// placement problems have at most a few hundred variables and rows, so a
// dense tableau is both simple and fast enough.
//
// solve_milp() (see milp.hpp) adds branch-and-bound over variables marked
// integer — in this project the device-flipping binaries of the ILP detailed
// placer (paper Eq. 4d/4j).

#include <limits>
#include <string>
#include <vector>

#include "base/check.hpp"

namespace aplace::solver {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Relation : std::uint8_t { LessEq, GreaterEq, Equal };

struct LpTerm {
  int var = -1;
  double coef = 0.0;
};

struct LpConstraint {
  std::vector<LpTerm> terms;
  Relation relation = Relation::LessEq;
  double rhs = 0.0;
};

enum class LpStatus : std::uint8_t {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

[[nodiscard]] const char* to_string(LpStatus s);

struct LpSolution {
  LpStatus status = LpStatus::IterLimit;
  std::vector<double> x;  ///< values of the natural variables
  double objective = 0.0;

  [[nodiscard]] bool ok() const { return status == LpStatus::Optimal; }
};

class LpProblem {
 public:
  /// Add a variable with bounds [lo, hi] and objective coefficient `cost`
  /// (minimization). Returns its index.
  int add_variable(double lo, double hi, double cost, std::string name = "");

  void add_constraint(std::vector<LpTerm> terms, Relation rel, double rhs);

  /// Convenience: a <= x_a - x_b  etc. expressed by callers directly.
  void set_bounds(int var, double lo, double hi) {
    APLACE_CHECK(var >= 0 && static_cast<std::size_t>(var) < lo_.size());
    APLACE_CHECK_MSG(lo <= hi, "variable bounds crossed");
    lo_[var] = lo;
    hi_[var] = hi;
  }
  void set_integer(int var, bool is_int = true) {
    APLACE_CHECK(var >= 0 && static_cast<std::size_t>(var) < lo_.size());
    integer_[var] = is_int;
  }

  [[nodiscard]] std::size_t num_variables() const { return lo_.size(); }
  [[nodiscard]] std::size_t num_constraints() const {
    return constraints_.size();
  }
  [[nodiscard]] double lower_bound(int v) const { return lo_[v]; }
  [[nodiscard]] double upper_bound(int v) const { return hi_[v]; }
  [[nodiscard]] double cost(int v) const { return cost_[v]; }
  [[nodiscard]] bool is_integer(int v) const { return integer_[v]; }
  [[nodiscard]] const std::string& name(int v) const { return names_[v]; }
  [[nodiscard]] const std::vector<LpConstraint>& constraints() const {
    return constraints_;
  }

 private:
  std::vector<double> lo_, hi_, cost_;
  std::vector<char> integer_;
  std::vector<std::string> names_;
  std::vector<LpConstraint> constraints_;
};

struct SimplexOptions {
  long max_iters = 0;  ///< 0 = automatic (50 * (rows + cols))
  double tol = 1e-9;   ///< pivot / feasibility tolerance
};

/// Solve the LP relaxation (integrality marks ignored).
[[nodiscard]] LpSolution solve_lp(const LpProblem& p, SimplexOptions opts = {});

}  // namespace aplace::solver
