#pragma once
// Bell-shaped density penalty (NTUplace3, Chen et al. TCAD'08) used by the
// prior-work analytical placer [11].
//
// Each device spreads a smooth "potential" over nearby bins via the
// separable bell function p(d) (quadratic core, quadratic tail, compact
// support); the penalty is sum_b (D_b - M_b)^2 where D_b is the smoothed
// density of bin b and M_b the uniform expected density. Normalization
// constants c_i keep each device's total contribution equal to its area and
// are treated as constants in the gradient (as in NTUplace3).

#include <memory>
#include <span>

#include "density/bin_grid.hpp"
#include "netlist/compiled.hpp"
#include "numeric/matrix.hpp"

namespace aplace::density {

/// Bell spreading profile for one dimension.
/// d = |center - bin_center|, w = device extent, wb = bin extent.
[[nodiscard]] double bell_value(double d, double w, double wb);
/// d(bell)/dd (negative for d > 0 inside the support).
[[nodiscard]] double bell_derivative(double d, double w, double wb);

class BellDensity {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  BellDensity(const netlist::CompiledCircuit& compiled,
              const geom::Rect& region, std::size_t nx, std::size_t ny,
              double target_density);
  /// Share ownership of a compiled snapshot.
  BellDensity(std::shared_ptr<const netlist::CompiledCircuit> compiled,
              const geom::Rect& region, std::size_t nx, std::size_t ny,
              double target_density);
  /// Convenience: compile privately from a raw circuit.
  BellDensity(const netlist::Circuit& circuit, const geom::Rect& region,
              std::size_t nx, std::size_t ny, double target_density);

  [[nodiscard]] const BinGrid& grid() const { return grid_; }

  /// Penalty value at v; adds scale * gradient into grad. Refreshes
  /// overflow() (computed from true footprints, as in ElectroDensity).
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale);

  [[nodiscard]] double overflow() const { return overflow_; }

 private:
  /// Per-device bell support range on the bin grid.
  struct Support {
    std::size_t cx0, cx1, cy0, cy1;
  };

  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  BinGrid grid_;
  double target_;
  // Device footprints, viewing the compiled snapshot's flat arrays.
  std::span<const double> dev_w_, dev_h_, dev_area_;
  double overflow_ = 1.0;
  // Evaluation scratch, hoisted so the CG hot loop stays allocation-free.
  numeric::Matrix dmat_, occ_, resid_;
  std::vector<double> norm_;
  std::vector<Support> support_;
};

}  // namespace aplace::density
