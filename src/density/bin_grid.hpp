#pragma once
// Uniform bin grid over the placement region, shared by both density models.
//
// Matrix convention: rho(r, c) with r = y-bin row and c = x-bin column,
// matching numeric::spectral's (rows = y, cols = x) layout.

#include "geom/rect.hpp"
#include "numeric/matrix.hpp"

namespace aplace::density {

class BinGrid {
 public:
  BinGrid(const geom::Rect& region, std::size_t nx, std::size_t ny);

  [[nodiscard]] const geom::Rect& region() const { return region_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] double bin_w() const { return bin_w_; }
  [[nodiscard]] double bin_h() const { return bin_h_; }
  [[nodiscard]] double bin_area() const { return bin_w_ * bin_h_; }

  [[nodiscard]] double bin_center_x(std::size_t c) const {
    return region_.xlo() + (static_cast<double>(c) + 0.5) * bin_w_;
  }
  [[nodiscard]] double bin_center_y(std::size_t r) const {
    return region_.ylo() + (static_cast<double>(r) + 0.5) * bin_h_;
  }
  [[nodiscard]] geom::Rect bin_rect(std::size_t r, std::size_t c) const {
    const double x = region_.xlo() + static_cast<double>(c) * bin_w_;
    const double y = region_.ylo() + static_cast<double>(r) * bin_h_;
    return {x, y, x + bin_w_, y + bin_h_};
  }

  /// Inclusive x-bin range overlapped by [xlo, xhi] (clamped to the grid).
  [[nodiscard]] std::pair<std::size_t, std::size_t> x_range(double xlo,
                                                            double xhi) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> y_range(double ylo,
                                                            double yhi) const;

  /// Accumulate `amount` distributed over rect ∩ grid proportionally to
  /// overlap area into `into` (rows=ny, cols=nx). Area fully outside the
  /// region is dropped (callers keep devices inside via boundary penalties).
  void splat(const geom::Rect& rect, double amount,
             numeric::Matrix& into) const;

 private:
  geom::Rect region_;
  std::size_t nx_, ny_;
  double bin_w_, bin_h_;
};

}  // namespace aplace::density
