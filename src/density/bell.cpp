#include "density/bell.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::density {

double bell_value(double d, double w, double wb) {
  d = std::abs(d);
  const double d1 = w / 2 + wb;
  const double d2 = w / 2 + 2 * wb;
  if (d <= d1) {
    const double a = 4.0 / ((w + 2 * wb) * (w + 4 * wb));
    return 1.0 - a * d * d;
  }
  if (d <= d2) {
    const double b = 2.0 / (wb * (w + 4 * wb));
    const double t = d - d2;
    return b * t * t;
  }
  return 0.0;
}

double bell_derivative(double d, double w, double wb) {
  const double s = d < 0 ? -1.0 : 1.0;
  d = std::abs(d);
  const double d1 = w / 2 + wb;
  const double d2 = w / 2 + 2 * wb;
  if (d <= d1) {
    const double a = 4.0 / ((w + 2 * wb) * (w + 4 * wb));
    return s * (-2.0 * a * d);
  }
  if (d <= d2) {
    const double b = 2.0 / (wb * (w + 4 * wb));
    return s * (2.0 * b * (d - d2));
  }
  return 0.0;
}

BellDensity::BellDensity(const netlist::CompiledCircuit& compiled,
                         const geom::Rect& region, std::size_t nx,
                         std::size_t ny, double target_density)
    : compiled_(&compiled),
      grid_(region, nx, ny),
      target_(target_density),
      dev_w_(compiled.dev_width()),
      dev_h_(compiled.dev_height()),
      dev_area_(compiled.dev_area()),
      dmat_(ny, nx),
      occ_(ny, nx),
      resid_(ny, nx) {
  norm_.assign(dev_w_.size(), 0.0);
  support_.resize(dev_w_.size());
}

BellDensity::BellDensity(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    const geom::Rect& region, std::size_t nx, std::size_t ny,
    double target_density)
    : BellDensity(*compiled, region, nx, ny, target_density) {
  keep_ = std::move(compiled);
}

BellDensity::BellDensity(const netlist::Circuit& circuit,
                         const geom::Rect& region, std::size_t nx,
                         std::size_t ny, double target_density)
    : BellDensity(std::make_shared<const netlist::CompiledCircuit>(circuit),
                  region, nx, ny, target_density) {}

double BellDensity::value_and_grad(std::span<const double> v,
                                   std::span<double> grad, double scale) {
  const std::size_t n = dev_w_.size();
  APLACE_DCHECK(v.size() == 2 * n && grad.size() == v.size());
  const std::size_t nx = grid_.nx(), ny = grid_.ny();
  const double wb = grid_.bin_w(), hb = grid_.bin_h();

  // Smoothed density D and true occupancy (for overflow); member scratch
  // keeps the hot loop allocation-free. Two passes per device: first to get
  // the normalizers, second (after D is known) for the gradient.
  numeric::Matrix& dmat = dmat_;
  numeric::Matrix& occ = occ_;
  std::vector<double>& norm = norm_;
  std::vector<Support>& support = support_;
  dmat.fill(0.0);
  occ.fill(0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i], y = v[n + i];
    const double rx = dev_w_[i] / 2 + 2 * wb;
    const double ry = dev_h_[i] / 2 + 2 * hb;
    const auto [cx0, cx1] = grid_.x_range(x - rx, x + rx);
    const auto [cy0, cy1] = grid_.y_range(y - ry, y + ry);
    support[i] = {cx0, cx1, cy0, cy1};
    double total = 0;
    for (std::size_t r = cy0; r <= cy1; ++r) {
      const double py = bell_value(y - grid_.bin_center_y(r), dev_h_[i], hb);
      if (py == 0) continue;
      for (std::size_t c = cx0; c <= cx1; ++c) {
        const double px = bell_value(x - grid_.bin_center_x(c), dev_w_[i], wb);
        total += px * py;
      }
    }
    norm[i] = total > 1e-12 ? dev_area_[i] / total : 0.0;
    for (std::size_t r = cy0; r <= cy1; ++r) {
      const double py = bell_value(y - grid_.bin_center_y(r), dev_h_[i], hb);
      if (py == 0) continue;
      for (std::size_t c = cx0; c <= cx1; ++c) {
        const double px = bell_value(x - grid_.bin_center_x(c), dev_w_[i], wb);
        dmat(r, c) += norm[i] * px * py;
      }
    }
    grid_.splat(geom::Rect::centered({x, y}, dev_w_[i], dev_h_[i]),
                dev_area_[i], occ);
  }

  // Overflow from true occupancy. As in ElectroDensity, bins are smaller
  // than devices, so only occupancy beyond a full bin (= device overlap)
  // counts.
  double over = 0;
  const double cap = grid_.bin_area();
  for (double o : occ.data()) over += std::max(0.0, o - cap);
  const double total_area = compiled_->total_device_area();
  overflow_ = total_area > 0 ? over / total_area : 0.0;

  // Penalty sum_b (D_b - M_b)^2 — but only over-filled bins are penalized;
  // under-filled bins are fine for analog (area is minimized separately).
  const double expected = cap;
  double value = 0;
  numeric::Matrix& resid = resid_;
  for (std::size_t r = 0; r < ny; ++r) {
    for (std::size_t c = 0; c < nx; ++c) {
      const double e = std::max(0.0, dmat(r, c) - expected);
      resid(r, c) = e;
      value += e * e;
    }
  }

  // Gradient.
  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i], y = v[n + i];
    const auto [cx0, cx1, cy0, cy1] = support[i];
    double gx = 0, gy = 0;
    for (std::size_t r = cy0; r <= cy1; ++r) {
      const double yc = grid_.bin_center_y(r);
      const double py = bell_value(y - yc, dev_h_[i], hb);
      const double dpy = bell_derivative(y - yc, dev_h_[i], hb);
      for (std::size_t c = cx0; c <= cx1; ++c) {
        const double e = resid(r, c);
        if (e == 0) continue;
        const double xc = grid_.bin_center_x(c);
        const double px = bell_value(x - xc, dev_w_[i], wb);
        const double dpx = bell_derivative(x - xc, dev_w_[i], wb);
        gx += 2 * e * norm[i] * dpx * py;
        gy += 2 * e * norm[i] * px * dpy;
      }
    }
    grad[i] += scale * gx;
    grad[n + i] += scale * gy;
  }
  return value;
}

}  // namespace aplace::density
