#include "density/bin_grid.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::density {

BinGrid::BinGrid(const geom::Rect& region, std::size_t nx, std::size_t ny)
    : region_(region), nx_(nx), ny_(ny) {
  APLACE_CHECK_MSG(nx >= 2 && ny >= 2, "bin grid needs >= 2 bins per side");
  APLACE_CHECK_MSG(region.width() > 0 && region.height() > 0,
                   "empty bin-grid region");
  bin_w_ = region.width() / static_cast<double>(nx);
  bin_h_ = region.height() / static_cast<double>(ny);
}

std::pair<std::size_t, std::size_t> BinGrid::x_range(double xlo,
                                                     double xhi) const {
  const double lo = (xlo - region_.xlo()) / bin_w_;
  const double hi = (xhi - region_.xlo()) / bin_w_;
  const long a = std::clamp<long>(static_cast<long>(std::floor(lo)), 0,
                                  static_cast<long>(nx_) - 1);
  const long b = std::clamp<long>(static_cast<long>(std::ceil(hi)) - 1, 0,
                                  static_cast<long>(nx_) - 1);
  return {static_cast<std::size_t>(a),
          static_cast<std::size_t>(std::max(a, b))};
}

std::pair<std::size_t, std::size_t> BinGrid::y_range(double ylo,
                                                     double yhi) const {
  const double lo = (ylo - region_.ylo()) / bin_h_;
  const double hi = (yhi - region_.ylo()) / bin_h_;
  const long a = std::clamp<long>(static_cast<long>(std::floor(lo)), 0,
                                  static_cast<long>(ny_) - 1);
  const long b = std::clamp<long>(static_cast<long>(std::ceil(hi)) - 1, 0,
                                  static_cast<long>(ny_) - 1);
  return {static_cast<std::size_t>(a),
          static_cast<std::size_t>(std::max(a, b))};
}

void BinGrid::splat(const geom::Rect& rect, double amount,
                    numeric::Matrix& into) const {
  APLACE_DCHECK(into.rows() == ny_ && into.cols() == nx_);
  if (rect.area() <= 0) return;
  const auto [cx0, cx1] = x_range(rect.xlo(), rect.xhi());
  const auto [cy0, cy1] = y_range(rect.ylo(), rect.yhi());
  const double per_area = amount / rect.area();
  for (std::size_t r = cy0; r <= cy1; ++r) {
    for (std::size_t c = cx0; c <= cx1; ++c) {
      const double ov = bin_rect(r, c).overlap_area(rect);
      if (ov > 0) into(r, c) += per_area * ov;
    }
  }
}

}  // namespace aplace::density
