#include "density/electro.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::density {

ElectroDensity::ElectroDensity(const netlist::CompiledCircuit& compiled,
                               const geom::Rect& region, std::size_t nx,
                               std::size_t ny, double target_density)
    : compiled_(&compiled),
      grid_(region, nx, ny),
      target_(target_density),
      basis_x_(nx),
      basis_y_(ny),
      rho_(ny, nx),
      psi_(ny, nx),
      ex_(ny, nx),
      ey_(ny, nx),
      occupancy_(ny, nx) {
  APLACE_CHECK_MSG(target_density > 0 && target_density <= 1.0,
                   "target density must be in (0, 1]");
  // ePlace-style local smoothing: devices smaller than sqrt(2) * bin pitch
  // are inflated (charge preserved) so the density signal stays smooth.
  // The inflation depends on the bin grid, so this per-instance table stays
  // here; footprints come from the compiled flat arrays.
  const double min_w = std::numbers::sqrt2 * grid_.bin_w();
  const double min_h = std::numbers::sqrt2 * grid_.bin_h();
  devices_.reserve(compiled.num_devices());
  for (std::size_t i = 0; i < compiled.num_devices(); ++i) {
    DeviceInfo info;
    info.real_w = compiled.dev_width()[i];
    info.real_h = compiled.dev_height()[i];
    info.w = std::max(info.real_w, min_w);
    info.h = std::max(info.real_h, min_h);
    info.charge = compiled.dev_area()[i];
    devices_.push_back(info);
  }
  // Per-chunk partials for the parallel splat (one chunk on the paper-scale
  // circuits, i.e. no extra memory and the direct serial path below).
  const std::size_t chunks =
      base::ThreadPool::chunk_count(devices_.size(), kDeviceGrain);
  if (chunks > 1) {
    rho_part_.assign(chunks, numeric::Matrix(ny, nx));
    occ_part_.assign(chunks, numeric::Matrix(ny, nx));
    energy_part_.assign(chunks, 0.0);
  }
}

ElectroDensity::ElectroDensity(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    const geom::Rect& region, std::size_t nx, std::size_t ny,
    double target_density)
    : ElectroDensity(*compiled, region, nx, ny, target_density) {
  keep_ = std::move(compiled);
}

ElectroDensity::ElectroDensity(const netlist::Circuit& circuit,
                               const geom::Rect& region, std::size_t nx,
                               std::size_t ny, double target_density)
    : ElectroDensity(std::make_shared<const netlist::CompiledCircuit>(circuit),
                     region, nx, ny, target_density) {}

geom::Point ElectroDensity::clamped_center(const geom::Point& c,
                                           const DeviceInfo& d) const {
  const geom::Rect& rg = grid_.region();
  auto clamp1 = [](double v, double lo, double hi) {
    // A device larger than the region has lo > hi: center it.
    return lo <= hi ? std::clamp(v, lo, hi) : 0.5 * (lo + hi);
  };
  return {clamp1(c.x, rg.xlo() + d.w / 2, rg.xhi() - d.w / 2),
          clamp1(c.y, rg.ylo() + d.h / 2, rg.yhi() - d.h / 2)};
}

double ElectroDensity::value_and_grad(std::span<const double> v,
                                      std::span<double> grad, double scale) {
  // One histogram sample per eval (two clock reads on a >=µs operation);
  // the spectral transforms inside count themselves via fft/transforms2d.
  static const obs::Counter evals = obs::counter("density/evals");
  static const obs::Histogram eval_seconds =
      obs::histogram("density/eval_seconds");
  const bool record = obs::enabled();
  const double obs_t0 = record ? obs::now_seconds() : 0.0;
  evals.inc();

  const std::size_t n = devices_.size();
  APLACE_DCHECK(v.size() == 2 * n && grad.size() == v.size());

  // --- charge density -------------------------------------------------------
  // Clamp the lookup position into the region: a device dragged outside
  // by the wirelength pull still deposits charge into the boundary bins
  // (and below, samples the field there), so its Neumann mirror image
  // produces the force that pulls it back inside.
  auto splat_range = [&](std::size_t lo, std::size_t hi, numeric::Matrix& rho,
                         numeric::Matrix& occ) {
    for (std::size_t i = lo; i < hi; ++i) {
      const DeviceInfo& d = devices_[i];
      const geom::Point c = clamped_center({v[i], v[n + i]}, d);
      grid_.splat(geom::Rect::centered(c, d.w, d.h), d.charge, rho);
      grid_.splat(geom::Rect::centered(c, d.real_w, d.real_h), d.charge, occ);
    }
  };
  const std::size_t chunks = base::ThreadPool::chunk_count(n, kDeviceGrain);
  base::ThreadPool& pool = base::ThreadPool::global();
  if (chunks <= 1) {
    rho_.fill(0.0);
    occupancy_.fill(0.0);  // true footprint area
    splat_range(0, n, rho_, occupancy_);
  } else {
    // Each fixed chunk of devices accumulates into its own partial; the
    // partials are then summed bin-wise in chunk order, so the result does
    // not depend on which thread ran which chunk.
    pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        rho_part_[c].fill(0.0);
        occ_part_[c].fill(0.0);
        splat_range(c * kDeviceGrain, std::min(n, (c + 1) * kDeviceGrain),
                    rho_part_[c], occ_part_[c]);
      }
    });
    const std::size_t bins = rho_.data().size();
    pool.parallel_for(0, bins, 8192, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t b = b0; b < b1; ++b) {
        double r = 0, o = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
          r += rho_part_[c].data()[b];
          o += occ_part_[c].data()[b];
        }
        rho_.data()[b] = r;
        occupancy_.data()[b] = o;
      }
    });
  }
  // Convert charge per bin into density (charge / bin area).
  for (double& x : rho_.data()) x /= grid_.bin_area();

  // --- overflow metric ------------------------------------------------------
  // Analog scale: devices are much larger than bins, so a bin interior to a
  // single device is legitimately 100% occupied. Overflow therefore counts
  // occupancy beyond a *full* bin — i.e. actual device overlap — normalized
  // by total device area. (target_ still sizes the placement region.)
  double over = 0;
  const double cap = grid_.bin_area();
  for (double o : occupancy_.data()) over += std::max(0.0, o - cap);
  const double total_area = compiled_->total_device_area();
  overflow_ = total_area > 0 ? over / total_area : 0.0;

  // --- spectral Poisson solve ----------------------------------------------
  // All transforms run in place on the member matrices: psi_ temporarily
  // holds the DCT coefficients a, from which the three synthesis inputs are
  // produced, so the whole solve allocates nothing.
  using namespace numeric::spectral;
  const std::size_t nx = grid_.nx(), ny = grid_.ny();
  const double pi = std::numbers::pi;

  std::copy(rho_.data().begin(), rho_.data().end(), psi_.data().begin());
  dct2d_inplace(psi_, basis_x_, basis_y_);
  for (std::size_t r = 0; r < ny; ++r) {
    const double wv = pi * static_cast<double>(r) / static_cast<double>(ny) /
                      grid_.bin_h();
    for (std::size_t c = 0; c < nx; ++c) {
      const double wu = pi * static_cast<double>(c) / static_cast<double>(nx) /
                        grid_.bin_w();
      const double w2 = wu * wu + wv * wv;
      if (w2 <= 0) {  // (0,0): mean removed
        psi_(r, c) = 0.0;
        ex_(r, c) = 0.0;
        ey_(r, c) = 0.0;
        continue;
      }
      const double coef = psi_(r, c) / w2;
      psi_(r, c) = coef;
      ex_(r, c) = coef * wu;
      ey_(r, c) = coef * wv;
    }
  }
  idct2d_inplace(psi_, basis_x_, basis_y_);
  isxcy2d_inplace(ex_, basis_x_, basis_y_);
  icxsy2d_inplace(ey_, basis_x_, basis_y_);

  // --- energy and per-device forces ----------------------------------------
  // Gradient entries are disjoint per device; the energy sum keeps one
  // partial per fixed chunk and reduces them in chunk order (bit-identical
  // for any thread count).
  auto force_range = [&](std::size_t lo, std::size_t hi) {
    double energy_acc = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const DeviceInfo& d = devices_[i];
      const geom::Point c = clamped_center({v[i], v[n + i]}, d);
      const geom::Rect rect = geom::Rect::centered(c, d.w, d.h);
      const auto [cx0, cx1] = grid_.x_range(rect.xlo(), rect.xhi());
      const auto [cy0, cy1] = grid_.y_range(rect.ylo(), rect.yhi());
      double psi_acc = 0, ex_acc = 0, ey_acc = 0, area_acc = 0;
      for (std::size_t r = cy0; r <= cy1; ++r) {
        for (std::size_t cc = cx0; cc <= cx1; ++cc) {
          const double ov = grid_.bin_rect(r, cc).overlap_area(rect);
          if (ov <= 0) continue;
          psi_acc += ov * psi_(r, cc);
          ex_acc += ov * ex_(r, cc);
          ey_acc += ov * ey_(r, cc);
          area_acc += ov;
        }
      }
      if (area_acc <= 0) continue;  // region degenerate beyond clamping
      const double q_over_a = d.charge / area_acc;
      energy_acc += 0.5 * q_over_a * psi_acc;
      grad[i] += scale * (-q_over_a * ex_acc);
      grad[n + i] += scale * (-q_over_a * ey_acc);
    }
    return energy_acc;
  };
  double energy = 0;
  if (chunks <= 1) {
    energy = force_range(0, n);
  } else {
    pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        energy_part_[c] =
            force_range(c * kDeviceGrain, std::min(n, (c + 1) * kDeviceGrain));
      }
    });
    for (std::size_t c = 0; c < chunks; ++c) energy += energy_part_[c];
  }
  if (record) eval_seconds.record(obs::now_seconds() - obs_t0);
  return energy;
}

}  // namespace aplace::density
