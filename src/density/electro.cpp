#include "density/electro.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/simd.hpp"
#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::density {
namespace {

using base::padded4;
using simd::Vec4d;

// Per-column overlap lengths of `rect` against x-bins [c0, c1], written to
// ov[0..count) with zeroed pad lanes; mirrors bin_rect()/overlap_area()
// arithmetic exactly (min(xhi) - max(xlo), clamped at 0), so the separable
// product ov_x * ov_y is bit-identical to the scalar per-bin overlap.
std::size_t fill_overlaps(double region_lo, double bin_len, std::size_t b0,
                          std::size_t b1, double rect_lo, double rect_hi,
                          double* ov) {
  const std::size_t count = b1 - b0 + 1;
  for (std::size_t j = 0; j < count; ++j) {
    const double lo = region_lo + static_cast<double>(b0 + j) * bin_len;
    const double d = std::min(lo + bin_len, rect_hi) - std::max(lo, rect_lo);
    ov[j] = d > 0 ? d : 0.0;
  }
  for (std::size_t j = count; j < padded4(count); ++j) ov[j] = 0.0;
  return count;
}

// 4-lane separable splat: into(r, c) += (amount/area) * ov_y(r) * ov_x(c),
// streaming each bin row left to right (rows are contiguous in the
// row-major matrix, so this is cache-blocked by construction).
void splat_simd(const BinGrid& grid, const geom::Rect& rect, double amount,
                numeric::Matrix& into,
                std::pair<base::AlignedVec&, base::AlignedVec&> scratch) {
  if (rect.area() <= 0) return;
  const auto [cx0, cx1] = grid.x_range(rect.xlo(), rect.xhi());
  const auto [cy0, cy1] = grid.y_range(rect.ylo(), rect.yhi());
  double* ovx = scratch.first.data();
  double* ovy = scratch.second.data();
  const std::size_t nxd = fill_overlaps(grid.region().xlo(), grid.bin_w(),
                                        cx0, cx1, rect.xlo(), rect.xhi(), ovx);
  fill_overlaps(grid.region().ylo(), grid.bin_h(), cy0, cy1, rect.ylo(),
                rect.yhi(), ovy);
  const double per_area = amount / rect.area();
  for (std::size_t r = cy0; r <= cy1; ++r) {
    const double w = per_area * ovy[r - cy0];
    if (w <= 0) continue;
    double* row = &into(r, cx0);
    const Vec4d wv = Vec4d::broadcast(w);
    std::size_t j = 0;
    for (; j + 4 <= nxd; j += 4) {
      Vec4d::fma(wv, Vec4d::load(ovx + j), Vec4d::loadu(row + j))
          .storeu(row + j);
    }
    for (; j < nxd; ++j) row[j] += w * ovx[j];
  }
}

struct ForceAcc {
  double psi = 0, ex = 0, ey = 0, area = 0;
};

// 4-lane separable force interpolation: per-row dot products of the
// per-column overlaps against the psi/ex/ey rows (three fused accumulators
// sharing one ovx load), each scaled by the row overlap; the overlapped
// area factors into (sum ov_x) * (sum ov_y).
ForceAcc force_simd(const BinGrid& grid, const numeric::Matrix& psi,
                    const numeric::Matrix& exm, const numeric::Matrix& eym,
                    const geom::Rect& rect,
                    std::pair<base::AlignedVec&, base::AlignedVec&> scratch) {
  ForceAcc acc;
  const auto [cx0, cx1] = grid.x_range(rect.xlo(), rect.xhi());
  const auto [cy0, cy1] = grid.y_range(rect.ylo(), rect.yhi());
  double* ovx = scratch.first.data();
  double* ovy = scratch.second.data();
  const std::size_t nxd = fill_overlaps(grid.region().xlo(), grid.bin_w(),
                                        cx0, cx1, rect.xlo(), rect.xhi(), ovx);
  const std::size_t nyd = fill_overlaps(grid.region().ylo(), grid.bin_h(),
                                        cy0, cy1, rect.ylo(), rect.yhi(), ovy);
  double sum_x = 0, sum_y = 0;
  for (std::size_t j = 0; j < nxd; ++j) sum_x += ovx[j];
  for (std::size_t j = 0; j < nyd; ++j) sum_y += ovy[j];
  acc.area = sum_x * sum_y;
  for (std::size_t r = 0; r < nyd; ++r) {
    const double wy = ovy[r];
    if (wy <= 0) continue;
    const std::size_t row_off = (cy0 + r) * psi.cols() + cx0;
    const double* prow = psi.data().data() + row_off;
    const double* xrow = exm.data().data() + row_off;
    const double* yrow = eym.data().data() + row_off;
    Vec4d ap = Vec4d::zero(), ax = Vec4d::zero(), ay = Vec4d::zero();
    std::size_t j = 0;
    for (; j + 4 <= nxd; j += 4) {
      const Vec4d w = Vec4d::load(ovx + j);
      ap = Vec4d::fma(w, Vec4d::loadu(prow + j), ap);
      ax = Vec4d::fma(w, Vec4d::loadu(xrow + j), ax);
      ay = Vec4d::fma(w, Vec4d::loadu(yrow + j), ay);
    }
    if (j < nxd) {
      // Masked tail: ovx pad lanes are zero, matrix rows are loaded through
      // a partial copy so the read never crosses the row's end.
      const std::size_t rem = nxd - j;
      const Vec4d w = Vec4d::load(ovx + j);
      ap = Vec4d::fma(w, Vec4d::load_partial(prow + j, rem), ap);
      ax = Vec4d::fma(w, Vec4d::load_partial(xrow + j, rem), ax);
      ay = Vec4d::fma(w, Vec4d::load_partial(yrow + j, rem), ay);
    }
    acc.psi += wy * simd::hsum_ordered(ap);
    acc.ex += wy * simd::hsum_ordered(ax);
    acc.ey += wy * simd::hsum_ordered(ay);
  }
  return acc;
}

}  // namespace

ElectroDensity::ElectroDensity(const netlist::CompiledCircuit& compiled,
                               const geom::Rect& region, std::size_t nx,
                               std::size_t ny, double target_density)
    : compiled_(&compiled),
      grid_(region, nx, ny),
      target_(target_density),
      basis_x_(nx),
      basis_y_(ny),
      use_simd_(simd::default_enabled()),
      rho_(ny, nx),
      psi_(ny, nx),
      ex_(ny, nx),
      ey_(ny, nx),
      occupancy_(ny, nx) {
  APLACE_CHECK_MSG(target_density > 0 && target_density <= 1.0,
                   "target density must be in (0, 1]");
  // ePlace-style local smoothing: devices smaller than sqrt(2) * bin pitch
  // are inflated (charge preserved) so the density signal stays smooth.
  // The inflation depends on the bin grid, so this per-instance table stays
  // here; footprints come from the compiled flat arrays.
  const double min_w = std::numbers::sqrt2 * grid_.bin_w();
  const double min_h = std::numbers::sqrt2 * grid_.bin_h();
  devices_.reserve(compiled.num_devices());
  for (std::size_t i = 0; i < compiled.num_devices(); ++i) {
    DeviceInfo info;
    info.real_w = compiled.dev_width()[i];
    info.real_h = compiled.dev_height()[i];
    info.w = std::max(info.real_w, min_w);
    info.h = std::max(info.real_h, min_h);
    info.charge = compiled.dev_area()[i];
    devices_.push_back(info);
  }
  // Per-chunk partials for the parallel splat (one chunk on the paper-scale
  // circuits, i.e. no extra memory and the direct serial path below).
  const std::size_t chunks =
      base::ThreadPool::chunk_count(devices_.size(), kDeviceGrain);
  if (chunks > 1) {
    rho_part_.assign(chunks, numeric::Matrix(ny, nx));
    occ_part_.assign(chunks, numeric::Matrix(ny, nx));
    energy_part_.assign(chunks, 0.0);
  }
  scratch_.resize(std::max<std::size_t>(chunks, 1));
  for (DevScratch& s : scratch_) {
    s.ovx.resize(padded4(nx));
    s.ovy.resize(padded4(ny));
  }
}

ElectroDensity::ElectroDensity(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    const geom::Rect& region, std::size_t nx, std::size_t ny,
    double target_density)
    : ElectroDensity(*compiled, region, nx, ny, target_density) {
  keep_ = std::move(compiled);
}

ElectroDensity::ElectroDensity(const netlist::Circuit& circuit,
                               const geom::Rect& region, std::size_t nx,
                               std::size_t ny, double target_density)
    : ElectroDensity(std::make_shared<const netlist::CompiledCircuit>(circuit),
                     region, nx, ny, target_density) {}

geom::Point ElectroDensity::clamped_center(const geom::Point& c,
                                           const DeviceInfo& d) const {
  const geom::Rect& rg = grid_.region();
  auto clamp1 = [](double v, double lo, double hi) {
    // A device larger than the region has lo > hi: center it.
    return lo <= hi ? std::clamp(v, lo, hi) : 0.5 * (lo + hi);
  };
  return {clamp1(c.x, rg.xlo() + d.w / 2, rg.xhi() - d.w / 2),
          clamp1(c.y, rg.ylo() + d.h / 2, rg.yhi() - d.h / 2)};
}

void ElectroDensity::build_density(std::span<const double> v) {
  const std::size_t n = devices_.size();
  APLACE_DCHECK(v.size() == 2 * n);

  // Clamp the lookup position into the region: a device dragged outside
  // by the wirelength pull still deposits charge into the boundary bins
  // (and in the force pass, samples the field there), so its Neumann mirror
  // image produces the force that pulls it back inside.
  const bool use_simd = use_simd_;
  auto splat_range = [&](std::size_t lo, std::size_t hi, numeric::Matrix& rho,
                         numeric::Matrix& occ, DevScratch& s) {
    for (std::size_t i = lo; i < hi; ++i) {
      const DeviceInfo& d = devices_[i];
      const geom::Point c = clamped_center({v[i], v[n + i]}, d);
      const geom::Rect eff = geom::Rect::centered(c, d.w, d.h);
      const geom::Rect real = geom::Rect::centered(c, d.real_w, d.real_h);
      if (use_simd) {
        splat_simd(grid_, eff, d.charge, rho, {s.ovx, s.ovy});
        splat_simd(grid_, real, d.charge, occ, {s.ovx, s.ovy});
      } else {
        grid_.splat(eff, d.charge, rho);
        grid_.splat(real, d.charge, occ);
      }
    }
  };
  const std::size_t chunks = base::ThreadPool::chunk_count(n, kDeviceGrain);
  base::ThreadPool& pool = base::ThreadPool::global();
  if (chunks <= 1) {
    rho_.fill(0.0);
    occupancy_.fill(0.0);  // true footprint area
    splat_range(0, n, rho_, occupancy_, scratch_[0]);
  } else {
    // Each fixed chunk of devices accumulates into its own partial; the
    // partials are then summed bin-wise in chunk order, so the result does
    // not depend on which thread ran which chunk.
    pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        rho_part_[c].fill(0.0);
        occ_part_[c].fill(0.0);
        splat_range(c * kDeviceGrain, std::min(n, (c + 1) * kDeviceGrain),
                    rho_part_[c], occ_part_[c], scratch_[c]);
      }
    });
    const std::size_t bins = rho_.data().size();
    pool.parallel_for(0, bins, 8192, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t b = b0; b < b1; ++b) {
        double r = 0, o = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
          r += rho_part_[c].data()[b];
          o += occ_part_[c].data()[b];
        }
        rho_.data()[b] = r;
        occupancy_.data()[b] = o;
      }
    });
  }
  // Convert charge per bin into density (charge / bin area).
  for (double& x : rho_.data()) x /= grid_.bin_area();

  // --- overflow metric ------------------------------------------------------
  // Analog scale: devices are much larger than bins, so a bin interior to a
  // single device is legitimately 100% occupied. Overflow therefore counts
  // occupancy beyond a *full* bin — i.e. actual device overlap — normalized
  // by total device area. (target_ still sizes the placement region.)
  double over = 0;
  const double cap = grid_.bin_area();
  for (double o : occupancy_.data()) over += std::max(0.0, o - cap);
  const double total_area = compiled_->total_device_area();
  overflow_ = total_area > 0 ? over / total_area : 0.0;
}

double ElectroDensity::value_and_grad(std::span<const double> v,
                                      std::span<double> grad, double scale) {
  // One histogram sample per eval (two clock reads on a >=µs operation);
  // the spectral transforms inside count themselves via fft/transforms2d.
  static const obs::Counter evals = obs::counter("density/evals");
  static const obs::Histogram eval_seconds =
      obs::histogram("density/eval_seconds");
  const bool record = obs::enabled();
  const double obs_t0 = record ? obs::now_seconds() : 0.0;
  evals.inc();

  const std::size_t n = devices_.size();
  APLACE_DCHECK(v.size() == 2 * n && grad.size() == v.size());

  // --- charge density + overflow --------------------------------------------
  build_density(v);

  // --- spectral Poisson solve ----------------------------------------------
  // All transforms run in place on the member matrices: psi_ temporarily
  // holds the DCT coefficients a, from which the three synthesis inputs are
  // produced, so the whole solve allocates nothing.
  using namespace numeric::spectral;
  const std::size_t nx = grid_.nx(), ny = grid_.ny();
  const double pi = std::numbers::pi;

  std::copy(rho_.data().begin(), rho_.data().end(), psi_.data().begin());
  dct2d_inplace(psi_, basis_x_, basis_y_);
  for (std::size_t r = 0; r < ny; ++r) {
    const double wv = pi * static_cast<double>(r) / static_cast<double>(ny) /
                      grid_.bin_h();
    for (std::size_t c = 0; c < nx; ++c) {
      const double wu = pi * static_cast<double>(c) / static_cast<double>(nx) /
                        grid_.bin_w();
      const double w2 = wu * wu + wv * wv;
      if (w2 <= 0) {  // (0,0): mean removed
        psi_(r, c) = 0.0;
        ex_(r, c) = 0.0;
        ey_(r, c) = 0.0;
        continue;
      }
      const double coef = psi_(r, c) / w2;
      psi_(r, c) = coef;
      ex_(r, c) = coef * wu;
      ey_(r, c) = coef * wv;
    }
  }
  idct2d_inplace(psi_, basis_x_, basis_y_);
  isxcy2d_inplace(ex_, basis_x_, basis_y_);
  icxsy2d_inplace(ey_, basis_x_, basis_y_);

  // --- energy and per-device forces ----------------------------------------
  // Gradient entries are disjoint per device; the energy sum keeps one
  // partial per fixed chunk and reduces them in chunk order (bit-identical
  // for any thread count).
  const bool use_simd = use_simd_;
  auto force_range = [&](std::size_t lo, std::size_t hi, DevScratch& s) {
    double energy_acc = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const DeviceInfo& d = devices_[i];
      const geom::Point c = clamped_center({v[i], v[n + i]}, d);
      const geom::Rect rect = geom::Rect::centered(c, d.w, d.h);
      double psi_acc = 0, ex_acc = 0, ey_acc = 0, area_acc = 0;
      if (use_simd) {
        const ForceAcc acc =
            force_simd(grid_, psi_, ex_, ey_, rect, {s.ovx, s.ovy});
        psi_acc = acc.psi;
        ex_acc = acc.ex;
        ey_acc = acc.ey;
        area_acc = acc.area;
      } else {
        const auto [cx0, cx1] = grid_.x_range(rect.xlo(), rect.xhi());
        const auto [cy0, cy1] = grid_.y_range(rect.ylo(), rect.yhi());
        for (std::size_t r = cy0; r <= cy1; ++r) {
          for (std::size_t cc = cx0; cc <= cx1; ++cc) {
            const double ov = grid_.bin_rect(r, cc).overlap_area(rect);
            if (ov <= 0) continue;
            psi_acc += ov * psi_(r, cc);
            ex_acc += ov * ex_(r, cc);
            ey_acc += ov * ey_(r, cc);
            area_acc += ov;
          }
        }
      }
      if (area_acc <= 0) continue;  // region degenerate beyond clamping
      const double q_over_a = d.charge / area_acc;
      energy_acc += 0.5 * q_over_a * psi_acc;
      grad[i] += scale * (-q_over_a * ex_acc);
      grad[n + i] += scale * (-q_over_a * ey_acc);
    }
    return energy_acc;
  };
  const std::size_t chunks = base::ThreadPool::chunk_count(n, kDeviceGrain);
  base::ThreadPool& pool = base::ThreadPool::global();
  double energy = 0;
  if (chunks <= 1) {
    energy = force_range(0, n, scratch_[0]);
  } else {
    pool.parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        energy_part_[c] =
            force_range(c * kDeviceGrain, std::min(n, (c + 1) * kDeviceGrain),
                        scratch_[c]);
      }
    });
    for (std::size_t c = 0; c < chunks; ++c) energy += energy_part_[c];
  }
  if (record) eval_seconds.record(obs::now_seconds() - obs_t0);
  return energy;
}

}  // namespace aplace::density
