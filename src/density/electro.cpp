#include "density/electro.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace aplace::density {

ElectroDensity::ElectroDensity(const netlist::Circuit& circuit,
                               const geom::Rect& region, std::size_t nx,
                               std::size_t ny, double target_density)
    : circuit_(&circuit),
      grid_(region, nx, ny),
      target_(target_density),
      basis_x_(nx),
      basis_y_(ny),
      rho_(ny, nx),
      psi_(ny, nx),
      ex_(ny, nx),
      ey_(ny, nx) {
  APLACE_CHECK(circuit.finalized());
  APLACE_CHECK_MSG(target_density > 0 && target_density <= 1.0,
                   "target density must be in (0, 1]");
  // ePlace-style local smoothing: devices smaller than sqrt(2) * bin pitch
  // are inflated (charge preserved) so the density signal stays smooth.
  const double min_w = std::numbers::sqrt2 * grid_.bin_w();
  const double min_h = std::numbers::sqrt2 * grid_.bin_h();
  devices_.reserve(circuit.num_devices());
  for (const netlist::Device& d : circuit.devices()) {
    DeviceInfo info;
    info.real_w = d.width;
    info.real_h = d.height;
    info.w = std::max(d.width, min_w);
    info.h = std::max(d.height, min_h);
    info.charge = d.area();
    devices_.push_back(info);
  }
}

double ElectroDensity::value_and_grad(std::span<const double> v,
                                      std::span<double> grad, double scale) {
  const std::size_t n = devices_.size();
  APLACE_DCHECK(v.size() == 2 * n && grad.size() == v.size());

  // --- charge density -------------------------------------------------------
  rho_.fill(0.0);
  numeric::Matrix occupancy(grid_.ny(), grid_.nx());  // true footprint area
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point c{v[i], v[n + i]};
    const DeviceInfo& d = devices_[i];
    grid_.splat(geom::Rect::centered(c, d.w, d.h), d.charge, rho_);
    grid_.splat(geom::Rect::centered(c, d.real_w, d.real_h), d.charge,
                occupancy);
  }
  // Convert charge per bin into density (charge / bin area).
  for (double& x : rho_.data()) x /= grid_.bin_area();

  // --- overflow metric ------------------------------------------------------
  // Analog scale: devices are much larger than bins, so a bin interior to a
  // single device is legitimately 100% occupied. Overflow therefore counts
  // occupancy beyond a *full* bin — i.e. actual device overlap — normalized
  // by total device area. (target_ still sizes the placement region.)
  double over = 0;
  const double cap = grid_.bin_area();
  for (double o : occupancy.data()) over += std::max(0.0, o - cap);
  const double total_area = circuit_->total_device_area();
  overflow_ = total_area > 0 ? over / total_area : 0.0;

  // --- spectral Poisson solve ----------------------------------------------
  using namespace numeric::spectral;
  const numeric::Matrix a = dct2d(rho_, basis_x_, basis_y_);
  const std::size_t nx = grid_.nx(), ny = grid_.ny();
  const double pi = std::numbers::pi;

  numeric::Matrix a_psi(ny, nx), a_ex(ny, nx), a_ey(ny, nx);
  for (std::size_t r = 0; r < ny; ++r) {
    const double wv = pi * static_cast<double>(r) / static_cast<double>(ny) /
                      grid_.bin_h();
    for (std::size_t c = 0; c < nx; ++c) {
      const double wu = pi * static_cast<double>(c) / static_cast<double>(nx) /
                        grid_.bin_w();
      const double w2 = wu * wu + wv * wv;
      if (w2 <= 0) continue;  // (0,0): mean removed
      const double coef = a(r, c) / w2;
      a_psi(r, c) = coef;
      a_ex(r, c) = coef * wu;
      a_ey(r, c) = coef * wv;
    }
  }
  psi_ = idct2d(a_psi, basis_x_, basis_y_);
  ex_ = isxcy2d(a_ex, basis_x_, basis_y_);
  ey_ = icxsy2d(a_ey, basis_x_, basis_y_);

  // --- energy and per-device forces ----------------------------------------
  double energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const DeviceInfo& d = devices_[i];
    const geom::Rect rect =
        geom::Rect::centered({v[i], v[n + i]}, d.w, d.h);
    const auto [cx0, cx1] = grid_.x_range(rect.xlo(), rect.xhi());
    const auto [cy0, cy1] = grid_.y_range(rect.ylo(), rect.yhi());
    double psi_acc = 0, ex_acc = 0, ey_acc = 0, area_acc = 0;
    for (std::size_t r = cy0; r <= cy1; ++r) {
      for (std::size_t c = cx0; c <= cx1; ++c) {
        const double ov = grid_.bin_rect(r, c).overlap_area(rect);
        if (ov <= 0) continue;
        psi_acc += ov * psi_(r, c);
        ex_acc += ov * ex_(r, c);
        ey_acc += ov * ey_(r, c);
        area_acc += ov;
      }
    }
    if (area_acc <= 0) continue;  // fully outside the region
    const double q_over_a = d.charge / area_acc;
    energy += 0.5 * q_over_a * psi_acc;
    grad[i] += scale * (-q_over_a * ex_acc);
    grad[n + i] += scale * (-q_over_a * ey_acc);
  }
  return energy;
}

}  // namespace aplace::density
