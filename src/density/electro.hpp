#pragma once
// Electrostatics-based density system (ePlace, Lu et al. TCAD'15).
//
// Devices are positive charges with magnitude = footprint area. The charge
// density rho on a bin grid drives a Poisson solve with Neumann boundary
// conditions via 2D DCT (numeric/spectral):
//
//   a_{u,v}   = DCT2(rho)
//   psi_{x,y} = sum a_{u,v} / (w_u^2 + w_v^2) cos(w_u x) cos(w_v y)
//   E_x       = sum a_{u,v} w_u / (w_u^2 + w_v^2) sin(..) cos(..)
//
// with w_u = pi*u/M in bin units ((u,v) = (0,0) excluded, which implicitly
// removes the mean charge as Neumann solvability requires). The potential
// energy N(v) = 1/2 sum_i q_i psi(x_i) is the smoothed overlap term of the
// placement objective; its gradient w.r.t. a device center is -q_i * E
// averaged over the device footprint.
//
// The bilinear splat and the force interpolation exist twice: the scalar
// per-bin reference (BinGrid::splat / overlap_area loops) and a 4-lane
// simd::Vec4d kernel that exploits separability — overlap(bin, rect) =
// ov_x(col) * ov_y(row) exactly — precomputing per-column overlaps once per
// device and streaming each bin row 4 columns at a time (cache-blocked by
// construction: rows are contiguous in the row-major matrices).
// set_use_simd() switches per instance at runtime; both paths keep the
// chunk-ordered ThreadPool reduction, so each is bit-identical at any
// thread count, and they agree to <= 1e-12 relative (tests/simd_test.cpp).

#include <memory>
#include <span>

#include "base/aligned.hpp"
#include "density/bin_grid.hpp"
#include "netlist/compiled.hpp"
#include "numeric/spectral.hpp"

namespace aplace::density {

class ElectroDensity {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  ElectroDensity(const netlist::CompiledCircuit& compiled,
                 const geom::Rect& region, std::size_t nx, std::size_t ny,
                 double target_density);
  /// Share ownership of a compiled snapshot.
  ElectroDensity(std::shared_ptr<const netlist::CompiledCircuit> compiled,
                 const geom::Rect& region, std::size_t nx, std::size_t ny,
                 double target_density);
  /// Convenience: compile privately from a raw circuit.
  ElectroDensity(const netlist::Circuit& circuit, const geom::Rect& region,
                 std::size_t nx, std::size_t ny, double target_density);

  [[nodiscard]] const BinGrid& grid() const { return grid_; }
  [[nodiscard]] double target_density() const { return target_; }

  /// Select the vectorized (true) or scalar-reference (false) splat/force
  /// kernels. Defaults to simd::default_enabled().
  void set_use_simd(bool on) { use_simd_ = on; }
  [[nodiscard]] bool use_simd() const { return use_simd_; }

  /// Phase 1 of value_and_grad: splat charge + occupancy at v, normalize
  /// rho, refresh overflow(). Exposed so the splat kernel can be timed in
  /// isolation (bench_micro_kernels); value_and_grad calls it internally.
  void build_density(std::span<const double> v);

  /// Evaluate the potential energy N at v = (x.., y..) and *add*
  /// scale * dN/dv into grad. Also refreshes overflow(). Devices whose
  /// footprint has escaped the region are evaluated at the nearest
  /// in-region position, so they always feel a restoring density force.
  /// Allocation-free after construction.
  ///
  /// Circuits with more devices than the parallel grain run the charge
  /// accumulation and the force loop on the global thread pool. The device
  /// range is cut into fixed chunks (per-chunk density partials summed in
  /// chunk order), so results are bit-identical for every thread count.
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale);

  /// Density overflow after the last evaluation: sum over bins of
  /// max(0, occupancy - target*binArea) normalized by total device area.
  /// The classic ePlace stopping metric.
  [[nodiscard]] double overflow() const { return overflow_; }

  /// Last computed per-bin charge density (for tests / inspection).
  [[nodiscard]] const numeric::Matrix& rho() const { return rho_; }
  [[nodiscard]] const numeric::Matrix& potential() const { return psi_; }
  [[nodiscard]] const numeric::Matrix& field_x() const { return ex_; }
  [[nodiscard]] const numeric::Matrix& field_y() const { return ey_; }

 private:
  struct DeviceInfo {
    double w, h;        // effective (possibly inflated) footprint
    double charge;      // true area
    double real_w, real_h;
  };

  // Per-chunk SIMD scratch: padded per-column / per-row overlap lengths of
  // the device being processed (separable splat/force kernels).
  struct DevScratch {
    base::AlignedVec ovx, ovy;
  };

  /// Device center clamped so its inflated footprint stays inside the
  /// region (escaped devices are looked up at the nearest boundary bins).
  [[nodiscard]] geom::Point clamped_center(const geom::Point& c,
                                           const DeviceInfo& d) const;

  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  BinGrid grid_;
  double target_;
  numeric::spectral::Basis basis_x_, basis_y_;
  std::vector<DeviceInfo> devices_;
  bool use_simd_;

  // Scratch matrices reused across evaluations: value_and_grad performs no
  // heap allocation after construction (the Nesterov hot loop).
  numeric::Matrix rho_, psi_, ex_, ey_, occupancy_;
  double overflow_ = 1.0;

  // Parallel decomposition: devices are cut into fixed chunks of
  // kDeviceGrain (independent of thread count). Each chunk splats into its
  // own density/occupancy partial; the partials are summed in chunk order.
  // Small circuits have exactly one chunk and take the direct serial path.
  static constexpr std::size_t kDeviceGrain = 256;
  std::vector<numeric::Matrix> rho_part_, occ_part_;
  std::vector<double> energy_part_;
  std::vector<DevScratch> scratch_;  // one per chunk (>= 1)
};

}  // namespace aplace::density
