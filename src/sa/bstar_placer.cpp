#include "sa/bstar_placer.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::sa {

BStarPlacer::BStarPlacer(const netlist::Circuit& circuit, SaOptions options)
    : circuit_(&circuit), opts_(std::move(options)), eval_(circuit) {
  APLACE_CHECK(circuit.finalized());
  const std::size_t n = circuit.num_devices();
  device_orient_.assign(n, {});

  std::vector<char> in_island(n, 0);
  for (const netlist::SymmetryGroup& g :
       circuit.constraints().symmetry_groups) {
    islands_.emplace_back(circuit, g);
    for (const Island::Member& m : islands_.back().members()) {
      in_island[m.device.index()] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_island[i]) single_device_.push_back(DeviceId{i});
  }
  const std::size_t nb = islands_.size() + single_device_.size();
  block_w_.resize(nb);
  block_h_.resize(nb);
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    block_w_[b] = islands_[b].width();
    block_h_[b] = islands_[b].height();
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const netlist::Device& d = circuit.device(single_device_[s]);
    block_w_[islands_.size() + s] = d.width;
    block_h_[islands_.size() + s] = d.height;
  }
}

void BStarPlacer::realize(const BStarTree::Packing& pk,
                          netlist::Placement& pl) const {
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    const geom::Point origin{pk.x[b], pk.y[b]};
    for (const Island::Member& m : islands_[b].members()) {
      pl.set_position(m.device, origin + m.center);
      pl.set_orientation(m.device, m.orientation);
    }
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands_.size() + s;
    const DeviceId dev = single_device_[s];
    pl.set_position(dev,
                    {pk.x[b] + block_w_[b] / 2, pk.y[b] + block_h_[b] / 2});
    pl.set_orientation(dev, device_orient_[dev.index()]);
  }
}

double BStarPlacer::cost_of(const netlist::Placement& pl) const {
  double penalty = 0;
  for (const netlist::AlignmentPair& a : circuit_->constraints().alignments) {
    penalty += eval_.alignment_residual(pl, a);
  }
  for (const netlist::OrderingConstraint& o :
       circuit_->constraints().orderings) {
    penalty += eval_.ordering_residual(pl, o);
  }
  for (const netlist::CommonCentroidQuad& q :
       circuit_->constraints().common_centroids) {
    penalty += eval_.centroid_residual(pl, q);
  }
  double cost = opts_.area_weight * pl.layout_area() / area0_ +
                (1.0 - opts_.area_weight) * pl.total_hpwl() / hpwl0_ +
                opts_.constraint_weight * penalty / penalty0_;
  if (opts_.extra_cost) cost += opts_.extra_cost(pl);
  return cost;
}

SaResult BStarPlacer::place() {
  numeric::Rng rng(opts_.seed);
  const std::size_t nb = num_blocks();
  BStarTree tree(nb);
  tree.shuffle(rng);

  netlist::Placement pl(*circuit_);
  realize(tree.pack(block_w_, block_h_), pl);
  hpwl0_ = std::max(pl.total_hpwl(), 1e-9);
  area0_ = std::max(pl.layout_area(), 1e-9);
  penalty0_ = std::max(std::sqrt(area0_), 1e-9);

  double cur_cost = cost_of(pl);
  SaResult best{pl, cur_cost, 0, 0};

  // T0 calibration by sampling swap deltas.
  double t0 = 0.3;
  if (nb >= 2) {
    BStarTree probe = tree;
    netlist::Placement tmp(*circuit_);
    double mean = 0;
    int count = 0;
    for (int k = 0; k < 30; ++k) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nb) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nb) - 1));
      if (i == j) continue;
      probe.swap_blocks(i, j);
      realize(probe.pack(block_w_, block_h_), tmp);
      mean += std::abs(cost_of(tmp) - cur_cost);
      ++count;
      probe.swap_blocks(i, j);
    }
    if (count > 0) t0 = std::max(mean / count * 1.5, 1e-6);
  }

  double temp = t0;
  const double t_stop = t0 * opts_.stop_temperature_ratio;
  const long moves_per_temp =
      static_cast<long>(opts_.moves_per_temp_per_block) *
      static_cast<long>(std::max<std::size_t>(nb, 1));
  long moves = 0;

  netlist::Placement trial(*circuit_);
  while (temp > t_stop) {
    for (long m = 0; m < moves_per_temp; ++m) {
      if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
      ++moves;

      // B*-tree moves are not all cheaply reversible (move_block splices),
      // so keep a snapshot for rejection. Island mirrors are involutions
      // and are reverted explicitly.
      const BStarTree saved = tree;
      const std::vector<geom::Orientation> saved_orient = device_orient_;
      int mirrored_island = -1;
      std::size_t mirrored_row = 0;

      const int kind = rng.uniform_int(0, 99);
      if (kind < 40 && nb >= 2) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(nb) - 1));
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(nb) - 1));
        tree.swap_blocks(i, j);
      } else if (kind < 80 && nb >= 2) {
        const auto b = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(nb) - 1));
        const auto p = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(nb) - 1));
        tree.move_block(b, p, rng.bernoulli());
      } else if (!single_device_.empty()) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(single_device_.size()) - 1));
        geom::Orientation& o = device_orient_[single_device_[s].index()];
        if (rng.bernoulli()) o.flip_x = !o.flip_x;
        else o.flip_y = !o.flip_y;
      } else if (!islands_.empty()) {
        const auto isl = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(islands_.size()) - 1));
        mirrored_island = static_cast<int>(isl);
        mirrored_row = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(islands_[isl].num_rows()) - 1));
        islands_[isl].mirror_row(mirrored_row);
      }

      realize(tree.pack(block_w_, block_h_), trial);
      const double new_cost = cost_of(trial);
      const double delta = new_cost - cur_cost;
      if (delta <= 0 || rng.uniform() < std::exp(-delta / temp)) {
        cur_cost = new_cost;
        ++best.moves_accepted;
        if (new_cost < best.cost) {
          best.cost = new_cost;
          best.placement = trial;
        }
      } else {
        tree = saved;
        device_orient_ = saved_orient;
        if (mirrored_island >= 0) {
          islands_[static_cast<std::size_t>(mirrored_island)].mirror_row(
              mirrored_row);
        }
      }
    }
    if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
    temp *= opts_.cooling;
  }

  best.moves_evaluated = moves;
  best.placement.normalize_to_origin();
  return best;
}

}  // namespace aplace::sa
