#include "sa/bstar_tree.hpp"

#include <algorithm>
#include <map>

namespace aplace::sa {

BStarTree::BStarTree(std::size_t n) : nodes_(n) {
  APLACE_CHECK_MSG(n >= 1, "B*-tree needs at least one block");
  for (std::size_t i = 0; i + 1 < n; ++i) {
    nodes_[i].left = static_cast<int>(i + 1);
    nodes_[i + 1].parent = static_cast<int>(i);
  }
  root_ = 0;
}

void BStarTree::swap_blocks(std::size_t a, std::size_t b) {
  APLACE_DCHECK(a < size() && b < size());
  if (a == b) return;
  // Swapping block *ids* at fixed tree positions = swap the nodes' places.
  // Implemented by exchanging every reference to a and b.
  auto fix = [&](int& ref) {
    if (ref == static_cast<int>(a)) ref = static_cast<int>(b);
    else if (ref == static_cast<int>(b)) ref = static_cast<int>(a);
  };
  for (Node& nd : nodes_) {
    fix(nd.parent);
    fix(nd.left);
    fix(nd.right);
  }
  std::swap(nodes_[a], nodes_[b]);
  int r = root_;
  fix(r);
  root_ = r;
}

void BStarTree::detach(std::size_t b) {
  Node& nb = nodes_[b];
  // Splice: replace b by one of its children (prefer left), re-hanging the
  // other child below the promoted one.
  int promoted = nb.left != -1 ? nb.left : nb.right;
  if (nb.left != -1 && nb.right != -1) {
    // Hang b's right subtree at the leftmost-right slot of the promoted
    // chain (any free right slot works; walk until one is free).
    int at = promoted;
    while (nodes_[at].right != -1) at = nodes_[at].right;
    nodes_[at].right = nb.right;
    nodes_[nb.right].parent = at;
  }
  if (promoted != -1) nodes_[promoted].parent = nb.parent;
  if (nb.parent == -1) {
    APLACE_CHECK_MSG(promoted != -1, "cannot detach the only block");
    root_ = promoted;
  } else {
    Node& np = nodes_[nb.parent];
    if (np.left == static_cast<int>(b)) np.left = promoted;
    else np.right = promoted;
  }
  nb.parent = nb.left = nb.right = -1;
}

void BStarTree::move_block(std::size_t b, std::size_t parent, bool as_left) {
  APLACE_DCHECK(b < size() && parent < size());
  if (b == parent) return;
  // Refuse to re-hang under b's own subtree (would orphan the tree).
  for (int at = static_cast<int>(parent); at != -1; at = nodes_[at].parent) {
    if (at == static_cast<int>(b)) return;
  }
  detach(b);
  Node& np = nodes_[parent];
  int& slot = as_left ? np.left : np.right;
  // Push any existing child down below b (same side).
  if (as_left) nodes_[b].left = slot;
  else nodes_[b].right = slot;
  if (slot != -1) nodes_[slot].parent = static_cast<int>(b);
  slot = static_cast<int>(b);
  nodes_[b].parent = static_cast<int>(parent);
}

void BStarTree::shuffle(numeric::Rng& rng) {
  for (int k = 0; k < static_cast<int>(size()) * 3; ++k) {
    const std::size_t b =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(size()) - 1));
    const std::size_t p =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(size()) - 1));
    move_block(b, p, rng.bernoulli());
  }
}

BStarTree::Packing BStarTree::pack(const std::vector<double>& widths,
                                   const std::vector<double>& heights) const {
  const std::size_t n = size();
  APLACE_CHECK(widths.size() == n && heights.size() == n);
  Packing out;
  out.x.assign(n, 0.0);
  out.y.assign(n, 0.0);

  // Contour: piecewise-constant skyline height keyed by x (value holds
  // until the next key).
  std::map<double, double> contour;
  contour[0.0] = 0.0;

  auto place = [&](std::size_t b) {
    const double x0 = out.x[b];
    const double x1 = x0 + widths[b];
    // Height = max contour over [x0, x1).
    double y = 0.0;
    auto it = contour.upper_bound(x0);
    APLACE_DCHECK(it != contour.begin());
    --it;  // segment containing x0
    const double resume = [&] {
      for (auto j = it; j != contour.end() && j->first < x1; ++j) {
        y = std::max(y, j->second);
      }
      // Value of the contour just past x1 (to restore after overwriting).
      auto k = contour.upper_bound(x1);
      --k;
      return k->second;
    }();
    out.y[b] = y;
    // Overwrite [x0, x1) with the new top.
    auto lo = contour.lower_bound(x0);
    auto hi = contour.lower_bound(x1);
    contour.erase(lo, hi);
    contour[x0] = y + heights[b];
    if (!contour.contains(x1)) contour[x1] = resume;
    out.width = std::max(out.width, x1);
    out.height = std::max(out.height, y + heights[b]);
  };

  // Preorder DFS from the root.
  std::vector<int> stack{root_};
  std::vector<char> seen(n, 0);
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    APLACE_CHECK_MSG(!seen[b], "B*-tree contains a cycle");
    seen[b] = 1;
    const Node& nd = nodes_[b];
    if (nd.parent != -1) {
      const Node& pp = nodes_[nd.parent];
      if (pp.left == b) {
        out.x[b] = out.x[nd.parent] + widths[nd.parent];
      } else {
        out.x[b] = out.x[nd.parent];
      }
    }
    place(static_cast<std::size_t>(b));
    // Push right first so left (x-adjacent) is processed first.
    if (nd.right != -1) stack.push_back(nd.right);
    if (nd.left != -1) stack.push_back(nd.left);
  }
  for (std::size_t b = 0; b < n; ++b) {
    APLACE_CHECK_MSG(seen[b], "B*-tree is disconnected");
  }
  return out;
}

bool BStarTree::consistent() const {
  std::size_t visited = 0;
  std::vector<char> seen(size(), 0);
  std::vector<int> stack{root_};
  if (nodes_[root_].parent != -1) return false;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    if (b < 0 || b >= static_cast<int>(size()) || seen[b]) return false;
    seen[b] = 1;
    ++visited;
    const Node& nd = nodes_[b];
    for (int child : {nd.left, nd.right}) {
      if (child != -1) {
        if (nodes_[child].parent != b) return false;
        stack.push_back(child);
      }
    }
  }
  return visited == size();
}

}  // namespace aplace::sa
