#pragma once
// Sequence-pair floorplan representation with O(n log n) LCS packing.
//
// Blocks (single devices or symmetry islands) are ordered by two sequences
// (gamma+, gamma-). Block b is left of c iff b precedes c in both sequences;
// below c iff b succeeds c in gamma+ and precedes it in gamma-. Packing
// computes the minimal left/bottom-compacted positions.
//
// The default packer is the Tang–Wong longest-common-subsequence
// formulation (DAC'01 "FAST-SP"): block positions are weighted-LCS lengths,
// computed in O(n log n) with a Fenwick prefix-max structure indexed by
// gamma- position. The original O(n^2) longest-path packer is kept as
// `pack_naive` — it is the test oracle (both produce bit-identical
// coordinates: the same max/+ reductions over the same operand sets) and
// the "before" side of the SA throughput benchmarks.

#include <vector>

#include "base/check.hpp"
#include "numeric/rng.hpp"

namespace aplace::sa {

class SequencePair {
 public:
  /// Identity sequences over n blocks.
  explicit SequencePair(std::size_t n);

  [[nodiscard]] std::size_t size() const { return pos_plus_.size(); }

  // ---- moves ---------------------------------------------------------------
  void swap_in_plus(std::size_t i, std::size_t j);
  void swap_in_both(std::size_t i, std::size_t j);
  void shuffle(numeric::Rng& rng);

  // ---- packing -------------------------------------------------------------
  struct Packing {
    std::vector<double> x, y;  ///< block lower-left corners
    double width = 0, height = 0;
  };

  /// Pack blocks of the given sizes into `out`, reusing its buffers
  /// (allocation-free after the first call). O(n log n) LCS formulation.
  /// Not thread-safe across concurrent calls on the same SequencePair
  /// (shared Fenwick scratch); each SA chain owns its own instance.
  void pack_into(const std::vector<double>& widths,
                 const std::vector<double>& heights, Packing& out) const;

  /// Convenience wrapper around pack_into.
  [[nodiscard]] Packing pack(const std::vector<double>& widths,
                             const std::vector<double>& heights) const;

  /// Reference O(n^2) longest-path packer (pre-LCS implementation); the
  /// test oracle and throughput baseline. Produces coordinates bit-identical
  /// to pack().
  [[nodiscard]] Packing pack_naive(const std::vector<double>& widths,
                                   const std::vector<double>& heights) const;

  /// Does block a precede b in both sequences (a strictly left of b)?
  [[nodiscard]] bool left_of(std::size_t a, std::size_t b) const {
    return pos_plus_[a] < pos_plus_[b] && pos_minus_[a] < pos_minus_[b];
  }
  [[nodiscard]] bool below(std::size_t a, std::size_t b) const {
    return pos_plus_[a] > pos_plus_[b] && pos_minus_[a] < pos_minus_[b];
  }

  [[nodiscard]] const std::vector<std::size_t>& gamma_plus() const {
    return seq_plus_;
  }
  [[nodiscard]] const std::vector<std::size_t>& gamma_minus() const {
    return seq_minus_;
  }

 private:
  // seq_*: position -> block, pos_*: block -> position.
  std::vector<std::size_t> seq_plus_, seq_minus_;
  std::vector<std::size_t> pos_plus_, pos_minus_;
  // Fenwick prefix-max scratch for pack_into (1-based, size n+1). Mutable:
  // packing is logically const, the tree is rebuilt on every call.
  mutable std::vector<double> fenwick_;
};

}  // namespace aplace::sa
