#pragma once
// B*-tree floorplan representation (Chang et al., DAC 2000) — the other
// classic SA substrate for analog placement besides sequence pairs.
//
// An ordered binary tree over blocks: a node's left child abuts it on the
// right (x = parent.x + parent.w), a node's right child sits above it at
// the same x. Packing resolves y coordinates with a contour structure in
// amortized near-linear time. Admissible placements are exactly the
// left/bottom-compacted ones.

#include <vector>

#include "base/check.hpp"
#include "numeric/rng.hpp"

namespace aplace::sa {

class BStarTree {
 public:
  /// Chain tree over n blocks (0 is the root, each next block its left
  /// child): packs into one row until perturbed.
  explicit BStarTree(std::size_t n);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  // ---- moves ---------------------------------------------------------------
  /// Swap the block ids stored at two tree positions (shape preserved).
  void swap_blocks(std::size_t a, std::size_t b);
  /// Remove block b from the tree and re-insert it as a child of `parent`
  /// on the given side; existing child chains are spliced upward.
  void move_block(std::size_t b, std::size_t parent, bool as_left);
  /// Randomize the tree shape.
  void shuffle(numeric::Rng& rng);

  // ---- packing -------------------------------------------------------------
  struct Packing {
    std::vector<double> x, y;  ///< block lower-left corners
    double width = 0, height = 0;
  };
  [[nodiscard]] Packing pack(const std::vector<double>& widths,
                             const std::vector<double>& heights) const;

  /// Tree-structure invariant check (used by tests).
  [[nodiscard]] bool consistent() const;

 private:
  struct Node {
    int parent = -1;
    int left = -1;   ///< right-abutting child
    int right = -1;  ///< above-at-same-x child
  };
  // nodes_[b] is the tree node of block b; root_ names the root block.
  std::vector<Node> nodes_;
  int root_ = 0;

  void detach(std::size_t b);
};

}  // namespace aplace::sa
