#include "sa/incremental_cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace aplace::sa {
namespace {

constexpr std::uint32_t kUnstamped = std::numeric_limits<std::uint32_t>::max();

}  // namespace

IncrementalCost::IncrementalCost(const netlist::CompiledCircuit& compiled)
    : circuit_(&compiled.circuit()),
      compiled_(&compiled),
      eval_(compiled.circuit()),
      state_(compiled.circuit()),
      trial_state_(compiled.circuit()) {
  // Flatten the positional constraints once; the block adjacency comes with
  // configure_blocks() when the caller knows the block structure.
  for (std::size_t k = 0; k < compiled.num_alignments(); ++k) {
    constraints_.push_back(ConstraintRef{ConstraintRef::Kind::Alignment,
                                         static_cast<std::uint32_t>(k)});
  }
  for (std::size_t k = 0; k < compiled.num_orderings(); ++k) {
    constraints_.push_back(ConstraintRef{ConstraintRef::Kind::Ordering,
                                         static_cast<std::uint32_t>(k)});
  }
  for (std::size_t k = 0; k < compiled.num_centroids(); ++k) {
    constraints_.push_back(ConstraintRef{ConstraintRef::Kind::Centroid,
                                         static_cast<std::uint32_t>(k)});
  }

  const std::size_t n = compiled.num_devices();
  const std::size_t num_nets = compiled.num_nets();
  off_.assign(n, {});
  orient_.assign(n, {});
  block_of_.assign(n, 0);
  net_xspan_.assign(num_nets, 0.0);
  net_yspan_.assign(num_nets, 0.0);
  trial_xspan_.assign(num_nets, 0.0);
  trial_yspan_.assign(num_nets, 0.0);
  cons_residual_.assign(constraints_.size(), 0.0);
  trial_cons_residual_.assign(constraints_.size(), 0.0);
  net_epoch_.assign(num_nets, 0);
  cons_epoch_.assign(constraints_.size(), 0);

  // Hot-loop views straight into the compiled snapshot's flat arrays.
  net_weight_ = compiled.net_weight();
  dev_w_ = compiled.dev_width();
  dev_h_ = compiled.dev_height();
  dev_halfw_ = compiled.dev_half_width();
  dev_halfh_ = compiled.dev_half_height();
}

IncrementalCost::IncrementalCost(
    std::shared_ptr<const netlist::CompiledCircuit> compiled)
    : IncrementalCost(*compiled) {
  keep_ = std::move(compiled);
}

IncrementalCost::IncrementalCost(const netlist::Circuit& circuit)
    : IncrementalCost(
          std::make_shared<const netlist::CompiledCircuit>(circuit)) {}

void IncrementalCost::configure_blocks(
    const std::vector<std::vector<Member>>& blocks) {
  num_blocks_ = blocks.size();
  const std::size_t num_nets = circuit_->num_nets();

  // Device <-> block maps.
  block_dev_off_.assign(num_blocks_ + 1, 0);
  block_dev_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    for (const Member& m : blocks[b]) {
      block_of_[m.device.index()] = b;
      block_dev_.push_back(m.device);
    }
    block_dev_off_[b + 1] = block_dev_.size();
  }
  APLACE_DCHECK(block_dev_.size() == circuit_->num_devices());

  // block -> incident nets (deduplicated, ascending net order per block).
  std::vector<std::uint32_t> stamp(num_nets, kUnstamped);
  block_net_off_.assign(num_blocks_ + 1, 0);
  block_net_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const std::size_t begin = block_net_.size();
    for (std::size_t k = block_dev_off_[b]; k < block_dev_off_[b + 1]; ++k) {
      for (std::uint32_t net : compiled_->device_nets(block_dev_[k].index())) {
        if (stamp[net] != static_cast<std::uint32_t>(b)) {
          stamp[net] = static_cast<std::uint32_t>(b);
          block_net_.push_back(net);
        }
      }
    }
    std::sort(block_net_.begin() + static_cast<std::ptrdiff_t>(begin),
              block_net_.end());
    block_net_off_[b + 1] = block_net_.size();
  }

  // net -> RelRef range (net-major, blocks ascending within a net), plus
  // the slot -> rel_ position map the refresh path uses.
  net_block_off_.assign(num_nets + 1, 0);
  for (std::uint32_t net : block_net_) ++net_block_off_[net + 1];
  for (std::size_t i = 0; i < num_nets; ++i) {
    net_block_off_[i + 1] += net_block_off_[i];
  }
  rel_.assign(block_net_.size(), {});
  netpos_of_slot_.assign(block_net_.size(), 0);
  {
    std::vector<std::size_t> cursor(net_block_off_.begin(),
                                    net_block_off_.end() - 1);
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      for (std::size_t s = block_net_off_[b]; s < block_net_off_[b + 1]; ++s) {
        const std::size_t pos = cursor[block_net_[s]]++;
        rel_[pos].block = static_cast<std::uint32_t>(b);
        netpos_of_slot_[s] = static_cast<std::uint32_t>(pos);
      }
    }
  }

  // Per-slot pin lists, in net pin order (so refresh_rel_boxes reproduces
  // the min/max sequence a full-pin walk would, bit for bit). Fed from the
  // compiled net->pin CSR, which preserves declaration order.
  const std::span<const std::uint32_t> pin_device = compiled_->pin_device();
  const std::span<const double> pin_off_x = compiled_->pin_offset_x();
  const std::span<const double> pin_off_y = compiled_->pin_offset_y();
  slot_pin_off_.assign(block_net_.size() + 1, 0);
  slot_pin_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    for (std::size_t s = block_net_off_[b]; s < block_net_off_[b + 1]; ++s) {
      for (std::uint32_t pid : compiled_->net_pins(block_net_[s])) {
        const std::uint32_t dev = pin_device[pid];
        if (block_of_[dev] != b) continue;
        slot_pin_.push_back(
            SlotPin{{pin_off_x[pid], pin_off_y[pid]}, dev, 0});
      }
      slot_pin_off_[s + 1] = slot_pin_.size();
    }
  }

  // block -> flat constraints (deduplicated per constraint) and the
  // reverse constraint -> unique blocks.
  std::vector<std::vector<std::uint32_t>> per_block(num_blocks_);
  std::vector<std::uint32_t> cons_devs;
  const netlist::CompiledCircuit& cc = *compiled_;
  cons_block_off_.assign(1, 0);
  cons_block_.clear();
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    cons_devs.clear();
    const std::uint32_t idx = constraints_[c].index;
    switch (constraints_[c].kind) {
      case ConstraintRef::Kind::Alignment:
        cons_devs = {cc.align_a()[idx], cc.align_b()[idx]};
        break;
      case ConstraintRef::Kind::Ordering: {
        const std::span<const std::uint32_t> devs = cc.order_devices(idx);
        cons_devs.assign(devs.begin(), devs.end());
        break;
      }
      case ConstraintRef::Kind::Centroid:
        cons_devs = {cc.cent_a1()[idx], cc.cent_a2()[idx], cc.cent_b1()[idx],
                     cc.cent_b2()[idx]};
        break;
    }
    for (std::uint32_t d : cons_devs) {
      std::vector<std::uint32_t>& list = per_block[block_of_[d]];
      if (list.empty() || list.back() != static_cast<std::uint32_t>(c)) {
        list.push_back(static_cast<std::uint32_t>(c));
      }
    }
    const std::size_t begin = cons_block_.size();
    for (std::uint32_t d : cons_devs) {
      cons_block_.push_back(static_cast<std::uint32_t>(block_of_[d]));
    }
    std::sort(cons_block_.begin() + static_cast<std::ptrdiff_t>(begin),
              cons_block_.end());
    cons_block_.erase(
        std::unique(cons_block_.begin() + static_cast<std::ptrdiff_t>(begin),
                    cons_block_.end()),
        cons_block_.end());
    cons_block_off_.push_back(cons_block_.size());
  }
  block_cons_off_.assign(num_blocks_ + 1, 0);
  block_cons_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    block_cons_.insert(block_cons_.end(), per_block[b].begin(),
                       per_block[b].end());
    block_cons_off_[b + 1] = block_cons_.size();
  }

  // Incident-block bitmasks for the move loop's rigid test.
  use_mask_ = num_blocks_ <= 64;
  net_mask_.assign(num_nets, 0);
  cons_mask_.assign(constraints_.size(), 0);
  if (use_mask_) {
    for (std::size_t i = 0; i < num_nets; ++i) {
      for (std::size_t k = net_block_off_[i]; k < net_block_off_[i + 1]; ++k) {
        net_mask_[i] |= std::uint64_t{1} << rel_[k].block;
      }
    }
    for (std::size_t c = 0; c < constraints_.size(); ++c) {
      for (std::size_t k = cons_block_off_[c]; k < cons_block_off_[c + 1];
           ++k) {
        cons_mask_[c] |= std::uint64_t{1} << cons_block_[k];
      }
    }
  }

  ox_.assign(num_blocks_, 0.0);
  oy_.assign(num_blocks_, 0.0);
}

void IncrementalCost::refresh_rel_boxes(std::size_t b) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t s = block_net_off_[b]; s < block_net_off_[b + 1]; ++s) {
    double xlo = kInf, ylo = kInf, xhi = -kInf, yhi = -kInf;
    for (std::size_t p = slot_pin_off_[s]; p < slot_pin_off_[s + 1]; ++p) {
      const SlotPin& sp = slot_pin_[p];
      const std::size_t d = sp.dev;
      const geom::Point local = geom::apply_orientation(
          sp.offset, dev_w_[d], dev_h_[d], orient_[d]);
      const geom::Point& o = off_[d];
      const double px = o.x - dev_halfw_[d] + local.x;
      const double py = o.y - dev_halfh_[d] + local.y;
      xlo = std::min(xlo, px);
      xhi = std::max(xhi, px);
      ylo = std::min(ylo, py);
      yhi = std::max(yhi, py);
    }
    APLACE_DCHECK(xlo <= xhi);  // the net is in the block's list, so it has
                                // at least one pin on a member device
    RelRef& r = rel_[netpos_of_slot_[s]];
    r.xlo = xlo;
    r.xhi = xhi;
    r.ylo = ylo;
    r.yhi = yhi;
  }
}

void IncrementalCost::net_spans(const double* ox, const double* oy,
                                std::uint32_t net, double& xs,
                                double& ys) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double xlo = kInf, ylo = kInf, xhi = -kInf, yhi = -kInf;
  for (std::size_t k = net_block_off_[net]; k < net_block_off_[net + 1]; ++k) {
    const RelRef& r = rel_[k];
    const double bx = ox[r.block];
    const double by = oy[r.block];
    xlo = std::min(xlo, bx + r.xlo);
    xhi = std::max(xhi, bx + r.xhi);
    ylo = std::min(ylo, by + r.ylo);
    yhi = std::max(yhi, by + r.yhi);
  }
  xs = xhi - xlo;
  ys = yhi - ylo;
}

double IncrementalCost::net_xspan_of(const double* ox,
                                     std::uint32_t net) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double xlo = kInf, xhi = -kInf;
  for (std::size_t k = net_block_off_[net]; k < net_block_off_[net + 1]; ++k) {
    const RelRef& r = rel_[k];
    const double bx = ox[r.block];
    xlo = std::min(xlo, bx + r.xlo);
    xhi = std::max(xhi, bx + r.xhi);
  }
  return xhi - xlo;
}

double IncrementalCost::net_yspan_of(const double* oy,
                                     std::uint32_t net) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double ylo = kInf, yhi = -kInf;
  for (std::size_t k = net_block_off_[net]; k < net_block_off_[net + 1]; ++k) {
    const RelRef& r = rel_[k];
    const double by = oy[r.block];
    ylo = std::min(ylo, by + r.ylo);
    yhi = std::max(yhi, by + r.yhi);
  }
  return yhi - ylo;
}

double IncrementalCost::constraint_residual(const double* ox, const double* oy,
                                            const ConstraintRef& c) const {
  // Same center-based formulas as netlist::Evaluator, fed from block origin
  // + in-block offset (the exact sum the realize path produces, so these
  // match an Evaluator run on a realized Placement bit for bit; full_cost()
  // cross-checks that). Constraint operands come from the compiled flat
  // tables, which preserve registration order.
  const netlist::CompiledCircuit& cc = *compiled_;
  const auto pos = [&](std::uint32_t d) {
    return position_from(ox, oy, DeviceId{d});
  };
  switch (c.kind) {
    case ConstraintRef::Kind::Alignment: {
      const std::uint32_t a = cc.align_a()[c.index];
      const std::uint32_t b = cc.align_b()[c.index];
      const geom::Point pa = pos(a);
      const geom::Point pb = pos(b);
      switch (cc.align_kind()[c.index]) {
        case netlist::AlignmentKind::Bottom:
          return std::abs((pa.y - dev_halfh_[a]) - (pb.y - dev_halfh_[b]));
        case netlist::AlignmentKind::VerticalCenter:
          return std::abs(pa.x - pb.x);
        case netlist::AlignmentKind::HorizontalCenter:
          return std::abs(pa.y - pb.y);
      }
      return 0.0;
    }
    case ConstraintRef::Kind::Ordering: {
      const std::span<const std::uint32_t> devs = cc.order_devices(c.index);
      const bool l2r =
          cc.order_direction(c.index) == netlist::OrderDirection::LeftToRight;
      double res = 0;
      for (std::size_t i = 0; i + 1 < devs.size(); ++i) {
        const std::uint32_t a = devs[i];
        const std::uint32_t b = devs[i + 1];
        if (l2r) {
          const double gap =
              (pos(b).x - dev_halfw_[b]) - (pos(a).x + dev_halfw_[a]);
          if (gap < 0) res += -gap;
        } else {
          const double gap =
              (pos(b).y - dev_halfh_[b]) - (pos(a).y + dev_halfh_[a]);
          if (gap < 0) res += -gap;
        }
      }
      return res;
    }
    case ConstraintRef::Kind::Centroid: {
      const geom::Point a1 = pos(cc.cent_a1()[c.index]);
      const geom::Point a2 = pos(cc.cent_a2()[c.index]);
      const geom::Point b1 = pos(cc.cent_b1()[c.index]);
      const geom::Point b2 = pos(cc.cent_b2()[c.index]);
      return std::abs((a1.x + a2.x) - (b1.x + b2.x)) +
             std::abs((a1.y + a2.y) - (b1.y + b2.y));
    }
  }
  return 0.0;
}

double IncrementalCost::combine(double hpwl, double area,
                                double penalty) const {
  return weights_.area_weight * area / weights_.area0 +
         (1.0 - weights_.area_weight) * hpwl / weights_.hpwl0 +
         weights_.constraint_weight * penalty / weights_.penalty0;
}

void IncrementalCost::reset(const std::vector<std::vector<Member>>& blocks,
                            const double* ox, const double* oy, double pack_w,
                            double pack_h) {
  APLACE_DCHECK(blocks.size() == num_blocks_);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    for (const Member& m : blocks[b]) {
      APLACE_DCHECK(block_of_[m.device.index()] == b);
      off_[m.device.index()] = m.center;
      orient_[m.device.index()] = m.orientation;
    }
    refresh_rel_boxes(b);
  }
  std::copy(ox, ox + num_blocks_, ox_.begin());
  std::copy(oy, oy + num_blocks_, oy_.begin());
  pack_w_ = pack_w;
  pack_h_ = pack_h;

  hpwl_total_ = 0;
  for (std::size_t i = 0; i < net_xspan_.size(); ++i) {
    net_spans(ox_.data(), oy_.data(), static_cast<std::uint32_t>(i),
              net_xspan_[i], net_yspan_[i]);
    hpwl_total_ += net_weight_[i] * (net_xspan_[i] + net_yspan_[i]);
  }
  penalty_total_ = 0;
  for (std::size_t c = 0; c < constraints_.size(); ++c) {
    cons_residual_[c] =
        constraint_residual(ox_.data(), oy_.data(), constraints_[c]);
    penalty_total_ += cons_residual_[c];
  }

  member_undo_.clear();
  rel_undo_.clear();
  in_trial_ = false;
  trial_evaluated_ = false;
  state_valid_ = false;
  stats_ = {};
}

void IncrementalCost::begin_trial(const double* tx, const double* ty, double w,
                                  double h) {
  APLACE_DCHECK(!in_trial_);
  ++epoch_;  // invalidates the per-trial force stamps
  tx_ = tx;
  ty_ = ty;
  trial_w_ = w;
  trial_h_ = h;
  in_trial_ = true;
  trial_evaluated_ = false;
}

void IncrementalCost::refresh_block(std::size_t b,
                                    const std::vector<Member>& members) {
  APLACE_DCHECK(in_trial_ && b < num_blocks_);
  APLACE_DCHECK(members.size() == block_dev_off_[b + 1] - block_dev_off_[b]);
  for (const Member& m : members) {
    const std::size_t d = m.device.index();
    APLACE_DCHECK(block_of_[d] == b);
    member_undo_.push_back(MemberUndo{m.device, off_[d], orient_[d]});
    off_[d] = m.center;
    orient_[d] = m.orientation;
  }
  for (std::size_t s = block_net_off_[b]; s < block_net_off_[b + 1]; ++s) {
    const std::uint32_t pos = netpos_of_slot_[s];
    const RelRef& r = rel_[pos];
    rel_undo_.push_back(RelBoxUndo{pos, r.xlo, r.xhi, r.ylo, r.yhi});
    net_epoch_[block_net_[s]] = epoch_;  // stale span: force re-evaluation
  }
  for (std::size_t k = block_cons_off_[b]; k < block_cons_off_[b + 1]; ++k) {
    cons_epoch_[block_cons_[k]] = epoch_;
  }
  refresh_rel_boxes(b);
  stats_.devices_staged += members.size();
}

double IncrementalCost::trial_cost() {
  APLACE_DCHECK(in_trial_ && !trial_evaluated_);
  // One sweep over every net and constraint: an entry whose blocks all
  // share one per-axis origin delta keeps its cached value (unmoved nets
  // have all-zero deltas, so they fall out of the same comparison); only
  // disagreeing axes are re-boxed. Totals are fresh sums over the per-net
  // values, so nothing drifts across moves.
  const double* tx = tx_;
  const double* ty = ty_;
  const double* ox = ox_.data();
  const double* oy = oy_.data();
  const std::size_t num_nets = net_xspan_.size();
  // Moved-block mask: one AND decides "no incident block moved" (the
  // all-zero-delta case) without walking the net's delta list. Nets that do
  // hit a moved block still get the per-axis uniform-translation test.
  std::uint64_t moved = 0;
  if (use_mask_) {
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      moved |= static_cast<std::uint64_t>((tx[b] != ox[b]) | (ty[b] != oy[b]))
               << b;
    }
  }
  std::uint64_t evaluated = 0;
  double hp = 0;
  for (std::size_t net = 0; net < num_nets; ++net) {
    const std::size_t k0 = net_block_off_[net];
    const std::size_t k1 = net_block_off_[net + 1];
    bool rx = net_epoch_[net] != epoch_;  // stamped => stale caches
    bool ry = rx;
    const std::uint64_t hit = use_mask_ ? (net_mask_[net] & moved) : 1;
    if (rx && hit != 0) {
      const std::uint32_t b0 = rel_[k0].block;
      const double dx0 = tx[b0] - ox[b0];
      const double dy0 = ty[b0] - oy[b0];
      for (std::size_t k = k0 + 1; k < k1; ++k) {
        // Branchless accumulate: nets are a handful of blocks, so finishing
        // the walk beats an unpredictable early exit.
        const std::uint32_t b = rel_[k].block;
        rx = rx & (tx[b] - ox[b] == dx0);
        ry = ry & (ty[b] - oy[b] == dy0);
      }
    }
    double xs, ys;
    if (rx & ry) {
      xs = net_xspan_[net];
      ys = net_yspan_[net];
    } else {
      ++evaluated;
      if (!(rx | ry)) {
        net_spans(tx, ty, static_cast<std::uint32_t>(net), xs, ys);
      } else if (!rx) {
        xs = net_xspan_of(tx, static_cast<std::uint32_t>(net));
        ys = net_yspan_[net];
      } else {
        xs = net_xspan_[net];
        ys = net_yspan_of(ty, static_cast<std::uint32_t>(net));
      }
    }
    trial_xspan_[net] = xs;
    trial_yspan_[net] = ys;
    hp += net_weight_[net] * (xs + ys);
  }
  double pen = 0;
  for (std::size_t cid = 0; cid < constraints_.size(); ++cid) {
    bool rigid = cons_epoch_[cid] != epoch_;
    const std::uint64_t hit = use_mask_ ? (cons_mask_[cid] & moved) : 1;
    if (rigid && hit != 0) {
      // Residuals only see center differences, so a common translation of
      // every involved block leaves them exact.
      const std::size_t k0 = cons_block_off_[cid];
      const std::size_t k1 = cons_block_off_[cid + 1];
      const std::uint32_t b0 = cons_block_[k0];
      const double dx0 = tx[b0] - ox[b0];
      const double dy0 = ty[b0] - oy[b0];
      for (std::size_t k = k0 + 1; k < k1; ++k) {
        const std::uint32_t b = cons_block_[k];
        rigid = rigid & ((tx[b] - ox[b] == dx0) & (ty[b] - oy[b] == dy0));
      }
    }
    double v;
    if (rigid) {
      v = cons_residual_[cid];
    } else {
      v = constraint_residual(tx, ty, constraints_[cid]);
      ++stats_.constraints_evaluated;
    }
    trial_cons_residual_[cid] = v;
    pen += v;
  }
  trial_hpwl_total_ = hp;
  trial_penalty_total_ = pen;
  trial_evaluated_ = true;

  stats_.evals += 1;
  stats_.nets_evaluated += evaluated;
  stats_.nets_total += num_nets;

  return combine(hp, trial_w_ * trial_h_, pen);
}

void IncrementalCost::commit() {
  APLACE_DCHECK(trial_evaluated_);
  // trial_cost rewrote the full trial arrays, so committing is a swap; the
  // stale values left in the trial buffers are overwritten next move.
  net_xspan_.swap(trial_xspan_);
  net_yspan_.swap(trial_yspan_);
  cons_residual_.swap(trial_cons_residual_);
  hpwl_total_ = trial_hpwl_total_;
  penalty_total_ = trial_penalty_total_;
  pack_w_ = trial_w_;
  pack_h_ = trial_h_;
  std::copy(tx_, tx_ + num_blocks_, ox_.begin());
  std::copy(ty_, ty_ + num_blocks_, oy_.begin());
  member_undo_.clear();  // refreshed offsets/boxes become the committed ones
  rel_undo_.clear();
  in_trial_ = false;
  trial_evaluated_ = false;
  state_valid_ = false;
}

void IncrementalCost::rollback() {
  APLACE_DCHECK(in_trial_);
  // Reverse order, so a device touched twice restores its original state.
  for (std::size_t k = member_undo_.size(); k-- > 0;) {
    off_[member_undo_[k].device.index()] = member_undo_[k].off;
    orient_[member_undo_[k].device.index()] = member_undo_[k].orientation;
  }
  for (std::size_t k = rel_undo_.size(); k-- > 0;) {
    const RelBoxUndo& u = rel_undo_[k];
    RelRef& r = rel_[u.pos];
    r.xlo = u.xlo;
    r.xhi = u.xhi;
    r.ylo = u.ylo;
    r.yhi = u.yhi;
  }
  member_undo_.clear();
  rel_undo_.clear();
  in_trial_ = false;
  trial_evaluated_ = false;
}

double IncrementalCost::cost() const {
  return combine(hpwl_total_, pack_w_ * pack_h_, penalty_total_);
}

void IncrementalCost::materialize(const double* ox, const double* oy,
                                  netlist::Placement& pl) {
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    for (std::size_t k = block_dev_off_[b]; k < block_dev_off_[b + 1]; ++k) {
      const DeviceId d = block_dev_[k];
      pl.set_position(d, {ox[b] + off_[d.index()].x,
                          oy[b] + off_[d.index()].y});
      pl.set_orientation(d, orient_[d.index()]);
    }
  }
}

const netlist::Placement& IncrementalCost::placement() {
  APLACE_DCHECK(!in_trial_);  // committed view only; trial_placement()
                              // serves the staged state
  if (!state_valid_) {
    materialize(ox_.data(), oy_.data(), state_);
    state_valid_ = true;
  }
  return state_;
}

const netlist::Placement& IncrementalCost::trial_placement() {
  APLACE_DCHECK(in_trial_);
  materialize(tx_, ty_, trial_state_);
  return trial_state_;
}

double IncrementalCost::full_cost() {
  // Independent recompute: materialized Placement + the shared Evaluator
  // (per-pin net boxes, not the relative-box caches), so it cross-checks
  // both the span bookkeeping and the engine's residual formulas.
  APLACE_DCHECK(!in_trial_);
  const netlist::Placement& pl = placement();
  const double hpwl = pl.total_hpwl();
  double penalty = 0;
  const netlist::ConstraintSet& cs = circuit_->constraints();
  for (const ConstraintRef& c : constraints_) {
    switch (c.kind) {
      case ConstraintRef::Kind::Alignment:
        penalty += eval_.alignment_residual(pl, cs.alignments[c.index]);
        break;
      case ConstraintRef::Kind::Ordering:
        penalty += eval_.ordering_residual(pl, cs.orderings[c.index]);
        break;
      case ConstraintRef::Kind::Centroid:
        penalty += eval_.centroid_residual(pl, cs.common_centroids[c.index]);
        break;
    }
  }
  return combine(hpwl, pack_w_ * pack_h_, penalty);
}

}  // namespace aplace::sa
