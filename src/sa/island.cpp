#include "sa/island.hpp"

#include <algorithm>

namespace aplace::sa {

Island::Island(const netlist::Circuit& circuit,
               const netlist::SymmetryGroup& group)
    : circuit_(&circuit), group_(&group) {
  rows_.reserve(group.pairs.size() + group.self_symmetric.size());
  const bool vertical = group.axis == netlist::Axis::Vertical;
  for (auto [a, b] : group.pairs) {
    const netlist::Device& da = circuit.device(a);
    Row row;
    row.left = a;
    row.right = b;
    if (vertical) {
      row.w = 2 * da.width;   // pair abutted about the axis
      row.h = da.height;
    } else {
      row.w = da.width;
      row.h = 2 * da.height;
    }
    rows_.push_back(row);
  }
  for (DeviceId d : group.self_symmetric) {
    const netlist::Device& dd = circuit.device(d);
    Row row;
    row.left = d;
    row.right = DeviceId{};
    row.w = dd.width;
    row.h = dd.height;
    rows_.push_back(row);
  }
  recompute_extent();
}

void Island::recompute_extent() {
  width_ = 0;
  height_ = 0;
  const bool vertical = group_->axis == netlist::Axis::Vertical;
  for (const Row& r : rows_) {
    if (vertical) {
      // Rows stack vertically; the island must be wide enough for the
      // widest row (centered about the shared axis).
      width_ = std::max(width_, r.w);
      height_ += r.h;
    } else {
      width_ += r.w;
      height_ = std::max(height_, r.h);
    }
  }
}

void Island::swap_rows(std::size_t a, std::size_t b) {
  APLACE_CHECK(a < rows_.size() && b < rows_.size());
  std::swap(rows_[a], rows_[b]);
}

void Island::mirror_row(std::size_t r) {
  APLACE_CHECK(r < rows_.size());
  if (rows_[r].right.valid()) rows_[r].mirrored = !rows_[r].mirrored;
}

std::vector<Island::Member> Island::members() const {
  std::vector<Member> out;
  members_into(out);
  return out;
}

void Island::members_into(std::vector<Member>& out) const {
  out.clear();
  out.reserve(2 * rows_.size());
  const bool vertical = group_->axis == netlist::Axis::Vertical;
  // Axis runs through the island center in the mirrored dimension.
  const double axis = vertical ? width_ / 2 : height_ / 2;
  double along = 0;  // stacking cursor (y for vertical axis, x otherwise)
  for (const Row& row : rows_) {
    if (vertical) {
      const double yc = along + row.h / 2;
      if (row.right.valid()) {
        const netlist::Device& da = circuit_->device(row.left);
        DeviceId lhs = row.left, rhs = row.right;
        if (row.mirrored) std::swap(lhs, rhs);
        // Left device abuts the axis from the left, right mirrored.
        out.push_back({lhs, {axis - da.width / 2, yc}, {false, false}});
        out.push_back({rhs, {axis + da.width / 2, yc}, {true, false}});
      } else {
        out.push_back({row.left, {axis, yc}, {false, false}});
      }
      along += row.h;
    } else {
      const double xc = along + row.w / 2;
      if (row.right.valid()) {
        const netlist::Device& da = circuit_->device(row.left);
        DeviceId bot = row.left, top = row.right;
        if (row.mirrored) std::swap(bot, top);
        out.push_back({bot, {xc, axis - da.height / 2}, {false, false}});
        out.push_back({top, {xc, axis + da.height / 2}, {false, true}});
      } else {
        out.push_back({row.left, {xc, axis}, {false, false}});
      }
      along += row.w;
    }
  }
}

}  // namespace aplace::sa
