#pragma once
// Symmetry-island construction for the SA placer (Lin et al., "symmetry
// island formulation", TCAD'09 style).
//
// Each symmetry group becomes one rigid island block: mirrored pairs sit
// side-by-side about the island axis, self-symmetric devices are centered on
// it, and rows are stacked along the axis. The SA move set permutes row
// order and swaps pair sides; the island is then packed as a single block by
// the sequence-pair engine, which keeps symmetry *exact* by construction.

#include <vector>

#include "geom/orientation.hpp"
#include "geom/point.hpp"
#include "netlist/circuit.hpp"

namespace aplace::sa {

class Island {
 public:
  Island(const netlist::Circuit& circuit, const netlist::SymmetryGroup& group);

  [[nodiscard]] const netlist::SymmetryGroup& group() const { return *group_; }

  /// Number of stacked rows (pairs + self-symmetric devices).
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  // ---- SA moves ------------------------------------------------------------
  void swap_rows(std::size_t a, std::size_t b);
  /// Swap which side of the axis the pair in row r occupies (no-op for a
  /// self-symmetric row).
  void mirror_row(std::size_t r);

  // ---- geometry ------------------------------------------------------------
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }

  /// Device placements relative to the island's lower-left corner:
  /// fills (device, center offset, orientation) triples.
  struct Member {
    DeviceId device;
    geom::Point center;  ///< relative to island lower-left
    geom::Orientation orientation;
  };
  [[nodiscard]] std::vector<Member> members() const;
  /// Allocation-free variant: clears and refills `out` (hot-loop use; the
  /// SA placer caches member lists per island and refreshes on mutation).
  void members_into(std::vector<Member>& out) const;

 private:
  struct Row {
    // Pair row: left/right devices; self row: single centered device.
    DeviceId left;    // or the self-symmetric device
    DeviceId right;   // invalid for a self row
    double w, h;      // row extent (total width, height)
    bool mirrored = false;
  };

  void recompute_extent();

  const netlist::Circuit* circuit_;
  const netlist::SymmetryGroup* group_;
  std::vector<Row> rows_;
  double width_ = 0, height_ = 0;
};

}  // namespace aplace::sa
