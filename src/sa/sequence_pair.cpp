#include "sa/sequence_pair.hpp"

#include <algorithm>
#include <numeric>

namespace aplace::sa {

SequencePair::SequencePair(std::size_t n)
    : seq_plus_(n), seq_minus_(n), pos_plus_(n), pos_minus_(n) {
  std::iota(seq_plus_.begin(), seq_plus_.end(), 0);
  std::iota(seq_minus_.begin(), seq_minus_.end(), 0);
  std::iota(pos_plus_.begin(), pos_plus_.end(), 0);
  std::iota(pos_minus_.begin(), pos_minus_.end(), 0);
}

void SequencePair::swap_in_plus(std::size_t i, std::size_t j) {
  APLACE_DCHECK(i < size() && j < size());
  std::swap(pos_plus_[seq_plus_[i]], pos_plus_[seq_plus_[j]]);
  std::swap(seq_plus_[i], seq_plus_[j]);
}

void SequencePair::swap_in_both(std::size_t i, std::size_t j) {
  swap_in_plus(i, j);
  APLACE_DCHECK(i < size() && j < size());
  std::swap(pos_minus_[seq_minus_[i]], pos_minus_[seq_minus_[j]]);
  std::swap(seq_minus_[i], seq_minus_[j]);
}

void SequencePair::shuffle(numeric::Rng& rng) {
  std::shuffle(seq_plus_.begin(), seq_plus_.end(), rng.engine());
  std::shuffle(seq_minus_.begin(), seq_minus_.end(), rng.engine());
  for (std::size_t p = 0; p < size(); ++p) {
    pos_plus_[seq_plus_[p]] = p;
    pos_minus_[seq_minus_[p]] = p;
  }
}

void SequencePair::pack_into(const std::vector<double>& widths,
                             const std::vector<double>& heights,
                             Packing& out) const {
  const std::size_t n = size();
  APLACE_CHECK(widths.size() == n && heights.size() == n);
  // Every block is written exactly once per pass, so no zero-fill: resize
  // keeps the existing storage when the caller reuses one Packing per move.
  out.x.resize(n);
  out.y.resize(n);
  out.width = 0;
  out.height = 0;

  // Small instances: each gamma- position is written exactly once per pass,
  // so a plain array with a linear prefix-max scan replaces the Fenwick
  // bit-walk, and the x pass (gamma+ forward) interleaves with the
  // independent y pass (gamma+ backward) so the two max-chains overlap.
  // max is exact regardless of scan order, so the coordinates are
  // bit-identical to the Fenwick path (and to pack_naive).
  if (n <= 32) {
    fenwick_.assign(2 * n, 0.0);
    double* fx = fenwick_.data();
    double* fy = fenwick_.data() + n;
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t bx = seq_plus_[p];
      const std::size_t qx = pos_minus_[bx];
      const std::size_t by = seq_plus_[n - 1 - p];
      const std::size_t qy = pos_minus_[by];
      double x = 0.0, y = 0.0;
      for (std::size_t i = 0; i < qx; ++i) x = std::max(x, fx[i]);
      for (std::size_t i = 0; i < qy; ++i) y = std::max(y, fy[i]);
      out.x[bx] = x;
      out.y[by] = y;
      const double rx = x + widths[bx];
      const double ry = y + heights[by];
      out.width = std::max(out.width, rx);
      out.height = std::max(out.height, ry);
      fx[qx] = rx;
      fy[qy] = ry;
    }
    return;
  }

  fenwick_.assign(n + 1, 0.0);

  // Fenwick prefix-max over gamma- positions: query(q) = max of inserted
  // values at positions < q, insert(q, v) raises the maxima covering q.
  // Each position is inserted exactly once per pass.
  const auto query = [&](std::size_t q) {
    double m = 0.0;
    for (std::size_t i = q; i > 0; i -= i & (~i + 1)) {
      m = std::max(m, fenwick_[i]);
    }
    return m;
  };
  const auto insert = [&](std::size_t q, double v) {
    for (std::size_t i = q + 1; i <= n; i += i & (~i + 1)) {
      fenwick_[i] = std::max(fenwick_[i], v);
    }
  };

  // x: process blocks in gamma+ order. A block c already processed has
  // pos_plus[c] < pos_plus[b]; restricting to pos_minus[c] < pos_minus[b]
  // leaves exactly the blocks left of b, whose reach x[c] + w[c] (final by
  // DAG order) the prefix max takes.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t b = seq_plus_[p];
    const std::size_t q = pos_minus_[b];
    const double x = query(q);
    out.x[b] = x;
    const double reach = x + widths[b];
    out.width = std::max(out.width, reach);
    insert(q, reach);
  }

  // y: same with gamma+ reversed — a processed c has pos_plus[c] >
  // pos_plus[b], and pos_minus[c] < pos_minus[b] makes it the
  // below-relation.
  fenwick_.assign(n + 1, 0.0);
  for (std::size_t p = n; p-- > 0;) {
    const std::size_t b = seq_plus_[p];
    const std::size_t q = pos_minus_[b];
    const double y = query(q);
    out.y[b] = y;
    const double reach = y + heights[b];
    out.height = std::max(out.height, reach);
    insert(q, reach);
  }
}

SequencePair::Packing SequencePair::pack(
    const std::vector<double>& widths,
    const std::vector<double>& heights) const {
  Packing out;
  pack_into(widths, heights, out);
  return out;
}

SequencePair::Packing SequencePair::pack_naive(
    const std::vector<double>& widths,
    const std::vector<double>& heights) const {
  const std::size_t n = size();
  APLACE_CHECK(widths.size() == n && heights.size() == n);
  Packing out;
  out.x.assign(n, 0.0);
  out.y.assign(n, 0.0);

  // x: process blocks in gamma_minus order. Every block already processed
  // that precedes the current one in gamma_plus is to its left.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t b = seq_minus_[p];
    double x = 0;
    for (std::size_t q = 0; q < p; ++q) {
      const std::size_t c = seq_minus_[q];
      if (pos_plus_[c] < pos_plus_[b]) {
        x = std::max(x, out.x[c] + widths[c]);
      }
    }
    out.x[b] = x;
    out.width = std::max(out.width, x + widths[b]);
  }

  // y: process in gamma_minus order; a processed block c is below b iff
  // c succeeds b in gamma_plus.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t b = seq_minus_[p];
    double y = 0;
    for (std::size_t q = 0; q < p; ++q) {
      const std::size_t c = seq_minus_[q];
      if (pos_plus_[c] > pos_plus_[b]) {
        y = std::max(y, out.y[c] + heights[c]);
      }
    }
    out.y[b] = y;
    out.height = std::max(out.height, y + heights[b]);
  }
  return out;
}

}  // namespace aplace::sa
