#include "sa/sequence_pair.hpp"

#include <algorithm>
#include <numeric>

namespace aplace::sa {

SequencePair::SequencePair(std::size_t n)
    : seq_plus_(n), seq_minus_(n), pos_plus_(n), pos_minus_(n) {
  std::iota(seq_plus_.begin(), seq_plus_.end(), 0);
  std::iota(seq_minus_.begin(), seq_minus_.end(), 0);
  std::iota(pos_plus_.begin(), pos_plus_.end(), 0);
  std::iota(pos_minus_.begin(), pos_minus_.end(), 0);
}

void SequencePair::swap_in_plus(std::size_t i, std::size_t j) {
  APLACE_DCHECK(i < size() && j < size());
  std::swap(pos_plus_[seq_plus_[i]], pos_plus_[seq_plus_[j]]);
  std::swap(seq_plus_[i], seq_plus_[j]);
}

void SequencePair::swap_in_both(std::size_t i, std::size_t j) {
  swap_in_plus(i, j);
  APLACE_DCHECK(i < size() && j < size());
  std::swap(pos_minus_[seq_minus_[i]], pos_minus_[seq_minus_[j]]);
  std::swap(seq_minus_[i], seq_minus_[j]);
}

void SequencePair::shuffle(numeric::Rng& rng) {
  std::shuffle(seq_plus_.begin(), seq_plus_.end(), rng.engine());
  std::shuffle(seq_minus_.begin(), seq_minus_.end(), rng.engine());
  for (std::size_t p = 0; p < size(); ++p) {
    pos_plus_[seq_plus_[p]] = p;
    pos_minus_[seq_minus_[p]] = p;
  }
}

SequencePair::Packing SequencePair::pack(
    const std::vector<double>& widths,
    const std::vector<double>& heights) const {
  const std::size_t n = size();
  APLACE_CHECK(widths.size() == n && heights.size() == n);
  Packing out;
  out.x.assign(n, 0.0);
  out.y.assign(n, 0.0);

  // x: process blocks in gamma_minus order. Every block already processed
  // that precedes the current one in gamma_plus is to its left.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t b = seq_minus_[p];
    double x = 0;
    for (std::size_t q = 0; q < p; ++q) {
      const std::size_t c = seq_minus_[q];
      if (pos_plus_[c] < pos_plus_[b]) {
        x = std::max(x, out.x[c] + widths[c]);
      }
    }
    out.x[b] = x;
    out.width = std::max(out.width, x + widths[b]);
  }

  // y: process in gamma_minus order; a processed block c is below b iff
  // c succeeds b in gamma_plus.
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t b = seq_minus_[p];
    double y = 0;
    for (std::size_t q = 0; q < p; ++q) {
      const std::size_t c = seq_minus_[q];
      if (pos_plus_[c] > pos_plus_[b]) {
        y = std::max(y, out.y[c] + heights[c]);
      }
    }
    out.y[b] = y;
    out.height = std::max(out.height, y + heights[b]);
  }
  return out;
}

}  // namespace aplace::sa
