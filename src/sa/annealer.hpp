#pragma once
// Simulated-annealing analog placer: the classic baseline the paper
// compares against.
//
// Representation: sequence pair over blocks, where each symmetry group is a
// rigid symmetry island (symmetry holds exactly at all times) and every
// other device is its own block. Moves: sequence swaps, device flips,
// island-row permutation and pair mirroring. Cost: normalized layout area +
// wirelength, plus penalties for alignment/ordering constraints, plus an
// optional caller-supplied term (the performance-driven variant plugs the
// GNN's failure probability in here, as in Li et al. ICCAD'20 [19]).
//
// Evaluation engines: the default incremental engine packs with the
// O(n log n) LCS packer, diffs block positions against the committed
// packing, and re-evaluates only the nets/constraints of devices that
// moved (IncrementalCost); trial placements are never materialized. The
// pre-existing full-recompute path (naive O(n^2) pack + realize + whole
// netlist cost) is kept behind SaOptions::incremental=false as the oracle
// and the "before" side of the throughput benches.

#include <functional>
#include <optional>

#include "base/cancel.hpp"
#include "base/deadline.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/placement.hpp"
#include "numeric/rng.hpp"
#include "sa/incremental_cost.hpp"
#include "sa/island.hpp"
#include "sa/sequence_pair.hpp"

namespace aplace::sa {

struct SaOptions {
  double cooling = 0.96;          ///< geometric temperature decay
  double stop_temperature_ratio = 1e-4;  ///< stop when T < ratio * T0
  int moves_per_temp_per_block = 60;
  long max_moves = 0;             ///< 0 = schedule-driven only
  /// Wall-clock budget polled every few moves; the best state found so far
  /// is returned when it expires (the initial packing when it already was).
  Deadline deadline;
  /// Cooperative cancellation, polled at the same every-64-moves site; a
  /// cancelled chain returns its best state so far with `cancelled` set.
  base::CancelToken cancel;
  std::uint64_t seed = 1;
  /// Independent annealing chains, each on its own RNG stream split from
  /// `seed` (chain c is independent of the chain count). Chains run
  /// concurrently on the global thread pool — except when `extra_cost` is
  /// set, which may not be thread-safe, so chains then run sequentially —
  /// and the best chain by final cost wins (ties: lowest chain index), so
  /// the result is identical for every thread count.
  int num_chains = 1;

  double area_weight = 0.38;      ///< vs. (1 - area_weight) wirelength
  double constraint_weight = 8.0; ///< alignment / ordering penalty weight

  /// Delta-cost evaluation via IncrementalCost (default). false = legacy
  /// full recompute per move: realize a trial Placement and re-evaluate the
  /// whole netlist — the bench/test oracle.
  bool incremental = true;
  /// Use the O(n^2) longest-path packer instead of the O(n log n) LCS
  /// packer (bit-identical coordinates; kept for A/B benchmarking).
  bool naive_pack = false;

  /// Optional extra cost term evaluated on candidate placements (already
  /// weighted by the caller). Used for performance-driven SA. With the
  /// incremental engine the trial placement is materialized from the block
  /// origins only when this is set (plain SA never builds one per move).
  std::function<double(const netlist::Placement&)> extra_cost;
};

struct SaResult {
  netlist::Placement placement;
  double cost = 0.0;
  long moves_evaluated = 0;
  long moves_accepted = 0;
  bool deadline_hit = false;  ///< annealing truncated by the wall-clock budget
  bool cancelled = false;     ///< annealing truncated by cancellation
  double anneal_seconds = 0.0;    ///< wall time inside run_chain (summed
                                  ///< over chains for multi-chain runs)
  double moves_per_second = 0.0;  ///< moves_evaluated / anneal_seconds
  IncrementalCost::Stats eval_stats;  ///< delta-eval cache effectiveness
};

class SaPlacer {
 public:
  /// Borrow a compiled snapshot the caller keeps alive.
  SaPlacer(const netlist::CompiledCircuit& compiled, SaOptions options);
  /// Share ownership of a compiled snapshot.
  SaPlacer(std::shared_ptr<const netlist::CompiledCircuit> compiled,
           SaOptions options);
  /// Convenience: compile privately from a raw circuit.
  SaPlacer(const netlist::Circuit& circuit, SaOptions options);

  /// Run `num_chains` independent annealing chains from shuffled initial
  /// states; returns the best result found (see SaOptions::num_chains).
  [[nodiscard]] SaResult place();

  /// One random legal state (shuffled sequence pair, random flips and island
  /// permutations) — used to generate GNN training datasets cheaply.
  /// Operates on sampling-only copies of the island/orientation state:
  /// repeated calls compose exactly as before, but a later place() on the
  /// same instance is unaffected (no leaked state).
  [[nodiscard]] netlist::Placement sample_random(numeric::Rng& rng);

  [[nodiscard]] std::size_t num_blocks() const { return block_w_.size(); }

  /// Diagnostic/property-test hook: run `steps` random moves (all five
  /// kinds, random accept/reject) with the incremental engine, checking it
  /// after every move against from-scratch recomputation and a freshly
  /// realized placement. Returns the maximum normalized deviation observed
  /// (0 for a correct engine up to accumulation error).
  [[nodiscard]] double verify_incremental(std::uint64_t seed, int steps);

 private:
  /// A proposed move, already applied to the representation state; kind -1
  /// means no move was applicable (degenerate block structure).
  struct Move {
    int kind = -1;  ///< 0 swap+, 1 swap both, 2 flip, 3 row swap, 4 mirror
    std::size_t i = 0, j = 0;
    std::size_t isl = 0, r1 = 0, r2 = 0;
    DeviceId flip_dev;
    bool flip_axis_x = false;
  };

  /// One annealing chain seeded with `chain_seed`. Annealing state
  /// (sequence pair, orientations, islands) is re-initialized at entry, so
  /// repeated runs on one instance are independent.
  [[nodiscard]] SaResult run_chain(std::uint64_t chain_seed);

  void reset_anneal_state();
  /// Member lists (device, offset, orientation) for every block in block
  /// order — islands first, then singles — from the current island /
  /// orientation state. Feeds IncrementalCost::configure_blocks / reset.
  [[nodiscard]] std::vector<std::vector<Island::Member>> block_members() const;
  /// Draw a move and apply it to the representation (sequence pair /
  /// orientations / islands). Degenerate draws (i == j) redraw boundedly
  /// instead of burning the move budget.
  [[nodiscard]] Move propose_move(numeric::Rng& rng);
  void undo_move(const Move& mv);
  /// Pack the current sequence pair into `out` honoring naive_pack.
  void pack_current(SequencePair::Packing& out) const;
  /// Stage a proposed move on the engine: repack into `pack_trial_` for
  /// sequence moves and mark every block the repack translated (origin diff
  /// against `pack_`); flip/island moves skip the repack — the packing is
  /// provably unchanged — and only refresh the mutated block.
  void stage_trial(const Move& mv);
  /// Commit bookkeeping after the engine accepted a staged move.
  void commit_trial(const Move& mv);

  void realize(const SequencePair::Packing& pk, netlist::Placement& pl) const;
  void realize(const SequencePair::Packing& pk,
               const std::vector<Island>& islands,
               const std::vector<geom::Orientation>& orient,
               netlist::Placement& pl) const;
  [[nodiscard]] double cost_of(const netlist::Placement& pl) const;

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  SaOptions opts_;
  netlist::Evaluator eval_;

  // Blocks: first all islands, then single devices.
  std::vector<Island> islands_;
  std::vector<DeviceId> single_device_;       ///< block -> device (singles)
  std::vector<std::size_t> single_block_of_;  ///< device -> block or npos
  std::vector<double> block_w_, block_h_;
  std::vector<geom::Orientation> device_orient_;

  // Annealing state (re-initialized per chain).
  SequencePair sp_{0};
  SequencePair::Packing pack_;        ///< committed block positions
  SequencePair::Packing pack_trial_;  ///< scratch for proposed packings
  IncrementalCost engine_;
  std::vector<Island::Member> member_scratch_;  ///< trial members of the
                                                ///< island a move mutated
  std::vector<Island::Member> single_scratch_;  ///< 1-element refresh list
                                                ///< for device-flip moves

  // Sampling-only state (sample_random): lazily copied from the pristine
  // construction-time state, then mutated cumulatively across calls —
  // reproducing the pre-fix sampling sequence without touching the
  // annealing members.
  bool sample_state_ready_ = false;
  std::vector<Island> sample_islands_;
  std::vector<geom::Orientation> sample_orient_;

  // Normalizers captured from the initial state.
  double hpwl0_ = 1.0, area0_ = 1.0, penalty0_ = 1.0;
};

}  // namespace aplace::sa
