#pragma once
// Simulated-annealing analog placer: the classic baseline the paper
// compares against.
//
// Representation: sequence pair over blocks, where each symmetry group is a
// rigid symmetry island (symmetry holds exactly at all times) and every
// other device is its own block. Moves: sequence swaps, device flips,
// island-row permutation and pair mirroring. Cost: normalized layout area +
// wirelength, plus penalties for alignment/ordering constraints, plus an
// optional caller-supplied term (the performance-driven variant plugs the
// GNN's failure probability in here, as in Li et al. ICCAD'20 [19]).

#include <functional>
#include <optional>

#include "base/deadline.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/placement.hpp"
#include "numeric/rng.hpp"
#include "sa/island.hpp"
#include "sa/sequence_pair.hpp"

namespace aplace::sa {

struct SaOptions {
  double cooling = 0.96;          ///< geometric temperature decay
  double stop_temperature_ratio = 1e-4;  ///< stop when T < ratio * T0
  int moves_per_temp_per_block = 60;
  long max_moves = 0;             ///< 0 = schedule-driven only
  /// Wall-clock budget polled every few moves; the best state found so far
  /// is returned when it expires (the initial packing when it already was).
  Deadline deadline;
  std::uint64_t seed = 1;
  /// Independent annealing chains, each on its own RNG stream split from
  /// `seed` (chain c is independent of the chain count). Chains run
  /// concurrently on the global thread pool — except when `extra_cost` is
  /// set, which may not be thread-safe, so chains then run sequentially —
  /// and the best chain by final cost wins (ties: lowest chain index), so
  /// the result is identical for every thread count.
  int num_chains = 1;

  double area_weight = 0.38;      ///< vs. (1 - area_weight) wirelength
  double constraint_weight = 8.0; ///< alignment / ordering penalty weight

  /// Optional extra cost term evaluated on candidate placements (already
  /// weighted by the caller). Used for performance-driven SA.
  std::function<double(const netlist::Placement&)> extra_cost;
};

struct SaResult {
  netlist::Placement placement;
  double cost = 0.0;
  long moves_evaluated = 0;
  long moves_accepted = 0;
  bool deadline_hit = false;  ///< annealing truncated by the wall-clock budget
};

class SaPlacer {
 public:
  SaPlacer(const netlist::Circuit& circuit, SaOptions options);

  /// Run `num_chains` independent annealing chains from shuffled initial
  /// states; returns the best result found (see SaOptions::num_chains).
  [[nodiscard]] SaResult place();

  /// One random legal state (shuffled sequence pair, random flips and island
  /// permutations) — used to generate GNN training datasets cheaply.
  [[nodiscard]] netlist::Placement sample_random(numeric::Rng& rng);

  [[nodiscard]] std::size_t num_blocks() const { return block_w_.size(); }

 private:
  struct DeviceSlot {
    std::size_t block;     ///< owning block
    geom::Point offset;    ///< center offset from block lower-left (for
                           ///< single blocks; islands recompute on the fly)
  };

  /// One annealing chain seeded with `chain_seed` (mutates this placer's
  /// island/orientation state; multi-chain runs build one placer per chain).
  [[nodiscard]] SaResult run_chain(std::uint64_t chain_seed);

  void realize(const SequencePair::Packing& pk,
               netlist::Placement& pl) const;
  [[nodiscard]] double cost_of(const netlist::Placement& pl) const;

  const netlist::Circuit* circuit_;
  SaOptions opts_;
  netlist::Evaluator eval_;

  // Blocks: first all islands, then single devices.
  std::vector<Island> islands_;
  std::vector<DeviceId> single_device_;       ///< block -> device (singles)
  std::vector<std::size_t> single_block_of_;  ///< device -> block or npos
  std::vector<double> block_w_, block_h_;
  std::vector<geom::Orientation> device_orient_;

  // Normalizers captured from the initial state.
  double hpwl0_ = 1.0, area0_ = 1.0, penalty0_ = 1.0;
};

}  // namespace aplace::sa
