#include "sa/annealer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace aplace::sa {
namespace {

constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t draw_index(numeric::Rng& rng, std::size_t count) {
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(count) - 1));
}

// Draw an index != i with a bounded, deterministic number of redraws, then
// fall back to the cyclic successor. Degenerate i == j draws used to burn
// an entry from the per-temperature move budget (and from the T0
// calibration pool), silently biasing the move mix on small circuits.
std::size_t draw_distinct(numeric::Rng& rng, std::size_t i,
                          std::size_t count) {
  APLACE_DCHECK(count >= 2);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::size_t j = draw_index(rng, count);
    if (j != i) return j;
  }
  return (i + 1) % count;
}

}  // namespace

SaPlacer::SaPlacer(const netlist::CompiledCircuit& compiled, SaOptions options)
    : circuit_(&compiled.circuit()),
      compiled_(&compiled),
      opts_(std::move(options)),
      eval_(compiled.circuit()),
      engine_(compiled) {
  const netlist::Circuit& circuit = compiled.circuit();
  const std::size_t n = circuit.num_devices();
  single_block_of_.assign(n, kNoBlock);
  device_orient_.assign(n, {});

  std::vector<char> in_island(n, 0);
  for (const netlist::SymmetryGroup& g : circuit.constraints().symmetry_groups) {
    islands_.emplace_back(circuit, g);
    for (const Island::Member& m : islands_.back().members()) {
      in_island[m.device.index()] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_island[i]) single_device_.push_back(DeviceId{i});
  }

  const std::size_t nb = islands_.size() + single_device_.size();
  block_w_.resize(nb);
  block_h_.resize(nb);
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    block_w_[b] = islands_[b].width();
    block_h_[b] = islands_[b].height();
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands_.size() + s;
    const netlist::Device& d = circuit.device(single_device_[s]);
    block_w_[b] = d.width;
    block_h_[b] = d.height;
    single_block_of_[single_device_[s].index()] = b;
  }
  single_scratch_.resize(1);
  engine_.configure_blocks(block_members());
}

SaPlacer::SaPlacer(std::shared_ptr<const netlist::CompiledCircuit> compiled,
                   SaOptions options)
    : SaPlacer(*compiled, std::move(options)) {
  keep_ = std::move(compiled);
}

SaPlacer::SaPlacer(const netlist::Circuit& circuit, SaOptions options)
    : SaPlacer(std::make_shared<const netlist::CompiledCircuit>(circuit),
               std::move(options)) {}

std::vector<std::vector<Island::Member>> SaPlacer::block_members() const {
  std::vector<std::vector<Island::Member>> blocks(num_blocks());
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    blocks[b] = islands_[b].members();
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands_.size() + s;
    const DeviceId dev = single_device_[s];
    blocks[b] = {Island::Member{dev,
                                {block_w_[b] / 2, block_h_[b] / 2},
                                device_orient_[dev.index()]}};
  }
  return blocks;
}

void SaPlacer::reset_anneal_state() {
  // Rebuild the mutable representation from the circuit so every chain (and
  // every place() call on this instance) starts from the pristine state —
  // previously a second run inherited the island permutations and flips the
  // first one ended in.
  device_orient_.assign(circuit_->num_devices(), {});
  islands_.clear();
  for (const netlist::SymmetryGroup& g :
       circuit_->constraints().symmetry_groups) {
    islands_.emplace_back(*circuit_, g);
  }
}

void SaPlacer::realize(const SequencePair::Packing& pk,
                       netlist::Placement& pl) const {
  realize(pk, islands_, device_orient_, pl);
}

void SaPlacer::realize(const SequencePair::Packing& pk,
                       const std::vector<Island>& islands,
                       const std::vector<geom::Orientation>& orient,
                       netlist::Placement& pl) const {
  for (std::size_t b = 0; b < islands.size(); ++b) {
    const geom::Point origin{pk.x[b], pk.y[b]};
    for (const Island::Member& m : islands[b].members()) {
      pl.set_position(m.device, origin + m.center);
      pl.set_orientation(m.device, m.orientation);
    }
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands.size() + s;
    const DeviceId dev = single_device_[s];
    pl.set_position(dev, {pk.x[b] + block_w_[b] / 2, pk.y[b] + block_h_[b] / 2});
    pl.set_orientation(dev, orient[dev.index()]);
  }
}

double SaPlacer::cost_of(const netlist::Placement& pl) const {
  const double hpwl = pl.total_hpwl();
  const double area = pl.layout_area();
  double penalty = 0;
  for (const netlist::AlignmentPair& a : circuit_->constraints().alignments) {
    penalty += eval_.alignment_residual(pl, a);
  }
  for (const netlist::OrderingConstraint& o :
       circuit_->constraints().orderings) {
    penalty += eval_.ordering_residual(pl, o);
  }
  for (const netlist::CommonCentroidQuad& q :
       circuit_->constraints().common_centroids) {
    penalty += eval_.centroid_residual(pl, q);
  }
  double cost = opts_.area_weight * area / area0_ +
                (1.0 - opts_.area_weight) * hpwl / hpwl0_ +
                opts_.constraint_weight * penalty / penalty0_;
  if (opts_.extra_cost) cost += opts_.extra_cost(pl);
  return cost;
}

netlist::Placement SaPlacer::sample_random(numeric::Rng& rng) {
  // Sampling walks island permutations and orientations cumulatively (the
  // GNN dataset relies on that diversity), but on dedicated copies: the
  // annealing members stay pristine, so a later place() — or interleaved
  // sampling and annealing on one instance — no longer starts from leaked
  // state. For a fixed rng the sampled sequence is unchanged.
  if (!sample_state_ready_) {
    sample_islands_.clear();
    for (const netlist::SymmetryGroup& g :
         circuit_->constraints().symmetry_groups) {
      sample_islands_.emplace_back(*circuit_, g);
    }
    sample_orient_.assign(circuit_->num_devices(), {});
    sample_state_ready_ = true;
  }

  const std::size_t nb = num_blocks();
  SequencePair sp(nb);
  sp.shuffle(rng);
  for (DeviceId d : single_device_) {
    sample_orient_[d.index()] = {rng.bernoulli(), rng.bernoulli()};
  }
  for (Island& island : sample_islands_) {
    for (std::size_t r = 0; r < island.num_rows(); ++r) {
      if (rng.bernoulli(0.3)) island.mirror_row(r);
    }
    if (island.num_rows() >= 2 && rng.bernoulli()) {
      island.swap_rows(
          static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1)),
          static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1)));
    }
  }
  netlist::Placement pl(*circuit_);
  realize(sp.pack(block_w_, block_h_), sample_islands_, sample_orient_, pl);
  pl.normalize_to_origin();
  return pl;
}

SaResult SaPlacer::place() {
  const int chains = std::max(opts_.num_chains, 1);
  if (chains == 1) return run_chain(numeric::split_seed(opts_.seed, 0));

  // Multi-chain: each chain anneals on its own placer instance (a chain
  // mutates island and orientation state) with an RNG stream split from the
  // master seed, then the best final cost wins with ties broken by the
  // lowest chain index — an ordered reduction, so the outcome is identical
  // for every thread count.
  std::vector<std::optional<SaResult>> results(
      static_cast<std::size_t>(chains));
  auto run_one = [&](int c) {
    SaOptions chain_opts = opts_;
    chain_opts.num_chains = 1;
    SaPlacer chain(*circuit_, std::move(chain_opts));
    results[static_cast<std::size_t>(c)] =
        chain.run_chain(numeric::split_seed(opts_.seed, static_cast<std::uint64_t>(c)));
  };
  if (opts_.extra_cost) {
    // A caller-supplied cost callback (the GNN in perf-driven SA) is not
    // guaranteed thread-safe; keep the chains sequential but still split.
    for (int c = 0; c < chains; ++c) run_one(c);
  } else {
    base::ThreadPool& pool = base::ThreadPool::global();
    base::ThreadPool::TaskGroup group(pool);
    for (int c = 1; c < chains; ++c) {
      group.run([&run_one, c] { run_one(c); });
    }
    run_one(0);
    group.wait();
  }

  std::optional<SaResult> best;
  long moves_evaluated = 0, moves_accepted = 0;
  double anneal_seconds = 0;
  IncrementalCost::Stats stats;
  bool deadline_hit = false;
  bool cancelled = false;
  for (std::optional<SaResult>& r : results) {
    APLACE_CHECK(r.has_value());
    moves_evaluated += r->moves_evaluated;
    moves_accepted += r->moves_accepted;
    anneal_seconds += r->anneal_seconds;
    stats.merge(r->eval_stats);
    deadline_hit |= r->deadline_hit;
    cancelled |= r->cancelled;
    if (!best || r->cost < best->cost) best = std::move(r);
  }
  best->moves_evaluated = moves_evaluated;
  best->moves_accepted = moves_accepted;
  best->deadline_hit = deadline_hit;
  best->cancelled = cancelled;
  best->anneal_seconds = anneal_seconds;
  best->moves_per_second =
      anneal_seconds > 0
          ? static_cast<double>(moves_evaluated) / anneal_seconds
          : 0.0;
  best->eval_stats = stats;
  return std::move(*best);
}

SaPlacer::Move SaPlacer::propose_move(numeric::Rng& rng) {
  // Move kinds: 0 swap+, 1 swap both, 2 flip device, 3 island row swap,
  // 4 island mirror. Applies the move to the representation; undo_move
  // reverses it.
  const std::size_t nb = num_blocks();
  const bool have_islands = !islands_.empty();
  const bool have_singles = !single_device_.empty();
  Move mv;
  const int kind = rng.uniform_int(0, 99);
  if (kind < 35 && nb >= 2) {
    mv.i = draw_index(rng, nb);
    mv.j = draw_distinct(rng, mv.i, nb);
    sp_.swap_in_plus(mv.i, mv.j);
    mv.kind = 0;
  } else if (kind < 70 && nb >= 2) {
    mv.i = draw_index(rng, nb);
    mv.j = draw_distinct(rng, mv.i, nb);
    sp_.swap_in_both(mv.i, mv.j);
    mv.kind = 1;
  } else if (kind < 85 && have_singles) {
    mv.flip_dev = single_device_[draw_index(rng, single_device_.size())];
    mv.flip_axis_x = rng.bernoulli();
    geom::Orientation& o = device_orient_[mv.flip_dev.index()];
    if (mv.flip_axis_x) o.flip_x = !o.flip_x;
    else o.flip_y = !o.flip_y;
    mv.kind = 2;
  } else if (have_islands) {
    mv.isl = draw_index(rng, islands_.size());
    Island& island = islands_[mv.isl];
    if (island.num_rows() >= 2 && rng.bernoulli()) {
      mv.r1 = draw_index(rng, island.num_rows());
      mv.r2 = draw_distinct(rng, mv.r1, island.num_rows());
      island.swap_rows(mv.r1, mv.r2);
      mv.kind = 3;
    } else {
      mv.r1 = draw_index(rng, island.num_rows());
      island.mirror_row(mv.r1);
      mv.kind = 4;
    }
  }
  return mv;
}

void SaPlacer::undo_move(const Move& mv) {
  switch (mv.kind) {
    case 0: sp_.swap_in_plus(mv.i, mv.j); break;
    case 1: sp_.swap_in_both(mv.i, mv.j); break;
    case 2: {
      geom::Orientation& o = device_orient_[mv.flip_dev.index()];
      if (mv.flip_axis_x) o.flip_x = !o.flip_x;
      else o.flip_y = !o.flip_y;
      break;
    }
    case 3: islands_[mv.isl].swap_rows(mv.r1, mv.r2); break;
    case 4: islands_[mv.isl].mirror_row(mv.r1); break;
    default: break;
  }
}

void SaPlacer::pack_current(SequencePair::Packing& out) const {
  if (opts_.naive_pack) {
    out = sp_.pack_naive(block_w_, block_h_);
  } else {
    sp_.pack_into(block_w_, block_h_, out);
  }
}

void SaPlacer::stage_trial(const Move& mv) {
  // Flip and island-permutation moves (kinds 2-4) leave the sequence pair
  // and every block dimension unchanged — block dims are fixed at
  // construction, and row swap / mirror preserve the island extent — so the
  // packing is bit-identical to the committed one. Skip the repack and run
  // the trial against pack_: no block origin moves, only the mutated
  // block's internals go dirty.
  const bool structural = mv.kind == 0 || mv.kind == 1;
  if (structural) {
    pack_current(pack_trial_);
    engine_.begin_trial(pack_trial_.x.data(), pack_trial_.y.data(),
                        pack_trial_.width, pack_trial_.height);
  } else {
    engine_.begin_trial(pack_.x.data(), pack_.y.data(), pack_.width,
                        pack_.height);
  }
  // Internal mutations force-reevaluate their block's caches; translated
  // blocks need no marking — trial_cost discovers them from the origin
  // deltas, and blocks that neither moved nor changed inside keep their
  // cached net/constraint values.
  if (mv.kind == 3 || mv.kind == 4) {
    islands_[mv.isl].members_into(member_scratch_);
    engine_.refresh_block(mv.isl, member_scratch_);
  } else if (mv.kind == 2) {
    const std::size_t b = single_block_of_[mv.flip_dev.index()];
    single_scratch_[0] =
        Island::Member{mv.flip_dev,
                       {block_w_[b] / 2, block_h_[b] / 2},
                       device_orient_[mv.flip_dev.index()]};
    engine_.refresh_block(b, single_scratch_);
  }
}

void SaPlacer::commit_trial(const Move& mv) {
  // Kinds 2-4 never packed into pack_trial_ (see stage_trial), so the
  // committed packing is already current.
  if (mv.kind == 0 || mv.kind == 1) std::swap(pack_, pack_trial_);
}

SaResult SaPlacer::run_chain(std::uint64_t chain_seed) {
  // One coarse span per chain; per-move telemetry is batched into the
  // local loop counters and flushed once at the end so the hot loop pays
  // nothing (the <2% bench_micro_kernels budget).
  obs::Span chain_span("sa/chain");
  const auto t_start = Clock::now();
  numeric::Rng rng(chain_seed);
  reset_anneal_state();
  const std::size_t nb = num_blocks();
  sp_ = SequencePair(nb);
  sp_.shuffle(rng);
  pack_current(pack_);

  netlist::Placement pl(*circuit_);
  realize(pack_, pl);
  // Normalizers: initial state metrics (penalty scale = layout half-perimeter
  // so residuals in microns are comparable). The incremental engine's area
  // metric is the packing extent (identical to the block bounding box);
  // the legacy path keeps the device bounding box it always used.
  const bool inc = opts_.incremental;
  hpwl0_ = std::max(pl.total_hpwl(), 1e-9);
  area0_ = inc ? std::max(pack_.width * pack_.height, 1e-9)
               : std::max(pl.layout_area(), 1e-9);
  penalty0_ = std::max(std::sqrt(area0_), 1e-9);

  if (inc) {
    engine_.set_weights({opts_.area_weight, opts_.constraint_weight, hpwl0_,
                         area0_, penalty0_});
    engine_.reset(block_members(), pack_.x.data(), pack_.y.data(),
                  pack_.width, pack_.height);
  }
  const auto extra = [&](const netlist::Placement& p) {
    return opts_.extra_cost ? opts_.extra_cost(p) : 0.0;
  };

  double cur_cost =
      inc ? engine_.cost() + extra(engine_.placement()) : cost_of(pl);
  SaResult best{pl, cur_cost, 0, 0};

  // Calibrate T0 by sampling swap-move deltas from the initial state. The
  // 40-probe pool used to shrink whenever i == j came up; draw_distinct
  // keeps it full.
  std::vector<double> deltas;
  netlist::Placement tmp(*circuit_);
  if (nb >= 2) {
    for (int k = 0; k < 40; ++k) {
      const std::size_t i = draw_index(rng, nb);
      const std::size_t j = draw_distinct(rng, i, nb);
      sp_.swap_in_both(i, j);
      double probe;
      if (inc) {
        Move mv;
        mv.kind = 1;
        mv.i = i;
        mv.j = j;
        stage_trial(mv);
        probe = engine_.trial_cost();
        if (opts_.extra_cost) {
          probe += opts_.extra_cost(engine_.trial_placement());
        }
        engine_.rollback();
      } else {
        pack_current(pack_trial_);
        realize(pack_trial_, tmp);
        probe = cost_of(tmp);
      }
      sp_.swap_in_both(i, j);  // undo
      deltas.push_back(std::abs(probe - cur_cost));
    }
  }
  double t0 = 0.3;
  if (!deltas.empty()) {
    double mean = 0;
    for (double d : deltas) mean += d;
    mean /= static_cast<double>(deltas.size());
    t0 = std::max(mean * 1.5, 1e-6);
  }

  double temp = t0;
  const double t_stop = t0 * opts_.stop_temperature_ratio;
  const long moves_per_temp =
      static_cast<long>(opts_.moves_per_temp_per_block) *
      static_cast<long>(std::max<std::size_t>(nb, 1));
  long moves = 0;
  long temp_steps = 0;

  netlist::Placement trial(*circuit_);  // legacy-path scratch
  while (temp > t_stop && !best.deadline_hit && !best.cancelled) {
    for (long m = 0; m < moves_per_temp; ++m) {
      if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
      // Poll the wall-clock budget every 64 moves (steady_clock reads are
      // cheap but not free next to a sequence-pair repack).
      if ((moves & 63) == 0) {
        if (opts_.deadline.expired()) {
          best.deadline_hit = true;
          break;
        }
        if (opts_.cancel.cancelled()) {
          best.cancelled = true;
          break;
        }
      }

      const Move mv = propose_move(rng);
      // Structurally impossible draw (e.g. a single block with no flips or
      // islands): nothing applied, so the move budget is not charged.
      if (mv.kind < 0) continue;
      ++moves;

      // --- evaluate --------------------------------------------------------
      double new_cost;
      if (inc) {
        stage_trial(mv);  // packs internally for structural moves
        new_cost = engine_.trial_cost();
        if (opts_.extra_cost) {
          new_cost += opts_.extra_cost(engine_.trial_placement());
        }
      } else {
        pack_current(pack_trial_);
        realize(pack_trial_, trial);
        new_cost = cost_of(trial);
      }
      const double delta = new_cost - cur_cost;
      const bool accept =
          delta <= 0 || rng.uniform() < std::exp(-delta / temp);
      if (accept) {
        cur_cost = new_cost;
        ++best.moves_accepted;
        if (inc) {
          engine_.commit();
          commit_trial(mv);
          if (new_cost < best.cost) {
            best.cost = new_cost;
            best.placement = engine_.placement();  // new-best snapshot only
          }
        } else if (new_cost < best.cost) {
          best.cost = new_cost;
          best.placement = trial;
        }
      } else {
        if (inc) engine_.rollback();
        undo_move(mv);
      }
    }
    if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
    temp *= opts_.cooling;
    ++temp_steps;
  }

  best.moves_evaluated = moves;
  best.placement.normalize_to_origin();
  best.anneal_seconds = seconds_since(t_start);
  best.moves_per_second =
      best.anneal_seconds > 0
          ? static_cast<double>(moves) / best.anneal_seconds
          : 0.0;
  if (inc) best.eval_stats = engine_.stats();

  obs::counter("sa/chains").inc();
  obs::counter("sa/moves").add(static_cast<std::uint64_t>(std::max(moves, 0L)));
  obs::counter("sa/accepts")
      .add(static_cast<std::uint64_t>(std::max(best.moves_accepted, 0L)));
  obs::counter("sa/temp_steps")
      .add(static_cast<std::uint64_t>(std::max(temp_steps, 0L)));
  if (inc) {
    obs::counter("sa/net_evals").add(best.eval_stats.nets_evaluated);
    obs::counter("sa/cost_evals").add(best.eval_stats.evals);
  }
  return best;
}

double SaPlacer::verify_incremental(std::uint64_t seed, int steps) {
  APLACE_CHECK(opts_.incremental);
  numeric::Rng rng(seed);
  reset_anneal_state();
  const std::size_t nb = num_blocks();
  sp_ = SequencePair(nb);
  sp_.shuffle(rng);
  pack_current(pack_);

  netlist::Placement pl(*circuit_);
  realize(pack_, pl);
  hpwl0_ = std::max(pl.total_hpwl(), 1e-9);
  area0_ = std::max(pack_.width * pack_.height, 1e-9);
  penalty0_ = std::max(std::sqrt(area0_), 1e-9);
  engine_.set_weights({opts_.area_weight, opts_.constraint_weight, hpwl0_,
                       area0_, penalty0_});
  engine_.reset(block_members(), pack_.x.data(), pack_.y.data(), pack_.width,
                pack_.height);

  double max_dev = 0.0;
  netlist::Placement chk(*circuit_);
  for (int s = 0; s < steps; ++s) {
    const Move mv = propose_move(rng);
    if (mv.kind < 0) continue;
    stage_trial(mv);
    (void)engine_.trial_cost();
    if (rng.bernoulli()) {  // exercise both the commit and rollback paths
      engine_.commit();
      commit_trial(mv);
    } else {
      engine_.rollback();
      undo_move(mv);
    }
    // Oracle 1: incremental totals vs from-scratch recompute.
    max_dev = std::max(max_dev, std::abs(engine_.cost() - engine_.full_cost()));
    // Oracle 2: engine state vs a freshly realized placement of the
    // committed representation (catches staging omissions).
    realize(pack_, chk);
    const double hp = chk.total_hpwl();
    max_dev =
        std::max(max_dev, std::abs(engine_.hpwl() - hp) / std::max(1.0, hp));
    for (std::size_t d = 0; d < circuit_->num_devices(); ++d) {
      const geom::Point a = engine_.placement().position(DeviceId{d});
      const geom::Point b = chk.position(DeviceId{d});
      max_dev = std::max({max_dev, std::abs(a.x - b.x), std::abs(a.y - b.y)});
    }
  }
  return max_dev;
}

}  // namespace aplace::sa
