#include "sa/annealer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "base/thread_pool.hpp"

namespace aplace::sa {
namespace {
constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);
}

SaPlacer::SaPlacer(const netlist::Circuit& circuit, SaOptions options)
    : circuit_(&circuit), opts_(std::move(options)), eval_(circuit) {
  APLACE_CHECK(circuit.finalized());

  const std::size_t n = circuit.num_devices();
  single_block_of_.assign(n, kNoBlock);
  device_orient_.assign(n, {});

  std::vector<char> in_island(n, 0);
  for (const netlist::SymmetryGroup& g : circuit.constraints().symmetry_groups) {
    islands_.emplace_back(circuit, g);
    for (const Island::Member& m : islands_.back().members()) {
      in_island[m.device.index()] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_island[i]) single_device_.push_back(DeviceId{i});
  }

  const std::size_t nb = islands_.size() + single_device_.size();
  block_w_.resize(nb);
  block_h_.resize(nb);
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    block_w_[b] = islands_[b].width();
    block_h_[b] = islands_[b].height();
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands_.size() + s;
    const netlist::Device& d = circuit.device(single_device_[s]);
    block_w_[b] = d.width;
    block_h_[b] = d.height;
    single_block_of_[single_device_[s].index()] = b;
  }
}

void SaPlacer::realize(const SequencePair::Packing& pk,
                       netlist::Placement& pl) const {
  for (std::size_t b = 0; b < islands_.size(); ++b) {
    const geom::Point origin{pk.x[b], pk.y[b]};
    for (const Island::Member& m : islands_[b].members()) {
      pl.set_position(m.device, origin + m.center);
      pl.set_orientation(m.device, m.orientation);
    }
  }
  for (std::size_t s = 0; s < single_device_.size(); ++s) {
    const std::size_t b = islands_.size() + s;
    const DeviceId dev = single_device_[s];
    pl.set_position(dev, {pk.x[b] + block_w_[b] / 2, pk.y[b] + block_h_[b] / 2});
    pl.set_orientation(dev, device_orient_[dev.index()]);
  }
}

double SaPlacer::cost_of(const netlist::Placement& pl) const {
  const double hpwl = pl.total_hpwl();
  const double area = pl.layout_area();
  double penalty = 0;
  for (const netlist::AlignmentPair& a : circuit_->constraints().alignments) {
    penalty += eval_.alignment_residual(pl, a);
  }
  for (const netlist::OrderingConstraint& o :
       circuit_->constraints().orderings) {
    penalty += eval_.ordering_residual(pl, o);
  }
  for (const netlist::CommonCentroidQuad& q :
       circuit_->constraints().common_centroids) {
    penalty += eval_.centroid_residual(pl, q);
  }
  double cost = opts_.area_weight * area / area0_ +
                (1.0 - opts_.area_weight) * hpwl / hpwl0_ +
                opts_.constraint_weight * penalty / penalty0_;
  if (opts_.extra_cost) cost += opts_.extra_cost(pl);
  return cost;
}

netlist::Placement SaPlacer::sample_random(numeric::Rng& rng) {
  const std::size_t nb = num_blocks();
  SequencePair sp(nb);
  sp.shuffle(rng);
  for (DeviceId d : single_device_) {
    device_orient_[d.index()] = {rng.bernoulli(), rng.bernoulli()};
  }
  for (Island& island : islands_) {
    for (std::size_t r = 0; r < island.num_rows(); ++r) {
      if (rng.bernoulli(0.3)) island.mirror_row(r);
    }
    if (island.num_rows() >= 2 && rng.bernoulli()) {
      island.swap_rows(
          static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1)),
          static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1)));
    }
  }
  netlist::Placement pl(*circuit_);
  realize(sp.pack(block_w_, block_h_), pl);
  pl.normalize_to_origin();
  return pl;
}

SaResult SaPlacer::place() {
  const int chains = std::max(opts_.num_chains, 1);
  if (chains == 1) return run_chain(numeric::split_seed(opts_.seed, 0));

  // Multi-chain: each chain anneals on its own placer instance (a chain
  // mutates island and orientation state) with an RNG stream split from the
  // master seed, then the best final cost wins with ties broken by the
  // lowest chain index — an ordered reduction, so the outcome is identical
  // for every thread count.
  std::vector<std::optional<SaResult>> results(
      static_cast<std::size_t>(chains));
  auto run_one = [&](int c) {
    SaOptions chain_opts = opts_;
    chain_opts.num_chains = 1;
    SaPlacer chain(*circuit_, std::move(chain_opts));
    results[static_cast<std::size_t>(c)] =
        chain.run_chain(numeric::split_seed(opts_.seed, static_cast<std::uint64_t>(c)));
  };
  if (opts_.extra_cost) {
    // A caller-supplied cost callback (the GNN in perf-driven SA) is not
    // guaranteed thread-safe; keep the chains sequential but still split.
    for (int c = 0; c < chains; ++c) run_one(c);
  } else {
    base::ThreadPool& pool = base::ThreadPool::global();
    base::ThreadPool::TaskGroup group(pool);
    for (int c = 1; c < chains; ++c) {
      group.run([&run_one, c] { run_one(c); });
    }
    run_one(0);
    group.wait();
  }

  std::optional<SaResult> best;
  long moves_evaluated = 0, moves_accepted = 0;
  bool deadline_hit = false;
  for (std::optional<SaResult>& r : results) {
    APLACE_CHECK(r.has_value());
    moves_evaluated += r->moves_evaluated;
    moves_accepted += r->moves_accepted;
    deadline_hit |= r->deadline_hit;
    if (!best || r->cost < best->cost) best = std::move(r);
  }
  best->moves_evaluated = moves_evaluated;
  best->moves_accepted = moves_accepted;
  best->deadline_hit = deadline_hit;
  return std::move(*best);
}

SaResult SaPlacer::run_chain(std::uint64_t chain_seed) {
  numeric::Rng rng(chain_seed);
  const std::size_t nb = num_blocks();
  SequencePair sp(nb);
  sp.shuffle(rng);

  netlist::Placement pl(*circuit_);
  realize(sp.pack(block_w_, block_h_), pl);
  // Normalizers: initial state metrics (penalty scale = layout half-perimeter
  // so residuals in microns are comparable).
  hpwl0_ = std::max(pl.total_hpwl(), 1e-9);
  area0_ = std::max(pl.layout_area(), 1e-9);
  penalty0_ = std::max(std::sqrt(area0_), 1e-9);

  double cur_cost = cost_of(pl);
  SaResult best{pl, cur_cost, 0, 0};

  // Move kinds: 0 swap+, 1 swap both, 2 flip device, 3 island row swap,
  // 4 island mirror.
  const bool have_islands = !islands_.empty();
  const bool have_singles = !single_device_.empty();

  // Calibrate T0 by sampling move deltas from the initial state.
  std::vector<double> deltas;
  {
    SequencePair probe = sp;
    netlist::Placement tmp(*circuit_);
    for (int k = 0; k < 40 && nb >= 2; ++k) {
      const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
      if (i == j) continue;
      probe.swap_in_both(i, j);
      realize(probe.pack(block_w_, block_h_), tmp);
      deltas.push_back(std::abs(cost_of(tmp) - cur_cost));
      probe.swap_in_both(i, j);  // undo
    }
  }
  double t0 = 0.3;
  if (!deltas.empty()) {
    double mean = 0;
    for (double d : deltas) mean += d;
    mean /= static_cast<double>(deltas.size());
    t0 = std::max(mean * 1.5, 1e-6);
  }

  double temp = t0;
  const double t_stop = t0 * opts_.stop_temperature_ratio;
  const long moves_per_temp =
      static_cast<long>(opts_.moves_per_temp_per_block) *
      static_cast<long>(std::max<std::size_t>(nb, 1));
  long moves = 0;

  netlist::Placement trial(*circuit_);
  while (temp > t_stop && !best.deadline_hit) {
    for (long m = 0; m < moves_per_temp; ++m) {
      if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
      // Poll the wall-clock budget every 64 moves (steady_clock reads are
      // cheap but not free next to a sequence-pair repack).
      if ((moves & 63) == 0 && opts_.deadline.expired()) {
        best.deadline_hit = true;
        break;
      }
      ++moves;

      // --- propose ---------------------------------------------------------
      int kind = rng.uniform_int(0, 99);
      std::size_t i = 0, j = 0, isl = 0, r1 = 0, r2 = 0;
      DeviceId flip_dev;
      bool flip_axis_x = false;
      bool applied = false;
      if (kind < 35 && nb >= 2) {
        i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
        j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
        if (i != j) {
          sp.swap_in_plus(i, j);
          kind = 0;
          applied = true;
        }
      } else if (kind < 70 && nb >= 2) {
        i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
        j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(nb) - 1));
        if (i != j) {
          sp.swap_in_both(i, j);
          kind = 1;
          applied = true;
        }
      } else if (kind < 85 && have_singles) {
        const std::size_t s = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(single_device_.size()) - 1));
        flip_dev = single_device_[s];
        flip_axis_x = rng.bernoulli();
        geom::Orientation& o = device_orient_[flip_dev.index()];
        if (flip_axis_x) o.flip_x = !o.flip_x;
        else o.flip_y = !o.flip_y;
        kind = 2;
        applied = true;
      } else if (have_islands) {
        isl = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(islands_.size()) - 1));
        Island& island = islands_[isl];
        if (island.num_rows() >= 2 && rng.bernoulli()) {
          r1 = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1));
          r2 = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1));
          if (r1 != r2) {
            island.swap_rows(r1, r2);
            kind = 3;
            applied = true;
          }
        } else {
          r1 = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(island.num_rows()) - 1));
          island.mirror_row(r1);
          kind = 4;
          applied = true;
        }
      }
      if (!applied) continue;

      // --- evaluate ---------------------------------------------------------
      realize(sp.pack(block_w_, block_h_), trial);
      const double new_cost = cost_of(trial);
      const double delta = new_cost - cur_cost;
      const bool accept =
          delta <= 0 || rng.uniform() < std::exp(-delta / temp);
      if (accept) {
        cur_cost = new_cost;
        ++best.moves_accepted;
        if (new_cost < best.cost) {
          best.cost = new_cost;
          best.placement = trial;
        }
      } else {
        // --- undo ------------------------------------------------------------
        switch (kind) {
          case 0: sp.swap_in_plus(i, j); break;
          case 1: sp.swap_in_both(i, j); break;
          case 2: {
            geom::Orientation& o = device_orient_[flip_dev.index()];
            if (flip_axis_x) o.flip_x = !o.flip_x;
            else o.flip_y = !o.flip_y;
            break;
          }
          case 3: islands_[isl].swap_rows(r1, r2); break;
          case 4: islands_[isl].mirror_row(r1); break;
          default: break;
        }
      }
    }
    if (opts_.max_moves > 0 && moves >= opts_.max_moves) break;
    temp *= opts_.cooling;
  }

  best.moves_evaluated = moves;
  best.placement.normalize_to_origin();
  return best;
}

}  // namespace aplace::sa
