#pragma once
// Simulated annealing over the B*-tree representation — an alternative SA
// baseline to the sequence-pair annealer, sharing the symmetry-island
// construction and cost model. Useful for checking that the paper's
// SA-vs-analytical conclusions are not an artifact of one floorplan
// representation.

#include "sa/annealer.hpp"
#include "sa/bstar_tree.hpp"

namespace aplace::sa {

class BStarPlacer {
 public:
  BStarPlacer(const netlist::Circuit& circuit, SaOptions options);

  [[nodiscard]] SaResult place();

  [[nodiscard]] std::size_t num_blocks() const { return block_w_.size(); }

 private:
  void realize(const BStarTree::Packing& pk, netlist::Placement& pl) const;
  [[nodiscard]] double cost_of(const netlist::Placement& pl) const;

  const netlist::Circuit* circuit_;
  SaOptions opts_;
  netlist::Evaluator eval_;

  std::vector<Island> islands_;
  std::vector<DeviceId> single_device_;
  std::vector<double> block_w_, block_h_;
  std::vector<geom::Orientation> device_orient_;

  double hpwl0_ = 1.0, area0_ = 1.0, penalty0_ = 1.0;
};

}  // namespace aplace::sa
