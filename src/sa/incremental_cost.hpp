#pragma once
// Incremental SA cost engine: block-level delta evaluation.
//
// The annealer's cost is
//   aw * area/area0 + (1-aw) * hpwl/hpwl0 + cw * penalty/penalty0
// where penalty sums alignment/ordering/common-centroid residuals. The
// legacy path recomputes all of it from a freshly realized Placement on
// every proposed move: O(n^2) pack, O(devices) realize, every net re-boxed
// pin by pin, every constraint re-evaluated.
//
// This engine exploits the block structure of the sequence-pair
// representation (symmetry islands + single devices are rigid blocks whose
// internals change only on flip / row-permutation moves):
//
//   * per (block, net) it caches the bounding box of that net's pins
//     RELATIVE to the block origin, stored net-major so a net's bbox is one
//     sequential sweep over a few translated rectangles — no per-pin
//     orientation transforms in the move loop. Only internal moves (flip,
//     island row swap/mirror) recompute the boxes of the one block they
//     touch;
//   * rigid-translation skip: bbox spans and constraint residuals are
//     invariant under a common translation of all their blocks, so the move
//     loop walks every net once, compares the per-block origin deltas, and
//     recomputes an axis only when its deltas disagree. Unmoved nets have
//     all-zero deltas and fall out of the same check — there is no separate
//     dirty-marking pass;
//   * area comes from the packer extent (identical to the block bounding
//     box since packings are left/bottom compacted);
//   * device positions are origin + cached in-block offset, so no
//     Placement is written per move, and commit is two buffer swaps.
//     placement()/trial_placement() materialize one on demand — new-best
//     snapshots and GNN extra-cost callbacks, not the hot path.
//
// Moves follow a begin_trial / refresh_block / trial_cost /
// commit-or-rollback protocol driven by SaPlacer.
//
// Exactness: device centers are computed with the same single addition the
// realize path uses, so constraint residuals match a realized Placement
// bit for bit. Relative-box pin positions associate the adds differently
// (origin + (off - w/2 + local) vs (origin + off) - w/2 + local), and the
// rigid-translation skip keeps a span whose exact recomputation could
// differ in the last ulp, so net HPWL can deviate from a realized
// Placement by a few ulp. Totals are re-summed over the per-net caches
// every move (no delta accumulation drift). full_cost() recomputes
// everything from a materialized Placement via the shared Evaluator — the
// property-test oracle (tests assert agreement within 1e-9).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/point.hpp"
#include "netlist/compiled.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/placement.hpp"
#include "sa/island.hpp"

namespace aplace::sa {

class IncrementalCost {
 public:
  /// One device of a block: center offset relative to the block origin and
  /// orientation (same triple Island::members produces; singles use
  /// (w/2, h/2) and their current flip state).
  using Member = Island::Member;

  struct Weights {
    double area_weight = 0.38;
    double constraint_weight = 8.0;
    double hpwl0 = 1.0;
    double area0 = 1.0;
    double penalty0 = 1.0;
  };

  /// Cache-effectiveness counters (reported in the bench JSON). The hit
  /// rate of the span cache is 1 - nets_evaluated / nets_total.
  struct Stats {
    std::uint64_t evals = 0;           ///< trial_cost() calls
    std::uint64_t nets_evaluated = 0;  ///< nets actually re-boxed (rigid
                                       ///< translations excluded)
    std::uint64_t nets_total = 0;      ///< nets a full recompute would touch
    std::uint64_t constraints_evaluated = 0;
    std::uint64_t devices_staged = 0;  ///< devices of refresh_block()s

    [[nodiscard]] double net_eval_ratio() const {
      return nets_total > 0 ? static_cast<double>(nets_evaluated) /
                                  static_cast<double>(nets_total)
                            : 0.0;
    }
    void merge(const Stats& o) {
      evals += o.evals;
      nets_evaluated += o.nets_evaluated;
      nets_total += o.nets_total;
      constraints_evaluated += o.constraints_evaluated;
      devices_staged += o.devices_staged;
    }
  };

  /// Borrow a compiled snapshot the caller keeps alive.
  explicit IncrementalCost(const netlist::CompiledCircuit& compiled);
  /// Share ownership of a compiled snapshot.
  explicit IncrementalCost(
      std::shared_ptr<const netlist::CompiledCircuit> compiled);
  /// Convenience: compile privately from a raw circuit.
  explicit IncrementalCost(const netlist::Circuit& circuit);

  void set_weights(const Weights& w) { weights_ = w; }
  [[nodiscard]] const Weights& weights() const { return weights_; }

  /// One-time block structure: member lists per block (islands first, then
  /// singles, matching the sequence-pair block order). Builds the
  /// block->net / block->constraint adjacency.
  void configure_blocks(const std::vector<std::vector<Member>>& blocks);

  /// Rebuild every cache from the given member lists and block origins
  /// (block count and membership must match configure_blocks). Also clears
  /// the stats counters.
  void reset(const std::vector<std::vector<Member>>& blocks, const double* ox,
             const double* oy, double pack_w, double pack_h);

  // ---- move protocol -------------------------------------------------------
  // begin_trial() with the trial origins (the spans must stay alive until
  // commit()/rollback() — pass the committed origins when the packing did
  // not change), then refresh_block() the block whose internals changed (if
  // any), then trial_cost() once; finish with commit() or rollback(). Moved
  // blocks need no explicit marking: trial_cost discovers them from the
  // origin deltas.
  void begin_trial(const double* tx, const double* ty, double w, double h);
  /// Replace a block's member offsets/orientations (flip or island
  /// row-permutation move) and recompute its relative net boxes; its nets
  /// and constraints are force-reevaluated (their caches are stale even
  /// when the block origin is unchanged). Undone by rollback().
  void refresh_block(std::size_t b, const std::vector<Member>& members);
  [[nodiscard]] double trial_cost();
  void commit();
  void rollback();

  // ---- committed state -----------------------------------------------------
  [[nodiscard]] double cost() const;
  [[nodiscard]] double hpwl() const { return hpwl_total_; }
  [[nodiscard]] double penalty() const { return penalty_total_; }
  [[nodiscard]] double area() const { return pack_w_ * pack_h_; }

  /// Committed placement, materialized on demand (cheap when unchanged —
  /// intended for new-best snapshots, not per-move use).
  [[nodiscard]] const netlist::Placement& placement();
  /// Trial placement including staged changes, materialized on every call —
  /// what GNN extra-cost callbacks evaluate (perf-driven SA only).
  [[nodiscard]] const netlist::Placement& trial_placement();

  /// From-scratch recompute of the committed cost via a materialized
  /// Placement and the shared Evaluator: the test oracle for both the
  /// span/residual caches and the engine's own formulas. Call between
  /// moves only.
  [[nodiscard]] double full_cost();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Flat view of the circuit's positional constraints.
  struct ConstraintRef {
    enum class Kind : std::uint8_t { Alignment, Ordering, Centroid };
    Kind kind;
    std::uint32_t index;  ///< into the ConstraintSet vector of that kind
  };

  /// One (block, net) incidence in net-major order: the bounding box of the
  /// net's pins on that block, relative to the block origin.
  struct RelRef {
    double xlo = 0, xhi = 0, ylo = 0, yhi = 0;
    std::uint32_t block = 0;
    std::uint32_t pad = 0;
  };

  /// One pin a block contributes to a net (slot-major): refresh_rel_boxes
  /// walks these instead of the net's full pin list, so refreshing a block
  /// never touches other blocks' pins.
  struct SlotPin {
    geom::Point offset;  ///< pin offset within its device
    std::uint32_t dev = 0;
    std::uint32_t pad = 0;
  };

  /// Device center from block origin + in-block offset; `ox`/`oy` selects
  /// committed or trial origins.
  [[nodiscard]] geom::Point position_from(const double* ox, const double* oy,
                                          DeviceId d) const {
    const std::size_t b = block_of_[d.index()];
    return {ox[b] + off_[d.index()].x, oy[b] + off_[d.index()].y};
  }
  void net_spans(const double* ox, const double* oy, std::uint32_t net,
                 double& xs, double& ys) const;
  [[nodiscard]] double net_xspan_of(const double* ox, std::uint32_t net) const;
  [[nodiscard]] double net_yspan_of(const double* oy, std::uint32_t net) const;
  [[nodiscard]] double constraint_residual(const double* ox, const double* oy,
                                           const ConstraintRef& c) const;
  [[nodiscard]] double combine(double hpwl, double area, double penalty) const;
  void refresh_rel_boxes(std::size_t b);
  void materialize(const double* ox, const double* oy, netlist::Placement& pl);

  const netlist::Circuit* circuit_;
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  netlist::Evaluator eval_;
  Weights weights_;

  // ---- static block structure (configure_blocks) ---------------------------
  std::size_t num_blocks_ = 0;
  std::vector<std::size_t> block_of_;      ///< device -> block
  std::vector<std::size_t> block_dev_off_; ///< block -> device CSR
  std::vector<DeviceId> block_dev_;
  // block -> incident nets CSR ("slot" = an index into block_net_).
  std::vector<std::size_t> block_net_off_;
  std::vector<std::uint32_t> block_net_;
  // net -> RelRef range (net-major mirror of the slots); netpos_of_slot_
  // maps a block slot to its position in rel_.
  std::vector<std::size_t> net_block_off_;
  std::vector<RelRef> rel_;
  std::vector<std::uint32_t> netpos_of_slot_;
  // slot -> the block's own pins on that net (CSR over block_net_ slots).
  std::vector<std::size_t> slot_pin_off_;
  std::vector<SlotPin> slot_pin_;
  // block -> flat constraints CSR, and the reverse (constraint -> unique
  // blocks) for the rigid-translation check.
  std::vector<ConstraintRef> constraints_;
  std::vector<std::size_t> block_cons_off_;
  std::vector<std::uint32_t> block_cons_;
  std::vector<std::size_t> cons_block_off_;
  std::vector<std::uint32_t> cons_block_;
  // Incident-block bitmasks (usable when num_blocks_ <= 64): one AND
  // against the per-move moved-block mask rules an unmoved net/constraint
  // rigid without walking its delta list.
  bool use_mask_ = false;
  std::vector<std::uint64_t> net_mask_;
  std::vector<std::uint64_t> cons_mask_;

  // Flat per-net / per-device views of the fields the hot loop reads,
  // borrowed from the compiled snapshot (Net and Device carry
  // strings/vectors, so going through them would drag cold cache lines
  // into every evaluation).
  std::span<const double> net_weight_;
  std::span<const double> dev_w_, dev_h_, dev_halfw_, dev_halfh_;

  // ---- per-reset geometry caches -------------------------------------------
  std::vector<geom::Point> off_;            ///< device offset in its block
  std::vector<geom::Orientation> orient_;   ///< device orientation
  std::vector<double> ox_, oy_;             ///< committed block origins
  double pack_w_ = 0, pack_h_ = 0;

  // Committed caches + totals. Spans are per axis so a net whose incident
  // blocks all share one x (or y) delta keeps that axis's value.
  std::vector<double> net_xspan_, net_yspan_;  ///< bbox spans per net
  std::vector<double> cons_residual_;  ///< residual per flat constraint
  double hpwl_total_ = 0, penalty_total_ = 0;

  // Move-scoped scratch. trial_* are full-size value arrays rewritten by
  // every trial_cost and swapped wholesale into the committed arrays on
  // commit. The per-trial epoch stamps force-reevaluate what
  // refresh_block() touched.
  const double* tx_ = nullptr;  ///< trial origins (caller-owned)
  const double* ty_ = nullptr;
  double trial_w_ = 0, trial_h_ = 0;
  std::vector<double> trial_xspan_, trial_yspan_, trial_cons_residual_;
  std::vector<std::uint64_t> net_epoch_, cons_epoch_;
  std::uint64_t epoch_ = 1;
  double trial_hpwl_total_ = 0, trial_penalty_total_ = 0;
  bool trial_evaluated_ = false;
  bool in_trial_ = false;
  // Undo for refresh_block: saved member state + relative boxes.
  struct MemberUndo {
    DeviceId device;
    geom::Point off;
    geom::Orientation orientation;
  };
  std::vector<MemberUndo> member_undo_;
  struct RelBoxUndo {
    std::uint32_t pos;  ///< into rel_
    double xlo, xhi, ylo, yhi;
  };
  std::vector<RelBoxUndo> rel_undo_;

  // Materialized views (lazy; never touched by the move loop).
  netlist::Placement state_;
  bool state_valid_ = false;
  netlist::Placement trial_state_;

  Stats stats_;
};

}  // namespace aplace::sa
