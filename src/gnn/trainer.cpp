#include "gnn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aplace::gnn {

Trainer::Trainer(const CircuitGraph& graph, GnnModel& model, TrainOptions opts)
    : graph_(&graph), model_(&model), opts_(opts) {}

TrainReport Trainer::train(const std::vector<Sample>& samples) {
  APLACE_CHECK_MSG(!samples.empty(), "no training samples");
  TrainReport report;
  numeric::Rng rng(opts_.seed);

  // Split train / validation deterministically.
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  const std::size_t n_val = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(std::llround(
          opts_.validation_fraction * static_cast<double>(samples.size()))));
  std::vector<std::size_t> val(order.begin(), order.begin() + n_val);
  std::vector<std::size_t> train(order.begin() + n_val, order.end());

  std::vector<double> params = model_->parameters();
  numeric::Adam adam(params.size(), {.lr = opts_.lr});
  const numeric::Matrix& adj = graph_->adjacency();

  std::vector<double> grad(params.size());
  GnnModel::Activations act;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double loss = 0;
    for (std::size_t si : train) {
      const Sample& s = samples[si];
      const numeric::Matrix x = graph_->features(s.positions);
      const double phi = model_->forward(adj, x, act);
      const double p = std::clamp(phi, 1e-9, 1.0 - 1e-9);
      loss += -(s.label * std::log(p) + (1.0 - s.label) * std::log(1.0 - p));
      model_->backward(adj, act, phi - s.label, grad, nullptr);
    }
    const double inv = 1.0 / static_cast<double>(train.size());
    for (std::size_t k = 0; k < grad.size(); ++k) {
      grad[k] = grad[k] * inv + opts_.weight_decay * params[k];
    }
    adam.step(params, grad);
    model_->set_parameters(params);
    report.final_loss = loss * inv;
    report.epochs_run = epoch + 1;
  }

  auto accuracy = [&](const std::vector<std::size_t>& idx) {
    if (idx.empty()) return 1.0;
    std::size_t correct = 0;
    for (std::size_t si : idx) {
      const numeric::Matrix x = graph_->features(samples[si].positions);
      const double phi = model_->forward(adj, x, act);
      if ((phi >= 0.5) == (samples[si].label >= 0.5)) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(idx.size());
  };
  report.train_accuracy = accuracy(train);
  report.validation_accuracy = accuracy(val);
  return report;
}

}  // namespace aplace::gnn
