#pragma once
// GNN training on placement samples labeled by the surrogate performance
// model (label 1 = unsatisfactory FOM, as in the paper: "Each sample has
// label 0 (1) for satisfactory (unsatisfactory) circuit performance";
// cross-entropy loss, Adam).

#include <vector>

#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "numeric/adam.hpp"

namespace aplace::gnn {

struct Sample {
  std::vector<double> positions;  ///< v = (x.., y..)
  double label = 0;               ///< 1 = unsatisfactory
};

struct TrainOptions {
  int epochs = 120;
  double lr = 5e-3;
  double weight_decay = 1e-5;
  std::uint64_t seed = 7;
  double validation_fraction = 0.2;
};

struct TrainReport {
  double final_loss = 0;
  double train_accuracy = 0;
  double validation_accuracy = 0;
  int epochs_run = 0;
};

class Trainer {
 public:
  Trainer(const CircuitGraph& graph, GnnModel& model, TrainOptions opts = {});

  /// Full-batch training; returns the final report.
  TrainReport train(const std::vector<Sample>& samples);

 private:
  const CircuitGraph* graph_;
  GnnModel* model_;
  TrainOptions opts_;
};

}  // namespace aplace::gnn
