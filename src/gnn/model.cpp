#include "gnn/model.hpp"

#include <cmath>

namespace aplace::gnn {
namespace {

using numeric::Matrix;

Matrix add_bias_rows(Matrix m, const std::vector<double>& b) {
  APLACE_DCHECK(m.cols() == b.size());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) += b[j];
  return m;
}

Matrix relu(Matrix m) {
  for (double& v : m.data()) v = std::max(v, 0.0);
  return m;
}

// dA = dH ∘ relu'(A)
Matrix relu_backward(const Matrix& pre, Matrix dh) {
  APLACE_DCHECK(pre.rows() == dh.rows() && pre.cols() == dh.cols());
  for (std::size_t i = 0; i < pre.rows(); ++i)
    for (std::size_t j = 0; j < pre.cols(); ++j)
      if (pre(i, j) <= 0) dh(i, j) = 0;
  return dh;
}

}  // namespace

GnnModel::GnnModel(GnnConfig config)
    : cfg_(config),
      w1_(cfg_.input_dim, cfg_.hidden_dim),
      w2_(cfg_.hidden_dim, cfg_.hidden_dim),
      w3_(cfg_.hidden_dim, cfg_.mlp_dim),
      b1_(cfg_.hidden_dim, 0.0),
      b2_(cfg_.hidden_dim, 0.0),
      b3_(cfg_.mlp_dim, 0.0),
      w4_(cfg_.mlp_dim, 0.0) {}

void GnnModel::initialize(numeric::Rng& rng) {
  auto xavier = [&](Matrix& w) {
    const double s =
        std::sqrt(2.0 / static_cast<double>(w.rows() + w.cols()));
    for (double& v : w.data()) v = rng.normal(0.0, s);
  };
  xavier(w1_);
  xavier(w2_);
  xavier(w3_);
  const double s4 = std::sqrt(2.0 / static_cast<double>(cfg_.mlp_dim + 1));
  for (double& v : w4_) v = rng.normal(0.0, s4);
  std::fill(b1_.begin(), b1_.end(), 0.0);
  std::fill(b2_.begin(), b2_.end(), 0.0);
  std::fill(b3_.begin(), b3_.end(), 0.0);
  b4_ = 0;
}

std::size_t GnnModel::num_parameters() const {
  return w1_.size() + w2_.size() + w3_.size() + b1_.size() + b2_.size() +
         b3_.size() + w4_.size() + 1;
}

std::vector<double> GnnModel::parameters() const {
  std::vector<double> p;
  p.reserve(num_parameters());
  auto push_m = [&](const Matrix& m) {
    p.insert(p.end(), m.data().begin(), m.data().end());
  };
  auto push_v = [&](const std::vector<double>& v) {
    p.insert(p.end(), v.begin(), v.end());
  };
  push_m(w1_);
  push_v(b1_);
  push_m(w2_);
  push_v(b2_);
  push_m(w3_);
  push_v(b3_);
  push_v(w4_);
  p.push_back(b4_);
  return p;
}

void GnnModel::set_parameters(std::span<const double> p) {
  APLACE_CHECK(p.size() == num_parameters());
  std::size_t k = 0;
  auto pull_m = [&](Matrix& m) {
    for (double& v : m.data()) v = p[k++];
  };
  auto pull_v = [&](std::vector<double>& v) {
    for (double& x : v) x = p[k++];
  };
  pull_m(w1_);
  pull_v(b1_);
  pull_m(w2_);
  pull_v(b2_);
  pull_m(w3_);
  pull_v(b3_);
  pull_v(w4_);
  b4_ = p[k++];
}

double GnnModel::forward(const Matrix& adj, const Matrix& x,
                         Activations& act) const {
  APLACE_CHECK(x.cols() == cfg_.input_dim);
  APLACE_CHECK(adj.rows() == x.rows() && adj.cols() == x.rows());
  act.x = x;
  act.ax = Matrix::multiply(adj, x);
  act.a1 = add_bias_rows(Matrix::multiply(act.ax, w1_), b1_);
  act.h1 = relu(act.a1);
  act.ah1 = Matrix::multiply(adj, act.h1);
  act.a2 = add_bias_rows(Matrix::multiply(act.ah1, w2_), b2_);
  act.h2 = relu(act.a2);

  const std::size_t n = x.rows();
  act.g.assign(cfg_.hidden_dim, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < cfg_.hidden_dim; ++j)
      act.g[j] += act.h2(i, j) / static_cast<double>(n);

  act.a3.assign(cfg_.mlp_dim, 0.0);
  for (std::size_t j = 0; j < cfg_.mlp_dim; ++j) {
    double s = b3_[j];
    for (std::size_t k = 0; k < cfg_.hidden_dim; ++k)
      s += act.g[k] * w3_(k, j);
    act.a3[j] = s;
  }
  act.u = act.a3;
  for (double& v : act.u) v = std::max(v, 0.0);

  double logit = b4_;
  for (std::size_t j = 0; j < cfg_.mlp_dim; ++j) logit += act.u[j] * w4_[j];
  act.logit = logit;
  act.phi = 1.0 / (1.0 + std::exp(-logit));
  return act.phi;
}

void GnnModel::backward(const Matrix& adj, const Activations& act,
                        double dlogit, std::span<double> param_grad,
                        Matrix* x_grad) const {
  APLACE_CHECK(param_grad.size() == num_parameters());
  const std::size_t n = act.x.rows();

  // Parameter gradient layout mirrors parameters().
  std::size_t off_w1 = 0;
  std::size_t off_b1 = off_w1 + w1_.size();
  std::size_t off_w2 = off_b1 + b1_.size();
  std::size_t off_b2 = off_w2 + w2_.size();
  std::size_t off_w3 = off_b2 + b2_.size();
  std::size_t off_b3 = off_w3 + w3_.size();
  std::size_t off_w4 = off_b3 + b3_.size();
  std::size_t off_b4 = off_w4 + w4_.size();

  // Head.
  std::vector<double> du(cfg_.mlp_dim);
  for (std::size_t j = 0; j < cfg_.mlp_dim; ++j) {
    param_grad[off_w4 + j] += dlogit * act.u[j];
    du[j] = dlogit * w4_[j];
  }
  param_grad[off_b4] += dlogit;

  std::vector<double> da3(cfg_.mlp_dim);
  for (std::size_t j = 0; j < cfg_.mlp_dim; ++j)
    da3[j] = act.a3[j] > 0 ? du[j] : 0.0;

  std::vector<double> dg(cfg_.hidden_dim, 0.0);
  for (std::size_t k = 0; k < cfg_.hidden_dim; ++k) {
    for (std::size_t j = 0; j < cfg_.mlp_dim; ++j) {
      param_grad[off_w3 + k * cfg_.mlp_dim + j] += act.g[k] * da3[j];
      dg[k] += w3_(k, j) * da3[j];
    }
  }
  for (std::size_t j = 0; j < cfg_.mlp_dim; ++j)
    param_grad[off_b3 + j] += da3[j];

  // Mean pool: every row of dH2 = dg / n.
  Matrix dh2(n, cfg_.hidden_dim);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < cfg_.hidden_dim; ++j)
      dh2(i, j) = dg[j] / static_cast<double>(n);

  const Matrix da2 = relu_backward(act.a2, std::move(dh2));
  // dW2 = (A~ H1)^T dA2 ; db2 = colsum dA2 ; dH1 = A~^T dA2 W2^T
  {
    const Matrix ah1_t = act.ah1.transposed();
    const Matrix dw2 = Matrix::multiply(ah1_t, da2);
    for (std::size_t k = 0; k < dw2.size(); ++k)
      param_grad[off_w2 + k] += dw2.data()[k];
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < cfg_.hidden_dim; ++j)
        param_grad[off_b2 + j] += da2(i, j);
  }
  const Matrix adj_t = adj.transposed();
  const Matrix dh1 =
      Matrix::multiply(Matrix::multiply(adj_t, da2), w2_.transposed());
  const Matrix da1 = relu_backward(act.a1, dh1);
  {
    const Matrix ax_t = act.ax.transposed();
    const Matrix dw1 = Matrix::multiply(ax_t, da1);
    for (std::size_t k = 0; k < dw1.size(); ++k)
      param_grad[off_w1 + k] += dw1.data()[k];
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < cfg_.hidden_dim; ++j)
        param_grad[off_b1 + j] += da1(i, j);
  }
  if (x_grad != nullptr) {
    *x_grad =
        Matrix::multiply(Matrix::multiply(adj_t, da1), w1_.transposed());
  }
}

double GnnModel::phi_and_input_grad(const Matrix& adj, const Matrix& x,
                                    Matrix& x_grad) const {
  Activations act;
  const double phi = forward(adj, x, act);
  std::vector<double> dummy(num_parameters(), 0.0);
  backward(adj, act, phi * (1.0 - phi), dummy, &x_grad);
  return phi;
}

}  // namespace aplace::gnn
