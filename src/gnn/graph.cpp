#include "gnn/graph.hpp"

#include <algorithm>
#include <cmath>

namespace aplace::gnn {
namespace {

std::size_t type_index(netlist::DeviceType t) {
  return static_cast<std::size_t>(t);
}

}  // namespace

CircuitGraph::CircuitGraph(const netlist::CompiledCircuit& compiled,
                           double coord_scale)
    : compiled_(&compiled),
      n_(compiled.num_devices()),
      scale_(coord_scale),
      adj_(n_, n_),
      static_features_(n_, kFeatureDim) {
  APLACE_CHECK(coord_scale > 0);

  // Raw adjacency: clique for nets with <= 6 pins, star from the first pin
  // otherwise (keeps big supply nets from densifying the graph). The compiled
  // net->device CSR is already deduplicated and sorted ascending, matching
  // the sort+unique this loop used to perform.
  numeric::Matrix a(n_, n_);
  std::vector<double> degree(n_, 0.0);
  for (std::size_t ni = 0; ni < compiled.num_nets(); ++ni) {
    const std::span<const std::uint32_t> devs = compiled.net_devices(ni);
    if (devs.size() < 2) continue;
    auto connect = [&](std::size_t u, std::size_t w) {
      if (u == w) return;
      a(u, w) = 1.0;
      a(w, u) = 1.0;
    };
    if (devs.size() <= 6) {
      for (std::size_t i = 0; i < devs.size(); ++i)
        for (std::size_t j = i + 1; j < devs.size(); ++j)
          connect(devs[i], devs[j]);
    } else {
      for (std::size_t j = 1; j < devs.size(); ++j) connect(devs[0], devs[j]);
    }
  }
  // Self loops + row normalization.
  for (std::size_t i = 0; i < n_; ++i) a(i, i) = 1.0;
  for (std::size_t i = 0; i < n_; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < n_; ++j) row += a(i, j);
    for (std::size_t j = 0; j < n_; ++j) adj_(i, j) = a(i, j) / row;
    degree[i] = row - 1.0;
  }

  // Static feature columns (x and y filled per evaluation).
  const std::span<const double> dev_w = compiled.dev_width();
  const std::span<const double> dev_h = compiled.dev_height();
  double max_dim = 1e-9;
  for (std::size_t i = 0; i < n_; ++i) {
    max_dim = std::max({max_dim, dev_w[i], dev_h[i]});
  }
  for (std::size_t i = 0; i < n_; ++i) {
    static_features_(i, 2) = dev_w[i] / max_dim;
    static_features_(i, 3) = dev_h[i] / max_dim;
    const std::size_t t = type_index(compiled.dev_type()[i]);
    APLACE_CHECK(t < kNumDeviceTypes);
    static_features_(i, 4 + t) = 1.0;
    static_features_(i, 4 + kNumDeviceTypes) =
        degree[i] / static_cast<double>(std::max<std::size_t>(n_ - 1, 1));
  }
}

CircuitGraph::CircuitGraph(
    std::shared_ptr<const netlist::CompiledCircuit> compiled,
    double coord_scale)
    : CircuitGraph(*compiled, coord_scale) {
  keep_ = std::move(compiled);
}

CircuitGraph::CircuitGraph(const netlist::Circuit& circuit, double coord_scale)
    : CircuitGraph(std::make_shared<const netlist::CompiledCircuit>(circuit),
                   coord_scale) {}

numeric::Matrix CircuitGraph::features(std::span<const double> v) const {
  APLACE_DCHECK(v.size() == 2 * n_);
  numeric::Matrix f = static_features_;
  const std::size_t lx = kFeatureDim - 4, ly = kFeatureDim - 3;
  const std::size_t ax = kFeatureDim - 2, ay = kFeatureDim - 1;
  lap_sign_x_.assign(n_, 0.0);
  lap_sign_y_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    f(i, 0) = v[i] / scale_;
    f(i, 1) = v[n_ + i] / scale_;
    // Laplacian features: offset from the adjacency-weighted mean of the
    // neighborhood (self loop included in adj_), plus magnitudes. The signs
    // are cached for accumulate_position_grad's |.| chain rule.
    double mx = 0, my = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      mx += adj_(i, j) * v[j];
      my += adj_(i, j) * v[n_ + j];
    }
    f(i, lx) = (v[i] - mx) / scale_;
    f(i, ly) = (v[n_ + i] - my) / scale_;
    f(i, ax) = std::abs(f(i, lx));
    f(i, ay) = std::abs(f(i, ly));
    lap_sign_x_[i] = f(i, lx) >= 0 ? 1.0 : -1.0;
    lap_sign_y_[i] = f(i, ly) >= 0 ? 1.0 : -1.0;
  }
  return f;
}

void CircuitGraph::accumulate_position_grad(const numeric::Matrix& fg,
                                            std::span<double> grad_v) const {
  APLACE_DCHECK(fg.rows() == n_ && fg.cols() == kFeatureDim);
  APLACE_DCHECK(grad_v.size() == 2 * n_);
  APLACE_CHECK_MSG(lap_sign_x_.size() == n_,
                   "call features() before accumulate_position_grad()");
  const std::size_t lx = kFeatureDim - 4, ly = kFeatureDim - 3;
  const std::size_t ax = kFeatureDim - 2, ay = kFeatureDim - 1;
  for (std::size_t i = 0; i < n_; ++i) {
    grad_v[i] += fg(i, 0) / scale_;
    grad_v[n_ + i] += fg(i, 1) / scale_;
    // Laplacian chain rule: d lap_i / d x_k = delta_ik - adj(i, k); the
    // magnitude features contribute sign(lap_i) times the same Jacobian.
    const double gx = fg(i, lx) + fg(i, ax) * lap_sign_x_[i];
    const double gy = fg(i, ly) + fg(i, ay) * lap_sign_y_[i];
    grad_v[i] += gx / scale_;
    grad_v[n_ + i] += gy / scale_;
    for (std::size_t k = 0; k < n_; ++k) {
      grad_v[k] -= gx * adj_(i, k) / scale_;
      grad_v[n_ + k] -= gy * adj_(i, k) / scale_;
    }
  }
}

}  // namespace aplace::gnn
