#pragma once
// Circuit-graph construction for the GNN performance model (Li et al.,
// ICCAD'20 style): devices are nodes, nets induce edges (clique expansion
// for small nets, star-to-driver for large ones), and node features combine
// static attributes (size, type, degree) with the placement-dependent
// coordinates the analytical placer differentiates through.

#include <memory>
#include <span>
#include <vector>

#include "netlist/compiled.hpp"
#include "numeric/matrix.hpp"

namespace aplace::gnn {

inline constexpr std::size_t kNumDeviceTypes = 7;
/// x, y, w, h, one-hot type, degree, laplacian x/y (signed offset of the
/// device from its connectivity-weighted neighborhood mean), |laplacian|
/// x/y (its magnitude — the wirelength-bearing signal a mean-pooled GCN
/// cannot recover from raw coordinates alone).
inline constexpr std::size_t kFeatureDim = 4 + kNumDeviceTypes + 1 + 4;

class CircuitGraph {
 public:
  /// `coord_scale` normalizes positions into O(1) features; pick the
  /// expected layout side (e.g. sqrt(total area / utilization)).
  /// Borrow a compiled snapshot the caller keeps alive.
  CircuitGraph(const netlist::CompiledCircuit& compiled, double coord_scale);
  /// Share ownership of a compiled snapshot.
  CircuitGraph(std::shared_ptr<const netlist::CompiledCircuit> compiled,
               double coord_scale);
  /// Convenience: compile privately from a raw circuit.
  CircuitGraph(const netlist::Circuit& circuit, double coord_scale);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] double coord_scale() const { return scale_; }

  /// Row-normalized adjacency with self loops: A~ = D^-1 (A + I).
  [[nodiscard]] const numeric::Matrix& adjacency() const { return adj_; }

  /// Node feature matrix for the positions v = (x.., y..). Rows = nodes.
  [[nodiscard]] numeric::Matrix features(std::span<const double> v) const;

  /// Chain rule from feature gradients back to position gradients:
  /// grad_v[i] += dF(i, 0) / scale, grad_v[n+i] += dF(i, 1) / scale.
  void accumulate_position_grad(const numeric::Matrix& feature_grad,
                                std::span<double> grad_v) const;

 private:
  const netlist::CompiledCircuit* compiled_;
  std::shared_ptr<const netlist::CompiledCircuit> keep_;
  std::size_t n_;
  double scale_;
  numeric::Matrix adj_;
  numeric::Matrix static_features_;  ///< columns 2.. (everything but x, y)
  // Signs of the laplacian features at the last features() call, needed by
  // accumulate_position_grad for the |lap| chain rule.
  mutable std::vector<double> lap_sign_x_, lap_sign_y_;
};

}  // namespace aplace::gnn
