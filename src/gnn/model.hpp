#pragma once
// Two-layer GCN + pooled MLP head with a sigmoid output: the probability
// Phi that circuit performance is unsatisfactory (paper Sec. V-A).
//
//   H1 = ReLU(A~ X  W1 + b1)
//   H2 = ReLU(A~ H1 W2 + b2)
//   g  = mean_rows(H2)
//   u  = ReLU(g W3 + b3)
//   Phi = sigmoid(u . w4 + b4)
//
// Everything is hand-differentiated; backward() produces both the weight
// gradients (for training) and d Phi / d X (for the analytical placer, which
// descends through the model to device coordinates — the key mechanism of
// ePlace-AP).

#include <span>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"

namespace aplace::gnn {

struct GnnConfig {
  std::size_t input_dim = 16;
  std::size_t hidden_dim = 24;
  std::size_t mlp_dim = 8;
};

class GnnModel {
 public:
  explicit GnnModel(GnnConfig config = {});

  [[nodiscard]] const GnnConfig& config() const { return cfg_; }

  /// Xavier-style random init.
  void initialize(numeric::Rng& rng);

  // ---- parameter vector (for Adam) ----------------------------------------
  [[nodiscard]] std::size_t num_parameters() const;
  [[nodiscard]] std::vector<double> parameters() const;
  void set_parameters(std::span<const double> p);

  // ---- forward / backward ---------------------------------------------------
  struct Activations {
    numeric::Matrix x, ax, a1, h1, ah1, a2, h2;  // layer intermediates
    std::vector<double> g, a3, u;
    double logit = 0, phi = 0;
  };

  /// Forward pass; `adj` is the row-normalized adjacency, `x` the feature
  /// matrix. Returns Phi in (0, 1); fills `act` for use by backward().
  double forward(const numeric::Matrix& adj, const numeric::Matrix& x,
                 Activations& act) const;

  /// Backward pass from d(loss)/d(logit). Accumulates weight gradients into
  /// `param_grad` (size num_parameters(), caller zero-initializes) and, when
  /// `x_grad` is non-null, writes d(loss)/dX into it.
  void backward(const numeric::Matrix& adj, const Activations& act,
                double dlogit, std::span<double> param_grad,
                numeric::Matrix* x_grad) const;

  /// Convenience: Phi and d(Phi)/dX in one call (dlogit = phi * (1 - phi)).
  double phi_and_input_grad(const numeric::Matrix& adj,
                            const numeric::Matrix& x,
                            numeric::Matrix& x_grad) const;

 private:
  GnnConfig cfg_;
  numeric::Matrix w1_, w2_, w3_;
  std::vector<double> b1_, b2_, b3_, w4_;
  double b4_ = 0;

  friend class ParamIo;
};

}  // namespace aplace::gnn
