#include "gnn/phi_term.hpp"

#include <algorithm>

namespace aplace::gnn {

double PhiTerm::value_and_grad(std::span<const double> v,
                               std::span<double> grad, double scale) {
  const numeric::Matrix x = graph_->features(v);
  const double phi = net_->phi_and_input_grad(graph_->adjacency(), x, x_grad_);
  // accumulate_position_grad adds the raw gradient; route it through a
  // scratch buffer to apply the scheduler's weight (exactly the axpy the
  // placers used for the legacy extra-term functor).
  if (scratch_.size() != grad.size()) scratch_.assign(grad.size(), 0.0);
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  graph_->accumulate_position_grad(x_grad_, scratch_);
  numeric::axpy(scale, scratch_, grad);
  return phi;
}

}  // namespace aplace::gnn
