#pragma once
// The GNN failure-probability Phi as a first-class objective term: the
// performance-driven flows (ePlace-AP, Perf*) add it to the analytical
// objective instead of installing a raw gradient functor, so it shows up in
// the per-term TermTrace like every other summand.

#include <span>
#include <string_view>

#include "gnn/graph.hpp"
#include "gnn/model.hpp"
#include "gp/objective.hpp"
#include "numeric/vec.hpp"

namespace aplace::gnn {

class PhiTerm final : public gp::ObjectiveTerm {
 public:
  /// Both references must outlive the term (they live in PerfContext).
  PhiTerm(const CircuitGraph& graph, const GnnModel& net)
      : graph_(&graph), net_(&net) {}

  [[nodiscard]] std::string_view name() const override { return "gnn-phi"; }
  [[nodiscard]] gp::TermCost cost() const override {
    return gp::TermCost::Expensive;
  }

  /// Phi(v) in (0, 1); adds scale * dPhi/dv into grad.
  double value_and_grad(std::span<const double> v, std::span<double> grad,
                        double scale) override;

 private:
  const CircuitGraph* graph_;
  const GnnModel* net_;
  numeric::Matrix x_grad_;
  numeric::Vec scratch_;
};

}  // namespace aplace::gnn
