#pragma once
// SVG rendering of placements: devices (colored by type), pin markers, net
// connections (star to the net centroid), symmetry axes and the layout
// bounding box. The quickest way to eyeball what a placer did.

#include <string>

#include "netlist/placement.hpp"

namespace aplace::io {

struct SvgOptions {
  double scale = 40.0;        ///< pixels per micron
  double margin = 1.0;        ///< microns of whitespace around the layout
  bool draw_nets = true;      ///< light net star-connections
  bool draw_pins = true;
  bool draw_symmetry = true;  ///< dashed symmetry-axis lines
  bool draw_labels = true;    ///< device names
};

/// Render the placement as a standalone SVG document.
[[nodiscard]] std::string to_svg(const netlist::Placement& placement,
                                 SvgOptions options = {});

/// Convenience: render and write to a file. Throws CheckError on IO failure.
void write_svg(const netlist::Placement& placement, const std::string& path,
               SvgOptions options = {});

}  // namespace aplace::io
