#include "io/netlist_io.hpp"

#include <array>
#include <fstream>
#include <map>
#include <sstream>

namespace aplace::io {
namespace {

using netlist::AlignmentKind;
using netlist::Axis;
using netlist::DeviceType;
using netlist::OrderDirection;

const char* type_token(DeviceType t) { return netlist::to_string(t); }

DeviceType type_from_token(const std::string& s) {
  for (const DeviceType t :
       {DeviceType::Nmos, DeviceType::Pmos, DeviceType::Capacitor,
        DeviceType::Resistor, DeviceType::Inductor, DeviceType::Diode,
        DeviceType::Module}) {
    if (s == netlist::to_string(t)) return t;
  }
  APLACE_CHECK_MSG(false, "unknown device type '" << s << "'");
  return DeviceType::Nmos;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  APLACE_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  APLACE_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << text;
  APLACE_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace

std::string circuit_to_text(const netlist::Circuit& c) {
  std::ostringstream os;
  os << "circuit " << c.name() << "\n";
  for (const netlist::Device& d : c.devices()) {
    os << "device " << d.name << ' ' << type_token(d.type) << ' ' << d.width
       << ' ' << d.height << "\n";
  }
  for (const netlist::Pin& p : c.pins()) {
    os << "pin " << c.device(p.device).name << ' ' << p.name << ' '
       << p.offset.x << ' ' << p.offset.y << "\n";
  }
  for (const netlist::Net& net : c.nets()) {
    os << "net " << net.name << ' ' << net.weight << ' '
       << (net.critical ? 1 : 0);
    for (PinId pid : net.pins) {
      const netlist::Pin& p = c.pin(pid);
      os << ' ' << c.device(p.device).name << '.' << p.name;
    }
    os << "\n";
  }
  for (const netlist::SymmetryGroup& g : c.constraints().symmetry_groups) {
    os << "sym " << (g.axis == Axis::Vertical ? 'V' : 'H');
    for (auto [a, b] : g.pairs) {
      os << " pair " << c.device(a).name << ' ' << c.device(b).name;
    }
    for (DeviceId d : g.self_symmetric) os << " self " << c.device(d).name;
    os << "\n";
  }
  for (const netlist::AlignmentPair& a : c.constraints().alignments) {
    const char* kind = a.kind == AlignmentKind::Bottom ? "bottom"
                       : a.kind == AlignmentKind::VerticalCenter ? "vcenter"
                                                                 : "hcenter";
    os << "align " << kind << ' ' << c.device(a.a).name << ' '
       << c.device(a.b).name << "\n";
  }
  for (const netlist::OrderingConstraint& o : c.constraints().orderings) {
    os << "order "
       << (o.direction == OrderDirection::LeftToRight ? "lr" : "bt");
    for (DeviceId d : o.devices) os << ' ' << c.device(d).name;
    os << "\n";
  }
  for (const netlist::CommonCentroidQuad& q :
       c.constraints().common_centroids) {
    os << "centroid " << c.device(q.a1).name << ' ' << c.device(q.a2).name
       << ' ' << c.device(q.b1).name << ' ' << c.device(q.b2).name << "\n";
  }
  return os.str();
}

netlist::Circuit circuit_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  netlist::Circuit c;
  bool named = false;
  // pin lookup: "device.pin" -> PinId
  std::map<std::string, PinId> pin_by_name;
  // nets must be added after all pins exist, so stage them.
  struct PendingNet {
    std::string name;
    double weight;
    bool critical;
    std::vector<std::string> pins;
  };
  std::vector<PendingNet> nets;
  struct PendingSym {
    Axis axis;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<std::string> selfs;
  };
  std::vector<PendingSym> syms;
  struct PendingAlign {
    AlignmentKind kind;
    std::string a, b;
  };
  std::vector<PendingAlign> aligns;
  struct PendingOrder {
    OrderDirection dir;
    std::vector<std::string> devices;
  };
  std::vector<PendingOrder> orders;
  std::vector<std::array<std::string, 4>> centroids;

  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;

    if (tok == "circuit") {
      std::string name;
      APLACE_CHECK_MSG(ls >> name, "line " << line_no << ": circuit name");
      c = netlist::Circuit(name);
      named = true;
    } else if (tok == "device") {
      std::string name, type;
      double w = 0, h = 0;
      APLACE_CHECK_MSG(ls >> name >> type >> w >> h,
                       "line " << line_no << ": device syntax");
      c.add_device(name, type_from_token(type), w, h);
    } else if (tok == "pin") {
      std::string dev, pin;
      double dx = 0, dy = 0;
      APLACE_CHECK_MSG(ls >> dev >> pin >> dx >> dy,
                       "line " << line_no << ": pin syntax");
      const DeviceId id = c.find_device(dev);
      APLACE_CHECK_MSG(id.valid(),
                       "line " << line_no << ": unknown device '" << dev
                               << "'");
      pin_by_name[dev + "." + pin] = c.add_pin(id, pin, {dx, dy});
    } else if (tok == "net") {
      PendingNet pn;
      APLACE_CHECK_MSG(ls >> pn.name >> pn.weight >> pn.critical,
                       "line " << line_no << ": net syntax");
      std::string ref;
      while (ls >> ref) pn.pins.push_back(ref);
      APLACE_CHECK_MSG(pn.pins.size() >= 2,
                       "line " << line_no << ": net needs >= 2 pins");
      nets.push_back(std::move(pn));
    } else if (tok == "sym") {
      PendingSym ps;
      std::string axis;
      APLACE_CHECK_MSG(ls >> axis, "line " << line_no << ": sym axis");
      ps.axis = axis == "V" ? Axis::Vertical : Axis::Horizontal;
      std::string kw;
      while (ls >> kw) {
        if (kw == "pair") {
          std::string a, b;
          APLACE_CHECK_MSG(ls >> a >> b, "line " << line_no << ": sym pair");
          ps.pairs.emplace_back(a, b);
        } else if (kw == "self") {
          std::string d;
          APLACE_CHECK_MSG(ls >> d, "line " << line_no << ": sym self");
          ps.selfs.push_back(d);
        } else {
          APLACE_CHECK_MSG(false,
                           "line " << line_no << ": unexpected '" << kw
                                   << "'");
        }
      }
      syms.push_back(std::move(ps));
    } else if (tok == "align") {
      PendingAlign pa;
      std::string kind;
      APLACE_CHECK_MSG(ls >> kind >> pa.a >> pa.b,
                       "line " << line_no << ": align syntax");
      pa.kind = kind == "bottom" ? AlignmentKind::Bottom
                : kind == "vcenter" ? AlignmentKind::VerticalCenter
                                    : AlignmentKind::HorizontalCenter;
      aligns.push_back(std::move(pa));
    } else if (tok == "centroid") {
      std::array<std::string, 4> quad;
      APLACE_CHECK_MSG(ls >> quad[0] >> quad[1] >> quad[2] >> quad[3],
                       "line " << line_no << ": centroid syntax");
      centroids.push_back(std::move(quad));
    } else if (tok == "order") {
      PendingOrder po;
      std::string dir;
      APLACE_CHECK_MSG(ls >> dir, "line " << line_no << ": order syntax");
      po.dir = dir == "lr" ? OrderDirection::LeftToRight
                           : OrderDirection::BottomToTop;
      std::string d;
      while (ls >> d) po.devices.push_back(d);
      orders.push_back(std::move(po));
    } else {
      APLACE_CHECK_MSG(false, "line " << line_no << ": unknown directive '"
                                      << tok << "'");
    }
  }
  APLACE_CHECK_MSG(named, "missing 'circuit <name>' line");

  auto dev = [&](const std::string& name) {
    const DeviceId id = c.find_device(name);
    APLACE_CHECK_MSG(id.valid(), "unknown device '" << name << "'");
    return id;
  };
  for (const auto& pn : nets) {
    std::vector<PinId> pins;
    for (const std::string& ref : pn.pins) {
      auto it = pin_by_name.find(ref);
      APLACE_CHECK_MSG(it != pin_by_name.end(),
                       "net '" << pn.name << "': unknown pin '" << ref
                               << "'");
      pins.push_back(it->second);
    }
    c.add_net(pn.name, std::move(pins), pn.weight, pn.critical);
  }
  for (const auto& ps : syms) {
    netlist::SymmetryGroup g;
    g.axis = ps.axis;
    for (const auto& [a, b] : ps.pairs) g.pairs.emplace_back(dev(a), dev(b));
    for (const std::string& d : ps.selfs) g.self_symmetric.push_back(dev(d));
    c.add_symmetry_group(std::move(g));
  }
  for (const auto& pa : aligns) {
    c.add_alignment({pa.kind, dev(pa.a), dev(pa.b)});
  }
  for (const auto& po : orders) {
    netlist::OrderingConstraint oc;
    oc.direction = po.dir;
    for (const std::string& d : po.devices) oc.devices.push_back(dev(d));
    c.add_ordering(std::move(oc));
  }
  for (const auto& quad : centroids) {
    c.add_common_centroid(
        {dev(quad[0]), dev(quad[1]), dev(quad[2]), dev(quad[3])});
  }
  c.finalize();
  return c;
}

std::string placement_to_text(const netlist::Placement& pl) {
  const netlist::Circuit& c = pl.circuit();
  std::ostringstream os;
  os << "placement " << c.name() << "\n";
  for (std::size_t i = 0; i < c.num_devices(); ++i) {
    const DeviceId id{i};
    const geom::Point p = pl.position(id);
    const geom::Orientation o = pl.orientation(id);
    os << "place " << c.device(id).name << ' ' << p.x << ' ' << p.y;
    if (o.flip_x) os << " FX";
    if (o.flip_y) os << " FY";
    os << "\n";
  }
  return os.str();
}

netlist::Placement placement_from_text(const netlist::Circuit& circuit,
                                       const std::string& text) {
  netlist::Placement pl(circuit);
  std::istringstream in(text);
  std::string line;
  long line_no = 0;
  std::size_t placed = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "placement") {
      std::string name;
      APLACE_CHECK_MSG(ls >> name, "line " << line_no << ": placement name");
      APLACE_CHECK_MSG(name == circuit.name(),
                       "placement is for circuit '"
                           << name << "', expected '" << circuit.name()
                           << "'");
    } else if (tok == "place") {
      std::string name;
      double x = 0, y = 0;
      APLACE_CHECK_MSG(ls >> name >> x >> y,
                       "line " << line_no << ": place syntax");
      const DeviceId id = circuit.find_device(name);
      APLACE_CHECK_MSG(id.valid(),
                       "line " << line_no << ": unknown device '" << name
                               << "'");
      geom::Orientation o;
      std::string flag;
      while (ls >> flag) {
        if (flag == "FX") o.flip_x = true;
        else if (flag == "FY") o.flip_y = true;
        else APLACE_CHECK_MSG(false, "line " << line_no << ": bad flag '"
                                             << flag << "'");
      }
      pl.set_position(id, {x, y});
      pl.set_orientation(id, o);
      ++placed;
    } else {
      APLACE_CHECK_MSG(false, "line " << line_no << ": unknown directive '"
                                      << tok << "'");
    }
  }
  APLACE_CHECK_MSG(placed == circuit.num_devices(),
                   "placement covers " << placed << " of "
                                       << circuit.num_devices()
                                       << " devices");
  return pl;
}

void write_circuit(const netlist::Circuit& circuit, const std::string& path) {
  write_file(path, circuit_to_text(circuit));
}

netlist::Circuit read_circuit(const std::string& path) {
  return circuit_from_text(read_file(path));
}

void write_placement(const netlist::Placement& placement,
                     const std::string& path) {
  write_file(path, placement_to_text(placement));
}

netlist::Placement read_placement(const netlist::Circuit& circuit,
                                  const std::string& path) {
  return placement_from_text(circuit, read_file(path));
}

}  // namespace aplace::io
